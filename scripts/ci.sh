#!/usr/bin/env bash
# Tier-1 gate. This script IS the CI definition: .github/workflows/ci.yml
# does nothing but install a switch and run it, so a green local run of
#
#     ./scripts/ci.sh
#
# means a green CI run (modulo toolchain version skew).  Keep the two in
# lockstep by keeping all logic here and none in the workflow.
#
# Steps:
#   1. dune build @all        -- every library, executable and example
#   2. dune runtest           -- unit/property/integration suites plus the
#                                smoke aliases (bench smoke, mc-smoke,
#                                mc-swarm-smoke, bench-smoke perf tripwire,
#                                net smoke), then a CLI explore smoke (a
#                                small swarm over a healthy world must find
#                                no counterexample)
#   3. dune build @doc        -- only when odoc is installed; docs are part
#                                of the gate where available, skipped (with
#                                a notice) where not
#   4. git status --porcelain -- the build must not dirty the checkout:
#                                generated artefacts belong under _build,
#                                committed fixtures (BENCH_*.json) must not
#                                be clobbered by tests.  Compared against a
#                                snapshot taken before the build, so running
#                                the gate on a work-in-progress tree only
#                                flags dirt the build itself introduced
#
# Policy on the perf tripwire: `dune runtest` includes bench-smoke, which
# fails if simulator events/second regress >30% against the committed
# BENCH_simcore.json.  That baseline was measured on a dedicated box;
# shared CI runners are slower and noisier, so CI exports
# MOONSHOT_BENCH_SMOKE=skip, demoting a tripwire failure to a warning
# there.  Locally the tripwire stays live — run with the variable unset.

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

before=$(git status --porcelain)

step "dune build @all"
dune build @all

step "dune runtest"
dune runtest

# Sub-second exerciser of the CLI's model-checker sampling modes: a small
# swarm over a healthy world must find no violation and no certified
# livelock (explore exits 1 on any counterexample).
step "explore smoke (CLI swarm over a healthy world)"
dune exec bin/moonshot_cli.exe -- explore -p CM -n 4 --budget 64 --depth 48

if command -v odoc >/dev/null 2>&1; then
  step "dune build @doc"
  dune build @doc
else
  step "odoc not installed; skipping @doc"
fi

step "git status --porcelain (build must not dirty the checkout)"
after=$(git status --porcelain)
if [ "$after" != "$before" ]; then
  echo "error: build or tests changed the checkout; status delta:" >&2
  diff <(echo "$before") <(echo "$after") >&2 || true
  exit 1
fi

step "tier-1 gate passed"
