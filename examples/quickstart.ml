(* Quickstart: run Commit Moonshot on a small simulated WAN and print what
   the replicated chain looks like.

     dune exec examples/quickstart.exe
*)

let () =
  let open Bft_runtime in
  (* 10 nodes spread over the paper's five AWS regions, 18 kB payloads,
     10 simulated seconds of consensus. *)
  let config =
    {
      (Config.default Protocol_kind.Commit_moonshot ~n:10) with
      Config.payload_bytes = 18_000;
      duration_ms = 10_000.;
    }
  in
  let result = Harness.run config in
  let m = result.Harness.metrics in
  Format.printf "protocol        : %s@."
    (Protocol_kind.name config.Config.protocol);
  Format.printf "simulated time  : %.0f s@."
    (config.Config.duration_ms /. 1000.);
  Format.printf "blocks committed: %d (by at least %d of %d nodes)@."
    m.Metrics.committed_blocks
    ((2 * ((config.Config.n - 1) / 3)) + 1)
    config.Config.n;
  Format.printf "avg commit lat. : %.1f ms@." m.Metrics.avg_latency_ms;
  Format.printf "transfer rate   : %.2f MB/s@."
    (m.Metrics.transfer_rate_bps /. 1e6);
  Format.printf "messages sent   : %d (%.1f MB)@." result.Harness.messages_sent
    (float_of_int result.Harness.bytes_sent /. 1e6)
