(* Benchmark harness reproducing every table and figure of the paper's
   evaluation.

     dune exec bench/main.exe                     # everything, scaled down
     dune exec bench/main.exe -- table3           # one experiment
     dune exec bench/main.exe -- fig9 --full      # paper-scale parameters
     dune exec bench/main.exe -- all --jobs 4     # grid runs on 4 domains
     dune exec bench/main.exe -- smoke            # tiny grid, CI tripwire

   Experiments: table1 table2 table3 fig6 fig7 fig8 fig9 fairness ablations
   micro mc mc-smoke smoke bench-smoke n1000 all

   [mc] explores the model checker's exhaustive worlds and writes
   BENCH_mc.json (states/second, pruning ratio); [--full] uses the
   view-bound-3 acceptance worlds (under a minute per protocol).

   [bench-smoke] re-measures the n=200 multicast+drain micro and fails if
   events/second regressed more than 30 % against the bench_smoke block of
   the JSON given via [--baseline] (the committed BENCH_simcore.json in CI;
   MOONSHOT_BENCH_SMOKE=skip turns a failure into a warning).  [n1000]
   runs the beyond-paper scale sweep.

   [--jobs N] fans independent grid runs out over N domains; the printed
   tables are byte-identical whatever N is (results are collected in
   submission order, printing stays on the main domain).  Every invocation
   also writes BENCH_simcore.json — per-experiment wall-clock and simulator
   events/second — so perf changes leave a machine-readable trail. *)

let usage () =
  print_endline
    "usage: main.exe \
     [table1|table2|table3|fig6|fig7|fig8|fig9|fairness|chaos|clients|ablations|micro|mc|mc-smoke|mc-swarm-smoke|smoke|bench-smoke|n1000|all] \
     [--full] [--jobs N] [--baseline PATH]";
  exit 1

let parse_args args =
  let full = ref false in
  let jobs = ref None in
  let baseline = ref None in
  let targets = ref [] in
  let set_jobs s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> jobs := Some n
    | Some _ | None -> usage ()
  in
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
        full := true;
        go rest
    | "--jobs" :: n :: rest ->
        set_jobs n;
        go rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
        set_jobs (String.sub arg 7 (String.length arg - 7));
        go rest
    | "--baseline" :: path :: rest ->
        baseline := Some path;
        go rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | target :: rest ->
        targets := target :: !targets;
        go rest
  in
  go args;
  let targets = match List.rev !targets with [] -> [ "all" ] | ts -> ts in
  (!full, !jobs, !baseline, targets)

let () =
  Bft_parallel.Parallel.tune_gc ();
  let full, jobs_flag, baseline, targets =
    parse_args (List.tl (Array.to_list Sys.argv))
  in
  let jobs = Option.value jobs_flag ~default:1 in
  let scale =
    let base =
      if full then Experiments.full_scale else Experiments.default_scale
    in
    { base with Experiments.jobs }
  in
  let smoke_failed = ref false in
  let dispatch target =
    match target with
    | "bench-smoke" ->
        (* Timed against its own baseline, not the experiment counters: the
           raw-engine measurement never touches the harness, so wrapping it
           in [with_experiment] would record a zero-event entry. *)
        if not (Bench_smoke.run ~baseline) then smoke_failed := true
    | _ ->
    Bench_report.with_experiment target (fun () ->
        match target with
        | "bench-smoke" -> assert false
        | "table1" ->
            Experiments.table1 ();
            Experiments.table1_empirical scale
        | "table2" -> Experiments.table2 ()
        | "table3" -> Experiments.table3 scale
        | "fig6" -> Experiments.fig6 scale
        | "fig7" -> Experiments.fig7 scale
        | "fig8" -> Experiments.fig8 scale
        | "fig9" -> Experiments.fig9 scale
        | "fairness" -> Experiments.fairness scale
        | "chaos" -> Experiments.chaos scale
        | "clients" -> Experiments.clients scale
        | "ablations" ->
            Experiments.ablation_bandwidth scale;
            Experiments.ablation_block_period scale;
            Experiments.ablation_lso scale
        | "micro" -> Micro.run ()
        | "n1000" -> Experiments.scale_beyond scale
        | "mc" -> Mc.run ~jobs ~full ()
        | "mc-smoke" -> Mc.smoke ()
        | "mc-swarm-smoke" -> Mc.swarm_smoke ()
        | "smoke" ->
            (* Tiny grid on 2 domains (unless --jobs overrides), exercised
               from [dune runtest]: keeps the bench binary, the experiment
               driver and the domain pool from rotting without paying for a
               real evaluation run. *)
            let scale =
              match jobs_flag with
              | None -> Experiments.smoke_scale
              | Some jobs -> { Experiments.smoke_scale with Experiments.jobs }
            in
            Experiments.table3 scale;
            Experiments.fig9 scale;
            (* Sub-second chaos smoke: a randomized fault schedule through
               the real harness, fault interpreter and liveness monitor. *)
            Experiments.chaos scale;
            (* Client-traffic smoke: the full ingestion path (arrival
               generator, mempool, batch cuts, commit-order replay) under
               sub- and over-saturation load on a tiny grid. *)
            Experiments.clients scale
        | other ->
            Format.printf "unknown experiment %S@." other;
            usage ())
  in
  let expanded =
    List.concat_map
      (function
        | "all" ->
            [ "table1"; "table2"; "table3"; "fig6"; "fig7"; "fig8"; "fig9";
              "fairness"; "chaos"; "clients"; "ablations"; "micro" ]
        | t -> [ t ])
      targets
  in
  List.iter dispatch expanded;
  Bench_report.write ~jobs ~path:"BENCH_simcore.json";
  if !smoke_failed then exit 1
