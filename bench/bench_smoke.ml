(* CI perf tripwire for the simulator core.

   Re-measures the acceptance micro-benchmark — one n = 200 multicast fanned
   out and drained through the real engine (send -> queue -> dispatch, the
   batch fast path included) — and compares events/second against the
   [bench_smoke] block of the committed BENCH_simcore.json.  A regression
   past [tolerance] fails the run (and with it the @bench-smoke alias on
   `dune runtest`), so an accidental allocation or indirection on the hot
   path is caught in seconds instead of at the next full evaluation.

   Wall-clock thresholds on shared CI boxes are inherently noisy, hence the
   generous 30 % tolerance, best-of-[windows] measurement, and the
   MOONSHOT_BENCH_SMOKE=skip escape hatch for machines slower than the one
   that produced the committed baseline. *)

let n = 200
let ops_per_window = 20_000
let windows = 3

(* Regression trips when measured < tolerance * baseline. *)
let tolerance = 0.7

let make_engine () =
  let net =
    Bft_sim.Network.make
      ~latency:(Bft_sim.Latency.Uniform { base = 10.; jitter = 0. })
      ~delta:50. ()
  in
  let e =
    Bft_sim.Engine.create ~n ~network:net ~seed:1
      ~msg_size:(fun (_ : int) -> 100)
      ()
  in
  for i = 0 to n - 1 do
    Bft_sim.Engine.set_handler e i (fun ~src:_ _ -> ())
  done;
  e

(* One window: [ops_per_window] multicast+drain rounds, [n] delivered
   events each.  Returns (wall seconds, events, bytes allocated). *)
let window () =
  let e = make_engine () in
  let alloc0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to ops_per_window do
    Bft_sim.Engine.multicast e ~src:0 7;
    Bft_sim.Engine.run e ~until:(Bft_sim.Engine.now e +. 1000.)
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let alloc = Gc.allocated_bytes () -. alloc0 in
  (wall_s, ops_per_window * n, int_of_float alloc)

(* Minimal forward scan for ["key": <number>] inside [json] starting at
   [from]; no yojson in the dependency set, and the reader only needs one
   numeric field out of a file this binary itself wrote. *)
let find_number json ~key ~from =
  let needle = "\"" ^ key ^ "\":" in
  let nlen = String.length needle in
  let jlen = String.length json in
  let rec seek i =
    if i + nlen > jlen then None
    else if String.sub json i nlen = needle then
      let start = i + nlen in
      let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' in
      let b = ref start in
      while !b < jlen && json.[!b] = ' ' do incr b done;
      let e = ref !b in
      while !e < jlen && is_num json.[!e] do incr e done;
      if !e > !b then float_of_string_opt (String.sub json !b (!e - !b))
      else None
    else seek (i + 1)
  in
  seek from

let baseline_events_per_sec path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> None
  | json -> (
      let block = "\"bench_smoke\"" in
      let blen = String.length block in
      let jlen = String.length json in
      let rec seek i =
        if i + blen > jlen then None
        else if String.sub json i blen = block then Some i
        else seek (i + 1)
      in
      match seek 0 with
      | None -> None
      | Some at -> find_number json ~key:"events_per_sec" ~from:at)

(* Returns [false] iff a baseline was found and the measurement regressed
   past tolerance (and the escape hatch is not set). *)
let run ~baseline =
  Format.printf "@.== bench-smoke: engine multicast+drain n=%d ==@.@." n;
  let best = ref None in
  let total_events = ref 0 in
  let total_alloc = ref 0 in
  for _ = 1 to windows do
    let wall_s, events, alloc = window () in
    total_events := !total_events + events;
    total_alloc := !total_alloc + alloc;
    let eps = float_of_int events /. wall_s in
    (match !best with
    | Some (b, _) when b >= eps -> ()
    | _ -> best := Some (eps, wall_s));
    Format.printf "  window: %.3f s, %d events, %.2e events/s@." wall_s
      events eps
  done;
  let eps, best_wall = Option.get !best in
  let bytes_per_event =
    float_of_int !total_alloc /. float_of_int !total_events
  in
  Format.printf "  best:   %.2e events/s, %.1f alloc bytes/event@." eps
    bytes_per_event;
  Bench_report.set_smoke
    {
      Bench_report.smoke_wall_s = best_wall;
      smoke_events = ops_per_window * n;
      smoke_alloc_bytes =
        int_of_float (bytes_per_event *. float_of_int (ops_per_window * n));
    };
  let skip =
    match Sys.getenv_opt "MOONSHOT_BENCH_SMOKE" with
    | Some "skip" -> true
    | Some _ | None -> false
  in
  match baseline with
  | None ->
      Format.printf "  no baseline given; recording only@.";
      true
  | Some path -> (
      match baseline_events_per_sec path with
      | None ->
          Format.printf
            "  warning: no bench_smoke baseline in %s; recording only@." path;
          true
      | Some base ->
          let floor_eps = tolerance *. base in
          let ok = eps >= floor_eps in
          Format.printf "  baseline %.2e events/s (%s); floor %.2e -> %s@."
            base path floor_eps
            (if ok then "ok"
             else if skip then "REGRESSION (ignored: MOONSHOT_BENCH_SMOKE=skip)"
             else "REGRESSION");
          ok || skip)
