(* Bechamel micro-benchmarks of the hot paths under the simulation: block
   hashing, vote aggregation, event-queue churn, block-store ancestry.
   These are per-operation costs, printed in nanoseconds. *)

open Bechamel
open Toolkit
open Bft_types

let chain = ref []

let setup () =
  let rec go acc parent view =
    if view > 64 then List.rev acc
    else
      let b =
        Block.create ~parent ~view ~proposer:(view mod 4)
          ~payload:(Payload.make ~id:view ~size_bytes:0)
      in
      go (b :: acc) b (view + 1)
  in
  chain := go [] Block.genesis 1

let test_block_create =
  Test.make ~name:"block-create+hash"
    (Staged.stage (fun () ->
         let parent = List.hd !chain in
         ignore
           (Block.create ~parent ~view:(parent.Block.view + 1) ~proposer:1
              ~payload:(Payload.make ~id:99 ~size_bytes:0))))

let test_vote_aggregation =
  Test.make ~name:"vote-aggregation(n=100,q=67)"
    (Staged.stage (fun () ->
         let acc = Bft_crypto.Accumulator.create ~n:100 ~threshold:67 in
         for signer = 0 to 66 do
           ignore (Bft_crypto.Accumulator.add acc () ~signer)
         done))

let test_event_queue =
  Test.make ~name:"event-queue push+pop x64"
    (Staged.stage (fun () ->
         let q = Bft_sim.Event_queue.create () in
         for i = 0 to 63 do
           Bft_sim.Event_queue.push q ~time:(float_of_int (i * 7 mod 64)) i
         done;
         while not (Bft_sim.Event_queue.is_empty q) do
           ignore (Bft_sim.Event_queue.pop q)
         done))

let test_store_ancestry =
  Test.make ~name:"block-store ancestry depth 64"
    (Staged.stage (fun () ->
         let store = Bft_chain.Block_store.create () in
         List.iter (fun b -> ignore (Bft_chain.Block_store.insert store b)) !chain;
         let tip = List.nth !chain 63 in
         ignore
           (Bft_chain.Block_store.is_ancestor store ~ancestor:Block.genesis
              ~of_:tip)))

let test_signer_set =
  Test.make ~name:"signer-set add x200"
    (Staged.stage (fun () ->
         let s = Bft_crypto.Signer_set.create ~n:200 in
         for i = 0 to 199 do
           ignore (Bft_crypto.Signer_set.add s i)
         done))

let test_signer_set_to_list =
  Test.make ~name:"signer-set to_list (n=200, q=134)"
    (Staged.stage
       (let s = Bft_crypto.Signer_set.create ~n:200 in
        for i = 0 to 133 do
          ignore (Bft_crypto.Signer_set.add s i)
        done;
        fun () -> ignore (Bft_crypto.Signer_set.to_list s)))

(* The engine's real hot path: one multicast fans out to n - 1 network
   sends plus a self delivery, and draining the queue processes them all.
   This prices the whole send -> queue -> dispatch pipeline, not just
   queue churn. *)
let test_engine_multicast =
  Test.make ~name:"engine multicast+drain n=200"
    (Staged.stage
       (let net =
          Bft_sim.Network.make
            ~latency:(Bft_sim.Latency.Uniform { base = 10.; jitter = 0. })
            ~delta:50. ()
        in
        let e =
          Bft_sim.Engine.create ~n:200 ~network:net ~seed:1
            ~msg_size:(fun (_ : int) -> 100)
            ()
        in
        for i = 0 to 199 do
          Bft_sim.Engine.set_handler e i (fun ~src:_ _ -> ())
        done;
        fun () ->
          Bft_sim.Engine.multicast e ~src:0 7;
          Bft_sim.Engine.run e ~until:(Bft_sim.Engine.now e +. 1000.)))

let trace_event i =
  {
    Bft_obs.Trace.time = float_of_int i;
    node = i mod 4;
    kind =
      Bft_obs.Trace.Node_event
        (Probe.Vote_sent { view = i; height = i; kind = "normal" });
  }

let test_trace_emit =
  Test.make ~name:"trace emit x64 (enabled)"
    (Staged.stage (fun () ->
         let t = Bft_obs.Trace.create () in
         for i = 0 to 63 do
           Bft_obs.Trace.emit t (trace_event i)
         done))

(* The price an untraced run pays per probe site: one None check, no
   event allocation (the thunk is never forced). *)
let test_probe_disabled =
  Test.make ~name:"probe emit x64 (disabled env)"
    (Staged.stage (fun () ->
         let probe : (Probe.event -> unit) option = None in
         for i = 0 to 63 do
           match probe with
           | None -> ()
           | Some f -> f (Probe.Timeout_sent { view = i })
         done))

let tests =
  [
    test_block_create; test_vote_aggregation; test_event_queue;
    test_engine_multicast; test_store_ancestry; test_signer_set;
    test_signer_set_to_list; test_trace_emit; test_probe_disabled;
  ]

let run () =
  setup ();
  Format.printf "@.== Micro-benchmarks (per-op cost, monotonic clock) ==@.@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Format.printf "%-36s %12.1f ns/op@." name est
          | Some [] | None -> Format.printf "%-36s (no estimate)@." name)
        analyzed)
    tests
