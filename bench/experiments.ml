(* Reproduction of the paper's evaluation (Section VI): one function per
   table/figure, each printing the same rows/series the paper reports.

   Default mode scales the experiments down (smaller networks, shorter
   simulated runs, one seed) so the whole suite finishes in a few minutes;
   [--full] approaches paper scale (n up to 200, 60 s simulated, 3 seeds).
   Scaling preserves the shapes the paper argues from: who wins, by what
   factor, and where the crossovers fall. *)

open Bft_runtime
module Schedules = Bft_workload.Schedules
module Payload_profile = Bft_workload.Payload_profile
module Table = Bft_stats.Table
module Parallel = Bft_parallel.Parallel

type scale = {
  ns : int list;  (** Network sizes for the happy-path grid. *)
  payloads : int list;
  saturation_payloads : int list;  (** Figure 8's extended sweep. *)
  seeds : int list;
  duration_of_n : int -> float;  (** Simulated ms per run. *)
  failure_n : int;  (** Figure 9 network size. *)
  failure_f' : int;
  failure_delta : float;
  failure_duration : float;
  chaos_n : int;  (** Chaos grid network size. *)
  chaos_seeds : int list;  (** One randomized fault schedule per seed. *)
  chaos_duration : float;
  chaos_delta : float;
  clients_n : int;  (** Client-traffic sweep network size. *)
  clients_duration : float;  (** Simulated ms per client-traffic run. *)
  jobs : int;  (** Worker domains for independent grid runs ([--jobs]). *)
}

let default_scale =
  {
    ns = [ 10; 50; 100; 200 ];
    payloads = Payload_profile.happy_path_sizes;
    saturation_payloads = Payload_profile.saturation_sizes;
    seeds = [ 1 ];
    duration_of_n =
      (fun n -> if n <= 50 then 10_000. else if n <= 100 then 8_000. else 4_000.);
    failure_n = 40;
    failure_f' = 13;
    failure_delta = 500.;
    failure_duration = 150_000.;
    chaos_n = 7;
    chaos_seeds = [ 1; 2; 3; 4 ];
    chaos_duration = 12_000.;
    chaos_delta = 50.;
    clients_n = 10;
    clients_duration = 12_000.;
    jobs = 1;
  }

let full_scale =
  {
    default_scale with
    seeds = [ 1; 2; 3 ];
    duration_of_n = (fun _ -> 60_000.);
    failure_n = 100;
    failure_f' = 33;
    failure_delta = 500.;
    failure_duration = 300_000.;
    chaos_n = 10;
    chaos_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ];
    chaos_duration = 30_000.;
    clients_duration = 30_000.;
  }

(* A deliberately tiny grid exercised from [dune runtest] (the [smoke]
   target) so the bench binary and the domain pool cannot silently rot. *)
let smoke_scale =
  {
    ns = [ 4; 7 ];
    payloads = [ 0; 1_800 ];
    saturation_payloads = [ 0; 1_800 ];
    seeds = [ 1 ];
    duration_of_n = (fun _ -> 3_000.);
    failure_n = 7;
    failure_f' = 2;
    failure_delta = 500.;
    failure_duration = 3_000.;
    chaos_n = 4;
    chaos_seeds = [ 1 ];
    chaos_duration = 3_000.;
    chaos_delta = 50.;
    clients_n = 4;
    clients_duration = 3_000.;
    jobs = 2;
  }

let protocols = Protocol_kind.paper
let moonshots =
  [ Protocol_kind.Simple_moonshot; Protocol_kind.Pipelined_moonshot;
    Protocol_kind.Commit_moonshot ]

(* --- shared happy-path grid ------------------------------------------------ *)

type cell = {
  protocol : Protocol_kind.t;
  n : int;
  payload : int;
  summary : Harness.summary;
}

let happy_config scale protocol ~n ~payload =
  {
    (Config.default protocol ~n) with
    Config.payload_bytes = payload;
    duration_ms = scale.duration_of_n n;
  }

let run_cell scale protocol ~n ~payload =
  let cfg = happy_config scale protocol ~n ~payload in
  let summary = Harness.summarize (Harness.run_seeds cfg ~seeds:scale.seeds) in
  { protocol; n; payload; summary }

(* The Table III / Figure 6 / Figure 7 experiments share one grid of runs;
   compute it lazily once per process.  The grid's runs are independent, so
   they fan out over [scale.jobs] domains; [Parallel.map] returns them in
   submission order and all printing happens on this domain, which keeps
   the tables byte-identical whatever [jobs] is. *)
let grid_cache : (string, cell list) Hashtbl.t = Hashtbl.create 4

let happy_grid scale =
  let key = String.concat "," (List.map string_of_int scale.ns) in
  match Hashtbl.find_opt grid_cache key with
  | Some cells -> cells
  | None ->
      List.iter
        (fun n ->
          List.iter
            (fun payload ->
              Format.printf "  running n=%d p=%s ...@." n
                (Payload_profile.label payload))
            scale.payloads)
        scale.ns;
      Format.print_flush ();
      let tasks =
        List.concat_map
          (fun n ->
            List.concat_map
              (fun payload ->
                List.map (fun protocol -> (protocol, n, payload)) protocols)
              scale.payloads)
          scale.ns
      in
      let cells =
        Parallel.map ~jobs:scale.jobs
          (fun (protocol, n, payload) -> run_cell scale protocol ~n ~payload)
          tasks
      in
      Hashtbl.replace grid_cache key cells;
      cells

let find_cell cells protocol ~n ~payload =
  List.find
    (fun c -> c.protocol = protocol && c.n = n && c.payload = payload)
    cells

(* --- Table I ----------------------------------------------------------------- *)

let table1 () =
  Format.printf "@.== Table I: theoretical comparison ==@.@.";
  Moonshot.Theory.print Format.std_formatter


(* Empirical check of Table I's latency column: on a uniform network where
   every message takes exactly one hop, steady-state commit latency lands on
   the hop multiples the theory predicts — 3 for the Moonshots, 5 for
   Jolteon, 7 for chained HotStuff — and block periods on 1 vs 2 hops. *)
let table1_empirical scale =
  Format.printf "@.== Table I, empirically: latency in exact message hops ==@.@.";
  let hop = 20. in
  let t =
    Table.create
      [ "protocol"; "commit hops (theory)"; "commit hops (measured)";
        "period hops (theory)"; "period hops (measured)" ]
  in
  let theory_commit = function
    | Protocol_kind.Simple_moonshot | Protocol_kind.Pipelined_moonshot
    | Protocol_kind.Commit_moonshot ->
        Moonshot.Theory.moonshot_commit_hops
    | Protocol_kind.Jolteon -> Moonshot.Theory.jolteon_commit_hops
    | Protocol_kind.Hotstuff -> 7
  in
  let theory_period = function
    | Protocol_kind.Simple_moonshot | Protocol_kind.Pipelined_moonshot
    | Protocol_kind.Commit_moonshot ->
        Moonshot.Theory.moonshot_block_period_hops
    | Protocol_kind.Jolteon | Protocol_kind.Hotstuff ->
        Moonshot.Theory.jolteon_block_period_hops
  in
  let runs =
    Parallel.map ~jobs:scale.jobs
      (fun protocol ->
        let cfg =
          {
            (Config.default protocol ~n:7) with
            Config.latency = Config.Uniform { base = hop; jitter = 0. };
            bandwidth_bps = None;
            model_cpu = false;
            delta_ms = 100.;
            duration_ms = 10_000.;
          }
        in
        (protocol, Harness.run cfg))
      Protocol_kind.all
  in
  List.iter
    (fun (protocol, r) ->
      let m = r.Harness.metrics in
      let period_hops =
        if m.Metrics.blocks_per_sec > 0. then
          1000. /. m.Metrics.blocks_per_sec /. hop
        else 0.
      in
      Table.add_row t
        [
          Protocol_kind.short_name protocol;
          string_of_int (theory_commit protocol);
          Printf.sprintf "%.2f" (m.Metrics.avg_latency_ms /. hop);
          string_of_int (theory_period protocol);
          Printf.sprintf "%.2f" period_hops;
        ])
    runs;
  Table.print Format.std_formatter t

(* --- Table II ---------------------------------------------------------------- *)

let table2 () =
  Format.printf "@.== Table II: observed latencies between AWS regions (ms) ==@.@.";
  Bft_workload.Regions.print_table Format.std_formatter

(* --- Table III ----------------------------------------------------------------- *)

(* Throughput multiplier and latency ratio of each Moonshot protocol vs
   Jolteon per configuration; the table reports the per-protocol average
   with IQR outliers removed, as the paper does. *)
let table3 scale =
  Format.printf "@.== Table III: performance vs Jolteon (f'=0, outliers removed) ==@.@.";
  let cells = happy_grid scale in
  let t =
    Table.create
      [ "protocol"; "throughput x (avg)"; "latency %% (avg)"; "outlier configs" ]
  in
  List.iter
    (fun p ->
      let ratios =
        List.concat_map
          (fun n ->
            List.filter_map
              (fun payload ->
                let m = find_cell cells p ~n ~payload in
                let j = find_cell cells Protocol_kind.Jolteon ~n ~payload in
                if j.summary.Harness.blocks_committed = 0. then None
                else
                  Some
                    ( m.summary.Harness.blocks_committed
                      /. j.summary.Harness.blocks_committed,
                      m.summary.Harness.avg_latency_ms
                      /. j.summary.Harness.avg_latency_ms ))
              scale.payloads)
          scale.ns
      in
      let kept, removed = Bft_stats.Outliers.iqr_filter_on ~value:fst ratios in
      let thr = Bft_stats.Descriptive.mean (List.map fst kept) in
      let lat = Bft_stats.Descriptive.mean (List.map snd kept) in
      Table.add_row t
        [
          Protocol_kind.short_name p;
          Printf.sprintf "%.2fx" thr;
          Printf.sprintf "%.0f%%" (lat *. 100.);
          string_of_int (List.length removed);
        ])
    moonshots;
  Table.print Format.std_formatter t;
  Format.printf
    "@.(paper: ~1.5x the blocks at 50-60%% of Jolteon's latency on average)@."

(* --- Figure 6 -------------------------------------------------------------------- *)

let fig6 scale =
  Format.printf "@.== Figure 6: performance overview (f'=0, p <= 1.8MB) ==@.@.";
  let cells = happy_grid scale in
  let t =
    Table.create
      ([ "n"; "payload" ]
      @ List.concat_map
          (fun p ->
            [ Protocol_kind.short_name p ^ " blk/s";
              Protocol_kind.short_name p ^ " lat(ms)" ])
          protocols)
  in
  List.iter
    (fun n ->
      List.iter
        (fun payload ->
          let row =
            List.concat_map
              (fun p ->
                let c = find_cell cells p ~n ~payload in
                [
                  Printf.sprintf "%.2f" c.summary.Harness.blocks_per_sec;
                  Printf.sprintf "%.0f" c.summary.Harness.avg_latency_ms;
                ])
              protocols
          in
          Table.add_row t
            ([ string_of_int n; Payload_profile.label payload ] @ row))
        scale.payloads)
    scale.ns;
  Table.print Format.std_formatter t;
  Format.printf
    "@.(paper trends: throughput halves / latency doubles per decade of p;@. \
     all protocols degrade with n; Moonshots beat Jolteon in both metrics;@. \
     CM's latency advantage grows with p)@."

(* --- Figure 7 --------------------------------------------------------------------- *)

let fig7 scale =
  Format.printf "@.== Figure 7: performance vs Jolteon, per configuration ==@.@.";
  let cells = happy_grid scale in
  let t =
    Table.create
      ([ "n"; "payload" ]
      @ List.concat_map
          (fun p ->
            [ Protocol_kind.short_name p ^ " thr x";
              Protocol_kind.short_name p ^ " lat x" ])
          moonshots)
  in
  List.iter
    (fun n ->
      List.iter
        (fun payload ->
          let j = find_cell cells Protocol_kind.Jolteon ~n ~payload in
          let row =
            List.concat_map
              (fun p ->
                let c = find_cell cells p ~n ~payload in
                if j.summary.Harness.blocks_committed = 0. then [ "-"; "-" ]
                else
                  [
                    Printf.sprintf "%.2f"
                      (c.summary.Harness.blocks_committed
                      /. j.summary.Harness.blocks_committed);
                    Printf.sprintf "%.2f"
                      (c.summary.Harness.avg_latency_ms
                      /. j.summary.Harness.avg_latency_ms);
                  ])
              moonshots
          in
          Table.add_row t
            ([ string_of_int n; Payload_profile.label payload ] @ row))
        scale.payloads)
    scale.ns;
  Table.print Format.std_formatter t

(* --- Figure 8 ---------------------------------------------------------------------- *)

let fig8 scale =
  let n = List.fold_left max 0 scale.ns in
  Format.printf "@.== Figure 8: throughput vs latency (n=%d, f'=0, p <= 9MB) ==@.@." n;
  let t =
    Table.create [ "protocol"; "payload"; "transfer MB/s"; "latency ms" ]
  in
  let cells =
    Parallel.map ~jobs:scale.jobs
      (fun (protocol, payload) -> run_cell scale protocol ~n ~payload)
      (List.concat_map
         (fun protocol ->
           List.map (fun payload -> (protocol, payload))
             scale.saturation_payloads)
         protocols)
  in
  List.iter
    (fun cell ->
      Table.add_row t
        [
          Protocol_kind.short_name cell.protocol;
          Payload_profile.label cell.payload;
          Printf.sprintf "%.2f" (cell.summary.Harness.transfer_rate_bps /. 1e6);
          Printf.sprintf "%.0f" cell.summary.Harness.avg_latency_ms;
        ])
    cells;
  Table.print Format.std_formatter t;
  Format.printf
    "@.(paper: all Moonshots reach a higher max transfer rate at lower latency@. \
     than Jolteon, CM best)@."

(* --- Figure 9 ------------------------------------------------------------------------ *)

let fig9 scale =
  Format.printf
    "@.== Figure 9: behaviour under failures (n=%d, f'=%d, p=0, Delta=%.0fms) ==@.@."
    scale.failure_n scale.failure_f' scale.failure_delta;
  let t =
    Table.create
      [ "schedule"; "protocol"; "blocks"; "blk/s"; "latency ms" ]
  in
  let rows =
    Parallel.map ~jobs:scale.jobs
      (fun (schedule, protocol) ->
        let cfg =
          {
            (Config.default protocol ~n:scale.failure_n) with
            Config.f_actual = scale.failure_f';
            schedule;
            delta_ms = scale.failure_delta;
            duration_ms = scale.failure_duration;
            payload_bytes = 0;
          }
        in
        let s = Harness.summarize (Harness.run_seeds cfg ~seeds:scale.seeds) in
        (schedule, protocol, s))
      (List.concat_map
         (fun schedule -> List.map (fun p -> (schedule, p)) protocols)
         [ Schedules.Best_case; Schedules.Worst_moonshot;
           Schedules.Worst_jolteon ])
  in
  List.iter
    (fun (schedule, protocol, s) ->
      Table.add_row t
        [
          Schedules.name schedule;
          Protocol_kind.short_name protocol;
          Printf.sprintf "%.0f" s.Harness.blocks_committed;
          Printf.sprintf "%.2f" s.Harness.blocks_per_sec;
          Printf.sprintf "%.0f" s.Harness.avg_latency_ms;
        ])
    rows;
  Table.print Format.std_formatter t;
  Format.printf
    "@.(paper: under WJ Jolteon collapses [~7x fewer blocks, ~50x latency vs \
     its B case];@. SM/PM commit every honest block under WM but with large \
     latency;@. CM stays near happy-path performance on every schedule)@."

(* --- Ablations ------------------------------------------------------------------------- *)

(* DESIGN.md ablation 3: disabling the egress bandwidth model collapses the
   beta/rho split and with it Commit Moonshot's latency edge on large
   blocks. *)
let ablation_bandwidth scale =
  Format.printf "@.== Ablation: egress bandwidth model (beta vs rho split) ==@.@.";
  let payload = 1_800_000 in
  let t =
    Table.create [ "bandwidth"; "protocol"; "latency ms"; "blk/s" ]
  in
  let rows =
    Parallel.map ~jobs:scale.jobs
      (fun ((label, bw), protocol) ->
        let cfg =
          {
            (happy_config scale protocol ~n:50 ~payload) with
            Config.bandwidth_bps = bw;
          }
        in
        let s = Harness.summarize (Harness.run_seeds cfg ~seeds:scale.seeds) in
        (label, protocol, s))
      (List.concat_map
         (fun bw ->
           List.map
             (fun p -> (bw, p))
             [ Protocol_kind.Pipelined_moonshot; Protocol_kind.Commit_moonshot ])
         [ ("10 Gbps", Some Bft_workload.Regions.bandwidth_bps);
           ("infinite", None) ])
  in
  List.iter
    (fun (label, protocol, s) ->
      Table.add_row t
        [
          label;
          Protocol_kind.short_name protocol;
          Printf.sprintf "%.0f" s.Harness.avg_latency_ms;
          Printf.sprintf "%.2f" s.Harness.blocks_per_sec;
        ])
    rows;
  Table.print Format.std_formatter t;
  Format.printf
    "@.(with infinite bandwidth beta = rho and CM's edge over PM disappears)@."



(* Fairness (chain quality): the paper's introduction motivates frequent
   leader rotation with fairness — every node should get its blocks
   committed at an equal rate.  We report the committed-block share per
   proposer for a fair LCO run, and show how a non-reorg-resilient protocol
   (Jolteon) skews shares when some aggregators are Byzantine. *)
let fairness scale =
  Format.printf "@.== Fairness: committed blocks per proposer ==@.@.";
  let n = 12 and f' = 3 in
  let t =
    Table.create [ "protocol"; "schedule"; "min share"; "max share"; "honest proposers" ]
  in
  let rows =
    Parallel.map ~jobs:scale.jobs
      (fun (protocol, schedule) ->
        let cfg =
          {
            (Config.default protocol ~n) with
            Config.f_actual = f';
            schedule;
            duration_ms = scale.failure_duration;
            delta_ms = scale.failure_delta;
          }
        in
        let r = Harness.run cfg in
        (protocol, schedule, Metrics.chain_quality r.Harness.metrics))
      [
        (Protocol_kind.Commit_moonshot, Schedules.Round_robin);
        (Protocol_kind.Commit_moonshot, Schedules.Worst_jolteon);
        (Protocol_kind.Jolteon, Schedules.Round_robin);
        (Protocol_kind.Jolteon, Schedules.Worst_jolteon);
      ]
  in
  List.iter
    (fun (protocol, schedule, quality) ->
      let honest = List.filter (fun (p, _) -> p < n - f') quality in
      let total =
        float_of_int (List.fold_left (fun a (_, c) -> a + c) 0 honest)
      in
      let shares = List.map (fun (_, c) -> float_of_int c /. total) honest in
      Table.add_row t
        [
          Protocol_kind.short_name protocol;
          Schedules.name schedule;
          Printf.sprintf "%.1f%%" (100. *. Bft_stats.Descriptive.min shares);
          Printf.sprintf "%.1f%%" (100. *. Bft_stats.Descriptive.max shares);
          string_of_int (List.length honest);
        ])
    rows;
  Table.print Format.std_formatter t;
  Format.printf
    "@.(reorg resilience keeps every honest proposer's share near 1/honest;@.      Jolteon under WJ starves the proposers scheduled before Byzantine@.      aggregators)@."

(* DESIGN.md ablation: the LSO (leader-speaks-once) variant drops the
   normal re-proposal after an optimistic one.  Under an equivocating
   proposer the next honest leader's optimistic proposal extends an
   uncertified block; unable to correct itself, it produces no certified
   block at all — measurable as lost throughput vs the LCO implementation. *)
let ablation_lso scale =
  Format.printf "@.== Ablation: LCO vs LSO (reorg resilience) ==@.@.";
  let t = Table.create [ "variant"; "blocks committed"; "avg latency ms" ] in
  let cfg =
    {
      (happy_config scale Protocol_kind.Pipelined_moonshot ~n:8 ~payload:0) with
      Config.equivocators = [ 0 ];
      duration_ms = 60_000.;
    }
  in
  let rows =
    Parallel.map ~jobs:scale.jobs
      (fun (label, (module P : Bft_types.Protocol_intf.S
                      with type msg = Moonshot.Message.t)) ->
        let summaries =
          List.map
            (fun seed ->
              Harness.run_protocol (module P) { cfg with Config.seed })
            scale.seeds
        in
        (label, Harness.summarize summaries))
      [
        ("LCO (paper)", (module Moonshot.Pipelined_node.Protocol));
        ("LSO", (module Moonshot.Pipelined_node.Lso_protocol));
      ]
  in
  List.iter
    (fun (label, s) ->
      Table.add_row t
        [
          label;
          Printf.sprintf "%.0f" s.Harness.blocks_committed;
          Printf.sprintf "%.0f" s.Harness.avg_latency_ms;
        ])
    rows;
  Table.print Format.std_formatter t;
  Format.printf
    "@.(an equivocating proposer each cycle makes optimistic proposals fail;@.      the LCO leader corrects itself with a normal proposal, the LSO leader@.      cannot, losing its view as well)@."

(* DESIGN.md ablation 2: the optimistic-proposal + vote-multicast pair is
   what buys omega = delta; quantified against Jolteon whose leaders wait
   for certification (omega = 2 delta). *)
let ablation_block_period scale =
  Format.printf "@.== Ablation: block period (optimistic proposal) ==@.@.";
  let t = Table.create [ "protocol"; "blocks/s"; "period ms (approx)" ] in
  let rows =
    Parallel.map ~jobs:scale.jobs
      (fun protocol ->
        let cfg = happy_config scale protocol ~n:50 ~payload:0 in
        (protocol, Harness.summarize (Harness.run_seeds cfg ~seeds:scale.seeds)))
      protocols
  in
  List.iter
    (fun (protocol, s) ->
      Table.add_row t
        [
          Protocol_kind.short_name protocol;
          Printf.sprintf "%.2f" s.Harness.blocks_per_sec;
          (if s.Harness.blocks_per_sec > 0. then
             Printf.sprintf "%.0f" (1000. /. s.Harness.blocks_per_sec)
           else "-");
        ])
    rows;
  Table.print Format.std_formatter t;
  Format.printf "@.(Moonshot periods sit near one WAN hop; Jolteon near two)@."

(* --- chaos: randomized fault schedules ------------------------------------- *)

(* Crash-recovery robustness grid: every protocol runs a randomized fault
   schedule (crashes + recoveries, partitions, loss, delay spikes — all
   inside the f budget) per seed, with the online liveness monitor armed.
   A run that returns at all has passed every safety and liveness check;
   the table reports how fast recovered nodes caught up and how long the
   longest post-disruption commit gap was.  Results also land in
   BENCH_faults.json (no wall-clock inside, so the file is deterministic). *)

type chaos_row = {
  c_protocol : Protocol_kind.t;
  c_seed : int;
  c_schedule : Bft_faults.Fault_schedule.t;
  c_result : Harness.run_result;
}

(* One live-socket crash/recover run (threads mode, 4 nodes).  Unlike the
   simulator rows these are wall-clock measurements, so the [net] block
   of BENCH_faults.json varies run to run — it reports what real crash
   recovery costs on this machine, not a deterministic fixture. *)
type chaos_net_row = {
  cn_protocol : Protocol_kind.t;
  cn_schedule : Bft_faults.Fault_schedule.t;
  cn_result : Bft_net.Tcp.result;
  cn_liveness : Bft_obs.Liveness.report;
}

let chaos_net_run protocol =
  let n = 4 and blocks = 30 in
  let faults =
    match Bft_faults.Fault_schedule.of_string "crash@80:1;recover@260:1" with
    | Ok f -> f
    | Error e -> failwith e
  in
  let cfg =
    {
      (Net_harness.config protocol ~n ~blocks) with
      Bft_net.Tcp.delta_ms = 150.;
      link_delay_ms = 3.;
      faults;
      timeout_ms = 20_000.;
    }
  in
  let cn_result = Net_harness.run protocol cfg in
  {
    cn_protocol = protocol;
    cn_schedule = faults;
    cn_result;
    cn_liveness = Net_harness.net_liveness cn_result ~delta:150.;
  }

let chaos_json rows net_rows ~path =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"bench_faults/v2\",\n  \"runs\": [\n";
  List.iteri
    (fun i { c_protocol; c_seed; c_schedule; c_result } ->
      if i > 0 then Buffer.add_string b ",\n";
      let fs = Option.get c_result.Harness.fault_summary in
      let live = fs.Harness.liveness in
      Printf.bprintf b
        "    {\"protocol\": %S, \"seed\": %d, \"schedule\": %S,\n\
        \     \"blocks\": %d, \"max_commit_gap_ms\": %.0f, \
         \"messages_during_heal\": %d, \"liveness_checks\": %d,\n\
        \     \"recoveries\": ["
        (Protocol_kind.short_name c_protocol)
        c_seed
        (Bft_faults.Fault_schedule.to_string c_schedule)
        c_result.Harness.metrics.Metrics.committed_blocks
        live.Bft_obs.Liveness.max_quorum_gap_ms fs.Harness.messages_during_heal
        live.Bft_obs.Liveness.checks_passed;
      List.iteri
        (fun j (r : Bft_obs.Liveness.recovery) ->
          if j > 0 then Buffer.add_string b ", ";
          Printf.bprintf b
            "{\"node\": %d, \"crash_ms\": %.0f, \"recover_ms\": %.0f, \
             \"catch_up_ms\": %s}"
            r.Bft_obs.Liveness.node r.Bft_obs.Liveness.crashed_at_ms
            r.Bft_obs.Liveness.recovered_at_ms
            (match r.Bft_obs.Liveness.caught_up_at_ms with
            | Some t ->
                Printf.sprintf "%.0f" (t -. r.Bft_obs.Liveness.recovered_at_ms)
            | None -> "null"))
        live.Bft_obs.Liveness.recoveries;
      Buffer.add_string b "]}")
    rows;
  Buffer.add_string b "\n  ],\n  \"net\": [\n";
  List.iteri
    (fun i { cn_protocol; cn_schedule; cn_result; cn_liveness } ->
      if i > 0 then Buffer.add_string b ",\n";
      let sum f =
        Array.fold_left (fun acc nr -> acc + f nr) 0 cn_result.Bft_net.Tcp.nodes
      in
      let recovery_ms, catch_up_ms =
        match cn_liveness.Bft_obs.Liveness.recoveries with
        | r :: _ ->
            ( Printf.sprintf "%.0f"
                (r.Bft_obs.Liveness.recovered_at_ms
                -. r.Bft_obs.Liveness.crashed_at_ms),
              match r.Bft_obs.Liveness.caught_up_at_ms with
              | Some t ->
                  Printf.sprintf "%.0f"
                    (t -. r.Bft_obs.Liveness.recovered_at_ms)
              | None -> "null" )
        | [] -> ("null", "null")
      in
      Printf.bprintf b
        "    {\"protocol\": %S, \"schedule\": %S, \"mode\": \"threads\",\n\
        \     \"wall_ms\": %.0f, \"recovery_ms\": %s, \"catch_up_ms\": %s,\n\
        \     \"reconnect_attempts\": %d, \"restarts\": %d, \
         \"healing_bytes\": %d}"
        (Protocol_kind.short_name cn_protocol)
        (Bft_faults.Fault_schedule.to_string cn_schedule)
        cn_result.Bft_net.Tcp.wall_ms recovery_ms catch_up_ms
        (sum (fun nr -> nr.Bft_net.Tcp.reconnects))
        (sum (fun nr -> nr.Bft_net.Tcp.restarts))
        (sum (fun nr -> nr.Bft_net.Tcp.bytes_heal)))
    net_rows;
  Buffer.add_string b "\n  ]\n}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents b))

let chaos scale =
  Format.printf "@.== Chaos: randomized fault schedules (n=%d, f=%d) ==@.@."
    scale.chaos_n
    ((scale.chaos_n - 1) / 3);
  let n = scale.chaos_n in
  let f = (n - 1) / 3 in
  let tasks =
    List.concat_map
      (fun protocol -> List.map (fun seed -> (protocol, seed)) scale.chaos_seeds)
      protocols
  in
  let rows =
    Parallel.map ~jobs:scale.jobs
      (fun (protocol, seed) ->
        let faults =
          Bft_faults.Fault_schedule.random
            ~rng:(Bft_sim.Rng.create (0x0c4a05 + seed))
            ~n ~f ~duration:scale.chaos_duration ~delta:scale.chaos_delta
        in
        let cfg =
          {
            (Config.local protocol ~n) with
            Config.delta_ms = scale.chaos_delta;
            duration_ms = scale.chaos_duration;
            seed;
            faults;
          }
        in
        { c_protocol = protocol; c_seed = seed; c_schedule = faults;
          c_result = Harness.run cfg })
      tasks
  in
  let t =
    Table.create
      [ "protocol"; "seed"; "crashes"; "blocks"; "catch-up ms";
        "max gap ms"; "heal msgs"; "checks" ]
  in
  List.iter
    (fun { c_protocol; c_seed; c_schedule; c_result } ->
      let fs = Option.get c_result.Harness.fault_summary in
      let live = fs.Harness.liveness in
      let catch_ups =
        List.filter_map
          (fun (r : Bft_obs.Liveness.recovery) ->
            Option.map
              (fun t -> t -. r.Bft_obs.Liveness.recovered_at_ms)
              r.Bft_obs.Liveness.caught_up_at_ms)
          live.Bft_obs.Liveness.recoveries
      in
      Table.add_row t
        [
          Protocol_kind.short_name c_protocol;
          string_of_int c_seed;
          string_of_int (Bft_faults.Fault_schedule.crash_count c_schedule);
          string_of_int c_result.Harness.metrics.Metrics.committed_blocks;
          (if catch_ups = [] then "-"
           else Printf.sprintf "%.0f" (Bft_stats.Descriptive.mean catch_ups));
          Printf.sprintf "%.0f" live.Bft_obs.Liveness.max_quorum_gap_ms;
          string_of_int fs.Harness.messages_during_heal;
          string_of_int live.Bft_obs.Liveness.checks_passed;
        ])
    rows;
  Table.print Format.std_formatter t;
  (* Socket leg: the same crash/recover story on real TCP connections,
     threads mode, one run per protocol.  Sequential on purpose — each
     run owns the process's signal handling and ephemeral ports. *)
  Format.printf "@.-- live sockets (threads mode, n=4, crash node 1) --@.@.";
  let net_rows = List.map chaos_net_run protocols in
  let tn =
    Table.create
      [ "protocol"; "wall ms"; "recovery ms"; "catch-up ms"; "reconnects";
        "heal kB" ]
  in
  List.iter
    (fun { cn_protocol; cn_result; cn_liveness; _ } ->
      let sum f =
        Array.fold_left (fun acc nr -> acc + f nr) 0 cn_result.Bft_net.Tcp.nodes
      in
      let recovery_ms, catch_up_ms =
        match cn_liveness.Bft_obs.Liveness.recoveries with
        | r :: _ ->
            ( Printf.sprintf "%.0f"
                (r.Bft_obs.Liveness.recovered_at_ms
                -. r.Bft_obs.Liveness.crashed_at_ms),
              match r.Bft_obs.Liveness.caught_up_at_ms with
              | Some t ->
                  Printf.sprintf "%.0f"
                    (t -. r.Bft_obs.Liveness.recovered_at_ms)
              | None -> "-" )
        | [] -> ("-", "-")
      in
      Table.add_row tn
        [
          Protocol_kind.short_name cn_protocol;
          Printf.sprintf "%.0f" cn_result.Bft_net.Tcp.wall_ms;
          recovery_ms;
          catch_up_ms;
          string_of_int (sum (fun nr -> nr.Bft_net.Tcp.reconnects));
          Printf.sprintf "%.1f"
            (float_of_int (sum (fun nr -> nr.Bft_net.Tcp.bytes_heal))
            /. 1024.);
        ])
    net_rows;
  Table.print Format.std_formatter tn;
  chaos_json rows net_rows ~path:"BENCH_faults.json";
  Format.printf
    "@.(every row survived its schedule: zero safety violations, every@.      liveness checkpoint met; catch-up = recovery to quorum height;@.      the net block reports wall-clock healing cost on real sockets;@.      details in BENCH_faults.json)@."

(* --- clients: sustained-saturation ingestion sweeps ------------------------- *)

(* Client-perceived end-to-end latency (submit -> quorum commit of the
   containing block) under an open-loop stream from a million clients,
   swept below, at and above each protocol's saturation point.  Capacity
   is calibrated per protocol from a traffic-free run of the same config
   (drain rate = blocks/s x max_batch), so "1.5x" means the same thing
   for a 13 ms Moonshot block period and a 4-hop HotStuff one.  The
   sub-saturation rows isolate queueing delay — Moonshot's delta block
   period versus 2-delta designs, the paper's end-to-end argument — and
   the over-saturation rows show admission control holding the line:
   bounded queues, typed rejections, zero loss.  Everything here is
   simulated time, so BENCH_clients.json is a deterministic fixture. *)

type clients_row = {
  cl_protocol : Protocol_kind.t;
  cl_multiplier : float;
  cl_rate : float;  (** Offered load, commands/s. *)
  cl_capacity : float;  (** Calibrated drain capacity, commands/s. *)
  cl_blocks : int;
  cl_duration_ms : float;
  cl_summary : Bft_mempool.Ingest.summary;
}

let clients_config scale protocol ~n =
  {
    (Config.local protocol ~n) with
    Config.duration_ms = scale.clients_duration;
  }

let clients_multipliers = [ 0.5; 0.9; 1.5 ]
let clients_population = 1_000_000
let clients_max_batch = 256

let clients_spec ~rate =
  {
    Bft_mempool.Spec.default with
    Bft_mempool.Spec.clients = clients_population;
    rate_per_s = rate;
    lanes = 8;
    lane_capacity = 2_048;
    backlog_capacity = 2_048;
    max_batch = clients_max_batch;
    clock = Bft_mempool.Spec.Wall;
  }

let lane_spread (s : Bft_mempool.Ingest.summary) =
  let mn = Array.fold_left min max_int s.Bft_mempool.Ingest.per_lane_committed in
  let mx = Array.fold_left max 0 s.Bft_mempool.Ingest.per_lane_committed in
  (mn, mx)

let clients_json rows ~path =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"bench_clients/v1\",\n";
  Printf.bprintf b "  \"clients\": %d,\n  \"runs\": [\n" clients_population;
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_string b ",\n";
      let s = row.cl_summary in
      let open Bft_mempool.Ingest in
      let mn, mx = lane_spread s in
      Printf.bprintf b
        "    {\"protocol\": %S, \"multiplier\": %.2f, \"rate_per_s\": %.0f, \
         \"capacity_per_s\": %.0f,\n\
        \     \"blocks\": %d, \"submitted\": %d, \"admitted\": %d, \
         \"deferred\": %d, \"rejected\": %d, \"committed\": %d,\n\
        \     \"throughput_per_s\": %.0f, \"p50_ms\": %.1f, \"p90_ms\": \
         %.1f, \"p99_ms\": %.1f, \"mean_ms\": %.1f, \"max_ms\": %.1f,\n\
        \     \"lane_committed_min\": %d, \"lane_committed_max\": %d, \
         \"dissemination_bytes\": %d}"
        (Protocol_kind.short_name row.cl_protocol)
        row.cl_multiplier row.cl_rate row.cl_capacity row.cl_blocks
        s.submitted s.admitted s.deferred s.rejected s.committed
        (float_of_int s.committed /. (row.cl_duration_ms /. 1000.))
        s.lat.p50_ms s.lat.p90_ms s.lat.p99_ms s.lat.mean_ms s.lat.max_ms mn
        mx s.dissemination_bytes)
    rows;
  Buffer.add_string b "\n  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let clients scale =
  let n = scale.clients_n in
  Format.printf
    "@.== Client traffic at saturation (n=%d, %d clients, max batch %d) ==@.@."
    n clients_population clients_max_batch;
  (* All five protocols, not just the paper's four: the HotStuff baseline's
     longer commit path is exactly what the queueing comparison is about. *)
  let rows =
    Parallel.map ~jobs:scale.jobs
      (fun protocol ->
        (* Calibration: the same config with no client traffic measures
           block throughput, which bounds the drain rate at [max_batch]
           commands per block.  Deterministic, so the swept rates (and
           the committed JSON) are too. *)
        let cal = Harness.run (clients_config scale protocol ~n) in
        let cl_capacity =
          cal.Harness.metrics.Metrics.blocks_per_sec
          *. float_of_int clients_max_batch
        in
        List.map
          (fun m ->
            let rate = cl_capacity *. m in
            let cfg =
              {
                (clients_config scale protocol ~n) with
                Config.clients = Some (clients_spec ~rate);
              }
            in
            let r = Harness.run cfg in
            {
              cl_protocol = protocol;
              cl_multiplier = m;
              cl_rate = rate;
              cl_capacity;
              cl_blocks = r.Harness.metrics.Metrics.committed_blocks;
              cl_duration_ms = scale.clients_duration;
              cl_summary = Option.get r.Harness.client_summary;
            })
          clients_multipliers)
      Protocol_kind.all
    |> List.concat
  in
  let t =
    Table.create
      [ "protocol"; "load"; "rate/s"; "submitted"; "committed"; "rejected";
        "p50 ms"; "p99 ms"; "pending"; "lane min/max" ]
  in
  List.iter
    (fun row ->
      let s = row.cl_summary in
      let open Bft_mempool.Ingest in
      let mn, mx = lane_spread s in
      Table.add_row t
        [
          Protocol_kind.short_name row.cl_protocol;
          Printf.sprintf "%.1fx" row.cl_multiplier;
          Printf.sprintf "%.0f" row.cl_rate;
          string_of_int s.submitted;
          string_of_int s.committed;
          (if s.rejected = 0 then "0"
           else
             Printf.sprintf "%d (%.0f%%)" s.rejected
               (100. *. float_of_int s.rejected /. float_of_int s.submitted));
          Printf.sprintf "%.1f" s.lat.p50_ms;
          Printf.sprintf "%.1f" s.lat.p99_ms;
          string_of_int (s.pending + s.backlogged);
          Printf.sprintf "%d/%d" mn mx;
        ])
    rows;
  Table.print Format.std_formatter t;
  clients_json rows ~path:"BENCH_clients.json";
  Format.printf
    "@.(open-loop arrivals; load is relative to each protocol's calibrated@.\
    \      drain capacity (blocks/s x max batch); latency is submit to@.\
    \      quorum commit of the containing block; over-saturation rows@.\
    \      shed load by typed rejection, never silently; details in@.\
    \      BENCH_clients.json)@."

(* --- beyond-paper scale (n = 1000) ------------------------------------------ *)

(* Dedicated [n1000] target, deliberately not part of [all]: the paper's
   evaluation stops at n = 200, and this sweep shows the rewritten core
   pushing the same WAN model five times further.  Empty payloads isolate
   protocol traffic — the O(n^2)-per-view vote fan-out the engine's batch
   path and message pools exist for.  The run counts printed (events,
   messages) are simulation outputs, so the table stays byte-identical
   whatever [--jobs] is. *)
let scale_beyond scale =
  Format.printf
    "@.== Beyond paper scale: protocol traffic up to n=1000 (p=0) ==@.@.";
  let ns = [ 200; 500; 1000 ] in
  let ps = [ Protocol_kind.Pipelined_moonshot; Protocol_kind.Jolteon ] in
  let t =
    Table.create
      [ "n"; "protocol"; "blocks"; "blk/s"; "latency ms"; "events"; "msgs" ]
  in
  let rows =
    Parallel.map ~jobs:scale.jobs
      (fun (n, protocol) ->
        let cfg =
          {
            (Config.default protocol ~n) with
            Config.payload_bytes = 0;
            duration_ms = 2_000.;
          }
        in
        let results = Harness.run_seeds cfg ~seeds:scale.seeds in
        let events =
          List.fold_left (fun a r -> a + r.Harness.events_processed) 0 results
        in
        let msgs =
          List.fold_left (fun a r -> a + r.Harness.messages_sent) 0 results
        in
        (n, protocol, Harness.summarize results, events, msgs))
      (List.concat_map (fun n -> List.map (fun p -> (n, p)) ps) ns)
  in
  List.iter
    (fun (n, protocol, s, events, msgs) ->
      Table.add_row t
        [
          string_of_int n;
          Protocol_kind.short_name protocol;
          Printf.sprintf "%.0f" s.Harness.blocks_committed;
          Printf.sprintf "%.2f" s.Harness.blocks_per_sec;
          Printf.sprintf "%.0f" s.Harness.avg_latency_ms;
          string_of_int events;
          string_of_int msgs;
        ])
    rows;
  Table.print Format.std_formatter t;
  Format.printf
    "@.(the paper's evaluation stops at n=200; same WAN model and protocol@.      stacks, 2 s simulated per run)@."
