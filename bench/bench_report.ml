(* Machine-readable perf trajectory of the bench runs themselves.

   Every experiment dispatched by [main.ml] is timed (wall clock) and
   attributed the simulator events its runs processed (via the harness's
   atomic lifetime counter, so worker-domain runs count).  [write] dumps
   the collected entries as BENCH_simcore.json so successive PRs can diff
   events/second and per-experiment wall-clock instead of eyeballing
   bench output. *)

type entry = { name : string; wall_s : float; events : int }

let entries : entry list ref = ref []

let with_experiment name f =
  let events0 = Bft_runtime.Harness.events_processed_total () in
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () ->
      let wall_s = Unix.gettimeofday () -. t0 in
      let events = Bft_runtime.Harness.events_processed_total () - events0 in
      entries := { name; wall_s; events } :: !entries)
    f

let events_per_sec ~events ~wall_s =
  if wall_s > 0. then float_of_int events /. wall_s else 0.

let buffer_entry b { name; wall_s; events } =
  Printf.bprintf b
    "    {\"name\": %S, \"wall_clock_s\": %.3f, \"events\": %d, \
     \"events_per_sec\": %.0f}"
    name wall_s events (events_per_sec ~events ~wall_s)

let write ~jobs ~path =
  let recorded = List.rev !entries in
  let wall_s = List.fold_left (fun a e -> a +. e.wall_s) 0. recorded in
  let events = List.fold_left (fun a e -> a + e.events) 0 recorded in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": \"bench_simcore/v1\",\n";
  Printf.bprintf b "  \"jobs\": %d,\n" jobs;
  Printf.bprintf b
    "  \"total\": {\"wall_clock_s\": %.3f, \"events\": %d, \
     \"events_per_sec\": %.0f},\n"
    wall_s events (events_per_sec ~events ~wall_s);
  Buffer.add_string b "  \"experiments\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      buffer_entry b e)
    recorded;
  Buffer.add_string b "\n  ]\n}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents b));
  Format.printf "@.wrote %s: %d experiments, %.1f s wall, %d events \
                 (%.0f events/s, jobs=%d)@."
    path (List.length recorded) wall_s events
    (events_per_sec ~events ~wall_s)
    jobs
