(* Machine-readable perf trajectory of the bench runs themselves.

   Every experiment dispatched by [main.ml] is timed (wall clock) and
   attributed the simulator events its runs processed and the heap bytes
   those event loops allocated (via the harness's atomic lifetime counters,
   so worker-domain runs count).  [write] dumps the collected entries as
   BENCH_simcore.json so successive PRs can diff events/second and
   bytes-allocated-per-event instead of eyeballing bench output.

   The [bench_smoke] block is the regression tripwire's reference point:
   the committed BENCH_simcore.json at the repo root carries the
   events/second the @bench-smoke alias compares fresh measurements
   against (see [Bench_smoke]). *)

type entry = {
  name : string;
  wall_s : float;
  events : int;
  alloc_bytes : int;
}

let entries : entry list ref = ref []

let with_experiment name f =
  let events0 = Bft_runtime.Harness.events_processed_total () in
  let alloc0 = Bft_runtime.Harness.bytes_allocated_total () in
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () ->
      let wall_s = Unix.gettimeofday () -. t0 in
      let events = Bft_runtime.Harness.events_processed_total () - events0 in
      let alloc_bytes =
        Bft_runtime.Harness.bytes_allocated_total () - alloc0
      in
      entries := { name; wall_s; events; alloc_bytes } :: !entries)
    f

type smoke = {
  smoke_wall_s : float;
  smoke_events : int;
  smoke_alloc_bytes : int;
}

let smoke_result : smoke option ref = ref None
let set_smoke s = smoke_result := Some s

let events_per_sec ~events ~wall_s =
  if wall_s > 0. then float_of_int events /. wall_s else 0.

let bytes_per_event ~events ~alloc_bytes =
  if events > 0 then float_of_int alloc_bytes /. float_of_int events else 0.

let buffer_entry b { name; wall_s; events; alloc_bytes } =
  Printf.bprintf b
    "    {\"name\": %S, \"wall_clock_s\": %.3f, \"events\": %d, \
     \"events_per_sec\": %.0f, \"alloc_bytes\": %d, \
     \"alloc_bytes_per_event\": %.1f}"
    name wall_s events
    (events_per_sec ~events ~wall_s)
    alloc_bytes
    (bytes_per_event ~events ~alloc_bytes)

let write ~jobs ~path =
  let recorded = List.rev !entries in
  let wall_s = List.fold_left (fun a e -> a +. e.wall_s) 0. recorded in
  let events = List.fold_left (fun a e -> a + e.events) 0 recorded in
  let alloc_bytes =
    List.fold_left (fun a e -> a + e.alloc_bytes) 0 recorded
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": \"bench_simcore/v2\",\n";
  Printf.bprintf b "  \"jobs\": %d,\n" jobs;
  Printf.bprintf b
    "  \"total\": {\"wall_clock_s\": %.3f, \"events\": %d, \
     \"events_per_sec\": %.0f, \"alloc_bytes\": %d, \
     \"alloc_bytes_per_event\": %.1f},\n"
    wall_s events
    (events_per_sec ~events ~wall_s)
    alloc_bytes
    (bytes_per_event ~events ~alloc_bytes);
  (match !smoke_result with
  | None -> ()
  | Some { smoke_wall_s; smoke_events; smoke_alloc_bytes } ->
      Printf.bprintf b
        "  \"bench_smoke\": {\"wall_clock_s\": %.3f, \"events\": %d, \
         \"events_per_sec\": %.0f, \"alloc_bytes_per_event\": %.1f},\n"
        smoke_wall_s smoke_events
        (events_per_sec ~events:smoke_events ~wall_s:smoke_wall_s)
        (bytes_per_event ~events:smoke_events ~alloc_bytes:smoke_alloc_bytes));
  Buffer.add_string b "  \"experiments\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      buffer_entry b e)
    recorded;
  Buffer.add_string b "\n  ]\n}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents b));
  Format.printf "@.wrote %s: %d experiments, %.1f s wall, %d events \
                 (%.0f events/s, %.1f alloc B/event, jobs=%d)@."
    path (List.length recorded) wall_s events
    (events_per_sec ~events ~wall_s)
    (bytes_per_event ~events ~alloc_bytes)
    jobs
