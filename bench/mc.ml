(* Model-checker throughput benchmark.

   Explores the standard exhaustive worlds (n = 4, the deepest bounds that
   stay under a minute per protocol single-core) and reports states/second
   and the reduction stack's pruning ratios, runs the n = 5 symmetry
   acceptance comparison (canonicalized run exhausts; baseline gets the
   same wall-clock budget and is cut off), samples a swarm block per
   protocol, then writes BENCH_mc.json (schema bench_mc/v2) so successive
   PRs can diff checker performance the same way BENCH_simcore.json tracks
   the simulator.  [smoke] is the sub-second `dune runtest` tripwire: tiny
   worlds through the full checker stack, failing loudly on any violation,
   deadlock or non-exhaustion.  [swarm_smoke] is its sampling-mode twin:
   jobs-determinism, seed-separation and symmetry-agreement checks on tiny
   worlds. *)

open Bft_mc
module Kind = Bft_runtime.Protocol_kind

type row = {
  name : string;
  wall_s : float;
  report : Mc_report.t;
}

let states_per_sec r =
  if r.wall_s > 0. then
    float_of_int r.report.Mc_report.stats.Mc_report.states_visited /. r.wall_s
  else 0.

(* The acceptance worlds: view bound 3 exhausts for every protocol in
   under a minute single-core.  The default scale trims the three Moonshot
   variants to view 2 (seconds, same reduction machinery); Jolteon and
   HotStuff explore tiny spaces, and HotStuff's 3-chain rule needs the
   third view to commit at all, so they keep the deep bound everywhere. *)
let world ~full kind =
  let view_bound =
    match kind with
    | Kind.Jolteon | Kind.Hotstuff -> 3
    | _ -> if full then 3 else 2
  in
  let timer_budget = if full then 3 else 1 in
  Checker.config ~n:4 ~view_bound ~timer_budget ()

let run_one ?stop ~jobs kind cfg =
  let t0 = Unix.gettimeofday () in
  let report = Checker.check ?stop ~jobs kind cfg in
  { name = Kind.name kind; wall_s = Unix.gettimeofday () -. t0; report }

let print_table rows =
  Format.printf "@.%-20s %10s %10s %8s %8s %9s %7s %6s@." "protocol" "states"
    "states/s" "digest%" "sleep%" "depth<=" "commits" "wall";
  List.iter
    (fun r ->
      let s = r.report.Mc_report.stats in
      Format.printf "%-20s %10d %10.0f %7.0f%% %7.0f%% %9d %7d %5.1fs@." r.name
        s.Mc_report.states_visited (states_per_sec r)
        (100. *. Mc_report.digest_prune_ratio s)
        (100. *. Mc_report.sleep_prune_ratio s)
        s.Mc_report.max_depth_seen r.report.Mc_report.max_committed r.wall_s)
    rows

let guard r =
  if r.report.Mc_report.violations <> [] then
    failwith
      (Format.asprintf "mc bench: %s has violations:@.%a" r.name Mc_report.pp
         r.report);
  if not r.report.Mc_report.stats.Mc_report.exhausted then
    failwith (Printf.sprintf "mc bench: %s did not exhaust its bound" r.name);
  if r.report.Mc_report.deadlocks <> 0 then
    failwith (Printf.sprintf "mc bench: %s has deadlocked branches" r.name)

(* {2 Symmetry acceptance comparison}

   The n = 5 world at view bound 3 has two movable followers (nodes 3 and
   4: round-robin pins the leaders of views 1-3, node 3's only lead is a
   leaf transition, and the crashed node 1 is schedule-fixed below the
   bound anyway).  The crash of view 2's leader plus timer budget 2 makes
   the space timeout-rich and follower-asymmetric — the regime where
   canonicalizing 3<->4 mirrors pays (measured ~25-30 % of states and
   wall-clock).  The baseline run gets exactly the symmetry run's
   wall-clock as a deadline and is expected to be cut off mid-search. *)

let sym_world =
  Checker.config ~n:5 ~view_bound:3 ~timer_budget:2 ~reorder_window:2
    ~faults:[ Mc_schedule.Crash 1 ] ~symmetry:true ()

let deadline secs =
  let t0 = Unix.gettimeofday () in
  fun () -> Unix.gettimeofday () -. t0 > secs

let run_symmetry ~jobs =
  Format.printf "@.symmetry: n=5 jolteon, view bound 3, crash of view-2 leader@.";
  let sym = run_one ~jobs Kind.Jolteon sym_world in
  guard { sym with name = "n5-symmetry" };
  let base_cfg = { sym_world with Checker.symmetry = false } in
  let base =
    run_one ~stop:(deadline sym.wall_s) ~jobs Kind.Jolteon base_cfg
  in
  let pr tag r =
    let s = r.report.Mc_report.stats in
    Format.printf "  %-10s states=%d transitions=%d exhausted=%b wall=%.1fs@."
      tag s.Mc_report.states_visited s.Mc_report.transitions
      s.Mc_report.exhausted r.wall_s
  in
  pr "symmetry" sym;
  pr "baseline" base;
  if base.report.Mc_report.stats.Mc_report.exhausted then
    Format.printf
      "  note: baseline finished inside the symmetry budget on this host@.";
  (sym, base)

(* {2 Swarm sampling block} *)

type swarm_row = {
  s_name : string;
  s_wall : float;
  s_sw : Mc_report.swarm;
}

let swarm_world = Checker.config ~n:4 ~view_bound:2 ~timer_budget:1 ()

let run_swarm ~jobs ~walks ~depth kind =
  let t0 = Unix.gettimeofday () in
  let sw = Checker.swarm ~jobs kind ~walks ~depth ~seed:1 swarm_world in
  { s_name = Kind.name kind; s_wall = Unix.gettimeofday () -. t0; s_sw = sw }

let print_swarm rows =
  Format.printf "@.%-20s %7s %8s %9s %9s %9s %6s@." "protocol" "walks"
    "walks/s" "steps" "distinct" "coverage" "wall";
  List.iter
    (fun r ->
      let sw = r.s_sw in
      Format.printf "%-20s %7d %8.0f %9d %9d %9.1f %5.1fs@." r.s_name
        sw.Mc_report.sw_walks
        (if r.s_wall > 0. then float_of_int sw.Mc_report.sw_walks /. r.s_wall
         else 0.)
        sw.Mc_report.sw_steps sw.Mc_report.sw_distinct (Mc_report.coverage sw)
        r.s_wall)
    rows

let swarm_guard r =
  if r.s_sw.Mc_report.sw_violations <> [] then
    failwith
      (Format.asprintf "mc bench: swarm %s found violations:@.%a" r.s_name
         Mc_report.pp_swarm r.s_sw);
  if r.s_sw.Mc_report.sw_livelock_witness <> None then
    failwith (Printf.sprintf "mc bench: swarm %s found a livelock" r.s_name)

(* {2 JSON} *)

let write_json ~jobs ~path rows (sym, base) swarm_rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": \"bench_mc/v2\",\n";
  Printf.bprintf b "  \"jobs\": %d,\n" jobs;
  Buffer.add_string b "  \"worlds\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      let s = r.report.Mc_report.stats in
      Printf.bprintf b
        "    {\"name\": %S, \"states\": %d, \"matched\": %d, \
         \"reexpanded\": %d, \"transitions\": %d, \"branches\": %d, \
         \"sleep_skips\": %d, \"digest_prune_ratio\": %.4f, \
         \"sleep_prune_ratio\": %.4f, \"max_depth\": %d, \"exhausted\": %b, \
         \"max_committed\": %d, \"violations\": %d, \"deadlocks\": %d, \
         \"livelocks\": %d, \"wall_clock_s\": %.3f, \"states_per_sec\": %.0f}"
        r.name s.Mc_report.states_visited s.Mc_report.states_matched
        s.Mc_report.states_reexpanded s.Mc_report.transitions
        s.Mc_report.branches s.Mc_report.sleep_skips
        (Mc_report.digest_prune_ratio s)
        (Mc_report.sleep_prune_ratio s)
        s.Mc_report.max_depth_seen s.Mc_report.exhausted
        r.report.Mc_report.max_committed
        (List.length r.report.Mc_report.violations)
        r.report.Mc_report.deadlocks r.report.Mc_report.livelocks r.wall_s
        (states_per_sec r))
    rows;
  Buffer.add_string b "\n  ],\n";
  let sym_entry tag r =
    let s = r.report.Mc_report.stats in
    Printf.bprintf b
      "    \"%s\": {\"states\": %d, \"transitions\": %d, \"exhausted\": %b, \
       \"wall_clock_s\": %.3f, \"states_per_sec\": %.0f}"
      tag s.Mc_report.states_visited s.Mc_report.transitions
      s.Mc_report.exhausted r.wall_s (states_per_sec r)
  in
  Buffer.add_string b "  \"symmetry_n5\": {\n";
  Printf.bprintf b
    "    \"world\": \"jolteon n=5 view<=3 timer-budget=2 reorder=2 crash@1\",\n";
  sym_entry "symmetry" sym;
  Buffer.add_string b ",\n";
  sym_entry "baseline_same_budget" base;
  Buffer.add_string b "\n  },\n";
  Buffer.add_string b "  \"swarm\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      let sw = r.s_sw in
      Printf.bprintf b
        "    {\"name\": %S, \"walks\": %d, \"steps\": %d, \"distinct\": %d, \
         \"coverage\": %.2f, \"walks_per_sec\": %.0f, \"max_committed\": %d, \
         \"commitless\": %d, \"fingerprint\": \"%Lx\", \"wall_clock_s\": %.3f}"
        r.s_name sw.Mc_report.sw_walks sw.Mc_report.sw_steps
        sw.Mc_report.sw_distinct (Mc_report.coverage sw)
        (if r.s_wall > 0. then float_of_int sw.Mc_report.sw_walks /. r.s_wall
         else 0.)
        sw.Mc_report.sw_max_committed sw.Mc_report.sw_commitless
        sw.Mc_report.sw_fingerprint r.s_wall)
    swarm_rows;
  Buffer.add_string b "\n  ]\n}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents b));
  Format.printf "@.wrote %s: %d worlds, symmetry block, %d swarm rows@." path
    (List.length rows) (List.length swarm_rows)

let run ~jobs ~full () =
  Format.printf "model checker: n=4 exhaustive worlds%s@."
    (if full then " (full scale, view bound 3)" else "");
  let rows =
    List.map (fun kind -> run_one ~jobs kind (world ~full kind)) Kind.all
  in
  List.iter guard rows;
  print_table rows;
  let sym_cmp = run_symmetry ~jobs in
  let swarm_rows = List.map (run_swarm ~jobs ~walks:256 ~depth:48) Kind.all in
  List.iter swarm_guard swarm_rows;
  print_swarm swarm_rows;
  write_json ~jobs ~path:"BENCH_mc.json" rows sym_cmp swarm_rows

(* Sub-second: one Moonshot world at view 1 (reduction machinery, no
   commits reachable) and the two chained protocols at view 3 (commits,
   timers, the full invariant set). *)
let smoke () =
  let rows =
    [
      run_one ~jobs:1 Kind.Simple_moonshot
        (Checker.config ~n:4 ~view_bound:1 ~timer_budget:1 ());
      run_one ~jobs:1 Kind.Jolteon
        (Checker.config ~n:4 ~view_bound:3 ~timer_budget:1 ());
      run_one ~jobs:1 Kind.Hotstuff
        (Checker.config ~n:4 ~view_bound:3 ~timer_budget:1 ());
    ]
  in
  List.iter guard rows;
  List.iter
    (fun r ->
      if r.name <> "simple-moonshot" && r.report.Mc_report.max_committed = 0
      then failwith (Printf.sprintf "mc smoke: %s never committed" r.name))
    rows;
  print_table rows

(* Sub-second tripwire for the sampling modes: swarm determinism across
   jobs, per-walk seed separation, and symmetry/baseline agreement on a
   tiny exhaustive world. *)
let swarm_smoke () =
  let cfg = Checker.config ~n:4 ~view_bound:2 ~timer_budget:1 () in
  let s1 = Checker.swarm ~jobs:1 Kind.Simple_moonshot ~walks:24 ~depth:40 ~seed:7 cfg in
  let s4 = Checker.swarm ~jobs:4 Kind.Simple_moonshot ~walks:24 ~depth:40 ~seed:7 cfg in
  if s1 <> s4 then failwith "mc swarm smoke: jobs=1 and jobs=4 reports differ";
  let s7 = Checker.swarm ~jobs:1 Kind.Simple_moonshot ~walks:24 ~depth:40 ~seed:8 cfg in
  if Int64.equal s1.Mc_report.sw_fingerprint s7.Mc_report.sw_fingerprint then
    failwith "mc swarm smoke: distinct seeds produced identical walk sets";
  if s1.Mc_report.sw_violations <> [] then
    failwith "mc swarm smoke: unexpected violation";
  (* Symmetry agreement: same verdicts, no larger digest set. *)
  let tiny = Checker.config ~n:5 ~view_bound:1 ~timer_budget:1 () in
  let base = Checker.check ~jobs:1 Kind.Simple_moonshot tiny in
  let sym =
    Checker.check ~jobs:1 Kind.Simple_moonshot
      { tiny with Checker.symmetry = true }
  in
  let verdict (r : Mc_report.t) =
    ( List.length r.Mc_report.violations,
      r.Mc_report.max_committed,
      r.Mc_report.deadlocks,
      r.Mc_report.stats.Mc_report.exhausted )
  in
  if verdict base <> verdict sym then
    failwith "mc swarm smoke: symmetry changed the verdict";
  if
    sym.Mc_report.stats.Mc_report.states_visited
    > base.Mc_report.stats.Mc_report.states_visited
  then failwith "mc swarm smoke: symmetry enlarged the state space";
  Format.printf
    "mc swarm smoke: fingerprint=%Lx distinct=%d sym-states=%d/%d ok@."
    s1.Mc_report.sw_fingerprint s1.Mc_report.sw_distinct
    sym.Mc_report.stats.Mc_report.states_visited
    base.Mc_report.stats.Mc_report.states_visited
