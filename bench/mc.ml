(* Model-checker throughput benchmark.

   Explores the standard exhaustive worlds (n = 4, the deepest bounds that
   stay under a minute per protocol single-core) and reports states/second
   and the reduction stack's pruning ratio, then writes BENCH_mc.json so
   successive PRs can diff checker performance the same way BENCH_simcore.json
   tracks the simulator.  [smoke] is the sub-second `dune runtest` tripwire:
   tiny worlds through the full checker stack, failing loudly on any
   violation, deadlock or non-exhaustion. *)

open Bft_mc
module Kind = Bft_runtime.Protocol_kind

type row = {
  name : string;
  wall_s : float;
  report : Mc_report.t;
}

let states_per_sec r =
  if r.wall_s > 0. then
    float_of_int r.report.Mc_report.stats.Mc_report.states_visited /. r.wall_s
  else 0.

(* The acceptance worlds: view bound 3 exhausts for every protocol in
   under a minute single-core.  The default scale trims the three Moonshot
   variants to view 2 (seconds, same reduction machinery); Jolteon and
   HotStuff explore tiny spaces, and HotStuff's 3-chain rule needs the
   third view to commit at all, so they keep the deep bound everywhere. *)
let world ~full kind =
  let view_bound =
    match kind with
    | Kind.Jolteon | Kind.Hotstuff -> 3
    | _ -> if full then 3 else 2
  in
  let timer_budget = if full then 3 else 1 in
  Checker.config ~n:4 ~view_bound ~timer_budget ()

let run_one ~jobs kind cfg =
  let t0 = Unix.gettimeofday () in
  let report = Checker.check ~jobs kind cfg in
  { name = Kind.name kind; wall_s = Unix.gettimeofday () -. t0; report }

let print_table rows =
  Format.printf "@.%-20s %10s %10s %8s %9s %7s %6s@." "protocol" "states"
    "states/s" "pruning" "depth<=" "commits" "wall";
  List.iter
    (fun r ->
      let s = r.report.Mc_report.stats in
      Format.printf "%-20s %10d %10.0f %7.0f%% %9d %7d %5.1fs@." r.name
        s.Mc_report.states_visited (states_per_sec r)
        (100. *. Mc_report.pruning_ratio s)
        s.Mc_report.max_depth_seen r.report.Mc_report.max_committed r.wall_s)
    rows

let write_json ~jobs ~path rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": \"bench_mc/v1\",\n";
  Printf.bprintf b "  \"jobs\": %d,\n" jobs;
  Buffer.add_string b "  \"worlds\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      let s = r.report.Mc_report.stats in
      Printf.bprintf b
        "    {\"name\": %S, \"states\": %d, \"transitions\": %d, \
         \"sleep_skips\": %d, \"pruning_ratio\": %.4f, \"max_depth\": %d, \
         \"exhausted\": %b, \"max_committed\": %d, \"violations\": %d, \
         \"deadlocks\": %d, \"wall_clock_s\": %.3f, \"states_per_sec\": %.0f}"
        r.name s.Mc_report.states_visited s.Mc_report.transitions
        s.Mc_report.sleep_skips
        (Mc_report.pruning_ratio s)
        s.Mc_report.max_depth_seen s.Mc_report.exhausted
        r.report.Mc_report.max_committed
        (List.length r.report.Mc_report.violations)
        r.report.Mc_report.deadlocks r.wall_s (states_per_sec r))
    rows;
  Buffer.add_string b "\n  ]\n}\n";
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents b));
  Format.printf "@.wrote %s: %d worlds@." path (List.length rows)

let guard r =
  if r.report.Mc_report.violations <> [] then
    failwith
      (Format.asprintf "mc bench: %s has violations:@.%a" r.name Mc_report.pp
         r.report);
  if not r.report.Mc_report.stats.Mc_report.exhausted then
    failwith (Printf.sprintf "mc bench: %s did not exhaust its bound" r.name);
  if r.report.Mc_report.deadlocks <> 0 then
    failwith (Printf.sprintf "mc bench: %s has deadlocked branches" r.name)

let run ~jobs ~full () =
  Format.printf "model checker: n=4 exhaustive worlds%s@."
    (if full then " (full scale, view bound 3)" else "");
  let rows =
    List.map (fun kind -> run_one ~jobs kind (world ~full kind)) Kind.all
  in
  List.iter guard rows;
  print_table rows;
  write_json ~jobs ~path:"BENCH_mc.json" rows

(* Sub-second: one Moonshot world at view 1 (reduction machinery, no
   commits reachable) and the two chained protocols at view 3 (commits,
   timers, the full invariant set). *)
let smoke () =
  let rows =
    [
      run_one ~jobs:1 Kind.Simple_moonshot
        (Checker.config ~n:4 ~view_bound:1 ~timer_budget:1 ());
      run_one ~jobs:1 Kind.Jolteon
        (Checker.config ~n:4 ~view_bound:3 ~timer_budget:1 ());
      run_one ~jobs:1 Kind.Hotstuff
        (Checker.config ~n:4 ~view_bound:3 ~timer_budget:1 ());
    ]
  in
  List.iter guard rows;
  List.iter
    (fun r ->
      if r.name <> "simple-moonshot" && r.report.Mc_report.max_committed = 0
      then failwith (Printf.sprintf "mc smoke: %s never committed" r.name))
    rows;
  print_table rows
