(* The bounded model checker end to end: exhaustive small worlds are safe
   and live for all five protocols, an injected double-vote bug is caught
   with a deterministically replayable counterexample, exploration is
   bit-identical across worker counts, the PR-3 post-partition deadlock
   stays fixed, and the schedule compiler rejects what it must reject.

   The sampling modes are covered by the same standard: swarm walks are
   byte-identical across job counts and find the injected double vote; the
   coverage-guided schedule search rediscovers the PR-3 post-partition
   wedge on a protocol with the fix reverted — from a pinned seed and
   budget, with a byte-stable JSONL replay — and finds nothing on the
   fixed protocol under the identical budget.  The symmetry canonicalizer
   is checked against its model-based spec by qcheck. *)

open Bft_mc
module Kind = Bft_runtime.Protocol_kind
module FS = Bft_faults.Fault_schedule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A 4-node world explored to view 2 with one timeout per node per era:
   small enough for the suite, deep enough to cover proposal, vote,
   certificate, gossip and timeout interleavings. *)
let small_cfg ?faults ?equivocators ?(view_bound = 2) () =
  Checker.config ~n:4 ~view_bound ~timer_budget:1 ?faults ?equivocators ()

(* --- safety of the real protocols ------------------------------------------- *)

let test_all_protocols_safe () =
  List.iter
    (fun kind ->
      let name = Kind.name kind in
      (* HotStuff's 3-chain commit rule needs a third view; Jolteon and
         HotStuff explore tiny spaces (unicast vote collection), so the
         deeper bound costs nothing. *)
      let view_bound =
        match kind with Kind.Jolteon | Kind.Hotstuff -> 3 | _ -> 2
      in
      let r = Checker.check kind (small_cfg ~view_bound ()) in
      check_int (name ^ ": zero violations") 0 (List.length r.Mc_report.violations);
      check (name ^ ": state space exhausted") true
        r.Mc_report.stats.Mc_report.exhausted;
      check (name ^ ": some branch commits") true (r.Mc_report.max_committed > 0);
      check (name ^ ": commit witness recorded") true
        (r.Mc_report.commit_witness <> None);
      check_int (name ^ ": no deadlocked branch") 0 r.Mc_report.deadlocks;
      check (name ^ ": exploration is nontrivial") true
        (r.Mc_report.stats.Mc_report.states_visited > 20))
    Kind.all

let test_equivocator_does_not_trip_double_vote () =
  (* A registered equivocating proposer sends conflicting blocks by design;
     the double-vote invariant must exempt it (safety must still hold for
     the honest nodes). *)
  let r =
    Checker.check Kind.Simple_moonshot (small_cfg ~equivocators:[ 0 ] ())
  in
  check_int "equivocator worlds stay violation-free" 0
    (List.length r.Mc_report.violations);
  check "and are fully explored" true r.Mc_report.stats.Mc_report.exhausted

(* --- the deliberately broken protocol ---------------------------------------- *)

module Broken_mc = Checker.Make (Test_support.Broken.Double_vote)

let test_double_vote_detected () =
  let cfg = small_cfg () in
  let r = Broken_mc.check cfg in
  check "the injected bug is found" true (r.Mc_report.violations <> []);
  let v = List.hd r.Mc_report.violations in
  check "and classified as a double vote" true
    (v.Mc_report.kind = Mc_report.Double_vote);
  check "with a short counterexample" true (List.length v.Mc_report.path <= 8);
  let described = Broken_mc.describe cfg v.Mc_report.path in
  check "describe renders every step" true
    (List.length (String.split_on_char '\n' (String.trim described))
    = List.length v.Mc_report.path)

let test_counterexample_replay_is_byte_stable () =
  let cfg = small_cfg () in
  let r1 = Broken_mc.check cfg in
  let r2 = Broken_mc.check ~jobs:3 cfg in
  let path r =
    match r.Mc_report.violations with
    | v :: _ -> v.Mc_report.path
    | [] -> Alcotest.fail "expected a counterexample"
  in
  check "same counterexample for any worker count" true (path r1 = path r2);
  let jsonl () = Bft_obs.Trace.to_jsonl (Broken_mc.replay cfg (path r1)) in
  let a = jsonl () and b = jsonl () in
  check "replay traces are non-empty" true (String.length a > 0);
  check "and byte-identical across runs" true (String.equal a b)

(* --- determinism across worker counts ---------------------------------------- *)

let test_jobs_determinism () =
  let cfg = small_cfg () in
  let r1 = Checker.check ~jobs:1 Kind.Simple_moonshot cfg in
  let r4 = Checker.check ~jobs:4 Kind.Simple_moonshot cfg in
  (* The whole report — counts, witness paths, violation lists — is plain
     data, so structural equality is the strongest possible statement. *)
  check "reports are structurally identical for jobs 1 vs 4" true (r1 = r4)

(* --- the PR-3 regression: post-partition recovery ----------------------------- *)

let test_partition_regression () =
  (* Split 2/2 (neither side has a quorum), then heal: the checker must
     find no stuck branch — every explored world either commits or is
     truncated by the view bound while still able to act.  This is the
     world in which Simple Moonshot deadlocked before the stuck-view
     rebroadcast fix. *)
  let sched =
    [ FS.Partition { groups = [ [ 0; 1 ]; [ 2; 3 ] ]; from_ = 0.; until = 1000. } ]
  in
  match Mc_schedule.compile ~n:4 sched with
  | Error e -> Alcotest.fail e
  | Ok steps ->
      check_int "partition compiles to its two edges" 2 (List.length steps);
      let cfg = small_cfg ~faults:steps () in
      let r = Checker.check Kind.Simple_moonshot cfg in
      check_int "no safety violations through split and heal" 0
        (List.length r.Mc_report.violations);
      check "state space exhausted" true r.Mc_report.stats.Mc_report.exhausted;
      check_int "no branch deadlocks post-heal" 0 r.Mc_report.deadlocks;
      check "some branch commits despite the partition" true
        (r.Mc_report.max_committed >= 1 && r.Mc_report.commit_witness <> None)

(* --- exploration statistics ---------------------------------------------------- *)

let test_stats_accounting () =
  (* Tiny world, pinned by hand: n=4, view 1 only, no timer budget — the
     only choices are delivery orderings of leader 0's view-1 traffic.
     The root offers the three proposal deliveries; sleep sets prune the
     commuting orders (deliveries to distinct destinations), digest
     matching never fires (every surviving interleaving differs in arrival
     order, which the digest includes).  The pinned numbers are a
     regression anchor for the counter semantics: a change that starts
     counting sleep-pruned branches as digest-matched (or vice versa)
     moves them. *)
  let r =
    Checker.check Kind.Simple_moonshot
      (Checker.config ~n:4 ~view_bound:1 ~timer_budget:0 ())
  in
  let s = r.Mc_report.stats in
  check_int "tiny world: distinct states" 113 s.Mc_report.states_visited;
  check_int "tiny world: nothing digest-matched" 0 s.Mc_report.states_matched;
  check_int "tiny world: nothing re-expanded" 0 s.Mc_report.states_reexpanded;
  check_int "tiny world: sleep-pruned branches counted separately" 158
    s.Mc_report.sleep_skips;
  check_int "tiny world: branches = transitions - 1" 112 s.Mc_report.branches;
  check_int "tiny world: leaves" 42 s.Mc_report.leaves;
  (* A world where every counter is live: a crashing follower makes
     distinct interleavings converge (digest matches), and convergence
     under differing sleep sets forces re-expansions.  The identities are
     the checker's own bookkeeping invariants. *)
  let r =
    Checker.check Kind.Jolteon
      (Checker.config ~n:5 ~view_bound:2 ~timer_budget:1 ~reorder_window:2
         ~faults:[ Mc_schedule.Crash 1 ] ~symmetry:true ())
  in
  let s = r.Mc_report.stats in
  check "crash world: digest matches occur" true (s.Mc_report.states_matched > 0);
  check "crash world: re-expansions occur" true
    (s.Mc_report.states_reexpanded > 0);
  check "crash world: sleep pruning occurs" true (s.Mc_report.sleep_skips > 0);
  check_int "crash world: transitions = visited + matched + reexpanded"
    s.Mc_report.transitions
    (s.Mc_report.states_visited + s.Mc_report.states_matched
   + s.Mc_report.states_reexpanded);
  check_int "crash world: transitions = branches + 1" s.Mc_report.transitions
    (s.Mc_report.branches + 1);
  let dpr = Mc_report.digest_prune_ratio s in
  let spr = Mc_report.sleep_prune_ratio s in
  check "crash world: ratios are proper fractions" true
    (dpr > 0. && dpr < 1. && spr > 0. && spr < 1.)

(* --- validator symmetry -------------------------------------------------------- *)

(* Model-based spec of the canonicalizer over random structured vectors:
   canonicalization is invariant under any movable permutation, and two
   vectors share a canonical digest exactly when one is a movable
   permutation of the other (no inequivalent states collapse). *)

let vec_gen =
  let open QCheck.Gen in
  let small_hash = map Int64.of_int (int_range 0 5) in
  int_range 4 6 >>= fun n ->
  int_range 1 2 >>= fun view_bound ->
  array_size (return n) (pair small_hash small_hash) >>= fun sv_nodes ->
  array_size (return (n * n)) small_hash >>= fun sv_chans ->
  array_size (return n) (list_size (int_range 0 2) (int_range 0 (n - 1)))
  >>= fun sv_arrivals ->
  array_size (return n) (int_range 0 2) >>= fun sv_timers ->
  array_size (return n) (int_range 0 1) >>= fun sv_fired ->
  int_range 0 2 >>= fun sv_fault_idx ->
  return
    ( view_bound,
      { Symmetry.sv_n = n; sv_nodes; sv_chans; sv_arrivals; sv_timers;
        sv_fired; sv_fault_idx } )

let vec_arb =
  QCheck.make vec_gen ~print:(fun (vb, v) ->
      Printf.sprintf "n=%d view_bound=%d digest=%Ld" v.Symmetry.sv_n vb
        (Symmetry.digest v))

let group_of (vb, v) =
  Symmetry.group ~n:v.Symmetry.sv_n
    (Symmetry.movable ~n:v.Symmetry.sv_n ~view_bound:vb ~fixed:[])

let test_symmetry_invariance =
  QCheck.Test.make ~count:200 ~name:"canonical o permute = canonical" vec_arb
    (fun (vb, v) ->
      let grp = group_of (vb, v) in
      let c = Symmetry.canonical grp v in
      List.for_all
        (fun p -> Int64.equal c (Symmetry.canonical grp (Symmetry.apply p v)))
        grp)

let test_symmetry_distinctness =
  (* Equal canonicals iff the vectors are in the same orbit: the canonical
     digest refines raw-digest equality and collapses nothing beyond the
     group.  Small hash alphabets make accidental orbit collisions (and
     hence a buggy over-merge) likely to surface. *)
  QCheck.Test.make ~count:200 ~name:"canonical merges orbits and nothing else"
    (QCheck.pair vec_arb vec_arb) (fun ((vb1, v1), (vb2, v2)) ->
      QCheck.assume (v1.Symmetry.sv_n = v2.Symmetry.sv_n && vb1 = vb2);
      let grp = group_of (vb1, v1) in
      let same_orbit =
        List.exists
          (fun p ->
            Int64.equal (Symmetry.digest (Symmetry.apply p v1))
              (Symmetry.digest v2))
          grp
      in
      Bool.equal
        (Int64.equal (Symmetry.canonical grp v1) (Symmetry.canonical grp v2))
        same_orbit)

let test_symmetry_identity_group () =
  (* No movable nodes (or a singleton) — canonicalization degenerates to
     the plain digest, and the checker's baseline digests are unchanged. *)
  let v =
    {
      Symmetry.sv_n = 4;
      sv_nodes = [| (1L, 2L); (3L, 4L); (5L, 6L); (7L, 8L) |];
      sv_chans = Array.init 16 Int64.of_int;
      sv_arrivals = [| [ 1 ]; [ 0; 2 ]; []; [ 3 ] |];
      sv_timers = [| 1; 0; 2; 0 |];
      sv_fired = [| 0; 1; 0; 0 |];
      sv_fault_idx = 1;
    }
  in
  check "canonical under the empty group is the digest" true
    (Int64.equal (Symmetry.canonical [] v) (Symmetry.digest v));
  let movable = Symmetry.movable ~n:4 ~view_bound:3 ~fixed:[] in
  check_int "n=4, view_bound=3 leaves one movable node" 1 (List.length movable);
  let grp = Symmetry.group ~n:4 movable in
  check_int "whose group is just the identity" 1 (List.length grp);
  check "and canonicalization is the identity there" true
    (Int64.equal (Symmetry.canonical grp v) (Symmetry.digest v))

let test_symmetry_agrees_with_baseline () =
  (* The reduction must preserve every verdict on a world it can shrink:
     same violations (none), same commit reachability, same exhaustion —
     with no more states than the baseline. *)
  let world symmetry =
    Checker.config ~n:5 ~view_bound:1 ~timer_budget:1 ~symmetry ()
  in
  let base = Checker.check Kind.Simple_moonshot (world false) in
  let sym = Checker.check Kind.Simple_moonshot (world true) in
  let verdict (r : Mc_report.t) =
    ( r.Mc_report.violations,
      r.Mc_report.max_committed,
      r.Mc_report.deadlocks,
      r.Mc_report.livelocks,
      r.Mc_report.stats.Mc_report.exhausted )
  in
  check "same verdict with and without symmetry" true
    (verdict base = verdict sym);
  check "symmetry never increases the state count" true
    (sym.Mc_report.stats.Mc_report.states_visited
    <= base.Mc_report.stats.Mc_report.states_visited)

(* --- swarm mode ---------------------------------------------------------------- *)

let test_swarm_jobs_determinism () =
  let cfg = small_cfg () in
  let s1 = Checker.swarm ~jobs:1 Kind.Simple_moonshot ~walks:64 ~depth:48 ~seed:7 cfg in
  let s4 = Checker.swarm ~jobs:4 Kind.Simple_moonshot ~walks:64 ~depth:48 ~seed:7 cfg in
  check "swarm reports are structurally identical for jobs 1 vs 4" true
    (s1 = s4);
  let s8 = Checker.swarm Kind.Simple_moonshot ~walks:64 ~depth:48 ~seed:8 cfg in
  check "a different seed explores a different walk set" true
    (not (Int64.equal s1.Mc_report.sw_fingerprint s8.Mc_report.sw_fingerprint));
  check "healthy world: no violations sampled" true
    (s1.Mc_report.sw_violations = [] && s1.Mc_report.sw_livelock_witness = None);
  check "walks cover distinct states" true (s1.Mc_report.sw_distinct > 64)

let test_swarm_catches_double_vote () =
  (* The sampling mode must find what the exhaustive mode finds: the
     injected double vote falls inside a few dozen sampled interleavings
     (pinned seed and budget), and the walk's path replays through the
     same machinery as an exhaustive counterexample. *)
  let cfg = small_cfg () in
  let sw = Broken_mc.swarm ~walks:32 ~depth:48 ~seed:1 cfg in
  check "swarm finds the injected double vote" true
    (sw.Mc_report.sw_violations <> []);
  let v = List.hd sw.Mc_report.sw_violations in
  check "classified as a double vote" true
    (v.Mc_report.kind = Mc_report.Double_vote);
  let jsonl () = Bft_obs.Trace.to_jsonl (Broken_mc.replay cfg v.Mc_report.path) in
  let a = jsonl () and b = jsonl () in
  check "sampled counterexample replays byte-stably" true
    (String.length a > 0 && String.equal a b)

(* --- the PR-3 wedge, rediscovered by the machine ------------------------------- *)

(* Simple Moonshot with the PR-3 liveness fix reverted
   ({!Test_support.Broken.No_regossip}): timeouts carry no lock and
   cert/TC gossip deduplicates, so a 2/2 split-and-heal can wedge the two
   sides forever.  The checker's livelock certificate must catch it; the
   fixed protocol must stay clean under the identical seed and budget. *)
module Ng_mc = Checker.Make (Test_support.Broken.No_regossip)
module Simple_mc = Checker.Make (Moonshot.Simple_node.Protocol)

let wedge_world faults =
  Checker.config ~n:4 ~view_bound:3 ~timer_budget:1 ~max_depth:200 ~faults ()

let halves_partition = "partition@100-500:0,1/2,3"

let compiled_halves () =
  match FS.of_string halves_partition with
  | Error e -> Alcotest.fail e
  | Ok sched -> (
      match Mc_schedule.compile ~n:4 sched with
      | Error e -> Alcotest.fail e
      | Ok steps -> steps)

let test_swarm_certifies_livelock () =
  let cfg = wedge_world (compiled_halves ()) in
  let sw = Ng_mc.swarm ~walks:64 ~depth:150 ~seed:1 cfg in
  let livelocks =
    List.assoc Mc_report.Ep_livelock sw.Mc_report.sw_endpoints
  in
  check "the reverted protocol livelocks under split-and-heal" true
    (livelocks > 0);
  check "with a witness path" true (sw.Mc_report.sw_livelock_witness <> None);
  check "and no safety violation" true (sw.Mc_report.sw_violations = []);
  let fixed = Simple_mc.swarm ~walks:64 ~depth:150 ~seed:1 cfg in
  check_int "the fixed protocol certifies zero livelocks, same seed+budget" 0
    (List.assoc Mc_report.Ep_livelock fixed.Mc_report.sw_endpoints);
  check "and stays violation-free" true (fixed.Mc_report.sw_violations = [])

let test_search_rediscovers_wedge () =
  (* From a pinned seed and budget, the schedule search must invent a
     schedule that wedges the reverted protocol — it lands on the halves
     partition (an of_string round-trippable schedule) and certifies a
     livelock under it.  The same budget on the fixed protocol finds
     nothing. *)
  let cfg =
    Checker.config ~n:4 ~view_bound:3 ~timer_budget:1 ~max_depth:200 ()
  in
  let xcfg =
    Checker.search_config ~seed:1 ~rounds:4 ~population:8 ~mutants:10
      ~walks:24 ~depth:150 ~fault_budget:1 ()
  in
  let se = Ng_mc.schedule_search xcfg cfg in
  (match se.Mc_report.se_counterexample with
  | None -> Alcotest.fail "search failed to rediscover the PR-3 wedge"
  | Some (sched_text, cx) -> (
      (* The found schedule round-trips through the fault DSL... *)
      let steps =
        match FS.of_string sched_text with
        | Error e -> Alcotest.failf "found schedule does not parse: %s" e
        | Ok sched -> (
            match Mc_schedule.compile ~n:4 sched with
            | Error e -> Alcotest.failf "found schedule does not compile: %s" e
            | Ok steps -> steps)
      in
      match cx with
      | Mc_report.Cx_violation v ->
          Alcotest.failf "expected a livelock, found a %s violation"
            (Mc_report.kind_name v.Mc_report.kind)
      | Mc_report.Cx_livelock path ->
          (* ...and the certified wedge replays byte-stably under it. *)
          let cfg' = wedge_world steps in
          let jsonl () = Bft_obs.Trace.to_jsonl (Ng_mc.replay cfg' path) in
          let a = jsonl () and b = jsonl () in
          check "wedge replay is non-empty and byte-stable" true
            (String.length a > 0 && String.equal a b)));
  let clean = Simple_mc.schedule_search xcfg cfg in
  check "the fixed protocol survives the identical search budget" true
    (clean.Mc_report.se_counterexample = None);
  check "which ran its full round budget" true
    (clean.Mc_report.se_rounds = 4 && clean.Mc_report.se_evals > 40)

(* --- the schedule compiler ---------------------------------------------------- *)

let test_schedule_compile () =
  let ok sched =
    match Mc_schedule.compile ~n:4 sched with
    | Ok steps -> steps
    | Error e -> Alcotest.failf "unexpected compile error: %s" e
  in
  let rejected sched =
    match Mc_schedule.compile ~n:4 sched with Ok _ -> false | Error _ -> true
  in
  (* Edges come out in start-time order, opening before closing. *)
  (match
     ok
       [
         FS.Crash { node = 1; at = 50. };
         FS.Partition { groups = [ [ 0; 2 ]; [ 3 ] ]; from_ = 10.; until = 90. };
         FS.Recover { node = 1; at = 70. };
       ]
   with
  | [
   Mc_schedule.Partition_on _;
   Mc_schedule.Crash 1;
   Mc_schedule.Recover 1;
   Mc_schedule.Partition_off;
  ] ->
      ()
  | steps ->
      Alcotest.failf "unexpected linearization: %a"
        (Format.pp_print_list Mc_schedule.pp_step)
        steps);
  check "link loss has no untimed meaning" true
    (rejected [ FS.Link_loss { prob = 0.3; from_ = 0.; until = 10. } ]);
  check "delay spikes have no untimed meaning" true
    (rejected [ FS.Delay_spike { extra_ms = 50.; from_ = 0.; until = 10. } ]);
  check "out-of-range node rejected" true
    (rejected [ FS.Crash { node = 7; at = 1. } ]);
  check "overlapping partitions rejected" true
    (rejected
       [
         FS.Partition { groups = [ [ 0 ]; [ 1 ] ]; from_ = 0.; until = 20. };
         FS.Partition { groups = [ [ 2 ]; [ 3 ] ]; from_ = 10.; until = 30. };
       ])

let () =
  Alcotest.run "mc"
    [
      ( "safety",
        [
          Alcotest.test_case "all five protocols safe and live" `Quick
            test_all_protocols_safe;
          Alcotest.test_case "equivocators exempt from double-vote" `Quick
            test_equivocator_does_not_trip_double_vote;
        ] );
      ( "detection",
        [
          Alcotest.test_case "injected double vote caught" `Quick
            test_double_vote_detected;
          Alcotest.test_case "counterexample replay byte-stable" `Quick
            test_counterexample_replay_is_byte_stable;
        ] );
      ( "determinism",
        [ Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_determinism ] );
      ( "stats",
        [
          Alcotest.test_case "counter semantics and identities" `Quick
            test_stats_accounting;
        ] );
      ( "symmetry",
        [
          QCheck_alcotest.to_alcotest test_symmetry_invariance;
          QCheck_alcotest.to_alcotest test_symmetry_distinctness;
          Alcotest.test_case "degenerate groups are identities" `Quick
            test_symmetry_identity_group;
          Alcotest.test_case "reduction preserves the verdict" `Quick
            test_symmetry_agrees_with_baseline;
        ] );
      ( "swarm",
        [
          Alcotest.test_case "jobs 1 = jobs 4, seeds differ" `Quick
            test_swarm_jobs_determinism;
          Alcotest.test_case "injected double vote sampled" `Quick
            test_swarm_catches_double_vote;
          Alcotest.test_case "split-and-heal wedge certified (PR 3 revert)"
            `Quick test_swarm_certifies_livelock;
        ] );
      ( "search",
        [
          Alcotest.test_case "rediscovers the PR-3 wedge, fixed stays clean"
            `Quick test_search_rediscovers_wedge;
        ] );
      ( "regression",
        [
          Alcotest.test_case "post-partition recovery (PR 3)" `Quick
            test_partition_regression;
        ] );
      ( "schedule",
        [ Alcotest.test_case "compile" `Quick test_schedule_compile ] );
    ]
