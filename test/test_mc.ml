(* The bounded model checker end to end: exhaustive small worlds are safe
   and live for all five protocols, an injected double-vote bug is caught
   with a deterministically replayable counterexample, exploration is
   bit-identical across worker counts, the PR-3 post-partition deadlock
   stays fixed, and the schedule compiler rejects what it must reject. *)

open Bft_mc
module Kind = Bft_runtime.Protocol_kind
module FS = Bft_faults.Fault_schedule

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A 4-node world explored to view 2 with one timeout per node per era:
   small enough for the suite, deep enough to cover proposal, vote,
   certificate, gossip and timeout interleavings. *)
let small_cfg ?faults ?equivocators ?(view_bound = 2) () =
  Checker.config ~n:4 ~view_bound ~timer_budget:1 ?faults ?equivocators ()

(* --- safety of the real protocols ------------------------------------------- *)

let test_all_protocols_safe () =
  List.iter
    (fun kind ->
      let name = Kind.name kind in
      (* HotStuff's 3-chain commit rule needs a third view; Jolteon and
         HotStuff explore tiny spaces (unicast vote collection), so the
         deeper bound costs nothing. *)
      let view_bound =
        match kind with Kind.Jolteon | Kind.Hotstuff -> 3 | _ -> 2
      in
      let r = Checker.check kind (small_cfg ~view_bound ()) in
      check_int (name ^ ": zero violations") 0 (List.length r.Mc_report.violations);
      check (name ^ ": state space exhausted") true
        r.Mc_report.stats.Mc_report.exhausted;
      check (name ^ ": some branch commits") true (r.Mc_report.max_committed > 0);
      check (name ^ ": commit witness recorded") true
        (r.Mc_report.commit_witness <> None);
      check_int (name ^ ": no deadlocked branch") 0 r.Mc_report.deadlocks;
      check (name ^ ": exploration is nontrivial") true
        (r.Mc_report.stats.Mc_report.states_visited > 20))
    Kind.all

let test_equivocator_does_not_trip_double_vote () =
  (* A registered equivocating proposer sends conflicting blocks by design;
     the double-vote invariant must exempt it (safety must still hold for
     the honest nodes). *)
  let r =
    Checker.check Kind.Simple_moonshot (small_cfg ~equivocators:[ 0 ] ())
  in
  check_int "equivocator worlds stay violation-free" 0
    (List.length r.Mc_report.violations);
  check "and are fully explored" true r.Mc_report.stats.Mc_report.exhausted

(* --- the deliberately broken protocol ---------------------------------------- *)

module Broken_mc = Checker.Make (Test_support.Broken.Double_vote)

let test_double_vote_detected () =
  let cfg = small_cfg () in
  let r = Broken_mc.check cfg in
  check "the injected bug is found" true (r.Mc_report.violations <> []);
  let v = List.hd r.Mc_report.violations in
  check "and classified as a double vote" true
    (v.Mc_report.kind = Mc_report.Double_vote);
  check "with a short counterexample" true (List.length v.Mc_report.path <= 8);
  let described = Broken_mc.describe cfg v.Mc_report.path in
  check "describe renders every step" true
    (List.length (String.split_on_char '\n' (String.trim described))
    = List.length v.Mc_report.path)

let test_counterexample_replay_is_byte_stable () =
  let cfg = small_cfg () in
  let r1 = Broken_mc.check cfg in
  let r2 = Broken_mc.check ~jobs:3 cfg in
  let path r =
    match r.Mc_report.violations with
    | v :: _ -> v.Mc_report.path
    | [] -> Alcotest.fail "expected a counterexample"
  in
  check "same counterexample for any worker count" true (path r1 = path r2);
  let jsonl () = Bft_obs.Trace.to_jsonl (Broken_mc.replay cfg (path r1)) in
  let a = jsonl () and b = jsonl () in
  check "replay traces are non-empty" true (String.length a > 0);
  check "and byte-identical across runs" true (String.equal a b)

(* --- determinism across worker counts ---------------------------------------- *)

let test_jobs_determinism () =
  let cfg = small_cfg () in
  let r1 = Checker.check ~jobs:1 Kind.Simple_moonshot cfg in
  let r4 = Checker.check ~jobs:4 Kind.Simple_moonshot cfg in
  (* The whole report — counts, witness paths, violation lists — is plain
     data, so structural equality is the strongest possible statement. *)
  check "reports are structurally identical for jobs 1 vs 4" true (r1 = r4)

(* --- the PR-3 regression: post-partition recovery ----------------------------- *)

let test_partition_regression () =
  (* Split 2/2 (neither side has a quorum), then heal: the checker must
     find no stuck branch — every explored world either commits or is
     truncated by the view bound while still able to act.  This is the
     world in which Simple Moonshot deadlocked before the stuck-view
     rebroadcast fix. *)
  let sched =
    [ FS.Partition { groups = [ [ 0; 1 ]; [ 2; 3 ] ]; from_ = 0.; until = 1000. } ]
  in
  match Mc_schedule.compile ~n:4 sched with
  | Error e -> Alcotest.fail e
  | Ok steps ->
      check_int "partition compiles to its two edges" 2 (List.length steps);
      let cfg = small_cfg ~faults:steps () in
      let r = Checker.check Kind.Simple_moonshot cfg in
      check_int "no safety violations through split and heal" 0
        (List.length r.Mc_report.violations);
      check "state space exhausted" true r.Mc_report.stats.Mc_report.exhausted;
      check_int "no branch deadlocks post-heal" 0 r.Mc_report.deadlocks;
      check "some branch commits despite the partition" true
        (r.Mc_report.max_committed >= 1 && r.Mc_report.commit_witness <> None)

(* --- the schedule compiler ---------------------------------------------------- *)

let test_schedule_compile () =
  let ok sched =
    match Mc_schedule.compile ~n:4 sched with
    | Ok steps -> steps
    | Error e -> Alcotest.failf "unexpected compile error: %s" e
  in
  let rejected sched =
    match Mc_schedule.compile ~n:4 sched with Ok _ -> false | Error _ -> true
  in
  (* Edges come out in start-time order, opening before closing. *)
  (match
     ok
       [
         FS.Crash { node = 1; at = 50. };
         FS.Partition { groups = [ [ 0; 2 ]; [ 3 ] ]; from_ = 10.; until = 90. };
         FS.Recover { node = 1; at = 70. };
       ]
   with
  | [
   Mc_schedule.Partition_on _;
   Mc_schedule.Crash 1;
   Mc_schedule.Recover 1;
   Mc_schedule.Partition_off;
  ] ->
      ()
  | steps ->
      Alcotest.failf "unexpected linearization: %a"
        (Format.pp_print_list Mc_schedule.pp_step)
        steps);
  check "link loss has no untimed meaning" true
    (rejected [ FS.Link_loss { prob = 0.3; from_ = 0.; until = 10. } ]);
  check "delay spikes have no untimed meaning" true
    (rejected [ FS.Delay_spike { extra_ms = 50.; from_ = 0.; until = 10. } ]);
  check "out-of-range node rejected" true
    (rejected [ FS.Crash { node = 7; at = 1. } ]);
  check "overlapping partitions rejected" true
    (rejected
       [
         FS.Partition { groups = [ [ 0 ]; [ 1 ] ]; from_ = 0.; until = 20. };
         FS.Partition { groups = [ [ 2 ]; [ 3 ] ]; from_ = 10.; until = 30. };
       ])

let () =
  Alcotest.run "mc"
    [
      ( "safety",
        [
          Alcotest.test_case "all five protocols safe and live" `Quick
            test_all_protocols_safe;
          Alcotest.test_case "equivocators exempt from double-vote" `Quick
            test_equivocator_does_not_trip_double_vote;
        ] );
      ( "detection",
        [
          Alcotest.test_case "injected double vote caught" `Quick
            test_double_vote_detected;
          Alcotest.test_case "counterexample replay byte-stable" `Quick
            test_counterexample_replay_is_byte_stable;
        ] );
      ( "determinism",
        [ Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_determinism ] );
      ( "regression",
        [
          Alcotest.test_case "post-partition recovery (PR 3)" `Quick
            test_partition_regression;
        ] );
      ( "schedule",
        [ Alcotest.test_case "compile" `Quick test_schedule_compile ] );
    ]
