(* Sub-second chaos smoke for the live TCP cluster, wired into the
   default @runtest alias via @net-chaos-smoke.

   Runs a 4-node commit-moonshot cluster in threads mode with one
   wall-clock crash/recover cycle and asserts the cluster heals: the
   victim restarts at least once, every node reaches the block target,
   the committed chains agree on a common prefix, and the liveness
   monitor sees the victim catch up.  Fast by construction — a small
   block target, a tight delta and light link pacing keep the whole run
   well under a second. *)

module FS = Bft_faults.Fault_schedule
module Net = Bft_runtime.Net_harness
module Tcp = Bft_net.Tcp

let fail fmt = Format.kasprintf (fun s -> prerr_endline ("FAIL " ^ s); exit 1) fmt

let () =
  let protocol = Bft_runtime.Protocol_kind.Commit_moonshot in
  let n = 4 and blocks = 30 and victim = 1 in
  let faults =
    match FS.of_string "crash@80:1;recover@260:1" with
    | Ok f -> f
    | Error e -> fail "bad schedule: %s" e
  in
  let cfg =
    {
      (Net.config protocol ~n ~blocks) with
      Tcp.delta_ms = 150.;
      link_delay_ms = 3.;
      faults;
      timeout_ms = 20_000.;
    }
  in
  let r = Net.run protocol cfg in
  if r.Tcp.outcome <> Tcp.Completed then fail "cluster timed out";
  if not r.Tcp.reached_target then fail "block target not reached";
  if r.Tcp.nodes.(victim).Tcp.restarts < 1 then
    fail "victim node %d never restarted" victim;
  (match Net.check_chaos r ~target:blocks with
  | Ok () -> ()
  | Error e -> fail "chaos check: %s" e);
  let report = Net.net_liveness r ~delta:cfg.Tcp.delta_ms in
  (match report.Bft_obs.Liveness.recoveries with
  | [ rec_ ] when rec_.Bft_obs.Liveness.node = victim ->
      if rec_.Bft_obs.Liveness.caught_up_at_ms = None then
        fail "victim recovered but never caught up"
  | rs -> fail "expected one recovery of node %d, saw %d" victim
            (List.length rs));
  Printf.printf
    "net-chaos-smoke: OK (%d blocks, node %d crashed and recovered, %.0f ms)\n"
    blocks victim r.Tcp.wall_ms
