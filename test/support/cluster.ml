(* A hand-wired cluster of Pipelined/Commit Moonshot nodes on a raw engine,
   for scenario tests that need direct control over the network: partitions,
   healing, per-link drops.  (The Harness covers the standard experiment
   shapes; this helper covers everything it deliberately does not expose.) *)

open Bft_types

type t = {
  engine : Moonshot.Message.t Bft_sim.Engine.t;
  nodes : Moonshot.Pipelined_node.t array;
  wals : Moonshot.Wal.t array;
  envs : Moonshot.Message.t Env.t array;
  precommit : bool;
  n : int;
  mutable isolated : int list;
}

let create ?(precommit = false) ?(n = 4) ?(hop = 10.) ?(delta = 50.) () =
  let network =
    Bft_sim.Network.make
      ~latency:(Bft_sim.Latency.Uniform { base = hop; jitter = 0. })
      ~delta ()
  in
  let engine =
    Bft_sim.Engine.create ~n ~network ~seed:1 ~msg_size:Moonshot.Message.size ()
  in
  let validators = Validator_set.make n in
  let env_of id =
    {
      Env.id;
      validators;
      delta;
      now = (fun () -> Bft_sim.Engine.now engine);
      send = (fun dst msg -> Bft_sim.Engine.send engine ~src:id ~dst msg);
      multicast = (fun msg -> Bft_sim.Engine.multicast engine ~src:id msg);
      set_timer = (fun d f -> Bft_sim.Engine.set_timer engine d f);
      leader_of = (fun view -> (view - 1) mod n);
      make_payload = (fun ~view ~parent:_ -> Payload.make ~id:view ~size_bytes:0);
      on_commit = (fun _ -> ());
      on_propose = (fun _ -> ());
      probe = None;
    }
  in
  let wals = Array.init n (fun _ -> Moonshot.Wal.create ()) in
  let envs = Array.init n env_of in
  let nodes =
    Array.init n (fun id ->
        let node =
          Moonshot.Pipelined_node.create ~precommit ~wal:wals.(id) envs.(id)
        in
        Bft_sim.Engine.set_handler engine id
          (Moonshot.Pipelined_node.handle node);
        node)
  in
  let t = { engine; nodes; wals; envs; precommit; n; isolated = [] } in
  Bft_sim.Engine.set_link_filter engine (fun ~src ~dst ~now:_ ->
      (not (List.mem src t.isolated)) && not (List.mem dst t.isolated));
  t

let start t = Array.iter Moonshot.Pipelined_node.start t.nodes
let run t ~until = Bft_sim.Engine.run t.engine ~until

(* Sever all links to and from the given nodes (both directions). *)
let isolate t ids = t.isolated <- ids
let heal t = t.isolated <- []
let committed t i = Moonshot.Pipelined_node.committed t.nodes.(i)
let current_view t i = Moonshot.Pipelined_node.current_view t.nodes.(i)
let node t i = t.nodes.(i)


(* Crash a node: its handler drops everything and its timers go stale (the
   old node object is unreachable, so stale timer callbacks touch only dead
   state -- their sends still exist, modelling in-flight messages from just
   before the crash). *)
let crash t i =
  Bft_sim.Engine.set_handler t.engine i (fun ~src:_ _ -> ())

(* Restart from the write-ahead log: a fresh node object over the same env
   and WAL resumes at the recorded view with its vote slots intact. *)
let restart t i =
  let node =
    Moonshot.Pipelined_node.create ~precommit:t.precommit ~wal:t.wals.(i)
      t.envs.(i)
  in
  t.nodes.(i) <- node;
  Bft_sim.Engine.set_handler t.engine i (Moonshot.Pipelined_node.handle node);
  Moonshot.Pipelined_node.start node
