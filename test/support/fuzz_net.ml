(* An adversarial scheduler for safety fuzzing.

   Unlike the discrete-event simulator (which models a *plausible* network),
   this net gives the adversary full power over scheduling: at every step it
   picks an arbitrary pending message to deliver, may drop or duplicate it,
   and may fire any pending timer at any moment (timers firing "too early"
   model arbitrarily wrong clock behaviour).  Liveness is forfeit under such
   an adversary — but safety must still hold, and a cross-node height check
   enforces exactly that on every commit.

   Generic over any protocol speaking {!Moonshot.Message}, so Simple,
   Pipelined and Commit Moonshot are all fuzzable. *)

open Bft_types

type pending = { src : int; dst : int; msg : Moonshot.Message.t }

type t = {
  n : int;
  handlers : (src:int -> Moonshot.Message.t -> unit) array;
  starts : (unit -> unit) array;
  mutable pool : pending list;
  mutable timers : (bool ref * (unit -> unit)) list;
  rng : Bft_sim.Rng.t;
  mutable clock : float;  (* logical; advances one unit per step *)
  height_first : (int, Block.t) Hashtbl.t;  (* global safety check *)
  committed : int array;
  mutable delivered : int;
}

let check_safety t (b : Block.t) =
  match Hashtbl.find_opt t.height_first b.Block.height with
  | None -> Hashtbl.add t.height_first b.Block.height b
  | Some first ->
      if not (Block.equal first b) then
        raise
          (Bft_chain.Commit_log.Safety_violation
             (Format.asprintf "fuzz: conflicting commits at height %d"
                b.Block.height))

let create (type node)
    (module P : Bft_types.Protocol_intf.S
      with type msg = Moonshot.Message.t
       and type node = node) ?(equivocator = false) ~n ~seed () =
  let t =
    {
      n;
      handlers = Array.make n (fun ~src:_ _ -> ());
      starts = Array.make n (fun () -> ());
      pool = [];
      timers = [];
      rng = Bft_sim.Rng.create seed;
      clock = 0.;
      height_first = Hashtbl.create 64;
      committed = Array.make n 0;
      delivered = 0;
    }
  in
  let env_of id =
    {
      Env.id;
      validators = Validator_set.make n;
      delta = 10.;
      now = (fun () -> t.clock);
      send =
        (fun dst msg ->
          if dst = id then t.handlers.(id) ~src:id msg
          else t.pool <- { src = id; dst; msg } :: t.pool);
      multicast =
        (fun msg ->
          t.handlers.(id) ~src:id msg;
          for dst = 0 to n - 1 do
            if dst <> id then t.pool <- { src = id; dst; msg } :: t.pool
          done);
      set_timer =
        (fun _delay f ->
          let cancelled = ref false in
          t.timers <- (cancelled, f) :: t.timers;
          fun () -> cancelled := true);
      leader_of = (fun view -> (view - 1) mod n);
      make_payload = (fun ~view -> Payload.make ~id:view ~size_bytes:0);
      on_commit =
        (fun b ->
          check_safety t b;
          t.committed.(id) <- t.committed.(id) + 1);
      on_propose = (fun _ -> ());
      probe = None;
    }
  in
  for id = 0 to n - 1 do
    let equivocate = equivocator && id = 0 in
    let node = P.create ~equivocate (env_of id) in
    t.handlers.(id) <- P.handle node;
    t.starts.(id) <- (fun () -> P.start node)
  done;
  t

let start t = Array.iter (fun f -> f ()) t.starts

let deliver t { src; dst; msg } =
  t.delivered <- t.delivered + 1;
  t.handlers.(dst) ~src msg

let take_nth xs n =
  let rec go acc i = function
    | [] -> invalid_arg "take_nth"
    | x :: rest ->
        if i = n then (x, List.rev_append acc rest) else go (x :: acc) (i + 1) rest
  in
  go [] 0 xs

(* One adversarial step: deliver / drop / duplicate a random pending
   message, or fire a random live timer. *)
let step t =
  t.clock <- t.clock +. 1.;
  let live_timers = List.filter (fun (c, _) -> not !c) t.timers in
  let fire_timer () =
    match live_timers with
    | [] -> ()
    | _ ->
        let (cancelled, f), _ =
          take_nth live_timers (Bft_sim.Rng.int t.rng (List.length live_timers))
        in
        cancelled := true;
        t.timers <- List.filter (fun (c, _) -> not !c) t.timers;
        f ()
  in
  match t.pool with
  | [] -> fire_timer ()
  | pool ->
      if live_timers <> [] && Bft_sim.Rng.int t.rng 10 = 0 then fire_timer ()
      else begin
        let p, rest = take_nth pool (Bft_sim.Rng.int t.rng (List.length pool)) in
        match Bft_sim.Rng.int t.rng 10 with
        | 0 -> t.pool <- rest  (* drop *)
        | 1 ->
            (* duplicate: deliver now, keep a copy in the pool *)
            deliver t p
        | _ ->
            t.pool <- rest;
            deliver t p
      end

let run t ~steps =
  start t;
  for _ = 1 to steps do
    step t
  done

let delivered t = t.delivered
let committed t i = t.committed.(i)
let max_committed t = Array.fold_left max 0 t.committed
