(* An adversarial scheduler for safety fuzzing.

   Unlike the discrete-event simulator (which models a *plausible* network),
   this net gives the adversary full power over scheduling: at every step it
   picks an arbitrary pending message to deliver, may drop or duplicate it,
   and may fire any pending timer at any moment (timers firing "too early"
   model arbitrarily wrong clock behaviour).  With [~crashes:true] it also
   crash-stops and restarts nodes at arbitrary moments (staying within the
   concurrent budget of f): a crashed node loses all volatile state and
   comes back from its WAL alone, so recovery-time double votes would
   surface here as safety violations.  Liveness is forfeit under such an
   adversary — but safety must still hold, and a cross-node height check
   enforces exactly that on every commit.

   Generic over any protocol speaking {!Moonshot.Message}, so Simple,
   Pipelined and Commit Moonshot are all fuzzable. *)

open Bft_types

type pending = { src : int; dst : int; msg : Moonshot.Message.t }

type t = {
  n : int;
  handlers : (src:int -> Moonshot.Message.t -> unit) array;
  starts : (unit -> unit) array;
  restarts : (unit -> unit) array;  (* rebuild node [i] from its WAL *)
  down : bool array;
  crashes : bool;
  mutable crash_budget : int;  (* concurrently-crashed allowance left *)
  mutable pool : pending list;
  mutable timers : (bool ref * int * (unit -> unit)) list;  (* owner-tagged *)
  rng : Bft_sim.Rng.t;
  mutable clock : float;  (* logical; advances one unit per step *)
  height_first : (int, Block.t) Hashtbl.t;  (* global safety check *)
  committed : int array;
  mutable delivered : int;
}

let check_safety t (b : Block.t) =
  match Hashtbl.find_opt t.height_first b.Block.height with
  | None -> Hashtbl.add t.height_first b.Block.height b
  | Some first ->
      if not (Block.equal first b) then
        raise
          (Bft_chain.Commit_log.Safety_violation
             (Format.asprintf "fuzz: conflicting commits at height %d"
                b.Block.height))

let create (type node)
    (module P : Bft_types.Protocol_intf.S
      with type msg = Moonshot.Message.t
       and type node = node) ?(equivocator = false) ?(crashes = false) ~n
    ~seed () =
  let t =
    {
      n;
      handlers = Array.make n (fun ~src:_ _ -> ());
      starts = Array.make n (fun () -> ());
      restarts = Array.make n (fun () -> ());
      down = Array.make n false;
      crashes;
      crash_budget = (if crashes then ((n - 1) / 3) - (if equivocator then 1 else 0) else 0);
      pool = [];
      timers = [];
      rng = Bft_sim.Rng.create seed;
      clock = 0.;
      height_first = Hashtbl.create 64;
      committed = Array.make n 0;
      delivered = 0;
    }
  in
  let env_of id =
    {
      Env.id;
      validators = Validator_set.make n;
      delta = 10.;
      now = (fun () -> t.clock);
      send =
        (fun dst msg ->
          if dst = id then t.handlers.(id) ~src:id msg
          else t.pool <- { src = id; dst; msg } :: t.pool);
      multicast =
        (fun msg ->
          t.handlers.(id) ~src:id msg;
          for dst = 0 to n - 1 do
            if dst <> id then t.pool <- { src = id; dst; msg } :: t.pool
          done);
      set_timer =
        (fun _delay f ->
          let cancelled = ref false in
          t.timers <- (cancelled, id, f) :: t.timers;
          fun () -> cancelled := true);
      leader_of = (fun view -> (view - 1) mod n);
      make_payload = (fun ~view ~parent:_ -> Payload.make ~id:view ~size_bytes:0);
      on_commit =
        (fun b ->
          check_safety t b;
          t.committed.(id) <- t.committed.(id) + 1);
      on_propose = (fun _ -> ());
      probe = None;
    }
  in
  for id = 0 to n - 1 do
    let equivocate = equivocator && id = 0 in
    let wal = P.wal_create () in
    let boot () =
      let node = P.create ~equivocate ~wal (env_of id) in
      t.handlers.(id) <- P.handle node;
      fun () -> P.start node
    in
    t.starts.(id) <- boot ();
    t.restarts.(id) <-
      (fun () ->
        t.down.(id) <- false;
        (boot ()) ())
  done;
  t

let start t = Array.iter (fun f -> f ()) t.starts

let deliver t { src; dst; msg } =
  if not t.down.(dst) then begin
    t.delivered <- t.delivered + 1;
    t.handlers.(dst) ~src msg
  end

let take_nth xs n =
  let rec go acc i = function
    | [] -> invalid_arg "take_nth"
    | x :: rest ->
        if i = n then (x, List.rev_append acc rest) else go (x :: acc) (i + 1) rest
  in
  go [] 0 xs

let crash t id =
  t.down.(id) <- true;
  t.handlers.(id) <- (fun ~src:_ _ -> ());
  (* Quench the crashed incarnation's timers: its closures must never run. *)
  t.timers <- List.filter (fun (_, owner, _) -> owner <> id) t.timers

(* Crash/restart layer: arbitrary moments, but never more than the budget
   of concurrently-crashed nodes (the equivocator counts against f). *)
let crash_step t =
  (if t.crash_budget > 0 && Bft_sim.Rng.int t.rng 25 = 0 then
     let ups =
       List.filter
         (fun i -> (not t.down.(i)) && i > 0)
         (List.init t.n (fun i -> i))
     in
     match ups with
     | [] -> ()
     | _ ->
         crash t (List.nth ups (Bft_sim.Rng.int t.rng (List.length ups)));
         t.crash_budget <- t.crash_budget - 1);
  let downs = List.filter (fun i -> t.down.(i)) (List.init t.n (fun i -> i)) in
  if downs <> [] && Bft_sim.Rng.int t.rng 15 = 0 then begin
    t.restarts.(List.nth downs (Bft_sim.Rng.int t.rng (List.length downs))) ();
    t.crash_budget <- t.crash_budget + 1
  end

(* One adversarial step: deliver / drop / duplicate a random pending
   message, or fire a random live timer. *)
let step t =
  t.clock <- t.clock +. 1.;
  if t.crashes then crash_step t;
  let live_timers = List.filter (fun (c, _, _) -> not !c) t.timers in
  let fire_timer () =
    match live_timers with
    | [] -> ()
    | _ ->
        let (cancelled, _, f), _ =
          take_nth live_timers (Bft_sim.Rng.int t.rng (List.length live_timers))
        in
        cancelled := true;
        t.timers <- List.filter (fun (c, _, _) -> not !c) t.timers;
        f ()
  in
  match t.pool with
  | [] -> fire_timer ()
  | pool ->
      if live_timers <> [] && Bft_sim.Rng.int t.rng 10 = 0 then fire_timer ()
      else begin
        let p, rest = take_nth pool (Bft_sim.Rng.int t.rng (List.length pool)) in
        match Bft_sim.Rng.int t.rng 10 with
        | 0 -> t.pool <- rest  (* drop *)
        | 1 ->
            (* duplicate: deliver now, keep a copy in the pool *)
            deliver t p
        | _ ->
            t.pool <- rest;
            deliver t p
      end

let run t ~steps =
  start t;
  for _ = 1 to steps do
    step t
  done

let delivered t = t.delivered
let committed t i = t.committed.(i)
let max_committed t = Array.fold_left max 0 t.committed
