(* A hand-cranked environment for driving a single protocol node in unit
   tests: sent messages land in an outbox, timers fire only when the test
   advances the clock, and multicasts are immediately looped back to the
   node (matching the engine's self-delivery semantics). *)

open Bft_types

type 'msg sent = Unicast of int * 'msg | Multicast of 'msg

type 'msg t = {
  id : int;
  mutable time : float;
  mutable outbox : 'msg sent list;  (* newest first *)
  mutable timers : (float * bool ref * (unit -> unit)) list;
  mutable committed : Block.t list;  (* newest first *)
  mutable proposed : Block.t list;
  self_deliver : (src:int -> 'msg -> unit) option ref;
}

let create ?(n = 4) ?(delta = 100.) ?leader_of ~id () =
  let leader_of = Option.value leader_of ~default:(fun view -> (view - 1) mod n) in
  let t =
    {
      id;
      time = 0.;
      outbox = [];
      timers = [];
      committed = [];
      proposed = [];
      self_deliver = ref None;
    }
  in
  let env =
    {
      Env.id;
      validators = Validator_set.make n;
      delta;
      now = (fun () -> t.time);
      send = (fun dst msg -> t.outbox <- Unicast (dst, msg) :: t.outbox);
      multicast =
        (fun msg ->
          t.outbox <- Multicast msg :: t.outbox;
          match !(t.self_deliver) with
          | Some f -> f ~src:id msg
          | None -> ());
      set_timer =
        (fun delay f ->
          let cancelled = ref false in
          t.timers <- (t.time +. delay, cancelled, f) :: t.timers;
          fun () -> cancelled := true);
      leader_of;
      make_payload = (fun ~view ~parent:_ -> Payload.make ~id:view ~size_bytes:0);
      on_commit = (fun b -> t.committed <- b :: t.committed);
      on_propose = (fun b -> t.proposed <- b :: t.proposed);
      probe = None;
    }
  in
  (t, env)

(* Attach the node's handler so its own multicasts loop back. *)
let attach t handler = t.self_deliver := Some handler

(* Fire all timers due at or before [to_]; earliest first. *)
let advance t ~to_ =
  if to_ < t.time then invalid_arg "Mock_env.advance: time going backwards";
  let rec fire () =
    let due =
      List.filter (fun (at, cancelled, _) -> at <= to_ && not !cancelled) t.timers
    in
    match List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) due with
    | [] -> t.time <- to_
    | (at, cancelled, f) :: _ ->
        t.time <- at;
        cancelled := true;  (* consume: one-shot *)
        f ();
        fire ()
  in
  fire ()

let sent t = List.rev t.outbox
let clear_outbox t = t.outbox <- []
let committed t = List.rev t.committed
let proposed t = List.rev t.proposed

(* Messages multicast so far, oldest first. *)
let multicasts t =
  List.filter_map (function Multicast m -> Some m | Unicast _ -> None) (sent t)

let unicasts t =
  List.filter_map (function Unicast (d, m) -> Some (d, m) | Multicast _ -> None)
    (sent t)
