(* Deliberately broken protocol variants, used to prove the model checker
   detects what it claims to detect.  [Double_vote] wraps Simple Moonshot
   and makes one fixed node multicast a second, conflicting normal vote
   whenever it votes in view 1 — the canonical safety-rule violation the
   checker's capture-time vote accounting must flag (the node is honest as
   far as the checker knows: it is not registered as an equivocator).
   [No_regossip] reverts the post-partition liveness fix instead: a
   genuinely wedge-able protocol for the livelock detectors to find. *)

open Bft_types
open Moonshot

(* Node 2: a non-leader voter in view 1 of the 4-node round-robin. *)
let broken_id = 2

module Double_vote : Protocol_intf.S with type msg = Message.t = struct
  include Simple_node.Protocol

  let conflicting (block : Block.t) =
    (* Same view — hence the same vote slot — but a different payload and
       parent, so the digest differs: a double vote, not a retransmission. *)
    Block.create ~parent:Block.genesis ~view:block.Block.view
      ~proposer:block.Block.proposer
      ~payload:(Payload.make ~id:(9000 + block.Block.view) ~size_bytes:0)

  let create ?equivocate ?wal (env : Message.t Env.t) =
    let env =
      if env.Env.id <> broken_id then env
      else
        {
          env with
          Env.multicast =
            (fun msg ->
              env.Env.multicast msg;
              match msg with
              | Message.Vote { kind = Vote_kind.Normal; block }
                when block.Block.view = 1 ->
                  env.Env.multicast
                    (Message.Vote
                       { kind = Vote_kind.Normal; block = conflicting block })
              | _ -> ());
        }
    in
    Simple_node.Protocol.create ?equivocate ?wal env
end

(* Simple Moonshot with the post-partition liveness fix reverted: timeouts
   no longer carry the sender's lock, and a node never re-multicasts a
   certificate or TC it already gossiped once (the while-stuck rebroadcast
   of the evidence that justified its current view is suppressed as a
   duplicate).  After an asymmetric partition heals, a side that advanced
   on an in-flight cert/TC the other never saw then rebroadcasts timeouts
   for a view the laggards cannot join — timeout pools for different views
   grow at each other forever, a certified livelock.  The dedup cache is
   per incarnation (rebuilt on recovery), like any volatile cache. *)
module No_regossip : Protocol_intf.S with type msg = Message.t = struct
  include Simple_node.Protocol

  let create ?equivocate ?wal (env : Message.t Env.t) =
    let gossiped = Hashtbl.create 17 in
    let env =
      {
        env with
        Env.multicast =
          (fun msg ->
            match msg with
            | Message.Timeout { view; lock = Some _ } ->
                env.Env.multicast (Message.Timeout { view; lock = None })
            | Message.Cert_gossip _ | Message.Tc_gossip _ ->
                let d = Hash.to_int64 (Message.digest msg) in
                if not (Hashtbl.mem gossiped d) then begin
                  Hashtbl.replace gossiped d ();
                  env.Env.multicast msg
                end
            | _ -> env.Env.multicast msg);
      }
    in
    Simple_node.Protocol.create ?equivocate ?wal env
end
