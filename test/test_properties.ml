(* Property-based tests (qcheck, registered as alcotest cases).

   The headline property is the SMR safety invariant: under randomly drawn
   network sizes, latencies, seeds, leader schedules, silent-Byzantine sets
   and equivocating proposers, no two honest nodes ever commit different
   blocks at the same height.  The metrics collector enforces this globally
   during every harness run and raises on violation, so "the run returns" is
   the property. *)

open Bft_runtime
module Schedules = Bft_workload.Schedules

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

(* --- generators ----------------------------------------------------------------- *)

let protocol_gen =
  QCheck.Gen.oneofl
    [
      Protocol_kind.Simple_moonshot;
      Protocol_kind.Pipelined_moonshot;
      Protocol_kind.Commit_moonshot;
      Protocol_kind.Jolteon;
    ]

let schedule_gen =
  QCheck.Gen.oneofl
    [ Schedules.Round_robin; Schedules.Best_case; Schedules.Worst_moonshot;
      Schedules.Worst_jolteon ]

let config_gen =
  let* n = QCheck.Gen.int_range 4 10 in
  let* protocol = protocol_gen in
  let* schedule = schedule_gen in
  let f = (n - 1) / 3 in
  let* f' = QCheck.Gen.int_range 0 f in
  let* seed = QCheck.Gen.int_range 1 10_000 in
  let* base = QCheck.Gen.float_range 2. 30. in
  let* jitter = QCheck.Gen.float_range 0. 10. in
  let* equivocate = QCheck.Gen.bool in
  let equivocators =
    (* An equivocator on top of the silent set, while staying within f. *)
    if equivocate && f' < f then [ 0 ] else []
  in
  QCheck.Gen.return
    {
      (Config.default protocol ~n) with
      Config.f_actual = f';
      schedule;
      seed;
      latency = Config.Uniform { base; jitter };
      bandwidth_bps = None;
      delta_ms = (4. *. (base +. jitter)) +. 10.;
      duration_ms = 1_200.;
      equivocators;
    }

let config_arb =
  QCheck.make config_gen ~print:(fun c -> Format.asprintf "%a" Config.pp c)

(* --- safety under adversarial randomness ------------------------------------------ *)

let prop_safety_random_runs =
  QCheck.Test.make ~count:40 ~name:"safety holds under random adversaries"
    config_arb (fun cfg ->
      (* Harness.run raises Safety_violation on conflicting commits. *)
      let r = Harness.run cfg in
      r.Harness.metrics.Metrics.committed_blocks >= 0)

let prop_liveness_failure_free =
  QCheck.Test.make ~count:25 ~name:"failure-free runs always commit"
    config_arb (fun cfg ->
      let cfg =
        { cfg with Config.f_actual = 0; equivocators = [];
          schedule = Schedules.Round_robin }
      in
      let r = Harness.run cfg in
      r.Harness.metrics.Metrics.committed_blocks > 0)

let prop_safety_under_asynchrony =
  QCheck.Test.make ~count:20 ~name:"safety and recovery across GST"
    config_arb (fun cfg ->
      let cfg =
        {
          cfg with
          Config.gst_ms = 600.;
          pre_gst_extra_ms = 800.;
          duration_ms = 3_000.;
          f_actual = 0;
          equivocators = [];
          schedule = Schedules.Round_robin;
        }
      in
      let r = Harness.run cfg in
      r.Harness.metrics.Metrics.committed_blocks > 0)

let prop_determinism =
  QCheck.Test.make ~count:10 ~name:"identical configs give identical runs"
    config_arb (fun cfg ->
      let a = Harness.run cfg and b = Harness.run cfg in
      a.Harness.metrics.Metrics.committed_blocks
      = b.Harness.metrics.Metrics.committed_blocks
      && a.Harness.bytes_sent = b.Harness.bytes_sent)

(* --- event queue ---------------------------------------------------------------------- *)

let prop_event_queue_sorted =
  QCheck.Test.make ~count:200 ~name:"event queue pops in (time, fifo) order"
    QCheck.(list (pair (float_bound_exclusive 1000.) small_nat))
    (fun entries ->
      let q = Bft_sim.Event_queue.create () in
      List.iteri (fun i (t, v) -> Bft_sim.Event_queue.push q ~time:t (i, v)) entries;
      let rec drain acc =
        match Bft_sim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, (seq, _)) -> drain ((t, seq) :: acc)
      in
      let popped = drain [] in
      let rec sorted = function
        | (t1, s1) :: ((t2, s2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && s1 < s2)) && sorted rest
        | _ -> true
      in
      sorted popped && List.length popped = List.length entries)

(* --- accumulator ------------------------------------------------------------------------ *)

let prop_accumulator_order_independent =
  QCheck.Test.make ~count:100
    ~name:"threshold fires exactly once for any arrival order"
    QCheck.(pair (int_range 1 20) (list_of_size (QCheck.Gen.return 40) (int_range 0 19)))
    (fun (threshold, arrivals) ->
      let acc = Bft_crypto.Accumulator.create ~n:20 ~threshold in
      let fires = ref 0 in
      List.iter
        (fun signer ->
          match Bft_crypto.Accumulator.add acc () ~signer with
          | Bft_crypto.Accumulator.Threshold_reached signers ->
              incr fires;
              if Bft_crypto.Signer_set.count signers <> threshold then
                fires := 100
          | _ -> ())
        arrivals;
      let distinct = List.sort_uniq compare arrivals in
      if List.length distinct >= threshold then !fires = 1 else !fires = 0)

(* Model-based check of the packed-word signer set: run an arbitrary
   add/mem/copy sequence against a naive hashtable-of-ints model and
   require every observation (returned booleans, count, to_list, iter and
   fold order, copy independence) to agree.  [n] up to 70 crosses the
   32-bit word boundaries, where the bit bookkeeping can actually go
   wrong. *)
let prop_signer_set_matches_model =
  QCheck.Test.make ~count:300 ~name:"packed signer set matches a naive model"
    QCheck.(pair (int_range 1 70) (small_list (pair (int_range 0 2) small_nat)))
    (fun (n, ops) ->
      let s = Bft_crypto.Signer_set.create ~n in
      let model : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      let check b = if not b then ok := false in
      let model_list m =
        List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) m [])
      in
      (* Latest copy, paired with the model at copy time: mutating [s]
         afterwards must not show through. *)
      let snapshot = ref None in
      List.iter
        (fun (kind, raw) ->
          let i = raw mod n in
          match kind with
          | 0 ->
              let fresh = not (Hashtbl.mem model i) in
              if fresh then Hashtbl.replace model i ();
              check (Bft_crypto.Signer_set.add s i = fresh)
          | 1 -> check (Bft_crypto.Signer_set.mem s i = Hashtbl.mem model i)
          | _ ->
              snapshot :=
                Some (Bft_crypto.Signer_set.copy s, model_list model))
        ops;
      let expected = model_list model in
      check (Bft_crypto.Signer_set.count s = List.length expected);
      check (Bft_crypto.Signer_set.capacity s = n);
      check (Bft_crypto.Signer_set.to_list s = expected);
      let iterated = ref [] in
      Bft_crypto.Signer_set.iter (fun i -> iterated := i :: !iterated) s;
      check (List.rev !iterated = expected);
      check
        (Bft_crypto.Signer_set.fold (fun i acc -> i :: acc) s []
        = List.rev expected);
      (match !snapshot with
      | None -> ()
      | Some (c, frozen) -> check (Bft_crypto.Signer_set.to_list c = frozen));
      !ok)

(* Same treatment for the accumulator: an arbitrary (key, signer) vote
   sequence against a naive per-key set model reproducing the documented
   outcome semantics — Duplicate wins over Already_complete, the count
   freezes at the threshold, Threshold_reached fires exactly at it with a
   set of exactly [threshold] signers. *)
let prop_accumulator_matches_model =
  QCheck.Test.make ~count:300
    ~name:"accumulator outcomes match a naive per-key model"
    QCheck.(pair (int_range 1 10) (small_list (pair (int_range 0 3) small_nat)))
    (fun (threshold, votes) ->
      let n = 10 in
      let acc = Bft_crypto.Accumulator.create ~n ~threshold in
      let model : (int, (int, unit) Hashtbl.t * int ref * bool ref) Hashtbl.t =
        Hashtbl.create 4
      in
      let entry key =
        match Hashtbl.find_opt model key with
        | Some e -> e
        | None ->
            let e = (Hashtbl.create 8, ref 0, ref false) in
            Hashtbl.add model key e;
            e
      in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun (key, raw) ->
          let signer = raw mod n in
          let signers, count, complete = entry key in
          let expected =
            if Hashtbl.mem signers signer then `Duplicate
            else begin
              Hashtbl.replace signers signer ();
              if !complete then `Already_complete
              else begin
                incr count;
                if !count >= threshold then begin
                  complete := true;
                  `Threshold
                end
                else `Added !count
              end
            end
          in
          (match (Bft_crypto.Accumulator.add acc key ~signer, expected) with
          | Bft_crypto.Accumulator.Duplicate, `Duplicate -> ()
          | Bft_crypto.Accumulator.Already_complete, `Already_complete -> ()
          | Bft_crypto.Accumulator.Added c, `Added c' -> check (c = c')
          | Bft_crypto.Accumulator.Threshold_reached s, `Threshold ->
              check (Bft_crypto.Signer_set.count s = threshold)
          | _ -> check false);
          check (Bft_crypto.Accumulator.count acc key = !count);
          check (Bft_crypto.Accumulator.is_complete acc key = !complete))
        votes;
      !ok)

(* --- stats ------------------------------------------------------------------------------- *)

let nonempty_floats =
  QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))

let prop_percentile_bounds =
  QCheck.Test.make ~count:200 ~name:"percentiles stay within [min, max]"
    nonempty_floats (fun xs ->
      let open Bft_stats.Descriptive in
      let p50 = percentile 50. xs in
      p50 >= min xs && p50 <= max xs
      && percentile 0. xs = min xs
      && percentile 100. xs = max xs)

let prop_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile is monotone in p" nonempty_floats
    (fun xs ->
      let open Bft_stats.Descriptive in
      let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ] in
      let vals = List.map (fun p -> percentile p xs) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vals)

let prop_outliers_partition =
  QCheck.Test.make ~count:200 ~name:"outlier filter partitions the sample"
    nonempty_floats (fun xs ->
      let kept, removed = Bft_stats.Outliers.iqr_filter xs in
      List.length kept + List.length removed = List.length xs
      && List.sort compare (kept @ removed) = List.sort compare xs)

(* --- schedules ------------------------------------------------------------------------------ *)

let prop_schedules_are_fair =
  QCheck.Test.make ~count:100 ~name:"every schedule is a permutation (fair LCO)"
    QCheck.(pair (int_range 1 200) (int_range 0 66))
    (fun (n, f_raw) ->
      let f' = min f_raw ((n - 1) / 3) in
      List.for_all
        (fun s ->
          let arr = Schedules.arrangement s ~n ~f' in
          List.sort compare (Array.to_list arr) = List.init n (fun i -> i))
        Schedules.all)

(* --- block store ------------------------------------------------------------------------------ *)

let prop_store_out_of_order_insertion =
  QCheck.Test.make ~count:100
    ~name:"chain reconstruction is insertion-order independent"
    QCheck.(int_range 1 15)
    (fun len ->
      let chain = Test_support.Builders.chain len in
      (* Insert in reverse: every prefix query must still work at the end. *)
      let store = Bft_chain.Block_store.create () in
      List.iter
        (fun b -> ignore (Bft_chain.Block_store.insert store b))
        (List.rev chain);
      match Bft_chain.Block_store.chain_to store (List.nth chain (len - 1)) with
      | Some full -> List.length full = len + 1
      | None -> false)

(* --- vote rules ---------------------------------------------------------------------------------- *)

let prop_no_normal_vote_for_equivocation =
  QCheck.Test.make ~count:200
    ~name:"normal vote never endorses an equivocating block after an opt vote"
    QCheck.(pair (int_range 1 50) bool)
    (fun (payload_id, flip) ->
      let chain = Test_support.Builders.chain 2 in
      let parent = List.hd chain in
      let voted =
        Test_support.Builders.block ~view:2 ~payload_id ~parent ()
      in
      let proposed =
        if flip then voted
        else Test_support.Builders.block ~view:2 ~payload_id:(payload_id + 1) ~parent ()
      in
      let cert = Test_support.Builders.cert parent in
      let allowed =
        Moonshot.Safety_rules.pipelined_normal_vote ~view:2 ~timeout_view:0
          ~voted_opt:(Some voted) ~voted_main:false ~block:proposed ~cert
      in
      (* Allowed iff the proposal matches the opt-voted block exactly. *)
      allowed = Bft_types.Block.equal voted proposed)


(* --- adversarial scheduling (fuzz net) --------------------------------------------- *)

(* Full-power adversary: arbitrary delivery order, drops, duplicates and
   timers fired at arbitrary moments — safety must survive all of it, with
   and without an equivocating proposer and the pre-commit path. *)
let prop_safety_adversarial_schedules =
  QCheck.Test.make ~count:100 ~name:"safety under adversarial schedules"
    QCheck.(triple (int_range 1 100_000) (int_range 0 1) bool)
    (fun (seed, simple, equivocator) ->
      (* check_safety raises Safety_violation on any conflicting commit. *)
      if simple = 0 then
        Test_support.Fuzz_net.run
          (Test_support.Fuzz_net.create
             (module Moonshot.Simple_node.Protocol)
             ~equivocator ~n:4 ~seed ())
          ~steps:600
      else
        Test_support.Fuzz_net.run
          (Test_support.Fuzz_net.create
             (module Moonshot.Pipelined_node.Protocol)
             ~equivocator ~n:4 ~seed ())
          ~steps:600;
      true)

let prop_safety_adversarial_commit_moonshot =
  QCheck.Test.make ~count:60
    ~name:"commit moonshot safe under adversarial schedules"
    QCheck.(pair (int_range 1 100_000) bool)
    (fun (seed, equivocator) ->
      let net =
        Test_support.Fuzz_net.create
          (module Moonshot.Pipelined_node.Commit_protocol)
          ~equivocator ~n:4 ~seed ()
      in
      Test_support.Fuzz_net.run net ~steps:600;
      true)

let prop_fuzz_can_commit =
  (* Sanity that the fuzz harness is not vacuous: across seeds, benign
     schedules do commit blocks. *)
  QCheck.Test.make ~count:30 ~name:"fuzz net commits on some schedules"
    QCheck.(int_range 1 1_000)
    (fun seed ->
      let net =
        Test_support.Fuzz_net.create
          (module Moonshot.Pipelined_node.Protocol)
          ~n:4 ~seed ()
      in
      Test_support.Fuzz_net.run net ~steps:600;
      (* Not every schedule commits; the aggregate assertion lives in the
         alcotest wrapper below via at least counting deliveries. *)
      Test_support.Fuzz_net.delivered net > 0)

let prop_safety_adversarial_with_crashes =
  (* The adversary additionally crash-stops and restarts nodes at arbitrary
     moments (within the concurrent f budget); restarted nodes come back
     from their WAL alone, so a recovery-time double vote would surface as
     a safety violation here. *)
  QCheck.Test.make ~count:60
    ~name:"safety under adversarial schedules with crash/restart"
    QCheck.(pair (int_range 1 100_000) (int_range 0 2))
    (fun (seed, which) ->
      let run (module P : Bft_types.Protocol_intf.S
                 with type msg = Moonshot.Message.t) =
        Test_support.Fuzz_net.run
          (Test_support.Fuzz_net.create (module P) ~crashes:true ~n:7 ~seed ())
          ~steps:800
      in
      (match which with
      | 0 -> run (module Moonshot.Simple_node.Protocol)
      | 1 -> run (module Moonshot.Pipelined_node.Protocol)
      | _ -> run (module Moonshot.Pipelined_node.Commit_protocol));
      true)

let fuzz_commits_somewhere () =
  let total = ref 0 in
  for seed = 1 to 40 do
    let net =
      Test_support.Fuzz_net.create
        (module Moonshot.Pipelined_node.Protocol)
        ~n:4 ~seed ()
    in
    Test_support.Fuzz_net.run net ~steps:600;
    total := !total + Test_support.Fuzz_net.max_committed net
  done;
  Alcotest.(check bool) "schedules with progress exist" true (!total > 20)


(* --- randomized fault schedules --------------------------------------------------- *)

(* Random crash/recover/partition/loss/delay schedules inside the f budget,
   all healed by 0.6 * duration: the harness's online monitor raises on any
   safety violation and on any node that fails to resume committing within
   k * Delta of the last heal, so "the run returns with a passed check" is
   the property. *)
let fault_run_gen =
  let* n = QCheck.Gen.int_range 4 7 in
  let* protocol = protocol_gen in
  let* seed = QCheck.Gen.int_range 1 10_000 in
  QCheck.Gen.return (n, protocol, seed)

let prop_random_fault_schedules =
  QCheck.Test.make ~count:25
    ~name:"random fault schedules: safe, and committing resumes after heal"
    (QCheck.make fault_run_gen ~print:(fun (n, p, seed) ->
         Printf.sprintf "n=%d %s seed=%d" n (Protocol_kind.short_name p) seed))
    (fun (n, protocol, seed) ->
      let delta = 50. and duration = 4_000. in
      let faults =
        Bft_faults.Fault_schedule.random
          ~rng:(Bft_sim.Rng.create seed)
          ~n
          ~f:((n - 1) / 3)
          ~duration ~delta
      in
      let cfg =
        {
          (Config.local protocol ~n) with
          Config.delta_ms = delta;
          duration_ms = duration;
          seed;
          faults;
        }
      in
      let r = Harness.run cfg in
      (* The checkpoint at the last heal is never superseded (everything is
         healed well before the horizon), so at least one full liveness
         check ran; a violation would have raised during the run. *)
      match r.Harness.fault_summary with
      | Some fs ->
          fs.Harness.liveness.Bft_obs.Liveness.checks_passed >= 1
          && r.Harness.metrics.Metrics.committed_blocks > 0
      | None -> Bft_faults.Fault_schedule.is_empty faults)

(* --- wire and CPU cost models --------------------------------------------------- *)

let message_gen =
  let open QCheck.Gen in
  let block payload_size =
    Bft_types.Block.create ~parent:Bft_types.Block.genesis ~view:1 ~proposer:0
      ~payload:(Bft_types.Payload.make ~id:1 ~size_bytes:payload_size)
  in
  let* payload_size = int_range 0 2_000_000 in
  let* signers = int_range 1 134 in
  let b = block payload_size in
  let cert = Moonshot.Cert.make ~kind:Moonshot.Vote_kind.Normal ~view:1 ~block:b ~signers in
  oneofl
    [
      Moonshot.Message.Opt_propose { block = b };
      Moonshot.Message.Propose { block = b; cert };
      Moonshot.Message.Vote { kind = Moonshot.Vote_kind.Opt; block = b };
      Moonshot.Message.Timeout { view = 1; lock = Some cert };
      Moonshot.Message.Cert_gossip cert;
      Moonshot.Message.Commit_vote { view = 1; block = b };
      Moonshot.Message.Blocks_response { blocks = [ b; b ] };
      Moonshot.Message.Block_request { hash = b.Bft_types.Block.hash };
    ]

let prop_cost_models_sane =
  QCheck.Test.make ~count:200 ~name:"wire sizes and cpu costs are positive and finite"
    (QCheck.make message_gen) (fun msg ->
      let size = Moonshot.Message.size msg in
      let cpu = Moonshot.Message.cpu_cost msg in
      size > 0 && cpu >= 0. && Float.is_finite cpu)

let prop_proposal_size_monotone_in_payload =
  QCheck.Test.make ~count:200 ~name:"proposal wire size is monotone in payload"
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
    (fun (a, b) ->
      let proposal bytes =
        Moonshot.Message.Opt_propose
          {
            block =
              Bft_types.Block.create ~parent:Bft_types.Block.genesis ~view:1
                ~proposer:0
                ~payload:(Bft_types.Payload.make ~id:1 ~size_bytes:bytes);
          }
      in
      let sa = Moonshot.Message.size (proposal a) in
      let sb = Moonshot.Message.size (proposal b) in
      (a <= b) = (sa <= sb) || sa = sb)

(* --- allocation budget ------------------------------------------------------------ *)

(* Perf tripwire riding along with the property suite: a small Pipelined
   Moonshot run must stay under a pinned bytes-allocated-per-event ceiling.
   With the engine's message pools in place this config measures about
   1050 B/event — at n=4 the per-view costs (blocks, certificates, vote
   records, metrics conses) amortize over only 3-wide fan-outs, so the
   figure is dominated by protocol allocations, not engine ones.  The 2500
   ceiling leaves ~2.4x headroom for GC-state noise while still catching a
   per-delivery allocation regression, which multiplies the figure.  A
   warm-up run keeps one-time module/table initialization out of the
   measurement. *)
let alloc_budget_ceiling = 2_500.

let alloc_budget () =
  let cfg =
    {
      (Config.local Protocol_kind.Pipelined_moonshot ~n:4) with
      Config.duration_ms = 3_000.;
      payload_bytes = 0;
    }
  in
  ignore (Harness.run cfg);
  let events0 = Harness.events_processed_total () in
  let alloc0 = Harness.bytes_allocated_total () in
  let r = Harness.run cfg in
  let events = Harness.events_processed_total () - events0 in
  let alloc = Harness.bytes_allocated_total () - alloc0 in
  Alcotest.(check bool)
    "run made progress" true
    (events > 0 && r.Harness.metrics.Metrics.committed_blocks > 0);
  let per_event = float_of_int alloc /. float_of_int events in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f bytes/event within %.0f ceiling" per_event
       alloc_budget_ceiling)
    true
    (per_event <= alloc_budget_ceiling)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [
      ( "consensus",
        q
          [
            prop_safety_random_runs;
            prop_liveness_failure_free;
            prop_safety_under_asynchrony;
            prop_determinism;
          ] );
      ("sim", q [ prop_event_queue_sorted ]);
      ( "crypto",
        q
          [
            prop_accumulator_order_independent;
            prop_signer_set_matches_model;
            prop_accumulator_matches_model;
          ] );
      ( "stats",
        q [ prop_percentile_bounds; prop_percentile_monotone; prop_outliers_partition ]
      );
      ("workload", q [ prop_schedules_are_fair ]);
      ("chain", q [ prop_store_out_of_order_insertion ]);
      ("rules", q [ prop_no_normal_vote_for_equivocation ]);
      ( "cost-models",
        q [ prop_cost_models_sane; prop_proposal_size_monotone_in_payload ] );
      ( "fuzz",
        q
          [
            prop_safety_adversarial_schedules;
            prop_safety_adversarial_commit_moonshot;
            prop_safety_adversarial_with_crashes;
            prop_fuzz_can_commit;
          ]
        @ [ Alcotest.test_case "progress exists" `Quick fuzz_commits_somewhere ] );
      ("faults", q [ prop_random_fault_schedules ]);
      ( "alloc",
        [ Alcotest.test_case "bytes-per-event budget" `Quick alloc_budget ] );
    ]
