(* Client-traffic ingestion tests: batch payload encoding, the
   allocation-free generator/histogram primitives, the sharded mempool's
   admission and fairness behaviour (unit + model-based qcheck), and the
   end-to-end no-loss/no-duplication property through real harness runs —
   including across a crash/recover schedule.

   The mempool is replicated by commit-order replay, so most properties
   reduce to conservation: every submitted command is accounted for as
   exactly one of rejected, committed, pending or backlogged, and no
   sequence number is ever drawn twice. *)

open Bft_types
module Spec = Bft_mempool.Spec
module Arrival = Bft_mempool.Arrival
module Hist = Bft_mempool.Hist
module Lane = Bft_mempool.Lane
module Mempool = Bft_mempool.Mempool
module Ingest = Bft_mempool.Ingest
module Config = Bft_runtime.Config
module Harness = Bft_runtime.Harness
module Protocol_kind = Bft_runtime.Protocol_kind

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- batch payload encoding ------------------------------------------------ *)

let test_batch_roundtrip () =
  let p = Payload.batch ~cursor:12_345 ~watermark:700_000 ~count:512 in
  check "is_batch" true (Payload.is_batch p);
  check_int "cursor" 12_345 (Payload.batch_cursor p);
  check_int "watermark" 700_000 (Payload.batch_watermark p);
  check_int "items" 512 (Payload.item_count p);
  check_int "bytes" (512 * Payload.item_size) p.Payload.size_bytes

let test_batch_bounds () =
  let m = Payload.batch_field_max in
  let p = Payload.batch ~cursor:m ~watermark:m ~count:0 in
  check "max fields round-trip" true
    (Payload.batch_cursor p = m && Payload.batch_watermark p = m);
  (* The packed id must stay inside the wire codec's 2^61 LEB128 guard
     and strictly positive (negative ids mark equivocation payloads). *)
  check "id under wire bound" true (p.Payload.id < (1 lsl 61) && p.Payload.id > 0);
  check "oversized cursor rejected" true
    (try
       ignore (Payload.batch ~cursor:(m + 1) ~watermark:0 ~count:0);
       false
     with Invalid_argument _ -> true)

let test_non_batch_payloads () =
  check "parametric is not a batch" false
    (Payload.is_batch (Payload.make ~id:17 ~size_bytes:18_000));
  check "equivocation is not a batch" false
    (Payload.is_batch (Payload.make ~id:(-42) ~size_bytes:0));
  check "genesis is not a batch" false (Payload.is_batch Block.genesis.Block.payload)

(* --- histogram ------------------------------------------------------------- *)

let test_hist_quantiles () =
  let h = Hist.create () in
  check "empty quantile" true (Hist.quantile h 0.99 = 0.);
  for i = 1 to 1000 do
    Hist.add h (float_of_int i)
  done;
  check_int "count" 1000 (Hist.count h);
  let p50 = Hist.quantile h 0.5 in
  (* Log-bucketed: <= 7% relative error, never above the observed max. *)
  check "p50 near 500" true (p50 > 450. && p50 < 550.);
  check "p100 capped at max" true (Hist.quantile h 1.0 = 1000.);
  check "mean exact" true (Float.abs (Hist.mean h -. 500.5) < 1e-6)

let test_hist_merge_and_clear () =
  let a = Hist.create () and b = Hist.create () in
  Hist.add a 1.;
  Hist.add b 100.;
  Hist.merge ~into:a b;
  check_int "merged count" 2 (Hist.count a);
  check "merged max" true (Hist.max_value a = 100.);
  Hist.clear a;
  check_int "cleared" 0 (Hist.count a)

(* --- arrival generator ----------------------------------------------------- *)

let test_arrival_deterministic () =
  let spec = { Spec.default with Spec.clients = 1_000; rate_per_s = 10_000. } in
  let a = Arrival.create spec and b = Arrival.create spec in
  for _ = 1 to 10_000 do
    check_int "same client" (Arrival.next_client a) (Arrival.next_client b);
    check "same time" true (Arrival.next_time a = Arrival.next_time b);
    Arrival.advance a;
    Arrival.advance b
  done;
  check_int "same position" (Arrival.seq a) (Arrival.seq b)

let test_arrival_views_slots () =
  let spec = { Spec.default with Spec.clock = Spec.Views; per_view = 64 } in
  let a = Arrival.create spec in
  (* Arrival [s] becomes visible in view slot [1 + s / per_view]; the
     generator starts at slot 0 (genesis view) before its first advance. *)
  check "starts at genesis slot" true (Arrival.next_time a = 0.);
  Arrival.advance a;
  check "first visible slot" true (Arrival.next_time a = 1.);
  check_int "watermark at view 3" (3 * 64) (Arrival.count_until a ~now:3.);
  check_int "monotone watermark" (5 * 64) (Arrival.count_until a ~now:5.)

let test_arrival_wall_rate () =
  let spec = { Spec.default with Spec.rate_per_s = 20_000. } in
  let a = Arrival.create spec in
  let n = Arrival.count_until a ~now:1_000. in
  (* Poisson with lambda = 20k over one second: far outside these bounds
     is astronomically unlikely. *)
  check "rate honoured" true (n > 18_000 && n < 22_000)

let test_arrival_client_range () =
  let spec = { Spec.default with Spec.clients = 77 } in
  let a = Arrival.create spec in
  for s = 0 to 10_000 do
    let c = Arrival.client_of a s in
    if c < 0 || c >= 77 then Alcotest.failf "client %d out of range at %d" c s
  done

(* --- lane ring ------------------------------------------------------------- *)

let test_lane_fifo_wraparound () =
  let l = Lane.create ~capacity:4 in
  (* Push/pop past capacity to force the ring to wrap. *)
  let next_push = ref 0 and next_pop = ref 0 in
  for _ = 1 to 3 do
    while not (Lane.is_full l) do
      Lane.push l ~seq:!next_push ~time:(float_of_int !next_push);
      incr next_push
    done;
    for _ = 1 to 2 do
      check_int "fifo order" !next_pop (Lane.front_seq l);
      check "time rides along" true
        (Lane.front_time l = float_of_int !next_pop);
      Lane.pop l;
      incr next_pop
    done
  done;
  check_int "length accounts" (!next_push - !next_pop) (Lane.length l)

let test_lane_bounds_raise () =
  let l = Lane.create ~capacity:1 in
  Lane.push l ~seq:0 ~time:0.;
  check "push on full raises" true
    (try
       Lane.push l ~seq:1 ~time:0.;
       false
     with Invalid_argument _ -> true);
  Lane.pop l;
  check "pop on empty raises" true
    (try
       Lane.pop l;
       false
     with Invalid_argument _ -> true)

(* --- mempool: unit --------------------------------------------------------- *)

let test_verdict_progression () =
  let m = Mempool.create ~lanes:1 ~lane_capacity:2 ~backlog_capacity:1 in
  let sub seq = Mempool.submit m ~client:0 ~seq ~time:0. in
  check "admitted" true (sub 0 = Mempool.Admitted);
  check "admitted" true (sub 1 = Mempool.Admitted);
  check "deferred when lane full" true (sub 2 = Mempool.Deferred);
  check "rejected when backlog full" true (sub 3 = Mempool.Rejected);
  let c = Mempool.counters m in
  check_int "submitted" 4 c.Mempool.submitted;
  check_int "admitted" 2 c.Mempool.admitted;
  check_int "deferred" 1 c.Mempool.deferred;
  check_int "rejected" 1 c.Mempool.rejected

let test_promotion_preserves_fifo_and_time () =
  let m = Mempool.create ~lanes:1 ~lane_capacity:1 ~backlog_capacity:2 in
  ignore (Mempool.submit m ~client:0 ~seq:0 ~time:10.);
  ignore (Mempool.submit m ~client:0 ~seq:1 ~time:20.);
  (* seq 1 sits in the backlog; draining seq 0 must promote it with its
     original submit time (deferral is charged to its latency). *)
  let drained = ref [] in
  let n =
    Mempool.drain m ~count:2 ~f:(fun ~seq ~lane:_ ~time ->
        drained := (seq, time) :: !drained)
  in
  check_int "both drained" 2 n;
  check "fifo across promotion" true (List.rev !drained = [ (0, 10.); (1, 20.) ]);
  check_int "backlog empty" 0 (Mempool.backlogged m)

let test_drain_round_robin () =
  let m = Mempool.create ~lanes:4 ~lane_capacity:8 ~backlog_capacity:8 in
  (* Three commands in every lane (client c lands in lane c mod 4). *)
  for seq = 0 to 11 do
    ignore (Mempool.submit m ~client:seq ~seq ~time:0.)
  done;
  let order = ref [] in
  ignore
    (Mempool.drain m ~count:8 ~f:(fun ~seq:_ ~lane ~time:_ ->
         order := lane :: !order));
  check "round robin" true (List.rev !order = [ 0; 1; 2; 3; 0; 1; 2; 3 ]);
  let per_lane = Mempool.committed_per_lane m in
  Array.iter (fun c -> check_int "even spread" 2 c) per_lane

let test_drain_runs_dry () =
  let m = Mempool.create ~lanes:3 ~lane_capacity:4 ~backlog_capacity:4 in
  ignore (Mempool.submit m ~client:0 ~seq:0 ~time:0.);
  check_int "short drain" 1
    (Mempool.drain m ~count:10 ~f:(fun ~seq:_ ~lane:_ ~time:_ -> ()));
  check_int "dry drain" 0
    (Mempool.drain m ~count:10 ~f:(fun ~seq:_ ~lane:_ ~time:_ -> ()))

(* --- mempool: model-based qcheck ------------------------------------------- *)

(* A naive reference mempool: per-lane FIFO lists plus a rotor, mirroring
   the documented semantics with none of the ring machinery. *)
module Model = struct
  type t = {
    lanes : (int * float) list ref array;
    backlog : (int * float) list ref array;
    lane_cap : int;
    backlog_cap : int;
    mutable rotor : int;
    mutable verdicts : Mempool.verdict list;
    mutable drained : int list;
  }

  let create ~lanes ~lane_capacity ~backlog_capacity =
    {
      lanes = Array.init lanes (fun _ -> ref []);
      backlog = Array.init lanes (fun _ -> ref []);
      lane_cap = lane_capacity;
      backlog_cap = backlog_capacity;
      rotor = 0;
      verdicts = [];
      drained = [];
    }

  let submit t ~client ~seq ~time =
    let l = client mod Array.length t.lanes in
    let v =
      if List.length !(t.lanes.(l)) < t.lane_cap then begin
        t.lanes.(l) := !(t.lanes.(l)) @ [ (seq, time) ];
        Mempool.Admitted
      end
      else if List.length !(t.backlog.(l)) < t.backlog_cap then begin
        t.backlog.(l) := !(t.backlog.(l)) @ [ (seq, time) ];
        Mempool.Deferred
      end
      else Mempool.Rejected
    in
    t.verdicts <- v :: t.verdicts;
    v

  let drain t ~count =
    let k = Array.length t.lanes in
    let drained = ref 0 and empty_scan = ref 0 in
    while !drained < count && !empty_scan < k do
      let l = t.rotor in
      t.rotor <- (t.rotor + 1) mod k;
      match !(t.lanes.(l)) with
      | [] -> incr empty_scan
      | (seq, _) :: rest ->
          empty_scan := 0;
          t.lanes.(l) := rest;
          (match !(t.backlog.(l)) with
          | b :: brest ->
              t.lanes.(l) := !(t.lanes.(l)) @ [ b ];
              t.backlog.(l) := brest
          | [] -> ());
          t.drained <- seq :: t.drained;
          incr drained
    done;
    !drained
end

type op = Submit of int | Drain of int

let ops_gen =
  QCheck.Gen.(
    list_size (int_range 1 400)
      (frequency
         [
           (4, map (fun c -> Submit c) (int_range 0 1_000));
           (1, map (fun n -> Drain n) (int_range 1 16));
         ]))

let ops_arb =
  QCheck.make ops_gen ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Submit c -> Printf.sprintf "S%d" c
             | Drain n -> Printf.sprintf "D%d" n)
           ops))

let test_model_equivalence =
  QCheck.Test.make ~name:"mempool matches naive model" ~count:200 ops_arb
    (fun ops ->
      let real = Mempool.create ~lanes:3 ~lane_capacity:4 ~backlog_capacity:2 in
      let model = Model.create ~lanes:3 ~lane_capacity:4 ~backlog_capacity:2 in
      let drained_real = ref [] in
      List.iteri
        (fun seq op ->
          match op with
          | Submit client ->
              let v = Mempool.submit real ~client ~seq ~time:(float_of_int seq) in
              let v' = Model.submit model ~client ~seq ~time:(float_of_int seq) in
              if v <> v' then QCheck.Test.fail_reportf "verdict mismatch at %d" seq
          | Drain count ->
              let n =
                Mempool.drain real ~count ~f:(fun ~seq ~lane:_ ~time:_ ->
                    drained_real := seq :: !drained_real)
              in
              let n' = Model.drain model ~count in
              if n <> n' then
                QCheck.Test.fail_reportf "drain count mismatch: %d vs %d" n n')
        ops;
      (* Same drain order, and conservation on the real structure. *)
      let c = Mempool.counters real in
      !drained_real = model.Model.drained
      && c.Mempool.submitted
         = c.Mempool.rejected + c.Mempool.committed + Mempool.pending real
           + Mempool.backlogged real)

let test_saturation_fairness =
  QCheck.Test.make ~name:"fair drain under saturation" ~count:100
    QCheck.(pair (int_range 2 8) (int_range 1 64))
    (fun (lanes, per_lane_batch) ->
      let m = Mempool.create ~lanes ~lane_capacity:64 ~backlog_capacity:64 in
      (* Saturate every lane completely, then drain a full sweep. *)
      let seq = ref 0 in
      let rec fill () =
        let v = Mempool.submit m ~client:!seq ~seq:!seq ~time:0. in
        incr seq;
        if v <> Mempool.Rejected then fill ()
      in
      fill ();
      ignore
        (Mempool.drain m ~count:(lanes * per_lane_batch)
           ~f:(fun ~seq:_ ~lane:_ ~time:_ -> ()));
      let per_lane = Mempool.committed_per_lane m in
      let mn = Array.fold_left min max_int per_lane in
      let mx = Array.fold_left max 0 per_lane in
      (* A saturated pool drains in exact round-robin: no lane is ever a
         full command ahead of another. *)
      mx - mn <= 1)

(* --- end-to-end: harness runs ---------------------------------------------- *)

let run_with_clients ?(faults = "") ~protocol ~seed () =
  let spec =
    {
      Spec.default with
      Spec.clients = 50_000;
      rate_per_s = 15_000.;
      lanes = 4;
      lane_capacity = 128;
      backlog_capacity = 64;
      max_batch = 64;
    }
  in
  let schedule =
    if faults = "" then Bft_faults.Fault_schedule.empty
    else
      match Bft_faults.Fault_schedule.of_string faults with
      | Ok f -> f
      | Error e -> failwith e
  in
  let cfg =
    {
      (Config.local protocol ~n:4) with
      Config.clients = Some spec;
      duration_ms = 4_000.;
      seed;
      faults = schedule;
    }
  in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let dup = ref None in
  let out_of_order = ref None in
  let last_commit = ref neg_infinity in
  let r =
    Harness.run
      ~on_client_command:(fun ~seq ~lane:_ ~submit_ms ~commit_ms ->
        if Hashtbl.mem seen seq then dup := Some seq;
        Hashtbl.replace seen seq ();
        if commit_ms < !last_commit then out_of_order := Some seq;
        last_commit := commit_ms;
        if commit_ms < submit_ms then out_of_order := Some seq)
      cfg
  in
  let s = Option.get r.Harness.client_summary in
  (match !dup with
  | Some seq -> Alcotest.failf "command %d drawn twice" seq
  | None -> ());
  (match !out_of_order with
  | Some seq -> Alcotest.failf "command %d committed out of order" seq
  | None -> ());
  check_int "every draw observed" s.Ingest.committed (Hashtbl.length seen);
  check_int "conservation" s.Ingest.submitted
    (s.Ingest.rejected + s.Ingest.committed + s.Ingest.pending
   + s.Ingest.backlogged);
  check "traffic flowed" true (s.Ingest.committed > 0);
  s

let test_no_loss_happy () =
  ignore (run_with_clients ~protocol:Protocol_kind.Commit_moonshot ~seed:1 ())

let test_no_loss_across_crash () =
  (* Crash an honest node mid-run and recover it: the replicated mempool
     is derived from the committed chain, so no command may be lost or
     drawn twice even while a replica rebuilds. *)
  let s =
    run_with_clients ~faults:"crash@800:1;recover@2000:1"
      ~protocol:Protocol_kind.Commit_moonshot ~seed:3 ()
  in
  check "commits continued" true (s.Ingest.committed > 0)

let test_replay_properties =
  QCheck.Test.make ~name:"no loss/dup over random runs" ~count:8
    QCheck.(
      pair
        (oneofl
           [
             Protocol_kind.Simple_moonshot;
             Protocol_kind.Pipelined_moonshot;
             Protocol_kind.Commit_moonshot;
             Protocol_kind.Jolteon;
             Protocol_kind.Hotstuff;
           ])
        (int_range 1 1_000))
    (fun (protocol, seed) ->
      ignore (run_with_clients ~protocol ~seed ());
      true)

let test_sim_run_deterministic () =
  (* The whole pipeline is deterministic: identical configs produce
     identical summaries, batch for batch. *)
  let go () = run_with_clients ~protocol:Protocol_kind.Jolteon ~seed:11 () in
  let a = go () and b = go () in
  check "summaries identical" true (a = b)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "mempool"
    [
      ( "payload-batch",
        [
          Alcotest.test_case "round-trip" `Quick test_batch_roundtrip;
          Alcotest.test_case "bounds" `Quick test_batch_bounds;
          Alcotest.test_case "non-batch ids" `Quick test_non_batch_payloads;
        ] );
      ( "hist",
        [
          Alcotest.test_case "quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "merge/clear" `Quick test_hist_merge_and_clear;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "deterministic" `Quick test_arrival_deterministic;
          Alcotest.test_case "views slots" `Quick test_arrival_views_slots;
          Alcotest.test_case "wall rate" `Quick test_arrival_wall_rate;
          Alcotest.test_case "client range" `Quick test_arrival_client_range;
        ] );
      ( "lane",
        [
          Alcotest.test_case "fifo + wraparound" `Quick test_lane_fifo_wraparound;
          Alcotest.test_case "bounds raise" `Quick test_lane_bounds_raise;
        ] );
      ( "mempool",
        [
          Alcotest.test_case "verdict progression" `Quick test_verdict_progression;
          Alcotest.test_case "promotion fifo" `Quick
            test_promotion_preserves_fifo_and_time;
          Alcotest.test_case "round robin" `Quick test_drain_round_robin;
          Alcotest.test_case "runs dry" `Quick test_drain_runs_dry;
          qc test_model_equivalence;
          qc test_saturation_fairness;
        ] );
      ( "replay",
        [
          Alcotest.test_case "no loss (happy)" `Quick test_no_loss_happy;
          Alcotest.test_case "no loss (crash/recover)" `Quick
            test_no_loss_across_crash;
          Alcotest.test_case "deterministic" `Quick test_sim_run_deterministic;
          qc test_replay_properties;
        ] );
    ]
