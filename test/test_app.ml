open Bft_types
open Bft_app
module B = Test_support.Builders

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Command expansion ------------------------------------------------------ *)

let test_expansion_deterministic () =
  let p = Payload.make ~id:7 ~size_bytes:1_800 in
  let a = Command.of_payload p and b = Command.of_payload p in
  check_int "ten commands from 1.8kB" 10 (List.length a);
  check "same payload same commands" true (List.for_all2 Command.equal a b)

let test_expansion_depends_on_id () =
  let a = Command.of_payload (Payload.make ~id:1 ~size_bytes:1_800) in
  let b = Command.of_payload (Payload.make ~id:2 ~size_bytes:1_800) in
  check "different payloads different commands" true
    (not (List.for_all2 Command.equal a b))

let test_empty_payload_no_commands () =
  check_int "empty expands to nothing" 0
    (List.length (Command.of_payload (Payload.empty ~id:3)))

let test_command_size_is_item_size () =
  check_int "command footprint" Payload.item_size Command.encoded_size

(* --- KV store ------------------------------------------------------------------ *)

let test_kv_set_get_del () =
  let kv = Kv_store.create () in
  Kv_store.apply kv (Command.Set { key = "a"; value = 1 });
  check "set visible" true (Kv_store.find kv "a" = Some 1);
  Kv_store.apply kv (Command.Incr { key = "a"; by = 4 });
  check "incr adds" true (Kv_store.find kv "a" = Some 5);
  Kv_store.apply kv (Command.Incr { key = "fresh"; by = 2 });
  check "incr on missing starts from zero" true (Kv_store.find kv "fresh" = Some 2);
  Kv_store.apply kv (Command.Del { key = "a" });
  check "del removes" true (Kv_store.find kv "a" = None);
  check_int "live keys" 1 (Kv_store.size kv);
  check_int "four commands applied" 4 (Kv_store.applied kv)

let test_kv_digest_captures_state_and_history () =
  let a = Kv_store.create () and b = Kv_store.create () in
  Kv_store.apply a (Command.Set { key = "x"; value = 1 });
  Kv_store.apply b (Command.Set { key = "x"; value = 1 });
  check "same history same digest" true (Hash.equal (Kv_store.digest a) (Kv_store.digest b));
  (* Same final bindings via a different number of commands: digests differ
     because the applied count is part of the digest. *)
  Kv_store.apply b (Command.Set { key = "x"; value = 1 });
  check "different history different digest" false
    (Hash.equal (Kv_store.digest a) (Kv_store.digest b))

let test_kv_bindings_sorted () =
  let kv = Kv_store.create () in
  List.iter
    (fun k -> Kv_store.apply kv (Command.Set { key = k; value = 0 }))
    [ "b"; "a"; "c" ];
  check "sorted" true (List.map fst (Kv_store.bindings kv) = [ "a"; "b"; "c" ])


let test_command_mix_over_large_payload () =
  (* All three command kinds appear in a big payload, with Set dominating
     (the generator's 2/4 : 1/4 : 1/4 split). *)
  let cmds = Command.of_payload (Payload.make ~id:42 ~size_bytes:180_000) in
  let sets, incrs, dels =
    List.fold_left
      (fun (s, i, d) -> function
        | Command.Set _ -> (s + 1, i, d)
        | Command.Incr _ -> (s, i + 1, d)
        | Command.Del _ -> (s, i, d + 1))
      (0, 0, 0) cmds
  in
  check_int "a thousand commands" 1000 (sets + incrs + dels);
  check "all kinds appear" true (sets > 0 && incrs > 0 && dels > 0);
  check "sets dominate" true (sets > incrs && sets > dels)

let test_kv_digest_insensitive_to_apply_interleaving_of_distinct_keys () =
  (* Same multiset of per-key final effects, same digest (digest folds over
     sorted bindings), as long as the command COUNT matches. *)
  let a = Kv_store.create () and b = Kv_store.create () in
  Kv_store.apply a (Command.Set { key = "x"; value = 1 });
  Kv_store.apply a (Command.Set { key = "y"; value = 2 });
  Kv_store.apply b (Command.Set { key = "y"; value = 2 });
  Kv_store.apply b (Command.Set { key = "x"; value = 1 });
  check "digest is order-insensitive across independent keys" true
    (Hash.equal (Kv_store.digest a) (Kv_store.digest b))

(* --- Ledger ----------------------------------------------------------------------- *)

let payload_chain len =
  (* Chain whose blocks carry ten commands each. *)
  let rec go acc parent view =
    if view > len then List.rev acc
    else
      let b = B.block ~payload_size:1_800 ~view ~parent () in
      go (b :: acc) b (view + 1)
  in
  go [] Block.genesis 1

let test_ledger_applies_in_order () =
  let chain = payload_chain 3 in
  let l = Ledger.create () in
  List.iter (Ledger.apply_block l) chain;
  check_int "height tracks" 3 (Ledger.height l);
  check_int "30 commands" 30 (Ledger.commands_applied l)

let test_ledger_rejects_gaps () =
  let chain = payload_chain 3 in
  let l = Ledger.create () in
  Ledger.apply_block l (List.nth chain 0);
  check "skipping a height raises" true
    (try
       Ledger.apply_block l (List.nth chain 2);
       false
     with Invalid_argument _ -> true)

let test_ledger_replicas_agree () =
  let chain = payload_chain 5 in
  let a = Ledger.create () and b = Ledger.create () in
  List.iter (Ledger.apply_block a) chain;
  (* Replica b only saw the first three blocks. *)
  List.iteri (fun i blk -> if i < 3 then Ledger.apply_block b blk) chain;
  let common = min (Ledger.height a) (Ledger.height b) in
  check_int "common height" 3 common;
  check "prefix digests agree" true
    (match (Ledger.digest_at a common, Ledger.digest_at b common) with
    | Some x, Some y -> Hash.equal x y
    | _ -> false);
  check "tip digests differ" false (Hash.equal (Ledger.digest a) (Ledger.digest b))

let test_ledger_digest_at_bounds () =
  let l = Ledger.create () in
  check "height zero digest exists" true (Ledger.digest_at l 0 <> None);
  check "future height is none" true (Ledger.digest_at l 5 = None)

(* --- Replay determinism ------------------------------------------------------------ *)

let test_batch_expansion_deterministic () =
  (* Batch references expand like any other payload: the packed id fully
     determines the command stream, so replicas replaying the committed
     chain reconstruct identical batches. *)
  let p = Payload.batch ~cursor:4_096 ~watermark:10_000 ~count:12 in
  let a = Command.of_payload p and b = Command.of_payload p in
  check_int "count commands" 12 (List.length a);
  check "expansion deterministic" true (List.for_all2 Command.equal a b);
  let q = Payload.batch ~cursor:4_097 ~watermark:10_000 ~count:12 in
  check "cursor feeds the expansion" true
    (not (List.for_all2 Command.equal a (Command.of_payload q)))

let test_kv_replay_deterministic () =
  (* The same command sequence applied to two fresh stores yields the same
     digest at every step — state is a pure function of the history. *)
  let cmds =
    List.concat_map Command.of_payload
      (List.map (fun id -> Payload.make ~id ~size_bytes:1_800) [ 1; 2; 3; 4 ])
  in
  let a = Kv_store.create () and b = Kv_store.create () in
  List.iter
    (fun c ->
      Kv_store.apply a c;
      Kv_store.apply b c;
      if not (Hash.equal (Kv_store.digest a) (Kv_store.digest b)) then
        Alcotest.fail "digest diverged mid-replay")
    cmds;
  check "final digests agree" true (Hash.equal (Kv_store.digest a) (Kv_store.digest b))

let test_ledger_replay_deterministic () =
  let chain = payload_chain 6 in
  let a = Ledger.create () and b = Ledger.create () in
  List.iter (Ledger.apply_block a) chain;
  List.iter (Ledger.apply_block b) chain;
  check "tip digests agree" true (Hash.equal (Ledger.digest a) (Ledger.digest b));
  for h = 0 to 6 do
    check "prefix digests agree" true
      (match (Ledger.digest_at a h, Ledger.digest_at b h) with
      | Some x, Some y -> Hash.equal x y
      | _ -> false)
  done

(* --- Client latency analysis --------------------------------------------------------- *)

let test_client_analysis () =
  (* Blocks every 100 ms, each committing 300 ms after creation. *)
  let timeline =
    List.init 11 (fun i ->
        let c = float_of_int (i * 100) in
        (c, Some (c +. 300.)))
  in
  let s = Client.analyze timeline in
  check_int "all committed" 11 s.Client.committed_blocks;
  check "period 100" true (Float.abs (s.Client.avg_block_period_ms -. 100.) < 1e-9);
  check "commit 300" true (Float.abs (s.Client.avg_commit_latency_ms -. 300.) < 1e-9);
  check "queueing is half a period" true
    (Float.abs (s.Client.avg_queueing_ms -. 50.) < 1e-9);
  check "end to end sums" true
    (Float.abs (s.Client.avg_end_to_end_ms -. 350.) < 1e-9)

let test_client_counts_lost () =
  let timeline = [ (0., Some 300.); (100., None); (200., Some 500.) ] in
  let s = Client.analyze timeline in
  check_int "lost counted" 1 s.Client.lost_blocks;
  check_int "committed counted" 2 s.Client.committed_blocks

let test_client_needs_two () =
  check "single block rejected" true
    (try
       ignore (Client.analyze [ (0., Some 1.) ]);
       false
     with Invalid_argument _ -> true)

let test_client_period_drives_end_to_end () =
  (* Same commit latency, halved block period: end-to-end improves. *)
  let mk period =
    List.init 21 (fun i ->
        let c = float_of_int (i * period) in
        (c, Some (c +. 300.)))
  in
  let fast = Client.analyze (mk 100) and slow = Client.analyze (mk 200) in
  check "shorter period, lower end-to-end" true
    (fast.Client.avg_end_to_end_ms < slow.Client.avg_end_to_end_ms)

let () =
  Alcotest.run "app"
    [
      ( "command",
        [
          Alcotest.test_case "deterministic expansion" `Quick
            test_expansion_deterministic;
          Alcotest.test_case "payload-id sensitivity" `Quick test_expansion_depends_on_id;
          Alcotest.test_case "empty payload" `Quick test_empty_payload_no_commands;
          Alcotest.test_case "command size" `Quick test_command_size_is_item_size;
        ] );
      ( "kv-store",
        [
          Alcotest.test_case "set/incr/del" `Quick test_kv_set_get_del;
          Alcotest.test_case "digest" `Quick test_kv_digest_captures_state_and_history;
          Alcotest.test_case "bindings sorted" `Quick test_kv_bindings_sorted;
          Alcotest.test_case "command mix" `Quick test_command_mix_over_large_payload;
          Alcotest.test_case "digest key-order insensitive" `Quick
            test_kv_digest_insensitive_to_apply_interleaving_of_distinct_keys;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "applies in order" `Quick test_ledger_applies_in_order;
          Alcotest.test_case "rejects gaps" `Quick test_ledger_rejects_gaps;
          Alcotest.test_case "replicas agree on prefix" `Quick test_ledger_replicas_agree;
          Alcotest.test_case "digest_at bounds" `Quick test_ledger_digest_at_bounds;
          Alcotest.test_case "batch expansion deterministic" `Quick
            test_batch_expansion_deterministic;
          Alcotest.test_case "kv replay deterministic" `Quick
            test_kv_replay_deterministic;
          Alcotest.test_case "ledger replay deterministic" `Quick
            test_ledger_replay_deterministic;
        ] );
      ( "client",
        [
          Alcotest.test_case "analysis" `Quick test_client_analysis;
          Alcotest.test_case "lost blocks" `Quick test_client_counts_lost;
          Alcotest.test_case "needs two" `Quick test_client_needs_two;
          Alcotest.test_case "period matters" `Quick test_client_period_drives_end_to_end;
        ] );
    ]
