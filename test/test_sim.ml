open Bft_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Event queue -------------------------------------------------------------- *)

let test_queue_orders_by_time () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  let pops = List.init 3 (fun _ -> Event_queue.pop q) in
  check "sorted" true
    (pops = [ Some (1., "a"); Some (2., "b"); Some (3., "c") ]);
  check "then empty" true (Event_queue.pop q = None)

let test_queue_fifo_on_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.push q ~time:5. v) [ "x"; "y"; "z" ];
  let vs = List.init 3 (fun _ -> Option.get (Event_queue.pop q) |> snd) in
  check "insertion order preserved at equal times" true (vs = [ "x"; "y"; "z" ])

let test_queue_interleaved () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:2. 2;
  check "pop earliest" true (Event_queue.pop q = Some (2., 2));
  Event_queue.push q ~time:1. 1;
  Event_queue.push q ~time:3. 3;
  check "late-added earlier event pops first" true (Event_queue.pop q = Some (1., 1));
  check_int "size tracks" 1 (Event_queue.size q)

let test_queue_grows () =
  let q = Event_queue.create () in
  for i = 999 downto 0 do
    Event_queue.push q ~time:(float_of_int i) i
  done;
  check_int "holds 1000" 1000 (Event_queue.size q);
  let sorted = ref true in
  let prev = ref (-1.) in
  for _ = 1 to 1000 do
    let t, _ = Option.get (Event_queue.pop q) in
    if t < !prev then sorted := false;
    prev := t
  done;
  check "heap order over growth" true !sorted

let test_queue_rejects_nan () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan time" (Invalid_argument "Event_queue.push: bad time")
    (fun () -> Event_queue.push q ~time:Float.nan ())

let test_queue_take () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:2. "b";
  Event_queue.push q ~time:1. "a";
  check_float "min_time is earliest" 1. (Event_queue.min_time q);
  check "take returns value only" true (Event_queue.take q = "a");
  check_float "min_time advances" 2. (Event_queue.min_time q);
  check "take drains" true (Event_queue.take q = "b");
  Alcotest.check_raises "take on empty" (Invalid_argument "Event_queue.take: empty")
    (fun () -> ignore (Event_queue.take q : string))

(* Random push/pop interleavings against a reference model: a sorted
   association list keyed (time, push sequence number).  Catches any heap
   restructuring that loses the FIFO tie-break or global time order. *)
let prop_queue_matches_model =
  let gen =
    QCheck.(
      list (pair (oneofl [ 0.; 1.; 1.; 2.; 5.; 5.; 9. ]) bool)
      (* times drawn from a small set so ties are common; the bool picks
         push vs pop *))
  in
  QCheck.Test.make ~name:"event queue matches reference model" ~count:300 gen
    (fun ops ->
      let q = Event_queue.create () in
      let model = ref [] (* sorted by (time, seq) ascending *) in
      let next = ref 0 in
      let insert time v =
        let rec go = function
          | [] -> [ (time, v) ]
          | ((t, _) as hd) :: tl when t <= time -> hd :: go tl
          | rest -> (time, v) :: rest
        in
        model := go !model
      in
      List.for_all
        (fun (time, is_push) ->
          if is_push then begin
            let v = !next in
            incr next;
            Event_queue.push q ~time v;
            insert time v;
            Event_queue.size q = List.length !model
            && Event_queue.min_time q = fst (List.hd !model)
          end
          else
            match (Event_queue.pop q, !model) with
            | None, [] -> true
            | Some (t, v), (t', v') :: rest ->
                model := rest;
                t = t' && v = v'
            | Some _, [] | None, _ :: _ -> false)
        ops
      && Event_queue.size q = List.length !model)

(* --- RNG ------------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 10 (fun _ -> Rng.float a 1.) in
  let ys = List.init 10 (fun _ -> Rng.float b 1.) in
  check "same seed same stream" true (xs = ys)

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 10 (fun _ -> Rng.float a 1.) in
  let ys = List.init 10 (fun _ -> Rng.float b 1.) in
  check "different seeds differ" true (xs <> ys)

let test_rng_split_independent () =
  let root = Rng.create 7 in
  let a = Rng.split root in
  let b = Rng.split root in
  let xs = List.init 10 (fun _ -> Rng.float a 1.) in
  let ys = List.init 10 (fun _ -> Rng.float b 1.) in
  check "splits differ" true (xs <> ys)

let test_rng_ranges () =
  let r = Rng.create 3 in
  let ok = ref true in
  for _ = 1 to 1000 do
    let f = Rng.float r 10. in
    if f < 0. || f >= 10. then ok := false;
    let i = Rng.int r 7 in
    if i < 0 || i >= 7 then ok := false
  done;
  check "bounds respected" true !ok

let test_rng_gaussian_moments () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Rng.gaussian r ~mean:5. ~std:2.) in
  let mean = List.fold_left ( +. ) 0. xs /. float_of_int n in
  check "gaussian mean approx" true (Float.abs (mean -. 5.) < 0.1)

let test_rng_exponential_positive () =
  let r = Rng.create 13 in
  let ok = ref true in
  for _ = 1 to 1000 do
    if Rng.exponential r ~mean:3. < 0. then ok := false
  done;
  check "exponential nonnegative" true !ok

(* --- Latency --------------------------------------------------------------------- *)

let test_uniform_latency () =
  let l = Latency.Uniform { base = 10.; jitter = 5. } in
  let r = Rng.create 1 in
  let ok = ref true in
  for _ = 1 to 500 do
    let s = Latency.sample l r ~src:0 ~dst:1 in
    if s < 10. || s >= 15. then ok := false
  done;
  check "uniform in [base, base+jitter)" true !ok;
  check_float "upper bound" 15. (Latency.upper_bound l)

let test_matrix_latency_regions () =
  let table = [| [| 1.; 100. |]; [| 100.; 1. |] |] in
  let l = Latency.Matrix { table; region_of = (fun i -> i mod 2) } in
  let r = Rng.create 1 in
  let intra = Latency.sample l r ~src:0 ~dst:2 in
  let inter = Latency.sample l r ~src:0 ~dst:1 in
  check "intra-region near table value" true (intra < 2.);
  check "inter-region near table value" true (inter > 70.);
  check "upper bound covers jitter" true (Latency.upper_bound l >= 100.)

(* --- Network ---------------------------------------------------------------------- *)

let uniform_net ?bandwidth_bps ?gst ?pre_gst_extra () =
  Network.make ?bandwidth_bps ?gst ?pre_gst_extra
    ~latency:(Latency.Uniform { base = 10.; jitter = 0. })
    ~delta:50. ()

let test_network_delta_validated () =
  Alcotest.check_raises "delta below latency bound"
    (Invalid_argument "Network.make: delta below the latency model's upper bound")
    (fun () ->
      ignore
        (Network.make
           ~latency:(Latency.Uniform { base = 100.; jitter = 0. })
           ~delta:50. ()))

let test_serialization_delay () =
  let net = uniform_net ~bandwidth_bps:8e6 () in
  (* 8 Mbit/s: 1000 bytes = 8000 bits = 1 ms. *)
  check_float "1000B at 8Mbps is 1ms" 1. (Network.serialization_ms net ~size:1000);
  let inf = uniform_net () in
  check_float "infinite bandwidth" 0. (Network.serialization_ms inf ~size:1_000_000)

let test_egress_serializes () =
  let net = uniform_net ~bandwidth_bps:8e6 () in
  let rng = Rng.create 1 in
  let e1, a1 =
    Network.delivery net rng ~now:0. ~egress_free:0. ~src:0 ~dst:1 ~size:1000
  in
  let e2, a2 =
    Network.delivery net rng ~now:0. ~egress_free:e1 ~src:0 ~dst:2 ~size:1000
  in
  check_float "first egress busy until 1ms" 1. e1;
  check_float "second queued behind first" 2. e2;
  check_float "first arrives at 11ms" 11. a1;
  check_float "second arrives at 12ms" 12. a2

let test_pre_gst_delay_bounded () =
  let net = uniform_net ~gst:1000. ~pre_gst_extra:10_000. () in
  let rng = Rng.create 1 in
  let ok = ref true in
  for _ = 1 to 200 do
    let _, arrival =
      Network.delivery net rng ~now:0. ~egress_free:0. ~src:0 ~dst:1 ~size:10
    in
    (* Delivery within Delta of GST at the latest, never before base. *)
    if arrival > 1000. +. 50. || arrival < 10. then ok := false
  done;
  check "pre-GST deliveries bounded by GST + Delta" true !ok

let test_post_gst_no_extra () =
  let net = uniform_net ~gst:1000. ~pre_gst_extra:10_000. () in
  let rng = Rng.create 1 in
  let _, arrival =
    Network.delivery net rng ~now:2000. ~egress_free:0. ~src:0 ~dst:1 ~size:10
  in
  check_float "post-GST delivery is just latency" 2010. arrival

(* --- Engine ---------------------------------------------------------------------- *)

let make_engine ?(n = 3) () =
  Engine.create ~n ~network:(uniform_net ()) ~seed:1
    ~msg_size:(fun (_ : string) -> 100)
    ()

let test_engine_delivers () =
  let e = make_engine () in
  let got = ref [] in
  Engine.set_handler e 1 (fun ~src msg -> got := (src, msg) :: !got);
  Engine.send e ~src:0 ~dst:1 "hello";
  Engine.run e ~until:100.;
  check "delivered with source" true (!got = [ (0, "hello") ])

let test_engine_multicast_includes_self () =
  let e = make_engine () in
  let counts = Array.make 3 0 in
  for i = 0 to 2 do
    Engine.set_handler e i (fun ~src:_ _ -> counts.(i) <- counts.(i) + 1)
  done;
  Engine.multicast e ~src:0 "m";
  Engine.run e ~until:100.;
  check "every node got one copy" true (counts = [| 1; 1; 1 |])

let test_engine_self_delivery_immediate () =
  let e = make_engine () in
  let at = ref (-1.) in
  Engine.set_handler e 0 (fun ~src:_ _ -> at := Engine.now e);
  Engine.send e ~src:0 ~dst:0 "self";
  Engine.run e ~until:100.;
  check_float "self delivery at send time" 0. !at

let test_engine_timer_and_cancel () =
  let e = make_engine () in
  let fired = ref [] in
  let (_c1 : unit -> unit) = Engine.set_timer e 10. (fun () -> fired := 1 :: !fired) in
  let c2 = Engine.set_timer e 20. (fun () -> fired := 2 :: !fired) in
  c2 ();
  Engine.run e ~until:100.;
  check "only uncancelled timer fired" true (!fired = [ 1 ])

let test_engine_until_stops () =
  let e = make_engine () in
  let fired = ref false in
  let (_cancel : unit -> unit) = Engine.set_timer e 500. (fun () -> fired := true) in
  Engine.run e ~until:100.;
  check "event beyond horizon not run" true (not !fired);
  check_float "clock advanced to horizon" 100. (Engine.now e)

let test_engine_drained_queue_advances_clock () =
  (* Regression: when the queue empties before [until], the clock used to be
     left at the last event's time, so a later [set_timer] would fire early. *)
  let e = make_engine () in
  Engine.set_handler e 1 (fun ~src:_ _ -> ());
  Engine.send e ~src:0 ~dst:1 "only event";
  Engine.run e ~until:100.;
  check_float "clock is the horizon, not the last event" 100. (Engine.now e);
  let at = ref (-1.) in
  let (_c : unit -> unit) = Engine.set_timer e 5. (fun () -> at := Engine.now e) in
  Engine.run e ~until:200.;
  check_float "timer set after a drained run is horizon-relative" 105. !at

let test_engine_deterministic () =
  let run_once () =
    let e = make_engine () in
    let trace = ref [] in
    for i = 0 to 2 do
      Engine.set_handler e i (fun ~src msg ->
          trace := (Engine.now e, src, i, msg) :: !trace;
          if msg = "ping" && i = 1 then Engine.multicast e ~src:1 "pong")
    done;
    Engine.multicast e ~src:0 "ping";
    Engine.run e ~until:1000.;
    !trace
  in
  check "two identical runs produce identical traces" true (run_once () = run_once ())

let test_engine_link_filter () =
  let e = make_engine () in
  let got = ref 0 in
  Engine.set_handler e 1 (fun ~src:_ _ -> incr got);
  Engine.set_link_filter e (fun ~src ~dst ~now:_ -> not (src = 0 && dst = 1));
  Engine.send e ~src:0 ~dst:1 "dropped";
  Engine.send e ~src:2 ~dst:1 "kept";
  Engine.run e ~until:100.;
  check_int "only unfiltered link delivers" 1 !got

let test_engine_stats () =
  let e = make_engine () in
  Engine.multicast e ~src:0 "m";
  Engine.run e ~until:100.;
  let s = Engine.stats e in
  (* The local self hand-off never hits the wire: n - 1 network sends. *)
  check_int "2 network sends for 3-node multicast" 2 s.Engine.messages_sent;
  check_int "bytes accounted" 200 s.Engine.bytes_sent


let test_engine_cpu_queue_serializes () =
  (* Two messages arriving together at one node are processed serially when
     a CPU cost model is installed. *)
  let net = uniform_net () in
  let e =
    Engine.create ~n:3 ~network:net ~seed:1
      ~msg_size:(fun (_ : string) -> 10)
      ~cpu_cost:(fun _ -> 5.)
      ()
  in
  let times = ref [] in
  Engine.set_handler e 2 (fun ~src:_ _ -> times := Engine.now e :: !times);
  Engine.send e ~src:0 ~dst:2 "a";
  Engine.send e ~src:1 ~dst:2 "b";
  Engine.run e ~until:100.;
  (* Both arrive at 10ms; handlers run at 15 and 20. *)
  check "serial processing" true (List.rev !times = [ 15.; 20. ])

let test_engine_cpu_self_delivery_free () =
  let net = uniform_net () in
  let e =
    Engine.create ~n:2 ~network:net ~seed:1
      ~msg_size:(fun (_ : string) -> 10)
      ~cpu_cost:(fun _ -> 50.)
      ()
  in
  let at = ref (-1.) in
  Engine.set_handler e 0 (fun ~src:_ _ -> at := Engine.now e);
  Engine.send e ~src:0 ~dst:0 "self";
  Engine.run e ~until:100.;
  check_float "self delivery skips the CPU queue" 0. !at

let test_engine_no_cpu_model_is_instant () =
  let e = make_engine () in
  let times = ref [] in
  Engine.set_handler e 2 (fun ~src:_ _ -> times := Engine.now e :: !times);
  Engine.send e ~src:0 ~dst:2 "a";
  Engine.send e ~src:1 ~dst:2 "b";
  Engine.run e ~until:100.;
  check "both processed at arrival" true (List.rev !times = [ 10.; 10. ])


let test_engine_delivery_tap () =
  let e = make_engine () in
  let seen = ref [] in
  Engine.set_delivery_tap e (fun ~time ~src ~dst msg ->
      seen := (time, src, dst, msg) :: !seen);
  Engine.set_handler e 1 (fun ~src:_ _ -> ());
  Engine.send e ~src:0 ~dst:1 "tapped";
  Engine.run e ~until:100.;
  check "tap observed the delivery" true
    (!seen = [ (10., 0, 1, "tapped") ])

let test_engine_duplication () =
  let net =
    Network.make ~duplicate_prob:1.
      ~latency:(Latency.Uniform { base = 10.; jitter = 0. })
      ~delta:50. ()
  in
  let e =
    Engine.create ~n:2 ~network:net ~seed:1 ~msg_size:(fun (_ : string) -> 10) ()
  in
  let count = ref 0 in
  Engine.set_handler e 1 (fun ~src:_ _ -> incr count);
  Engine.send e ~src:0 ~dst:1 "m";
  Engine.run e ~until:100.;
  check_int "probability 1 duplicates every message" 2 !count

let test_duplicate_prob_validated () =
  check "p > 1 rejected" true
    (try
       ignore
         (Network.make ~duplicate_prob:1.5
            ~latency:(Latency.Uniform { base = 1.; jitter = 0. })
            ~delta:10. ());
       false
     with Invalid_argument _ -> true)

let test_engine_drop () =
  let net =
    Network.make ~drop_prob:1.
      ~latency:(Latency.Uniform { base = 10.; jitter = 0. })
      ~delta:50. ()
  in
  let e =
    Engine.create ~n:2 ~network:net ~seed:1 ~msg_size:(fun (_ : string) -> 10) ()
  in
  let count = ref 0 in
  Engine.set_handler e 1 (fun ~src:_ _ -> incr count);
  Engine.send e ~src:0 ~dst:1 "m";
  Engine.run e ~until:100.;
  check_int "probability 1 drops every message" 0 !count

let test_drop_prob_validated () =
  check "p > 1 rejected" true
    (try
       ignore
         (Network.make ~drop_prob:1.5
            ~latency:(Latency.Uniform { base = 1.; jitter = 0. })
            ~delta:10. ());
       false
     with Invalid_argument _ -> true);
  check "p < 0 rejected" true
    (try
       ignore
         (Network.make ~drop_prob:(-0.1)
            ~latency:(Latency.Uniform { base = 1.; jitter = 0. })
            ~delta:10. ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "sim"
    [
      ( "event-queue",
        [
          Alcotest.test_case "orders by time" `Quick test_queue_orders_by_time;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_on_ties;
          Alcotest.test_case "interleaved" `Quick test_queue_interleaved;
          Alcotest.test_case "growth" `Quick test_queue_grows;
          Alcotest.test_case "rejects nan" `Quick test_queue_rejects_nan;
          Alcotest.test_case "min_time/take" `Quick test_queue_take;
          QCheck_alcotest.to_alcotest prop_queue_matches_model;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "exponential sign" `Quick test_rng_exponential_positive;
        ] );
      ( "latency",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_latency;
          Alcotest.test_case "matrix regions" `Quick test_matrix_latency_regions;
        ] );
      ( "network",
        [
          Alcotest.test_case "delta validated" `Quick test_network_delta_validated;
          Alcotest.test_case "serialization delay" `Quick test_serialization_delay;
          Alcotest.test_case "egress FIFO" `Quick test_egress_serializes;
          Alcotest.test_case "pre-GST bounded" `Quick test_pre_gst_delay_bounded;
          Alcotest.test_case "post-GST clean" `Quick test_post_gst_no_extra;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delivers" `Quick test_engine_delivers;
          Alcotest.test_case "multicast + self" `Quick test_engine_multicast_includes_self;
          Alcotest.test_case "self delivery immediate" `Quick
            test_engine_self_delivery_immediate;
          Alcotest.test_case "timers + cancel" `Quick test_engine_timer_and_cancel;
          Alcotest.test_case "horizon" `Quick test_engine_until_stops;
          Alcotest.test_case "drained queue advances clock" `Quick
            test_engine_drained_queue_advances_clock;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "link filter" `Quick test_engine_link_filter;
          Alcotest.test_case "stats" `Quick test_engine_stats;
          Alcotest.test_case "cpu queue serializes" `Quick
            test_engine_cpu_queue_serializes;
          Alcotest.test_case "cpu skips self delivery" `Quick
            test_engine_cpu_self_delivery_free;
          Alcotest.test_case "no cpu model" `Quick test_engine_no_cpu_model_is_instant;
          Alcotest.test_case "delivery tap" `Quick test_engine_delivery_tap;
          Alcotest.test_case "duplication" `Quick test_engine_duplication;
          Alcotest.test_case "duplicate prob validated" `Quick
            test_duplicate_prob_validated;
          Alcotest.test_case "drop" `Quick test_engine_drop;
          Alcotest.test_case "drop prob validated" `Quick
            test_drop_prob_validated;
        ] );
    ]
