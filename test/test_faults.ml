(* Fault injection end to end: the schedule DSL, the engine's crash/recover
   semantics, WAL crash-recovery (no double votes across restarts) for all
   four protocols, and the acceptance demo — crash a leader, partition the
   survivors, heal, recover — running deterministically with the online
   liveness monitor armed. *)

open Bft_types
open Bft_runtime
module FS = Bft_faults.Fault_schedule
module Mock = Test_support.Mock_env
module B = Test_support.Builders

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- schedule DSL ----------------------------------------------------------- *)

let demo_schedule =
  FS.demo ~n:4 ~leader:1 ~crash_at:500. ~partition_at:1500. ~heal_at:2500.
    ~recover_at:3500.

let test_roundtrip () =
  let s = FS.to_string demo_schedule in
  match FS.of_string s with
  | Ok parsed -> check "roundtrips through text" true (parsed = demo_schedule)
  | Error e -> Alcotest.failf "parse error on %S: %s" s e

let test_parse_errors () =
  List.iter
    (fun s ->
      match FS.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "crash@"; "crash@x:1"; "smash@5:1"; "loss@10-20:1.5"; "partition@5-2:0/1" ]

let test_validate_budget () =
  let ok t = FS.validate ~n:4 ~f:1 ~byzantine:[] t in
  let rejected ?(byzantine = []) t =
    try
      FS.validate ~n:4 ~f:1 ~byzantine t;
      false
    with Invalid_argument _ -> true
  in
  ok [ FS.Crash { node = 0; at = 10. }; FS.Recover { node = 0; at = 20. } ];
  (* A crash with no recovery stays inside the budget too. *)
  ok [ FS.Crash { node = 2; at = 10. } ];
  check "two concurrent crashes exceed f = 1" true
    (rejected
       [
         FS.Crash { node = 0; at = 10. };
         FS.Crash { node = 1; at = 15. };
         FS.Recover { node = 0; at = 30. };
         FS.Recover { node = 1; at = 30. };
       ]);
  check "sequential crash/recover cycles fit" false
    (rejected
       [
         FS.Crash { node = 0; at = 10. };
         FS.Recover { node = 0; at = 20. };
         FS.Crash { node = 1; at = 30. };
         FS.Recover { node = 1; at = 40. };
       ]);
  check "a Byzantine node eats the whole budget" true
    (rejected ~byzantine:[ 3 ] [ FS.Crash { node = 0; at = 10. } ]);
  check "crashing a Byzantine node is rejected" true
    (rejected ~byzantine:[ 0 ] [ FS.Crash { node = 0; at = 10. } ]);
  check "node out of range" true
    (rejected [ FS.Crash { node = 9; at = 10. } ]);
  check "recover before crash" true
    (rejected [ FS.Recover { node = 0; at = 10. } ])

let test_max_concurrent () =
  check_int "sweep counts the overlap" 2
    (FS.max_concurrent_crashed
       [
         FS.Crash { node = 0; at = 10. };
         FS.Crash { node = 1; at = 15. };
         FS.Recover { node = 0; at = 20. };
         FS.Recover { node = 1; at = 25. };
       ]);
  check_int "no overlap after interleaved recovery" 1
    (FS.max_concurrent_crashed
       [
         FS.Crash { node = 0; at = 10. };
         FS.Recover { node = 0; at = 20. };
         FS.Crash { node = 1; at = 20. };
       ])

let test_random_schedules_valid () =
  for seed = 1 to 50 do
    let n = 4 + (seed mod 5) in
    let f = (n - 1) / 3 in
    let t =
      FS.random
        ~rng:(Bft_sim.Rng.create seed)
        ~n ~f ~duration:5_000. ~delta:50.
    in
    FS.validate ~n ~f ~byzantine:[] t;
    (* Everything heals by 0.6 * duration, leaving room for the bound. *)
    List.iter
      (fun h -> check "heals by 0.6 * duration" true (h <= 3_000.))
      (FS.heal_times t)
  done

(* --- engine crash/recover semantics ------------------------------------------ *)

let make_engine () =
  let net =
    Bft_sim.Network.make
      ~latency:(Bft_sim.Latency.Uniform { base = 10.; jitter = 0. })
      ~delta:50. ()
  in
  Bft_sim.Engine.create ~n:3 ~network:net ~seed:1
    ~msg_size:(fun (_ : string) -> 10)
    ()

let test_crash_quenches_inflight () =
  let e = make_engine () in
  let count = ref 0 in
  let handler ~src:_ (_ : string) = incr count in
  Bft_sim.Engine.set_handler e 1 handler;
  Bft_sim.Engine.send e ~src:0 ~dst:1 "m";
  (* Crash while the message is on the wire; recover (and reinstall the
     handler) before its arrival time: the old incarnation's delivery must
     never reach the new one. *)
  Bft_sim.Engine.schedule_at e 3. (fun () -> Bft_sim.Engine.crash e 1);
  Bft_sim.Engine.schedule_at e 5. (fun () ->
      Bft_sim.Engine.recover e 1;
      Bft_sim.Engine.set_handler e 1 handler);
  Bft_sim.Engine.run e ~until:100.;
  check_int "in-flight delivery quenched" 0 !count

let test_crash_quenches_owned_timer () =
  let e = make_engine () in
  let owned = ref false and unowned = ref false in
  ignore
    (Bft_sim.Engine.set_timer ~owner:0 e 10. (fun () -> owned := true)
      : unit -> unit);
  ignore
    (Bft_sim.Engine.set_timer e 10. (fun () -> unowned := true) : unit -> unit);
  Bft_sim.Engine.schedule_at e 3. (fun () -> Bft_sim.Engine.crash e 0);
  Bft_sim.Engine.schedule_at e 5. (fun () -> Bft_sim.Engine.recover e 0);
  Bft_sim.Engine.run e ~until:100.;
  check "owned timer quenched across crash+recover" false !owned;
  check "unowned timer unaffected" true !unowned

let test_crashed_sends_suppressed () =
  let e = make_engine () in
  let count = ref 0 in
  Bft_sim.Engine.set_handler e 1 (fun ~src:_ (_ : string) -> incr count);
  Bft_sim.Engine.crash e 0;
  Bft_sim.Engine.send e ~src:0 ~dst:1 "m";
  Bft_sim.Engine.multicast e ~src:0 "m";
  Bft_sim.Engine.run e ~until:100.;
  check_int "a down node sends nothing" 0 !count;
  check_int "nothing counted either" 0
    (Bft_sim.Engine.stats e).Bft_sim.Engine.messages_sent

let test_timers_after_recovery_fire () =
  let e = make_engine () in
  let fired = ref false in
  Bft_sim.Engine.crash e 0;
  Bft_sim.Engine.schedule_at e 5. (fun () ->
      Bft_sim.Engine.recover e 0;
      ignore
        (Bft_sim.Engine.set_timer ~owner:0 e 10. (fun () -> fired := true)
          : unit -> unit));
  Bft_sim.Engine.run e ~until:100.;
  check "new incarnation's timer fires" true !fired

(* --- WAL crash-recovery: never a second vote for the same view ----------------- *)

let chain = B.chain 5
let blk v = List.nth chain (v - 1)
let delta = 100.

(* Drive a node (as id 2, a non-leader) to vote in view 1, crash it (drop
   the instance), rebuild it from the same WAL behind a fresh mock, and
   re-deliver the very proposal it already voted for.  A correct recovery
   never emits a second vote for that view. *)
let wal_no_double_vote (type node wal)
    (module P : Bft_types.Protocol_intf.S
      with type msg = Moonshot.Message.t
       and type node = node
       and type wal = wal) () =
  let open Moonshot in
  let wal = P.wal_create () in
  let proposal = Message.Propose { block = blk 1; cert = Cert.genesis } in
  let votes mock =
    List.filter_map
      (function Message.Vote { kind; block } -> Some (kind, block) | _ -> None)
      (Mock.multicasts mock)
  in
  let boot () =
    let mock, env = Mock.create ~n:4 ~delta ~id:2 () in
    let node = P.create ~wal env in
    Mock.attach mock (fun ~src msg -> P.handle node ~src msg);
    P.start node;
    (mock, node)
  in
  let mock, node = boot () in
  P.handle node ~src:0 proposal;
  check_int "voted once before the crash" 1 (List.length (votes mock));
  (* Crash: the instance is gone, only the WAL survives. *)
  let mock2, node2 = boot () in
  P.handle node2 ~src:0 proposal;
  check_int "no second vote for the same view after recovery" 0
    (List.length (votes mock2))

let jolteon_wal_no_double_vote () =
  let wal = Moonshot.Wal.create () in
  let proposal =
    Jolteon.Jolteon_msg.Propose
      { block = blk 1; qc = Moonshot.Cert.genesis; tc = None }
  in
  let votes mock =
    List.filter_map
      (function
        | dst, Jolteon.Jolteon_msg.Vote { block } -> Some (dst, block)
        | _ -> None)
      (Mock.unicasts mock)
  in
  let boot () =
    let mock, env = Mock.create ~n:4 ~delta ~id:2 () in
    let node = Jolteon.Jolteon_node.create ~wal env in
    Mock.attach mock (fun ~src msg -> Jolteon.Jolteon_node.handle node ~src msg);
    Jolteon.Jolteon_node.start node;
    (mock, node)
  in
  let mock, node = boot () in
  Jolteon.Jolteon_node.handle node ~src:0 proposal;
  check_int "voted once before the crash" 1 (List.length (votes mock));
  let mock2, node2 = boot () in
  Jolteon.Jolteon_node.handle node2 ~src:0 proposal;
  check_int "no second vote for the same round after recovery" 0
    (List.length (votes mock2))

(* A leader that crashed after proposing must not re-propose for the same
   view on recovery (that would be an equivocation opportunity). *)
let leader_no_reproposal_after_recovery () =
  let wal = Moonshot.Wal.create () in
  let proposals mock =
    List.filter
      (function
        | Moonshot.Message.Propose _ | Moonshot.Message.Opt_propose _
        | Moonshot.Message.Fb_propose _ ->
            true
        | _ -> false)
      (Mock.multicasts mock)
  in
  let boot () =
    let mock, env = Mock.create ~n:4 ~delta ~id:0 () in
    let node = Moonshot.Pipelined_node.create ~wal env in
    Mock.attach mock (fun ~src msg ->
        Moonshot.Pipelined_node.handle node ~src msg);
    Moonshot.Pipelined_node.start node;
    (mock, node)
  in
  let mock, _node = boot () in
  check_int "leader of view 1 proposes at start" 1
    (List.length (proposals mock));
  let mock2, _node2 = boot () in
  check_int "recovery does not re-propose" 0 (List.length (proposals mock2))

(* --- the acceptance demo through the real harness ------------------------------- *)

let demo_config protocol =
  {
    (Config.local protocol ~n:4) with
    Config.duration_ms = 8_000.;
    faults = demo_schedule;
  }

let commit_log cfg =
  let log = ref [] in
  let r =
    Harness.run
      ~on_commit:(fun ~node b ->
        log := (node, b.Block.height, Hash.to_int b.Block.hash) :: !log)
      cfg
  in
  (r, List.rev !log)

let demo_deterministic protocol () =
  let cfg = demo_config protocol in
  let r1, log1 = commit_log cfg in
  let r2, log2 = commit_log cfg in
  check "identical commit logs across repeats" true (log1 = log2);
  check "identical byte counts" true
    (r1.Harness.bytes_sent = r2.Harness.bytes_sent);
  check "committed through the faults" true
    (r1.Harness.metrics.Metrics.committed_blocks > 0);
  let fs = Option.get r1.Harness.fault_summary in
  let live = fs.Harness.liveness in
  check "liveness checkpoints passed" true
    (live.Bft_obs.Liveness.checks_passed >= 1);
  match live.Bft_obs.Liveness.recoveries with
  | [ rec1 ] ->
      check "the crashed leader recovered" true
        (rec1.Bft_obs.Liveness.node = 1
        && rec1.Bft_obs.Liveness.crashed_at_ms = 500.
        && rec1.Bft_obs.Liveness.recovered_at_ms = 3500.);
      check "and caught up to the quorum height" true
        (Option.is_some rec1.Bft_obs.Liveness.caught_up_at_ms)
  | _ -> Alcotest.fail "expected exactly one recovery in the report"

(* The recovered node must catch up through sync traffic, not by re-voting
   in long-past views: trace the run and look at what node 1 does after its
   recovery at t = 3500. *)
let demo_recovery_syncs () =
  let cfg = demo_config Protocol_kind.Pipelined_moonshot in
  let trace = Bft_obs.Trace.create () in
  ignore (Harness.run ~trace cfg);
  let events = Bft_obs.Trace.events trace in
  check "the crash is in the trace" true
    (List.exists
       (fun (e : Bft_obs.Trace.event) ->
         e.Bft_obs.Trace.kind = Bft_obs.Trace.Fault Bft_obs.Trace.Crash
         && e.Bft_obs.Trace.node = 1)
       events);
  let after_recovery =
    List.filter
      (fun (e : Bft_obs.Trace.event) -> e.Bft_obs.Trace.time >= 3500.)
      events
  in
  check "recovered node receives sync traffic" true
    (List.exists
       (fun (e : Bft_obs.Trace.event) ->
         e.Bft_obs.Trace.node = 1
         &&
         match e.Bft_obs.Trace.kind with
         | Bft_obs.Trace.Delivered { cls = `Other; _ } -> true
         | _ -> false)
       after_recovery);
  (* Old views are settled: any vote the recovered node casts is for a view
     at or past the one its WAL recorded (view at crash time), never a
     re-vote for a previously-voted view. *)
  let crash_view =
    List.fold_left
      (fun acc (e : Bft_obs.Trace.event) ->
        match e.Bft_obs.Trace.kind with
        | Bft_obs.Trace.Delivered { view = Some v; _ }
          when e.Bft_obs.Trace.time < 500. ->
            max acc v
        | _ -> acc)
      0 events
  in
  List.iter
    (fun (e : Bft_obs.Trace.event) ->
      match e.Bft_obs.Trace.kind with
      | Bft_obs.Trace.Delivered { cls = `Vote; view = Some v; src = 1; _ }
        when e.Bft_obs.Trace.time >= 3500. ->
          check "no vote for a pre-crash view after recovery" true
            (v > crash_view)
      | _ -> ())
    after_recovery

(* Crashing and recovering either single node must not be able to violate
   anything even when the recovery lands mid-partition. *)
let demo_overlapping_recovery () =
  let faults =
    [
      FS.Crash { node = 2; at = 400. };
      FS.Partition { groups = [ [ 0; 1 ] ]; from_ = 1_000.; until = 2_200. };
      FS.Recover { node = 2; at = 1_500. };
      FS.Delay_spike { extra_ms = 120.; from_ = 2_400.; until = 3_000. };
    ]
  in
  List.iter
    (fun protocol ->
      let cfg =
        {
          (Config.local protocol ~n:4) with
          Config.duration_ms = 8_000.;
          faults;
        }
      in
      let r = Harness.run cfg in
      check "survives recovery inside a partition" true
        (r.Harness.metrics.Metrics.committed_blocks > 0))
    Protocol_kind.paper

let parse_and_run () =
  (* The textual syntax drives the same machinery. *)
  match FS.of_string "crash@500:1;recover@2000:1" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok faults ->
      let cfg =
        {
          (Config.local Protocol_kind.Simple_moonshot ~n:4) with
          Config.duration_ms = 5_000.;
          faults;
        }
      in
      let r = Harness.run cfg in
      let fs = Option.get r.Harness.fault_summary in
      check_int "one recovery" 1
        (List.length fs.Harness.liveness.Bft_obs.Liveness.recoveries)

let () =
  let wal_case name p = Alcotest.test_case name `Quick (wal_no_double_vote p) in
  Alcotest.run "faults"
    [
      ( "schedule",
        [
          Alcotest.test_case "text roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "budget validation" `Quick test_validate_budget;
          Alcotest.test_case "max concurrent" `Quick test_max_concurrent;
          Alcotest.test_case "random schedules valid" `Quick
            test_random_schedules_valid;
        ] );
      ( "engine",
        [
          Alcotest.test_case "in-flight quenched" `Quick
            test_crash_quenches_inflight;
          Alcotest.test_case "owned timer quenched" `Quick
            test_crash_quenches_owned_timer;
          Alcotest.test_case "down sends suppressed" `Quick
            test_crashed_sends_suppressed;
          Alcotest.test_case "post-recovery timers fire" `Quick
            test_timers_after_recovery_fire;
        ] );
      ( "wal-recovery",
        [
          wal_case "simple moonshot no double vote"
            (module Moonshot.Simple_node.Protocol);
          wal_case "pipelined moonshot no double vote"
            (module Moonshot.Pipelined_node.Protocol);
          wal_case "commit moonshot no double vote"
            (module Moonshot.Pipelined_node.Commit_protocol);
          Alcotest.test_case "jolteon no double vote" `Quick
            jolteon_wal_no_double_vote;
          Alcotest.test_case "leader no re-proposal" `Quick
            leader_no_reproposal_after_recovery;
        ] );
      ( "demo",
        [
          Alcotest.test_case "simple moonshot deterministic" `Quick
            (demo_deterministic Protocol_kind.Simple_moonshot);
          Alcotest.test_case "pipelined moonshot deterministic" `Quick
            (demo_deterministic Protocol_kind.Pipelined_moonshot);
          Alcotest.test_case "commit moonshot deterministic" `Quick
            (demo_deterministic Protocol_kind.Commit_moonshot);
          Alcotest.test_case "jolteon deterministic" `Quick
            (demo_deterministic Protocol_kind.Jolteon);
          Alcotest.test_case "recovery syncs, not re-votes" `Quick
            demo_recovery_syncs;
          Alcotest.test_case "recovery inside a partition" `Quick
            demo_overlapping_recovery;
          Alcotest.test_case "textual schedule end to end" `Quick
            parse_and_run;
        ] );
    ]
