(* Wire-format and live-network substrate tests.

   Codec layer: qcheck round-trips (decode of encode is the identity) over
   every constructor of both message families, strict-prefix truncation
   rejection, garbage-never-raises fuzzing, and byte-pinned vectors that
   docs/WIRE.md quotes verbatim.

   Transport layer: localhost TCP clusters for all five protocols (thread
   and process modes), survival under malformed-frame injection, trace
   merging, and the substrate cross-validation: the simulator and the
   socket cluster must commit identical chains on the happy path. *)

open Bft_types
module Wire = Bft_net.Wire
module Tcp = Bft_net.Tcp
module Codec = Moonshot.Codec
module Jcodec = Jolteon.Jolteon_codec
module Message = Moonshot.Message
module Jmsg = Jolteon.Jolteon_msg
module Cert = Moonshot.Cert
module Tc = Moonshot.Tc
module Vote_kind = Moonshot.Vote_kind
module Net_harness = Bft_runtime.Net_harness
module Protocol_kind = Bft_runtime.Protocol_kind

let ( let* ) gen f = QCheck.Gen.( >>= ) gen f

(* --- generators ----------------------------------------------------------- *)

let payload_gen =
  let* id = QCheck.Gen.int_range 0 10_000 in
  let* size_bytes = QCheck.Gen.int_range 0 200 in
  QCheck.Gen.return (Payload.make ~id ~size_bytes)

(* A structurally valid block: a short chain grown from genesis, so
   heights, views and parent hashes all satisfy the smart constructors. *)
let block_gen =
  let* depth = QCheck.Gen.int_range 1 4 in
  let* proposer = QCheck.Gen.int_range 0 9 in
  let* view_step = QCheck.Gen.int_range 1 3 in
  let* payload = payload_gen in
  let rec grow parent d =
    if d = 0 then parent
    else
      grow
        (Block.create ~parent
           ~view:(parent.Block.view + view_step)
           ~proposer ~payload)
        (d - 1)
  in
  QCheck.Gen.return (grow Block.genesis depth)

let vote_kind_gen =
  QCheck.Gen.oneofl [ Vote_kind.Opt; Vote_kind.Normal; Vote_kind.Fallback ]

let cert_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return Cert.genesis;
      (let* kind = vote_kind_gen in
       let* block = block_gen in
       let* signers = QCheck.Gen.int_range 1 10 in
       QCheck.Gen.return
         (Cert.make ~kind ~view:block.Block.view ~block ~signers));
    ]

let tc_gen =
  let* view = QCheck.Gen.int_range 1 50 in
  let* high_cert = QCheck.Gen.option cert_gen in
  let* signers = QCheck.Gen.int_range 1 10 in
  QCheck.Gen.return (Tc.make ~view ~high_cert ~signers)

let msg_gen : Message.t QCheck.Gen.t =
  QCheck.Gen.oneof
    [
      (let* block = block_gen in
       QCheck.Gen.return (Message.Opt_propose { block }));
      (let* block = block_gen in
       let* cert = cert_gen in
       QCheck.Gen.return (Message.Propose { block; cert }));
      (let* block = block_gen in
       let* cert = cert_gen in
       let* tc = tc_gen in
       QCheck.Gen.return (Message.Fb_propose { block; cert; tc }));
      (let* kind = vote_kind_gen in
       let* block = block_gen in
       QCheck.Gen.return (Message.Vote { kind; block }));
      (let* view = QCheck.Gen.int_range 1 1000 in
       let* lock = QCheck.Gen.option cert_gen in
       QCheck.Gen.return (Message.Timeout { view; lock }));
      (let* c = cert_gen in
       QCheck.Gen.return (Message.Cert_gossip c));
      (let* tc = tc_gen in
       QCheck.Gen.return (Message.Tc_gossip tc));
      (let* view = QCheck.Gen.int_range 1 1000 in
       let* lock = cert_gen in
       QCheck.Gen.return (Message.Status { view; lock }));
      (let* view = QCheck.Gen.int_range 1 1000 in
       let* block = block_gen in
       QCheck.Gen.return (Message.Commit_vote { view; block }));
      (let* block = block_gen in
       QCheck.Gen.return (Message.Block_request { hash = block.Block.hash }));
      (let* blocks = QCheck.Gen.list_size (QCheck.Gen.int_range 0 5) block_gen in
       QCheck.Gen.return (Message.Blocks_response { blocks }));
    ]

let jmsg_gen : Jmsg.t QCheck.Gen.t =
  QCheck.Gen.oneof
    [
      (let* block = block_gen in
       let* qc = cert_gen in
       let* tc = QCheck.Gen.option tc_gen in
       QCheck.Gen.return (Jmsg.Propose { block; qc; tc }));
      (let* block = block_gen in
       QCheck.Gen.return (Jmsg.Vote { block }));
      (let* round = QCheck.Gen.int_range 1 1000 in
       let* high_qc = cert_gen in
       QCheck.Gen.return (Jmsg.Timeout { round; high_qc }));
      (let* block = block_gen in
       QCheck.Gen.return (Jmsg.Block_request { hash = block.Block.hash }));
      (let* blocks = QCheck.Gen.list_size (QCheck.Gen.int_range 0 5) block_gen in
       QCheck.Gen.return (Jmsg.Blocks_response { blocks }));
    ]

let arb_msg = QCheck.make ~print:(Format.asprintf "%a" Message.pp) msg_gen
let arb_jmsg = QCheck.make ~print:(Format.asprintf "%a" Jmsg.pp) jmsg_gen

(* --- round-trip properties ------------------------------------------------- *)

let prop_roundtrip_moonshot =
  QCheck.Test.make ~name:"moonshot codec round-trip" ~count:500 arb_msg
    (fun m -> Codec.decode (Codec.encode m) = Ok m)

let prop_roundtrip_jolteon =
  QCheck.Test.make ~name:"jolteon codec round-trip" ~count:500 arb_jmsg
    (fun m -> Jcodec.decode (Jcodec.encode m) = Ok m)

(* Every strict prefix of a valid body must be rejected: the decoder's
   reads are deterministic, so a cut can only surface as an error, never
   as a different successful parse. *)
let prop_truncation_moonshot =
  QCheck.Test.make ~name:"moonshot truncated frames rejected" ~count:200
    arb_msg (fun m ->
      let body = Codec.encode m in
      List.for_all
        (fun k -> Result.is_error (Codec.decode (String.sub body 0 k)))
        (List.init (String.length body) (fun k -> k)))

let prop_truncation_jolteon =
  QCheck.Test.make ~name:"jolteon truncated frames rejected" ~count:200
    arb_jmsg (fun m ->
      let body = Jcodec.encode m in
      List.for_all
        (fun k -> Result.is_error (Jcodec.decode (String.sub body 0 k)))
        (List.init (String.length body) (fun k -> k)))

(* Garbage in, Error out — never an exception. *)
let garbage_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.string_size (QCheck.Gen.int_range 0 64);
      (* Valid version byte, then noise: exercises the per-tag readers. *)
      (let* tag = QCheck.Gen.int_range 0 0x30 in
       let* rest = QCheck.Gen.string_size (QCheck.Gen.int_range 0 64) in
       QCheck.Gen.return (Printf.sprintf "\x01%c%s" (Char.chr tag) rest));
    ]

let prop_garbage_never_raises =
  QCheck.Test.make ~name:"garbage frames never raise" ~count:2000
    (QCheck.make garbage_gen) (fun s ->
      (match Codec.decode s with Ok _ -> true | Error _ -> true)
      && match Jcodec.decode s with Ok _ -> true | Error _ -> true)

(* --- varint primitives ----------------------------------------------------- *)

let prop_uvar_roundtrip =
  QCheck.Test.make ~name:"uvar round-trip" ~count:1000
    (* [land max_int] rather than [abs]: abs min_int is still negative. *)
    QCheck.(map (fun i -> i land max_int) int)
    (fun v ->
      let w = Wire.W.create () in
      Wire.W.uvar w v;
      let r = Wire.R.of_string (Wire.W.contents w) in
      let v' = Wire.R.uvar r in
      Wire.R.expect_end r;
      v' = v)

let prop_svar_roundtrip =
  (* [asr 2] keeps magnitudes under the writer's 2^61 zigzag bound while
     still covering the full sign range. *)
  QCheck.Test.make ~name:"svar round-trip" ~count:1000
    QCheck.(map (fun i -> i asr 2) int)
    (fun v ->
      let w = Wire.W.create () in
      Wire.W.svar w v;
      let r = Wire.R.of_string (Wire.W.contents w) in
      let v' = Wire.R.svar r in
      Wire.R.expect_end r;
      v' = v)

(* --- pinned vectors (quoted in docs/WIRE.md) ------------------------------- *)

let hex s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.init
    (String.length s) (fun i -> Char.code s.[i])))

let pinned_vote_vector () =
  let body = Codec.encode (Message.Vote { kind = Vote_kind.Normal; block = Block.genesis }) in
  Alcotest.(check string)
    "Vote{Normal, genesis} body" "01040100000000000000000000010000"
    (hex body);
  Alcotest.(check string)
    "framed" ("00000010" ^ hex body)
    (hex (Wire.frame body))

let pinned_timeout_vector () =
  let body = Codec.encode (Message.Timeout { view = 3; lock = None }) in
  Alcotest.(check string) "Timeout{3, None} body" "01050300" (hex body)

let pinned_jolteon_vote_vector () =
  let body = Jcodec.encode (Jmsg.Vote { block = Block.genesis }) in
  Alcotest.(check string)
    "Jolteon Vote{genesis} body" "012200000000000000000000010000"
    (hex body)

let bad_version_rejected () =
  let body = Codec.encode (Message.Timeout { view = 3; lock = None }) in
  let bad = "\x02" ^ String.sub body 1 (String.length body - 1) in
  match Codec.decode bad with
  | Error (Wire.Bad_version 2) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "bad version accepted"

let unknown_tag_rejected () =
  match Codec.decode "\x01\x7f" with
  | Error (Wire.Bad_tag 0x7f) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "unknown tag accepted"

let trailing_rejected () =
  let body = Codec.encode (Message.Timeout { view = 3; lock = None }) in
  match Codec.decode (body ^ "\x00") with
  | Error (Wire.Trailing 1) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "trailing byte accepted"

let negative_height_rejected () =
  (* A hand-built Vote body whose height varint zigzag-decodes fine but
     whose block constructor must refuse it: proposer -2 (svar 03). *)
  let w = Wire.W.create () in
  Wire.W.u8 w 0x01;
  Wire.W.u8 w 0x04;
  Wire.W.u8 w 1;
  Wire.W.u64 w 0L;
  Wire.W.uvar w 0;
  Wire.W.uvar w 0;
  Wire.W.svar w (-2);
  Wire.W.uvar w 0;
  Wire.W.uvar w 0;
  match Codec.decode (Wire.W.contents w) with
  | Error (Wire.Invalid _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "bad proposer accepted"

(* --- live clusters --------------------------------------------------------- *)

let cluster_case kind =
  Alcotest.test_case (Protocol_kind.name kind) `Quick (fun () ->
      let cfg = Net_harness.config kind ~n:4 ~blocks:3 in
      let r = Net_harness.run kind cfg in
      match Net_harness.check r ~target:3 with
      | Ok () -> ()
      | Error reason -> Alcotest.fail reason)

(* The acceptance bar: 50 blocks over real sockets. *)
let fifty_blocks () =
  let kind = Protocol_kind.Commit_moonshot in
  let cfg = Net_harness.config kind ~n:4 ~blocks:50 in
  let r = Net_harness.run kind cfg in
  match Net_harness.check r ~target:50 with
  | Ok () -> ()
  | Error reason -> Alcotest.fail reason

let process_mode () =
  let kind = Protocol_kind.Commit_moonshot in
  let cfg =
    {
      (Net_harness.config kind ~n:4 ~blocks:3) with
      Tcp.mode = Tcp.Processes;
    }
  in
  let r = Net_harness.run kind cfg in
  match Net_harness.check r ~target:3 with
  | Ok () -> ()
  | Error reason -> Alcotest.fail reason

let traced_cluster () =
  let kind = Protocol_kind.Pipelined_moonshot in
  let cfg =
    { (Net_harness.config kind ~n:4 ~blocks:3) with Tcp.trace = true }
  in
  let r = Net_harness.run kind cfg in
  let quorum = Net_harness.quorum ~n:4 in
  let lines = Tcp.merged_trace r ~quorum in
  Alcotest.(check bool) "trace non-empty" true (lines <> []);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "JSONL shape: %s" l)
        true
        (String.length l > 6 && String.sub l 0 5 = "{\"t\":"))
    lines;
  let times =
    List.map
      (fun l -> Scanf.sscanf l "{\"t\":%f" (fun t -> t))
      lines
  in
  Alcotest.(check bool) "times nondecreasing" true
    (List.for_all2 (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < List.length times - 1) times)
       (List.tl times));
  Alcotest.(check bool) "has quorum_commit" true
    (List.exists
       (fun l ->
         let re = {|"ev":"quorum_commit"|} in
         let rec find i =
           i + String.length re <= String.length l
           && (String.sub l i (String.length re) = re || find (i + 1))
         in
         find 0)
       lines);
  Alcotest.(check bool) "has latency samples" true
    (Tcp.quorum_latencies r ~quorum <> [])

(* A rogue client connects to a validator and feeds it garbage while the
   cluster runs; the cluster must still commit, and the frames sent after
   a valid hello must be counted as decode errors. *)
let malformed_injection () =
  let kind = Protocol_kind.Commit_moonshot in
  let base_port = 28411 in
  let cfg =
    {
      (Net_harness.config kind ~n:4 ~blocks:5) with
      Tcp.base_port = Some base_port;
    }
  in
  let inject () =
    let rec connect tries =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_loopback, base_port));
        fd
      with Unix.Unix_error _ when tries > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Thread.delay 0.005;
        connect (tries - 1)
    in
    (* Client 1: a valid hello from "node 2", then well-framed garbage
       bodies — each must be skipped and counted, not crash the node. *)
    let fd = connect 200 in
    let w = Wire.W.create () in
    Wire.W.u8 w 0x01;
    Wire.W.u8 w 0x00;
    Wire.W.uvar w 2;
    Wire.W.uvar w 4;
    Wire.W.bytes w (Protocol_kind.name kind);
    (try
       Wire.write_all fd (Wire.frame (Wire.W.contents w));
       Wire.write_all fd (Wire.frame "\x01\x7f\xde\xad\xbe\xef");
       Wire.write_all fd (Wire.frame "\x42\x42\x42")
     with Unix.Unix_error _ -> ());
    (* Client 2: raw garbage instead of a hello — dropped at the door. *)
    let fd2 = connect 200 in
    (try Wire.write_all fd2 "\xff\xff\xff\xff garbage" with Unix.Unix_error _ -> ());
    Thread.delay 0.2;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    try Unix.close fd2 with Unix.Unix_error _ -> ()
  in
  let injector = Thread.create inject () in
  let r = Net_harness.run kind cfg in
  Thread.join injector;
  (match Net_harness.check r ~target:5 with
  | Ok () -> ()
  | Error reason -> Alcotest.fail reason);
  let errors =
    Array.fold_left (fun acc nr -> acc + nr.Tcp.decode_errors) 0 r.Tcp.nodes
  in
  Alcotest.(check bool) "garbage frames counted" true (errors >= 1)

(* --- hello handshake rejection --------------------------------------------- *)

let hello_frame ?(version = 0x01) ~sender ~n ~protocol () =
  let w = Wire.W.create () in
  Wire.W.u8 w version;
  Wire.W.u8 w 0x00;
  Wire.W.uvar w sender;
  Wire.W.uvar w n;
  Wire.W.bytes w protocol;
  Wire.frame (Wire.W.contents w)

(* A validator that rejects a hello closes the connection without writing
   anything: from the rogue client's side that is a clean EOF (or a reset
   if our write raced the close). *)
let expect_closed what fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
  let buf = Bytes.create 1 in
  (match Unix.read fd buf 0 1 with
  | 0 -> ()
  | _ -> Alcotest.failf "%s: validator sent data on a rejected conn" what
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Alcotest.failf "%s: connection not closed" what);
  try Unix.close fd with Unix.Unix_error _ -> ()

let hello_rejects () =
  let kind = Protocol_kind.Commit_moonshot in
  let proto = Protocol_kind.name kind in
  let base_port = 28461 in
  let cfg =
    {
      (Net_harness.config kind ~n:4 ~blocks:10) with
      Tcp.base_port = Some base_port;
    }
  in
  let inject () =
    let rec connect tries =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_loopback, base_port));
        fd
      with Unix.Unix_error _ when tries > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Thread.delay 0.005;
        connect (tries - 1)
    in
    let try_hello what frame =
      let fd = connect 400 in
      (try Wire.write_all fd frame with Unix.Unix_error _ -> ());
      expect_closed what fd
    in
    try_hello "wrong protocol"
      (hello_frame ~sender:2 ~n:4 ~protocol:"bogus-protocol" ());
    try_hello "wrong cluster size" (hello_frame ~sender:2 ~n:5 ~protocol:proto ());
    try_hello "sender out of range"
      (hello_frame ~sender:9 ~n:4 ~protocol:proto ());
    (* Node 0's own id claimed by a peer: self-loops never dial out, so
       an inbound hello naming the listener itself is an impostor. *)
    try_hello "sender is self" (hello_frame ~sender:0 ~n:4 ~protocol:proto ());
    try_hello "stale version"
      (hello_frame ~version:0x02 ~sender:2 ~n:4 ~protocol:proto ())
  in
  let injector = Thread.create inject () in
  let r = Net_harness.run kind cfg in
  Thread.join injector;
  match Net_harness.check r ~target:10 with
  | Ok () -> ()
  | Error reason -> Alcotest.fail reason

(* --- chaos: fault injection on live sockets -------------------------------- *)

(* One wall-clock crash/recover cycle while the cluster runs.  The dead
   incarnation's sockets must go down (peers see drops, then reconnect),
   the supervisor must rebuild the node from its WAL snapshot, and the
   cluster must still reach the target with per-height agreement. *)
let wall_chaos_result mode =
  let kind = Protocol_kind.Commit_moonshot in
  let faults =
    match Bft_faults.Fault_schedule.of_string "crash@150:2;recover@700:2" with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  let cfg =
    {
      (Net_harness.config kind ~n:4 ~blocks:40) with
      Tcp.mode;
      delta_ms = 300.;
      link_delay_ms = 8.;
      faults;
    }
  in
  Net_harness.run kind cfg

let assert_recovered (r : Tcp.result) ~node =
  (match Net_harness.check_chaos r ~target:40 with
  | Ok () -> ()
  | Error reason -> Alcotest.fail reason);
  Alcotest.(check bool) "completed cooperatively" true (r.Tcp.outcome = Tcp.Completed);
  Alcotest.(check bool)
    "victim restarted" true
    (r.Tcp.nodes.(node).Tcp.restarts >= 1);
  let kinds = List.map (fun fe -> fe.Tcp.fe_kind) r.Tcp.fault_events in
  Alcotest.(check bool) "crash recorded" true
    (List.mem Bft_obs.Trace.Crash kinds);
  Alcotest.(check bool) "recover recorded" true
    (List.mem Bft_obs.Trace.Recover kinds);
  let report = Net_harness.net_liveness r ~delta:300. in
  (match report.Bft_obs.Liveness.recoveries with
  | [ rec_ ] ->
      Alcotest.(check int) "recovered node" node rec_.Bft_obs.Liveness.node;
      Alcotest.(check bool) "caught up" true
        (rec_.Bft_obs.Liveness.caught_up_at_ms <> None)
  | rs -> Alcotest.failf "expected 1 recovery in report, got %d" (List.length rs));
  Alcotest.(check bool) "bounded post-disruption commit gap" true
    (report.Bft_obs.Liveness.max_quorum_gap_ms
    <= report.Bft_obs.Liveness.bound_ms)

let threads_crash_recover () =
  assert_recovered (wall_chaos_result Tcp.Threads) ~node:2

(* Process mode: the victim really dies ([SIGKILL]) and is re-forked; its
   new incarnation rebuilds from the WAL file and catches up via sync. *)
let process_crash_recover () =
  assert_recovered (wall_chaos_result Tcp.Processes) ~node:2

(* --- substrate cross-validation -------------------------------------------- *)

let crossval_case kind =
  Alcotest.test_case (Protocol_kind.name kind) `Quick (fun () ->
      let cv = Net_harness.cross_validate ~n:4 ~protocol:kind ~blocks:5 () in
      if not cv.Net_harness.agree then
        Alcotest.failf "substrates disagree: sim %s, net %s"
          (String.concat ","
             (List.map
                (fun (c : Net_harness.commit_id) ->
                  Printf.sprintf "%d@%d" c.Net_harness.height c.view)
                cv.Net_harness.sim_commits))
          (String.concat ","
             (List.map
                (fun (c : Net_harness.commit_id) ->
                  Printf.sprintf "%d@%d" c.Net_harness.height c.view)
                cv.Net_harness.net_commits)))

let crossval_with_payload () =
  let cv =
    Net_harness.cross_validate ~n:4 ~payload_bytes:2048
      ~protocol:Protocol_kind.Commit_moonshot ~blocks:5 ()
  in
  Alcotest.(check bool) "payload run agrees" true cv.Net_harness.agree

(* The client-traffic equivalence bar: the same seeded client stream,
   ingested under the Views clock, must put every command in the same
   block on both substrates — chains agree (height, view, hash), and
   since batch contents are a pure function of the payload reference,
   the replicated mempools agree command-for-command. *)
let crossval_clients_case kind =
  Alcotest.test_case (Protocol_kind.name kind) `Quick (fun () ->
      let cv =
        Net_harness.cross_validate_clients ~n:4 ~protocol:kind ~blocks:5 ()
      in
      if not cv.Net_harness.cc_agree then
        Alcotest.failf "client chains disagree: sim %s, net %s"
          (String.concat ","
             (List.map
                (fun (c : Net_harness.commit_id) ->
                  Printf.sprintf "%d@%d" c.Net_harness.height c.view)
                cv.Net_harness.cc_sim_chain))
          (String.concat ","
             (List.map
                (fun (c : Net_harness.commit_id) ->
                  Printf.sprintf "%d@%d" c.Net_harness.height c.view)
                cv.Net_harness.cc_net_chain));
      (* Both replayers saw real traffic and lost nothing. *)
      List.iter
        (fun (s : Bft_mempool.Ingest.summary) ->
          Alcotest.(check bool) "commands flowed" true (s.committed > 0);
          Alcotest.(check int) "conservation" s.submitted
            (s.rejected + s.committed + s.pending + s.backlogged))
        [ cv.Net_harness.cc_sim_summary; cv.Net_harness.cc_net_summary ])

(* The chaos equivalence bar: a seeded random logical schedule (one
   crash/recover plus one partition window) must yield the identical
   committed (height, view, hash) chain on the simulator and on real
   sockets in both execution modes. *)
let crossval_chaos_case kind =
  Alcotest.test_case (Protocol_kind.name kind) `Quick (fun () ->
      let cv = Net_harness.cross_validate_chaos ~protocol:kind () in
      if not cv.Net_harness.agree then
        Alcotest.failf "chaos chains disagree under [%s] (%d blocks)"
          (Bft_faults.Fault_schedule.to_string cv.Net_harness.schedule)
          cv.Net_harness.blocks;
      List.iter
        (fun (rep : Bft_obs.Liveness.report) ->
          match rep.Bft_obs.Liveness.recoveries with
          | [ rec_ ] ->
              Alcotest.(check bool) "caught up after recovery" true
                (rec_.Bft_obs.Liveness.caught_up_at_ms <> None)
          | rs ->
              Alcotest.failf "expected 1 recovery, got %d" (List.length rs))
        [ cv.Net_harness.thread_liveness; cv.Net_harness.process_liveness ])

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "net"
    [
      ( "codec",
        q
          [
            prop_roundtrip_moonshot;
            prop_roundtrip_jolteon;
            prop_truncation_moonshot;
            prop_truncation_jolteon;
            prop_garbage_never_raises;
            prop_uvar_roundtrip;
            prop_svar_roundtrip;
          ] );
      ( "vectors",
        [
          Alcotest.test_case "vote (pinned)" `Quick pinned_vote_vector;
          Alcotest.test_case "timeout (pinned)" `Quick pinned_timeout_vector;
          Alcotest.test_case "jolteon vote (pinned)" `Quick
            pinned_jolteon_vote_vector;
          Alcotest.test_case "bad version" `Quick bad_version_rejected;
          Alcotest.test_case "unknown tag" `Quick unknown_tag_rejected;
          Alcotest.test_case "trailing bytes" `Quick trailing_rejected;
          Alcotest.test_case "bad proposer" `Quick negative_height_rejected;
        ] );
      ( "cluster",
        List.map cluster_case Protocol_kind.all
        @ [
            Alcotest.test_case "50 blocks" `Quick fifty_blocks;
            Alcotest.test_case "process mode" `Quick process_mode;
            Alcotest.test_case "traced run" `Quick traced_cluster;
            Alcotest.test_case "malformed injection" `Quick malformed_injection;
            Alcotest.test_case "hello rejects" `Quick hello_rejects;
          ] );
      ( "chaos",
        [
          Alcotest.test_case "threads crash/recover" `Quick
            threads_crash_recover;
          Alcotest.test_case "process crash/recover" `Quick
            process_crash_recover;
        ] );
      ( "crossval",
        List.map crossval_case Protocol_kind.all
        @ [ Alcotest.test_case "with payload" `Quick crossval_with_payload ] );
      ( "crossval-clients", List.map crossval_clients_case Protocol_kind.all );
      ( "crossval-chaos", List.map crossval_chaos_case Protocol_kind.all );
    ]
