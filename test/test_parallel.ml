open Bft_runtime
module Parallel = Bft_parallel.Parallel

let check = Alcotest.(check bool)

(* --- Parallel.map --------------------------------------------------------------- *)

let test_map_preserves_order () =
  let tasks = List.init 37 Fun.id in
  let f i = i * i in
  check "jobs=4 equals sequential map" true
    (Parallel.map ~jobs:4 f tasks = List.map f tasks)

let test_map_edge_shapes () =
  check "empty task list" true (Parallel.map ~jobs:8 Fun.id [] = []);
  check "more jobs than tasks" true
    (Parallel.map ~jobs:16 string_of_int [ 1; 2; 3 ] = [ "1"; "2"; "3" ]);
  check "jobs=1 stays sequential" true
    (Parallel.map ~jobs:1 succ [ 1; 2; 3 ] = [ 2; 3; 4 ])

let test_map_propagates_exception () =
  (* Two tasks fail; the re-raised exception must deterministically be the
     lowest-index one, whatever domain got there first. *)
  let boom i = Invalid_argument (Printf.sprintf "task %d" i) in
  let f i = if i = 2 || i = 5 then raise (boom i) else i in
  Alcotest.check_raises "lowest-index failure wins" (boom 2) (fun () ->
      ignore (Parallel.map ~jobs:4 f (List.init 8 Fun.id) : int list))

let test_cpu_count_positive () =
  check "cpu_count >= 1" true (Parallel.cpu_count () >= 1)

(* --- Determinism of parallel experiment sweeps ----------------------------------- *)

(* A miniature version of what bench/experiments.ml does: fan a grid of
   harness runs out over the pool, render each result to a table row on the
   coordinator.  The rendered table must be byte-identical whatever [jobs]
   is — that is the invariant that lets bench output be diffed across
   machines and job counts. *)
let render_grid ~jobs =
  let grid =
    List.concat_map
      (fun n -> List.map (fun seed -> (n, seed)) [ 1; 2 ])
      [ 4; 7 ]
  in
  let run (n, seed) =
    let config =
      { (Config.local Protocol_kind.Commit_moonshot ~n) with
        Config.seed;
        duration_ms = 2_000.;
      }
    in
    Harness.run config
  in
  let results = Parallel.map ~jobs run grid in
  let b = Buffer.create 256 in
  List.iter2
    (fun (n, seed) (r : Harness.run_result) ->
      Printf.bprintf b "n=%d seed=%d commits=%d lat=%.6f msgs=%d\n" n seed
        r.metrics.Metrics.committed_blocks r.metrics.Metrics.avg_latency_ms
        r.messages_sent)
    grid results;
  Buffer.contents b

let test_parallel_grid_deterministic () =
  let sequential = render_grid ~jobs:1 in
  let parallel = render_grid ~jobs:4 in
  check "grid output has content" true (String.length sequential > 0);
  Alcotest.(check string) "jobs=4 byte-identical to jobs=1" sequential parallel

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "order preserved" `Quick test_map_preserves_order;
          Alcotest.test_case "edge shapes" `Quick test_map_edge_shapes;
          Alcotest.test_case "exception propagation" `Quick
            test_map_propagates_exception;
          Alcotest.test_case "cpu count" `Quick test_cpu_count_positive;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "grid byte-identical across jobs" `Quick
            test_parallel_grid_deterministic;
        ] );
    ]
