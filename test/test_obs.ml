(* Observability tests: trace determinism (same seed, same bytes), span
   well-formedness (commits close proposals), zero-cost disabled sinks, and
   the per-view breakdown's phase ordering. *)

open Bft_types
open Bft_runtime
module Trace = Bft_obs.Trace
module Breakdown = Bft_obs.Breakdown

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* A small exact-hop network: a few dozen views in a fast run, with every
   phase boundary at a crisp multiple of the hop latency. *)
let cfg ?(protocol = Protocol_kind.Pipelined_moonshot) ?(seed = 1) () =
  {
    (Config.default protocol ~n:4) with
    Config.duration_ms = 300.;
    delta_ms = 50.;
    latency = Config.Uniform { base = 10.; jitter = 0. };
    bandwidth_bps = None;
    model_cpu = false;
    seed;
  }

let traced_run config =
  let trace = Trace.create () in
  let r = Harness.run ~trace config in
  (trace, r)

(* --- Determinism ------------------------------------------------------------------ *)

let test_same_seed_identical_jsonl () =
  let t1, _ = traced_run (cfg ()) in
  let t2, _ = traced_run (cfg ()) in
  check "trace is non-trivial" true (Trace.length t1 > 100);
  check_str "same seed, byte-identical JSONL" (Trace.to_jsonl t1)
    (Trace.to_jsonl t2)

let test_different_seed_differs () =
  (* Jitter makes the RNG matter; exact-hop runs are seed-independent. *)
  let with_jitter seed =
    { (cfg ~seed ()) with Config.latency = Config.Uniform { base = 10.; jitter = 5. } }
  in
  let t1, _ = traced_run (with_jitter 1) in
  let t2, _ = traced_run (with_jitter 2) in
  check "different seeds give different traces" true
    (Trace.to_jsonl t1 <> Trace.to_jsonl t2)

(* --- Span well-formedness ---------------------------------------------------------- *)

let test_commits_close_proposals () =
  List.iter
    (fun protocol ->
      let trace, _ = traced_run (cfg ~protocol ()) in
      let proposed = Hashtbl.create 64 in
      List.iter
        (fun (ev : Trace.event) ->
          match ev.Trace.kind with
          | Trace.Node_event (Probe.Proposal_sent { view; _ }) ->
              if not (Hashtbl.mem proposed view) then
                Hashtbl.add proposed view ev.Trace.time
          | Trace.Quorum_commit { view; _ } ->
              (match Hashtbl.find_opt proposed view with
              | None ->
                  Alcotest.failf "%s: view %d committed without a proposal"
                    (Protocol_kind.name protocol) view
              | Some t ->
                  check "commit is after its proposal" true
                    (ev.Trace.time >= t))
          | _ -> ())
        (Trace.events trace);
      check
        (Protocol_kind.name protocol ^ " commits something")
        true
        (List.exists
           (fun (ev : Trace.event) ->
             match ev.Trace.kind with Trace.Quorum_commit _ -> true | _ -> false)
           (Trace.events trace)))
    Protocol_kind.all

(* --- Disabled sink ------------------------------------------------------------------ *)

let test_disabled_sink_records_nothing () =
  let trace = Trace.disabled () in
  let r = Harness.run ~trace (cfg ()) in
  check_int "disabled sink stays empty" 0 (Trace.length trace);
  check "run still commits" true (r.Harness.metrics.Metrics.committed_blocks > 0)

let test_tracing_does_not_perturb_run () =
  let untraced = Harness.run (cfg ()) in
  let disabled = Trace.disabled () in
  let with_disabled = Harness.run ~trace:disabled (cfg ()) in
  let _, with_enabled = traced_run (cfg ()) in
  check_int "disabled trace matches untraced commits"
    untraced.Harness.metrics.Metrics.committed_blocks
    with_disabled.Harness.metrics.Metrics.committed_blocks;
  check_int "enabled trace matches untraced commits"
    untraced.Harness.metrics.Metrics.committed_blocks
    with_enabled.Harness.metrics.Metrics.committed_blocks;
  check_int "message counts identical" untraced.Harness.messages_sent
    with_enabled.Harness.messages_sent

(* --- Sink basics -------------------------------------------------------------------- *)

let test_sink_emit_and_clear () =
  let t = Trace.create () in
  check "fresh sink enabled" true (Trace.enabled t);
  Trace.emit t
    { Trace.time = 1.5; node = 0; kind = Trace.Committed { view = 1; height = 1 } };
  check_int "one event" 1 (Trace.length t);
  check_str "json shape" {|{"t":1.5,"node":0,"ev":"commit","view":1,"height":1}|}
    (Trace.event_to_json (List.hd (Trace.events t)));
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t);
  check "still enabled after clear" true (Trace.enabled t)

let test_jsonl_one_line_per_event () =
  let trace, _ = traced_run (cfg ()) in
  let lines =
    String.split_on_char '\n' (Trace.to_jsonl trace)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one JSON line per event" (Trace.length trace) (List.length lines);
  List.iter
    (fun l ->
      check "line is a JSON object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

(* --- Breakdown ---------------------------------------------------------------------- *)

let test_breakdown_phase_ordering () =
  List.iter
    (fun protocol ->
      let trace, _ = traced_run (cfg ~protocol ()) in
      let rows = Breakdown.rows (Trace.events trace) in
      check (Protocol_kind.name protocol ^ " has rows") true (rows <> []);
      (* No entered <= propose check: Moonshot's optimistic proposals are
         broadcast before any node enters the view. *)
      let ( <=? ) a b =
        match (a, b) with Some x, Some y -> x <= y | _ -> true
      in
      List.iter
        (fun (r : Breakdown.view_row) ->
          check "propose <= vote" true (r.Breakdown.propose_ms <=? r.Breakdown.first_vote_ms);
          check "vote <= cert" true (r.Breakdown.first_vote_ms <=? r.Breakdown.cert_ms);
          check "cert <= commit" true (r.Breakdown.cert_ms <=? r.Breakdown.commit_ms))
        rows;
      (* Rows are sorted and views distinct. *)
      let views = List.map (fun (r : Breakdown.view_row) -> r.Breakdown.view) rows in
      check "views sorted distinct" true
        (views = List.sort_uniq compare views))
    Protocol_kind.all

let test_breakdown_exact_hop_phases () =
  (* On an exact 10 ms network, Pipelined Moonshot's steady state is the
     paper's Figure 2: 10 ms block period, 30 ms proposal-to-commit. *)
  let trace, _ = traced_run (cfg ()) in
  let rows = Breakdown.rows (Trace.events trace) in
  let p = Breakdown.phases rows in
  (match p.Breakdown.block_period with
  | None -> Alcotest.fail "no block-period samples"
  | Some d ->
      check "block period = one hop" true (abs_float (d.Breakdown.p50 -. 10.) < 0.001));
  (match p.Breakdown.propose_to_commit with
  | None -> Alcotest.fail "no commit-latency samples"
  | Some d ->
      check "commit latency = three hops" true
        (abs_float (d.Breakdown.p50 -. 30.) < 0.001));
  (* Tables render without raising and cover every row. *)
  let _ = Breakdown.table rows in
  let _ = Breakdown.phase_table p in
  ()

let test_breakdown_counts_messages () =
  let trace, _ = traced_run (cfg ()) in
  let rows = Breakdown.rows (Trace.events trace) in
  check "every full view saw messages" true
    (List.for_all
       (fun (r : Breakdown.view_row) ->
         r.Breakdown.commit_ms = None || (r.Breakdown.msgs > 0 && r.Breakdown.bytes > 0))
       rows)

let () =
  Alcotest.run "obs"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed same bytes" `Quick
            test_same_seed_identical_jsonl;
          Alcotest.test_case "seeds differ" `Quick test_different_seed_differs;
        ] );
      ( "spans",
        [
          Alcotest.test_case "commits close proposals" `Quick
            test_commits_close_proposals;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "disabled sink empty" `Quick
            test_disabled_sink_records_nothing;
          Alcotest.test_case "tracing does not perturb" `Quick
            test_tracing_does_not_perturb_run;
        ] );
      ( "sink",
        [
          Alcotest.test_case "emit and clear" `Quick test_sink_emit_and_clear;
          Alcotest.test_case "jsonl lines" `Quick test_jsonl_one_line_per_event;
        ] );
      ( "breakdown",
        [
          Alcotest.test_case "phase ordering" `Quick test_breakdown_phase_ordering;
          Alcotest.test_case "exact-hop phases" `Quick
            test_breakdown_exact_hop_phases;
          Alcotest.test_case "message counts" `Quick test_breakdown_counts_messages;
        ] );
    ]
