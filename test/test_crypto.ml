open Bft_crypto

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Signature --------------------------------------------------------------- *)

let digest s = Bft_types.Hash.of_string s

let test_sign_verify () =
  let s = Signature.sign ~signer:3 (digest "block") in
  check "verifies for signer and digest" true
    (Signature.verify s ~signer:3 (digest "block"));
  check_int "reports signer" 3 (Signature.signer s)

let test_verify_rejects () =
  let s = Signature.sign ~signer:3 (digest "block") in
  check "wrong signer rejected" false (Signature.verify s ~signer:4 (digest "block"));
  check "wrong digest rejected" false (Signature.verify s ~signer:3 (digest "other"))

(* --- Signer set --------------------------------------------------------------- *)

let test_signer_set_basic () =
  let s = Signer_set.create ~n:10 in
  check_int "starts empty" 0 (Signer_set.count s);
  check "first add is new" true (Signer_set.add s 3);
  check "second add is duplicate" false (Signer_set.add s 3);
  check_int "count ignores duplicates" 1 (Signer_set.count s);
  check "mem added" true (Signer_set.mem s 3);
  check "not mem others" false (Signer_set.mem s 4)

let test_signer_set_bounds () =
  let s = Signer_set.create ~n:8 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Signer_set: signer out of range") (fun () ->
      ignore (Signer_set.add s 8));
  Alcotest.check_raises "negative"
    (Invalid_argument "Signer_set: signer out of range") (fun () ->
      ignore (Signer_set.add s (-1)))

let test_signer_set_full_and_list () =
  let n = 67 in
  let s = Signer_set.create ~n in
  for i = 0 to n - 1 do
    ignore (Signer_set.add s i)
  done;
  check_int "all added" n (Signer_set.count s);
  check "list is sorted identity" true
    (Signer_set.to_list s = List.init n (fun i -> i))

let test_signer_set_copy_independent () =
  let s = Signer_set.create ~n:4 in
  ignore (Signer_set.add s 0);
  let c = Signer_set.copy s in
  ignore (Signer_set.add c 1);
  check_int "original unchanged" 1 (Signer_set.count s);
  check_int "copy advanced" 2 (Signer_set.count c)

(* --- Accumulator ---------------------------------------------------------------- *)

let test_accumulator_threshold_fires_once () =
  let acc = Accumulator.create ~n:4 ~threshold:3 in
  let key = "k" in
  check "1st added" true (Accumulator.add acc key ~signer:0 = Accumulator.Added 1);
  check "2nd added" true (Accumulator.add acc key ~signer:1 = Accumulator.Added 2);
  (match Accumulator.add acc key ~signer:2 with
  | Accumulator.Threshold_reached signers ->
      check "carries the three signers" true
        (Signer_set.to_list signers = [ 0; 1; 2 ])
  | _ -> Alcotest.fail "expected threshold");
  check "4th is past quorum" true
    (Accumulator.add acc key ~signer:3 = Accumulator.Already_complete);
  check "complete" true (Accumulator.is_complete acc key)

let test_accumulator_dedup () =
  let acc = Accumulator.create ~n:4 ~threshold:3 in
  ignore (Accumulator.add acc "k" ~signer:0);
  check "same signer is duplicate" true
    (Accumulator.add acc "k" ~signer:0 = Accumulator.Duplicate);
  check_int "count unchanged" 1 (Accumulator.count acc "k")

let test_accumulator_keys_independent () =
  let acc = Accumulator.create ~n:4 ~threshold:2 in
  ignore (Accumulator.add acc "a" ~signer:0);
  ignore (Accumulator.add acc "b" ~signer:1);
  check_int "a has one" 1 (Accumulator.count acc "a");
  check_int "b has one" 1 (Accumulator.count acc "b");
  check "neither complete" true
    ((not (Accumulator.is_complete acc "a")) && not (Accumulator.is_complete acc "b"))

let test_accumulator_threshold_one () =
  let acc = Accumulator.create ~n:4 ~threshold:1 in
  (match Accumulator.add acc 42 ~signer:2 with
  | Accumulator.Threshold_reached signers
    when Signer_set.to_list signers = [ 2 ] ->
      ()
  | _ -> Alcotest.fail "single-signer threshold should fire immediately");
  check "bad threshold rejected" true
    (try
       ignore (Accumulator.create ~n:4 ~threshold:0);
       false
     with Invalid_argument _ -> true)

let test_accumulator_quorum_semantics () =
  (* A 2f+1 threshold over n = 3f+1 signers cannot be met by f Byzantine
     plus f honest contributions. *)
  let n = 10 in
  let f = 3 in
  let acc = Accumulator.create ~n ~threshold:((2 * f) + 1) in
  for i = 0 to (2 * f) - 1 do
    match Accumulator.add acc () ~signer:i with
    | Accumulator.Added _ -> ()
    | _ -> Alcotest.fail "should still be accumulating"
  done;
  check "one short of quorum" false (Accumulator.is_complete acc ())


let test_accumulator_unreachable_threshold () =
  (* Threshold above n can never fire, no matter how many contribute. *)
  let acc = Accumulator.create ~n:4 ~threshold:5 in
  for signer = 0 to 3 do
    (match Accumulator.add acc () ~signer with
    | Accumulator.Threshold_reached _ -> Alcotest.fail "fired impossibly"
    | _ -> ())
  done;
  check "never complete" false (Accumulator.is_complete acc ())

(* --- certificate quorum formation (property) --------------------------------- *)

(* Random vote multisets with duplicate and conflicting signers folded into a
   fresh aggregation core: a certificate must be returned exactly when a
   (kind, block) key's distinct-signer count first reaches the quorum, carry
   that count, and never fire again — and a duplicate vote must never
   displace or mask a distinct signer.  The fold below is the reference
   model: per-key distinct-signer sets, nothing else. *)
let prop_cert_quorum_formation =
  let open Moonshot in
  let block_of = function
    | `A ->
        Test_support.Builders.block ~view:1 ~payload_id:1
          ~parent:Bft_types.Block.genesis ()
    | `B ->
        (* Same view, different payload: the conflicting (equivocating)
           twin; it accumulates in its own key. *)
        Test_support.Builders.block ~view:1 ~payload_id:2
          ~parent:Bft_types.Block.genesis ()
  in
  let vote_gen =
    QCheck.Gen.(
      list_size (int_range 0 24)
        (triple (int_range 0 3) (oneofl [ `A; `B ])
           (oneofl [ Vote_kind.Normal; Vote_kind.Opt ])))
  in
  let print_votes votes =
    String.concat "; "
      (List.map
         (fun (s, c, k) ->
           Printf.sprintf "%d:%s:%s" s
             (match c with `A -> "A" | `B -> "B")
             (match k with Vote_kind.Normal -> "n" | _ -> "o"))
         votes)
  in
  QCheck.Test.make ~count:300
    ~name:"certificate forms exactly at quorum under duplicate/conflicting signers"
    (QCheck.make ~print:print_votes vote_gen)
    (fun votes ->
      let _mock, env = Test_support.Mock_env.create ~n:4 ~id:0 () in
      let core = Node_core.create env in
      let quorum = 3 in
      let seen : (int * int, int list) Hashtbl.t = Hashtbl.create 8 in
      List.for_all
        (fun (signer, choice, kind) ->
          let block = block_of choice in
          let key =
            (Vote_kind.to_tag kind, match choice with `A -> 0 | `B -> 1)
          in
          let signers = Option.value ~default:[] (Hashtbl.find_opt seen key) in
          let fresh = not (List.mem signer signers) in
          if fresh then Hashtbl.replace seen key (signer :: signers);
          let fires = fresh && List.length signers + 1 = quorum in
          match Node_core.add_vote core ~signer ~kind block with
          | Some cert ->
              fires && cert.Cert.view = 1
              && cert.Cert.signers = quorum
              && cert.Cert.kind = kind
              && Bft_types.Block.equal cert.Cert.block block
          | None -> not fires)
        votes)

let () =
  Alcotest.run "crypto"
    [
      ( "signature",
        [
          Alcotest.test_case "sign/verify" `Quick test_sign_verify;
          Alcotest.test_case "rejects forgery" `Quick test_verify_rejects;
        ] );
      ( "signer-set",
        [
          Alcotest.test_case "basics" `Quick test_signer_set_basic;
          Alcotest.test_case "bounds" `Quick test_signer_set_bounds;
          Alcotest.test_case "full set + listing" `Quick test_signer_set_full_and_list;
          Alcotest.test_case "copy independence" `Quick test_signer_set_copy_independent;
        ] );
      ( "accumulator",
        [
          Alcotest.test_case "threshold fires once" `Quick
            test_accumulator_threshold_fires_once;
          Alcotest.test_case "dedup" `Quick test_accumulator_dedup;
          Alcotest.test_case "independent keys" `Quick test_accumulator_keys_independent;
          Alcotest.test_case "threshold one" `Quick test_accumulator_threshold_one;
          Alcotest.test_case "quorum semantics" `Quick test_accumulator_quorum_semantics;
          Alcotest.test_case "unreachable threshold" `Quick
            test_accumulator_unreachable_threshold;
        ] );
      ( "cert-quorum",
        [ QCheck_alcotest.to_alcotest prop_cert_quorum_formation ] );
    ]
