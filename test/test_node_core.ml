(* Unit tests for the machinery shared by every node implementation:
   vote aggregation, certificate tables, the generalized k-chain commit rule
   and deferred commits. *)

open Bft_types
open Moonshot
module B = Test_support.Builders
module Mock = Test_support.Mock_env

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let chain = B.chain 6
let blk v = List.nth chain (v - 1)
let cert_of v = B.cert (blk v)

let make () =
  let _mock, env = Mock.create ~n:4 ~id:0 () in
  Node_core.create env

let test_genesis_preloaded () =
  let core = make () in
  check_int "genesis cert on file" 1 (List.length (Node_core.certs_at core 0));
  check_int "high cert is genesis" 0 (Node_core.high_cert core).Cert.view

let test_add_vote_quorum () =
  let core = make () in
  check "two votes no cert" true
    (Node_core.add_vote core ~signer:0 ~kind:Vote_kind.Normal (blk 1) = None
    && Node_core.add_vote core ~signer:1 ~kind:Vote_kind.Normal (blk 1) = None);
  (match Node_core.add_vote core ~signer:2 ~kind:Vote_kind.Normal (blk 1) with
  | Some cert ->
      check_int "cert view" 1 cert.Cert.view;
      check_int "three signers" 3 cert.Cert.signers
  | None -> Alcotest.fail "third vote should complete the certificate");
  check "fourth vote does not re-fire" true
    (Node_core.add_vote core ~signer:3 ~kind:Vote_kind.Normal (blk 1) = None)

let test_add_vote_dedup_and_kinds () =
  let core = make () in
  ignore (Node_core.add_vote core ~signer:0 ~kind:Vote_kind.Normal (blk 1));
  check "duplicate signer ignored" true
    (Node_core.add_vote core ~signer:0 ~kind:Vote_kind.Normal (blk 1) = None);
  (* Opt votes accumulate separately: two opts + two normals never certify. *)
  ignore (Node_core.add_vote core ~signer:1 ~kind:Vote_kind.Opt (blk 1));
  ignore (Node_core.add_vote core ~signer:2 ~kind:Vote_kind.Opt (blk 1));
  check "kinds kept apart" true
    (Node_core.add_vote core ~signer:1 ~kind:Vote_kind.Normal (blk 1) = None)

let test_record_cert_and_high () =
  let core = make () in
  check "new cert recorded" true (Node_core.record_cert core (cert_of 2));
  check "duplicate rejected" false (Node_core.record_cert core (cert_of 2));
  check_int "high cert tracks" 2 (Node_core.high_cert core).Cert.view;
  ignore (Node_core.record_cert core (cert_of 1));
  check_int "lower cert does not lower high" 2 (Node_core.high_cert core).Cert.view

let test_same_view_different_kind_both_recorded () =
  let core = make () in
  ignore (Node_core.record_cert core (B.cert ~kind:Vote_kind.Opt (blk 2)));
  ignore (Node_core.record_cert core (B.cert ~kind:Vote_kind.Normal (blk 2)));
  check_int "both kinds filed" 2 (List.length (Node_core.certs_at core 2))

let test_chain_commits_depth2 () =
  let core = make () in
  ignore (Node_core.record_cert core (cert_of 1));
  let commits = ref [] in
  ignore (Node_core.record_cert core (cert_of 2));
  commits := Node_core.chain_commits core ~depth:2 (cert_of 2);
  check "consecutive pair commits the parent" true
    (match !commits with [ b ] -> Block.equal b (blk 1) | _ -> false)

let test_chain_commits_depth2_reverse_arrival () =
  (* The older certificate arrives last: the rule still fires. *)
  let core = make () in
  ignore (Node_core.record_cert core (cert_of 2));
  ignore (Node_core.record_cert core (cert_of 1));
  let commits = Node_core.chain_commits core ~depth:2 (cert_of 1) in
  (* The (0,1) window also "commits" genesis — a no-op downstream. *)
  check "works from the other side" true
    (List.exists (Block.equal (blk 1)) commits)

let test_chain_commits_depth3 () =
  let core = make () in
  ignore (Node_core.record_cert core (cert_of 1));
  ignore (Node_core.record_cert core (cert_of 2));
  check "two certs above genesis are not enough at depth 3" true
    (not
       (List.exists
          (Block.equal (blk 1))
          (Node_core.chain_commits core ~depth:3 (cert_of 2))));
  ignore (Node_core.record_cert core (cert_of 3));
  let commits = Node_core.chain_commits core ~depth:3 (cert_of 3) in
  check "three-chain commits the base" true
    (List.exists (fun b -> Block.equal b (blk 1)) commits)

let test_chain_commits_gap_blocks () =
  let core = make () in
  ignore (Node_core.record_cert core (cert_of 1));
  ignore (Node_core.record_cert core (cert_of 3));
  check "view gap yields nothing" true
    (Node_core.chain_commits core ~depth:2 (cert_of 3) = [])

let test_chain_commits_fork_blocks () =
  (* Consecutive views but no parent link: a fork off view 1's sibling. *)
  let core = make () in
  let fork2 = B.block ~view:2 ~payload_id:99 ~parent:Block.genesis () in
  ignore (Node_core.record_cert core (cert_of 1));
  ignore (Node_core.record_cert core (B.cert fork2));
  check "parent link required" true
    (Node_core.chain_commits core ~depth:2 (B.cert fork2) = [])

let test_chain_commits_depth_validation () =
  let core = make () in
  check "depth 1 rejected" true
    (try
       ignore (Node_core.chain_commits core ~depth:1 (cert_of 1));
       false
     with Invalid_argument _ -> true)

let test_depth3_implies_depth2 () =
  (* Everything the 3-chain rule ever commits, the 2-chain rule commits too
     (3-chain is strictly more conservative), comparing the unions over all
     recorded certificates. *)
  let core = make () in
  List.iter (fun v -> ignore (Node_core.record_cert core (cert_of v))) [ 1; 2; 3; 4 ];
  let union depth =
    List.concat_map
      (fun v -> Node_core.chain_commits core ~depth (cert_of v))
      [ 1; 2; 3; 4 ]
  in
  let two = union 2 in
  List.iter
    (fun b3 ->
      check "3-chain commit is a 2-chain commit" true
        (List.exists (Block.equal b3) two))
    (union 3)

let test_deferred_commit_until_ancestors () =
  let mock, env = Mock.create ~n:4 ~id:0 () in
  let core = Node_core.create env in
  (* Commit block 3 while blocks 1 and 2 are unknown: deferred. *)
  Node_core.note_block core (blk 3);
  Node_core.commit core (blk 3);
  check_int "nothing committed yet" 0 (Node_core.committed core);
  Node_core.note_block core (blk 1);
  check_int "still waiting for block 2" 0 (Node_core.committed core);
  Node_core.note_block core (blk 2);
  check_int "completes once connected" 3 (Node_core.committed core);
  check "commit callbacks ran in order" true
    (List.map (fun (b : Block.t) -> b.Block.height) (Mock.committed mock)
    = [ 1; 2; 3 ])

let test_commit_idempotent () =
  let core = make () in
  Node_core.note_block core (blk 1);
  Node_core.commit core (blk 1);
  Node_core.commit core (blk 1);
  check_int "once" 1 (Node_core.committed core)


(* --- chain segments (synchronizer supply side) ------------------------------- *)

let test_chain_segment () =
  let core = make () in
  List.iter (fun v -> Node_core.note_block core (blk v)) [ 1; 2; 3; 4 ];
  let seg = Node_core.chain_segment core (blk 3).Block.hash ~max:10 in
  check "oldest first, genesis included" true
    (List.map (fun (b : Block.t) -> b.Block.height) seg = [ 0; 1; 2; 3 ]);
  let capped = Node_core.chain_segment core (blk 4).Block.hash ~max:2 in
  check "max caps the segment" true
    (List.map (fun (b : Block.t) -> b.Block.height) capped = [ 3; 4 ]);
  check "unknown hash yields nothing" true
    (Node_core.chain_segment core (Hash.of_string "nope") ~max:4 = [])

let test_first_missing () =
  let core = make () in
  check "nothing deferred, nothing missing" true
    (Node_core.first_missing core = None);
  Node_core.note_block core (blk 3);
  Node_core.commit core (blk 3);
  (match Node_core.first_missing core with
  | Some (h, hint) ->
      check "missing hash is block 2's" true (Hash.equal h (blk 2).Block.hash);
      check_int "hint is the child's proposer" (blk 3).Block.proposer hint
  | None -> Alcotest.fail "expected a missing ancestor");
  Node_core.note_block core (blk 2);
  (match Node_core.first_missing core with
  | Some (h, _) -> check "walks deeper" true (Hash.equal h (blk 1).Block.hash)
  | None -> Alcotest.fail "block 1 still missing");
  Node_core.note_block core (blk 1);
  check "resolved" true (Node_core.first_missing core = None)


(* --- Synchronizer policy -------------------------------------------------------- *)

let test_sync_retry_rotates_targets () =
  (* The first request goes to the hinted proposer; if the gap persists the
     retry timer rotates to other peers (the hint may be Byzantine). *)
  let mock, env = Mock.create ~n:4 ~id:0 ~delta:100. () in
  let core = Node_core.create env in
  let sync =
    Sync.create ~core ~env
      ~make_request:(fun hash -> Message.Block_request { hash })
      ~make_response:(fun blocks -> Message.Blocks_response { blocks })
  in
  (* Defer a commit on block 3 (blocks 1-2 missing; hint = blk 3's proposer,
     node 2). *)
  Node_core.note_block core (blk 3);
  Node_core.commit core (blk 3);
  Sync.poke sync;
  check_int "one request so far" 1 (Sync.requests_sent sync);
  (* The retry timer fires after delta; still missing, so it re-requests
     from the next peer. *)
  Mock.advance mock ~to_:150.;
  check "retried" true (Sync.requests_sent sync >= 2);
  let targets =
    List.filter_map
      (function dst, Message.Block_request _ -> Some dst | _ -> None)
      (Mock.unicasts mock)
  in
  check "requests avoid self" true (List.for_all (fun d -> d <> 0) targets);
  check "first went to the hinted proposer" true
    (match targets with first :: _ -> first = (blk 3).Block.proposer | [] -> false);
  check "targets rotate on retry" true
    (List.length (List.sort_uniq compare targets) >= 2);
  (* Once the gap closes, no more requests. *)
  Node_core.note_block core (blk 1);
  Node_core.note_block core (blk 2);
  let before = Sync.requests_sent sync in
  Mock.advance mock ~to_:600.;
  check_int "quiet after resolution" before (Sync.requests_sent sync)

let make_sync ~id () =
  let mock, env = Mock.create ~n:4 ~id ~delta:100. () in
  let core = Node_core.create env in
  let sync =
    Sync.create ~core ~env
      ~make_request:(fun hash -> Message.Block_request { hash })
      ~make_response:(fun blocks -> Message.Blocks_response { blocks })
  in
  (mock, core, sync)

let test_sync_truncated_helper_store () =
  (* A helper that lacks the requested block stays silent; one whose store is
     truncated below it serves just the suffix it holds, which narrows the
     requester's gap and redirects it at the deeper missing ancestor. *)
  let helper_mock, helper_core, helper_sync = make_sync ~id:1 () in
  Sync.handle_request helper_sync ~src:3 (blk 2).Block.hash;
  check_int "unknown hash: no response" 0 (List.length (Mock.sent helper_mock));
  Node_core.note_block helper_core (blk 3);
  Node_core.note_block helper_core (blk 4);
  Sync.handle_request helper_sync ~src:3 (blk 4).Block.hash;
  (match Mock.sent helper_mock with
  | [ Mock.Unicast (3, Message.Blocks_response { blocks }) ] ->
      check "serves only the held suffix, oldest first" true
        (List.map (fun (b : Block.t) -> b.Block.view) blocks = [ 3; 4 ])
  | _ -> Alcotest.fail "expected one Blocks_response to the requester");
  let _mock, core, sync = make_sync ~id:3 () in
  Node_core.note_block core (blk 5);
  Node_core.commit core (blk 5);
  Sync.poke sync;
  check_int "asked once" 1 (Sync.requests_sent sync);
  Sync.handle_response sync [ blk 3; blk 4 ];
  check "partial batch leaves the commit deferred" true
    (Node_core.has_deferred core);
  check_int "re-asked immediately for the deeper gap" 2
    (Sync.requests_sent sync);
  check_int "nothing committed yet" 0 (Node_core.committed core)

let test_sync_duplicate_responses () =
  (* Responses carry no request ids, so retries can produce duplicate and
     overlapping batches; ingestion must be idempotent. *)
  let _mock, core, sync = make_sync ~id:3 () in
  Node_core.note_block core (blk 5);
  Node_core.commit core (blk 5);
  Sync.poke sync;
  let batch = [ blk 1; blk 2; blk 3; blk 4 ] in
  Sync.handle_response sync batch;
  check_int "deferred commit completed" 5 (Node_core.committed core);
  check "gap closed" false (Node_core.has_deferred core);
  let asked = Sync.requests_sent sync in
  Sync.handle_response sync batch;
  Sync.handle_response sync [ blk 2; blk 3 ];
  check_int "duplicate batches commit nothing further" 5
    (Node_core.committed core);
  check_int "and trigger no new requests" asked (Sync.requests_sent sync)

let test_sync_response_after_advance () =
  (* A slow helper's response can land after the requester already filled
     the gap from someone else (or never asked at all): it must be a no-op,
     and the synchronizer must settle back to its quiescent state. *)
  let mock, core, sync = make_sync ~id:3 () in
  Node_core.note_block core (blk 5);
  Node_core.commit core (blk 5);
  Sync.poke sync;
  Sync.handle_response sync [ blk 1; blk 2; blk 3; blk 4 ];
  check_int "committed through the tip" 5 (Node_core.committed core);
  (* The stale retransmission arrives well after resolution. *)
  Mock.advance mock ~to_:500.;
  let asked = Sync.requests_sent sync in
  Sync.handle_response sync [ blk 1; blk 2 ];
  check_int "late batch commits nothing" 5 (Node_core.committed core);
  check_int "and asks for nothing" asked (Sync.requests_sent sync);
  (* Control state is indistinguishable from a fresh synchronizer once the
     retry timer has lapsed (the model checker relies on this digest). *)
  let _, _, fresh = make_sync ~id:3 () in
  check "digest settles to the fresh state" true
    (Bft_types.Hash.equal (Sync.state_hash sync) (Sync.state_hash fresh))

let () =
  Alcotest.run "node-core"
    [
      ( "votes",
        [
          Alcotest.test_case "genesis preloaded" `Quick test_genesis_preloaded;
          Alcotest.test_case "quorum" `Quick test_add_vote_quorum;
          Alcotest.test_case "dedup + kinds" `Quick test_add_vote_dedup_and_kinds;
        ] );
      ( "certs",
        [
          Alcotest.test_case "record + high" `Quick test_record_cert_and_high;
          Alcotest.test_case "kinds coexist" `Quick
            test_same_view_different_kind_both_recorded;
        ] );
      ( "chain-commits",
        [
          Alcotest.test_case "depth 2" `Quick test_chain_commits_depth2;
          Alcotest.test_case "reverse arrival" `Quick
            test_chain_commits_depth2_reverse_arrival;
          Alcotest.test_case "depth 3" `Quick test_chain_commits_depth3;
          Alcotest.test_case "gaps" `Quick test_chain_commits_gap_blocks;
          Alcotest.test_case "forks" `Quick test_chain_commits_fork_blocks;
          Alcotest.test_case "depth validation" `Quick test_chain_commits_depth_validation;
          Alcotest.test_case "3-chain implies 2-chain" `Quick test_depth3_implies_depth2;
        ] );
      ( "sync-hooks",
        [
          Alcotest.test_case "chain segment" `Quick test_chain_segment;
          Alcotest.test_case "first missing" `Quick test_first_missing;
          Alcotest.test_case "retry rotation" `Quick test_sync_retry_rotates_targets;
          Alcotest.test_case "truncated helper store" `Quick
            test_sync_truncated_helper_store;
          Alcotest.test_case "duplicate responses" `Quick
            test_sync_duplicate_responses;
          Alcotest.test_case "response after advance" `Quick
            test_sync_response_after_advance;
        ] );
      ( "commits",
        [
          Alcotest.test_case "deferred until ancestors" `Quick
            test_deferred_commit_until_ancestors;
          Alcotest.test_case "idempotent" `Quick test_commit_idempotent;
        ] );
    ]
