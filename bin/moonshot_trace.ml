(* Structured run tracer: run any protocol on a configurable simulated
   network with tracing enabled, then render the run as a per-view latency
   breakdown (where each view's milliseconds went: proposal -> vote ->
   certificate -> quorum commit), a phase percentile summary, and
   optionally a raw delivery timeline or a JSONL trace file.

     dune exec bin/moonshot_trace.exe -- --protocol pipelined
     dune exec bin/moonshot_trace.exe -- -p jolteon -n 10 --duration 5
     dune exec bin/moonshot_trace.exe -- -p PM --timeline --horizon 65
     dune exec bin/moonshot_trace.exe -- -p CM --jsonl trace.jsonl

   The default network mirrors the old hard-coded demo: every message
   takes exactly --hop ms (10 by default), so the Figure 2 story is
   directly visible — optimistic proposals for view v+1 overlap votes for
   view v, block period = 1 hop, commit latency = 3 hops.  Pass --wan to
   use the paper's AWS latency matrix instead. *)

open Cmdliner
open Bft_runtime

let protocol_conv =
  let parse s =
    match Protocol_kind.of_name s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown protocol %S (expected simple, pipelined, commit, \
                jolteon, hotstuff or SM/PM/CM/J/HS)"
               s))
  in
  let print ppf p = Format.pp_print_string ppf (Protocol_kind.name p) in
  Arg.conv (parse, print)

let protocol =
  Arg.(
    value
    & opt protocol_conv Protocol_kind.Pipelined_moonshot
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:
          "Protocol to trace: simple, pipelined, commit, jolteon or hotstuff.")

let nodes =
  Arg.(value & opt int 4 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Network size.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let duration =
  Arg.(
    value & opt float 1.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated run length.")

let delta =
  Arg.(
    value & opt float 50.
    & info [ "delta" ] ~docv:"MS" ~doc:"Message-delay bound Delta, ms.")

let payload =
  Arg.(
    value & opt int 0
    & info [ "payload" ] ~docv:"BYTES" ~doc:"Block payload size in bytes.")

let hop =
  Arg.(
    value & opt float 10.
    & info [ "hop" ] ~docv:"MS"
        ~doc:
          "Exact one-way latency of every message (uniform, zero jitter). \
           Ignored with $(b,--wan).")

let wan =
  Arg.(
    value & flag
    & info [ "wan" ]
        ~doc:
          "Use the paper's AWS WAN latency matrix and bandwidth model \
           instead of a uniform $(b,--hop) network.")

let timeline =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:
          "Print every trace event as a timeline line instead of the \
           per-view tables.")

let jsonl =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE"
        ~doc:
          "Write the full trace as JSON Lines to $(docv) ($(b,-) for \
           stdout).  Deterministic: same config and seed, same bytes.")

let trace_run protocol n seed duration delta payload hop wan timeline jsonl =
  let latency, bandwidth, model_cpu =
    if wan then (Config.Wan, Some Bft_workload.Regions.bandwidth_bps, true)
    else (Config.Uniform { base = hop; jitter = 0. }, None, false)
  in
  let cfg =
    {
      (Config.default protocol ~n) with
      Config.payload_bytes = payload;
      duration_ms = duration *. 1000.;
      delta_ms = delta;
      seed;
      latency;
      bandwidth_bps = bandwidth;
      model_cpu;
    }
  in
  let trace = Bft_obs.Trace.create () in
  let r = Harness.run ~trace cfg in
  let m = r.Harness.metrics in
  (match jsonl with
  | None -> ()
  | Some "-" -> Bft_obs.Trace.output stdout trace
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Bft_obs.Trace.output oc trace);
      Format.printf "wrote %d events to %s@." (Bft_obs.Trace.length trace)
        file);
  if jsonl <> Some "-" then begin
    Format.printf "config : %a@." Config.pp cfg;
    (if not wan then
       Format.printf
         "network: every message exactly %.0f ms (block period = 1 hop, \
          commit = propose + 3 hops)@."
         hop);
    Format.printf "result : %d blocks committed, %.1f ms avg latency, %d \
                   trace events@.@."
      m.Metrics.committed_blocks m.Metrics.avg_latency_ms
      (Bft_obs.Trace.length trace);
    if timeline then
      List.iter
        (fun ev -> Format.printf "%a@." Bft_obs.Trace.pp_event ev)
        (Bft_obs.Trace.events trace)
    else begin
      let rows = Bft_obs.Breakdown.rows (Bft_obs.Trace.events trace) in
      Format.printf "Per-view breakdown (times in simulated ms):@.";
      Bft_stats.Table.print Format.std_formatter
        (Bft_obs.Breakdown.table rows);
      Format.printf "@.Phase summary:@.";
      Bft_stats.Table.print Format.std_formatter
        (Bft_obs.Breakdown.phase_table (Bft_obs.Breakdown.phases rows))
    end
  end

let () =
  Bft_parallel.Parallel.tune_gc ();
  let term =
    Term.(
      const trace_run $ protocol $ nodes $ seed $ duration $ delta $ payload
      $ hop $ wan $ timeline $ jsonl)
  in
  let info =
    Cmd.info "moonshot_trace" ~version:"1.0.0"
      ~doc:
        "Trace a simulated run of a chain-based BFT protocol and break down \
         per-view latency"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Runs the chosen protocol with structured tracing enabled and \
             renders where each view's time went: first proposal, first \
             vote, first certificate assembly, quorum commit, plus per-view \
             message and byte counts.  The default network delivers every \
             message in exactly one hop, which makes the paper's Figure 2 \
             story directly observable: Moonshot's optimistic proposals \
             give a block period of one hop and a commit latency of three.";
        ]
  in
  exit (Cmd.eval (Cmd.v info term))
