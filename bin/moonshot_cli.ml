(* Command-line front end: run any of the five protocols on a configurable
   simulated network — or on a real localhost TCP cluster — and print the
   paper's metrics.

     dune exec bin/moonshot_cli.exe -- run --protocol CM -n 50 --payload 18000
     dune exec bin/moonshot_cli.exe -- run -p J --schedule WJ --faults 13 -n 40
     dune exec bin/moonshot_cli.exe -- run-net -p CM -n 4 --blocks 50
     dune exec bin/moonshot_cli.exe -- crossval -p PM --blocks 10
     dune exec bin/moonshot_cli.exe -- table1
*)

open Cmdliner
open Bft_runtime

let protocol_conv =
  let parse s =
    match Protocol_kind.of_name s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown protocol %S (expected SM, PM, CM, J, HS or long names)"
               s))
  in
  let print ppf p = Format.pp_print_string ppf (Protocol_kind.name p) in
  Arg.conv (parse, print)

let schedule_conv =
  let parse s =
    match Bft_workload.Schedules.of_name s with
    | Some x -> Ok x
    | None -> Error (`Msg (Printf.sprintf "unknown schedule %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Bft_workload.Schedules.name s) in
  Arg.conv (parse, print)

let protocol =
  Arg.(
    value
    & opt protocol_conv Protocol_kind.Commit_moonshot
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:
          "Protocol to run: SM (simple-moonshot), PM (pipelined-moonshot), \
           CM (commit-moonshot), J (jolteon) or HS (hotstuff).")

let nodes ~default =
  Arg.(
    value & opt int default
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Network size.")

let payload =
  Arg.(
    value & opt int 0
    & info [ "payload" ] ~docv:"BYTES" ~doc:"Block payload size in bytes.")

let duration =
  Arg.(
    value & opt float 30.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated run length.")

let faults =
  Arg.(
    value & opt int 0
    & info [ "f"; "faults" ] ~docv:"F"
        ~doc:"Number of silent Byzantine nodes (at most (n-1)/3).")

let schedule =
  Arg.(
    value
    & opt schedule_conv Bft_workload.Schedules.Round_robin
    & info [ "schedule" ] ~docv:"SCHED"
        ~doc:"Leader schedule: round-robin, B, WM or WJ.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let gst =
  Arg.(
    value & opt float 0.
    & info [ "gst" ] ~docv:"SECONDS"
        ~doc:"Global stabilization time; before it, messages may be delayed \
              adversarially.")

let uniform_latency =
  Arg.(
    value
    & opt (some (pair ~sep:',' float float)) None
    & info [ "uniform-latency" ] ~docv:"BASE,JITTER"
        ~doc:
          "Replace the AWS WAN latency matrix with a uniform one-way latency \
           of BASE + U[0,JITTER) ms.")

let verbose =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Log per-run details to stderr.")

(* Client-traffic spec shared by [run] and [run-net]: [--clients N] turns
   the mode on, the rest refine the default spec. *)
let clients_spec =
  let clients =
    Arg.(
      value
      & opt (some int) None
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Enable client-traffic mode: N open-loop clients submit \
             commands into a sharded mempool and leaders cut blocks from \
             lane batches instead of the parametric $(b,--payload).  The \
             run then reports client-perceived end-to-end latency \
             (submit to quorum commit) and backpressure counters.")
  in
  let rate =
    Arg.(
      value & opt float 5000.
      & info [ "client-rate" ] ~docv:"PER_S"
          ~doc:
            "Aggregate client submission rate, commands per second (used \
             by the $(b,wall) ingest clock).")
  in
  let lanes =
    Arg.(
      value & opt int 8
      & info [ "lanes" ] ~docv:"K" ~doc:"Number of independent mempool lanes.")
  in
  let lane_cap =
    Arg.(
      value & opt int 4096
      & info [ "lane-capacity" ] ~docv:"C"
          ~doc:"Commands a lane holds before overflow spills to its backlog.")
  in
  let max_batch =
    Arg.(
      value & opt int 512
      & info [ "max-batch" ] ~docv:"B"
          ~doc:"Commands a single block may draw from the mempool.")
  in
  let per_view =
    Arg.(
      value & opt int 64
      & info [ "per-view" ] ~docv:"C"
          ~doc:
            "Arrivals per view under the $(b,views) ingest clock (ignored \
             by $(b,wall)).")
  in
  let clock =
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("wall", Bft_mempool.Spec.Wall); ("views", Bft_mempool.Spec.Views);
             ])
          Bft_mempool.Spec.Wall
      & info [ "ingest-clock" ] ~docv:"CLOCK"
          ~doc:
            "How arrival watermarks are read: $(b,wall) paces arrivals on \
             the substrate clock at $(b,--client-rate) (the latency \
             benchmarking mode); $(b,views) admits $(b,--per-view) \
             commands per view number, making the cut a pure function of \
             the view so simulator and socket runs commit identical \
             chains (the cross-validation mode).")
  in
  let make clients rate lanes lane_cap max_batch per_view clock =
    Option.map
      (fun n ->
        {
          Bft_mempool.Spec.default with
          Bft_mempool.Spec.clients = n;
          rate_per_s = rate;
          lanes;
          lane_capacity = lane_cap;
          max_batch;
          per_view;
          clock;
        })
      clients
  in
  Term.(
    const make $ clients $ rate $ lanes $ lane_cap $ max_batch $ per_view
    $ clock)

let setup_logs verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end

let run_cmd =
  let run verbose protocol n payload duration delta faults schedule seed gst
      uniform_latency clients =
    setup_logs verbose;
    let latency, bandwidth =
      match uniform_latency with
      | Some (base, jitter) -> (Config.Uniform { base; jitter }, None)
      | None -> (Config.Wan, Some Bft_workload.Regions.bandwidth_bps)
    in
    let cfg =
      {
        (Config.default protocol ~n) with
        Config.payload_bytes = payload;
        duration_ms = duration *. 1000.;
        delta_ms = delta;
        f_actual = faults;
        schedule;
        seed;
        gst_ms = gst *. 1000.;
        pre_gst_extra_ms = (if gst > 0. then 4. *. delta else 0.);
        latency;
        bandwidth_bps = bandwidth;
        clients;
      }
    in
    let r = Harness.run cfg in
    let m = r.Harness.metrics in
    Format.printf "config          : %a@." Config.pp cfg;
    Format.printf "blocks committed: %d (%.2f blocks/s)@."
      m.Metrics.committed_blocks m.Metrics.blocks_per_sec;
    Format.printf "avg latency     : %.1f ms@." m.Metrics.avg_latency_ms;
    if m.Metrics.latencies_ms <> [] then
      Format.printf "latency p50/p95 : %.1f / %.1f ms@."
        (Bft_stats.Descriptive.percentile 50. m.Metrics.latencies_ms)
        (Bft_stats.Descriptive.percentile 95. m.Metrics.latencies_ms);
    Format.printf "transfer rate   : %.3f MB/s@."
      (m.Metrics.transfer_rate_bps /. 1e6);
    Format.printf "messages        : %d (%.1f MB)@." r.Harness.messages_sent
      (float_of_int r.Harness.bytes_sent /. 1e6);
    (* The half-period queueing model of lib/app/client: needs two
       committed blocks, so very short runs report n/a, not a crash. *)
    (let timeline =
       List.map
         (fun rec_ ->
           (rec_.Metrics.created_ms, rec_.Metrics.quorum_commit_ms))
         m.Metrics.records
     in
     match Bft_app.Client.analyze timeline with
     | stats -> Format.printf "client model    : %a@." Bft_app.Client.pp stats
     | exception Invalid_argument _ ->
         Format.printf
           "client model    : n/a (fewer than two committed blocks)@.");
    (match r.Harness.client_summary with
    | None -> ()
    | Some s ->
        Format.printf "client traffic  :@.%a@." Bft_mempool.Ingest.pp_summary s);
    Format.printf "safety          : OK@."
  in
  let delta =
    Arg.(
      value & opt float 500.
      & info [ "delta" ] ~docv:"MS" ~doc:"Message-delay bound Delta, ms.")
  in
  let term =
    Term.(
      const run $ verbose $ protocol $ nodes ~default:10 $ payload $ duration
      $ delta $ faults $ schedule $ seed $ gst $ uniform_latency
      $ clients_spec)
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs one protocol on the discrete-event network simulator and \
         prints throughput, commit latency percentiles and traffic — the \
         measurement loop behind the paper's Section VI experiments.  The \
         default network is the five-region AWS WAN of Table II; \
         $(b,--uniform-latency) swaps in a uniform link model for \
         ablations.";
      `S Manpage.s_examples;
      `Pre
        "  # Commit-Moonshot, 50 validators, 18 kB payloads on the WAN\n\
        \  moonshot run --protocol CM -n 50 --payload 18000\n\n\
        \  # Jolteon under the worst-case leader schedule with 13 failures\n\
        \  moonshot run -p J --schedule WJ --faults 13 -n 40\n\n\
        \  # A fast local ablation with uniform 10 ms links\n\
        \  moonshot run -p PM -n 10 --uniform-latency 10,5 --duration 5\n\n\
        \  # A million clients at 20k commands/s through the mempool\n\
        \  moonshot run -p CM -n 10 --clients 1000000 --client-rate 20000";
    ]
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one protocol on a simulated network" ~man)
    term

let fault_sched_conv =
  let parse s =
    match Bft_faults.Fault_schedule.of_string s with
    | Ok f -> Ok f
    | Error e -> Error (`Msg e)
  in
  let print ppf f =
    Format.pp_print_string ppf (Bft_faults.Fault_schedule.to_string f)
  in
  Arg.conv (parse, print)

let run_net_cmd =
  let mode_conv =
    Arg.enum
      [ ("threads", Bft_net.Tcp.Threads); ("procs", Bft_net.Tcp.Processes) ]
  in
  let clock_conv =
    Arg.enum
      [
        ("wall", Bft_net.Fault_plane.Wall_ms);
        ("views", Bft_net.Fault_plane.Views);
      ]
  in
  let blocks =
    Arg.(
      value & opt int 50
      & info [ "blocks" ] ~docv:"K"
          ~doc:"Stop once every node has committed K blocks.")
  in
  let delta =
    Arg.(
      value & opt float 1000.
      & info [ "delta" ] ~docv:"MS"
          ~doc:
            "Message-delay bound Delta handed to the nodes, ms.  Keep it \
             far above localhost round-trip time so no view change ever \
             fires on the happy path.")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv Bft_net.Tcp.Threads
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Execution mode: $(b,threads) runs every validator as a thread \
             in this process; $(b,procs) forks one OS process per \
             validator.")
  in
  let port =
    Arg.(
      value & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "Base TCP port; node $(i,i) listens on PORT+$(i,i).  Default: \
             kernel-assigned ephemeral ports.")
  in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record every node's structured events and write the merged, \
             time-sorted JSONL trace to FILE (same format as the \
             simulator's tracer).")
  in
  let timeout =
    Arg.(
      value & opt float 60.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Abort the cluster if the target is not reached in time.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "After the run, assert cluster sanity: target reached, dense \
             per-node commit heights, all nodes agree on their common \
             prefix.  Exit non-zero on violation.")
  in
  let faults =
    Arg.(
      value
      & opt fault_sched_conv Bft_faults.Fault_schedule.empty
      & info [ "faults" ] ~docv:"SCHEDULE"
          ~doc:
            "Fault schedule to inject, in the simulator's schedule syntax \
             (e.g. $(b,crash\\@150:2;recover\\@700:2) or \
             $(b,loss\\@100-400:1>2:0.5)).  Crashes kill the node for real \
             — SIGKILL in $(b,procs) mode — and recovery replays its WAL.")
  in
  let fault_clock =
    Arg.(
      value
      & opt clock_conv Bft_net.Fault_plane.Wall_ms
      & info [ "fault-clock" ] ~docv:"CLOCK"
          ~doc:
            "How schedule times are read: $(b,wall) as milliseconds since \
             cluster start, $(b,views) as view numbers (the logical clock \
             used by $(b,crossval-chaos)).")
  in
  let fault_seed =
    Arg.(
      value & opt int 17
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed for probabilistic loss windows.")
  in
  let link_delay =
    Arg.(
      value & opt float 0.
      & info [ "link-delay" ] ~docv:"MS"
          ~doc:
            "Pace every link by delaying each outbound frame this many \
             milliseconds (in addition to any delay windows in the \
             schedule).")
  in
  let wal_dir =
    Arg.(
      value & opt (some string) None
      & info [ "wal-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for per-node write-ahead logs (used by crash \
             recovery).  Default: a fresh temporary directory.")
  in
  let run verbose protocol n blocks payload delta mode port trace_file timeout
      check faults fault_clock fault_seed link_delay wal_dir clients =
    setup_logs verbose;
    let module FS = Bft_faults.Fault_schedule in
    let faulted = not (FS.is_empty faults) in
    let cfg =
      {
        (Net_harness.config protocol ~n ~blocks) with
        Bft_net.Tcp.payload_bytes = payload;
        delta_ms = delta;
        mode;
        base_port = port;
        trace = trace_file <> None;
        timeout_ms = timeout *. 1000.;
        faults;
        fault_clock;
        fault_seed;
        link_delay_ms = link_delay;
        wal_dir;
        clients;
      }
    in
    let r = Net_harness.run protocol cfg in
    let quorum = Net_harness.quorum ~n in
    let open Bft_net.Tcp in
    Format.printf "protocol        : %a (%s mode, n=%d)@." Protocol_kind.pp
      protocol
      (match mode with Threads -> "threads" | Processes -> "process")
      n;
    Format.printf "target          : %d blocks per node -> %s in %.0f ms@."
      blocks
      (if r.reached_target then "reached" else "NOT reached")
      r.wall_ms;
    (match r.outcome with
    | Completed -> ()
    | Timed_out -> Format.printf "outcome         : TIMED OUT@.");
    Array.iter
      (fun nr ->
        Format.printf
          "node %d          : %d commits, %d msgs out (%.1f kB), %d decode \
           errors%s@."
          nr.id (List.length nr.commits) nr.messages_sent
          (float_of_int nr.bytes_sent /. 1024.)
          nr.decode_errors
          (if nr.restarts > 0 || nr.reconnects > 0 then
             Printf.sprintf ", %d restarts, %d reconnects" nr.restarts
               nr.reconnects
           else "");
        let per_peer label counts =
          if Array.exists (fun c -> c > 0) counts then begin
            Format.printf "                  %s by peer:" label;
            Array.iteri
              (fun peer c -> if c > 0 then Format.printf " %d<-%d" c peer)
              counts;
            Format.printf "@."
          end
        in
        per_peer "malformed" nr.malformed_by_peer;
        per_peer "dropped" nr.dropped_by_peer)
      r.nodes;
    if r.fault_events <> [] then begin
      Format.printf "fault timeline  :@.";
      List.iter
        (fun fe ->
          let kind =
            match fe.fe_kind with
            | Bft_obs.Trace.Crash -> "crash"
            | Recover -> "recover"
            | Partition_start -> "partition start"
            | Partition_heal -> "partition heal"
            | Loss_start -> "loss start"
            | Loss_end -> "loss end"
            | Delay_start -> "delay start"
            | Delay_end -> "delay end"
          in
          if fe.fe_node >= 0 then
            Format.printf "  %8.1f ms  %s node %d@." fe.fe_time_ms kind
              fe.fe_node
          else Format.printf "  %8.1f ms  %s@." fe.fe_time_ms kind)
        r.fault_events
    end;
    (if faulted then
       match Net_harness.net_liveness r ~delta with
       | report ->
           List.iter
             (fun (rec_ : Bft_obs.Liveness.recovery) ->
               Format.printf
                 "recovery        : node %d down %.0f ms, %s@." rec_.node
                 (rec_.recovered_at_ms -. rec_.crashed_at_ms)
                 (match rec_.caught_up_at_ms with
                 | Some t ->
                     Printf.sprintf "caught up to height %d in %.0f ms"
                       rec_.target_height
                       (t -. rec_.recovered_at_ms)
                 | None -> "never caught up"))
             report.recoveries;
           Format.printf
             "liveness        : max quorum-commit gap %.0f ms (bound %.0f \
              ms after last disruption)%s@."
             report.max_quorum_gap_ms report.bound_ms
             (match report.min_slack_ms with
             | Some s -> Printf.sprintf ", min check slack %.0f ms" s
             | None -> "")
       | exception Bft_obs.Liveness.Violation msg ->
           Format.printf "liveness        : VIOLATION (%s)@." msg;
           if check then exit 1);
    (let lat = List.map snd (quorum_latencies r ~quorum) in
     if lat <> [] then
       Format.printf "quorum latency  : %.1f ms avg, %.1f ms p50 (%d blocks)@."
         (List.fold_left ( +. ) 0. lat /. float_of_int (List.length lat))
         (Bft_stats.Descriptive.percentile 50. lat)
         (List.length lat));
    (match clients with
    | None -> ()
    | Some spec ->
        let s = Net_harness.client_stats r ~spec ~view_ms:delta in
        Format.printf "client traffic  :@.%a@." Bft_mempool.Ingest.pp_summary s);
    (match trace_file with
    | None -> ()
    | Some path ->
        let lines = merged_trace r ~quorum in
        let oc = open_out path in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines;
        close_out oc;
        Format.printf "trace           : %d events -> %s@." (List.length lines)
          path);
    if check then begin
      let verdict =
        if FS.crash_count faults > 0 then
          (* A crashed node loses uncommitted progress, so heights are
             not dense per node; chaos sanity checks prefix agreement
             and recovery instead. *)
          Net_harness.check_chaos r ~target:blocks
        else Net_harness.check r ~target:blocks
      in
      match verdict with
      | Ok () -> Format.printf "check           : OK@."
      | Error reason ->
          Format.printf "check           : FAILED (%s)@." reason;
          exit 1
    end
  in
  let term =
    Term.(
      const run $ verbose $ protocol $ nodes ~default:4 $ blocks $ payload
      $ delta $ mode $ port $ trace_file $ timeout $ check $ faults
      $ fault_clock $ fault_seed $ link_delay $ wal_dir $ clients_spec)
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Launches an n-validator cluster of the selected protocol over \
         real TCP sockets on localhost and runs it until every node has \
         committed $(b,--blocks) blocks.  The node state machines are the \
         same modules the simulator drives; only the transport differs: \
         messages travel as length-prefixed wire frames (see \
         $(i,docs/WIRE.md)) over a full mesh of TCP connections, and \
         timers run on the wall clock.";
      `P
        "With $(b,--mode) $(b,procs) each validator is a forked OS process \
         and results return to the coordinator over pipes, so the run \
         exercises the codecs across address spaces.";
      `S Manpage.s_examples;
      `Pre
        "  # 4 validators in one process, 50 blocks, sanity-checked\n\
        \  moonshot run-net -p CM -n 4 --blocks 50 --check\n\n\
        \  # One OS process per validator, fixed ports, JSONL trace\n\
        \  moonshot run-net -p J --mode procs --port 7000 --trace net.jsonl\n\n\
        \  # 2 kB payloads over the sockets\n\
        \  moonshot run-net -p PM --payload 2048 --blocks 100\n\n\
        \  # Kill node 2 for real (SIGKILL) at 150 ms, re-spawn at 700 ms\n\
        \  moonshot run-net -p CM --mode procs --blocks 40 \\\n\
        \      --faults 'crash@150:2;recover@700:2' --delta 300 --check";
    ]
  in
  Cmd.v
    (Cmd.info "run-net" ~doc:"Run one protocol over real TCP sockets" ~man)
    term

let crossval_cmd =
  let blocks =
    Arg.(
      value & opt int 10
      & info [ "blocks" ] ~docv:"K" ~doc:"Number of commits to compare.")
  in
  let run verbose protocol n blocks payload =
    setup_logs verbose;
    let cv =
      Net_harness.cross_validate ~n ~payload_bytes:payload ~protocol ~blocks ()
    in
    Format.printf "protocol : %a (n=%d, %d blocks)@." Protocol_kind.pp protocol
      n blocks;
    List.iter2
      (fun (s : Net_harness.commit_id) (t : Net_harness.commit_id) ->
        Format.printf
          "height %2d: sim view %d hash %016Lx | net view %d hash %016Lx %s@."
          s.Net_harness.height s.view s.hash t.view t.hash
          (if s = t then "" else "<- MISMATCH"))
      cv.Net_harness.sim_commits cv.Net_harness.net_commits;
    if cv.Net_harness.agree then
      Format.printf "crossval : OK — substrates agree on all %d commits@."
        blocks
    else begin
      Format.printf "crossval : FAILED — commit sequences differ@.";
      exit 1
    end
  in
  let term =
    Term.(
      const run $ verbose $ protocol $ nodes ~default:4 $ blocks $ payload)
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays the same fault-free round-robin schedule on both \
         execution substrates — the discrete-event simulator and a \
         localhost TCP cluster — and asserts that node 0 commits the \
         identical sequence of (height, view, hash) triples on both.  On \
         the happy path with a generous Delta no timeout ever fires, so \
         the committed chain is a pure function of the protocol: any \
         divergence is a bug in a codec or a transport, not timing.";
      `S Manpage.s_examples;
      `Pre
        "  # Default: commit-moonshot, 4 nodes, first 10 commits\n\
        \  moonshot crossval\n\n\
        \  # All five protocols\n\
        \  for p in SM PM CM J HS; do moonshot crossval -p $p; done";
    ]
  in
  Cmd.v
    (Cmd.info "crossval"
       ~doc:"Cross-validate simulator against TCP substrate" ~man)
    term

let crossval_chaos_cmd =
  let seed =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Seed for drawing the random logical fault schedule.")
  in
  let run verbose protocol n seed =
    setup_logs verbose;
    let module FS = Bft_faults.Fault_schedule in
    let cv = Net_harness.cross_validate_chaos ~n ~seed ~protocol () in
    Format.printf "protocol : %a (n=%d, %d blocks)@." Protocol_kind.pp protocol
      n cv.Net_harness.blocks;
    Format.printf "schedule : %s (times are view numbers)@."
      (FS.to_string cv.Net_harness.schedule);
    let print_liveness label (report : Bft_obs.Liveness.report) =
      List.iter
        (fun (rec_ : Bft_obs.Liveness.recovery) ->
          Format.printf "%s : node %d down %.0f ms, %s@." label rec_.node
            (rec_.recovered_at_ms -. rec_.crashed_at_ms)
            (match rec_.caught_up_at_ms with
            | Some t ->
                Printf.sprintf "caught up to height %d in %.0f ms"
                  rec_.target_height
                  (t -. rec_.recovered_at_ms)
            | None -> "NEVER CAUGHT UP"))
        report.recoveries;
      Format.printf "%s : max quorum-commit gap %.0f ms (bound %.0f ms)%s@."
        label report.max_quorum_gap_ms report.bound_ms
        (match report.min_slack_ms with
        | Some s -> Printf.sprintf ", min check slack %.0f ms" s
        | None -> "")
    in
    print_liveness "threads " cv.Net_harness.thread_liveness;
    print_liveness "procs   " cv.Net_harness.process_liveness;
    if cv.Net_harness.agree then
      Format.printf
        "crossval : OK — sim, thread and process runs agree on all %d \
         commits@."
        cv.Net_harness.blocks
    else begin
      let show chain =
        String.concat " "
          (List.map
             (fun (c : Net_harness.commit_id) ->
               Printf.sprintf "%d@%d" c.height c.view)
             chain)
      in
      Format.printf "sim     : %s@." (show cv.Net_harness.sim_chain);
      Format.printf "threads : %s@." (show cv.Net_harness.thread_chain);
      Format.printf "procs   : %s@." (show cv.Net_harness.process_chain);
      Format.printf "crossval : FAILED — committed chains differ@.";
      exit 1
    end
  in
  let term =
    Term.(const run $ verbose $ protocol $ nodes ~default:4 $ seed)
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Draws a random fault schedule anchored to $(i,view numbers) — one \
         crash/recover cycle plus one partition window — and replays it on \
         all three execution substrates: the discrete-event simulator, a \
         threads-mode TCP cluster and a fork-per-validator TCP cluster.  \
         Because every trigger is a function of protocol state rather than \
         wall time, all three runs must commit the identical (height, \
         view, hash) chain; any divergence is a bug in fault injection, \
         WAL recovery, Sync catch-up or a codec.";
      `P
        "The crash is a real kill: in process mode the victim dies by \
         SIGKILL and is re-spawned, rebuilding its state from its \
         write-ahead log and catching up over the wire.";
      `S Manpage.s_examples;
      `Pre
        "  # Default: commit-moonshot, 4 nodes\n\
        \  moonshot crossval-chaos\n\n\
        \  # All five protocols, a different schedule\n\
        \  for p in SM PM CM J HS; do moonshot crossval-chaos -p $p --seed \
         11; done";
    ]
  in
  Cmd.v
    (Cmd.info "crossval-chaos"
       ~doc:"Cross-validate chaotic runs across all substrates" ~man)
    term

let crossval_clients_cmd =
  let blocks =
    Arg.(
      value & opt int 10
      & info [ "blocks" ] ~docv:"K" ~doc:"Number of commits to compare.")
  in
  let run verbose protocol n blocks =
    setup_logs verbose;
    let cv = Net_harness.cross_validate_clients ~n ~protocol ~blocks () in
    Format.printf "protocol : %a (n=%d, %d blocks)@." Protocol_kind.pp protocol
      n blocks;
    Format.printf "spec     : %a@." Bft_mempool.Spec.pp
      cv.Net_harness.cc_spec;
    Format.printf "sim      :@.%a@." Bft_mempool.Ingest.pp_summary
      cv.Net_harness.cc_sim_summary;
    Format.printf "net      :@.%a@." Bft_mempool.Ingest.pp_summary
      cv.Net_harness.cc_net_summary;
    if cv.Net_harness.cc_agree then
      Format.printf
        "crossval : OK — both substrates committed the same %d batches@."
        blocks
    else begin
      List.iter2
        (fun (s : Net_harness.commit_id) (t : Net_harness.commit_id) ->
          Format.printf
            "height %2d: sim view %d hash %016Lx | net view %d hash %016Lx \
             %s@."
            s.Net_harness.height s.view s.hash t.view t.hash
            (if s = t then "" else "<- MISMATCH"))
        cv.Net_harness.cc_sim_chain cv.Net_harness.cc_net_chain;
      Format.printf "crossval : FAILED — committed chains differ@.";
      exit 1
    end
  in
  let term =
    Term.(const run $ verbose $ protocol $ nodes ~default:4 $ blocks)
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Feeds the same seeded client stream through the mempool on both \
         execution substrates — the discrete-event simulator and a \
         localhost TCP cluster — under the $(b,views) ingest clock, and \
         asserts both commit the identical (height, view, hash) chain.  \
         Because blocks carry only batch references (cursor, watermark, \
         count) and contents are derived by commit-order replay, chain \
         agreement means every command landed in the same block on both \
         substrates.";
      `S Manpage.s_examples;
      `Pre
        "  # Default: commit-moonshot, 4 nodes, first 10 batches\n\
        \  moonshot crossval-clients\n\n\
        \  # All five protocols\n\
        \  for p in SM PM CM J HS; do moonshot crossval-clients -p $p; done";
    ]
  in
  Cmd.v
    (Cmd.info "crossval-clients"
       ~doc:"Cross-validate client-traffic runs across substrates" ~man)
    term

let table1_cmd =
  let man =
    [
      `S Manpage.s_description;
      `P
        "Prints the theoretical comparison of block period, commit latency \
         and view-change cost across the protocol family (paper Table I).";
      `S Manpage.s_examples;
      `Pre "  moonshot table1";
    ]
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Print the theoretical comparison (paper Table I)" ~man)
    Term.(const (fun () -> Moonshot.Theory.print Format.std_formatter) $ const ())

let table2_cmd =
  let man =
    [
      `S Manpage.s_description;
      `P
        "Prints the five-region AWS inter-region latency matrix the WAN \
         simulations use (paper Table II).";
      `S Manpage.s_examples;
      `Pre "  moonshot table2";
    ]
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Print the AWS latency matrix (paper Table II)"
       ~man)
    Term.(
      const (fun () -> Bft_workload.Regions.print_table Format.std_formatter)
      $ const ())

(* {2 explore} — the model checker's sampling modes from the command line:
   swarm walks over one world, or coverage-guided search over fault
   schedules.  Exhaustive checking stays in the bench driver ([bench mc]);
   this subcommand is for the modes one points at a world interactively. *)

let explore_cmd =
  let mode =
    Arg.(
      value
      & opt (enum [ ("swarm", `Swarm); ("search", `Search) ]) `Swarm
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "$(b,swarm): sample maximal interleavings with \
             sleep-set-respecting random walks and report coverage, \
             violations and certified livelocks.  $(b,search): mutate \
             fault schedules, scoring each candidate by a swarm under its \
             schedule, until a counterexample turns up or the budget runs \
             out.")
  in
  let view_bound =
    Arg.(
      value & opt int 3
      & info [ "view-bound" ] ~docv:"V"
          ~doc:"Stop a walk once some node's view exceeds V.")
  in
  let depth =
    Arg.(
      value & opt int 96
      & info [ "depth" ] ~docv:"STEPS" ~doc:"Step cap per walk.")
  in
  let timer_budget =
    Arg.(
      value & opt int 1
      & info [ "timer-budget" ] ~docv:"T"
          ~doc:"Timer firings per node per fault era.")
  in
  let reorder_window =
    Arg.(
      value & opt int 1
      & info [ "reorder-window" ] ~docv:"W"
          ~doc:"Per-destination cross-channel overtaking bound.")
  in
  let budget =
    Arg.(
      value & opt int 256
      & info [ "budget" ] ~docv:"K"
          ~doc:
            "Exploration budget: walks in swarm mode; approximate schedule \
             evaluations in search mode (12 per mutation round).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker processes; reports are byte-identical for every N.")
  in
  let sym =
    Arg.(
      value & flag
      & info [ "sym" ]
          ~doc:
            "Canonicalize state digests under the validator-symmetry \
             group (sound; pays off once n >= view-bound + 2).")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SCHED"
          ~doc:
            "Fault schedule for swarm mode, in the fault-DSL syntax (e.g. \
             'partition@100-500:0,1/2,3').  Ignored by search mode, which \
             supplies its own candidates.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Replay the first counterexample (violation or certified \
             livelock) and write its deterministic trace as JSONL.")
  in
  let run mode proto n view_bound depth timer_budget reorder_window seed
      budget jobs sym faults out =
    let die fmt =
      Format.kasprintf
        (fun s ->
          prerr_endline s;
          exit 2)
        fmt
    in
    let compile_faults s =
      match Bft_faults.Fault_schedule.of_string s with
      | Error e -> die "bad fault schedule: %s" e
      | Ok sched -> (
          match Bft_mc.Mc_schedule.compile ~n sched with
          | Error e -> die "bad fault schedule: %s" e
          | Ok steps -> steps)
    in
    let cfg ~faults =
      Bft_mc.Checker.config ~n ~view_bound ~timer_budget ~reorder_window
        ~max_depth:(max 128 (depth + 8))
        ~symmetry:sym ~faults ()
    in
    let write_trace cfg path file =
      let tr = Bft_mc.Checker.replay proto cfg path in
      let oc = open_out file in
      output_string oc (Bft_obs.Trace.to_jsonl tr);
      close_out oc;
      Format.printf "counterexample trace written to %s@." file
    in
    match mode with
    | `Swarm ->
        let steps =
          match faults with None -> [] | Some s -> compile_faults s
        in
        let cfg = cfg ~faults:steps in
        let sw =
          Bft_mc.Checker.swarm ~jobs proto ~walks:budget ~depth ~seed cfg
        in
        Format.printf "%a@." Bft_mc.Mc_report.pp_swarm sw;
        let cx_path =
          match sw.Bft_mc.Mc_report.sw_violations with
          | v :: _ -> Some v.Bft_mc.Mc_report.path
          | [] -> sw.Bft_mc.Mc_report.sw_livelock_witness
        in
        (match (out, cx_path) with
        | Some file, Some path -> write_trace cfg path file
        | Some _, None ->
            Format.printf "no counterexample found; nothing written@."
        | None, _ -> ());
        if cx_path <> None then exit 1
    | `Search ->
        let xcfg =
          Bft_mc.Checker.search_config ~seed
            ~rounds:(max 1 (budget / 12))
            ~depth ()
        in
        let se =
          Bft_mc.Checker.schedule_search ~jobs proto xcfg (cfg ~faults:[])
        in
        Format.printf "%a@." Bft_mc.Mc_report.pp_search se;
        (match se.Bft_mc.Mc_report.se_counterexample with
        | Some (sched_text, cx) ->
            (match out with
            | Some file ->
                let steps = compile_faults sched_text in
                let path =
                  match cx with
                  | Bft_mc.Mc_report.Cx_livelock p -> p
                  | Bft_mc.Mc_report.Cx_violation v ->
                      v.Bft_mc.Mc_report.path
                in
                write_trace (cfg ~faults:steps) path file
            | None -> ());
            exit 1
        | None -> ())
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Scalable exploration over the same bounded model the exhaustive \
         checker uses: every result — a violation path, a certified \
         livelock, a searched-up fault schedule — replays \
         deterministically, and every report is byte-identical for any \
         $(b,--jobs) value.  Exits 1 when a counterexample is found.";
      `S Manpage.s_examples;
      `Pre
        "  moonshot explore -p SM -n 4 --budget 512\n\
        \  moonshot explore -p SM -n 4 --faults 'partition@100-500:0,1/2,3'\n\
        \  moonshot explore --mode search -p SM -n 4 --budget 100 --out cx.jsonl";
    ]
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Swarm walks and coverage-guided schedule search (model checker)"
       ~man)
    Term.(
      const run $ mode $ protocol $ nodes ~default:4 $ view_bound $ depth
      $ timer_budget $ reorder_window $ seed $ budget $ jobs $ sym
      $ faults_arg $ out)

let () =
  Bft_parallel.Parallel.tune_gc ();
  let man =
    [
      `S Manpage.s_description;
      `P
        "Evaluation harness for Moonshot chain-based rotating-leader BFT \
         SMR (DSN 2024) and its baselines.  The same protocol node \
         implementations run on two execution substrates: a deterministic \
         discrete-event simulator ($(b,run)) and a live localhost TCP \
         cluster ($(b,run-net)); $(b,crossval) proves both substrates \
         commit identical chains.";
    ]
  in
  let info =
    Cmd.info "moonshot" ~version:"1.0.0"
      ~doc:
        "Moonshot chain-based rotating-leader BFT SMR (DSN 2024) -- \
         simulated and live-network evaluation harness"
      ~man
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            run_net_cmd;
            crossval_cmd;
            crossval_chaos_cmd;
            crossval_clients_cmd;
            explore_cmd;
            table1_cmd;
            table2_cmd;
          ]))
