(* Command-line front end: run any of the five protocols on a configurable
   simulated network — or on a real localhost TCP cluster — and print the
   paper's metrics.

     dune exec bin/moonshot_cli.exe -- run --protocol CM -n 50 --payload 18000
     dune exec bin/moonshot_cli.exe -- run -p J --schedule WJ --faults 13 -n 40
     dune exec bin/moonshot_cli.exe -- run-net -p CM -n 4 --blocks 50
     dune exec bin/moonshot_cli.exe -- crossval -p PM --blocks 10
     dune exec bin/moonshot_cli.exe -- table1
*)

open Cmdliner
open Bft_runtime

let protocol_conv =
  let parse s =
    match Protocol_kind.of_name s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown protocol %S (expected SM, PM, CM, J, HS or long names)"
               s))
  in
  let print ppf p = Format.pp_print_string ppf (Protocol_kind.name p) in
  Arg.conv (parse, print)

let schedule_conv =
  let parse s =
    match Bft_workload.Schedules.of_name s with
    | Some x -> Ok x
    | None -> Error (`Msg (Printf.sprintf "unknown schedule %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Bft_workload.Schedules.name s) in
  Arg.conv (parse, print)

let protocol =
  Arg.(
    value
    & opt protocol_conv Protocol_kind.Commit_moonshot
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:
          "Protocol to run: SM (simple-moonshot), PM (pipelined-moonshot), \
           CM (commit-moonshot), J (jolteon) or HS (hotstuff).")

let nodes ~default =
  Arg.(
    value & opt int default
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Network size.")

let payload =
  Arg.(
    value & opt int 0
    & info [ "payload" ] ~docv:"BYTES" ~doc:"Block payload size in bytes.")

let duration =
  Arg.(
    value & opt float 30.
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated run length.")

let faults =
  Arg.(
    value & opt int 0
    & info [ "f"; "faults" ] ~docv:"F"
        ~doc:"Number of silent Byzantine nodes (at most (n-1)/3).")

let schedule =
  Arg.(
    value
    & opt schedule_conv Bft_workload.Schedules.Round_robin
    & info [ "schedule" ] ~docv:"SCHED"
        ~doc:"Leader schedule: round-robin, B, WM or WJ.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let gst =
  Arg.(
    value & opt float 0.
    & info [ "gst" ] ~docv:"SECONDS"
        ~doc:"Global stabilization time; before it, messages may be delayed \
              adversarially.")

let uniform_latency =
  Arg.(
    value
    & opt (some (pair ~sep:',' float float)) None
    & info [ "uniform-latency" ] ~docv:"BASE,JITTER"
        ~doc:
          "Replace the AWS WAN latency matrix with a uniform one-way latency \
           of BASE + U[0,JITTER) ms.")

let verbose =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Log per-run details to stderr.")

let setup_logs verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end

let run_cmd =
  let run verbose protocol n payload duration delta faults schedule seed gst
      uniform_latency =
    setup_logs verbose;
    let latency, bandwidth =
      match uniform_latency with
      | Some (base, jitter) -> (Config.Uniform { base; jitter }, None)
      | None -> (Config.Wan, Some Bft_workload.Regions.bandwidth_bps)
    in
    let cfg =
      {
        (Config.default protocol ~n) with
        Config.payload_bytes = payload;
        duration_ms = duration *. 1000.;
        delta_ms = delta;
        f_actual = faults;
        schedule;
        seed;
        gst_ms = gst *. 1000.;
        pre_gst_extra_ms = (if gst > 0. then 4. *. delta else 0.);
        latency;
        bandwidth_bps = bandwidth;
      }
    in
    let r = Harness.run cfg in
    let m = r.Harness.metrics in
    Format.printf "config          : %a@." Config.pp cfg;
    Format.printf "blocks committed: %d (%.2f blocks/s)@."
      m.Metrics.committed_blocks m.Metrics.blocks_per_sec;
    Format.printf "avg latency     : %.1f ms@." m.Metrics.avg_latency_ms;
    if m.Metrics.latencies_ms <> [] then
      Format.printf "latency p50/p95 : %.1f / %.1f ms@."
        (Bft_stats.Descriptive.percentile 50. m.Metrics.latencies_ms)
        (Bft_stats.Descriptive.percentile 95. m.Metrics.latencies_ms);
    Format.printf "transfer rate   : %.3f MB/s@."
      (m.Metrics.transfer_rate_bps /. 1e6);
    Format.printf "messages        : %d (%.1f MB)@." r.Harness.messages_sent
      (float_of_int r.Harness.bytes_sent /. 1e6);
    Format.printf "safety          : OK@."
  in
  let delta =
    Arg.(
      value & opt float 500.
      & info [ "delta" ] ~docv:"MS" ~doc:"Message-delay bound Delta, ms.")
  in
  let term =
    Term.(
      const run $ verbose $ protocol $ nodes ~default:10 $ payload $ duration
      $ delta $ faults $ schedule $ seed $ gst $ uniform_latency)
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs one protocol on the discrete-event network simulator and \
         prints throughput, commit latency percentiles and traffic — the \
         measurement loop behind the paper's Section VI experiments.  The \
         default network is the five-region AWS WAN of Table II; \
         $(b,--uniform-latency) swaps in a uniform link model for \
         ablations.";
      `S Manpage.s_examples;
      `Pre
        "  # Commit-Moonshot, 50 validators, 18 kB payloads on the WAN\n\
        \  moonshot run --protocol CM -n 50 --payload 18000\n\n\
        \  # Jolteon under the worst-case leader schedule with 13 failures\n\
        \  moonshot run -p J --schedule WJ --faults 13 -n 40\n\n\
        \  # A fast local ablation with uniform 10 ms links\n\
        \  moonshot run -p PM -n 10 --uniform-latency 10,5 --duration 5";
    ]
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one protocol on a simulated network" ~man)
    term

let run_net_cmd =
  let mode_conv =
    Arg.enum
      [ ("threads", Bft_net.Tcp.Threads); ("procs", Bft_net.Tcp.Processes) ]
  in
  let blocks =
    Arg.(
      value & opt int 50
      & info [ "blocks" ] ~docv:"K"
          ~doc:"Stop once every node has committed K blocks.")
  in
  let delta =
    Arg.(
      value & opt float 1000.
      & info [ "delta" ] ~docv:"MS"
          ~doc:
            "Message-delay bound Delta handed to the nodes, ms.  Keep it \
             far above localhost round-trip time so no view change ever \
             fires on the happy path.")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv Bft_net.Tcp.Threads
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Execution mode: $(b,threads) runs every validator as a thread \
             in this process; $(b,procs) forks one OS process per \
             validator.")
  in
  let port =
    Arg.(
      value & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "Base TCP port; node $(i,i) listens on PORT+$(i,i).  Default: \
             kernel-assigned ephemeral ports.")
  in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record every node's structured events and write the merged, \
             time-sorted JSONL trace to FILE (same format as the \
             simulator's tracer).")
  in
  let timeout =
    Arg.(
      value & opt float 60.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Abort the cluster if the target is not reached in time.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "After the run, assert cluster sanity: target reached, dense \
             per-node commit heights, all nodes agree on their common \
             prefix.  Exit non-zero on violation.")
  in
  let run verbose protocol n blocks payload delta mode port trace_file timeout
      check =
    setup_logs verbose;
    let cfg =
      {
        (Net_harness.config protocol ~n ~blocks) with
        Bft_net.Tcp.payload_bytes = payload;
        delta_ms = delta;
        mode;
        base_port = port;
        trace = trace_file <> None;
        timeout_ms = timeout *. 1000.;
      }
    in
    let r = Net_harness.run protocol cfg in
    let quorum = Net_harness.quorum ~n in
    let open Bft_net.Tcp in
    Format.printf "protocol        : %a (%s mode, n=%d)@." Protocol_kind.pp
      protocol
      (match mode with Threads -> "threads" | Processes -> "process")
      n;
    Format.printf "target          : %d blocks per node -> %s in %.0f ms@."
      blocks
      (if r.reached_target then "reached" else "NOT reached")
      r.wall_ms;
    Array.iter
      (fun nr ->
        Format.printf
          "node %d          : %d commits, %d msgs out (%.1f kB), %d decode \
           errors@."
          nr.id (List.length nr.commits) nr.messages_sent
          (float_of_int nr.bytes_sent /. 1024.)
          nr.decode_errors)
      r.nodes;
    (let lat = List.map snd (quorum_latencies r ~quorum) in
     if lat <> [] then
       Format.printf "quorum latency  : %.1f ms avg, %.1f ms p50 (%d blocks)@."
         (List.fold_left ( +. ) 0. lat /. float_of_int (List.length lat))
         (Bft_stats.Descriptive.percentile 50. lat)
         (List.length lat));
    (match trace_file with
    | None -> ()
    | Some path ->
        let lines = merged_trace r ~quorum in
        let oc = open_out path in
        List.iter
          (fun l ->
            output_string oc l;
            output_char oc '\n')
          lines;
        close_out oc;
        Format.printf "trace           : %d events -> %s@." (List.length lines)
          path);
    if check then
      match Net_harness.check r ~target:blocks with
      | Ok () -> Format.printf "check           : OK@."
      | Error reason ->
          Format.printf "check           : FAILED (%s)@." reason;
          exit 1
  in
  let term =
    Term.(
      const run $ verbose $ protocol $ nodes ~default:4 $ blocks $ payload
      $ delta $ mode $ port $ trace_file $ timeout $ check)
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Launches an n-validator cluster of the selected protocol over \
         real TCP sockets on localhost and runs it until every node has \
         committed $(b,--blocks) blocks.  The node state machines are the \
         same modules the simulator drives; only the transport differs: \
         messages travel as length-prefixed wire frames (see \
         $(i,docs/WIRE.md)) over a full mesh of TCP connections, and \
         timers run on the wall clock.";
      `P
        "With $(b,--mode) $(b,procs) each validator is a forked OS process \
         and results return to the coordinator over pipes, so the run \
         exercises the codecs across address spaces.";
      `S Manpage.s_examples;
      `Pre
        "  # 4 validators in one process, 50 blocks, sanity-checked\n\
        \  moonshot run-net -p CM -n 4 --blocks 50 --check\n\n\
        \  # One OS process per validator, fixed ports, JSONL trace\n\
        \  moonshot run-net -p J --mode procs --port 7000 --trace net.jsonl\n\n\
        \  # 2 kB payloads over the sockets\n\
        \  moonshot run-net -p PM --payload 2048 --blocks 100";
    ]
  in
  Cmd.v
    (Cmd.info "run-net" ~doc:"Run one protocol over real TCP sockets" ~man)
    term

let crossval_cmd =
  let blocks =
    Arg.(
      value & opt int 10
      & info [ "blocks" ] ~docv:"K" ~doc:"Number of commits to compare.")
  in
  let run verbose protocol n blocks payload =
    setup_logs verbose;
    let cv =
      Net_harness.cross_validate ~n ~payload_bytes:payload ~protocol ~blocks ()
    in
    Format.printf "protocol : %a (n=%d, %d blocks)@." Protocol_kind.pp protocol
      n blocks;
    List.iter2
      (fun (s : Net_harness.commit_id) (t : Net_harness.commit_id) ->
        Format.printf
          "height %2d: sim view %d hash %016Lx | net view %d hash %016Lx %s@."
          s.Net_harness.height s.view s.hash t.view t.hash
          (if s = t then "" else "<- MISMATCH"))
      cv.Net_harness.sim_commits cv.Net_harness.net_commits;
    if cv.Net_harness.agree then
      Format.printf "crossval : OK — substrates agree on all %d commits@."
        blocks
    else begin
      Format.printf "crossval : FAILED — commit sequences differ@.";
      exit 1
    end
  in
  let term =
    Term.(
      const run $ verbose $ protocol $ nodes ~default:4 $ blocks $ payload)
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays the same fault-free round-robin schedule on both \
         execution substrates — the discrete-event simulator and a \
         localhost TCP cluster — and asserts that node 0 commits the \
         identical sequence of (height, view, hash) triples on both.  On \
         the happy path with a generous Delta no timeout ever fires, so \
         the committed chain is a pure function of the protocol: any \
         divergence is a bug in a codec or a transport, not timing.";
      `S Manpage.s_examples;
      `Pre
        "  # Default: commit-moonshot, 4 nodes, first 10 commits\n\
        \  moonshot crossval\n\n\
        \  # All five protocols\n\
        \  for p in SM PM CM J HS; do moonshot crossval -p $p; done";
    ]
  in
  Cmd.v
    (Cmd.info "crossval"
       ~doc:"Cross-validate simulator against TCP substrate" ~man)
    term

let table1_cmd =
  let man =
    [
      `S Manpage.s_description;
      `P
        "Prints the theoretical comparison of block period, commit latency \
         and view-change cost across the protocol family (paper Table I).";
      `S Manpage.s_examples;
      `Pre "  moonshot table1";
    ]
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Print the theoretical comparison (paper Table I)" ~man)
    Term.(const (fun () -> Moonshot.Theory.print Format.std_formatter) $ const ())

let table2_cmd =
  let man =
    [
      `S Manpage.s_description;
      `P
        "Prints the five-region AWS inter-region latency matrix the WAN \
         simulations use (paper Table II).";
      `S Manpage.s_examples;
      `Pre "  moonshot table2";
    ]
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Print the AWS latency matrix (paper Table II)"
       ~man)
    Term.(
      const (fun () -> Bft_workload.Regions.print_table Format.std_formatter)
      $ const ())

let () =
  Bft_parallel.Parallel.tune_gc ();
  let man =
    [
      `S Manpage.s_description;
      `P
        "Evaluation harness for Moonshot chain-based rotating-leader BFT \
         SMR (DSN 2024) and its baselines.  The same protocol node \
         implementations run on two execution substrates: a deterministic \
         discrete-event simulator ($(b,run)) and a live localhost TCP \
         cluster ($(b,run-net)); $(b,crossval) proves both substrates \
         commit identical chains.";
    ]
  in
  let info =
    Cmd.info "moonshot" ~version:"1.0.0"
      ~doc:
        "Moonshot chain-based rotating-leader BFT SMR (DSN 2024) -- \
         simulated and live-network evaluation harness"
      ~man
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; run_net_cmd; crossval_cmd; table1_cmd; table2_cmd ]))
