(** Per-view latency breakdown, computed from a {!Trace}.

    The paper's claims are about where a view's milliseconds go: a block
    period of one message delay (optimistic proposal overlapping the
    previous view's votes) and a commit latency of three (proposal, vote,
    certificate propagation — Figure 2).  This module folds a trace into
    one row per view — when the first proposal went out, when the first
    vote for it was cast, when the first node assembled its certificate,
    when the [(2f+1)]-th node committed it — plus per-view message/byte
    complexity, and summarizes the phase durations as percentile
    distributions. *)

(** One row per view; all times are simulated ms, [None] when the phase
    never happened in the run (e.g. no commit for a timed-out view). *)
type view_row = {
  view : int;
  proposer : int option;  (** Node that broadcast the first proposal. *)
  entered_ms : float option;  (** First node to enter the view. *)
  propose_ms : float option;  (** First proposal broadcast. *)
  first_vote_ms : float option;
      (** First consensus vote (pre-commit votes excluded). *)
  cert_ms : float option;  (** First local certificate assembly. *)
  commit_ms : float option;  (** Quorum ([2f+1]-th node) commit. *)
  period_ms : float option;
      (** Gap from the previous view's first proposal — the block period. *)
  timeouts : int;  (** Timeout messages sent for this view. *)
  tc_formed : bool;  (** A timeout certificate formed. *)
  msgs : int;  (** Messages delivered that belong to this view. *)
  bytes : int;  (** Their total wire bytes. *)
}

(** Fold a trace (see {!Trace.events}) into rows, sorted by view. *)
val rows : Trace.event list -> view_row list

(** Percentiles over per-view phase durations. *)
type dist = {
  samples : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

type phases = {
  propose_to_vote : dist option;
  vote_to_cert : dist option;
  cert_to_commit : dist option;
  propose_to_commit : dist option;  (** The paper's commit latency, 3δ. *)
  block_period : dist option;  (** The paper's block period, δ. *)
}

(** [None] fields had no view with both phase endpoints observed. *)
val phases : view_row list -> phases

(** Render rows as a printable table (columns: view, leader, propose time,
    phase deltas, period, message/byte counts, [T]imeout/T[C] flags). *)
val table : view_row list -> Bft_stats.Table.t

(** Render the phase summary (one row per phase, mean/p50/p95/p99). *)
val phase_table : phases -> Bft_stats.Table.t
