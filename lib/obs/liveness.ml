exception Violation of string

let fail fmt = Format.kasprintf (fun s -> raise (Violation s)) fmt

(* Worst case to resume committing after a disruption-free point: up to a
   full view-timer period (5 Delta) before the stuck nodes' next timeout
   rebroadcast, a TC forms and propagates, the next leader waits its
   2 Delta fallback before proposing, votes and certificates flow, and a
   2-chain/3-chain head must build on top — plus sync round-trips for a
   recovering node.  Simple Moonshot's chain adds up to ~12 Delta with no
   slack at all; 20 Delta covers all four protocols with real margin while
   still failing fast on a genuine stall. *)
let default_k = 20.

type pending_recovery = {
  p_node : int;
  p_crashed_at : float;
  p_recovered_at : float;
  p_target_height : int;
  mutable p_caught_up_at : float option;
}

type t = {
  n : int;
  delta : float;
  k : float;
  gst : float;
  exempt : bool array;
  up : bool array;
  crashed_at : float array;  (* last crash time; nan = never crashed *)
  last_commit : float array;  (* last local commit time; nan = never *)
  commit_height : int array;
  quorum_hash_at : (int, int) Hashtbl.t;  (* height -> block hash *)
  mutable quorum_height : int;
  mutable last_quorum_commit : float;  (* nan = none yet *)
  mutable max_quorum_gap : float;
  mutable recoveries : pending_recovery list;  (* newest first *)
  mutable checks_passed : int;
  mutable min_slack : float;  (* nan = no check has passed yet *)
}

let create ?(k = default_k) ~n ~delta ~gst () =
  if n < 1 then invalid_arg "Liveness.create: n < 1";
  if delta <= 0. || k <= 0. then invalid_arg "Liveness.create: bad bound";
  {
    n;
    delta;
    k;
    gst;
    exempt = Array.make n false;
    up = Array.make n true;
    crashed_at = Array.make n Float.nan;
    last_commit = Array.make n Float.nan;
    commit_height = Array.make n 0;
    quorum_hash_at = Hashtbl.create 256;
    quorum_height = 0;
    last_quorum_commit = Float.nan;
    max_quorum_gap = 0.;
    recoveries = [];
    checks_passed = 0;
    min_slack = Float.nan;
  }

let bound t = t.k *. t.delta
let set_exempt t i = t.exempt.(i) <- true

let note_commit t ~node ~time ~height =
  t.last_commit.(node) <- time;
  if height > t.commit_height.(node) then t.commit_height.(node) <- height;
  List.iter
    (fun r ->
      if
        r.p_node = node
        && r.p_caught_up_at = None
        && time >= r.p_recovered_at
        && height >= r.p_target_height
      then r.p_caught_up_at <- Some time)
    t.recoveries

let note_quorum_commit t ~time ~height ~hash =
  (match Hashtbl.find_opt t.quorum_hash_at height with
  | Some h when h <> hash ->
      fail "conflicting quorum commits at height %d" height
  | Some _ -> ()
  | None -> Hashtbl.add t.quorum_hash_at height hash);
  if time >= t.gst && not (Float.is_nan t.last_quorum_commit) then
    t.max_quorum_gap <-
      Float.max t.max_quorum_gap (time -. t.last_quorum_commit);
  t.last_quorum_commit <- time;
  if height > t.quorum_height then t.quorum_height <- height

let note_crash t ~node ~time =
  t.up.(node) <- false;
  t.crashed_at.(node) <- time

let note_recover t ~node ~time =
  t.up.(node) <- true;
  t.recoveries <-
    {
      p_node = node;
      p_crashed_at = t.crashed_at.(node);
      p_recovered_at = time;
      p_target_height = t.quorum_height;
      p_caught_up_at = None;
    }
    :: t.recoveries

let check t ~since ~now =
  let b = bound t in
  if Float.is_nan t.last_quorum_commit || t.last_quorum_commit <= since then
    fail
      "liveness: no quorum commit in (%.0f, %.0f] ms (bound %.0f ms = %g \
       Delta)"
      since now b t.k;
  (* Slack: by how much the tightest obligation cleared the window — the
     latest-committing obligated entity's last commit minus [since].  A
     slack of epsilon means one commit landed just inside the bound: a
     near-miss worth surfacing even though the check passed. *)
  let slack = ref (t.last_quorum_commit -. since) in
  for i = 0 to t.n - 1 do
    (* Only nodes that were correct and up for the whole window are owed
       progress; a node that crashed inside it gets its own post-recovery
       check later. *)
    let crashed_inside =
      (not (Float.is_nan t.crashed_at.(i))) && t.crashed_at.(i) > since
    in
    if t.up.(i) && (not t.exempt.(i)) && not crashed_inside then
      if Float.is_nan t.last_commit.(i) || t.last_commit.(i) <= since then
        fail "liveness: node %d committed nothing in (%.0f, %.0f] ms" i since
          now
      else slack := Float.min !slack (t.last_commit.(i) -. since)
  done;
  if Float.is_nan t.min_slack then t.min_slack <- !slack
  else t.min_slack <- Float.min t.min_slack !slack;
  t.checks_passed <- t.checks_passed + 1

type recovery = {
  node : int;
  crashed_at_ms : float;
  recovered_at_ms : float;
  target_height : int;
  caught_up_at_ms : float option;
}

type report = {
  recoveries : recovery list;
  max_quorum_gap_ms : float;
  checks_passed : int;
  bound_ms : float;
  min_slack_ms : float option;
}

let report (t : t) =
  {
    recoveries =
      List.rev_map
        (fun r ->
          {
            node = r.p_node;
            crashed_at_ms = r.p_crashed_at;
            recovered_at_ms = r.p_recovered_at;
            target_height = r.p_target_height;
            caught_up_at_ms = r.p_caught_up_at;
          })
        t.recoveries;
    max_quorum_gap_ms = t.max_quorum_gap;
    checks_passed = t.checks_passed;
    bound_ms = bound t;
    min_slack_ms = (if Float.is_nan t.min_slack then None else Some t.min_slack);
  }
