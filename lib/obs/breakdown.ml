open Bft_types

type view_row = {
  view : int;
  proposer : int option;
  entered_ms : float option;
  propose_ms : float option;
  first_vote_ms : float option;
  cert_ms : float option;
  commit_ms : float option;
  period_ms : float option;
  timeouts : int;
  tc_formed : bool;
  msgs : int;
  bytes : int;
}

type acc = {
  mutable a_proposer : int option;
  mutable a_entered : float option;
  mutable a_propose : float option;
  mutable a_vote : float option;
  mutable a_cert : float option;
  mutable a_commit : float option;
  mutable a_timeouts : int;
  mutable a_tc : bool;
  mutable a_msgs : int;
  mutable a_bytes : int;
}

let min_opt cur x =
  match cur with Some y when y <= x -> cur | Some _ | None -> Some x

let rows events =
  let by_view : (int, acc) Hashtbl.t = Hashtbl.create 256 in
  let get view =
    match Hashtbl.find_opt by_view view with
    | Some a -> a
    | None ->
        let a =
          {
            a_proposer = None;
            a_entered = None;
            a_propose = None;
            a_vote = None;
            a_cert = None;
            a_commit = None;
            a_timeouts = 0;
            a_tc = false;
            a_msgs = 0;
            a_bytes = 0;
          }
        in
        Hashtbl.add by_view view a;
        a
  in
  List.iter
    (fun { Trace.time; node; kind } ->
      match kind with
      | Trace.Node_event ev -> (
          match ev with
          | Probe.View_entered { view; _ } ->
              let a = get view in
              a.a_entered <- min_opt a.a_entered time
          | Probe.Proposal_sent { view; _ } ->
              let a = get view in
              if a.a_propose = None then a.a_proposer <- Some node;
              a.a_propose <- min_opt a.a_propose time
          | Probe.Vote_sent { view; kind; _ } ->
              (* Commit Moonshot's pre-commit votes are a later phase; the
                 proposal->vote gap is about the first consensus vote. *)
              if kind <> "commit" then begin
                let a = get view in
                a.a_vote <- min_opt a.a_vote time
              end
          | Probe.Cert_formed { view; _ } ->
              let a = get view in
              a.a_cert <- min_opt a.a_cert time
          | Probe.Tc_formed { view; _ } -> (get view).a_tc <- true
          | Probe.Timeout_sent { view } ->
              let a = get view in
              a.a_timeouts <- a.a_timeouts + 1
          | Probe.Sync_request _ -> ())
      | Trace.Delivered { view = Some view; bytes; _ } ->
          let a = get view in
          a.a_msgs <- a.a_msgs + 1;
          a.a_bytes <- a.a_bytes + bytes
      | Trace.Delivered { view = None; _ } -> ()
      | Trace.Committed _ -> ()
      (* No view axis; the timeline pp shows them. *)
      | Trace.Fault _ | Trace.Link_report _ | Trace.Client_batch _ -> ()
      | Trace.Quorum_commit { view; _ } ->
          let a = get view in
          a.a_commit <- min_opt a.a_commit time)
    events;
  let unsorted =
    Hashtbl.fold
      (fun view a rows ->
        {
          view;
          proposer = a.a_proposer;
          entered_ms = a.a_entered;
          propose_ms = a.a_propose;
          first_vote_ms = a.a_vote;
          cert_ms = a.a_cert;
          commit_ms = a.a_commit;
          period_ms = None;
          timeouts = a.a_timeouts;
          tc_formed = a.a_tc;
          msgs = a.a_msgs;
          bytes = a.a_bytes;
        }
        :: rows)
      by_view []
  in
  let sorted = List.sort (fun a b -> Int.compare a.view b.view) unsorted in
  (* Block period: gap between consecutive first proposals. *)
  let rec with_periods prev = function
    | [] -> []
    | row :: rest ->
        let period_ms =
          match (prev, row.propose_ms) with
          | Some p, Some q -> Some (q -. p)
          | _ -> None
        in
        let prev = match row.propose_ms with Some _ as p -> p | None -> prev in
        { row with period_ms } :: with_periods prev rest
  in
  with_periods None sorted

type dist = { samples : int; mean : float; p50 : float; p95 : float; p99 : float }

let dist_of = function
  | [] -> None
  | xs ->
      Some
        {
          samples = List.length xs;
          mean = Bft_stats.Descriptive.mean xs;
          p50 = Bft_stats.Descriptive.percentile 50. xs;
          p95 = Bft_stats.Descriptive.percentile 95. xs;
          p99 = Bft_stats.Descriptive.percentile 99. xs;
        }

type phases = {
  propose_to_vote : dist option;
  vote_to_cert : dist option;
  cert_to_commit : dist option;
  propose_to_commit : dist option;
  block_period : dist option;
}

let deltas rows a b =
  List.filter_map
    (fun r -> match (a r, b r) with Some x, Some y -> Some (y -. x) | _ -> None)
    rows

let phases rows =
  {
    propose_to_vote =
      dist_of (deltas rows (fun r -> r.propose_ms) (fun r -> r.first_vote_ms));
    vote_to_cert =
      dist_of (deltas rows (fun r -> r.first_vote_ms) (fun r -> r.cert_ms));
    cert_to_commit =
      dist_of (deltas rows (fun r -> r.cert_ms) (fun r -> r.commit_ms));
    propose_to_commit =
      dist_of (deltas rows (fun r -> r.propose_ms) (fun r -> r.commit_ms));
    block_period = dist_of (List.filter_map (fun r -> r.period_ms) rows);
  }

let cell_opt = function
  | None -> "-"
  | Some x -> Printf.sprintf "%.1f" x

let delta_cell a b =
  match (a, b) with
  | Some x, Some y -> Printf.sprintf "%.1f" (y -. x)
  | _ -> "-"

let flags r =
  String.concat ""
    [ (if r.timeouts > 0 then "T" else ""); (if r.tc_formed then "C" else "") ]

let table rows =
  let t =
    Bft_stats.Table.create
      [
        "view"; "ldr"; "propose@"; "p->vote"; "vote->cert"; "cert->commit";
        "total"; "period"; "msgs"; "kB"; "flags";
      ]
  in
  List.iter
    (fun r ->
      Bft_stats.Table.add_row t
        [
          string_of_int r.view;
          (match r.proposer with Some p -> string_of_int p | None -> "-");
          cell_opt r.propose_ms;
          delta_cell r.propose_ms r.first_vote_ms;
          delta_cell r.first_vote_ms r.cert_ms;
          delta_cell r.cert_ms r.commit_ms;
          delta_cell r.propose_ms r.commit_ms;
          cell_opt r.period_ms;
          string_of_int r.msgs;
          Printf.sprintf "%.1f" (float_of_int r.bytes /. 1000.);
          flags r;
        ])
    rows;
  t

let phase_table p =
  let t =
    Bft_stats.Table.create [ "phase"; "views"; "mean ms"; "p50"; "p95"; "p99" ]
  in
  let row name = function
    | None -> Bft_stats.Table.add_row t [ name; "0"; "-"; "-"; "-"; "-" ]
    | Some d ->
        Bft_stats.Table.add_row t
          [
            name;
            string_of_int d.samples;
            Printf.sprintf "%.1f" d.mean;
            Printf.sprintf "%.1f" d.p50;
            Printf.sprintf "%.1f" d.p95;
            Printf.sprintf "%.1f" d.p99;
          ]
  in
  row "proposal -> first vote" p.propose_to_vote;
  row "first vote -> certificate" p.vote_to_cert;
  row "certificate -> quorum commit" p.cert_to_commit;
  row "proposal -> quorum commit" p.propose_to_commit;
  row "block period (inter-proposal)" p.block_period;
  t
