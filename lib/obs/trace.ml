open Bft_types

type delivery_class = [ `Proposal | `Vote | `Timeout | `Other ]

type fault =
  | Crash
  | Recover
  | Partition_start
  | Partition_heal
  | Loss_start
  | Loss_end
  | Delay_start
  | Delay_end

type kind =
  | Node_event of Probe.event
  | Delivered of {
      src : int;
      cls : delivery_class;
      view : int option;
      bytes : int;
    }
  | Committed of { view : int; height : int }
  | Quorum_commit of { view : int; height : int }
  | Fault of fault
  | Link_report of { peer : int; malformed : int; dropped : int }
  | Client_batch of {
      view : int;
      height : int;
      count : int;
      pending : int;
      p50_ms : float;
      p99_ms : float;
    }

type event = { time : float; node : int; kind : kind }

type t = {
  enabled : bool;
  mutable events : event list;  (* newest first *)
  mutable count : int;
}

let create () = { enabled = true; events = []; count = 0 }
let disabled () = { enabled = false; events = []; count = 0 }
let enabled t = t.enabled

let emit t ev =
  if t.enabled then begin
    t.events <- ev :: t.events;
    t.count <- t.count + 1
  end

let length t = t.count
let events t = List.rev t.events

let clear t =
  t.events <- [];
  t.count <- 0

let class_name = function
  | `Proposal -> "proposal"
  | `Vote -> "vote"
  | `Timeout -> "timeout"
  | `Other -> "other"

let fault_name = function
  | Crash -> "crash"
  | Recover -> "recover"
  | Partition_start -> "partition"
  | Partition_heal -> "heal"
  | Loss_start -> "loss_start"
  | Loss_end -> "loss_end"
  | Delay_start -> "delay_start"
  | Delay_end -> "delay_end"

(* Compact deterministic float: fixed six decimals, trailing zeros trimmed.
   Identical inputs yield identical bytes, which is what the determinism
   guarantee (same seed, byte-identical JSONL) rests on. *)
let float_str x =
  let s = Printf.sprintf "%.6f" x in
  let rec trim i = if s.[i] = '0' then trim (i - 1) else i in
  let last = trim (String.length s - 1) in
  let last = if s.[last] = '.' then last - 1 else last in
  String.sub s 0 (last + 1)

let buf_field b ~first name value =
  if not first then Buffer.add_char b ',';
  Buffer.add_char b '"';
  Buffer.add_string b name;
  Buffer.add_string b "\":";
  Buffer.add_string b value

let buf_str_field b ~first name value =
  buf_field b ~first name (Printf.sprintf "%S" value)

let add_event_json b { time; node; kind } =
  Buffer.add_char b '{';
  buf_field b ~first:true "t" (float_str time);
  buf_field b ~first:false "node" (string_of_int node);
  (match kind with
  | Node_event ev -> (
      buf_str_field b ~first:false "ev" (Probe.name ev);
      match ev with
      | Probe.View_entered { view; via } ->
          buf_field b ~first:false "view" (string_of_int view);
          buf_str_field b ~first:false "via" (Probe.via_name via)
      | Probe.Proposal_sent { view; height; kind } ->
          buf_field b ~first:false "view" (string_of_int view);
          buf_field b ~first:false "height" (string_of_int height);
          buf_str_field b ~first:false "kind" (Probe.proposal_kind_name kind)
      | Probe.Vote_sent { view; height; kind } ->
          buf_field b ~first:false "view" (string_of_int view);
          buf_field b ~first:false "height" (string_of_int height);
          buf_str_field b ~first:false "kind" kind
      | Probe.Cert_formed { view; height; signers } ->
          buf_field b ~first:false "view" (string_of_int view);
          buf_field b ~first:false "height" (string_of_int height);
          buf_field b ~first:false "signers" (string_of_int signers)
      | Probe.Tc_formed { view; signers } ->
          buf_field b ~first:false "view" (string_of_int view);
          buf_field b ~first:false "signers" (string_of_int signers)
      | Probe.Timeout_sent { view } ->
          buf_field b ~first:false "view" (string_of_int view)
      | Probe.Sync_request { attempt } ->
          buf_field b ~first:false "attempt" (string_of_int attempt))
  | Delivered { src; cls; view; bytes } ->
      buf_str_field b ~first:false "ev" "deliver";
      buf_field b ~first:false "src" (string_of_int src);
      buf_str_field b ~first:false "class" (class_name cls);
      (match view with
      | Some v -> buf_field b ~first:false "view" (string_of_int v)
      | None -> ());
      buf_field b ~first:false "bytes" (string_of_int bytes)
  | Committed { view; height } ->
      buf_str_field b ~first:false "ev" "commit";
      buf_field b ~first:false "view" (string_of_int view);
      buf_field b ~first:false "height" (string_of_int height)
  | Quorum_commit { view; height } ->
      buf_str_field b ~first:false "ev" "quorum_commit";
      buf_field b ~first:false "view" (string_of_int view);
      buf_field b ~first:false "height" (string_of_int height)
  | Fault fault ->
      buf_str_field b ~first:false "ev" "fault";
      buf_str_field b ~first:false "fault" (fault_name fault)
  | Link_report { peer; malformed; dropped } ->
      buf_str_field b ~first:false "ev" "link_report";
      buf_field b ~first:false "peer" (string_of_int peer);
      buf_field b ~first:false "malformed" (string_of_int malformed);
      buf_field b ~first:false "dropped" (string_of_int dropped)
  | Client_batch { view; height; count; pending; p50_ms; p99_ms } ->
      buf_str_field b ~first:false "ev" "client_batch";
      buf_field b ~first:false "view" (string_of_int view);
      buf_field b ~first:false "height" (string_of_int height);
      buf_field b ~first:false "count" (string_of_int count);
      buf_field b ~first:false "pending" (string_of_int pending);
      buf_field b ~first:false "p50_ms" (float_str p50_ms);
      buf_field b ~first:false "p99_ms" (float_str p99_ms));
  Buffer.add_char b '}'

let event_to_json ev =
  let b = Buffer.create 128 in
  add_event_json b ev;
  Buffer.contents b

let to_jsonl t =
  let b = Buffer.create (4096 + (t.count * 96)) in
  List.iter
    (fun ev ->
      add_event_json b ev;
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

let output oc t = output_string oc (to_jsonl t)

let pp_event ppf { time; node; kind } =
  match kind with
  | Node_event ev ->
      Format.fprintf ppf "%8.1f ms  node %d  %a" time node Probe.pp ev
  | Delivered { src; cls; view; bytes } ->
      Format.fprintf ppf "%8.1f ms  %d -> %d  %s%a (%dB)" time src node
        (class_name cls)
        (fun ppf -> function
          | Some v -> Format.fprintf ppf " v=%d" v
          | None -> ())
        view bytes
  | Committed { view; height } ->
      Format.fprintf ppf "%8.1f ms  node %d  COMMIT v=%d h=%d" time node view
        height
  | Quorum_commit { view; height } ->
      Format.fprintf ppf "%8.1f ms  node %d  QUORUM-COMMIT v=%d h=%d" time
        node view height
  | Fault fault ->
      if node >= 0 then
        Format.fprintf ppf "%8.1f ms  node %d  FAULT %s" time node
          (fault_name fault)
      else Format.fprintf ppf "%8.1f ms  network  FAULT %s" time (fault_name fault)
  | Link_report { peer; malformed; dropped } ->
      Format.fprintf ppf "%8.1f ms  node %d  LINK peer=%d malformed=%d dropped=%d"
        time node peer malformed dropped
  | Client_batch { view; height; count; pending; p50_ms; p99_ms } ->
      Format.fprintf ppf
        "%8.1f ms  node %d  CLIENT-BATCH v=%d h=%d count=%d pending=%d \
         p50=%.1fms p99=%.1fms"
        time node view height count pending p50_ms p99_ms
