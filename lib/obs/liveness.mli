(** Online safety/liveness monitor for fault-injection runs.

    The harness feeds it every commit, quorum commit, crash and recovery;
    it maintains per-node progress state and two kinds of assertion:

    - {e safety}: at most one block hash ever quorum-commits per height
      (redundant with the metrics collector's commit-log cross-check, but
      cheap and independent);
    - {e liveness}: after the bound [k * delta] has elapsed past a
      disruption-free point [since] (GST, the last heal or the last
      recovery — the harness schedules one {!check} per such point), the
      global quorum-commit height must have grown, and every correct node
      that was up the whole window must have committed something.

    It also measures time-to-catch-up per recovered node (first local
    commit at or above the global quorum height at recovery time) and the
    largest gap between consecutive quorum commits after GST. *)

exception Violation of string

type t

(** [create ~n ~delta ~gst ()] — [k] (default {!default_k}) scales the
    liveness bound [k * delta]; it accommodates a worst-case view change
    (leader timeout, TC formation, fallback proposal) plus commit depth. *)
val create : ?k:float -> n:int -> delta:float -> gst:float -> unit -> t

val default_k : float

(** The bound [k * delta], ms. *)
val bound : t -> float

(** Exclude a node from the per-node liveness assertion (Byzantine nodes
    are outside the bound's promise). *)
val set_exempt : t -> int -> unit

val note_commit : t -> node:int -> time:float -> height:int -> unit

(** [hash] is the committed block's hash (as int) — used for the per-height
    uniqueness check.  Raises {!Violation} on a conflicting quorum commit. *)
val note_quorum_commit : t -> time:float -> height:int -> hash:int -> unit

val note_crash : t -> node:int -> time:float -> unit
val note_recover : t -> node:int -> time:float -> unit

(** Assert progress over the window [(since, now]]; the harness calls this
    at [since + bound] when no further disruption falls inside the window.
    Raises {!Violation} when the bound is missed. *)
val check : t -> since:float -> now:float -> unit

type recovery = {
  node : int;
  crashed_at_ms : float;
  recovered_at_ms : float;
  target_height : int;
      (** Global quorum-commit height at the moment of recovery. *)
  caught_up_at_ms : float option;
      (** First local commit reaching [target_height]; [None] = never. *)
}

type report = {
  recoveries : recovery list;  (** In recovery order. *)
  max_quorum_gap_ms : float;
      (** Largest gap between consecutive quorum commits after GST. *)
  checks_passed : int;
  bound_ms : float;
  min_slack_ms : float option;
      (** Smallest margin by which any passed check cleared its window: the
          latest-committing obligated entity's last commit minus the
          window start, minimized over checks.  Near zero = a near-miss —
          the run stayed live by luck; [None] = no check ever ran.  The
          model checker's schedule search uses the analogous commit-free
          walk count as its fitness near-miss signal. *)
}

val report : t -> report
