(** Structured run traces: a typed event sink the experiment harness fills
    during a simulation, with deterministic JSONL export.

    A trace records four families of events on a shared simulated-time
    axis:

    - {e node events} ({!Bft_types.Probe.event}): proposal broadcasts, vote
      sends, local certificate/TC assembly, timeouts, sync requests —
      reported by the protocol nodes through their environment's probe;
    - {e deliveries}: every message handed to a handler, with its coarse
      class, wire size and (when the message has one) view — reported by
      the simulator's delivery tap;
    - {e commits}: each node's commit of a block;
    - {e quorum commits}: the moment the [(2f+1)]-th node commits a block —
      the paper's latency endpoint — reported by the metrics collector.

    The sink is append-only and ordered by emission, which in a
    deterministic simulation means ordered by (time, engine event order):
    two runs with the same configuration and seed produce byte-identical
    {!to_jsonl} output.  A {!disabled} sink records nothing and the harness
    installs no instrumentation for it, so an untraced run's execution is
    exactly the seed benchmark's. *)

open Bft_types

type delivery_class = [ `Proposal | `Vote | `Timeout | `Other ]

(** Fault-injection milestones (reported by the harness's fault
    interpreter): node crashes and recoveries, and the opening/closing
    edges of partition, loss and delay windows. *)
type fault =
  | Crash
  | Recover
  | Partition_start
  | Partition_heal
  | Loss_start
  | Loss_end
  | Delay_start
  | Delay_end

type kind =
  | Node_event of Probe.event
  | Delivered of {
      src : int;
      cls : delivery_class;
      view : int option;
      bytes : int;
    }
  | Committed of { view : int; height : int }
  | Quorum_commit of { view : int; height : int }
  | Fault of fault
  | Link_report of { peer : int; malformed : int; dropped : int }
      (** Live-transport link health, emitted by {!Bft_net.Tcp} at node
          shutdown for every peer with nonzero counters: [malformed] =
          undecodable frame bodies received from [peer]; [dropped] =
          frames to [peer] dropped at send time (fault interposition,
          dead peer, reconnect backoff). *)
  | Client_batch of {
      view : int;
      height : int;
      count : int;
      pending : int;
      p50_ms : float;
      p99_ms : float;
    }
      (** Client-traffic runs: a quorum-committed block drained [count]
          mempool commands, leaving [pending] admitted ones waiting.
          [p50_ms]/[p99_ms] are the cumulative client-perceived end-to-end
          latency percentiles (submit → quorum commit) at this point of the
          run.  Emitted once per quorum-committed block alongside
          {!Quorum_commit}. *)

(** [node] is the acting node: the emitter for node events, the receiver
    for deliveries, the committing node for (quorum) commits, the affected
    node for crash/recover faults ([-1] for network-wide fault windows). *)
type event = { time : float; node : int; kind : kind }

type t

(** A recording sink. *)
val create : unit -> t

(** A sink that records nothing; {!emit} on it is a no-op and
    [Bft_runtime.Harness] skips instrumentation entirely when given one. *)
val disabled : unit -> t

val enabled : t -> bool

(** Append an event (no-op on a disabled sink). *)
val emit : t -> event -> unit

(** Number of events recorded. *)
val length : t -> int

(** Recorded events, oldest first. *)
val events : t -> event list

(** Drop all recorded events (the sink stays enabled). *)
val clear : t -> unit

(** One JSON object, e.g.
    [{"t":20.5,"node":1,"ev":"vote_send","view":1,"height":1,"kind":"opt"}].
    Keys: ["t"] (ms), ["node"], ["ev"] plus event-specific fields. *)
val event_to_json : event -> string

(** The whole trace, one JSON object per line, oldest first.  Deterministic:
    same events, same bytes. *)
val to_jsonl : t -> string

(** Write {!to_jsonl} to a channel. *)
val output : out_channel -> t -> unit

val class_name : delivery_class -> string
val fault_name : fault -> string

(** One human-readable timeline line, e.g.
    [" 20.0 ms  0 -> 2  proposal v=2 (278B)"]. *)
val pp_event : Format.formatter -> event -> unit
