type stats = {
  mutable events_processed : int;
  mutable messages_sent : int;
  mutable bytes_sent : int;
}

(* Message traffic — the O(n^2)-per-view hot path — is scheduled as pooled
   mutable cells carrying (src, dst, dst_epoch, msg), so steady-state send
   traffic reuses flat records instead of allocating one block per send:
   when a message event executes, its cell returns to a per-engine free
   stack and the next [send] claims it back.  Each cell is allocated
   together with its [Msg] wrapper (tied by [c_ev]), so re-enqueueing costs
   zero allocations.  Timers and one-off scheduled actions are inherently
   code, so those arms keep a closure.

   A [Batch] is one heap entry standing for a whole multicast fan-out whose
   copies all arrive at the same instant (uniform latency, no jitter, no
   bandwidth): destinations are packed into an int array and delivered in
   ascending order, which is exactly the order the per-destination events
   would have popped in (same time, consecutive seqs).  This turns the
   O(n log n) heap traffic of a fan-out into O(log n).

   Message cells additionally carry the destination's incarnation epoch at
   enqueue time: crashing a node bumps its epoch, so in-flight events
   addressed to the previous incarnation are dropped on execution instead
   of resurrecting state the crash was supposed to lose. *)
type 'msg event =
  | Msg of 'msg cell
  | Batch of 'msg batch
  | Timer of timer
  | Thunk of (unit -> unit)

and 'msg cell = {
  mutable c_src : int;
  mutable c_dst : int;
  mutable c_epoch : int;
  (* [true]: hand to the handler (CPU queue already paid, or not modelled);
     [false]: network arrival — run through [dst]'s serial CPU queue. *)
  mutable c_deliver : bool;
  mutable c_msg : 'msg;
  c_ev : 'msg event;  (* this cell's own [Msg] wrapper, allocated once *)
}

and 'msg batch = {
  mutable b_src : int;
  mutable b_msg : 'msg;
  mutable b_count : int;
  mutable b_slots : int array;  (* [(epoch lsl slot_bits) lor dst] *)
  b_ev : 'msg event;
}

and timer = {
  mutable cancelled : bool;
  owner : int;  (* -1 = unowned; survives crashes *)
  epoch : int;
  action : unit -> unit;
}

(* Destination index width inside a batch slot; the epoch occupies the bits
   above.  Bounds n at 2^21 nodes, far past any simulated world. *)
let slot_bits = 21
let slot_mask = (1 lsl slot_bits) - 1

type 'msg pending = 'msg event

type 'msg pending_view =
  | Pending_message of { src : int; dst : int; msg : 'msg }
  | Pending_timer of { owner : int }
  | Pending_task

type 'msg t = {
  n : int;
  network : Network.t;
  queue : 'msg event Event_queue.t;
  handlers : (src:int -> 'msg -> unit) array;
  node_rngs : Rng.t array;
  net_rng : Rng.t;
  egress_free : float array;
  cpu_free : float array;
  msg_size : 'msg -> int;
  cpu_cost : ('msg -> float) option;
  mutable clock : float;
  (* Fault state: [down.(i)] quenches node [i]'s sends, deliveries and
     timers; [epochs.(i)] counts its incarnations so events and timers from
     before a crash stay dead after recovery. *)
  down : bool array;
  epochs : int array;
  (* Free stacks for message cells and fan-out batches.  The engine is
     single-threaded, so one pool serves all nodes; it grows to the
     steady-state number of in-flight messages and then every send is
     allocation-free.  Pooling is disabled under a capture hook — the
     hook's owner holds events across dispatches. *)
  mutable cell_pool : 'msg cell array;
  mutable cell_pool_len : int;
  mutable batch_pool : 'msg batch array;
  mutable batch_pool_len : int;
  (* The filter, delay overlay and tap default to no-ops; the [_installed]
     flags let the per-message path skip the indirect call entirely in the
     common uninstrumented, unpartitioned run. *)
  mutable filter : src:int -> dst:int -> now:float -> bool;
  mutable filter_installed : bool;
  mutable delay : src:int -> dst:int -> now:float -> float;
  mutable delay_installed : bool;
  mutable tap : time:float -> src:int -> dst:int -> 'msg -> unit;
  mutable tap_installed : bool;
  (* An external scheduler: when installed, every event that would enter the
     time-ordered queue is handed to the hook instead, and the hook's owner
     decides when (and whether) to [dispatch] it.  This is what lets the
     model checker explore arbitrary delivery/firing orders through the same
     engine the experiments run on. *)
  mutable capture : ('msg event -> unit) option;
  mutable capture_installed : bool;
  stats : stats;
}

(* [Float.max] is a cross-module call with NaN/signed-zero handling; clock
   and queue times are finite and non-negative here, so a two-way compare
   is equivalent on the hot path. *)
let fmax (a : float) (b : float) = if a < b then b else a

let create ~n ~network ~seed ~msg_size ?cpu_cost () =
  if n < 1 then invalid_arg "Engine.create: n < 1";
  if n > slot_mask then invalid_arg "Engine.create: n too large";
  let root = Rng.create seed in
  {
    n;
    network;
    queue = Event_queue.create ();
    handlers = Array.make n (fun ~src:_ _ -> ());
    node_rngs = Array.init n (fun _ -> Rng.split root);
    net_rng = Rng.split root;
    egress_free = Array.make n 0.;
    cpu_free = Array.make n 0.;
    msg_size;
    cpu_cost;
    clock = 0.;
    down = Array.make n false;
    epochs = Array.make n 0;
    cell_pool = [||];
    cell_pool_len = 0;
    batch_pool = [||];
    batch_pool_len = 0;
    filter = (fun ~src:_ ~dst:_ ~now:_ -> true);
    filter_installed = false;
    delay = (fun ~src:_ ~dst:_ ~now:_ -> 0.);
    delay_installed = false;
    tap = (fun ~time:_ ~src:_ ~dst:_ _ -> ());
    tap_installed = false;
    capture = None;
    capture_installed = false;
    stats = { events_processed = 0; messages_sent = 0; bytes_sent = 0 };
  }

let set_handler t i h = t.handlers.(i) <- h

(* {2 Pools} *)

let fresh_cell ~src ~dst ~epoch ~deliver msg =
  let rec c =
    {
      c_src = src;
      c_dst = dst;
      c_epoch = epoch;
      c_deliver = deliver;
      c_msg = msg;
      c_ev = Msg c;
    }
  in
  c.c_ev

let acquire_cell t ~src ~dst ~epoch ~deliver msg =
  let len = t.cell_pool_len in
  if len > 0 then begin
    let c = Array.unsafe_get t.cell_pool (len - 1) in
    t.cell_pool_len <- len - 1;
    c.c_src <- src;
    c.c_dst <- dst;
    c.c_epoch <- epoch;
    c.c_deliver <- deliver;
    c.c_msg <- msg;
    c.c_ev
  end
  else fresh_cell ~src ~dst ~epoch ~deliver msg

let release_cell t c =
  if not t.capture_installed then begin
    let len = t.cell_pool_len in
    if len = Array.length t.cell_pool then begin
      let pool = Array.make (if len = 0 then 8 else 2 * len) c in
      Array.blit t.cell_pool 0 pool 0 len;
      t.cell_pool <- pool
    end;
    Array.unsafe_set t.cell_pool len c;
    t.cell_pool_len <- len + 1
  end

(* Batches only exist on the captureless fast path, so acquisition never
   consults the capture flag. *)
let acquire_batch t ~src msg =
  let len = t.batch_pool_len in
  let b =
    if len > 0 then begin
      let b = Array.unsafe_get t.batch_pool (len - 1) in
      t.batch_pool_len <- len - 1;
      b.b_src <- src;
      b.b_msg <- msg;
      b
    end
    else
      let rec b =
        { b_src = src; b_msg = msg; b_count = 0; b_slots = [||]; b_ev = Batch b }
      in
      b
  in
  if Array.length b.b_slots < t.n then b.b_slots <- Array.make t.n 0;
  b

let release_batch t b =
  let len = t.batch_pool_len in
  if len = Array.length t.batch_pool then begin
    let pool = Array.make (if len = 0 then 4 else 2 * len) b in
    Array.blit t.batch_pool 0 pool 0 len;
    t.batch_pool <- pool
  end;
  Array.unsafe_set t.batch_pool len b;
  t.batch_pool_len <- len + 1

(* All event scheduling funnels through here so an installed capture hook
   sees every message, timer and thunk the simulation would otherwise order
   by time. *)
let enqueue t ~time ev =
  match t.capture with
  | None -> Event_queue.push t.queue ~time ev
  | Some f -> f ev

(* Message-event scheduling: pooled cells when the engine owns ordering,
   fresh cells under a capture hook (whose owner may hold them
   indefinitely). *)
let enqueue_msg t ~time ~src ~dst ~epoch ~deliver msg =
  match t.capture with
  | None ->
      Event_queue.push t.queue ~time (acquire_cell t ~src ~dst ~epoch ~deliver msg)
  | Some f -> f (fresh_cell ~src ~dst ~epoch ~deliver msg)

let set_capture t f =
  t.capture <- Some f;
  t.capture_installed <- true

let inspect = function
  | Msg c -> Pending_message { src = c.c_src; dst = c.c_dst; msg = c.c_msg }
  | Batch _ ->
      (* Batches are never created under a capture hook, and only captured
         events are inspectable. *)
      assert false
  | Timer tm -> Pending_timer { owner = tm.owner }
  | Thunk _ -> Pending_task

let set_link_filter t f =
  t.filter <- f;
  t.filter_installed <- true

let set_link_delay t f =
  t.delay <- f;
  t.delay_installed <- true

let set_delivery_tap t f =
  t.tap <- f;
  t.tap_installed <- true
let now t = t.clock
let n t = t.n
let node_rng t i = t.node_rngs.(i)

let check_node t name i =
  if i < 0 || i >= t.n then invalid_arg ("Engine." ^ name ^ ": node out of range")

let is_down t i =
  check_node t "is_down" i;
  t.down.(i)

(* Crashing loses all volatile state: the handler is detached, in-flight
   events and pending timers die via the epoch bump, and any CPU backlog is
   forgotten.  The node's durable state (a WAL, if the protocol keeps one)
   lives outside the engine. *)
let crash t i =
  check_node t "crash" i;
  if not t.down.(i) then begin
    t.down.(i) <- true;
    t.epochs.(i) <- t.epochs.(i) + 1;
    t.handlers.(i) <- (fun ~src:_ _ -> ());
    t.cpu_free.(i) <- 0.
  end

(* Recovery only clears the down flag; the caller installs a fresh handler
   (a node rebuilt from durable state) and starts it. *)
let recover t i =
  check_node t "recover" i;
  t.down.(i) <- false

let deliver t ~src ~dst ~epoch msg =
  if (not (Array.unsafe_get t.down dst))
     && Array.unsafe_get t.epochs dst = epoch
  then begin
    if t.tap_installed then t.tap ~time:t.clock ~src ~dst msg;
    t.handlers.(dst) ~src msg
  end

(* Run the message through [dst]'s serial CPU queue before handing it to the
   handler; invoked at the message's network arrival time. *)
let process t ~src ~dst ~epoch msg =
  if (not (Array.unsafe_get t.down dst))
     && Array.unsafe_get t.epochs dst = epoch
  then
    match t.cpu_cost with
    | None -> deliver t ~src ~dst ~epoch msg
    | Some cost ->
        let start = fmax t.clock (Array.unsafe_get t.cpu_free dst) in
        let finish = start +. cost msg in
        Array.unsafe_set t.cpu_free dst finish;
        if finish <= t.clock then deliver t ~src ~dst ~epoch msg
        else enqueue_msg t ~time:finish ~src ~dst ~epoch ~deliver:true msg

(* One network send with the byte size already computed and accounted. *)
let send_sized t ~src ~dst ~size msg =
  if Array.unsafe_get t.down src then ()
  else if dst = src then
    (* Local hand-off: no serialization, no propagation, no CPU charge. *)
    enqueue_msg t ~time:t.clock ~src ~dst
      ~epoch:(Array.unsafe_get t.epochs dst)
      ~deliver:true msg
  else if (not t.filter_installed) || t.filter ~src ~dst ~now:t.clock then begin
    let drop = t.network.Network.drop_prob in
    if drop > 0. && Rng.float t.net_rng 1. < drop then ()
    else begin
      let arrival =
        Network.delivery_into t.network t.net_rng ~now:t.clock
          ~egress:t.egress_free ~src ~dst ~size
      in
      let arrival =
        if t.delay_installed then arrival +. t.delay ~src ~dst ~now:t.clock
        else arrival
      in
      let epoch = Array.unsafe_get t.epochs dst in
      enqueue_msg t ~time:arrival ~src ~dst ~epoch ~deliver:false msg;
      let dup = t.network.Network.duplicate_prob in
      if dup > 0. && Rng.float t.net_rng 1. < dup then begin
        (* Network-level duplication: the copy trails the original slightly. *)
        let lag = Rng.float t.net_rng (0.5 *. t.network.Network.delta) in
        enqueue_msg t ~time:(arrival +. lag) ~src ~dst ~epoch ~deliver:false msg
      end
    end
  end

let send t ~src ~dst msg =
  if Array.unsafe_get t.down src then ()
  else begin
    let size = t.msg_size msg in
    t.stats.messages_sent <- t.stats.messages_sent + 1;
    t.stats.bytes_sent <- t.stats.bytes_sent + size;
    send_sized t ~src ~dst ~size msg
  end

(* Per-destination fan-out, one event each — the general multicast path. *)
let fanout_sends t ~src ~size msg =
  if not t.capture_installed then Event_queue.reserve t.queue (t.n - 1);
  for dst = 0 to t.n - 1 do
    if dst <> src then send_sized t ~src ~dst ~size msg
  done

let multicast t ~src msg =
  if Array.unsafe_get t.down src then ()
  else begin
    (* The wire size is per-message, not per-destination: compute it and the
       traffic accounting once for the whole fan-out.  The local self
       hand-off is not a network send (no serialization, no propagation),
       so it is excluded from the traffic stats: n - 1 copies hit the
       wire. *)
    let size = t.msg_size msg in
    let fanout = t.n - 1 in
    t.stats.messages_sent <- t.stats.messages_sent + fanout;
    t.stats.bytes_sent <- t.stats.bytes_sent + (size * fanout);
    send_sized t ~src ~dst:src ~size msg;
    if fanout > 0 then begin
      let net = t.network in
      (* When every copy of the fan-out arrives at the same instant —
         constant latency, no bandwidth serialization, and no per-link
         instrumentation that could split arrivals — the n - 1 events
         collapse into one Batch heap entry.  Executing the batch delivers
         in ascending destination order, which is exactly the order the
         individual events would have popped in (equal time, consecutive
         seqs), so the schedule is bit-identical to the general path. *)
      match net.Network.latency with
      | Latency.Uniform { base; jitter }
        when jitter <= 0.
             && (not t.capture_installed)
             && (not t.filter_installed)
             && (not t.delay_installed)
             && net.Network.bandwidth_bps = None
             && net.Network.drop_prob = 0.
             && net.Network.duplicate_prob = 0. ->
          let start = fmax t.clock (Array.unsafe_get t.egress_free src) in
          if start >= net.Network.gst || net.Network.pre_gst_extra = 0. then begin
            (* Zero serialization time: the egress link frees at [start],
               matching n - 1 [delivery_into] calls. *)
            Array.unsafe_set t.egress_free src start;
            let arrival = start +. base in
            let b = acquire_batch t ~src msg in
            let slots = b.b_slots in
            let k = ref 0 in
            for dst = 0 to t.n - 1 do
              if dst <> src then begin
                Array.unsafe_set slots !k
                  ((Array.unsafe_get t.epochs dst lsl slot_bits) lor dst);
                incr k
              end
            done;
            b.b_count <- fanout;
            Event_queue.push t.queue ~time:arrival b.b_ev
          end
          else
            (* Pre-GST extra delay draws per-destination randomness. *)
            fanout_sends t ~src ~size msg
      | _ -> fanout_sends t ~src ~size msg
    end
  end

let set_timer ?(owner = -1) t delay f =
  if delay < 0. then invalid_arg "Engine.set_timer: negative delay";
  let epoch = if owner >= 0 then t.epochs.(owner) else 0 in
  let tm = { cancelled = false; owner; epoch; action = f } in
  enqueue t ~time:(t.clock +. delay) (Timer tm);
  fun () -> tm.cancelled <- true

let schedule_at t time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  enqueue t ~time (Thunk f)

let timer_live t tm =
  (not tm.cancelled)
  && (tm.owner < 0
     || ((not t.down.(tm.owner)) && t.epochs.(tm.owner) = tm.epoch))

let exec t = function
  | Msg c ->
      (* Read the cell into locals, then release it before running protocol
         code: a handler's own sends may immediately reclaim it. *)
      let src = c.c_src
      and dst = c.c_dst
      and epoch = c.c_epoch
      and is_deliver = c.c_deliver in
      let msg = c.c_msg in
      release_cell t c;
      if is_deliver then deliver t ~src ~dst ~epoch msg
      else process t ~src ~dst ~epoch msg
  | Batch b ->
      let src = b.b_src and count = b.b_count in
      let msg = b.b_msg in
      let slots = b.b_slots in
      for k = 0 to count - 1 do
        let slot = Array.unsafe_get slots k in
        process t ~src ~dst:(slot land slot_mask) ~epoch:(slot lsr slot_bits)
          msg
      done;
      (* Only released after the loop: a handler's nested multicast may
         acquire a batch, and it must not be this one mid-iteration. *)
      release_batch t b
  | Timer tm -> if timer_live t tm then tm.action ()
  | Thunk f -> f ()

let pending_live t = function
  | Msg c -> (not t.down.(c.c_dst)) && t.epochs.(c.c_dst) = c.c_epoch
  | Batch _ -> assert false (* never captured; see [inspect] *)
  | Timer tm -> timer_live t tm
  | Thunk _ -> true

let dispatch t ev =
  t.stats.events_processed <- t.stats.events_processed + 1;
  exec t ev

let advance_clock t time =
  if time < t.clock then invalid_arg "Engine.advance_clock: time in the past";
  t.clock <- time

let run t ~until =
  let rec loop () =
    if Event_queue.is_empty t.queue then
      (* The run nominally reaches [until] even when no event is left:
         leaving the clock at the last event's time would make a
         subsequent [now] or [set_timer] act in the past. *)
      t.clock <- fmax t.clock until
    else begin
      let time = Event_queue.min_time t.queue in
      if time > until then t.clock <- until
      else begin
        let ev = Event_queue.take t.queue in
        t.clock <- time;
        (* A batch is [b_count] logical message events; read before [exec]
           recycles it. *)
        t.stats.events_processed <-
          (t.stats.events_processed
          + match ev with Batch b -> b.b_count | Msg _ | Timer _ | Thunk _ -> 1);
        exec t ev;
        loop ()
      end
    end
  in
  loop ()

let stats t = t.stats
