type stats = {
  mutable events_processed : int;
  mutable messages_sent : int;
  mutable bytes_sent : float;
}

(* Message traffic — the O(n^2)-per-view hot path — is scheduled as flat
   constructors carrying (src, dst, msg), so a send allocates one small
   block instead of capturing a closure.  Timers and one-off scheduled
   actions are inherently code, so those arms keep a closure.

   Deliver/Process additionally carry the destination's incarnation epoch
   at enqueue time: crashing a node bumps its epoch, so in-flight events
   addressed to the previous incarnation are dropped on execution instead
   of resurrecting state the crash was supposed to lose. *)
type 'msg event =
  | Deliver of int * int * int * 'msg
      (** [(src, dst, dst_epoch, msg)]: hand [msg] from [src] to [dst]'s
          handler (CPU queue already paid, or not modelled). *)
  | Process of int * int * int * 'msg
      (** [(src, dst, dst_epoch, msg)]: network arrival of [msg] at [dst]:
          run it through [dst]'s serial CPU queue, then deliver. *)
  | Timer of timer
  | Thunk of (unit -> unit)

and timer = {
  mutable cancelled : bool;
  owner : int;  (* -1 = unowned; survives crashes *)
  epoch : int;
  action : unit -> unit;
}

type 'msg pending = 'msg event

type 'msg pending_view =
  | Pending_message of { src : int; dst : int; msg : 'msg }
  | Pending_timer of { owner : int }
  | Pending_task

type 'msg t = {
  n : int;
  network : Network.t;
  queue : 'msg event Event_queue.t;
  handlers : (src:int -> 'msg -> unit) array;
  node_rngs : Rng.t array;
  net_rng : Rng.t;
  egress_free : float array;
  cpu_free : float array;
  msg_size : 'msg -> int;
  cpu_cost : ('msg -> float) option;
  mutable clock : float;
  (* Fault state: [down.(i)] quenches node [i]'s sends, deliveries and
     timers; [epochs.(i)] counts its incarnations so events and timers from
     before a crash stay dead after recovery. *)
  down : bool array;
  epochs : int array;
  (* The filter, delay overlay and tap default to no-ops; the [_installed]
     flags let the per-message path skip the indirect call entirely in the
     common uninstrumented, unpartitioned run. *)
  mutable filter : src:int -> dst:int -> now:float -> bool;
  mutable filter_installed : bool;
  mutable delay : src:int -> dst:int -> now:float -> float;
  mutable delay_installed : bool;
  mutable tap : time:float -> src:int -> dst:int -> 'msg -> unit;
  mutable tap_installed : bool;
  (* An external scheduler: when installed, every event that would enter the
     time-ordered queue is handed to the hook instead, and the hook's owner
     decides when (and whether) to [dispatch] it.  This is what lets the
     model checker explore arbitrary delivery/firing orders through the same
     engine the experiments run on. *)
  mutable capture : ('msg event -> unit) option;
  stats : stats;
}

let create ~n ~network ~seed ~msg_size ?cpu_cost () =
  if n < 1 then invalid_arg "Engine.create: n < 1";
  let root = Rng.create seed in
  {
    n;
    network;
    queue = Event_queue.create ();
    handlers = Array.make n (fun ~src:_ _ -> ());
    node_rngs = Array.init n (fun _ -> Rng.split root);
    net_rng = Rng.split root;
    egress_free = Array.make n 0.;
    cpu_free = Array.make n 0.;
    msg_size;
    cpu_cost;
    clock = 0.;
    down = Array.make n false;
    epochs = Array.make n 0;
    filter = (fun ~src:_ ~dst:_ ~now:_ -> true);
    filter_installed = false;
    delay = (fun ~src:_ ~dst:_ ~now:_ -> 0.);
    delay_installed = false;
    tap = (fun ~time:_ ~src:_ ~dst:_ _ -> ());
    tap_installed = false;
    capture = None;
    stats = { events_processed = 0; messages_sent = 0; bytes_sent = 0. };
  }

let set_handler t i h = t.handlers.(i) <- h

(* All event scheduling funnels through here so an installed capture hook
   sees every message, timer and thunk the simulation would otherwise order
   by time. *)
let enqueue t ~time ev =
  match t.capture with
  | None -> Event_queue.push t.queue ~time ev
  | Some f -> f ev

let set_capture t f = t.capture <- Some f

let inspect = function
  | Deliver (src, dst, _, msg) | Process (src, dst, _, msg) ->
      Pending_message { src; dst; msg }
  | Timer tm -> Pending_timer { owner = tm.owner }
  | Thunk _ -> Pending_task

let set_link_filter t f =
  t.filter <- f;
  t.filter_installed <- true

let set_link_delay t f =
  t.delay <- f;
  t.delay_installed <- true

let set_delivery_tap t f =
  t.tap <- f;
  t.tap_installed <- true
let now t = t.clock
let n t = t.n
let node_rng t i = t.node_rngs.(i)

let check_node t name i =
  if i < 0 || i >= t.n then invalid_arg ("Engine." ^ name ^ ": node out of range")

let is_down t i =
  check_node t "is_down" i;
  t.down.(i)

(* Crashing loses all volatile state: the handler is detached, in-flight
   events and pending timers die via the epoch bump, and any CPU backlog is
   forgotten.  The node's durable state (a WAL, if the protocol keeps one)
   lives outside the engine. *)
let crash t i =
  check_node t "crash" i;
  if not t.down.(i) then begin
    t.down.(i) <- true;
    t.epochs.(i) <- t.epochs.(i) + 1;
    t.handlers.(i) <- (fun ~src:_ _ -> ());
    t.cpu_free.(i) <- 0.
  end

(* Recovery only clears the down flag; the caller installs a fresh handler
   (a node rebuilt from durable state) and starts it. *)
let recover t i =
  check_node t "recover" i;
  t.down.(i) <- false

let deliver t ~src ~dst ~epoch msg =
  if (not (Array.unsafe_get t.down dst))
     && Array.unsafe_get t.epochs dst = epoch
  then begin
    if t.tap_installed then t.tap ~time:t.clock ~src ~dst msg;
    t.handlers.(dst) ~src msg
  end

(* Run the message through [dst]'s serial CPU queue before handing it to the
   handler; invoked at the message's network arrival time. *)
let process t ~src ~dst ~epoch msg =
  if (not (Array.unsafe_get t.down dst))
     && Array.unsafe_get t.epochs dst = epoch
  then
    match t.cpu_cost with
    | None -> deliver t ~src ~dst ~epoch msg
    | Some cost ->
        let start = Float.max t.clock t.cpu_free.(dst) in
        let finish = start +. cost msg in
        t.cpu_free.(dst) <- finish;
        if finish <= t.clock then deliver t ~src ~dst ~epoch msg
        else enqueue t ~time:finish (Deliver (src, dst, epoch, msg))

(* One network send with the byte size already computed and accounted. *)
let send_sized t ~src ~dst ~size msg =
  if Array.unsafe_get t.down src then ()
  else if dst = src then
    (* Local hand-off: no serialization, no propagation, no CPU charge. *)
    enqueue t ~time:t.clock
      (Deliver (src, dst, Array.unsafe_get t.epochs dst, msg))
  else if (not t.filter_installed) || t.filter ~src ~dst ~now:t.clock then begin
    let drop = t.network.Network.drop_prob in
    if drop > 0. && Rng.float t.net_rng 1. < drop then ()
    else begin
      let arrival =
        Network.delivery_into t.network t.net_rng ~now:t.clock
          ~egress:t.egress_free ~src ~dst ~size
      in
      let arrival =
        if t.delay_installed then arrival +. t.delay ~src ~dst ~now:t.clock
        else arrival
      in
      let epoch = Array.unsafe_get t.epochs dst in
      enqueue t ~time:arrival (Process (src, dst, epoch, msg));
      let dup = t.network.Network.duplicate_prob in
      if dup > 0. && Rng.float t.net_rng 1. < dup then begin
        (* Network-level duplication: the copy trails the original slightly. *)
        let lag = Rng.float t.net_rng (0.5 *. t.network.Network.delta) in
        enqueue t ~time:(arrival +. lag) (Process (src, dst, epoch, msg))
      end
    end
  end

let send t ~src ~dst msg =
  if Array.unsafe_get t.down src then ()
  else begin
    let size = t.msg_size msg in
    t.stats.messages_sent <- t.stats.messages_sent + 1;
    t.stats.bytes_sent <- t.stats.bytes_sent +. float_of_int size;
    send_sized t ~src ~dst ~size msg
  end

let multicast t ~src msg =
  if Array.unsafe_get t.down src then ()
  else begin
    (* The wire size is per-message, not per-destination: compute it and the
       traffic accounting once for the whole fan-out. *)
    let size = t.msg_size msg in
    t.stats.messages_sent <- t.stats.messages_sent + t.n;
    t.stats.bytes_sent <- t.stats.bytes_sent +. float_of_int (size * t.n);
    send_sized t ~src ~dst:src ~size msg;
    for dst = 0 to t.n - 1 do
      if dst <> src then send_sized t ~src ~dst ~size msg
    done
  end

let set_timer ?(owner = -1) t delay f =
  if delay < 0. then invalid_arg "Engine.set_timer: negative delay";
  let epoch = if owner >= 0 then t.epochs.(owner) else 0 in
  let tm = { cancelled = false; owner; epoch; action = f } in
  enqueue t ~time:(t.clock +. delay) (Timer tm);
  fun () -> tm.cancelled <- true

let schedule_at t time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  enqueue t ~time (Thunk f)

let timer_live t tm =
  (not tm.cancelled)
  && (tm.owner < 0
     || ((not t.down.(tm.owner)) && t.epochs.(tm.owner) = tm.epoch))

let exec t = function
  | Deliver (src, dst, epoch, msg) -> deliver t ~src ~dst ~epoch msg
  | Process (src, dst, epoch, msg) -> process t ~src ~dst ~epoch msg
  | Timer tm -> if timer_live t tm then tm.action ()
  | Thunk f -> f ()

let pending_live t = function
  | Deliver (_, dst, epoch, _) | Process (_, dst, epoch, _) ->
      (not t.down.(dst)) && t.epochs.(dst) = epoch
  | Timer tm -> timer_live t tm
  | Thunk _ -> true

let dispatch t ev =
  t.stats.events_processed <- t.stats.events_processed + 1;
  exec t ev

let advance_clock t time =
  if time < t.clock then invalid_arg "Engine.advance_clock: time in the past";
  t.clock <- time

let run t ~until =
  let rec loop () =
    if Event_queue.is_empty t.queue then
      (* The run nominally reaches [until] even when no event is left:
         leaving the clock at the last event's time would make a
         subsequent [now] or [set_timer] act in the past. *)
      t.clock <- Float.max t.clock until
    else begin
      let time = Event_queue.min_time t.queue in
      if time > until then t.clock <- until
      else begin
        let ev = Event_queue.take t.queue in
        t.clock <- time;
        t.stats.events_processed <- t.stats.events_processed + 1;
        exec t ev;
        loop ()
      end
    end
  in
  loop ()

let stats t = t.stats
