(** Priority queue of timestamped events.

    Events pop in nondecreasing time order; events with equal timestamps pop
    in insertion (FIFO) order, which keeps simulations fully deterministic. *)

type 'a t

(** An empty queue. *)
val create : unit -> 'a t

(** [push t ~time ev] schedules [ev].  Raises [Invalid_argument] on a
    non-finite time. *)
val push : 'a t -> time:float -> 'a -> unit

(** [reserve t extra] pre-grows the queue to hold [extra] further events —
    the bulk-push path: a multicast fan-out reserves its n - 1 pushes once
    instead of re-checking (and possibly re-growing) capacity per push. *)
val reserve : 'a t -> int -> unit

(** Earliest event, or [None] when empty. *)
val pop : 'a t -> (float * 'a) option

(** Time of the earliest event.  Raises [Invalid_argument] when empty.
    Together with {!take} this is the engine's allocation-free drain path
    ({!pop} boxes a [Some] and a tuple per event). *)
val min_time : 'a t -> float

(** Pop the earliest event, returning only its value.  Raises
    [Invalid_argument] when empty; read {!min_time} first if the
    timestamp is needed. *)
val take : 'a t -> 'a

(** Time of the earliest event without popping, or [None] when empty. *)
val peek_time : 'a t -> float option

(** Whether the queue holds no events. *)
val is_empty : 'a t -> bool

(** Number of events currently queued. *)
val size : 'a t -> int
