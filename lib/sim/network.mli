(** The partially synchronous network model.

    Message delay decomposes into:

    - serialization delay: a per-node egress link of finite bandwidth is
      occupied for [size / bandwidth] per message, FIFO.  Multicasting a
      large block to [n - 1] peers therefore takes proportionally longer
      than multicasting a small vote — this is what makes large messages
      (beta) slower than small ones (rho) in the modified partially
      synchronous model of Section V;
    - propagation latency from the {!Latency} model;
    - before GST, an adversarial extra delay, capped so that every message
      is delivered by [GST + Delta] (Dwork et al.'s model).

    [delta] is the bound the protocols are configured with; the constructor
    checks it against what the model can actually produce. *)

type t = private {
  latency : Latency.t;
  bandwidth_bps : float option;  (** Per-node egress; [None] = infinite. *)
  gst : float;  (** Global stabilization time, ms. *)
  delta : float;  (** Delivery bound after GST, ms. *)
  pre_gst_extra : float;
      (** Upper bound of the adversarial uniform extra delay before GST. *)
  duplicate_prob : float;
      (** Probability that a delivered message is delivered a second time
          shortly after (network-level duplication; protocols must be
          idempotent).  0 by default. *)
  drop_prob : float;
      (** Probability that a non-self message is silently lost in transit.
          0 by default; a positive value suspends the post-GST delivery
          guarantee, so protocols must tolerate loss (retransmission,
          sync).  Used by fault injection. *)
}

(** Raises [Invalid_argument] when [delta] cannot bound the post-GST delays
    the latency model produces (serialization delay excluded: the protocol
    designer picks [delta] for the message sizes they expect). *)
val make :
  ?bandwidth_bps:float ->
  ?gst:float ->
  ?pre_gst_extra:float ->
  ?duplicate_prob:float ->
  ?drop_prob:float ->
  latency:Latency.t ->
  delta:float ->
  unit ->
  t

(** Serialization time of [size] bytes on the egress link, ms. *)
val serialization_ms : t -> size:int -> float

(** [delivery t rng ~now ~egress_free ~src ~dst ~size] computes
    [(egress_busy_until, delivery_time)] for a message handed to the network
    at [now] whose sender's egress is free from [egress_free]. *)
val delivery :
  t ->
  Rng.t ->
  now:float ->
  egress_free:float ->
  src:int ->
  dst:int ->
  size:int ->
  float * float

(** Same model as {!delivery}, shaped for the engine's per-message hot
    path: reads and updates [egress.(src)] (the per-node egress-busy-until
    array) in place and returns only the arrival time, so nothing but two
    floats is boxed per call. *)
val delivery_into :
  t ->
  Rng.t ->
  now:float ->
  egress:float array ->
  src:int ->
  dst:int ->
  size:int ->
  float
