type t = {
  latency : Latency.t;
  bandwidth_bps : float option;
  gst : float;
  delta : float;
  pre_gst_extra : float;
  duplicate_prob : float;
  drop_prob : float;
}

let make ?bandwidth_bps ?(gst = 0.) ?(pre_gst_extra = 0.) ?(duplicate_prob = 0.)
    ?(drop_prob = 0.) ~latency ~delta () =
  if delta <= 0. then invalid_arg "Network.make: delta must be positive";
  if Latency.upper_bound latency > delta then
    invalid_arg "Network.make: delta below the latency model's upper bound";
  if gst < 0. || pre_gst_extra < 0. then
    invalid_arg "Network.make: negative gst or pre_gst_extra";
  if duplicate_prob < 0. || duplicate_prob > 1. then
    invalid_arg "Network.make: duplicate_prob outside [0, 1]";
  if drop_prob < 0. || drop_prob > 1. then
    invalid_arg "Network.make: drop_prob outside [0, 1]";
  { latency; bandwidth_bps; gst; delta; pre_gst_extra; duplicate_prob;
    drop_prob }

let serialization_ms t ~size =
  match t.bandwidth_bps with
  | None -> 0.
  | Some bps -> float_of_int size *. 8. /. bps *. 1000.

(* The simulator's per-message path.  [egress.(src)] is read and written in
   place (unboxed float-array traffic) and only the arrival time crosses the
   call boundary, so a send costs two float boxes instead of the five a
   tupled return would. *)
let delivery_into t rng ~now ~egress ~src ~dst ~size =
  let start = Float.max now (Array.unsafe_get egress src) in
  let egress_end = start +. serialization_ms t ~size in
  Array.unsafe_set egress src egress_end;
  let propagation = Latency.sample t.latency rng ~src ~dst in
  let base = egress_end +. propagation in
  if start >= t.gst || t.pre_gst_extra = 0. then base
  else
    (* Adversarial extra delay, but the partially synchronous model still
       requires delivery within Delta of max(send time, GST). *)
    let delayed = base +. Rng.float rng t.pre_gst_extra in
    Float.min delayed (Float.max base (t.gst +. t.delta))

let delivery t rng ~now ~egress_free ~src ~dst ~size =
  let start = Float.max now egress_free in
  let egress_end = start +. serialization_ms t ~size in
  let propagation = Latency.sample t.latency rng ~src ~dst in
  let base = egress_end +. propagation in
  let arrival =
    if start >= t.gst || t.pre_gst_extra = 0. then base
    else
      let delayed = base +. Rng.float rng t.pre_gst_extra in
      Float.min delayed (Float.max base (t.gst +. t.delta))
  in
  (egress_end, arrival)

