(** The discrete-event simulation engine.

    Runs [n] nodes exchanging messages of a single (per-engine) message type
    over a {!Network} model.  Handlers run to completion at their scheduled
    time; everything is single-threaded and deterministic given the seed.

    Statistics on message and byte counts are kept per run so experiments can
    report communication complexity alongside throughput and latency. *)

type 'msg t

type stats = {
  mutable events_processed : int;
  mutable messages_sent : int;
  mutable bytes_sent : int;
}

(** [create ~n ~network ~seed ~msg_size ()] builds an engine for [n] nodes.
    [msg_size msg] is the wire size in bytes used for serialization delay and
    byte accounting.  [cpu_cost msg], when given, is the receiver-side
    processing time in ms: each node's handler invocations are serialized on
    a per-node CPU queue, so processing backlogs delay later messages
    (self-deliveries are free — the sender already did that work). *)
val create :
  n:int ->
  network:Network.t ->
  seed:int ->
  msg_size:('msg -> int) ->
  ?cpu_cost:('msg -> float) ->
  unit ->
  'msg t

(** Install the message handler for a node.  Nodes without a handler drop
    everything (that is how crashed / silent-Byzantine nodes are modelled). *)
val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit

(** [set_delivery_tap t f] invokes [f ~time ~src ~dst msg] for every message
    delivered to a handler — used by trace tooling and tests; does not
    affect the simulation. *)
val set_delivery_tap :
  'msg t -> (time:float -> src:int -> dst:int -> 'msg -> unit) -> unit

(** [set_link_filter t f] drops a message when [f ~src ~dst ~now] is false.
    Only meaningful before GST in honest runs (the model's channels are
    reliable after GST); used by tests to create partitions, by Byzantine
    behaviours to send to subsets, and by fault injection. *)
val set_link_filter : 'msg t -> (src:int -> dst:int -> now:float -> bool) -> unit

(** [set_link_delay t f] adds [f ~src ~dst ~now] ms on top of the network
    model's delivery time for every non-self message.  A positive value can
    exceed [delta] — that is the point: fault injection uses it for
    time-windowed asynchrony spikes. *)
val set_link_delay : 'msg t -> (src:int -> dst:int -> now:float -> float) -> unit

(** [crash t i] takes node [i] down: its handler is detached, its sends are
    suppressed, and all in-flight deliveries, CPU backlog and pending owned
    timers addressed to this incarnation are quenched (they never fire, even
    after recovery).  Idempotent.  Durable state the protocol keeps outside
    the engine (a WAL) is untouched. *)
val crash : 'msg t -> int -> unit

(** [recover t i] clears the down flag.  The caller is expected to install a
    fresh handler (a node rebuilt from durable state) and start it; timers
    created from now on belong to the new incarnation. *)
val recover : 'msg t -> int -> unit

(** Whether node [i] is currently crashed (between {!crash} and
    {!recover}). *)
val is_down : 'msg t -> int -> bool

(** Current simulated time in ms. *)
val now : 'msg t -> float

(** Number of nodes the engine was created with. *)
val n : 'msg t -> int

(** Per-node RNG stream, deterministic per engine seed. *)
val node_rng : 'msg t -> int -> Rng.t

(** [send t ~src ~dst msg] hands a message to the network at the current
    time.  Sending to self delivers at the current time (no network). *)
val send : 'msg t -> src:int -> dst:int -> 'msg -> unit

(** [multicast t ~src msg] sends to every node; self-delivery is immediate.
    The egress link serializes the [n - 1] copies in destination order.
    Traffic stats count the [n - 1] network sends — the local self hand-off
    is not serialized or propagated, so it contributes no messages or
    bytes. *)
val multicast : 'msg t -> src:int -> 'msg -> unit

(** [set_timer t delay f] runs [f] after [delay] ms; returns a cancel thunk.
    [owner] ties the timer to a node's current incarnation: if that node
    crashes before the timer fires, the timer is quenched (also after a
    later recovery).  Unowned timers (the default) always fire. *)
val set_timer : ?owner:int -> 'msg t -> float -> (unit -> unit) -> unit -> unit

(** [schedule_at t time f] runs [f] at absolute [time] (>= now). *)
val schedule_at : 'msg t -> float -> (unit -> unit) -> unit

(** Run until the event queue drains or simulated [until] is passed.  In
    both cases the clock ends at [until] (never earlier): the run nominally
    covered that span, so subsequent [now] / [set_timer] calls act at the
    horizon, not at the last event's time. *)
val run : 'msg t -> until:float -> unit

val stats : 'msg t -> stats

(** {2 Pluggable scheduler}

    An external scheduler takes over event ordering: with a capture hook
    installed, every event that would enter the time-ordered queue — network
    deliveries, timer expiries, scheduled thunks — is handed to the hook
    instead, and the hook's owner decides when (and whether) each one runs
    via {!dispatch}.  The bounded model checker ({!Bft_mc.Checker}) uses
    this to explore arbitrary delivery and firing orders through the exact
    engine, crash/epoch machinery and node wiring the experiments use. *)

(** A captured event: opaque, re-injectable via {!dispatch}. *)
type 'msg pending

(** What a captured event is, for scheduling decisions. *)
type 'msg pending_view =
  | Pending_message of { src : int; dst : int; msg : 'msg }
  | Pending_timer of { owner : int }  (** [-1] = unowned *)
  | Pending_task  (** a [schedule_at] thunk *)

(** [set_capture t f] installs the hook.  From now on nothing reaches the
    internal queue; [f] receives every scheduled event synchronously at the
    point it is created (inside the sending handler's execution). *)
val set_capture : 'msg t -> ('msg pending -> unit) -> unit

val inspect : 'msg pending -> 'msg pending_view

(** Whether dispatching the event would still do anything: false for
    cancelled timers and for events addressed to a crashed incarnation
    (stale epoch).  Dispatching a dead event is a counted no-op. *)
val pending_live : 'msg t -> 'msg pending -> bool

(** Execute a captured event now, exactly as the run loop would have:
    epoch and cancellation checks apply, [events_processed] is counted. *)
val dispatch : 'msg t -> 'msg pending -> unit

(** Move the clock forward to an absolute time (>= now).  External
    schedulers use it to give [now] a monotone logical meaning; raises
    [Invalid_argument] on time travel. *)
val advance_clock : 'msg t -> float -> unit
