(* Struct-of-arrays binary min-heap keyed by (time, sequence number).  The
   sequence number breaks ties so same-time events are FIFO.

   Times live in an unboxed [float array] and sequence numbers in an
   [int array], so the heap's comparisons and swaps touch flat memory and a
   push allocates nothing once capacity is reached — no per-event cell
   record, no [option] boxing.  The value array is created lazily on the
   first push (there is no "dummy" value to fill it with before that).

   Both sifts move a "hole": the displaced element sits in locals while
   ancestors/descendants shift one slot each and is written back exactly
   once — half the memory traffic of swap-based sifting, which matters with
   the element spread over three arrays.  Indices are bounded by [t.size],
   which never exceeds any array's capacity, so the sift accesses are
   unchecked.  (A 4-ary layout was measured and lost to the binary one at
   simulation-typical queue sizes.)

   Popped slots are not cleared: the element moved into the root is the
   same one the vacated slot still references, so at most one value (the
   last element popped from a fully drained queue) is kept alive until the
   next push overwrites it. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable values : 'a array;  (* [||] until the first push. *)
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 64

let create () =
  {
    times = Array.make initial_capacity 0.;
    seqs = Array.make initial_capacity 0;
    values = [||];
    size = 0;
    next_seq = 0;
  }

let set_capacity t cap =
  let times = Array.make cap 0. in
  Array.blit t.times 0 times 0 t.size;
  t.times <- times;
  let seqs = Array.make cap 0 in
  Array.blit t.seqs 0 seqs 0 t.size;
  t.seqs <- seqs;
  (* The value array stays [[||]] until the first push supplies a fill
     value; [push] then sizes it to match [times]. *)
  if Array.length t.values > 0 then begin
    let values = Array.make cap t.values.(0) in
    Array.blit t.values 0 values 0 t.size;
    t.values <- values
  end

let grow t = set_capacity t (2 * Array.length t.times)

(* Bulk-push support: one capacity check for a whole multicast fan-out
   instead of one per push. *)
let reserve t extra =
  if extra > 0 then begin
    let needed = t.size + extra in
    if needed > Array.length t.times then begin
      let cap = ref (2 * Array.length t.times) in
      while !cap < needed do
        cap := 2 * !cap
      done;
      set_capacity t !cap
    end
  end

let sift_up t i0 =
  let times = t.times and seqs = t.seqs and values = t.values in
  let time = Array.unsafe_get times i0 in
  let seq = Array.unsafe_get seqs i0 in
  let v = Array.unsafe_get values i0 in
  let i = ref i0 in
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = Array.unsafe_get times parent in
    if time < pt || (time = pt && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set values !i (Array.unsafe_get values parent);
      i := parent
    end
    else moving := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set values !i v

let sift_down t i0 =
  let times = t.times and seqs = t.seqs and values = t.values in
  let size = t.size in
  let time = Array.unsafe_get times i0 in
  let seq = Array.unsafe_get seqs i0 in
  let v = Array.unsafe_get values i0 in
  let i = ref i0 in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 in
    if l >= size then moving := false
    else begin
      (* Earlier of the two children, FIFO on ties. *)
      let c =
        let r = l + 1 in
        if r < size then begin
          let lt = Array.unsafe_get times l and rt = Array.unsafe_get times r in
          if
            rt < lt
            || (rt = lt && Array.unsafe_get seqs r < Array.unsafe_get seqs l)
          then r
          else l
        end
        else l
      in
      let ct = Array.unsafe_get times c in
      if ct < time || (ct = time && Array.unsafe_get seqs c < seq) then begin
        Array.unsafe_set times !i ct;
        Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
        Array.unsafe_set values !i (Array.unsafe_get values c);
        i := c
      end
      else moving := false
    end
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set values !i v

let push t ~time value =
  if not (Float.is_finite time) then invalid_arg "Event_queue.push: bad time";
  if t.size = Array.length t.times then grow t;
  if Array.length t.values = 0 then
    t.values <- Array.make (Array.length t.times) value;
  let i = t.size in
  (* [i] is below capacity after the grow check. *)
  Array.unsafe_set t.times i time;
  Array.unsafe_set t.seqs i t.next_seq;
  Array.unsafe_set t.values i value;
  t.next_seq <- t.next_seq + 1;
  t.size <- i + 1;
  sift_up t i

let is_empty t = t.size = 0
let size t = t.size

let min_time t =
  if t.size = 0 then invalid_arg "Event_queue.min_time: empty";
  Array.unsafe_get t.times 0

(* Precondition: [t.size > 0]. *)
let unguarded_take t =
  let value = Array.unsafe_get t.values 0 in
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    Array.unsafe_set t.times 0 (Array.unsafe_get t.times last);
    Array.unsafe_set t.seqs 0 (Array.unsafe_get t.seqs last);
    Array.unsafe_set t.values 0 (Array.unsafe_get t.values last);
    sift_down t 0
  end;
  value

let take t =
  if t.size = 0 then invalid_arg "Event_queue.take: empty";
  unguarded_take t

let pop t =
  if t.size = 0 then None
  else
    let time = Array.unsafe_get t.times 0 in
    Some (time, unguarded_take t)

let peek_time t = if t.size = 0 then None else Some (Array.unsafe_get t.times 0)
