(** Deterministic splittable random number generator (splitmix64).

    Every source of randomness in a simulation derives from one seed, so a
    run is exactly reproducible from its configuration. *)

type t

(** [create seed] builds a generator whose entire stream is determined by
    [seed]. *)
val create : int -> t

(** An independent stream derived from [t]'s current state.  Used to give
    each node / channel its own generator without correlating draws. *)
val split : t -> t

(** Uniform in [\[0, bound)].  [bound] must be positive. *)
val float : t -> float -> float

(** Uniform in [\[0, bound)].  [bound] must be positive. *)
val int : t -> int -> int

(** Gaussian via Box-Muller. *)
val gaussian : t -> mean:float -> std:float -> float

(** Exponentially distributed with the given mean. *)
val exponential : t -> mean:float -> float
