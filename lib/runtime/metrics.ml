open Bft_types

type block_track = {
  block : Block.t;
  mutable created_at : float option;
  committers : Bft_crypto.Signer_set.t;
  mutable quorum_commit_at : float option;
}

type t = {
  n : int;
  quorum : int;
  blocks : (int, block_track) Hashtbl.t;  (* Hash.to_int *)
  height_first : (int, Block.t) Hashtbl.t;  (* global safety: height -> block *)
  per_node_committed : int array;
  mutable proposed : int;
  mutable on_quorum_commit : (node:int -> time:float -> Block.t -> unit) option;
}

let create ~n () =
  let f = (n - 1) / 3 in
  {
    n;
    quorum = (2 * f) + 1;
    blocks = Hashtbl.create 1024;
    height_first = Hashtbl.create 1024;
    per_node_committed = Array.make n 0;
    proposed = 0;
    on_quorum_commit = None;
  }

let set_on_quorum_commit t f = t.on_quorum_commit <- Some f

let commit_quorum t = t.quorum

let track t (block : Block.t) =
  let key = Hash.to_int block.Block.hash in
  match Hashtbl.find_opt t.blocks key with
  | Some b -> b
  | None ->
      let b =
        {
          block;
          created_at = None;
          committers = Bft_crypto.Signer_set.create ~n:t.n;
          quorum_commit_at = None;
        }
      in
      Hashtbl.add t.blocks key b;
      b

let on_propose t ~time block =
  let b = track t block in
  if b.created_at = None then begin
    b.created_at <- Some time;
    t.proposed <- t.proposed + 1
  end

let check_global_safety t (block : Block.t) =
  match Hashtbl.find_opt t.height_first block.Block.height with
  | None -> Hashtbl.add t.height_first block.Block.height block
  | Some first ->
      if not (Block.equal first block) then
        raise
          (Bft_chain.Commit_log.Safety_violation
             (Format.asprintf
                "nodes committed conflicting blocks at height %d: %a vs %a"
                block.Block.height Block.pp first Block.pp block))

let on_commit t ~node ~time block =
  check_global_safety t block;
  t.per_node_committed.(node) <- t.per_node_committed.(node) + 1;
  let b = track t block in
  if Bft_crypto.Signer_set.add b.committers node then
    if
      Bft_crypto.Signer_set.count b.committers = t.quorum
      && b.quorum_commit_at = None
    then begin
      b.quorum_commit_at <- Some time;
      match t.on_quorum_commit with
      | Some f -> f ~node ~time block
      | None -> ()
    end

type record = {
  block : Block.t;
  created_ms : float;
  quorum_commit_ms : float option;
}

type result = {
  committed_blocks : int;
  latencies_ms : float list;
  avg_latency_ms : float;
  payload_bytes_committed : float;
  transfer_rate_bps : float;
  blocks_per_sec : float;
  per_node_committed : int array;
  proposed_blocks : int;
  records : record list;
}

let finish t ~duration_ms =
  let committed, latencies, bytes =
    Hashtbl.fold
      (fun _ b (count, lats, bytes) ->
        match (b.quorum_commit_at, b.created_at) with
        | Some commit_at, Some created_at ->
            ( count + 1,
              (commit_at -. created_at) :: lats,
              bytes
              +. float_of_int b.block.Block.payload.Payload.size_bytes )
        | Some commit_at, None ->
            (* Block committed without an observed proposal (should not
               happen; treat commit time as creation). *)
            (count + 1, (commit_at -. commit_at) :: lats, bytes)
        | None, _ -> (count, lats, bytes))
      t.blocks (0, [], 0.)
  in
  let records =
    Hashtbl.fold
      (fun _ b acc ->
        match b.created_at with
        | Some created_ms ->
            { block = b.block; created_ms; quorum_commit_ms = b.quorum_commit_at }
            :: acc
        | None -> acc)
      t.blocks []
    |> List.sort (fun a b -> Float.compare a.created_ms b.created_ms)
  in
  let seconds = duration_ms /. 1000. in
  {
    committed_blocks = committed;
    latencies_ms = latencies;
    avg_latency_ms =
      (if latencies = [] then 0. else Bft_stats.Descriptive.mean latencies);
    payload_bytes_committed = bytes;
    transfer_rate_bps = bytes /. seconds;
    blocks_per_sec = float_of_int committed /. seconds;
    per_node_committed = Array.copy t.per_node_committed;
    proposed_blocks = t.proposed;
    records;
  }

let chain_quality result =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if r.quorum_commit_ms <> None then begin
        let p = r.block.Block.proposer in
        Hashtbl.replace counts p
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
      end)
    result.records;
  Hashtbl.fold (fun p c acc -> (p, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
