(** Experiment configuration. *)

type latency_spec =
  | Wan  (** The paper's five-region AWS WAN (Table II). *)
  | Uniform of { base : float; jitter : float }  (** For tests/ablations. *)

type t = {
  protocol : Protocol_kind.t;
  n : int;  (** Network size. *)
  f_actual : int;  (** Number of actual (silent Byzantine) failures, f'. *)
  schedule : Bft_workload.Schedules.t;
  payload_bytes : int;  (** Block payload size p. *)
  duration_ms : float;  (** Simulated run length. *)
  delta_ms : float;  (** Delta the protocols are configured with. *)
  gst_ms : float;  (** Global stabilization time (0 = synchronous run). *)
  pre_gst_extra_ms : float;  (** Adversarial extra delay before GST. *)
  latency : latency_spec;
  bandwidth_bps : float option;
  model_cpu : bool;
      (** When true, receiver-side processing (signature verification,
          payload hashing — {!Bft_types.Cpu_model}) is charged on a per-node
          serial CPU queue.  This is what makes performance degrade with
          network size, as on the paper's m5.large instances. *)
  duplicate_prob : float;
      (** Network-level duplication probability (robustness testing). *)
  drop_prob : float;
      (** Network-level per-message loss probability (robustness testing);
          positive values suspend the post-GST delivery guarantee. *)
  seed : int;
  equivocators : int list;
      (** Node ids running the equivocating-proposer attack (tests);
          shorthand for [(id, Byzantine.Equivocate)] entries. *)
  byzantine : (int * Byzantine.t) list;
      (** Per-node Byzantine behaviour assignments (see {!Byzantine}); must
          not overlap the silent set implied by [f_actual]. *)
  faults : Bft_faults.Fault_schedule.t;
      (** Timed fault events (crash/recover/partition/loss/delay) the
          harness interprets against the simulator.  Validated to stay
          inside the [f] budget jointly with the Byzantine sets; the empty
          schedule (default) leaves the run byte-identical to one without
          fault machinery. *)
  logical_faults : bool;
      (** Interpret [faults] on the view clock ({!Bft_faults.Logical}):
          event times are view numbers, crashes trigger when the victim
          reaches its anchor view, recoveries when node 0 (the observer)
          does, and partitions gate each send on the sender's view at
          send time.  The same interpretation the live transport applies
          under [fault_clock = Views], which is what makes chaos chains
          comparable across substrates.  The harness raises
          [Invalid_argument] if the schedule is not a valid logical
          schedule ({!Bft_faults.Logical.of_schedule}). *)
  clients : Bft_mempool.Spec.t option;
      (** Client-traffic ingestion ({!Bft_mempool}).  When set, leaders cut
          blocks from the replicated mempool (batch references over a seeded
          arrival stream) instead of synthesizing [payload_bytes]-sized
          parametric payloads, batch dissemination is priced off the
          ordering path (proposal wire sizes shed their payload bytes, the
          ingest summary carries the dissemination bytes instead), and the
          run reports client-perceived end-to-end latency.  [None]
          (default) keeps the paper's parametric payloads. *)
}

(** The paper's WAN setting: [Wan] latencies, 10 Gbit/s egress,
    [delta_ms = 500], no failures, round-robin leaders, 60 s runs. *)
val default : Protocol_kind.t -> n:int -> t

(** Smaller/faster settings for unit and property tests: uniform latency,
    infinite bandwidth. *)
val local : Protocol_kind.t -> n:int -> t

(** Raises [Invalid_argument] when inconsistent (f' too large, equivocators
    out of range or overlapping the silent set, bad sizes, fault schedule
    outside the joint crashed+Byzantine budget of f). *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit
