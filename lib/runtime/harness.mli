(** The experiment harness: builds a simulated network from a {!Config.t},
    runs the configured protocol on it and returns the paper's metrics.

    Silent Byzantine nodes are modelled by not instantiating a node at all
    (their messages are never sent, their handlers drop everything), which is
    the worst crash-like behaviour a silent adversary can exhibit and matches
    the failure experiments of Section VI-B.  Equivocating Byzantine
    proposers (safety tests) run the protocol's [equivocate] behaviour.

    Every run doubles as a safety audit: a conflicting commit anywhere
    raises [Bft_chain.Commit_log.Safety_violation]. *)

(** Log source ["moonshot.harness"]: run configs at debug, per-run
    summaries at info.  Enable with [Logs.set_level (Some Logs.Info)] and a
    reporter (e.g. [Logs.format_reporter ()]). *)
val log_src : Logs.src

(** Present on fault-schedule runs (see {!Config.t.faults}): the online
    {!Bft_obs.Liveness} monitor's findings plus the message traffic counted
    during the healing windows ([heal, heal + k * Delta]).  The monitor
    raises {!Bft_obs.Liveness.Violation} during the run if safety or the
    liveness bound is breached, so a returned summary means every check
    passed. *)
type fault_summary = {
  liveness : Bft_obs.Liveness.report;
  messages_during_heal : int;
}

type run_result = {
  metrics : Metrics.result;
  messages_sent : int;
  bytes_sent : int;
  events_processed : int;
  config : Config.t;
  fault_summary : fault_summary option;
      (** [Some _] iff the config carried a non-empty fault schedule. *)
  client_summary : Bft_mempool.Ingest.summary option;
      (** [Some _] iff the config carried a client-traffic spec
          ({!Config.t.clients}): admission/backpressure counters,
          client-perceived end-to-end latency percentiles, per-lane
          fairness and dissemination bytes. *)
}

(** Run a specific protocol implementation under a configuration.
    [on_commit] observes every per-node commit in order (e.g. to drive a
    replicated application such as {!Bft_app.Ledger}).

    [trace], when given and enabled, receives the run's full structured
    event stream (see {!Bft_obs.Trace}): node probe events, every message
    delivery, per-node commits and quorum commits.  Tracing observes the
    simulation without perturbing it — the engine's RNG streams and event
    order are identical with and without it — so a traced run commits
    exactly the blocks its untraced twin does.  When [trace] is absent or
    disabled no instrumentation is installed at all.

    [on_client_command] (client-traffic runs only) observes every mempool
    command drawn into a quorum-committed block, in global commit order —
    the hook the no-loss/no-duplication property tests use. *)
val run_protocol :
  ?on_commit:(node:int -> Bft_types.Block.t -> unit) ->
  ?trace:Bft_obs.Trace.t ->
  ?on_client_command:
    (seq:int -> lane:int -> submit_ms:float -> commit_ms:float -> unit) ->
  (module Bft_types.Protocol_intf.S with type msg = 'msg) ->
  Config.t ->
  run_result

(** Dispatch on [config.protocol]. *)
val run :
  ?on_commit:(node:int -> Bft_types.Block.t -> unit) ->
  ?trace:Bft_obs.Trace.t ->
  ?on_client_command:
    (seq:int -> lane:int -> submit_ms:float -> commit_ms:float -> unit) ->
  Config.t ->
  run_result

(** [run_seeds config seeds] — repeat a run over several seeds (the paper
    averages three runs per configuration). *)
val run_seeds : Config.t -> seeds:int list -> run_result list

(** Simulator events processed by every run this process has completed,
    summed across domains (the counter is atomic, so domain-parallel
    sweeps — {!Bft_parallel.Parallel}-driven benches — account correctly).
    The bench harness reads it before and after an experiment to report
    events/second alongside wall-clock. *)
val events_processed_total : unit -> int

(** Heap bytes allocated inside the event loops of every run this process
    has completed (per-domain [Gc.allocated_bytes] deltas, summed across
    domains like {!events_processed_total}).  Dividing its delta by the
    event counter's delta gives the bytes-allocated-per-event probe the
    bench reports record. *)
val bytes_allocated_total : unit -> int

(** Averages across repeated runs. *)
type summary = {
  blocks_committed : float;
  avg_latency_ms : float;
  transfer_rate_bps : float;
  blocks_per_sec : float;
}

val summarize : run_result list -> summary
