open Bft_types

let log_src = Logs.Src.create "moonshot.harness" ~doc:"Experiment harness"

module Log = (val Logs.src_log log_src : Logs.LOG)

type run_result = {
  metrics : Metrics.result;
  messages_sent : int;
  bytes_sent : float;
  events_processed : int;
  config : Config.t;
}

(* Lifetime event counter, atomic so runs on worker domains count too. *)
let total_events = Atomic.make 0
let events_processed_total () = Atomic.get total_events

let latency_model (cfg : Config.t) =
  match cfg.Config.latency with
  | Config.Wan -> Bft_workload.Regions.latency_model ()
  | Config.Uniform { base; jitter } -> Bft_sim.Latency.Uniform { base; jitter }

let run_protocol (type m) ?(on_commit = fun ~node:_ _ -> ()) ?trace
    (module P : Bft_types.Protocol_intf.S with type msg = m)
    (cfg : Config.t) =
  Config.validate cfg;
  (* A disabled sink installs nothing: the untraced run is the benchmark
     run, instruction for instruction. *)
  let trace =
    match trace with
    | Some t when Bft_obs.Trace.enabled t -> Some t
    | Some _ | None -> None
  in
  let network =
    Bft_sim.Network.make
      ?bandwidth_bps:cfg.Config.bandwidth_bps
      ~gst:cfg.Config.gst_ms ~pre_gst_extra:cfg.Config.pre_gst_extra_ms
      ~duplicate_prob:cfg.Config.duplicate_prob
      ~latency:(latency_model cfg) ~delta:cfg.Config.delta_ms ()
  in
  let engine =
    let cpu_cost = if cfg.Config.model_cpu then Some P.cpu_cost else None in
    Bft_sim.Engine.create ~n:cfg.Config.n ~network ~seed:cfg.Config.seed
      ~msg_size:P.msg_size ?cpu_cost ()
  in
  let metrics = Metrics.create ~n:cfg.Config.n () in
  (match trace with
  | None -> ()
  | Some sink ->
      Bft_sim.Engine.set_delivery_tap engine (fun ~time ~src ~dst msg ->
          Bft_obs.Trace.emit sink
            {
              Bft_obs.Trace.time;
              node = dst;
              kind =
                Bft_obs.Trace.Delivered
                  {
                    src;
                    cls = P.classify msg;
                    view = P.view_of msg;
                    bytes = P.msg_size msg;
                  };
            });
      Metrics.set_on_quorum_commit metrics (fun ~node ~time block ->
          Bft_obs.Trace.emit sink
            {
              Bft_obs.Trace.time;
              node;
              kind =
                Bft_obs.Trace.Quorum_commit
                  { view = block.Block.view; height = block.Block.height };
            }));
  let validators = Validator_set.make cfg.Config.n in
  let leader_of =
    Bft_workload.Schedules.leader_of cfg.Config.schedule ~n:cfg.Config.n
      ~f':cfg.Config.f_actual
  in
  let env_of id =
    {
      Env.id;
      validators;
      delta = cfg.Config.delta_ms;
      now = (fun () -> Bft_sim.Engine.now engine);
      send = (fun dst msg -> Bft_sim.Engine.send engine ~src:id ~dst msg);
      multicast = (fun msg -> Bft_sim.Engine.multicast engine ~src:id msg);
      set_timer = (fun delay f -> Bft_sim.Engine.set_timer engine delay f);
      leader_of;
      make_payload =
        (fun ~view ->
          Payload.make ~id:view ~size_bytes:cfg.Config.payload_bytes);
      on_commit =
        (fun block ->
          (match trace with
          | None -> ()
          | Some sink ->
              Bft_obs.Trace.emit sink
                {
                  Bft_obs.Trace.time = Bft_sim.Engine.now engine;
                  node = id;
                  kind =
                    Bft_obs.Trace.Committed
                      { view = block.Block.view; height = block.Block.height };
                });
          Metrics.on_commit metrics ~node:id
            ~time:(Bft_sim.Engine.now engine)
            block;
          on_commit ~node:id block);
      on_propose =
        (fun block ->
          Metrics.on_propose metrics ~time:(Bft_sim.Engine.now engine) block);
      probe =
        (match trace with
        | None -> None
        | Some sink ->
            Some
              (fun ev ->
                Bft_obs.Trace.emit sink
                  {
                    Bft_obs.Trace.time = Bft_sim.Engine.now engine;
                    node = id;
                    kind = Bft_obs.Trace.Node_event ev;
                  }));
    }
  in
  let silent id =
    Bft_workload.Schedules.is_byzantine ~n:cfg.Config.n ~f':cfg.Config.f_actual
      id
  in
  let behaviour_of id =
    if silent id then Some Byzantine.Silent
    else if List.mem id cfg.Config.equivocators then Some Byzantine.Equivocate
    else List.assoc_opt id cfg.Config.byzantine
  in
  let nodes =
    List.filter_map
      (fun id ->
        let make ?(equivocate = false) env =
          let node = P.create ~equivocate env in
          Bft_sim.Engine.set_handler engine id (P.handle node);
          Some node
        in
        match behaviour_of id with
        | Some Byzantine.Silent -> None
        | Some Byzantine.Equivocate -> make ~equivocate:true (env_of id)
        | Some Byzantine.Withhold_votes ->
            make
              (Env.with_outgoing_filter
                 ~keep:(fun msg -> P.classify msg <> `Vote)
                 (env_of id))
        | Some (Byzantine.Delay_all delay) ->
            make (Env.with_outgoing_delay ~delay (env_of id))
        | None -> make (env_of id))
      (List.init cfg.Config.n (fun i -> i))
  in
  Log.debug (fun m -> m "starting run: %a" Config.pp cfg);
  List.iter P.start nodes;
  Bft_sim.Engine.run engine ~until:cfg.Config.duration_ms;
  let stats = Bft_sim.Engine.stats engine in
  ignore
    (Atomic.fetch_and_add total_events stats.Bft_sim.Engine.events_processed
      : int);
  let result =
    {
      metrics = Metrics.finish metrics ~duration_ms:cfg.Config.duration_ms;
      messages_sent = stats.Bft_sim.Engine.messages_sent;
      bytes_sent = stats.Bft_sim.Engine.bytes_sent;
      events_processed = stats.Bft_sim.Engine.events_processed;
      config = cfg;
    }
  in
  Log.info (fun m ->
      m "run done: %a -> %d blocks, %.1f ms avg latency, %d msgs" Config.pp cfg
        result.metrics.Metrics.committed_blocks
        result.metrics.Metrics.avg_latency_ms result.messages_sent);
  result

let run ?on_commit ?trace (cfg : Config.t) =
  match cfg.Config.protocol with
  | Protocol_kind.Simple_moonshot ->
      run_protocol ?on_commit ?trace (module Moonshot.Simple_node.Protocol) cfg
  | Protocol_kind.Pipelined_moonshot ->
      run_protocol ?on_commit ?trace (module Moonshot.Pipelined_node.Protocol) cfg
  | Protocol_kind.Commit_moonshot ->
      run_protocol ?on_commit ?trace
        (module Moonshot.Pipelined_node.Commit_protocol)
        cfg
  | Protocol_kind.Jolteon ->
      run_protocol ?on_commit ?trace (module Jolteon.Jolteon_node.Protocol) cfg
  | Protocol_kind.Hotstuff ->
      run_protocol ?on_commit ?trace (module Hotstuff.Hotstuff_node.Protocol) cfg

let run_seeds cfg ~seeds =
  List.map (fun seed -> run { cfg with Config.seed }) seeds

type summary = {
  blocks_committed : float;
  avg_latency_ms : float;
  transfer_rate_bps : float;
  blocks_per_sec : float;
}

let summarize results =
  if results = [] then invalid_arg "Harness.summarize: no results";
  let mean f = Bft_stats.Descriptive.mean (List.map f results) in
  {
    blocks_committed =
      mean (fun r -> float_of_int r.metrics.Metrics.committed_blocks);
    avg_latency_ms = mean (fun r -> r.metrics.Metrics.avg_latency_ms);
    transfer_rate_bps = mean (fun r -> r.metrics.Metrics.transfer_rate_bps);
    blocks_per_sec = mean (fun r -> r.metrics.Metrics.blocks_per_sec);
  }
