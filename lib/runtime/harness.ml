open Bft_types

let log_src = Logs.Src.create "moonshot.harness" ~doc:"Experiment harness"

module Log = (val Logs.src_log log_src : Logs.LOG)

type fault_summary = {
  liveness : Bft_obs.Liveness.report;
  messages_during_heal : int;
}

type run_result = {
  metrics : Metrics.result;
  messages_sent : int;
  bytes_sent : int;
  events_processed : int;
  config : Config.t;
  fault_summary : fault_summary option;
  client_summary : Bft_mempool.Ingest.summary option;
}

(* Lifetime event counter, atomic so runs on worker domains count too. *)
let total_events = Atomic.make 0
let events_processed_total () = Atomic.get total_events

(* Lifetime allocation counter for the alloc-per-event probe: each run adds
   the bytes its domain allocated between node start-up and the end of the
   event loop (measured with [Gc.allocated_bytes], which is per-domain), so
   bench reports can divide by the event counter above. *)
let total_alloc = Atomic.make 0
let bytes_allocated_total () = Atomic.get total_alloc

let latency_model (cfg : Config.t) =
  match cfg.Config.latency with
  | Config.Wan -> Bft_workload.Regions.latency_model ()
  | Config.Uniform { base; jitter } -> Bft_sim.Latency.Uniform { base; jitter }

let run_protocol (type m) ?(on_commit = fun ~node:_ _ -> ()) ?trace
    ?on_client_command
    (module P : Bft_types.Protocol_intf.S with type msg = m)
    (cfg : Config.t) =
  Config.validate cfg;
  (* A disabled sink installs nothing: the untraced run is the benchmark
     run, instruction for instruction. *)
  let trace =
    match trace with
    | Some t when Bft_obs.Trace.enabled t -> Some t
    | Some _ | None -> None
  in
  let faults = Bft_faults.Fault_schedule.sorted cfg.Config.faults in
  let faulted = not (Bft_faults.Fault_schedule.is_empty faults) in
  let logical = faulted && cfg.Config.logical_faults in
  let lg =
    if logical then
      Some (Bft_faults.Logical.of_schedule_exn ~n:cfg.Config.n faults)
    else None
  in
  let network =
    Bft_sim.Network.make
      ?bandwidth_bps:cfg.Config.bandwidth_bps
      ~gst:cfg.Config.gst_ms ~pre_gst_extra:cfg.Config.pre_gst_extra_ms
      ~duplicate_prob:cfg.Config.duplicate_prob
      ~drop_prob:cfg.Config.drop_prob
      ~latency:(latency_model cfg) ~delta:cfg.Config.delta_ms ()
  in
  (* Client-traffic ingestion: one shared coordinator per run.  The arrival
     stream and lane state machine are pure functions of the spec, and
     contents are derived by quorum-commit-order replay, so sharing one
     instance across all (honest) leaders models what every validator's
     local replayer would compute. *)
  let ingest =
    Option.map
      (fun spec ->
        Bft_mempool.Ingest.create ?on_command:on_client_command ~spec
          ~n:cfg.Config.n ~view_ms:cfg.Config.delta_ms ())
      cfg.Config.clients
  in
  let engine =
    let cpu_cost = if cfg.Config.model_cpu then Some P.cpu_cost else None in
    (* With ingestion on, batch contents travel client→validator on the
       dissemination path (Narwhal-style): a proposal's ordering cost is its
       header + batch reference, so shed the in-band payload bytes.  Sync
       responses keep theirs — catch-up really retransmits contents. *)
    let msg_size =
      match ingest with
      | None -> P.msg_size
      | Some _ ->
          fun m ->
            (match P.classify m with
            | `Proposal -> P.msg_size m - P.payload_bytes m
            | `Vote | `Timeout | `Other -> P.msg_size m)
    in
    Bft_sim.Engine.create ~n:cfg.Config.n ~network ~seed:cfg.Config.seed
      ~msg_size ?cpu_cost ()
  in
  let metrics = Metrics.create ~n:cfg.Config.n () in
  (* The online monitor only exists for fault runs; an unfaulted run keeps
     the exact callback/instruction profile it had without fault support. *)
  let monitor =
    if faulted then
      Some
        (Bft_obs.Liveness.create ~n:cfg.Config.n ~delta:cfg.Config.delta_ms
           ~gst:cfg.Config.gst_ms ())
    else None
  in
  (match trace with
  | None -> ()
  | Some sink ->
      Bft_sim.Engine.set_delivery_tap engine (fun ~time ~src ~dst msg ->
          Bft_obs.Trace.emit sink
            {
              Bft_obs.Trace.time;
              node = dst;
              kind =
                Bft_obs.Trace.Delivered
                  {
                    src;
                    cls = P.classify msg;
                    view = P.view_of msg;
                    bytes = P.msg_size msg;
                  };
            }));
  (* Metrics has a single quorum-commit observer slot: compose the trace
     emitter, the liveness monitor and the ingest replayer into it. *)
  (match (trace, monitor, ingest) with
  | None, None, None -> ()
  | _ ->
      Metrics.set_on_quorum_commit metrics (fun ~node ~time block ->
          (match monitor with
          | Some mon ->
              Bft_obs.Liveness.note_quorum_commit mon ~time
                ~height:block.Block.height
                ~hash:(Hash.to_int block.Block.hash)
          | None -> ());
          (match trace with
          | Some sink ->
              Bft_obs.Trace.emit sink
                {
                  Bft_obs.Trace.time;
                  node;
                  kind =
                    Bft_obs.Trace.Quorum_commit
                      { view = block.Block.view; height = block.Block.height };
                }
          | None -> ());
          match ingest with
          | Some ing ->
              let drained =
                Bft_mempool.Ingest.on_quorum_commit ing
                  ~payload:block.Block.payload ~time
              in
              (match trace with
              | Some sink ->
                  let r = Bft_mempool.Ingest.batch_report ing ~count:drained in
                  Bft_obs.Trace.emit sink
                    {
                      Bft_obs.Trace.time;
                      node;
                      kind =
                        Bft_obs.Trace.Client_batch
                          {
                            view = block.Block.view;
                            height = block.Block.height;
                            count = r.Bft_mempool.Ingest.count;
                            pending = r.Bft_mempool.Ingest.pool_pending;
                            p50_ms = r.Bft_mempool.Ingest.cum_p50_ms;
                            p99_ms = r.Bft_mempool.Ingest.cum_p99_ms;
                          };
                    }
              | None -> ())
          | None -> ()));
  let validators = Validator_set.make cfg.Config.n in
  let leader_of =
    Bft_workload.Schedules.leader_of cfg.Config.schedule ~n:cfg.Config.n
      ~f':cfg.Config.f_actual
  in
  (* Logical-clock fault machinery: the current incarnation of every node
     (for view reads) and a forward reference to the between-events hook
     the faulted block installs below.  Both are inert unless [logical]:
     the hook stays a no-op and handlers are installed unwrapped. *)
  let node_refs : P.node option array = Array.make cfg.Config.n None in
  let after_event_hook = ref (fun (_ : int) -> ()) in
  let install id node =
    node_refs.(id) <- Some node;
    if logical then
      Bft_sim.Engine.set_handler engine id (fun ~src msg ->
          P.handle node ~src msg;
          !after_event_hook id)
    else Bft_sim.Engine.set_handler engine id (P.handle node)
  in
  let env_of id =
    {
      Env.id;
      validators;
      delta = cfg.Config.delta_ms;
      now = (fun () -> Bft_sim.Engine.now engine);
      send = (fun dst msg -> Bft_sim.Engine.send engine ~src:id ~dst msg);
      multicast = (fun msg -> Bft_sim.Engine.multicast engine ~src:id msg);
      set_timer =
        (fun delay f ->
          let f =
            if logical then (fun () ->
              f ();
              !after_event_hook id)
            else f
          in
          Bft_sim.Engine.set_timer ~owner:id engine delay f);
      leader_of;
      make_payload =
        (fun ~view ~parent ->
          match ingest with
          | Some ing ->
              Bft_mempool.Ingest.cut ing ~view ~parent
                ~now:(Bft_sim.Engine.now engine)
          | None -> Payload.make ~id:view ~size_bytes:cfg.Config.payload_bytes);
      on_commit =
        (fun block ->
          (match trace with
          | None -> ()
          | Some sink ->
              Bft_obs.Trace.emit sink
                {
                  Bft_obs.Trace.time = Bft_sim.Engine.now engine;
                  node = id;
                  kind =
                    Bft_obs.Trace.Committed
                      { view = block.Block.view; height = block.Block.height };
                });
          (match monitor with
          | Some mon ->
              Bft_obs.Liveness.note_commit mon ~node:id
                ~time:(Bft_sim.Engine.now engine)
                ~height:block.Block.height
          | None -> ());
          Metrics.on_commit metrics ~node:id
            ~time:(Bft_sim.Engine.now engine)
            block;
          on_commit ~node:id block);
      on_propose =
        (fun block ->
          Metrics.on_propose metrics ~time:(Bft_sim.Engine.now engine) block);
      probe =
        (match trace with
        | None -> None
        | Some sink ->
            Some
              (fun ev ->
                Bft_obs.Trace.emit sink
                  {
                    Bft_obs.Trace.time = Bft_sim.Engine.now engine;
                    node = id;
                    kind = Bft_obs.Trace.Node_event ev;
                  }));
    }
  in
  let silent id =
    Bft_workload.Schedules.is_byzantine ~n:cfg.Config.n ~f':cfg.Config.f_actual
      id
  in
  let behaviour_of id =
    if silent id then Some Byzantine.Silent
    else if List.mem id cfg.Config.equivocators then Some Byzantine.Equivocate
    else List.assoc_opt id cfg.Config.byzantine
  in
  (* WALs exist only in fault runs; each participant gets one that outlives
     its incarnations, so a recovery restarts the node from its own durable
     state (and only from that — proving the double-vote-prevention story). *)
  let wals =
    if faulted then Array.init cfg.Config.n (fun _ -> P.wal_create ())
    else [||]
  in
  let wal_of id = if faulted then Some wals.(id) else None in
  let nodes =
    List.filter_map
      (fun id ->
        let make ?(equivocate = false) env =
          let node = P.create ~equivocate ?wal:(wal_of id) env in
          install id node;
          Some node
        in
        match behaviour_of id with
        | Some Byzantine.Silent -> None
        | Some Byzantine.Equivocate -> make ~equivocate:true (env_of id)
        | Some Byzantine.Withhold_votes ->
            make
              (Env.with_outgoing_filter
                 ~keep:(fun msg -> P.classify msg <> `Vote)
                 (env_of id))
        | Some (Byzantine.Delay_all delay) ->
            make (Env.with_outgoing_delay ~delay (env_of id))
        | None -> make (env_of id))
      (List.init cfg.Config.n (fun i -> i))
  in
  (* Interpret the fault schedule: crash/recover thunks, link-level window
     overlays, liveness checkpoints and healing-traffic accounting. *)
  let messages_during_heal = ref 0 in
  (if faulted then begin
     let module FS = Bft_faults.Fault_schedule in
     let mon = Option.get monitor in
     List.iter
       (fun id ->
         if behaviour_of id <> None then Bft_obs.Liveness.set_exempt mon id)
       (List.init cfg.Config.n (fun i -> i));
     let emit_fault ~time ~node fault =
       match trace with
       | Some sink ->
           Bft_obs.Trace.emit sink
             { Bft_obs.Trace.time; node; kind = Bft_obs.Trace.Fault fault }
       | None -> ()
     in
     match lg with
     | Some lg ->
         (* View-anchored interpretation — the sim-side mirror of the live
            transport's [fault_clock = Views].  Sends are gated on the
            sender's current view (the engine's link filter runs at send
            time), a crash lands between the victim's events once its own
            view reaches the anchor, and a recovery fires when the
            observer (node 0) passes the recovery anchor.  No wall-clock
            machinery runs, so the committed chain is a pure function of
            the protocol and the schedule — identical on simulator and
            sockets ([crossval-chaos]). *)
         let view_of id =
           match node_refs.(id) with
           | Some nd -> P.current_view nd
           | None -> 0
         in
         Bft_sim.Engine.set_link_filter engine (fun ~src ~dst ~now:_ ->
             not
               (Bft_faults.Logical.cut lg ~src ~src_view:(view_of src) ~dst));
         let crashed = Array.make cfg.Config.n false in
         let recoveries = Bft_faults.Logical.recoveries lg in
         let next_order = ref 0 in
         let k_ms = Bft_obs.Liveness.bound mon in
         let rec do_recover node =
           let time = Bft_sim.Engine.now engine in
           Log.debug (fun m ->
               m "fault: logical recover node %d at %.0f" node time);
           Bft_sim.Engine.recover engine node;
           Bft_obs.Liveness.note_recover mon ~node ~time;
           emit_fault ~time ~node Bft_obs.Trace.Recover;
           let fresh = P.create ?wal:(wal_of node) (env_of node) in
           install node fresh;
           P.start fresh;
           (* After the last recovery the network is disruption-free
              modulo partition windows, whose view anchors pass within a
              few view changes: enforce the liveness bound from here, as
              the wall-clock path does from each heal time. *)
           if !next_order = List.length recoveries then
             Bft_sim.Engine.schedule_at engine (time +. k_ms) (fun () ->
                 Bft_obs.Liveness.check mon ~since:time ~now:(time +. k_ms))
         and after_event id =
           (match Bft_faults.Logical.crash_anchor lg id with
           | Some v when (not crashed.(id)) && view_of id >= v ->
               let time = Bft_sim.Engine.now engine in
               Log.debug (fun m ->
                   m "fault: logical crash node %d at %.0f (view %d)" id
                     time (view_of id));
               crashed.(id) <- true;
               Bft_sim.Engine.crash engine id;
               Bft_obs.Liveness.note_crash mon ~node:id ~time;
               emit_fault ~time ~node:id Bft_obs.Trace.Crash
           | _ -> ());
           if id = Bft_faults.Logical.observer lg then
             let ov = view_of id in
             let rec fire () =
               match List.nth_opt recoveries !next_order with
               | Some (v, node) when v <= ov ->
                   incr next_order;
                   do_recover node;
                   fire ()
               | _ -> ()
             in
             fire ()
         in
         after_event_hook := after_event
     | None ->
     let overlay = Bft_faults.Overlay.compile ~n:cfg.Config.n faults in
     if Bft_faults.Overlay.has_link_effects overlay then begin
       (* Probabilistic loss draws come from a dedicated stream so the
          engine's own RNGs stay on the sequence an unfaulted run sees. *)
       let fault_rng = Bft_sim.Rng.create (cfg.Config.seed lxor 0x5eed_fa17) in
       Bft_sim.Engine.set_link_filter engine (fun ~src ~dst ~now ->
           (not (Bft_faults.Overlay.cut overlay ~src ~dst ~now))
           &&
           let p = Bft_faults.Overlay.loss_prob overlay ~now in
           p <= 0. || Bft_sim.Rng.float fault_rng 1. >= p);
       Bft_sim.Engine.set_link_delay engine (fun ~src:_ ~dst:_ ~now ->
           Bft_faults.Overlay.extra_delay overlay ~now)
     end;
     let window_edges from_ until start_fault end_fault =
       if Option.is_some trace then begin
         Bft_sim.Engine.schedule_at engine from_ (fun () ->
             emit_fault ~time:from_ ~node:(-1) start_fault);
         Bft_sim.Engine.schedule_at engine until (fun () ->
             emit_fault ~time:until ~node:(-1) end_fault)
       end
     in
     List.iter
       (fun ev ->
         match ev with
         | FS.Crash { node; at } ->
             Bft_sim.Engine.schedule_at engine at (fun () ->
                 Log.debug (fun m -> m "fault: crash node %d at %.0f" node at);
                 Bft_sim.Engine.crash engine node;
                 Bft_obs.Liveness.note_crash mon ~node ~time:at;
                 emit_fault ~time:at ~node Bft_obs.Trace.Crash)
         | FS.Recover { node; at } ->
             Bft_sim.Engine.schedule_at engine at (fun () ->
                 Log.debug (fun m ->
                     m "fault: recover node %d at %.0f" node at);
                 Bft_sim.Engine.recover engine node;
                 Bft_obs.Liveness.note_recover mon ~node ~time:at;
                 emit_fault ~time:at ~node Bft_obs.Trace.Recover;
                 (* Rebuild the node from its WAL; [start] resumes from the
                    recorded view and the block synchronizer refills the
                    store (the node catches up instead of re-voting). *)
                 let fresh = P.create ?wal:(wal_of node) (env_of node) in
                 Bft_sim.Engine.set_handler engine node (P.handle fresh);
                 P.start fresh)
         | FS.Partition { from_; until; _ } ->
             window_edges from_ until Bft_obs.Trace.Partition_start
               Bft_obs.Trace.Partition_heal
         | FS.Link_loss { from_; until; _ } ->
             window_edges from_ until Bft_obs.Trace.Loss_start
               Bft_obs.Trace.Loss_end
         | FS.Delay_spike { from_; until; _ } ->
             window_edges from_ until Bft_obs.Trace.Delay_start
               Bft_obs.Trace.Delay_end)
       faults;
     (* One liveness checkpoint per surviving disruption-free point; the
        supersession semantics live in {!FS.checkpoints}, shared with the
        net-trace liveness replay. *)
     let k_ms = Bft_obs.Liveness.bound mon in
     let horizon = cfg.Config.duration_ms in
     let heals = FS.heal_times faults in
     List.iter
       (fun d ->
         Bft_sim.Engine.schedule_at engine (d +. k_ms) (fun () ->
             Bft_obs.Liveness.check mon ~since:d ~now:(d +. k_ms)))
       (FS.checkpoints ~gst:cfg.Config.gst_ms ~horizon ~bound:k_ms faults);
     (* Healing traffic: messages sent inside the (merged) [heal,
        heal + k * Delta] windows, from the engine's own counters. *)
     let rec merge = function
       | (a, b) :: (c, d) :: rest when c <= b ->
           merge ((a, Float.max b d) :: rest)
       | span :: rest -> span :: merge rest
       | [] -> []
     in
     let heal_windows =
       merge
         (List.map
            (fun d -> (d, Float.min (d +. k_ms) horizon))
            (List.sort_uniq Float.compare heals))
     in
     let window_start = ref 0 in
     List.iter
       (fun (a, b) ->
         Bft_sim.Engine.schedule_at engine a (fun () ->
             window_start :=
               (Bft_sim.Engine.stats engine).Bft_sim.Engine.messages_sent);
         Bft_sim.Engine.schedule_at engine b (fun () ->
             messages_during_heal :=
               !messages_during_heal
               + (Bft_sim.Engine.stats engine).Bft_sim.Engine.messages_sent
               - !window_start))
       heal_windows
   end);
  Log.debug (fun m -> m "starting run: %a" Config.pp cfg);
  let alloc0 = Gc.allocated_bytes () in
  List.iter P.start nodes;
  (* A logical crash anchored at a view the node reaches during start-up
     must land before any message is delivered. *)
  if logical then
    Array.iteri
      (fun id -> function Some _ -> !after_event_hook id | None -> ())
      node_refs;
  Bft_sim.Engine.run engine ~until:cfg.Config.duration_ms;
  let alloc = Gc.allocated_bytes () -. alloc0 in
  let stats = Bft_sim.Engine.stats engine in
  ignore
    (Atomic.fetch_and_add total_events stats.Bft_sim.Engine.events_processed
      : int);
  ignore (Atomic.fetch_and_add total_alloc (int_of_float alloc) : int);
  let result =
    {
      metrics = Metrics.finish metrics ~duration_ms:cfg.Config.duration_ms;
      messages_sent = stats.Bft_sim.Engine.messages_sent;
      bytes_sent = stats.Bft_sim.Engine.bytes_sent;
      events_processed = stats.Bft_sim.Engine.events_processed;
      config = cfg;
      fault_summary =
        Option.map
          (fun mon ->
            {
              liveness = Bft_obs.Liveness.report mon;
              messages_during_heal = !messages_during_heal;
            })
          monitor;
      client_summary = Option.map Bft_mempool.Ingest.summary ingest;
    }
  in
  Log.info (fun m ->
      m "run done: %a -> %d blocks, %.1f ms avg latency, %d msgs" Config.pp cfg
        result.metrics.Metrics.committed_blocks
        result.metrics.Metrics.avg_latency_ms result.messages_sent);
  result

let run ?on_commit ?trace ?on_client_command (cfg : Config.t) =
  let go p = run_protocol ?on_commit ?trace ?on_client_command p cfg in
  match cfg.Config.protocol with
  | Protocol_kind.Simple_moonshot -> go (module Moonshot.Simple_node.Protocol)
  | Protocol_kind.Pipelined_moonshot ->
      go (module Moonshot.Pipelined_node.Protocol)
  | Protocol_kind.Commit_moonshot ->
      go (module Moonshot.Pipelined_node.Commit_protocol)
  | Protocol_kind.Jolteon -> go (module Jolteon.Jolteon_node.Protocol)
  | Protocol_kind.Hotstuff -> go (module Hotstuff.Hotstuff_node.Protocol)

let run_seeds cfg ~seeds =
  List.map (fun seed -> run { cfg with Config.seed }) seeds

type summary = {
  blocks_committed : float;
  avg_latency_ms : float;
  transfer_rate_bps : float;
  blocks_per_sec : float;
}

let summarize results =
  if results = [] then invalid_arg "Harness.summarize: no results";
  let mean f = Bft_stats.Descriptive.mean (List.map f results) in
  {
    blocks_committed =
      mean (fun r -> float_of_int r.metrics.Metrics.committed_blocks);
    avg_latency_ms = mean (fun r -> r.metrics.Metrics.avg_latency_ms);
    transfer_rate_bps = mean (fun r -> r.metrics.Metrics.transfer_rate_bps);
    blocks_per_sec = mean (fun r -> r.metrics.Metrics.blocks_per_sec);
  }
