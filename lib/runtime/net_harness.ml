let quorum ~n = n - ((n - 1) / 3)

let config kind ~n ~blocks =
  {
    (Bft_net.Tcp.default ~n ~target_blocks:blocks) with
    Bft_net.Tcp.leader_of =
      Bft_workload.Schedules.leader_of Bft_workload.Schedules.Round_robin ~n
        ~f':0;
    protocol_name = Protocol_kind.name kind;
  }

let run kind cfg =
  match kind with
  | Protocol_kind.Simple_moonshot ->
      Bft_net.Tcp.run (module Moonshot.Simple_node.Protocol) cfg
  | Protocol_kind.Pipelined_moonshot ->
      Bft_net.Tcp.run (module Moonshot.Pipelined_node.Protocol) cfg
  | Protocol_kind.Commit_moonshot ->
      Bft_net.Tcp.run (module Moonshot.Pipelined_node.Commit_protocol) cfg
  | Protocol_kind.Jolteon ->
      Bft_net.Tcp.run (module Jolteon.Jolteon_node.Protocol) cfg
  | Protocol_kind.Hotstuff ->
      Bft_net.Tcp.run (module Hotstuff.Hotstuff_node.Protocol) cfg

let check (result : Bft_net.Tcp.result) ~target =
  let open Bft_net.Tcp in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if not result.reached_target then
    fail "cluster did not reach %d blocks within the timeout" target
  else
    let problems =
      Array.to_list result.nodes
      |> List.filter_map (fun nr ->
             let k = List.length nr.commits in
             if k < target then
               Some
                 (Printf.sprintf "node %d committed only %d/%d blocks" nr.id k
                    target)
             else
               List.find_mapi
                 (fun i c ->
                   if c.c_height <> i + 1 then
                     Some
                       (Printf.sprintf
                          "node %d: commit %d has height %d, expected %d"
                          nr.id i c.c_height (i + 1))
                   else None)
                 nr.commits)
    in
    match problems with
    | p :: _ -> Error p
    | [] -> (
        (* Pairwise common-prefix agreement against node 0. *)
        let hashes nr =
          Array.of_list (List.map (fun c -> c.c_hash) nr.commits)
        in
        let h0 = hashes result.nodes.(0) in
        let disagrees =
          Array.to_list result.nodes
          |> List.find_map (fun nr ->
                 let h = hashes nr in
                 let common = min (Array.length h0) (Array.length h) in
                 let rec scan i =
                   if i >= common then None
                   else if h.(i) <> h0.(i) then
                     Some
                       (Printf.sprintf
                          "nodes 0 and %d disagree at height %d: %Lx vs %Lx"
                          nr.id (i + 1) h0.(i) h.(i))
                   else scan (i + 1)
                 in
                 scan 0)
        in
        match disagrees with Some p -> Error p | None -> Ok ())

type commit_id = { height : int; view : int; hash : int64 }

type crossval = {
  sim_commits : commit_id list;
  net_commits : commit_id list;
  agree : bool;
}

let cross_validate ?(n = 4) ?(payload_bytes = 0) ~protocol ~blocks () =
  (* Simulator side: the happy-path local config, long enough for [blocks]
     commits at node 0 with room to spare. *)
  let sim_cfg =
    {
      (Config.local protocol ~n) with
      Config.payload_bytes;
      duration_ms = 5_000. +. (float_of_int blocks *. 200.);
    }
  in
  let sim_acc = ref [] in
  let (_ : Harness.run_result) =
    Harness.run
      ~on_commit:(fun ~node b ->
        if node = 0 then
          sim_acc :=
            {
              height = b.Bft_types.Block.height;
              view = b.Bft_types.Block.view;
              hash = Bft_types.Hash.to_int64 b.Bft_types.Block.hash;
            }
            :: !sim_acc)
      sim_cfg
  in
  let take k l = List.filteri (fun i _ -> i < k) l in
  let sim_commits = take blocks (List.rev !sim_acc) in
  if List.length sim_commits < blocks then
    failwith
      (Printf.sprintf "crossval: simulator committed only %d/%d blocks"
         (List.length sim_commits) blocks);
  (* Socket side: same n, same round-robin schedule, same payloads; delta
     large enough that localhost never times out. *)
  let net_cfg =
    { (config protocol ~n ~blocks) with Bft_net.Tcp.payload_bytes }
  in
  let result = run protocol net_cfg in
  let net_commits =
    take blocks
      (List.map
         (fun c ->
           {
             height = c.Bft_net.Tcp.c_height;
             view = c.Bft_net.Tcp.c_view;
             hash = c.Bft_net.Tcp.c_hash;
           })
         result.Bft_net.Tcp.nodes.(0).Bft_net.Tcp.commits)
  in
  if List.length net_commits < blocks then
    failwith
      (Printf.sprintf "crossval: TCP cluster committed only %d/%d blocks"
         (List.length net_commits) blocks);
  { sim_commits; net_commits; agree = sim_commits = net_commits }
