let quorum ~n = n - ((n - 1) / 3)

let config kind ~n ~blocks =
  {
    (Bft_net.Tcp.default ~n ~target_blocks:blocks) with
    Bft_net.Tcp.leader_of =
      Bft_workload.Schedules.leader_of Bft_workload.Schedules.Round_robin ~n
        ~f':0;
    protocol_name = Protocol_kind.name kind;
  }

let run kind cfg =
  match kind with
  | Protocol_kind.Simple_moonshot ->
      Bft_net.Tcp.run (module Moonshot.Simple_node.Protocol) cfg
  | Protocol_kind.Pipelined_moonshot ->
      Bft_net.Tcp.run (module Moonshot.Pipelined_node.Protocol) cfg
  | Protocol_kind.Commit_moonshot ->
      Bft_net.Tcp.run (module Moonshot.Pipelined_node.Commit_protocol) cfg
  | Protocol_kind.Jolteon ->
      Bft_net.Tcp.run (module Jolteon.Jolteon_node.Protocol) cfg
  | Protocol_kind.Hotstuff ->
      Bft_net.Tcp.run (module Hotstuff.Hotstuff_node.Protocol) cfg

let check (result : Bft_net.Tcp.result) ~target =
  let open Bft_net.Tcp in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if not result.reached_target then
    fail "cluster did not reach %d blocks within the timeout" target
  else
    let problems =
      Array.to_list result.nodes
      |> List.filter_map (fun nr ->
             let k = List.length nr.commits in
             if k < target then
               Some
                 (Printf.sprintf "node %d committed only %d/%d blocks" nr.id k
                    target)
             else
               List.find_mapi
                 (fun i c ->
                   if c.c_height <> i + 1 then
                     Some
                       (Printf.sprintf
                          "node %d: commit %d has height %d, expected %d"
                          nr.id i c.c_height (i + 1))
                   else None)
                 nr.commits)
    in
    match problems with
    | p :: _ -> Error p
    | [] -> (
        (* Pairwise common-prefix agreement against node 0. *)
        let hashes nr =
          Array.of_list (List.map (fun c -> c.c_hash) nr.commits)
        in
        let h0 = hashes result.nodes.(0) in
        let disagrees =
          Array.to_list result.nodes
          |> List.find_map (fun nr ->
                 let h = hashes nr in
                 let common = min (Array.length h0) (Array.length h) in
                 let rec scan i =
                   if i >= common then None
                   else if h.(i) <> h0.(i) then
                     Some
                       (Printf.sprintf
                          "nodes 0 and %d disagree at height %d: %Lx vs %Lx"
                          nr.id (i + 1) h0.(i) h.(i))
                   else scan (i + 1)
                 in
                 scan 0)
        in
        match disagrees with Some p -> Error p | None -> Ok ())

let check_chaos (result : Bft_net.Tcp.result) ~target =
  let open Bft_net.Tcp in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if not result.reached_target then
    fail "cluster did not reach %d blocks within the timeout" target
  else begin
    (* A recovered node's commit log is not dense (pre-crash commits may
       be lost with the incarnation, catch-up re-commits others), so the
       chaos variant of {!check} asserts only what holds under crashes:
       every node reached the target height, and no two nodes ever
       committed different hashes at the same height. *)
    let seen : (int, int * int64) Hashtbl.t = Hashtbl.create 64 in
    let problem = ref None in
    Array.iter
      (fun nr ->
        let top = List.fold_left (fun a c -> max a c.c_height) 0 nr.commits in
        if top < target && !problem = None then
          problem :=
            Some
              (Printf.sprintf "node %d topped out at height %d/%d" nr.id top
                 target);
        List.iter
          (fun c ->
            match Hashtbl.find_opt seen c.c_height with
            | Some (id0, h0) when h0 <> c.c_hash ->
                if !problem = None then
                  problem :=
                    Some
                      (Printf.sprintf
                         "nodes %d and %d disagree at height %d: %Lx vs %Lx"
                         id0 nr.id c.c_height h0 c.c_hash)
            | Some _ -> ()
            | None -> Hashtbl.add seen c.c_height (nr.id, c.c_hash))
          nr.commits)
      result.nodes;
    match !problem with Some p -> Error p | None -> Ok ()
  end

let net_liveness (result : Bft_net.Tcp.result) ~delta =
  let open Bft_net.Tcp in
  let n = Array.length result.nodes in
  (* The monitor's GST is the last scheduled disruption as it actually
     happened on the wall clock: everything after it is the window the
     liveness bound speaks about. *)
  let gst =
    List.fold_left (fun a fe -> Float.max a fe.fe_time_ms) 0.
      result.fault_events
  in
  let mon = Bft_obs.Liveness.create ~n ~delta ~gst () in
  (* Replay in wall-time order; same-time ties resolve fault edges before
     commits and quorum milestones after individual commits, matching the
     order the simulator harness generates them in. *)
  let events = ref [] in
  let add t pri run = events := (t, pri, run) :: !events in
  List.iter
    (fun fe ->
      match fe.fe_kind with
      | Bft_obs.Trace.Crash ->
          add fe.fe_time_ms 0 (fun () ->
              Bft_obs.Liveness.note_crash mon ~node:fe.fe_node
                ~time:fe.fe_time_ms)
      | Bft_obs.Trace.Recover ->
          add fe.fe_time_ms 0 (fun () ->
              Bft_obs.Liveness.note_recover mon ~node:fe.fe_node
                ~time:fe.fe_time_ms)
      | _ -> ())
    result.fault_events;
  Array.iter
    (fun nr ->
      List.iter
        (fun c ->
          add c.c_time_ms 1 (fun () ->
              Bft_obs.Liveness.note_commit mon ~node:nr.id ~time:c.c_time_ms
                ~height:c.c_height))
        nr.commits)
    result.nodes;
  (* Quorum commits: the time the [quorum]-th distinct node first commits
     a given (height, hash). *)
  let q = quorum ~n in
  let firsts : (int * int64, (int, float) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iter
    (fun nr ->
      List.iter
        (fun c ->
          let key = (c.c_height, c.c_hash) in
          let m =
            match Hashtbl.find_opt firsts key with
            | Some m -> m
            | None ->
                let m = Hashtbl.create 8 in
                Hashtbl.add firsts key m;
                m
          in
          match Hashtbl.find_opt m nr.id with
          | Some t when t <= c.c_time_ms -> ()
          | _ -> Hashtbl.replace m nr.id c.c_time_ms)
        nr.commits)
    result.nodes;
  Hashtbl.iter
    (fun (height, hash) m ->
      let times =
        Hashtbl.fold (fun _ t acc -> t :: acc) m []
        |> List.sort Float.compare
      in
      if List.length times >= q then
        let t = List.nth times (q - 1) in
        add t 2 (fun () ->
            Bft_obs.Liveness.note_quorum_commit mon ~time:t ~height
              ~hash:(Int64.to_int hash)))
    firsts;
  List.iter
    (fun (_, _, run) -> run ())
    (List.sort
       (fun (t1, p1, _) (t2, p2, _) ->
         match Float.compare t1 t2 with 0 -> compare p1 p2 | c -> c)
       !events);
  (* Enforce the bound once, from the last disruption — provided the run
     actually covered that window. *)
  let bound = Bft_obs.Liveness.bound mon in
  if result.wall_ms >= gst +. bound then
    Bft_obs.Liveness.check mon ~since:gst ~now:(gst +. bound);
  Bft_obs.Liveness.report mon

let client_stats (result : Bft_net.Tcp.result) ~spec ~view_ms =
  let open Bft_net.Tcp in
  let n = Array.length result.nodes in
  let q = quorum ~n in
  (* Quorum-commit time per height: the [q]-th smallest first-commit
     time across nodes (client-traffic runs are fault-free, so heights
     identify blocks). *)
  let firsts : (int, (int, float) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun nr ->
      List.iter
        (fun c ->
          let m =
            match Hashtbl.find_opt firsts c.c_height with
            | Some m -> m
            | None ->
                let m = Hashtbl.create 8 in
                Hashtbl.add firsts c.c_height m;
                m
          in
          match Hashtbl.find_opt m nr.id with
          | Some t when t <= c.c_time_ms -> ()
          | _ -> Hashtbl.replace m nr.id c.c_time_ms)
        nr.commits)
    result.nodes;
  let quorum_time height =
    match Hashtbl.find_opt firsts height with
    | None -> None
    | Some m ->
        let times =
          Hashtbl.fold (fun _ t acc -> t :: acc) m []
          |> List.sort Float.compare
        in
        if List.length times >= q then Some (List.nth times (q - 1)) else None
  in
  (* Replay node 0's chain (deduped by height, commit order = chain
     order) through a fresh ingestion site: the commit records carry the
     packed batch references, which is all the replayer needs to rebuild
     every command and its end-to-end latency. *)
  let ing = Bft_mempool.Ingest.create ~spec ~n ~view_ms () in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun c ->
      if not (Hashtbl.mem seen c.c_height) then begin
        Hashtbl.add seen c.c_height ();
        match quorum_time c.c_height with
        | None -> ()
        | Some t ->
            let payload =
              Bft_types.Payload.make ~id:c.c_payload_id
                ~size_bytes:c.c_payload_bytes
            in
            ignore (Bft_mempool.Ingest.on_quorum_commit ing ~payload ~time:t)
      end)
    result.nodes.(0).commits;
  Bft_mempool.Ingest.summary ing

type commit_id = { height : int; view : int; hash : int64 }

type crossval = {
  sim_commits : commit_id list;
  net_commits : commit_id list;
  agree : bool;
}

let cross_validate ?(n = 4) ?(payload_bytes = 0) ~protocol ~blocks () =
  (* Simulator side: the happy-path local config, long enough for [blocks]
     commits at node 0 with room to spare. *)
  let sim_cfg =
    {
      (Config.local protocol ~n) with
      Config.payload_bytes;
      duration_ms = 5_000. +. (float_of_int blocks *. 200.);
    }
  in
  let sim_acc = ref [] in
  let (_ : Harness.run_result) =
    Harness.run
      ~on_commit:(fun ~node b ->
        if node = 0 then
          sim_acc :=
            {
              height = b.Bft_types.Block.height;
              view = b.Bft_types.Block.view;
              hash = Bft_types.Hash.to_int64 b.Bft_types.Block.hash;
            }
            :: !sim_acc)
      sim_cfg
  in
  let take k l = List.filteri (fun i _ -> i < k) l in
  let sim_commits = take blocks (List.rev !sim_acc) in
  if List.length sim_commits < blocks then
    failwith
      (Printf.sprintf "crossval: simulator committed only %d/%d blocks"
         (List.length sim_commits) blocks);
  (* Socket side: same n, same round-robin schedule, same payloads; delta
     large enough that localhost never times out. *)
  let net_cfg =
    { (config protocol ~n ~blocks) with Bft_net.Tcp.payload_bytes }
  in
  let result = run protocol net_cfg in
  let net_commits =
    take blocks
      (List.map
         (fun c ->
           {
             height = c.Bft_net.Tcp.c_height;
             view = c.Bft_net.Tcp.c_view;
             hash = c.Bft_net.Tcp.c_hash;
           })
         result.Bft_net.Tcp.nodes.(0).Bft_net.Tcp.commits)
  in
  if List.length net_commits < blocks then
    failwith
      (Printf.sprintf "crossval: TCP cluster committed only %d/%d blocks"
         (List.length net_commits) blocks);
  { sim_commits; net_commits; agree = sim_commits = net_commits }

type chaos_crossval = {
  schedule : Bft_faults.Fault_schedule.t;
  blocks : int;
  sim_chain : commit_id list;
  thread_chain : commit_id list;
  process_chain : commit_id list;
  agree : bool;
  thread_liveness : Bft_obs.Liveness.report;
  process_liveness : Bft_obs.Liveness.report;
}

let cross_validate_chaos ?(n = 4) ?(seed = 7) ~protocol () =
  let rng = Bft_sim.Rng.create seed in
  let schedule = Bft_faults.Logical.random ~rng ~n in
  let lg = Bft_faults.Logical.of_schedule_exn ~n schedule in
  (* Run well past the last anchor so the recovered node's catch-up and
     the healed partition both sit inside the compared prefix. *)
  let blocks = Bft_faults.Logical.last_anchor lg + 8 in
  let take k l = List.filteri (fun i _ -> i < k) l in
  (* Simulator, view-clock interpretation. *)
  let sim_cfg =
    {
      (Config.local protocol ~n) with
      Config.faults = schedule;
      logical_faults = true;
      duration_ms = 10_000. +. (float_of_int blocks *. 300.);
    }
  in
  let sim_acc = ref [] in
  let (_ : Harness.run_result) =
    Harness.run
      ~on_commit:(fun ~node b ->
        if node = 0 then
          sim_acc :=
            {
              height = b.Bft_types.Block.height;
              view = b.Bft_types.Block.view;
              hash = Bft_types.Hash.to_int64 b.Bft_types.Block.hash;
            }
            :: !sim_acc)
      sim_cfg
  in
  let sim_chain = take blocks (List.rev !sim_acc) in
  if List.length sim_chain < blocks then
    failwith
      (Printf.sprintf "crossval-chaos: simulator committed only %d/%d blocks"
         (List.length sim_chain) blocks);
  (* Sockets, same schedule on the same clock, in both execution modes.
     The link delay keeps view duration well above restart-and-redial
     time so a recovering incarnation never misses its leader slot. *)
  let net_run mode =
    let cfg =
      {
        (config protocol ~n ~blocks) with
        Bft_net.Tcp.mode;
        (* Views with a dead or partitioned leader stall for delta; keep
           it well above a paced view (~3 hops) but far below the 1 s
           fault-free default so stalls stay cheap. *)
        delta_ms = 500.;
        faults = schedule;
        fault_clock = Bft_net.Fault_plane.Views;
        fault_seed = seed;
        link_delay_ms = 20.;
      }
    in
    let result = run protocol cfg in
    (match check_chaos result ~target:blocks with
    | Ok () -> ()
    | Error e ->
        failwith (Printf.sprintf "crossval-chaos (%s): %s"
            (match mode with
            | Bft_net.Tcp.Threads -> "threads"
            | Bft_net.Tcp.Processes -> "processes")
            e));
    let chain =
      take blocks
        (List.map
           (fun c ->
             {
               height = c.Bft_net.Tcp.c_height;
               view = c.Bft_net.Tcp.c_view;
               hash = c.Bft_net.Tcp.c_hash;
             })
           result.Bft_net.Tcp.nodes.(0).Bft_net.Tcp.commits)
    in
    (chain, net_liveness result ~delta:cfg.Bft_net.Tcp.delta_ms)
  in
  let thread_chain, thread_liveness = net_run Bft_net.Tcp.Threads in
  let process_chain, process_liveness = net_run Bft_net.Tcp.Processes in
  {
    schedule;
    blocks;
    sim_chain;
    thread_chain;
    process_chain;
    agree = sim_chain = thread_chain && sim_chain = process_chain;
    thread_liveness;
    process_liveness;
  }

type client_crossval = {
  cc_spec : Bft_mempool.Spec.t;
  cc_blocks : int;
  cc_sim_chain : commit_id list;
  cc_net_chain : commit_id list;
  cc_agree : bool;
  cc_sim_summary : Bft_mempool.Ingest.summary;
  cc_net_summary : Bft_mempool.Ingest.summary;
}

let cross_validate_clients ?(n = 4) ?spec ~protocol ~blocks () =
  let spec =
    match spec with
    | Some s -> s
    | None ->
        {
          Bft_mempool.Spec.default with
          Bft_mempool.Spec.clients = 100_000;
          clock = Bft_mempool.Spec.Views;
          per_view = 32;
        }
  in
  if spec.Bft_mempool.Spec.clock <> Bft_mempool.Spec.Views then
    invalid_arg
      "cross_validate_clients: the spec must use the Views ingest clock \
       (Wall-clock watermarks are substrate-dependent)";
  let take k l = List.filteri (fun i _ -> i < k) l in
  (* Simulator side. *)
  let sim_cfg =
    {
      (Config.local protocol ~n) with
      Config.clients = Some spec;
      duration_ms = 5_000. +. (float_of_int blocks *. 200.);
    }
  in
  let sim_acc = ref [] in
  let sim_res =
    Harness.run
      ~on_commit:(fun ~node b ->
        if node = 0 then
          sim_acc :=
            {
              height = b.Bft_types.Block.height;
              view = b.Bft_types.Block.view;
              hash = Bft_types.Hash.to_int64 b.Bft_types.Block.hash;
            }
            :: !sim_acc)
      sim_cfg
  in
  let sim_chain = take blocks (List.rev !sim_acc) in
  if List.length sim_chain < blocks then
    failwith
      (Printf.sprintf "crossval-clients: simulator committed only %d/%d blocks"
         (List.length sim_chain) blocks);
  let cc_sim_summary =
    match sim_res.Harness.client_summary with
    | Some s -> s
    | None -> assert false
  in
  (* Socket side: same spec — under the Views clock every cut is a pure
     function of the view, so the chains must be bit-identical. *)
  let net_cfg =
    { (config protocol ~n ~blocks) with Bft_net.Tcp.clients = Some spec }
  in
  let result = run protocol net_cfg in
  (match check result ~target:blocks with
  | Ok () -> ()
  | Error e -> failwith ("crossval-clients: " ^ e));
  let net_chain =
    take blocks
      (List.map
         (fun c ->
           {
             height = c.Bft_net.Tcp.c_height;
             view = c.Bft_net.Tcp.c_view;
             hash = c.Bft_net.Tcp.c_hash;
           })
         result.Bft_net.Tcp.nodes.(0).Bft_net.Tcp.commits)
  in
  let cc_net_summary =
    client_stats result ~spec ~view_ms:net_cfg.Bft_net.Tcp.delta_ms
  in
  {
    cc_spec = spec;
    cc_blocks = blocks;
    cc_sim_chain = sim_chain;
    cc_net_chain = net_chain;
    cc_agree = sim_chain = net_chain;
    cc_sim_summary;
    cc_net_summary;
  }
