(** Runs the protocol suite over the live-network substrate ({!Bft_net.Tcp})
    and cross-validates it against the simulator.

    {!Harness} drives a protocol through the discrete-event simulator;
    this module drives the {e same} node modules over real localhost TCP
    sockets, dispatching on {!Protocol_kind.t} exactly like {!Harness.run}
    does.  It also hosts the substrate-equivalence check: on a fault-free
    schedule whose [delta] dwarfs localhost jitter, no timeout ever fires,
    so the committed chain is a pure function of the protocol — both
    substrates must produce the identical commit sequence, and
    {!cross_validate} asserts they do. *)

(** The commit quorum [n - f] with [f = (n - 1) / 3] — the number of
    nodes whose commit makes a block final for latency accounting. *)
val quorum : n:int -> int

(** [config kind ~n ~blocks] — a {!Bft_net.Tcp.config} wired for
    [kind]: round-robin leader schedule, the protocol's canonical name in
    the hello frame, [delta_ms] 1000 (no timeouts on localhost),
    ephemeral ports.  Override fields as usual with record update. *)
val config : Protocol_kind.t -> n:int -> blocks:int -> Bft_net.Tcp.config

(** Launch a cluster of the given protocol (see {!Bft_net.Tcp.run}). *)
val run : Protocol_kind.t -> Bft_net.Tcp.config -> Bft_net.Tcp.result

(** Post-run sanity assertions: the run reached its target, every node
    committed at least [target] blocks, per-node commit heights are
    consecutive from height 1, and all nodes agree on their common prefix
    (same hash at same height).  Returns a human-readable reason on
    failure. *)
val check : Bft_net.Tcp.result -> target:int -> (unit, string) result

(** {!check} for runs with crashes: a recovered node's commit log is not
    dense (pre-crash commits die with the incarnation in process mode,
    catch-up re-commits heights), so this asserts only the crash-tolerant
    invariants — the run reached its target, every node's top committed
    height is at least [target], and no two nodes committed different
    hashes at the same height. *)
val check_chaos : Bft_net.Tcp.result -> target:int -> (unit, string) result

(** Post-hoc liveness audit of a socket run: replays the run's fault
    events, per-node commits and derived quorum commits into a
    {!Bft_obs.Liveness} monitor in wall-time order, with the monitor's
    GST set to the last disruption.  If the run lasted past
    [gst + bound], enforces one {!Bft_obs.Liveness.check} over that
    window (raising [Violation] when commits stalled).  The returned
    {!Bft_obs.Liveness.report}'s [max_quorum_gap_ms] is the bounded
    commit-gap acceptance metric; [recoveries] carries per-crash
    time-to-catch-up. *)
val net_liveness :
  Bft_net.Tcp.result -> delta:float -> Bft_obs.Liveness.report

(** Post-hoc client-traffic accounting for a socket run whose config
    carried [clients = Some spec].  Rebuilds an ingestion site from the
    spec and replays node 0's committed chain through it (the commit
    records carry each block's packed batch reference), computing every
    block's quorum-commit time as the [quorum]-th smallest first-commit
    time across nodes.  The returned summary is the socket-side
    counterpart of {!Harness.run_result.client_summary}: admission and
    backpressure counters, client-perceived end-to-end latency
    percentiles, per-lane fairness and dissemination bytes.  [view_ms]
    converts view-slot submit times to milliseconds under the [Views]
    ingest clock — pass the run's [delta_ms]. *)
val client_stats :
  Bft_net.Tcp.result ->
  spec:Bft_mempool.Spec.t ->
  view_ms:float ->
  Bft_mempool.Ingest.summary

(** One commit as compared across substrates. *)
type commit_id = { height : int; view : int; hash : int64 }

type crossval = {
  sim_commits : commit_id list;  (** Node 0's first [blocks] sim commits. *)
  net_commits : commit_id list;  (** Node 0's first [blocks] TCP commits. *)
  agree : bool;  (** The two sequences are identical. *)
}

(** [cross_validate ~protocol ~blocks ()] replays the fault-free
    round-robin schedule on both substrates ([n] defaults to 4) and
    compares node 0's first [blocks] commits as [(height, view, hash)]
    triples.  Raises [Failure] if either substrate fails to commit
    [blocks] blocks at all. *)
val cross_validate :
  ?n:int -> ?payload_bytes:int -> protocol:Protocol_kind.t -> blocks:int ->
  unit -> crossval

type chaos_crossval = {
  schedule : Bft_faults.Fault_schedule.t;
      (** The drawn logical schedule (times are view numbers). *)
  blocks : int;  (** Compared prefix length: past the last anchor. *)
  sim_chain : commit_id list;  (** Node 0, simulator, view clock. *)
  thread_chain : commit_id list;  (** Node 0, TCP threads mode. *)
  process_chain : commit_id list;  (** Node 0, TCP process mode. *)
  agree : bool;  (** All three chains are identical. *)
  thread_liveness : Bft_obs.Liveness.report;
  process_liveness : Bft_obs.Liveness.report;
}

(** The chaos equivalence check: draw a random logical fault schedule
    ({!Bft_faults.Logical.random} — one crash/recover cycle plus one
    partition window, seeded by [seed]) and run it on three substrates —
    the simulator under [logical_faults], and the TCP cluster under
    [fault_clock = Views] in both threads and process mode (the latter
    with a real [SIGKILL] and a WAL-file rebuild).  Because every fault
    is anchored to protocol views, all three runs must commit the same
    (height, view, hash) chain; {!check_chaos} and {!net_liveness} run
    on both socket results along the way.  Raises [Failure] when a
    substrate fails to commit the prefix at all. *)
val cross_validate_chaos :
  ?n:int -> ?seed:int -> protocol:Protocol_kind.t -> unit -> chaos_crossval

type client_crossval = {
  cc_spec : Bft_mempool.Spec.t;  (** The traffic spec both runs ingested. *)
  cc_blocks : int;  (** Compared prefix length. *)
  cc_sim_chain : commit_id list;  (** Node 0, simulator. *)
  cc_net_chain : commit_id list;  (** Node 0, TCP threads mode. *)
  cc_agree : bool;  (** The two chains are identical. *)
  cc_sim_summary : Bft_mempool.Ingest.summary;
  cc_net_summary : Bft_mempool.Ingest.summary;  (** Via {!client_stats}. *)
}

(** The client-traffic equivalence check: run the same seeded client
    stream through the simulator and through a live TCP cluster and
    assert both commit the identical [(height, view, hash)] chain.  The
    spec must use the [Views] ingest clock (the default here: 100k
    clients, 32 commands per view) — under it a leader's batch cut is a
    pure function of the view number and the parent's cursor, so chain
    agreement means the two substrates replicated the {e same} mempool
    contents command-for-command.  Raises [Invalid_argument] on a
    [Wall]-clock spec and [Failure] when either substrate fails to
    commit the prefix. *)
val cross_validate_clients :
  ?n:int ->
  ?spec:Bft_mempool.Spec.t ->
  protocol:Protocol_kind.t ->
  blocks:int ->
  unit ->
  client_crossval
