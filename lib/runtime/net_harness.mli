(** Runs the protocol suite over the live-network substrate ({!Bft_net.Tcp})
    and cross-validates it against the simulator.

    {!Harness} drives a protocol through the discrete-event simulator;
    this module drives the {e same} node modules over real localhost TCP
    sockets, dispatching on {!Protocol_kind.t} exactly like {!Harness.run}
    does.  It also hosts the substrate-equivalence check: on a fault-free
    schedule whose [delta] dwarfs localhost jitter, no timeout ever fires,
    so the committed chain is a pure function of the protocol — both
    substrates must produce the identical commit sequence, and
    {!cross_validate} asserts they do. *)

(** The commit quorum [n - f] with [f = (n - 1) / 3] — the number of
    nodes whose commit makes a block final for latency accounting. *)
val quorum : n:int -> int

(** [config kind ~n ~blocks] — a {!Bft_net.Tcp.config} wired for
    [kind]: round-robin leader schedule, the protocol's canonical name in
    the hello frame, [delta_ms] 1000 (no timeouts on localhost),
    ephemeral ports.  Override fields as usual with record update. *)
val config : Protocol_kind.t -> n:int -> blocks:int -> Bft_net.Tcp.config

(** Launch a cluster of the given protocol (see {!Bft_net.Tcp.run}). *)
val run : Protocol_kind.t -> Bft_net.Tcp.config -> Bft_net.Tcp.result

(** Post-run sanity assertions: the run reached its target, every node
    committed at least [target] blocks, per-node commit heights are
    consecutive from height 1, and all nodes agree on their common prefix
    (same hash at same height).  Returns a human-readable reason on
    failure. *)
val check : Bft_net.Tcp.result -> target:int -> (unit, string) result

(** One commit as compared across substrates. *)
type commit_id = { height : int; view : int; hash : int64 }

type crossval = {
  sim_commits : commit_id list;  (** Node 0's first [blocks] sim commits. *)
  net_commits : commit_id list;  (** Node 0's first [blocks] TCP commits. *)
  agree : bool;  (** The two sequences are identical. *)
}

(** [cross_validate ~protocol ~blocks ()] replays the fault-free
    round-robin schedule on both substrates ([n] defaults to 4) and
    compares node 0's first [blocks] commits as [(height, view, hash)]
    triples.  Raises [Failure] if either substrate fails to commit
    [blocks] blocks at all. *)
val cross_validate :
  ?n:int -> ?payload_bytes:int -> protocol:Protocol_kind.t -> blocks:int ->
  unit -> crossval
