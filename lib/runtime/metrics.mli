(** Run metrics, following the paper's definitions (Section VI):

    - {e throughput}: blocks committed by at least [2f + 1] nodes during the
      run;
    - {e transfer rate}: committed payload bytes per second;
    - {e latency}: time from a block's creation (its first proposal) to its
      commit by the [(2f + 1)]-th node, averaged over committed blocks.

    The collector also acts as a global safety checker: it records the first
    block committed at every height and raises
    [Bft_chain.Commit_log.Safety_violation] the moment any node commits a
    conflicting block at that height. *)

open Bft_types

type t

val create : n:int -> unit -> t

(** Commit quorum, [2f + 1]. *)
val commit_quorum : t -> int

val on_propose : t -> time:float -> Block.t -> unit
val on_commit : t -> node:int -> time:float -> Block.t -> unit

(** [set_on_quorum_commit t f] installs an observer invoked exactly once per
    block, at the moment the [(2f+1)]-th node commits it — the endpoint of
    the paper's latency metric.  Used by the harness to stamp quorum-commit
    events into a trace ({!Bft_obs.Trace}). *)
val set_on_quorum_commit : t -> (node:int -> time:float -> Block.t -> unit) -> unit

(** Per-block record: when it was created (first proposed) and when the
    [(2f+1)]-th node committed it ([None] if that never happened). *)
type record = {
  block : Block.t;
  created_ms : float;
  quorum_commit_ms : float option;
}

type result = {
  committed_blocks : int;  (** Blocks committed by [>= 2f + 1] nodes. *)
  latencies_ms : float list;  (** One sample per such block. *)
  avg_latency_ms : float;  (** 0 when nothing committed. *)
  payload_bytes_committed : float;
  transfer_rate_bps : float;
  blocks_per_sec : float;
  per_node_committed : int array;
  proposed_blocks : int;
  records : record list;  (** All proposed blocks, by creation time. *)
}

(** [finish t ~duration_ms] computes the aggregates. *)
val finish : t -> duration_ms:float -> result

(** Chain quality: committed blocks per proposer, sorted by node id.  Fair
    rotating-leader protocols spread commits evenly across honest proposers
    (one of the motivations in the paper's introduction). *)
val chain_quality : result -> (int * int) list
