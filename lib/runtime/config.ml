type latency_spec = Wan | Uniform of { base : float; jitter : float }

type t = {
  protocol : Protocol_kind.t;
  n : int;
  f_actual : int;
  schedule : Bft_workload.Schedules.t;
  payload_bytes : int;
  duration_ms : float;
  delta_ms : float;
  gst_ms : float;
  pre_gst_extra_ms : float;
  latency : latency_spec;
  bandwidth_bps : float option;
  model_cpu : bool;
  duplicate_prob : float;
  drop_prob : float;
  seed : int;
  equivocators : int list;
  byzantine : (int * Byzantine.t) list;
  faults : Bft_faults.Fault_schedule.t;
  logical_faults : bool;
  clients : Bft_mempool.Spec.t option;
}

let default protocol ~n =
  {
    protocol;
    n;
    f_actual = 0;
    schedule = Bft_workload.Schedules.Round_robin;
    payload_bytes = 0;
    duration_ms = 60_000.;
    delta_ms = 500.;
    gst_ms = 0.;
    pre_gst_extra_ms = 0.;
    latency = Wan;
    bandwidth_bps = Some Bft_workload.Regions.bandwidth_bps;
    model_cpu = true;
    duplicate_prob = 0.;
    drop_prob = 0.;
    seed = 1;
    equivocators = [];
    byzantine = [];
    faults = Bft_faults.Fault_schedule.empty;
    logical_faults = false;
    clients = None;
  }

let local protocol ~n =
  {
    (default protocol ~n) with
    latency = Uniform { base = 10.; jitter = 5. };
    bandwidth_bps = None;
    model_cpu = false;
    delta_ms = 50.;
    duration_ms = 10_000.;
  }

let validate t =
  if t.n < 1 then invalid_arg "Config: n < 1";
  if t.f_actual < 0 || t.f_actual > (t.n - 1) / 3 then
    invalid_arg "Config: f_actual out of range";
  if t.payload_bytes < 0 then invalid_arg "Config: negative payload";
  if t.duration_ms <= 0. then invalid_arg "Config: non-positive duration";
  if t.delta_ms <= 0. then invalid_arg "Config: non-positive delta";
  if t.gst_ms < 0. || t.pre_gst_extra_ms < 0. then
    invalid_arg "Config: negative gst/pre_gst_extra";
  if t.duplicate_prob < 0. || t.duplicate_prob > 1. then
    invalid_arg "Config: duplicate_prob outside [0, 1]";
  if t.drop_prob < 0. || t.drop_prob > 1. then
    invalid_arg "Config: drop_prob outside [0, 1]";
  let faulty_ids = t.equivocators @ List.map fst t.byzantine in
  List.iter
    (fun i ->
      if i < 0 || i >= t.n then invalid_arg "Config: faulty node out of range";
      if Bft_workload.Schedules.is_byzantine ~n:t.n ~f':t.f_actual i then
        invalid_arg "Config: faulty node overlaps silent Byzantine set")
    faulty_ids;
  let distinct = List.sort_uniq compare faulty_ids in
  let f = (t.n - 1) / 3 in
  if List.length distinct + t.f_actual > f then
    invalid_arg "Config: more faulty nodes than the threat model's f";
  (* The fault schedule shares the same budget: at every instant, crashed +
     Byzantine (silent and behavioural) nodes must not exceed f.  Crash
     targets must be honest — the silent set has no node to crash and a
     behavioural Byzantine node crashing would double-count. *)
  let silent =
    List.filter
      (Bft_workload.Schedules.is_byzantine ~n:t.n ~f':t.f_actual)
      (List.init t.n (fun i -> i))
  in
  Bft_faults.Fault_schedule.validate ~n:t.n ~f
    ~byzantine:(List.sort_uniq compare (silent @ distinct))
    t.faults;
  if t.logical_faults then
    (match Bft_faults.Logical.of_schedule ~n:t.n t.faults with
    | Ok _ -> ()
    | Error e -> invalid_arg ("Config: bad logical schedule: " ^ e));
  Option.iter Bft_mempool.Spec.validate t.clients


let pp ppf t =
  Format.fprintf ppf
    "%a n=%d f'=%d sched=%s p=%dB dur=%.0fms delta=%.0fms seed=%d"
    Protocol_kind.pp t.protocol t.n t.f_actual
    (Bft_workload.Schedules.name t.schedule)
    t.payload_bytes t.duration_ms t.delta_ms t.seed
