(** A deduplicated set of signer identities, as accumulated while collecting
    votes or timeout messages toward a certificate.

    Backed by a packed int word array: [add]/[mem] are single-word bit
    operations, [count] is a popcount sweep over the words, and
    [iter]/[fold] visit set bits without materializing a list — the
    representation every per-quorum hot path (one [add] per received vote)
    relies on to stay allocation-free. *)

type t

(** [create ~n] for signers drawn from [0 .. n-1]. *)
val create : n:int -> t

(** [add t i] records signer [i]; returns [false] when [i] was already
    present.  The index is validated exactly once.  Raises
    [Invalid_argument] when [i] is out of range. *)
val add : t -> int -> bool

val mem : t -> int -> bool

(** Number of distinct signers recorded, by popcount over the words. *)
val count : t -> int

(** The [n] the set was created with. *)
val capacity : t -> int

(** {2 Unchecked word operations}

    Same as {!add}/{!mem} minus the range check.  The caller must guarantee
    [0 <= i < n]; out-of-range indices silently corrupt or read neighbouring
    bits.  Used on paths that already validated the signer (e.g. a message
    source assigned by the engine). *)

val unsafe_add : t -> int -> bool
val unsafe_mem : t -> int -> bool

(** [iter f t] applies [f] to each member in ascending order, without
    allocating.  This is the certificate-formation path's replacement for
    {!to_list}. *)
val iter : (int -> unit) -> t -> unit

(** [fold f t init] folds over members in ascending order. *)
val fold : (int -> 'acc -> 'acc) -> t -> 'acc -> 'acc

(** Members in ascending order as a fresh list.  Reporting/debug only — hot
    paths use {!count}/{!iter}/{!fold}. *)
val to_list : t -> int list

val copy : t -> t
