type t = { bits : Bytes.t; n : int; mutable count : int }

let create ~n =
  if n < 0 then invalid_arg "Signer_set.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n; count = 0 }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Signer_set: signer out of range"

let mem t i =
  check t i;
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let add t i =
  check t i;
  if mem t i then false
  else begin
    let byte = Char.code (Bytes.get t.bits (i / 8)) in
    Bytes.set t.bits (i / 8) (Char.chr (byte lor (1 lsl (i mod 8))));
    t.count <- t.count + 1;
    true
  end

let count t = t.count

(* On the certificate-formation path of every quorum: walk the bitmap a
   byte at a time (skipping zero bytes outright) instead of calling [mem] —
   and its range check — once per bit.  High to low so the prepends come
   out ascending. *)
let to_list t =
  let acc = ref [] in
  for byte_i = Bytes.length t.bits - 1 downto 0 do
    let byte = Char.code (Bytes.unsafe_get t.bits byte_i) in
    if byte <> 0 then begin
      let base = byte_i * 8 in
      for bit = 7 downto 0 do
        if byte land (1 lsl bit) <> 0 then acc := (base + bit) :: !acc
      done
    end
  done;
  !acc

let copy t = { bits = Bytes.copy t.bits; n = t.n; count = t.count }
