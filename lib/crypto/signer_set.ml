(* Packed bitset over an int word array, 32 bits per word: bit [i] of the
   set lives in word [i lsr 5] at position [i land 31].  Word granularity
   keeps every operation branch-light flat-array arithmetic — no byte
   boxing, no per-bit range checks — and [count]/[iter]/[fold] walk whole
   words, skipping empty ones outright.

   The public [add]/[mem] validate the index once and then defer to the
   unchecked word ops, so the certificate-accumulation hot path (one [add]
   per vote, O(n^2) of them per view) pays a single bounds check per
   contribution. *)

type t = { words : int array; n : int }

let bits_per_word = 32

let create ~n =
  if n < 0 then invalid_arg "Signer_set.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; n }

(* SWAR popcount of a 32-bit word; every intermediate fits a native int. *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0f0f0f0f in
  (* Truncate the byte-summing multiply to 32 bits: OCaml ints are wider,
     so without the mask the product's upper bytes leak into the shift. *)
  ((x * 0x01010101) land 0xffffffff) lsr 24

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Signer_set: signer out of range"

let unsafe_mem t i =
  Array.unsafe_get t.words (i lsr 5) land (1 lsl (i land 31)) <> 0

let unsafe_add t i =
  let w = i lsr 5 in
  let bit = 1 lsl (i land 31) in
  let old = Array.unsafe_get t.words w in
  if old land bit <> 0 then false
  else begin
    Array.unsafe_set t.words w (old lor bit);
    true
  end

let mem t i =
  check t i;
  unsafe_mem t i

let add t i =
  check t i;
  unsafe_add t i

let count t =
  let c = ref 0 in
  for w = 0 to Array.length t.words - 1 do
    c := !c + popcount32 (Array.unsafe_get t.words w)
  done;
  !c

let capacity t = t.n

(* Ascending-order iteration, one trailing-zero extraction per set bit.
   [bit] is a power of two, so popcount of [bit - 1] is its index. *)
let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref (Array.unsafe_get t.words w) in
    if !word <> 0 then begin
      let base = w lsl 5 in
      while !word <> 0 do
        let bit = !word land (- !word) in
        f (base + popcount32 (bit - 1));
        word := !word land (!word - 1)
      done
    end
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

(* High-to-low walk so the prepends come out ascending. *)
let to_list t =
  let acc = ref [] in
  for w = Array.length t.words - 1 downto 0 do
    let word = Array.unsafe_get t.words w in
    if word <> 0 then begin
      let base = w lsl 5 in
      for bit = bits_per_word - 1 downto 0 do
        if word land (1 lsl bit) <> 0 then acc := (base + bit) :: !acc
      done
    end
  done;
  !acc

let copy t = { words = Array.copy t.words; n = t.n }
