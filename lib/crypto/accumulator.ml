type 'k entry = { signers : Signer_set.t; mutable complete : bool }
type 'k t = { table : ('k, 'k entry) Hashtbl.t; n : int; threshold : int }

let create ~n ~threshold =
  if threshold < 1 then invalid_arg "Accumulator.create: threshold < 1";
  { table = Hashtbl.create 64; n; threshold }

type outcome =
  | Added of int
  | Duplicate
  | Threshold_reached of int list
  | Already_complete

let entry t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
      let e = { signers = Signer_set.create ~n:t.n; complete = false } in
      Hashtbl.add t.table key e;
      e

let add t key ~signer =
  let e = entry t key in
  if not (Signer_set.add e.signers signer) then Duplicate
  else if e.complete then Already_complete
  else begin
    let c = Signer_set.count e.signers in
    if c >= t.threshold then begin
      e.complete <- true;
      Threshold_reached (Signer_set.to_list e.signers)
    end
    else Added c
  end

let count t key =
  match Hashtbl.find_opt t.table key with
  | None -> 0
  | Some e -> Signer_set.count e.signers

let is_complete t key =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some e -> e.complete

let fold f t init =
  Hashtbl.fold
    (fun key e acc ->
      f key ~signers:(Signer_set.to_list e.signers) ~complete:e.complete acc)
    t.table init
