(* [count] caches [Signer_set.count signers]: the per-vote path must not
   pay a popcount sweep per contribution. *)
type 'k entry = {
  signers : Signer_set.t;
  mutable count : int;
  mutable complete : bool;
}
type 'k t = { table : ('k, 'k entry) Hashtbl.t; n : int; threshold : int }

let create ~n ~threshold =
  if threshold < 1 then invalid_arg "Accumulator.create: threshold < 1";
  { table = Hashtbl.create 64; n; threshold }

type outcome =
  | Added of int
  | Duplicate
  | Threshold_reached of Signer_set.t
  | Already_complete

(* [find]/[Not_found] instead of [find_opt]: the hit path is one lookup per
   received vote and [find_opt] allocates a [Some] per hit. *)
let entry t key =
  match Hashtbl.find t.table key with
  | e -> e
  | exception Not_found ->
      let e = { signers = Signer_set.create ~n:t.n; count = 0; complete = false } in
      Hashtbl.add t.table key e;
      e

let add t key ~signer =
  let e = entry t key in
  if not (Signer_set.add e.signers signer) then Duplicate
  else if e.complete then Already_complete
  else begin
    let c = e.count + 1 in
    e.count <- c;
    if c >= t.threshold then begin
      e.complete <- true;
      Threshold_reached e.signers
    end
    else Added c
  end

let count t key =
  match Hashtbl.find t.table key with
  | e -> e.count
  | exception Not_found -> 0

let is_complete t key =
  match Hashtbl.find t.table key with
  | e -> e.complete
  | exception Not_found -> false

let fold f t init =
  Hashtbl.fold
    (fun key e acc -> f key ~signers:e.signers ~complete:e.complete acc)
    t.table init
