(** Keyed quorum accumulation.

    Collects signer contributions per key (e.g. per [(view, vote-kind,
    block-hash)]) and reports exactly once when a key first reaches the
    threshold.  This is the machinery every node uses to assemble block
    certificates, timeout certificates and commit-vote quorums from
    multicast messages. *)

type 'k t

(** [create ~n ~threshold] accumulates signers in [0 .. n-1] and fires when a
    key reaches [threshold] distinct signers. *)
val create : n:int -> threshold:int -> 'k t

type outcome =
  | Added of int  (** New contribution; payload is the updated count. *)
  | Duplicate  (** This signer already contributed to this key. *)
  | Threshold_reached of Signer_set.t
      (** This contribution was the one that completed the quorum; carries
          the accumulator's {e live} signer set for the key — read it (via
          {!Signer_set.count}/[iter]) before adding further contributions
          for the same key, and {!Signer_set.copy} it if retaining.  Fires
          at most once per key. *)
  | Already_complete  (** Contribution past an already reached quorum. *)

(** [add t key ~signer] registers a contribution. *)
val add : 'k t -> 'k -> signer:int -> outcome

val count : 'k t -> 'k -> int
val is_complete : 'k t -> 'k -> bool

(** Fold over every key with at least one contribution.  [signers] is the
    live set for the key (do not mutate); entry iteration order is
    {e unspecified} (hashtable order), so callers building digests must
    combine entries with a commutative operation. *)
val fold :
  ('k -> signers:Signer_set.t -> complete:bool -> 'acc -> 'acc) ->
  'k t ->
  'acc ->
  'acc
