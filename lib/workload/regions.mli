(** The paper's WAN: five AWS regions and their observed inter-region
    latencies (Table II, 90th percentile, milliseconds).

    Nodes are distributed evenly across the regions round-robin, exactly as
    in the evaluation setting. *)

type region = Us_east_1 | Us_west_1 | Eu_north_1 | Ap_northeast_1 | Ap_southeast_2

(** The five regions, in Table II order. *)
val all : region list

(** [List.length all], i.e. 5. *)
val count : int

(** The AWS region name, e.g. ["us-east-1"]. *)
val name : region -> string

(** Row/column of the region in {!table}, [0 .. count - 1]. *)
val index : region -> int

(** [latency_ms ~src ~dst] is the Table II entry, in ms. *)
val latency_ms : src:region -> dst:region -> float

(** The raw 5x5 latency table, indexed by {!index}. *)
val table : float array array

(** Region of node [i] in an [n]-node network (round-robin assignment). *)
val region_of_node : int -> region

(** The {!Bft_sim.Latency.t} model for a WAN built from the table. *)
val latency_model : unit -> Bft_sim.Latency.t

(** The paper's per-node egress bandwidth: 10 Gbit/s (m5.large burst). *)
val bandwidth_bps : float

(** Print Table II as a formatted latency matrix. *)
val print_table : Format.formatter -> unit
