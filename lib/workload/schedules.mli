(** Leader schedules of the paper's failure experiments (Section VI-B).

    Byzantine (silent) nodes are the last [f'] ids, [n - f' .. n - 1]; a
    schedule is a cyclic arrangement of all [n] nodes that the leader
    election function walks round-robin, so every node leads once per cycle
    (the fair LSO/LCO setting). *)

type t =
  | Round_robin  (** Plain rotation; the happy-path experiments. *)
  | Best_case
      (** [B]: all honest leaders first, then all Byzantine — the best case
          for non-reorg-resilient and pipelined protocols. *)
  | Worst_moonshot
      (** [WM]: honest-then-Byzantine alternating for [2f'] views, then the
          remaining [n - 2f'] honest — worst case for reorg-resilient
          pipelined protocols. *)
  | Worst_jolteon
      (** [WJ]: two-honest-then-Byzantine repeated for [3f'] views, then the
          remaining [n - 3f'] honest — worst case for non-reorg-resilient
          pipelined protocols. *)

(** Every schedule, in the order above. *)
val all : t list

(** Canonical name: ["round-robin"], ["B"], ["WM"] or ["WJ"]. *)
val name : t -> string

(** Inverse of {!name}; [None] on unknown names. *)
val of_name : string -> t option

(** The Byzantine node ids: [n - f' .. n - 1].
    Raises [Invalid_argument] when [f' > (n - 1) / 3] or [f' < 0]. *)
val byzantine_ids : n:int -> f':int -> int list

(** [is_byzantine ~n ~f' i] — is node [i] in {!byzantine_ids}? *)
val is_byzantine : n:int -> f':int -> int -> bool

(** The length-[n] cyclic arrangement of leaders.
    Raises [Invalid_argument] on inconsistent [n], [f']. *)
val arrangement : t -> n:int -> f':int -> int array

(** [leader_of t ~n ~f'] maps a view (1-based) to its leader's node id. *)
val leader_of : t -> n:int -> f':int -> int -> int
