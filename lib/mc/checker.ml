open Bft_types
module Engine = Bft_sim.Engine
module Trace = Bft_obs.Trace

type config = {
  n : int;
  delta : float;
  view_bound : int;
  max_depth : int;
  timer_budget : int;
  reorder_window : int;
  equivocators : int list;
  faults : Mc_schedule.step list;
  payload_bytes : int;
}

let config ?(delta = 10.) ?(max_depth = 128) ?(timer_budget = 4)
    ?(reorder_window = 1) ?(equivocators = []) ?(faults = [])
    ?(payload_bytes = 0) ~n ~view_bound () =
  if n < 1 then invalid_arg "Checker.config: n < 1";
  if view_bound < 1 then invalid_arg "Checker.config: view_bound < 1";
  if max_depth < 1 then invalid_arg "Checker.config: max_depth < 1";
  if timer_budget < 0 then invalid_arg "Checker.config: timer_budget < 0";
  if reorder_window < 1 then invalid_arg "Checker.config: reorder_window < 1";
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Checker.config: equivocator out of range")
    equivocators;
  {
    n;
    delta;
    view_bound;
    max_depth;
    timer_budget;
    reorder_window;
    equivocators;
    faults;
    payload_bytes;
  }

module Make (P : Protocol_intf.S) = struct
  (* The protocol nodes are mutable and unclonable, so exploration is
     stateless: every frontier path is replayed from a fresh world.  A world
     owns the engine (capture hook installed), the nodes, their WALs, and
     the checker's own bookkeeping — the message pool, captured timers, the
     fault cursor and the invariant tables. *)

  type msg_entry = {
    e_src : int;
    e_dst : int;
    e_digest : int64;
    e_seq : int;  (** global capture order — ranks a destination's arrivals *)
    e_ev : P.msg Engine.pending;
  }

  type timer_entry = {
    t_owner : int;
    t_idx : int;  (** per-owner capture sequence — deterministic per path *)
    t_ev : P.msg Engine.pending;
    mutable t_fired : bool;
  }

  type world = {
    cfg : config;
    engine : P.msg Engine.t;
    nodes : P.node option array;  (** [None] while crashed *)
    wals : P.wal array;
    channels : msg_entry Queue.t array;
        (** [dst * n + src]: FIFO per ordered node pair.  Only each
            channel's head is deliverable — delivery orders are explored
            exhaustively {e across} channels, in-order {e within} one.
            Identical undelivered copies merge (a retransmission of
            already-delivered content enqueues again). *)
    mutable timers : timer_entry list;
    timer_seq : int array;
    sync_q : P.msg Engine.pending Queue.t;
        (** self-deliveries and thunks — run synchronously, FIFO *)
    mutable partition : int list list option;
    mutable fault_idx : int;
    timers_fired : int array;  (** per node, reset at each fault step *)
    mutable steps : int;  (** actions executed along this path *)
    mutable capture_seq : int;
    commits : (int, int64) Hashtbl.t;  (** height -> block hash, across all nodes *)
    mutable commits_total : int;
    lock_floor : int array;
    vote_slots : (int * int * int, int64) Hashtbl.t;
        (** (src, view, slot) -> digest of the first vote seen there *)
    mutable violations : (Mc_report.violation_kind * string) list;
    trace : Trace.t option;
  }

  let add_violation w kind detail = w.violations <- (kind, detail) :: w.violations

  let group_of groups i =
    let rec find k = function
      | [] -> -1 (* implicit extra group *)
      | g :: rest -> if List.mem i g then k else find (k + 1) rest
    in
    find 0 groups

  let cut w ~src ~dst =
    match w.partition with
    | None -> false
    | Some groups -> group_of groups src <> group_of groups dst

  (* Double-vote detection runs at capture time: every message an honest
     node hands to the network passes here, including copies the scheduler
     later chooses never to deliver. *)
  let check_vote w ~src msg =
    if not (List.mem src w.cfg.equivocators) then
      match P.vote_slot msg with
      | None -> ()
      | Some (view, slot) -> (
          let d = Hash.to_int64 (P.msg_digest msg) in
          match Hashtbl.find_opt w.vote_slots (src, view, slot) with
          | None -> Hashtbl.replace w.vote_slots (src, view, slot) d
          | Some d' when Int64.equal d d' -> ()
          | Some _ ->
              add_violation w Mc_report.Double_vote
                (Format.asprintf "node %d sent two distinct votes for (view %d, slot %d): %a"
                   src view slot P.pp_msg msg))

  let capture w ev =
    match Engine.inspect ev with
    | Engine.Pending_task -> Queue.add ev w.sync_q
    | Engine.Pending_timer { owner } ->
        let o = if owner < 0 then 0 else owner in
        let idx = w.timer_seq.(o) in
        w.timer_seq.(o) <- idx + 1;
        w.timers <- { t_owner = owner; t_idx = idx; t_ev = ev; t_fired = false } :: w.timers
    | Engine.Pending_message { src; dst; msg } ->
        check_vote w ~src msg;
        if src = dst then Queue.add ev w.sync_q
        else if cut w ~src ~dst then ()
        else
          let q = w.channels.((dst * w.cfg.n) + src) in
          let d = Hash.to_int64 (P.msg_digest msg) in
          let dup =
            Queue.fold
              (fun acc e ->
                acc
                || (Int64.equal e.e_digest d && Engine.pending_live w.engine e.e_ev))
              false q
          in
          if not dup then begin
            w.capture_seq <- w.capture_seq + 1;
            Queue.add
              { e_src = src; e_dst = dst; e_digest = d; e_seq = w.capture_seq; e_ev = ev }
              q
          end

  let env_of w id : P.msg Env.t =
    let n = w.cfg.n in
    {
      Env.id;
      validators = Validator_set.make n;
      delta = w.cfg.delta;
      now = (fun () -> Engine.now w.engine);
      send = (fun dst msg -> Engine.send w.engine ~src:id ~dst msg);
      multicast = (fun msg -> Engine.multicast w.engine ~src:id msg);
      set_timer = (fun delay f -> Engine.set_timer ~owner:id w.engine delay f);
      leader_of = (fun view -> ((view - 1) mod n + n) mod n);
      make_payload =
        (fun ~view ~parent:_ -> Payload.make ~id:view ~size_bytes:w.cfg.payload_bytes);
      on_commit =
        (fun b ->
          w.commits_total <- w.commits_total + 1;
          (match w.trace with
          | None -> ()
          | Some sink ->
              Trace.emit sink
                {
                  Trace.time = Engine.now w.engine;
                  node = id;
                  kind = Trace.Committed { view = b.Block.view; height = b.Block.height };
                });
          let h = Hash.to_int64 b.Block.hash in
          match Hashtbl.find_opt w.commits b.Block.height with
          | None -> Hashtbl.replace w.commits b.Block.height h
          | Some h' when Int64.equal h h' -> ()
          | Some _ ->
              add_violation w Mc_report.Conflicting_commits
                (Format.asprintf "node %d committed %a at height %d, conflicting with an earlier commit"
                   id Block.pp b b.Block.height));
      on_propose = (fun _ -> ());
      probe =
        (match w.trace with
        | None -> None
        | Some sink ->
            Some
              (fun pe ->
                Trace.emit sink
                  { Trace.time = Engine.now w.engine; node = id; kind = Trace.Node_event pe }));
    }

  let spawn_node w id =
    let node =
      P.create
        ~equivocate:(List.mem id w.cfg.equivocators)
        ~wal:w.wals.(id) (env_of w id)
    in
    Engine.set_handler w.engine id (P.handle node);
    w.nodes.(id) <- Some node;
    node

  let rec drain w =
    match Queue.take_opt w.sync_q with
    | None -> ()
    | Some ev ->
        Engine.dispatch w.engine ev;
        drain w

  let make_world ?trace cfg =
    let network =
      Bft_sim.Network.make
        ~latency:(Bft_sim.Latency.Uniform { base = cfg.delta /. 2.; jitter = 0. })
        ~delta:cfg.delta ()
    in
    let engine = Engine.create ~n:cfg.n ~network ~seed:0 ~msg_size:P.msg_size () in
    let w =
      {
        cfg;
        engine;
        nodes = Array.make cfg.n None;
        wals = Array.init cfg.n (fun _ -> P.wal_create ());
        channels = Array.init (cfg.n * cfg.n) (fun _ -> Queue.create ());
        timers = [];
        timer_seq = Array.make cfg.n 0;
        sync_q = Queue.create ();
        partition = None;
        fault_idx = 0;
        timers_fired = Array.make cfg.n 0;
        steps = 0;
        capture_seq = 0;
        commits = Hashtbl.create 17;
        commits_total = 0;
        lock_floor = Array.make cfg.n 0;
        vote_slots = Hashtbl.create 97;
        violations = [];
        trace;
      }
    in
    Engine.set_capture engine (fun ev -> capture w ev);
    (match trace with
    | None -> ()
    | Some sink ->
        Engine.set_delivery_tap engine (fun ~time ~src ~dst:node msg ->
            Trace.emit sink
              {
                Trace.time;
                node;
                kind =
                  Trace.Delivered
                    { src; cls = P.classify msg; view = P.view_of msg; bytes = P.msg_size msg };
              }));
    let nodes = List.init cfg.n (fun id -> spawn_node w id) in
    List.iter P.start nodes;
    drain w;
    w

  (* {2 Actions} *)

  type action =
    | A_msg of msg_entry
    | A_timer of timer_entry
    | A_fault of Mc_schedule.step

  (* Stable identity for sleep sets: message keys are content-derived (path
     independent); timer keys use the per-owner capture sequence, which is
     consistent along one lineage (enough for sleep sets — a mismatch across
     lineages only costs extra exploration, never soundness). *)
  let action_key = function
    | A_msg e ->
        Hash.to_int64
          (Hash.of_fields
             [ 1L; Int64.of_int e.e_dst; Int64.of_int e.e_src; e.e_digest ])
    | A_timer t ->
        Hash.to_int64 (Hash.of_fields [ 2L; Int64.of_int t.t_owner; Int64.of_int t.t_idx ])
    | A_fault _ -> 3L

  (* DPOR-lite independence: two deliveries commute iff they execute at
     different nodes.  Fault steps are dependent with everything; so are
     timers — their enabledness is a function of the owner's whole inbox
     (maximal progress), which breaks the commutation argument sleep sets
     rely on, so they never enter a sleep set. *)
  let action_loc = function
    | A_msg e -> e.e_dst
    | A_timer t -> t.t_owner
    | A_fault _ -> -1

  let action_global_dep = function
    | A_fault _ | A_timer _ -> true
    | A_msg _ -> false

  let compare_action a b =
    let rank = function
      | A_msg e -> (0, e.e_dst, e.e_src, e.e_digest)
      | A_timer t -> (1, t.t_owner, t.t_idx, 0L)
      | A_fault _ -> (2, 0, 0, 0L)
    in
    compare (rank a) (rank b)

  (* Drop entries addressed to a dead incarnation from the front, then
     expose the head.  Death is deterministic along a path, so the eager
     pops keep replays bit-identical. *)
  let channel_head w q =
    let rec head () =
      match Queue.peek_opt q with
      | None -> None
      | Some e ->
          if Engine.pending_live w.engine e.e_ev then Some e
          else begin
            ignore (Queue.pop q);
            head ()
          end
    in
    head ()

  (* Deliverable messages for one destination: each channel's head, oldest
     [reorder_window] arrivals first.  The window bounds how far a newer
     message can overtake older ones (delay-bounded scheduling); within a
     channel order is FIFO regardless. *)
  let dst_window w dst =
    let heads = ref [] in
    for src = 0 to w.cfg.n - 1 do
      match channel_head w w.channels.((dst * w.cfg.n) + src) with
      | Some e -> heads := e :: !heads
      | None -> ()
    done;
    let sorted = List.sort (fun a b -> compare a.e_seq b.e_seq) !heads in
    List.filteri (fun i _ -> i < w.cfg.reorder_window) sorted

  let enabled w =
    let msgs = ref [] in
    for dst = 0 to w.cfg.n - 1 do
      List.iter (fun e -> msgs := A_msg e :: !msgs) (dst_window w dst)
    done;
    let msgs = !msgs in
    (* Maximal progress: every protocol's timers are 3-5 delta while
       deliveries complete within delta, so a timer can only fire once no
       message is deliverable anywhere — the world is genuinely stuck
       (partition, crash, silent or equivocating leader).  Timeout paths
       are explored exactly at those stuck states, under [timer_budget]. *)
    let tmrs =
      if msgs <> [] then []
      else
        List.filter_map
          (fun t ->
            if
              (not t.t_fired)
              && w.timers_fired.(t.t_owner) < w.cfg.timer_budget
              && Engine.pending_live w.engine t.t_ev
            then Some (A_timer t)
            else None)
          w.timers
    in
    (* Fault steps fire at the initial state or at quiescence points.
       Onset at t=0 is the adversary's canonical worst case, and each fault
       creates the stalls (quiescence) at which the next step — a heal, a
       recovery — becomes explorable.  Letting steps fire at {e every}
       state multiplies the space by path length per step and adds nothing:
       a partition taking effect mid-flight only changes which in-flight
       messages die, and the delivery exploration already covers every
       prefix of them having landed.  Unlike timers, faults are not
       budget-limited — the schedule itself is finite. *)
    let faults =
      if msgs <> [] && w.steps > 0 then []
      else
        match List.nth_opt w.cfg.faults w.fault_idx with
        | Some step -> [ A_fault step ]
        | None -> []
    in
    List.sort compare_action (List.rev_append msgs (tmrs @ faults))

  let describe_action w = function
    | A_msg e -> (
        match Engine.inspect e.e_ev with
        | Engine.Pending_message { msg; _ } ->
            Format.asprintf "deliver %d->%d %a" e.e_src e.e_dst P.pp_msg msg
        | _ -> Format.asprintf "deliver %d->%d" e.e_src e.e_dst)
    | A_timer t -> Format.asprintf "timer node %d #%d" t.t_owner t.t_idx
    | A_fault step ->
        ignore w;
        Format.asprintf "fault %a" Mc_schedule.pp_step step

  let apply_fault w step =
    (match w.trace with
    | None -> ()
    | Some sink ->
        let node, f =
          match (step : Mc_schedule.step) with
          | Crash i -> (i, Trace.Crash)
          | Recover i -> (i, Trace.Recover)
          | Partition_on _ -> (-1, Trace.Partition_start)
          | Partition_off -> (-1, Trace.Partition_heal)
        in
        Trace.emit sink { Trace.time = Engine.now w.engine; node; kind = Trace.Fault f });
    (* The timer budget is per fault era: each fault step delimits a new
       network regime in which stuck nodes may again time out (they re-arm
       and rebroadcast on every expiry), so post-heal recovery is
       explorable however much budget the partition itself consumed. *)
    Array.fill w.timers_fired 0 w.cfg.n 0;
    match (step : Mc_schedule.step) with
    | Crash i ->
        Engine.crash w.engine i;
        w.nodes.(i) <- None
    | Recover i ->
        Engine.recover w.engine i;
        let node = spawn_node w i in
        (* The lock may legitimately regress to whatever the WAL preserved. *)
        w.lock_floor.(i) <- 0;
        P.start node
    | Partition_on groups -> w.partition <- Some groups
    | Partition_off -> w.partition <- None

  exception Bad_path of string

  (* Invariants checked at every reached state, for live nodes only. *)
  let post_checks w =
    Array.iteri
      (fun i node ->
        match node with
        | None -> ()
        | Some node when not (Engine.is_down w.engine i) ->
            let lv = P.lock_view node in
            if lv < w.lock_floor.(i) then
              add_violation w Mc_report.Lock_regression
                (Printf.sprintf "node %d lock went from view %d back to %d" i
                   w.lock_floor.(i) lv)
            else w.lock_floor.(i) <- lv;
            if not (P.wal_consistent node) then
              add_violation w Mc_report.Wal_divergence
                (Printf.sprintf "node %d in-memory safety state disagrees with its WAL" i)
        | Some _ -> ())
      w.nodes

  let exec_action w a =
    w.steps <- w.steps + 1;
    (try
       (match a with
       | A_msg e ->
           let q = w.channels.((e.e_dst * w.cfg.n) + e.e_src) in
           (match Queue.take_opt q with
           | Some head when head == e -> ()
           | _ -> raise (Bad_path "delivered entry is not its channel's head"));
           Engine.dispatch w.engine e.e_ev
       | A_timer t ->
           t.t_fired <- true;
           w.timers_fired.(t.t_owner) <- w.timers_fired.(t.t_owner) + 1;
           Engine.dispatch w.engine t.t_ev
       | A_fault step ->
           w.fault_idx <- w.fault_idx + 1;
           apply_fault w step);
       drain w
     with Bft_chain.Commit_log.Safety_violation msg ->
       Queue.clear w.sync_q;
       add_violation w Mc_report.Commit_log_exception msg);
    (* One logical tick per action keeps [Env.now] monotone so time-window
       heuristics inside nodes (sync backoff) stay deterministic. *)
    Engine.advance_clock w.engine (Engine.now w.engine +. 1.0);
    post_checks w

  let state_digest w =
    let fields = ref [] in
    let push v = fields := v :: !fields in
    for i = 0 to w.cfg.n - 1 do
      (match w.nodes.(i) with
      | Some node when not (Engine.is_down w.engine i) ->
          push (Hash.to_int64 (P.state_hash node))
      | _ -> push 0xdeadL);
      push (Hash.to_int64 (P.wal_hash w.wals.(i)))
    done;
    (* In-flight messages: per-channel content sequences, channels in fixed
       (dst, src) order. *)
    Array.iter
      (fun q ->
        let contents =
          Queue.fold
            (fun acc e ->
              if Engine.pending_live w.engine e.e_ev then e.e_digest :: acc
              else acc)
            [] q
        in
        push (Hash.to_int64 (Hash.of_fields (List.rev contents))))
      w.channels;
    (* Cross-channel arrival order per destination: the reorder window is a
       function of it, so state matching must distinguish it. *)
    for dst = 0 to w.cfg.n - 1 do
      let arrivals = ref [] in
      for src = 0 to w.cfg.n - 1 do
        Queue.iter
          (fun e ->
            if Engine.pending_live w.engine e.e_ev then arrivals := e :: !arrivals)
          w.channels.((dst * w.cfg.n) + src)
      done;
      let order =
        List.sort (fun a b -> compare a.e_seq b.e_seq) !arrivals
        |> List.map (fun e -> Int64.of_int e.e_src)
      in
      push (Hash.to_int64 (Hash.of_fields order))
    done;
    (* Live timers per owner, by count: timers of one owner are mutually
       dependent and protocols re-arm rather than accumulate, so the count
       abstracts the set safely for the worlds we explore. *)
    let counts = Array.make w.cfg.n 0 in
    List.iter
      (fun t ->
        if (not t.t_fired) && Engine.pending_live w.engine t.t_ev then
          let o = if t.t_owner < 0 then 0 else t.t_owner in
          counts.(o) <- counts.(o) + 1)
      w.timers;
    Array.iter (fun c -> push (Int64.of_int c)) counts;
    push (Int64.of_int w.fault_idx);
    Array.iter (fun c -> push (Int64.of_int c)) w.timers_fired;
    Hash.to_int64 (Hash.of_fields (List.rev !fields))

  let max_view w =
    Array.fold_left
      (fun acc node ->
        match node with Some n -> max acc (P.current_view n) | None -> acc)
      0 w.nodes

  (* {2 Path replay} *)

  let step_path w idx =
    let acts = enabled w in
    match List.nth_opt acts idx with
    | Some a -> exec_action w a
    | None ->
        raise
          (Bad_path
             (Printf.sprintf "index %d out of %d enabled actions" idx (List.length acts)))

  (* Replay [path] on a fresh world.  Violations are only reported for the
     final transition: every proper prefix was itself a frontier state, was
     checked then, and (being violation-free, or it would not have been
     expanded) contributes nothing new. *)
  let run_path ?trace cfg path =
    let w = make_world ?trace cfg in
    let rec go = function
      | [] -> ()
      | [ last ] ->
          w.violations <- [];
          step_path w last
      | idx :: rest ->
          step_path w idx;
          go rest
    in
    (match path with [] -> () | _ -> go path);
    w

  type probe = {
    r_digest : int64;
    r_enabled : (int64 * int * bool) array;
        (** canonical order: (key, location, is_fault) per enabled action *)
    r_violations : (Mc_report.violation_kind * string) list;
    r_committed : int;
    r_view_bound_hit : bool;
  }

  let probe_path cfg path =
    let w = run_path cfg path in
    let acts = enabled w in
    {
      r_digest = state_digest w;
      r_enabled =
        Array.of_list
          (List.map (fun a -> (action_key a, action_loc a, action_global_dep a)) acts);
      r_violations = List.rev w.violations;
      r_committed = w.commits_total;
      r_view_bound_hit = max_view w > cfg.view_bound;
    }

  (* {2 Exploration} *)

  type frontier_entry = {
    f_path : int list;
    f_sleep : (int64 * int * bool) list;
  }

  let sleep_keys sleep = List.map (fun (k, _, _) -> k) sleep

  let check ?progress ?(jobs = 1) cfg =
    let visited : (int64, (int64 * int * bool) list) Hashtbl.t =
      Hashtbl.create 4096
    in
    let states_visited = ref 0 in
    let states_matched = ref 0 in
    let transitions = ref 0 in
    let sleep_skips = ref 0 in
    let leaves = ref 0 in
    let max_depth_seen = ref 0 in
    let exhausted = ref true in
    let violations = ref [] in
    let max_committed = ref 0 in
    let commit_witness = ref None in
    let leaves_without_commit = ref 0 in
    let deadlocks = ref 0 in
    let deadlock_witness = ref None in
    let frontier = ref [ { f_path = []; f_sleep = [] } ] in
    let depth = ref 0 in
    while !frontier <> [] do
      max_depth_seen := max !max_depth_seen !depth;
      (match progress with
      | None -> ()
      | Some f ->
          f ~depth:!depth ~frontier:(List.length !frontier) ~states:!states_visited);
      let probes =
        Bft_parallel.Parallel.map ~jobs (fun e -> probe_path cfg e.f_path) !frontier
      in
      let next = ref [] in
      List.iter2
        (fun entry probe ->
          incr transitions;
          if probe.r_committed > 0 then begin
            if !commit_witness = None then commit_witness := Some entry.f_path;
            max_committed := max !max_committed probe.r_committed
          end;
          let leaf_at reason_commitless =
            incr leaves;
            if reason_commitless && probe.r_committed = 0 then
              incr leaves_without_commit
          in
          if probe.r_violations <> [] then begin
            List.iter
              (fun (kind, detail) ->
                violations :=
                  { Mc_report.kind; detail; path = entry.f_path } :: !violations)
              probe.r_violations;
            (* A violating state is a leaf; make later hits on its digest
               prune unconditionally. *)
            Hashtbl.replace visited probe.r_digest [];
            incr states_visited;
            leaf_at false
          end
          else begin
            let prev = Hashtbl.find_opt visited probe.r_digest in
            let prune =
              match prev with
              | Some stored ->
                  let new_keys = sleep_keys entry.f_sleep in
                  List.for_all (fun (k, _, _) -> List.mem k new_keys) stored
              | None -> false
            in
            if prune then incr states_matched
            else begin
              let eff_sleep =
                match prev with
                | None ->
                    incr states_visited;
                    entry.f_sleep
                | Some stored ->
                    (* Revisit with a smaller sleep set: re-expand from the
                       intersection so nothing stays unexplored. *)
                    let stored_keys = sleep_keys stored in
                    List.filter
                      (fun (k, _, _) -> List.mem k stored_keys)
                      entry.f_sleep
              in
              Hashtbl.replace visited probe.r_digest eff_sleep;
              if Array.length probe.r_enabled = 0 then begin
                leaf_at true;
                if probe.r_committed = 0 then begin
                  incr deadlocks;
                  if !deadlock_witness = None then
                    deadlock_witness := Some entry.f_path
                end
              end
              else if probe.r_view_bound_hit then leaf_at true
              else if List.length entry.f_path >= cfg.max_depth then begin
                exhausted := false;
                leaf_at true
              end
              else begin
                let sleep = ref eff_sleep in
                Array.iteri
                  (fun j ((key, loc, global_dep) as a) ->
                    if List.exists (fun (k, _, _) -> Int64.equal k key) !sleep
                    then incr sleep_skips
                    else begin
                      let child_sleep =
                        if global_dep then []
                        else
                          List.filter
                            (fun (_, l, g) -> (not g) && l <> loc)
                            !sleep
                      in
                      next :=
                        { f_path = entry.f_path @ [ j ]; f_sleep = child_sleep }
                        :: !next
                    end;
                    sleep := a :: !sleep)
                  probe.r_enabled
              end
            end
          end)
        !frontier probes;
      frontier := List.rev !next;
      incr depth
    done;
    {
      Mc_report.stats =
        {
          Mc_report.states_visited = !states_visited;
          states_matched = !states_matched;
          transitions = !transitions;
          sleep_skips = !sleep_skips;
          leaves = !leaves;
          max_depth_seen = !max_depth_seen;
          exhausted = !exhausted;
        };
      violations = List.rev !violations;
      max_committed = !max_committed;
      commit_witness = !commit_witness;
      leaves_without_commit = !leaves_without_commit;
      deadlocks = !deadlocks;
      deadlock_witness = !deadlock_witness;
    }

  (* {2 Counterexample replay} *)

  let replay cfg path =
    let sink = Trace.create () in
    let (_ : world) = run_path ~trace:sink cfg path in
    sink

  let describe cfg path =
    let w = make_world cfg in
    let buf = Buffer.create 256 in
    List.iteri
      (fun step idx ->
        let acts = enabled w in
        match List.nth_opt acts idx with
        | None -> raise (Bad_path (Printf.sprintf "step %d: index %d out of range" step idx))
        | Some a ->
            Buffer.add_string buf
              (Printf.sprintf "%2d. %s\n" (step + 1) (describe_action w a));
            exec_action w a)
      path;
    Buffer.contents buf
end

(* {2 Protocol dispatch} *)

module Kind = Bft_runtime.Protocol_kind

module Simple_mc = Make (Moonshot.Simple_node.Protocol)
module Pipelined_mc = Make (Moonshot.Pipelined_node.Protocol)
module Commit_mc = Make (Moonshot.Pipelined_node.Commit_protocol)
module Jolteon_mc = Make (Jolteon.Jolteon_node.Protocol)
module Hotstuff_mc = Make (Hotstuff.Hotstuff_node.Protocol)

let check ?jobs kind cfg =
  match (kind : Kind.t) with
  | Simple_moonshot -> Simple_mc.check ?jobs cfg
  | Pipelined_moonshot -> Pipelined_mc.check ?jobs cfg
  | Commit_moonshot -> Commit_mc.check ?jobs cfg
  | Jolteon -> Jolteon_mc.check ?jobs cfg
  | Hotstuff -> Hotstuff_mc.check ?jobs cfg

let replay kind cfg path =
  match (kind : Kind.t) with
  | Simple_moonshot -> Simple_mc.replay cfg path
  | Pipelined_moonshot -> Pipelined_mc.replay cfg path
  | Commit_moonshot -> Commit_mc.replay cfg path
  | Jolteon -> Jolteon_mc.replay cfg path
  | Hotstuff -> Hotstuff_mc.replay cfg path

let describe kind cfg path =
  match (kind : Kind.t) with
  | Simple_moonshot -> Simple_mc.describe cfg path
  | Pipelined_moonshot -> Pipelined_mc.describe cfg path
  | Commit_moonshot -> Commit_mc.describe cfg path
  | Jolteon -> Jolteon_mc.describe cfg path
  | Hotstuff -> Hotstuff_mc.describe cfg path
