open Bft_types
module Engine = Bft_sim.Engine
module Trace = Bft_obs.Trace

type config = {
  n : int;
  delta : float;
  view_bound : int;
  max_depth : int;
  timer_budget : int;
  reorder_window : int;
  equivocators : int list;
  faults : Mc_schedule.step list;
  payload_bytes : int;
  symmetry : bool;
}

let config ?(delta = 10.) ?(max_depth = 128) ?(timer_budget = 4)
    ?(reorder_window = 1) ?(equivocators = []) ?(faults = [])
    ?(payload_bytes = 0) ?(symmetry = false) ~n ~view_bound () =
  if n < 1 then invalid_arg "Checker.config: n < 1";
  if view_bound < 1 then invalid_arg "Checker.config: view_bound < 1";
  if max_depth < 1 then invalid_arg "Checker.config: max_depth < 1";
  if timer_budget < 0 then invalid_arg "Checker.config: timer_budget < 0";
  if reorder_window < 1 then invalid_arg "Checker.config: reorder_window < 1";
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Checker.config: equivocator out of range")
    equivocators;
  {
    n;
    delta;
    view_bound;
    max_depth;
    timer_budget;
    reorder_window;
    equivocators;
    faults;
    payload_bytes;
    symmetry;
  }

(* Nodes a schedule names are not interchangeable with anyone. *)
let fault_fixed steps =
  List.concat_map
    (function
      | Mc_schedule.Crash i | Mc_schedule.Recover i -> [ i ]
      | Mc_schedule.Partition_on groups -> List.concat groups
      | Mc_schedule.Partition_off -> [])
    steps

(* {2 Coverage-guided schedule search} *)

type search_config = {
  s_seed : int;
  s_rounds : int;
  s_population : int;
  s_mutants : int;
  s_walks : int;  (** swarm walks per candidate evaluation *)
  s_depth : int;  (** step cap per walk *)
  s_fault_budget : int;  (** [f] for mutation validity *)
}

let search_config ?(rounds = 24) ?(population = 8) ?(mutants = 12)
    ?(walks = 32) ?(depth = 96) ?(fault_budget = 1) ~seed () =
  if rounds < 0 then invalid_arg "Checker.search_config: rounds < 0";
  if population < 1 then invalid_arg "Checker.search_config: population < 1";
  if mutants < 1 then invalid_arg "Checker.search_config: mutants < 1";
  if walks < 1 then invalid_arg "Checker.search_config: walks < 1";
  if depth < 1 then invalid_arg "Checker.search_config: depth < 1";
  {
    s_seed = seed;
    s_rounds = rounds;
    s_population = population;
    s_mutants = mutants;
    s_walks = walks;
    s_depth = depth;
    s_fault_budget = fault_budget;
  }

module Make (P : Protocol_intf.S) = struct
  (* The protocol nodes are mutable and unclonable, so exploration is
     stateless: every frontier path is replayed from a fresh world.  A world
     owns the engine (capture hook installed), the nodes, their WALs, and
     the checker's own bookkeeping — the message pool, captured timers, the
     fault cursor and the invariant tables. *)

  type msg_entry = {
    e_src : int;
    e_dst : int;
    e_digest : int64;
    e_seq : int;  (** global capture order — ranks a destination's arrivals *)
    e_ev : P.msg Engine.pending;
  }

  type timer_entry = {
    t_owner : int;
    t_idx : int;  (** per-owner capture sequence — deterministic per path *)
    t_ev : P.msg Engine.pending;
    mutable t_fired : bool;
  }

  type world = {
    cfg : config;
    engine : P.msg Engine.t;
    nodes : P.node option array;  (** [None] while crashed *)
    wals : P.wal array;
    channels : msg_entry Queue.t array;
        (** [dst * n + src]: FIFO per ordered node pair.  Only each
            channel's head is deliverable — delivery orders are explored
            exhaustively {e across} channels, in-order {e within} one.
            Identical undelivered copies merge (a retransmission of
            already-delivered content enqueues again). *)
    mutable timers : timer_entry list;
    timer_seq : int array;
    sync_q : P.msg Engine.pending Queue.t;
        (** self-deliveries and thunks — run synchronously, FIFO *)
    mutable partition : int list list option;
    mutable fault_idx : int;
    timers_fired : int array;  (** per node, reset at each fault step *)
    mutable steps : int;  (** actions executed along this path *)
    mutable capture_seq : int;
    commits : (int, int64) Hashtbl.t;  (** height -> block hash, across all nodes *)
    mutable commits_total : int;
    lock_floor : int array;
    vote_slots : (int * int * int, int64) Hashtbl.t;
        (** (src, view, slot) -> digest of the first vote seen there *)
    mutable violations : (Mc_report.violation_kind * string) list;
    trace : Trace.t option;
  }

  let add_violation w kind detail = w.violations <- (kind, detail) :: w.violations

  let group_of groups i =
    let rec find k = function
      | [] -> -1 (* implicit extra group *)
      | g :: rest -> if List.mem i g then k else find (k + 1) rest
    in
    find 0 groups

  let cut w ~src ~dst =
    match w.partition with
    | None -> false
    | Some groups -> group_of groups src <> group_of groups dst

  (* Double-vote detection runs at capture time: every message an honest
     node hands to the network passes here, including copies the scheduler
     later chooses never to deliver. *)
  let check_vote w ~src msg =
    if not (List.mem src w.cfg.equivocators) then
      match P.vote_slot msg with
      | None -> ()
      | Some (view, slot) -> (
          let d = Hash.to_int64 (P.msg_digest msg) in
          match Hashtbl.find_opt w.vote_slots (src, view, slot) with
          | None -> Hashtbl.replace w.vote_slots (src, view, slot) d
          | Some d' when Int64.equal d d' -> ()
          | Some _ ->
              add_violation w Mc_report.Double_vote
                (Format.asprintf "node %d sent two distinct votes for (view %d, slot %d): %a"
                   src view slot P.pp_msg msg))

  let capture w ev =
    match Engine.inspect ev with
    | Engine.Pending_task -> Queue.add ev w.sync_q
    | Engine.Pending_timer { owner } ->
        let o = if owner < 0 then 0 else owner in
        let idx = w.timer_seq.(o) in
        w.timer_seq.(o) <- idx + 1;
        w.timers <- { t_owner = owner; t_idx = idx; t_ev = ev; t_fired = false } :: w.timers
    | Engine.Pending_message { src; dst; msg } ->
        check_vote w ~src msg;
        if src = dst then Queue.add ev w.sync_q
        else if cut w ~src ~dst then ()
        else
          let q = w.channels.((dst * w.cfg.n) + src) in
          let d = Hash.to_int64 (P.msg_digest msg) in
          let dup =
            Queue.fold
              (fun acc e ->
                acc
                || (Int64.equal e.e_digest d && Engine.pending_live w.engine e.e_ev))
              false q
          in
          if not dup then begin
            w.capture_seq <- w.capture_seq + 1;
            Queue.add
              { e_src = src; e_dst = dst; e_digest = d; e_seq = w.capture_seq; e_ev = ev }
              q
          end

  let env_of w id : P.msg Env.t =
    let n = w.cfg.n in
    {
      Env.id;
      validators = Validator_set.make n;
      delta = w.cfg.delta;
      now = (fun () -> Engine.now w.engine);
      send = (fun dst msg -> Engine.send w.engine ~src:id ~dst msg);
      multicast = (fun msg -> Engine.multicast w.engine ~src:id msg);
      set_timer = (fun delay f -> Engine.set_timer ~owner:id w.engine delay f);
      leader_of = (fun view -> ((view - 1) mod n + n) mod n);
      make_payload =
        (fun ~view ~parent:_ -> Payload.make ~id:view ~size_bytes:w.cfg.payload_bytes);
      on_commit =
        (fun b ->
          w.commits_total <- w.commits_total + 1;
          (match w.trace with
          | None -> ()
          | Some sink ->
              Trace.emit sink
                {
                  Trace.time = Engine.now w.engine;
                  node = id;
                  kind = Trace.Committed { view = b.Block.view; height = b.Block.height };
                });
          let h = Hash.to_int64 b.Block.hash in
          match Hashtbl.find_opt w.commits b.Block.height with
          | None -> Hashtbl.replace w.commits b.Block.height h
          | Some h' when Int64.equal h h' -> ()
          | Some _ ->
              add_violation w Mc_report.Conflicting_commits
                (Format.asprintf "node %d committed %a at height %d, conflicting with an earlier commit"
                   id Block.pp b b.Block.height));
      on_propose = (fun _ -> ());
      probe =
        (match w.trace with
        | None -> None
        | Some sink ->
            Some
              (fun pe ->
                Trace.emit sink
                  { Trace.time = Engine.now w.engine; node = id; kind = Trace.Node_event pe }));
    }

  let spawn_node w id =
    let node =
      P.create
        ~equivocate:(List.mem id w.cfg.equivocators)
        ~wal:w.wals.(id) (env_of w id)
    in
    Engine.set_handler w.engine id (P.handle node);
    w.nodes.(id) <- Some node;
    node

  let rec drain w =
    match Queue.take_opt w.sync_q with
    | None -> ()
    | Some ev ->
        Engine.dispatch w.engine ev;
        drain w

  let make_world ?trace cfg =
    let network =
      Bft_sim.Network.make
        ~latency:(Bft_sim.Latency.Uniform { base = cfg.delta /. 2.; jitter = 0. })
        ~delta:cfg.delta ()
    in
    let engine = Engine.create ~n:cfg.n ~network ~seed:0 ~msg_size:P.msg_size () in
    let w =
      {
        cfg;
        engine;
        nodes = Array.make cfg.n None;
        wals = Array.init cfg.n (fun _ -> P.wal_create ());
        channels = Array.init (cfg.n * cfg.n) (fun _ -> Queue.create ());
        timers = [];
        timer_seq = Array.make cfg.n 0;
        sync_q = Queue.create ();
        partition = None;
        fault_idx = 0;
        timers_fired = Array.make cfg.n 0;
        steps = 0;
        capture_seq = 0;
        commits = Hashtbl.create 17;
        commits_total = 0;
        lock_floor = Array.make cfg.n 0;
        vote_slots = Hashtbl.create 97;
        violations = [];
        trace;
      }
    in
    Engine.set_capture engine (fun ev -> capture w ev);
    (match trace with
    | None -> ()
    | Some sink ->
        Engine.set_delivery_tap engine (fun ~time ~src ~dst:node msg ->
            Trace.emit sink
              {
                Trace.time;
                node;
                kind =
                  Trace.Delivered
                    { src; cls = P.classify msg; view = P.view_of msg; bytes = P.msg_size msg };
              }));
    let nodes = List.init cfg.n (fun id -> spawn_node w id) in
    List.iter P.start nodes;
    drain w;
    w

  (* {2 Actions} *)

  type action =
    | A_msg of msg_entry
    | A_timer of timer_entry
    | A_fault of Mc_schedule.step

  (* Stable identity for sleep sets: message keys are content-derived (path
     independent); timer keys use the per-owner capture sequence, which is
     consistent along one lineage (enough for sleep sets — a mismatch across
     lineages only costs extra exploration, never soundness). *)
  let action_key = function
    | A_msg e ->
        Hash.to_int64
          (Hash.of_fields
             [ 1L; Int64.of_int e.e_dst; Int64.of_int e.e_src; e.e_digest ])
    | A_timer t ->
        Hash.to_int64 (Hash.of_fields [ 2L; Int64.of_int t.t_owner; Int64.of_int t.t_idx ])
    | A_fault _ -> 3L

  (* DPOR-lite independence: two deliveries commute iff they execute at
     different nodes.  Fault steps are dependent with everything; so are
     timers — their enabledness is a function of the owner's whole inbox
     (maximal progress), which breaks the commutation argument sleep sets
     rely on, so they never enter a sleep set. *)
  let action_loc = function
    | A_msg e -> e.e_dst
    | A_timer t -> t.t_owner
    | A_fault _ -> -1

  let action_global_dep = function
    | A_fault _ | A_timer _ -> true
    | A_msg _ -> false

  let compare_action a b =
    let rank = function
      | A_msg e -> (0, e.e_dst, e.e_src, e.e_digest)
      | A_timer t -> (1, t.t_owner, t.t_idx, 0L)
      | A_fault _ -> (2, 0, 0, 0L)
    in
    compare (rank a) (rank b)

  (* Drop entries addressed to a dead incarnation from the front, then
     expose the head.  Death is deterministic along a path, so the eager
     pops keep replays bit-identical. *)
  let channel_head w q =
    let rec head () =
      match Queue.peek_opt q with
      | None -> None
      | Some e ->
          if Engine.pending_live w.engine e.e_ev then Some e
          else begin
            ignore (Queue.pop q);
            head ()
          end
    in
    head ()

  (* Deliverable messages for one destination: each channel's head, oldest
     [reorder_window] arrivals first.  The window bounds how far a newer
     message can overtake older ones (delay-bounded scheduling); within a
     channel order is FIFO regardless. *)
  let dst_window w dst =
    let heads = ref [] in
    for src = 0 to w.cfg.n - 1 do
      match channel_head w w.channels.((dst * w.cfg.n) + src) with
      | Some e -> heads := e :: !heads
      | None -> ()
    done;
    let sorted = List.sort (fun a b -> compare a.e_seq b.e_seq) !heads in
    List.filteri (fun i _ -> i < w.cfg.reorder_window) sorted

  let enabled w =
    let msgs = ref [] in
    for dst = 0 to w.cfg.n - 1 do
      List.iter (fun e -> msgs := A_msg e :: !msgs) (dst_window w dst)
    done;
    let msgs = !msgs in
    (* Maximal progress: every protocol's timers are 3-5 delta while
       deliveries complete within delta, so a timer can only fire once no
       message is deliverable anywhere — the world is genuinely stuck
       (partition, crash, silent or equivocating leader).  Timeout paths
       are explored exactly at those stuck states, under [timer_budget]. *)
    let tmrs =
      if msgs <> [] then []
      else
        List.filter_map
          (fun t ->
            if
              (not t.t_fired)
              && w.timers_fired.(t.t_owner) < w.cfg.timer_budget
              && Engine.pending_live w.engine t.t_ev
            then Some (A_timer t)
            else None)
          w.timers
    in
    (* Fault steps fire at the initial state or at quiescence points.
       Onset at t=0 is the adversary's canonical worst case, and each fault
       creates the stalls (quiescence) at which the next step — a heal, a
       recovery — becomes explorable.  Letting steps fire at {e every}
       state multiplies the space by path length per step and adds nothing:
       a partition taking effect mid-flight only changes which in-flight
       messages die, and the delivery exploration already covers every
       prefix of them having landed.  Unlike timers, faults are not
       budget-limited — the schedule itself is finite. *)
    let faults =
      if msgs <> [] && w.steps > 0 then []
      else
        match List.nth_opt w.cfg.faults w.fault_idx with
        | Some step -> [ A_fault step ]
        | None -> []
    in
    List.sort compare_action (List.rev_append msgs (tmrs @ faults))

  let describe_action w = function
    | A_msg e -> (
        match Engine.inspect e.e_ev with
        | Engine.Pending_message { msg; _ } ->
            Format.asprintf "deliver %d->%d %a" e.e_src e.e_dst P.pp_msg msg
        | _ -> Format.asprintf "deliver %d->%d" e.e_src e.e_dst)
    | A_timer t -> Format.asprintf "timer node %d #%d" t.t_owner t.t_idx
    | A_fault step ->
        ignore w;
        Format.asprintf "fault %a" Mc_schedule.pp_step step

  let apply_fault w step =
    (match w.trace with
    | None -> ()
    | Some sink ->
        let node, f =
          match (step : Mc_schedule.step) with
          | Crash i -> (i, Trace.Crash)
          | Recover i -> (i, Trace.Recover)
          | Partition_on _ -> (-1, Trace.Partition_start)
          | Partition_off -> (-1, Trace.Partition_heal)
        in
        Trace.emit sink { Trace.time = Engine.now w.engine; node; kind = Trace.Fault f });
    (* The timer budget is per fault era: each fault step delimits a new
       network regime in which stuck nodes may again time out (they re-arm
       and rebroadcast on every expiry), so post-heal recovery is
       explorable however much budget the partition itself consumed. *)
    Array.fill w.timers_fired 0 w.cfg.n 0;
    match (step : Mc_schedule.step) with
    | Crash i ->
        Engine.crash w.engine i;
        w.nodes.(i) <- None
    | Recover i ->
        Engine.recover w.engine i;
        let node = spawn_node w i in
        (* The lock may legitimately regress to whatever the WAL preserved. *)
        w.lock_floor.(i) <- 0;
        P.start node
    | Partition_on groups -> w.partition <- Some groups
    | Partition_off -> w.partition <- None

  exception Bad_path of string

  (* Invariants checked at every reached state, for live nodes only. *)
  let post_checks w =
    Array.iteri
      (fun i node ->
        match node with
        | None -> ()
        | Some node when not (Engine.is_down w.engine i) ->
            let lv = P.lock_view node in
            if lv < w.lock_floor.(i) then
              add_violation w Mc_report.Lock_regression
                (Printf.sprintf "node %d lock went from view %d back to %d" i
                   w.lock_floor.(i) lv)
            else w.lock_floor.(i) <- lv;
            if not (P.wal_consistent node) then
              add_violation w Mc_report.Wal_divergence
                (Printf.sprintf "node %d in-memory safety state disagrees with its WAL" i)
        | Some _ -> ())
      w.nodes

  let exec_action w a =
    w.steps <- w.steps + 1;
    (try
       (match a with
       | A_msg e ->
           let q = w.channels.((e.e_dst * w.cfg.n) + e.e_src) in
           (match Queue.take_opt q with
           | Some head when head == e -> ()
           | _ -> raise (Bad_path "delivered entry is not its channel's head"));
           Engine.dispatch w.engine e.e_ev
       | A_timer t ->
           t.t_fired <- true;
           w.timers_fired.(t.t_owner) <- w.timers_fired.(t.t_owner) + 1;
           Engine.dispatch w.engine t.t_ev
       | A_fault step ->
           w.fault_idx <- w.fault_idx + 1;
           apply_fault w step);
       drain w
     with Bft_chain.Commit_log.Safety_violation msg ->
       Queue.clear w.sync_q;
       add_violation w Mc_report.Commit_log_exception msg);
    (* One logical tick per action keeps [Env.now] monotone so time-window
       heuristics inside nodes (sync backoff) stay deterministic. *)
    Engine.advance_clock w.engine (Engine.now w.engine +. 1.0);
    post_checks w

  (* Structured state vector — same content (and same digest, modulo the
     identity permutation) as the old flat [state_digest], but exposing the
     per-slot structure {!Symmetry.apply} needs to permute. *)
  let vec_of_world w =
    let n = w.cfg.n in
    let nodes =
      Array.init n (fun i ->
          let s =
            match w.nodes.(i) with
            | Some node when not (Engine.is_down w.engine i) ->
                Hash.to_int64 (P.state_hash node)
            | _ -> 0xdeadL
          in
          (s, Hash.to_int64 (P.wal_hash w.wals.(i))))
    in
    (* In-flight messages: per-channel content sequences, channels in fixed
       (dst, src) order. *)
    let chans =
      Array.map
        (fun q ->
          let contents =
            Queue.fold
              (fun acc e ->
                if Engine.pending_live w.engine e.e_ev then e.e_digest :: acc
                else acc)
              [] q
          in
          Hash.to_int64 (Hash.of_fields (List.rev contents)))
        w.channels
    in
    (* Cross-channel arrival order per destination: the reorder window is a
       function of it, so state matching must distinguish it. *)
    let arrivals =
      Array.init n (fun dst ->
          let arr = ref [] in
          for src = 0 to n - 1 do
            Queue.iter
              (fun e ->
                if Engine.pending_live w.engine e.e_ev then arr := e :: !arr)
              w.channels.((dst * n) + src)
          done;
          List.sort (fun a b -> compare a.e_seq b.e_seq) !arr
          |> List.map (fun e -> e.e_src))
    in
    (* Live timers per owner, by count: timers of one owner are mutually
       dependent and protocols re-arm rather than accumulate, so the count
       abstracts the set safely for the worlds we explore. *)
    let timers = Array.make n 0 in
    List.iter
      (fun t ->
        if (not t.t_fired) && Engine.pending_live w.engine t.t_ev then
          let o = if t.t_owner < 0 then 0 else t.t_owner in
          timers.(o) <- timers.(o) + 1)
      w.timers;
    {
      Symmetry.sv_n = n;
      sv_nodes = nodes;
      sv_chans = chans;
      sv_arrivals = arrivals;
      sv_timers = timers;
      sv_fired = Array.copy w.timers_fired;
      sv_fault_idx = w.fault_idx;
    }

  (* The permutation group for canonicalization, or [None] when symmetry is
     off or the movable set is too small to buy anything.  Fixed nodes:
     every leader of an explored view (by index, courtesy of round-robin),
     equivocators, and any node the fault schedule names. *)
  let group_of_cfg cfg =
    if not cfg.symmetry then None
    else
      let fixed = cfg.equivocators @ fault_fixed cfg.faults in
      match Symmetry.movable ~n:cfg.n ~view_bound:cfg.view_bound ~fixed with
      | [] | [ _ ] -> None
      | movable -> Some (Symmetry.group ~n:cfg.n movable)

  let state_digest ~group w =
    let v = vec_of_world w in
    match group with
    | None -> Symmetry.digest v
    | Some grp -> Symmetry.canonical grp v

  let max_view w =
    Array.fold_left
      (fun acc node ->
        match node with Some n -> max acc (P.current_view n) | None -> acc)
      0 w.nodes

  (* {2 Livelock certification}

     A commit-free state with no enabled action can be stuck for two very
     different reasons: the protocol is genuinely wedged (no finite amount
     of timing out ever moves it — a liveness bug), or the finite
     [timer_budget] ran out one expiry short of recovery (an artifact of
     the bound).  The probe distinguishes them: grant one budget-free timer
     round — fire every live pending timer once, in canonical order,
     draining deliveries deterministically after each — and compare state
     digests (timer-budget bookkeeping zeroed) before and after.  An
     unchanged digest certifies a fixpoint: expiries only re-send
     information every peer already has, so every future round repeats this
     one forever.  A changed digest means timeouts still make progress and
     the stall was a budget artifact.

     Only claimed for quiet worlds — schedule fully applied, no partition,
     all nodes live — so the fixpoint really does describe the infinite
     suffix. *)

  let post_schedule_clean w =
    w.fault_idx >= List.length w.cfg.faults
    && w.partition = None
    && Array.for_all Option.is_some w.nodes
    &&
    let live = ref true in
    for i = 0 to w.cfg.n - 1 do
      if Engine.is_down w.engine i then live := false
    done;
    !live

  exception Probe_diverged

  (* Deliver every deliverable message, always taking the canonically first
     one ([enabled] sorts deliveries ahead of timers and faults).  [fuel]
     bounds the drain: a cascade that does not quiesce (e.g. the block
     synchronizer re-requesting as the probe's clock ticks) is by
     definition not a fixpoint, so the certification is abandoned. *)
  let rec deliver_all ~fuel w =
    match enabled w with
    | A_msg e :: _ ->
        if !fuel <= 0 then raise Probe_diverged;
        decr fuel;
        exec_action w (A_msg e);
        deliver_all ~fuel w
    | _ -> ()

  (* Digest with the per-era timer-firing counters zeroed: the probe
     compares protocol-and-network state, not budget bookkeeping. *)
  let probe_digest w =
    let v = vec_of_world w in
    Symmetry.digest { v with Symmetry.sv_fired = Array.make w.cfg.n 0 }

  let livelock_probe w =
    let viol0 = List.length w.violations in
    let d0 = probe_digest w in
    (* One budget-free timer round costs at most n firings; a healthy drain
       after each is O(messages in flight) = O(n^2) per hop with a short
       chain of reactive hops.  Anything past this bound is a protocol
       making real (if unbounded) progress, not a fixpoint. *)
    let fuel = ref (1024 * w.cfg.n * w.cfg.n) in
    try
      deliver_all ~fuel w;
      let round =
        List.filter
          (fun t -> (not t.t_fired) && Engine.pending_live w.engine t.t_ev)
          w.timers
        |> List.sort (fun a b -> compare (a.t_owner, a.t_idx) (b.t_owner, b.t_idx))
      in
      List.iter
        (fun t ->
          (* Re-check: an earlier expiry in the round may have re-armed or
             invalidated this one. *)
          if (not t.t_fired) && Engine.pending_live w.engine t.t_ev then begin
            exec_action w (A_timer t);
            deliver_all ~fuel w
          end)
        round;
      let d1 = probe_digest w in
      List.length w.violations = viol0 && Int64.equal d0 d1
    with Probe_diverged -> false

  (* {2 Path replay} *)

  let step_path w idx =
    let acts = enabled w in
    match List.nth_opt acts idx with
    | Some a -> exec_action w a
    | None ->
        raise
          (Bad_path
             (Printf.sprintf "index %d out of %d enabled actions" idx (List.length acts)))

  (* Replay [path] on a fresh world.  Violations are only reported for the
     final transition: every proper prefix was itself a frontier state, was
     checked then, and (being violation-free, or it would not have been
     expanded) contributes nothing new. *)
  let run_path ?trace cfg path =
    let w = make_world ?trace cfg in
    let rec go = function
      | [] -> ()
      | [ last ] ->
          w.violations <- [];
          step_path w last
      | idx :: rest ->
          step_path w idx;
          go rest
    in
    (match path with [] -> () | _ -> go path);
    w

  type probe = {
    r_digest : int64;
    r_enabled : (int64 * int * bool) array;
        (** canonical order: (key, location, is_fault) per enabled action *)
    r_violations : (Mc_report.violation_kind * string) list;
    r_committed : int;
    r_view_bound_hit : bool;
    r_livelock : bool;  (** commit-free terminal state with a certified fixpoint *)
  }

  let probe_path ~group cfg path =
    let w = run_path cfg path in
    let acts = enabled w in
    let digest = state_digest ~group w in
    let violations = List.rev w.violations in
    let committed = w.commits_total in
    let view_hit = max_view w > cfg.view_bound in
    let livelock =
      (* Certify last: the probe mutates the world. *)
      acts = [] && committed = 0 && violations = []
      && post_schedule_clean w && livelock_probe w
    in
    {
      r_digest = digest;
      r_enabled =
        Array.of_list
          (List.map (fun a -> (action_key a, action_loc a, action_global_dep a)) acts);
      r_violations = violations;
      r_committed = committed;
      r_view_bound_hit = view_hit;
      r_livelock = livelock;
    }

  (* {2 Exploration} *)

  type frontier_entry = {
    f_path : int list;
    f_sleep : (int64 * int * bool) list;
  }

  let sleep_keys sleep = List.map (fun (k, _, _) -> k) sleep

  let check ?progress ?stop ?(jobs = 1) cfg =
    let group = group_of_cfg cfg in
    let visited : (int64, (int64 * int * bool) list) Hashtbl.t =
      Hashtbl.create 4096
    in
    let states_visited = ref 0 in
    let states_matched = ref 0 in
    let states_reexpanded = ref 0 in
    let transitions = ref 0 in
    let branches = ref 0 in
    let sleep_skips = ref 0 in
    let leaves = ref 0 in
    let max_depth_seen = ref 0 in
    let exhausted = ref true in
    let violations = ref [] in
    let max_committed = ref 0 in
    let commit_witness = ref None in
    let leaves_without_commit = ref 0 in
    let deadlocks = ref 0 in
    let deadlock_witness = ref None in
    let livelocks = ref 0 in
    let livelock_witness = ref None in
    let frontier = ref [ { f_path = []; f_sleep = [] } ] in
    let depth = ref 0 in
    while !frontier <> [] do
      (match stop with
      | Some f when f () ->
          (* Deadline: report what was explored, flagged non-exhaustive. *)
          exhausted := false;
          frontier := []
      | _ -> ());
      max_depth_seen := max !max_depth_seen !depth;
      (match progress with
      | None -> ()
      | Some f ->
          f ~depth:!depth ~frontier:(List.length !frontier) ~states:!states_visited);
      let probes =
        Bft_parallel.Parallel.map ~jobs
          (fun e -> probe_path ~group cfg e.f_path)
          !frontier
      in
      let next = ref [] in
      List.iter2
        (fun entry probe ->
          incr transitions;
          if probe.r_committed > 0 then begin
            if !commit_witness = None then commit_witness := Some entry.f_path;
            max_committed := max !max_committed probe.r_committed
          end;
          let leaf_at reason_commitless =
            incr leaves;
            if reason_commitless && probe.r_committed = 0 then
              incr leaves_without_commit
          in
          if probe.r_violations <> [] then begin
            List.iter
              (fun (kind, detail) ->
                violations :=
                  { Mc_report.kind; detail; path = entry.f_path } :: !violations)
              probe.r_violations;
            (* A violating state is a leaf; make later hits on its digest
               prune unconditionally.  A revisit counts as matched, not as a
               fresh state — the digest was already in the table. *)
            if Hashtbl.mem visited probe.r_digest then incr states_matched
            else incr states_visited;
            Hashtbl.replace visited probe.r_digest [];
            leaf_at false
          end
          else begin
            let prev = Hashtbl.find_opt visited probe.r_digest in
            let prune =
              match prev with
              | Some stored ->
                  let new_keys = sleep_keys entry.f_sleep in
                  List.for_all (fun (k, _, _) -> List.mem k new_keys) stored
              | None -> false
            in
            if prune then incr states_matched
            else begin
              let eff_sleep =
                match prev with
                | None ->
                    incr states_visited;
                    entry.f_sleep
                | Some stored ->
                    (* Revisit with a smaller sleep set: re-expand from the
                       intersection so nothing stays unexplored. *)
                    incr states_reexpanded;
                    let stored_keys = sleep_keys stored in
                    List.filter
                      (fun (k, _, _) -> List.mem k stored_keys)
                      entry.f_sleep
              in
              Hashtbl.replace visited probe.r_digest eff_sleep;
              if Array.length probe.r_enabled = 0 then begin
                leaf_at true;
                if probe.r_committed = 0 then begin
                  incr deadlocks;
                  if !deadlock_witness = None then
                    deadlock_witness := Some entry.f_path;
                  if probe.r_livelock then begin
                    incr livelocks;
                    if !livelock_witness = None then
                      livelock_witness := Some entry.f_path
                  end
                end
              end
              else if probe.r_view_bound_hit then leaf_at true
              else if List.length entry.f_path >= cfg.max_depth then begin
                exhausted := false;
                leaf_at true
              end
              else begin
                let sleep = ref eff_sleep in
                Array.iteri
                  (fun j ((key, loc, global_dep) as a) ->
                    if List.exists (fun (k, _, _) -> Int64.equal k key) !sleep
                    then incr sleep_skips
                    else begin
                      let child_sleep =
                        if global_dep then []
                        else
                          List.filter
                            (fun (_, l, g) -> (not g) && l <> loc)
                            !sleep
                      in
                      incr branches;
                      next :=
                        { f_path = entry.f_path @ [ j ]; f_sleep = child_sleep }
                        :: !next
                    end;
                    sleep := a :: !sleep)
                  probe.r_enabled
              end
            end
          end)
        !frontier probes;
      frontier := List.rev !next;
      incr depth
    done;
    {
      Mc_report.stats =
        {
          Mc_report.states_visited = !states_visited;
          states_matched = !states_matched;
          states_reexpanded = !states_reexpanded;
          transitions = !transitions;
          branches = !branches;
          sleep_skips = !sleep_skips;
          leaves = !leaves;
          max_depth_seen = !max_depth_seen;
          exhausted = !exhausted;
        };
      violations = List.rev !violations;
      max_committed = !max_committed;
      commit_witness = !commit_witness;
      leaves_without_commit = !leaves_without_commit;
      deadlocks = !deadlocks;
      deadlock_witness = !deadlock_witness;
      livelocks = !livelocks;
      livelock_witness = !livelock_witness;
    }

  (* {2 Swarm mode — sleep-set-respecting random walks}

     Each walk samples one maximal interleaving: at every state it draws
     uniformly among the enabled actions not in its sleep set, recording the
     index into the full canonically-sorted enabled list so walk paths
     replay through the exact machinery exhaustive counterexamples use.
     Sleep sets evolve exactly as in the exhaustive expansion, so a walk
     never burns steps on an interleaving some sibling choice already
     covers.  Per-walk RNGs are derived by hashing (seed, walk index) —
     never by offsetting the seed — so distinct walks (and distinct seeds)
     cannot alias, and results are independent of [jobs]. *)

  type walk = {
    wk_endpoint : Mc_report.endpoint;
    wk_path : int list;
    wk_steps : int;
    wk_commits : int;
    wk_digests : int64 list;  (** newest first; the initial state included *)
    wk_violation : (Mc_report.violation_kind * string) option;
    wk_tail : int;  (** commit-free steps at the end of the walk *)
  }

  let walk_seed seed i =
    Int64.to_int
      (Int64.shift_right_logical
         (Hash.to_int64 (Hash.of_fields [ Int64.of_int seed; Int64.of_int i ]))
         1)

  let run_walk ~group ~depth ~seed cfg index =
    let rng = Bft_sim.Rng.create (walk_seed seed index) in
    let w = make_world cfg in
    let digests = ref [ state_digest ~group w ] in
    let path = ref [] in
    let sleep = ref [] in
    let steps = ref 0 in
    let last_commit = ref 0 in
    let violation = ref None in
    let endpoint = ref None in
    while !endpoint = None do
      let acts = enabled w in
      if acts = [] then
        endpoint :=
          Some
            (if
               w.commits_total = 0 && w.violations = []
               && post_schedule_clean w && livelock_probe w
             then Mc_report.Ep_livelock
             else Mc_report.Ep_no_action)
      else if max_view w > cfg.view_bound then
        endpoint := Some Mc_report.Ep_view_bound
      else if !steps >= depth then endpoint := Some Mc_report.Ep_depth
      else begin
        let arr = Array.of_list acts in
        let keyed =
          Array.map
            (fun a -> (action_key a, action_loc a, action_global_dep a))
            arr
        in
        let avail =
          List.filter
            (fun j ->
              let k, _, _ = keyed.(j) in
              not (List.exists (fun (k', _, _) -> Int64.equal k k') !sleep))
            (List.init (Array.length arr) Fun.id)
        in
        (* All enabled actions asleep: the trace so far is redundant with
           some earlier-ordered interleaving — but that ordering is not
           being explored by anyone, so a walk that stopped here (as a pure
           sleep-set walk would) wastes nearly its whole depth budget.
           Wake everything and keep sampling. *)
        let avail =
          match avail with
          | [] ->
              sleep := [];
              List.init (Array.length arr) Fun.id
          | _ -> avail
        in
        begin
            let j = List.nth avail (Bft_sim.Rng.int rng (List.length avail)) in
            let _, loc, glob = keyed.(j) in
            (* Siblings ordered before the choice join the inherited sleep
               set, exactly as the exhaustive expansion would have it when
               exploring branch [j]. *)
            let pre = ref !sleep in
            for k = j - 1 downto 0 do
              pre := keyed.(k) :: !pre
            done;
            sleep :=
              (if glob then []
               else List.filter (fun (_, l, g) -> (not g) && l <> loc) !pre);
            let before = w.commits_total in
            exec_action w arr.(j);
            incr steps;
            path := j :: !path;
            if w.commits_total > before then last_commit := !steps;
            digests := state_digest ~group w :: !digests;
            if w.violations <> [] then begin
              (match List.rev w.violations with
              | v :: _ -> violation := Some v
              | [] -> ());
              endpoint := Some Mc_report.Ep_violation
            end
        end
      end
    done;
    {
      wk_endpoint = Option.get !endpoint;
      wk_path = List.rev !path;
      wk_steps = !steps;
      wk_commits = w.commits_total;
      wk_digests = !digests;
      wk_violation = !violation;
      wk_tail = !steps - !last_commit;
    }

  let run_walks ?(jobs = 1) ~walks ~depth ~seed cfg =
    let group = group_of_cfg cfg in
    Bft_parallel.Parallel.map ~jobs
      (fun i -> run_walk ~group ~depth ~seed cfg i)
      (List.init walks Fun.id)

  let endpoint_rank = function
    | Mc_report.Ep_violation -> 0
    | Mc_report.Ep_livelock -> 1
    | Mc_report.Ep_no_action -> 2
    | Mc_report.Ep_view_bound -> 3
    | Mc_report.Ep_depth -> 4
    | Mc_report.Ep_sleep_blocked -> 5

  let swarm ?jobs ~walks ~depth ~seed cfg =
    let ws = run_walks ?jobs ~walks ~depth ~seed cfg in
    let distinct = Hashtbl.create 4096 in
    let steps = ref 0 in
    let max_committed = ref 0 in
    let commitless = ref 0 in
    let max_tail = ref 0 in
    let violations = ref [] in
    let livelock = ref None in
    let counts = Hashtbl.create 7 in
    let fingerprint = ref [] in
    List.iter
      (fun wk ->
        steps := !steps + wk.wk_steps;
        max_committed := max !max_committed wk.wk_commits;
        if wk.wk_commits = 0 then incr commitless;
        max_tail := max !max_tail wk.wk_tail;
        List.iter (fun d -> Hashtbl.replace distinct d ()) wk.wk_digests;
        Hashtbl.replace counts wk.wk_endpoint
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts wk.wk_endpoint));
        (match (wk.wk_endpoint, !livelock) with
        | Mc_report.Ep_livelock, None -> livelock := Some wk.wk_path
        | _ -> ());
        (match wk.wk_violation with
        | Some (kind, detail) ->
            violations :=
              { Mc_report.kind; detail; path = wk.wk_path } :: !violations
        | None -> ());
        (* Order-sensitive: any divergence in any walk's endpoint, length,
           choices or final state changes the fingerprint, which is what the
           determinism tests pin down across [jobs] settings. *)
        fingerprint :=
          Hash.to_int64
            (Hash.of_fields
               (Int64.of_int (endpoint_rank wk.wk_endpoint)
               :: Int64.of_int wk.wk_steps
               :: Int64.of_int wk.wk_commits
               :: (match wk.wk_digests with d :: _ -> d | [] -> 0L)
               :: List.map Int64.of_int wk.wk_path))
          :: !fingerprint)
      ws;
    let endpoints =
      List.map
        (fun ep -> (ep, Option.value ~default:0 (Hashtbl.find_opt counts ep)))
        [
          Mc_report.Ep_violation;
          Ep_livelock;
          Ep_no_action;
          Ep_view_bound;
          Ep_depth;
          Ep_sleep_blocked;
        ]
    in
    {
      Mc_report.sw_walks = List.length ws;
      sw_steps = !steps;
      sw_distinct = Hashtbl.length distinct;
      sw_endpoints = endpoints;
      sw_max_committed = !max_committed;
      sw_commitless = !commitless;
      sw_max_tail = !max_tail;
      sw_violations = List.rev !violations;
      sw_livelock_witness = !livelock;
      sw_fingerprint = Hash.to_int64 (Hash.of_fields (List.rev !fingerprint));
    }

  (* {2 Coverage-guided schedule search} *)

  let outcome_of_walks ws =
    let digests = List.concat_map (fun wk -> wk.wk_digests) ws in
    let near = List.length (List.filter (fun wk -> wk.wk_commits = 0) ws) in
    let cx =
      List.find_map
        (fun wk ->
          match wk.wk_endpoint with
          | Mc_report.Ep_livelock -> Some (Mc_report.Cx_livelock wk.wk_path)
          | Mc_report.Ep_violation -> (
              match wk.wk_violation with
              | Some (kind, detail) ->
                  Some
                    (Mc_report.Cx_violation
                       { Mc_report.kind; detail; path = wk.wk_path })
              | None -> None)
          | _ -> None)
        ws
    in
    { Explorer.o_digests = digests; o_near_misses = near; o_counterexample = cx }

  let schedule_search ?(jobs = 1) xcfg (cfg : config) =
    let n = cfg.n in
    let eval_count = ref 0 in
    let eval sched =
      let k = !eval_count in
      incr eval_count;
      match Mc_schedule.compile ~n sched with
      | Error _ ->
          (* Mutants are pre-validated; an uncompilable seed just scores 0. *)
          { Explorer.o_digests = []; o_near_misses = 0; o_counterexample = None }
      | Ok steps ->
          let cfg = { cfg with faults = steps } in
          (* Per-candidate swarm seed, derived like per-walk seeds so
             candidate evaluations never alias each other. *)
          let seed = walk_seed xcfg.s_seed (1_000_000 + k) in
          outcome_of_walks
            (run_walks ~jobs ~walks:xcfg.s_walks ~depth:xcfg.s_depth ~seed cfg)
    in
    let r =
      Explorer.search ~seed:xcfg.s_seed ~rounds:xcfg.s_rounds
        ~population:xcfg.s_population ~mutants:xcfg.s_mutants
        ~init:(Bft_faults.Mutate.seeds ~n)
        ~mutate:(Bft_faults.Mutate.mutate ~n ~f:xcfg.s_fault_budget)
        ~eval
    in
    let show = Bft_faults.Fault_schedule.to_string in
    {
      Mc_report.se_rounds = r.Explorer.x_rounds;
      se_evals = r.Explorer.x_evals;
      se_distinct = r.Explorer.x_distinct;
      se_best = List.map (fun (s, fit) -> (show s, fit)) r.Explorer.x_best;
      se_counterexample =
        Option.map (fun (s, c) -> (show s, c)) r.Explorer.x_counterexample;
    }

  (* {2 Counterexample replay} *)

  let replay cfg path =
    let sink = Trace.create () in
    let (_ : world) = run_path ~trace:sink cfg path in
    sink

  let describe cfg path =
    let w = make_world cfg in
    let buf = Buffer.create 256 in
    List.iteri
      (fun step idx ->
        let acts = enabled w in
        match List.nth_opt acts idx with
        | None -> raise (Bad_path (Printf.sprintf "step %d: index %d out of range" step idx))
        | Some a ->
            Buffer.add_string buf
              (Printf.sprintf "%2d. %s\n" (step + 1) (describe_action w a));
            exec_action w a)
      path;
    Buffer.contents buf
end

(* {2 Protocol dispatch} *)

module Kind = Bft_runtime.Protocol_kind

module Simple_mc = Make (Moonshot.Simple_node.Protocol)
module Pipelined_mc = Make (Moonshot.Pipelined_node.Protocol)
module Commit_mc = Make (Moonshot.Pipelined_node.Commit_protocol)
module Jolteon_mc = Make (Jolteon.Jolteon_node.Protocol)
module Hotstuff_mc = Make (Hotstuff.Hotstuff_node.Protocol)

let check ?stop ?jobs kind cfg =
  match (kind : Kind.t) with
  | Simple_moonshot -> Simple_mc.check ?stop ?jobs cfg
  | Pipelined_moonshot -> Pipelined_mc.check ?stop ?jobs cfg
  | Commit_moonshot -> Commit_mc.check ?stop ?jobs cfg
  | Jolteon -> Jolteon_mc.check ?stop ?jobs cfg
  | Hotstuff -> Hotstuff_mc.check ?stop ?jobs cfg

let swarm ?jobs kind ~walks ~depth ~seed cfg =
  match (kind : Kind.t) with
  | Simple_moonshot -> Simple_mc.swarm ?jobs ~walks ~depth ~seed cfg
  | Pipelined_moonshot -> Pipelined_mc.swarm ?jobs ~walks ~depth ~seed cfg
  | Commit_moonshot -> Commit_mc.swarm ?jobs ~walks ~depth ~seed cfg
  | Jolteon -> Jolteon_mc.swarm ?jobs ~walks ~depth ~seed cfg
  | Hotstuff -> Hotstuff_mc.swarm ?jobs ~walks ~depth ~seed cfg

let schedule_search ?jobs kind xcfg cfg =
  match (kind : Kind.t) with
  | Simple_moonshot -> Simple_mc.schedule_search ?jobs xcfg cfg
  | Pipelined_moonshot -> Pipelined_mc.schedule_search ?jobs xcfg cfg
  | Commit_moonshot -> Commit_mc.schedule_search ?jobs xcfg cfg
  | Jolteon -> Jolteon_mc.schedule_search ?jobs xcfg cfg
  | Hotstuff -> Hotstuff_mc.schedule_search ?jobs xcfg cfg

let replay kind cfg path =
  match (kind : Kind.t) with
  | Simple_moonshot -> Simple_mc.replay cfg path
  | Pipelined_moonshot -> Pipelined_mc.replay cfg path
  | Commit_moonshot -> Commit_mc.replay cfg path
  | Jolteon -> Jolteon_mc.replay cfg path
  | Hotstuff -> Hotstuff_mc.replay cfg path

let describe kind cfg path =
  match (kind : Kind.t) with
  | Simple_moonshot -> Simple_mc.describe cfg path
  | Pipelined_moonshot -> Pipelined_mc.describe cfg path
  | Commit_moonshot -> Commit_mc.describe cfg path
  | Jolteon -> Jolteon_mc.describe cfg path
  | Hotstuff -> Hotstuff_mc.describe cfg path
