(** Validator-symmetry reduction for the model checker's state digests.

    Round-robin leadership fixes the role of nodes [0 .. view_bound - 1]
    (each leads an explored view), so only the remaining followers are
    interchangeable.  The checker canonicalizes each structured state
    vector by taking the minimum digest over every permutation of the
    movable set — worlds that differ only in which follower played which
    role collapse to one canonical state.

    The permutation renames the vector's {e slots} (node positions,
    [(dst, src)] channels, arrival sources, timer owners); it never edits
    the opaque per-node hashes.  Two vectors related by a movable
    permutation therefore describe worlds whose role-equivalent nodes hold
    byte-identical protocol state, and — because a movable node is never a
    leader within the horizon and all its sends are routed through the
    permuted slots — their futures are bisimilar with respect to every
    checked invariant.  The reduction assumes movable nodes run the {e
    same} program: exclude equivocators, fault-schedule victims and
    partition members via [fixed] (the checker does). *)

type vec = {
  sv_n : int;
  sv_nodes : (int64 * int64) array;  (** per node: (state hash, WAL hash) *)
  sv_chans : int64 array;
      (** [dst * n + src]: digest of the channel's in-flight content
          sequence *)
  sv_arrivals : int list array;
      (** per destination: source ids, oldest arrival first *)
  sv_timers : int array;  (** per owner: live unfired timers *)
  sv_fired : int array;  (** per node: timer firings this fault era *)
  sv_fault_idx : int;
}

(** Order-stable digest of a vector (no canonicalization). *)
val digest : vec -> int64

(** [apply p v] renames every slot through permutation [p]
    ([p.(i)] is where node [i]'s state goes). *)
val apply : int array -> vec -> vec

(** [movable ~n ~view_bound ~fixed] — the interchangeable followers:
    every node [>= view_bound] not listed in [fixed]. *)
val movable : n:int -> view_bound:int -> fixed:int list -> int list

(** The full permutation group over [movable] (identity included), as
    length-[n] permutation arrays fixing every other node.  Size is
    [|movable|!] — keep the movable set small. *)
val group : n:int -> int list -> int array list

(** Minimum digest over the group; [canonical [] v = digest v]. *)
val canonical : int array list -> vec -> int64
