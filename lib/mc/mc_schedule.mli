(** Fault schedules as model-checker choice points.

    The experiment harness interprets a {!Bft_faults.Fault_schedule.t} by
    wall-clock time; the model checker has no wall clock — it explores
    orderings.  [compile] turns a timed schedule into an ordered list of
    untimed steps: the checker offers "execute the next fault step" as one
    more enabled action at the initial state and at every quiescent state,
    so the steps interleave with the delivery orderings while respecting
    the schedule's own event order (see {!Checker}'s model notes for why
    onset is not explored mid-flight).

    Probabilistic events ([Link_loss]) and latency shifts ([Delay_spike])
    have no untimed meaning and are rejected. *)

type step =
  | Crash of int
  | Recover of int  (** restart from the WAL, as the harness does *)
  | Partition_on of int list list
      (** cross-group sends are dropped at capture time (the harness drops
          at send time, matching) *)
  | Partition_off

val pp_step : Format.formatter -> step -> unit

(** [compile ~n sched] linearizes [sched] by event start time (partition
    windows contribute an opening and a closing edge).  Errors on loss /
    delay events, out-of-range nodes and overlapping partitions. *)
val compile :
  n:int -> Bft_faults.Fault_schedule.t -> (step list, string) result
