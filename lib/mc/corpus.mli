(** Deterministic corpus for coverage-guided search: the global set of
    canonical state digests ever reached, plus a bounded best-first
    population of candidates.  Fitness ties break by insertion order, so a
    seeded search replays exactly. *)

type 'a t

val create : cap:int -> 'a t

(** [note t digests] records the digests and returns how many were new —
    the novelty component of a candidate's fitness. *)
val note : 'a t -> int64 list -> int

(** Total distinct digests recorded so far. *)
val distinct : 'a t -> int

(** Insert a scored candidate, keeping only the [cap] fittest. *)
val add : 'a t -> 'a -> float -> unit

(** Current population, best first. *)
val population : 'a t -> ('a * float) list
