(** Bounded model checker: exhaustive exploration of message-delivery and
    timer-firing orderings for small worlds, over the exact engine and node
    wiring the experiments use — plus two sampling modes that scale past
    what exhaustion can reach (swarm walks and coverage-guided schedule
    search).

    The checker installs the engine's capture hook ({!Bft_sim.Engine.set_capture}),
    so every network delivery, timer expiry and scheduled thunk becomes an
    explorable choice instead of a time-ordered event.  Exploration is a
    layered breadth-first search over {e paths} (sequences of indices into
    the canonically-sorted enabled-action list); nodes are mutable, so each
    path is replayed from a fresh world — which is also what makes layers
    embarrassingly parallel ({!Bft_parallel.Parallel.map}) while keeping
    results bit-identical for any [jobs] value.

    Reduction, all sound for state reachability within the stated model:
    - {e state matching}: a canonical digest of node states, WALs, channel
      contents, per-destination arrival order, live timers and the fault
      cursor; revisited digests are pruned (with Godefroid's sleep-set
      subset guard, re-expanding when a revisit carries a strictly smaller
      sleep set);
    - {e sleep sets} with a DPOR-lite independence relation: deliveries to
      different destinations commute; timer firings and fault steps are
      globally dependent (timer enabledness is a function of every inbox);
    - {e validator symmetry} (opt-in, [symmetry = true]): digests are
      canonicalized under the permutation group of interchangeable
      validators ({!Symmetry}) — the nodes that lead no explored view and
      that neither the equivocator list nor the fault schedule names.
      Round-robin leadership pins nodes [0 .. view_bound - 1], so the
      reduction pays off for worlds with at least two spare followers
      ([n >= view_bound + 2]).

    Model assumptions (documented, deliberate):
    - each [(src, dst)] link is a FIFO channel — delivery order is explored
      exhaustively {e across} channels but in-order {e within} one, and an
      identical undelivered copy of a message merges with the one already
      queued (retransmission after delivery re-enqueues, so post-partition
      liveness is still explored);
    - cross-channel overtaking at one destination is bounded by
      [reorder_window] (delay-bounded scheduling);
    - timers fire only at {e quiescence} — when no delivery is enabled
      anywhere — and at most [timer_budget] times per node per fault era.
      This encodes
      maximal progress: every protocol's timeouts are 3–5 [delta] while
      deliveries complete within [delta], so in any timing-feasible run a
      timer cannot beat a deliverable message;
    - messages in flight to a node when it crashes die with the
      incarnation, exactly as in the harness.

    At every reached state the checker verifies: no two nodes commit
    different blocks at one height, no {!Bft_chain.Commit_log.Safety_violation},
    per-incarnation lock monotonicity, WAL/in-memory agreement
    ({!Bft_types.Protocol_intf.S.wal_consistent}), and — at capture time —
    that no honest node ever signs two different votes for one
    [(view, slot)].  Liveness is reported, not asserted: the report carries
    the best commit witness, the number of commit-free leaves, and — new —
    the subset of commit-free deadlocks that are {e certified livelocks}.

    {b Livelock certification.}  A commit-free terminal state (schedule
    fully applied, no partition, everyone live, no enabled action) is
    probed with one budget-free timer round: fire every live pending timer
    once in canonical order, drain deliveries deterministically after each,
    and compare state digests (timer-budget bookkeeping excluded) before
    and after.  An unchanged digest is a fixpoint certificate — every
    future timeout round repeats this one, so no amount of extra budget
    ever makes progress (a genuine liveness bug).  A changed digest means
    the stall was an artifact of the finite [timer_budget]. *)

type config = {
  n : int;
  delta : float;  (** logical; only feeds in-node time heuristics *)
  view_bound : int;
      (** stop expanding once some live node's view exceeds this *)
  max_depth : int;  (** hard path-length cap; hitting it clears [exhausted] *)
  timer_budget : int;
      (** max timer firings per {e node} per {e fault era} (counts reset at
          every fault step): bounds the timeout-interleaving dimension,
          which otherwise dominates the state space (nodes re-arm on every
          expiry, so one node could consume any global budget alone).
          Worlds that need view changes to progress (partitions, crashes)
          need a budget of at least one firing per stalled view. *)
  reorder_window : int;
      (** per-destination overtaking bound (delay-bounded scheduling): a
          message may be delivered only while it is among the [window]
          oldest undelivered arrivals for its destination.  [1] = arrival
          order; larger windows explore more cross-sender reorderings
          (which-quorum-forms choices) at exponential cost. *)
  equivocators : int list;
      (** created with [~equivocate:true] and exempt from double-vote checks *)
  faults : Mc_schedule.step list;
  payload_bytes : int;
  symmetry : bool;
      (** canonicalize state digests under the validator-symmetry group;
          sound (see {!Symmetry}) and worthwhile once [n >= view_bound + 2] *)
}

(** Smart constructor with defaults ([delta]=10, [max_depth]=128,
    [timer_budget]=4, [reorder_window]=1, no faults, no equivocators,
    [symmetry]=false); validates ranges. *)
val config :
  ?delta:float ->
  ?max_depth:int ->
  ?timer_budget:int ->
  ?reorder_window:int ->
  ?equivocators:int list ->
  ?faults:Mc_schedule.step list ->
  ?payload_bytes:int ->
  ?symmetry:bool ->
  n:int ->
  view_bound:int ->
  unit ->
  config

(** Parameters of one coverage-guided schedule search: an {!Explorer} loop
    over {!Bft_faults.Mutate} candidates, each scored by a swarm of
    [s_walks] walks of depth [s_depth] under the candidate's compiled
    schedule.  Deterministic in [s_seed]. *)
type search_config = {
  s_seed : int;
  s_rounds : int;
  s_population : int;
  s_mutants : int;
  s_walks : int;  (** swarm walks per candidate evaluation *)
  s_depth : int;  (** step cap per walk *)
  s_fault_budget : int;  (** [f] for mutation validity *)
}

(** Defaults: 24 rounds, population 8, 12 mutants per round, 32 walks of
    depth 96 per evaluation, fault budget 1. *)
val search_config :
  ?rounds:int ->
  ?population:int ->
  ?mutants:int ->
  ?walks:int ->
  ?depth:int ->
  ?fault_budget:int ->
  seed:int ->
  unit ->
  search_config

module Make (P : Bft_types.Protocol_intf.S) : sig
  (** [check ~jobs cfg] explores the world exhaustively within bounds and
      returns the report.  Deterministic: state counts, violations and
      witness paths are identical for every [jobs] value.  [progress], when
      given, is called once per BFS layer (frontier size, distinct states
      so far) — used by the bench driver for live output.  [stop], polled
      once per layer, aborts the search when it returns [true] (the report
      is flagged non-exhaustive); used for wall-clock budgets without
      linking this library against [unix]. *)
  val check :
    ?progress:(depth:int -> frontier:int -> states:int -> unit) ->
    ?stop:(unit -> bool) ->
    ?jobs:int ->
    config ->
    Mc_report.t

  (** [swarm ~walks ~depth ~seed cfg] samples [walks] maximal
      interleavings with sleep-set-respecting random walks: at each state,
      draw uniformly among enabled actions not in the walk's sleep set
      (evolved exactly as in the exhaustive expansion, so a walk never
      spends steps on an interleaving a sibling branch covers).  Paths are
      indices into the full canonical enabled list, so any walk — in
      particular a violation's or livelock's — replays through {!replay} /
      {!describe}.  Per-walk RNGs are derived by {e hashing} (seed, walk
      index), so walks never alias and reports are byte-identical for any
      [jobs] value; the report's [sw_fingerprint] pins every walk's full
      trajectory for determinism tests.  The estimated coverage is
      [sw_distinct / sw_walks] — distinct canonical state digests per
      walk. *)
  val swarm :
    ?jobs:int ->
    walks:int ->
    depth:int ->
    seed:int ->
    config ->
    Mc_report.swarm

  (** [schedule_search xcfg cfg] runs the coverage-guided mutation loop
      over fault schedules: seeds from {!Bft_faults.Mutate.seeds}, mutants
      bred with {!Bft_faults.Mutate.mutate}, each candidate scored by a
      swarm under its compiled schedule (novel canonical digests + weighted
      commit-free near-misses), stopping at the first counterexample — a
      certified livelock or a safety violation.  [cfg.faults] is ignored
      (each candidate supplies its own schedule); deterministic in
      [xcfg.s_seed] for any [jobs]. *)
  val schedule_search :
    ?jobs:int -> search_config -> config -> Mc_report.search

  (** Replay a path (e.g. a violation's) deterministically, collecting a
      full {!Bft_obs.Trace.t} — deliveries, node probe events, commits,
      fault milestones — for inspection or byte-stable JSONL export. *)
  val replay : config -> int list -> Bft_obs.Trace.t

  (** Human-readable rendering of a path, one numbered action per line. *)
  val describe : config -> int list -> string
end

(** {2 Protocol dispatch} — the five protocols of the experiment suite. *)

val check :
  ?stop:(unit -> bool) ->
  ?jobs:int ->
  Bft_runtime.Protocol_kind.t ->
  config ->
  Mc_report.t

val swarm :
  ?jobs:int ->
  Bft_runtime.Protocol_kind.t ->
  walks:int ->
  depth:int ->
  seed:int ->
  config ->
  Mc_report.swarm

val schedule_search :
  ?jobs:int ->
  Bft_runtime.Protocol_kind.t ->
  search_config ->
  config ->
  Mc_report.search

val replay :
  Bft_runtime.Protocol_kind.t -> config -> int list -> Bft_obs.Trace.t

val describe : Bft_runtime.Protocol_kind.t -> config -> int list -> string
