(** Bounded model checker: exhaustive exploration of message-delivery and
    timer-firing orderings for small worlds, over the exact engine and node
    wiring the experiments use.

    The checker installs the engine's capture hook ({!Bft_sim.Engine.set_capture}),
    so every network delivery, timer expiry and scheduled thunk becomes an
    explorable choice instead of a time-ordered event.  Exploration is a
    layered breadth-first search over {e paths} (sequences of indices into
    the canonically-sorted enabled-action list); nodes are mutable, so each
    path is replayed from a fresh world — which is also what makes layers
    embarrassingly parallel ({!Bft_parallel.Parallel.map}) while keeping
    results bit-identical for any [jobs] value.

    Reduction, all sound for state reachability within the stated model:
    - {e state matching}: a canonical digest of node states, WALs, channel
      contents, per-destination arrival order, live timers and the fault
      cursor; revisited digests are pruned (with Godefroid's sleep-set
      subset guard, re-expanding when a revisit carries a strictly smaller
      sleep set);
    - {e sleep sets} with a DPOR-lite independence relation: deliveries to
      different destinations commute; timer firings and fault steps are
      globally dependent (timer enabledness is a function of every inbox).

    Model assumptions (documented, deliberate):
    - each [(src, dst)] link is a FIFO channel — delivery order is explored
      exhaustively {e across} channels but in-order {e within} one, and an
      identical undelivered copy of a message merges with the one already
      queued (retransmission after delivery re-enqueues, so post-partition
      liveness is still explored);
    - cross-channel overtaking at one destination is bounded by
      [reorder_window] (delay-bounded scheduling);
    - timers fire only at {e quiescence} — when no delivery is enabled
      anywhere — and at most [timer_budget] times per node per fault era.
      This encodes
      maximal progress: every protocol's timeouts are 3–5 [delta] while
      deliveries complete within [delta], so in any timing-feasible run a
      timer cannot beat a deliverable message;
    - messages in flight to a node when it crashes die with the
      incarnation, exactly as in the harness.

    At every reached state the checker verifies: no two nodes commit
    different blocks at one height, no {!Bft_chain.Commit_log.Safety_violation},
    per-incarnation lock monotonicity, WAL/in-memory agreement
    ({!Bft_types.Protocol_intf.S.wal_consistent}), and — at capture time —
    that no honest node ever signs two different votes for one
    [(view, slot)].  Liveness is reported, not asserted: the report carries
    the best commit witness and the number of commit-free leaves. *)

type config = {
  n : int;
  delta : float;  (** logical; only feeds in-node time heuristics *)
  view_bound : int;
      (** stop expanding once some live node's view exceeds this *)
  max_depth : int;  (** hard path-length cap; hitting it clears [exhausted] *)
  timer_budget : int;
      (** max timer firings per {e node} per {e fault era} (counts reset at
          every fault step): bounds the timeout-interleaving dimension,
          which otherwise dominates the state space (nodes re-arm on every
          expiry, so one node could consume any global budget alone).
          Worlds that need view changes to progress (partitions, crashes)
          need a budget of at least one firing per stalled view. *)
  reorder_window : int;
      (** per-destination overtaking bound (delay-bounded scheduling): a
          message may be delivered only while it is among the [window]
          oldest undelivered arrivals for its destination.  [1] = arrival
          order; larger windows explore more cross-sender reorderings
          (which-quorum-forms choices) at exponential cost. *)
  equivocators : int list;
      (** created with [~equivocate:true] and exempt from double-vote checks *)
  faults : Mc_schedule.step list;
  payload_bytes : int;
}

(** Smart constructor with defaults ([delta]=10, [max_depth]=128,
    [timer_budget]=4, [reorder_window]=1, no faults, no equivocators);
    validates ranges. *)
val config :
  ?delta:float ->
  ?max_depth:int ->
  ?timer_budget:int ->
  ?reorder_window:int ->
  ?equivocators:int list ->
  ?faults:Mc_schedule.step list ->
  ?payload_bytes:int ->
  n:int ->
  view_bound:int ->
  unit ->
  config

module Make (P : Bft_types.Protocol_intf.S) : sig
  (** [check ~jobs cfg] explores the world exhaustively within bounds and
      returns the report.  Deterministic: state counts, violations and
      witness paths are identical for every [jobs] value.  [progress], when
      given, is called once per BFS layer (frontier size, distinct states
      so far) — used by the bench driver for live output. *)
  val check :
    ?progress:(depth:int -> frontier:int -> states:int -> unit) ->
    ?jobs:int ->
    config ->
    Mc_report.t

  (** Replay a path (e.g. a violation's) deterministically, collecting a
      full {!Bft_obs.Trace.t} — deliveries, node probe events, commits,
      fault milestones — for inspection or byte-stable JSONL export. *)
  val replay : config -> int list -> Bft_obs.Trace.t

  (** Human-readable rendering of a path, one numbered action per line. *)
  val describe : config -> int list -> string
end

(** {2 Protocol dispatch} — the five protocols of the experiment suite. *)

val check :
  ?jobs:int -> Bft_runtime.Protocol_kind.t -> config -> Mc_report.t

val replay :
  Bft_runtime.Protocol_kind.t -> config -> int list -> Bft_obs.Trace.t

val describe : Bft_runtime.Protocol_kind.t -> config -> int list -> string
