type violation_kind =
  | Conflicting_commits
  | Commit_log_exception
  | Lock_regression
  | Wal_divergence
  | Double_vote

type violation = {
  kind : violation_kind;
  detail : string;
  path : int list;
}

type stats = {
  states_visited : int;
  states_matched : int;
  transitions : int;
  sleep_skips : int;
  leaves : int;
  max_depth_seen : int;
  exhausted : bool;
}

type t = {
  stats : stats;
  violations : violation list;
  max_committed : int;
  commit_witness : int list option;
  leaves_without_commit : int;
  deadlocks : int;
  deadlock_witness : int list option;
}

let kind_name = function
  | Conflicting_commits -> "conflicting-commits"
  | Commit_log_exception -> "commit-log-exception"
  | Lock_regression -> "lock-regression"
  | Wal_divergence -> "wal-divergence"
  | Double_vote -> "double-vote"

let pruning_ratio s =
  let skipped = s.states_matched + s.sleep_skips in
  let total = s.transitions + skipped in
  if total = 0 then 0. else float_of_int skipped /. float_of_int total

let pp_path ppf path =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ';')
       Format.pp_print_int)
    path

let pp_violation ppf v =
  Format.fprintf ppf "%s at %a: %s" (kind_name v.kind) pp_path v.path v.detail

let pp ppf t =
  Format.fprintf ppf
    "@[<v>states=%d matched=%d transitions=%d sleep-skips=%d leaves=%d \
     depth<=%d exhausted=%b@,\
     max-committed=%d leaves-without-commit=%d deadlocks=%d%a%a%a@]"
    t.stats.states_visited t.stats.states_matched t.stats.transitions
    t.stats.sleep_skips t.stats.leaves t.stats.max_depth_seen
    t.stats.exhausted t.max_committed t.leaves_without_commit t.deadlocks
    (fun ppf -> function
      | None -> ()
      | Some w -> Format.fprintf ppf "@,commit-witness=%a" pp_path w)
    t.commit_witness
    (fun ppf -> function
      | None -> ()
      | Some w -> Format.fprintf ppf "@,deadlock-witness=%a" pp_path w)
    t.deadlock_witness
    (fun ppf -> function
      | [] -> ()
      | vs ->
          Format.fprintf ppf "@,%d violation(s):@,%a" (List.length vs)
            (Format.pp_print_list pp_violation)
            vs)
    t.violations
