type violation_kind =
  | Conflicting_commits
  | Commit_log_exception
  | Lock_regression
  | Wal_divergence
  | Double_vote

type violation = {
  kind : violation_kind;
  detail : string;
  path : int list;
}

type stats = {
  states_visited : int;
  states_matched : int;
  states_reexpanded : int;
  transitions : int;
  branches : int;
  sleep_skips : int;
  leaves : int;
  max_depth_seen : int;
  exhausted : bool;
}

type t = {
  stats : stats;
  violations : violation list;
  max_committed : int;
  commit_witness : int list option;
  leaves_without_commit : int;
  deadlocks : int;
  deadlock_witness : int list option;
  livelocks : int;
  livelock_witness : int list option;
}

let kind_name = function
  | Conflicting_commits -> "conflicting-commits"
  | Commit_log_exception -> "commit-log-exception"
  | Lock_regression -> "lock-regression"
  | Wal_divergence -> "wal-divergence"
  | Double_vote -> "double-vote"

let digest_prune_ratio s =
  if s.transitions = 0 then 0.
  else float_of_int s.states_matched /. float_of_int s.transitions

let sleep_prune_ratio s =
  let offered = s.branches + s.sleep_skips in
  if offered = 0 then 0. else float_of_int s.sleep_skips /. float_of_int offered

let pp_path ppf path =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ';')
       Format.pp_print_int)
    path

let pp_violation ppf v =
  Format.fprintf ppf "%s at %a: %s" (kind_name v.kind) pp_path v.path v.detail

let pp ppf t =
  Format.fprintf ppf
    "@[<v>states=%d matched=%d reexpanded=%d transitions=%d branches=%d \
     sleep-skips=%d leaves=%d depth<=%d exhausted=%b@,\
     max-committed=%d leaves-without-commit=%d deadlocks=%d livelocks=%d%a%a%a%a@]"
    t.stats.states_visited t.stats.states_matched t.stats.states_reexpanded
    t.stats.transitions t.stats.branches t.stats.sleep_skips t.stats.leaves
    t.stats.max_depth_seen t.stats.exhausted t.max_committed
    t.leaves_without_commit t.deadlocks t.livelocks
    (fun ppf -> function
      | None -> ()
      | Some w -> Format.fprintf ppf "@,commit-witness=%a" pp_path w)
    t.commit_witness
    (fun ppf -> function
      | None -> ()
      | Some w -> Format.fprintf ppf "@,deadlock-witness=%a" pp_path w)
    t.deadlock_witness
    (fun ppf -> function
      | None -> ()
      | Some w -> Format.fprintf ppf "@,livelock-witness=%a" pp_path w)
    t.livelock_witness
    (fun ppf -> function
      | [] -> ()
      | vs ->
          Format.fprintf ppf "@,%d violation(s):@,%a" (List.length vs)
            (Format.pp_print_list pp_violation)
            vs)
    t.violations

(* {2 Swarm mode} *)

type endpoint =
  | Ep_violation
  | Ep_livelock
  | Ep_no_action
  | Ep_view_bound
  | Ep_depth
  | Ep_sleep_blocked

let endpoint_name = function
  | Ep_violation -> "violation"
  | Ep_livelock -> "livelock"
  | Ep_no_action -> "no-action"
  | Ep_view_bound -> "view-bound"
  | Ep_depth -> "depth-cap"
  | Ep_sleep_blocked -> "sleep-blocked"

type swarm = {
  sw_walks : int;
  sw_steps : int;
  sw_distinct : int;
  sw_endpoints : (endpoint * int) list;
  sw_max_committed : int;
  sw_commitless : int;
  sw_max_tail : int;
  sw_violations : violation list;
  sw_livelock_witness : int list option;
  sw_fingerprint : int64;
}

let coverage sw =
  if sw.sw_walks = 0 then 0.
  else float_of_int sw.sw_distinct /. float_of_int sw.sw_walks

let pp_swarm ppf sw =
  Format.fprintf ppf
    "@[<v>walks=%d steps=%d distinct-digests=%d coverage=%.1f \
     max-committed=%d commitless=%d max-commit-free-tail=%d \
     fingerprint=%Lx@,endpoints: %a%a%a@]"
    sw.sw_walks sw.sw_steps sw.sw_distinct (coverage sw) sw.sw_max_committed
    sw.sw_commitless sw.sw_max_tail sw.sw_fingerprint
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (ep, k) ->
         Format.fprintf ppf "%s=%d" (endpoint_name ep) k))
    sw.sw_endpoints
    (fun ppf -> function
      | None -> ()
      | Some w -> Format.fprintf ppf "@,livelock-witness=%a" pp_path w)
    sw.sw_livelock_witness
    (fun ppf -> function
      | [] -> ()
      | vs ->
          Format.fprintf ppf "@,%d violation(s):@,%a" (List.length vs)
            (Format.pp_print_list pp_violation)
            vs)
    sw.sw_violations

(* {2 Coverage-guided schedule search} *)

type counterexample =
  | Cx_livelock of int list
  | Cx_violation of violation

type search = {
  se_rounds : int;
  se_evals : int;
  se_distinct : int;
  se_best : (string * float) list;
  se_counterexample : (string * counterexample) option;
}

let pp_counterexample ppf = function
  | Cx_livelock path -> Format.fprintf ppf "livelock at %a" pp_path path
  | Cx_violation v -> pp_violation ppf v

let pp_search ppf se =
  Format.fprintf ppf
    "@[<v>rounds=%d evals=%d distinct-digests=%d%a%a@]" se.se_rounds
    se.se_evals se.se_distinct
    (fun ppf -> function
      | None -> ()
      | Some (sched, cx) ->
          Format.fprintf ppf "@,counterexample schedule %S@,%a" sched
            pp_counterexample cx)
    se.se_counterexample
    (fun ppf -> function
      | [] -> ()
      | best ->
          Format.fprintf ppf "@,top schedules:@,%a"
            (Format.pp_print_list (fun ppf (s, fit) ->
                 Format.fprintf ppf "  %8.1f  %s"
                   fit (if s = "" then "(empty)" else s)))
            best)
    se.se_best
