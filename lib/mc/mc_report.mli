(** Model-checking results: violations with their reproducing paths,
    exploration statistics and liveness accounting.  Protocol-agnostic —
    shared by every {!Checker.Make} instantiation. *)

type violation_kind =
  | Conflicting_commits
      (** two nodes committed different blocks at one height *)
  | Commit_log_exception
      (** a node's own {!Bft_chain.Commit_log} raised [Safety_violation] *)
  | Lock_regression  (** a lock ranked down within one incarnation *)
  | Wal_divergence  (** in-memory safety slots disagree with the WAL *)
  | Double_vote
      (** an honest node signed two distinct votes for one [(view, slot)] *)

type violation = {
  kind : violation_kind;
  detail : string;
  path : int list;
      (** replayable: indices into the canonical enabled-action list at
          each step from the initial state ({!Checker.Make.replay}) *)
}

type stats = {
  states_visited : int;  (** distinct state digests *)
  states_matched : int;  (** frontier entries pruned by a revisited digest *)
  transitions : int;  (** executed frontier expansions *)
  sleep_skips : int;  (** enabled actions skipped by sleep sets *)
  leaves : int;
  max_depth_seen : int;
  exhausted : bool;
      (** false iff some path was truncated by [max_depth] with actions
          still enabled — the bound, not the world, ended exploration *)
}

type t = {
  stats : stats;
  violations : violation list;
  max_committed : int;  (** most commits observed in any explored world *)
  commit_witness : int list option;
      (** first path (in BFS order) whose world commits — a liveness
          witness within the view budget *)
  leaves_without_commit : int;  (** leaves whose world never committed *)
  deadlocks : int;
      (** commit-free leaves at which {e no} action was enabled — genuine
          stuck worlds, not bound artifacts.  Timer-budget exhaustion can
          contribute; raise [timer_budget] to discriminate. *)
  deadlock_witness : int list option;  (** first deadlock path (BFS order) *)
}

(** Fraction of potential work avoided: (matched + sleep skips) over
    (transitions + matched + sleep skips). *)
val pruning_ratio : stats -> float

val kind_name : violation_kind -> string
val pp_path : Format.formatter -> int list -> unit
val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit
