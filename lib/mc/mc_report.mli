(** Model-checking results: violations with their reproducing paths,
    exploration statistics and liveness accounting.  Protocol-agnostic —
    shared by every {!Checker.Make} instantiation and by the swarm and
    schedule-search exploration modes. *)

type violation_kind =
  | Conflicting_commits
      (** two nodes committed different blocks at one height *)
  | Commit_log_exception
      (** a node's own {!Bft_chain.Commit_log} raised [Safety_violation] *)
  | Lock_regression  (** a lock ranked down within one incarnation *)
  | Wal_divergence  (** in-memory safety slots disagree with the WAL *)
  | Double_vote
      (** an honest node signed two distinct votes for one [(view, slot)] *)

type violation = {
  kind : violation_kind;
  detail : string;
  path : int list;
      (** replayable: indices into the canonical enabled-action list at
          each step from the initial state ({!Checker.Make.replay}) *)
}

type stats = {
  states_visited : int;  (** distinct (canonical) state digests *)
  states_matched : int;  (** probes pruned by a revisited digest *)
  states_reexpanded : int;
      (** revisits that carried a strictly smaller sleep set and were
          re-expanded (sound completion of the sleep-set prune) *)
  transitions : int;  (** probes executed; [= visited + matched + reexpanded] *)
  branches : int;
      (** child paths actually enqueued; [transitions = branches + 1] once
          exploration drains (every enqueued child is probed exactly once) *)
  sleep_skips : int;  (** enabled actions skipped by sleep sets *)
  leaves : int;
  max_depth_seen : int;
  exhausted : bool;
      (** false iff some path was truncated by [max_depth] — or the whole
          run by a [stop] deadline — with actions still enabled *)
}

type t = {
  stats : stats;
  violations : violation list;
  max_committed : int;  (** most commits observed in any explored world *)
  commit_witness : int list option;
      (** first path (in BFS order) whose world commits — a liveness
          witness within the view budget *)
  leaves_without_commit : int;  (** leaves whose world never committed *)
  deadlocks : int;
      (** commit-free leaves at which {e no} action was enabled.  Timer
          budget exhaustion can contribute; see [livelocks] for the
          budget-independent subset. *)
  deadlock_witness : int list option;  (** first deadlock path (BFS order) *)
  livelocks : int;
      (** deadlocks certified as genuine: the fault schedule is fully
          applied, no partition is open, every node is live, and granting
          one extra timer round returns the state to itself (a fixpoint —
          rebroadcasting forever cannot make progress).  A nonzero count
          is a real liveness bug, not a bound artifact. *)
  livelock_witness : int list option;
}

(** Fraction of probed states pruned by digest matching:
    [states_matched / transitions]. *)
val digest_prune_ratio : stats -> float

(** Fraction of offered branches skipped by sleep sets:
    [sleep_skips / (branches + sleep_skips)]. *)
val sleep_prune_ratio : stats -> float

val kind_name : violation_kind -> string
val pp_path : Format.formatter -> int list -> unit
val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> t -> unit

(** {2 Swarm mode} *)

type endpoint =
  | Ep_violation  (** walk stopped at its first invariant violation *)
  | Ep_livelock  (** commit-free stuck state with a fixpoint certificate *)
  | Ep_no_action  (** no enabled action (budget exhaustion or normal end) *)
  | Ep_view_bound
  | Ep_depth
  | Ep_sleep_blocked
      (** every enabled action was asleep — the sampled branch of the
          reduced tree is empty here, exactly as exhaustive DPOR would
          skip it *)

val endpoint_name : endpoint -> string

type swarm = {
  sw_walks : int;
  sw_steps : int;  (** actions executed across all walks *)
  sw_distinct : int;  (** distinct canonical digests across all walks *)
  sw_endpoints : (endpoint * int) list;  (** all six, fixed order *)
  sw_max_committed : int;
  sw_commitless : int;  (** walks that never committed *)
  sw_max_tail : int;  (** longest commit-free step tail at a walk's end *)
  sw_violations : violation list;  (** first violation per violating walk *)
  sw_livelock_witness : int list option;
  sw_fingerprint : int64;
      (** order-sensitive digest of every walk's (endpoint, path, final
          state): two reports are the same exploration iff fingerprints
          match — the determinism tests compare these across job counts *)
}

(** Estimated coverage: distinct canonical digests per walk. *)
val coverage : swarm -> float

val pp_swarm : Format.formatter -> swarm -> unit

(** {2 Coverage-guided schedule search} *)

type counterexample =
  | Cx_livelock of int list  (** certified commit-free fixpoint; the path *)
  | Cx_violation of violation

type search = {
  se_rounds : int;  (** mutation rounds completed *)
  se_evals : int;  (** schedules evaluated (swarm runs) *)
  se_distinct : int;  (** distinct canonical digests across all evals *)
  se_best : (string * float) list;
      (** final population: (schedule text, fitness), best first *)
  se_counterexample : (string * counterexample) option;
      (** the found bug: fault-schedule text
          ({!Bft_faults.Fault_schedule.of_string} round-trips it) and the
          walk that exhibits it under that schedule *)
}

val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_search : Format.formatter -> search -> unit
