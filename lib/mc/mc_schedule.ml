type step =
  | Crash of int
  | Recover of int
  | Partition_on of int list list
  | Partition_off

let pp_step ppf = function
  | Crash n -> Format.fprintf ppf "crash(%d)" n
  | Recover n -> Format.fprintf ppf "recover(%d)" n
  | Partition_on groups ->
      Format.fprintf ppf "partition(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '/')
           (fun ppf g ->
             Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
               Format.pp_print_int ppf g))
        groups
  | Partition_off -> Format.fprintf ppf "heal"

let compile ~n (sched : Bft_faults.Fault_schedule.t) =
  let module Fs = Bft_faults.Fault_schedule in
  (* Explode each event into its timed edges, then linearize by time.  The
     sort is stable, so same-time edges keep schedule order. *)
  let edges = ref [] in
  let ok = ref (Ok ()) in
  List.iter
    (fun ev ->
      match ev with
      | Fs.Crash { node; at } -> edges := (at, Crash node) :: !edges
      | Fs.Recover { node; at } -> edges := (at, Recover node) :: !edges
      | Fs.Partition { groups; from_; until } ->
          edges := (until, Partition_off) :: (from_, Partition_on groups) :: !edges
      | Fs.Link_loss _ ->
          ok := Error "link loss is probabilistic; not expressible as untimed steps"
      | Fs.Delay_spike _ ->
          ok := Error "delay spikes reorder by time; not expressible as untimed steps")
    (Fs.sorted sched);
  match !ok with
  | Error _ as e -> e
  | Ok () ->
      let steps =
        List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) (List.rev !edges)
        |> List.map snd
      in
      (* Sanity: nodes in range, partitions well-nested (one open at a time —
         the checker keeps a single active partition). *)
      let bad_node i = i < 0 || i >= n in
      let rec scan open_part = function
        | [] -> Ok steps
        | Crash i :: _ when bad_node i -> Error (Printf.sprintf "crash of node %d out of range" i)
        | Recover i :: _ when bad_node i -> Error (Printf.sprintf "recover of node %d out of range" i)
        | Partition_on groups :: rest ->
            if open_part then Error "overlapping partitions are not supported"
            else if List.exists (List.exists bad_node) groups then
              Error "partition group mentions a node out of range"
            else scan true rest
        | Partition_off :: rest ->
            if open_part then scan false rest
            else Error "partition heal without an open partition"
        | (Crash _ | Recover _) :: rest -> scan open_part rest
      in
      scan false steps
