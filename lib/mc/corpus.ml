(* Shared state of a coverage-guided search: the global set of canonical
   digests any evaluation has ever reached (novelty is always measured
   against everything seen, so a schedule the judge already rejected cannot
   look fresh again next round), and a bounded population of the
   fittest candidates.  Everything is deterministic: ties in fitness keep
   insertion order, so identical seeds replay identical searches. *)

type 'a entry = {
  en_candidate : 'a;
  en_fitness : float;
  en_order : int;  (* insertion sequence, the deterministic tie-break *)
}

type 'a t = {
  seen : (int64, unit) Hashtbl.t;
  mutable pop : 'a entry list;  (* best first, at most [cap] *)
  mutable next_order : int;
  cap : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Corpus.create: cap < 1";
  { seen = Hashtbl.create 4096; pop = []; next_order = 0; cap }

let note t digests =
  List.fold_left
    (fun fresh d ->
      if Hashtbl.mem t.seen d then fresh
      else begin
        Hashtbl.add t.seen d ();
        fresh + 1
      end)
    0 digests

let distinct t = Hashtbl.length t.seen

let add t candidate fitness =
  let e = { en_candidate = candidate; en_fitness = fitness; en_order = t.next_order } in
  t.next_order <- t.next_order + 1;
  let better a b =
    match Float.compare b.en_fitness a.en_fitness with
    | 0 -> compare a.en_order b.en_order
    | c -> c
  in
  let rec insert = function
    | [] -> [ e ]
    | x :: rest -> if better e x < 0 then e :: x :: rest else x :: insert rest
  in
  let pop = insert t.pop in
  t.pop <- List.filteri (fun i _ -> i < t.cap) pop

let population t = List.map (fun e -> (e.en_candidate, e.en_fitness)) t.pop
