(** Generic coverage-guided mutation search.  {!Checker.Make.schedule_search}
    instantiates it over fault schedules; the loop itself only sees opaque
    candidates, a seeded mutator and an evaluator.

    Each round breeds [mutants] candidates from the current population
    (uniform parent choice via the seeded RNG), evaluates them
    sequentially, scores them by novelty (canonical digests nothing else
    reached) plus weighted liveness near-misses, and keeps the [population]
    fittest.  The first counterexample stops the search.  Identical seeds
    and inputs replay identical searches. *)

(** Near-miss weight in the fitness sum (one commit-free walk counts as
    this many fresh digests). *)
val near_weight : float

type outcome = {
  o_digests : int64 list;
  o_near_misses : int;
  o_counterexample : Mc_report.counterexample option;
}

type 'a result = {
  x_rounds : int;  (** mutation rounds completed *)
  x_evals : int;
  x_distinct : int;
  x_best : ('a * float) list;  (** final population, best first *)
  x_counterexample : ('a * Mc_report.counterexample) option;
}

val search :
  seed:int ->
  rounds:int ->
  population:int ->
  mutants:int ->
  init:'a list ->
  mutate:(Bft_sim.Rng.t -> 'a -> 'a) ->
  eval:('a -> outcome) ->
  'a result
