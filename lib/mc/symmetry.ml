open Bft_types

(* Validator-symmetry reduction over the checker's structured state vector.

   Round-robin fixes the leader of every view, so the only interchangeable
   validators are the ones that never lead within the explored horizon:
   with [view_bound] views, nodes [0 .. view_bound - 1] each lead some
   explored view and node [view_bound] leads only view [view_bound + 1] —
   whose sole leader-specific action is a proposal sent in the transition
   that makes the state a view-bound leaf, never delivered within the
   horizon.  Everything at index [view_bound] and above is therefore
   role-symmetric, minus nodes the configuration itself distinguishes
   (equivocators, fault-schedule victims, partition-group members).

   Canonicalization permutes the *slots* of the vector (which node holds
   which opaque state hash, which (dst, src) channel holds which content
   sequence); it does not rewrite node ids baked inside the opaque hashes.
   Soundness does not need it to: two worlds whose vectors are related by a
   movable permutation assign byte-identical protocol states to
   role-equivalent nodes, and within the horizon a movable node's behavior
   depends on its id only through routing — which the slot permutation maps
   exactly. *)

type vec = {
  sv_n : int;
  sv_nodes : (int64 * int64) array;  (** per node: (state hash, WAL hash) *)
  sv_chans : int64 array;  (** [dst * n + src]: in-flight content-sequence digest *)
  sv_arrivals : int list array;  (** per dst: source ids, oldest arrival first *)
  sv_timers : int array;  (** per owner: live unfired timers *)
  sv_fired : int array;  (** per node: timer firings this fault era *)
  sv_fault_idx : int;
}

let digest v =
  let fields = ref [] in
  let push x = fields := x :: !fields in
  Array.iter
    (fun (s, w) ->
      push s;
      push w)
    v.sv_nodes;
  Array.iter push v.sv_chans;
  Array.iter
    (fun srcs ->
      push (Hash.to_int64 (Hash.of_fields (List.map Int64.of_int srcs))))
    v.sv_arrivals;
  Array.iter (fun c -> push (Int64.of_int c)) v.sv_timers;
  push (Int64.of_int v.sv_fault_idx);
  Array.iter (fun c -> push (Int64.of_int c)) v.sv_fired;
  Hash.to_int64 (Hash.of_fields (List.rev !fields))

let apply p v =
  let n = v.sv_n in
  if Array.length p <> n then invalid_arg "Symmetry.apply: permutation size";
  let nodes = Array.make n (0L, 0L) in
  let chans = Array.make (n * n) 0L in
  let arrivals = Array.make n [] in
  let timers = Array.make n 0 in
  let fired = Array.make n 0 in
  for i = 0 to n - 1 do
    nodes.(p.(i)) <- v.sv_nodes.(i);
    arrivals.(p.(i)) <- List.map (fun s -> p.(s)) v.sv_arrivals.(i);
    timers.(p.(i)) <- v.sv_timers.(i);
    fired.(p.(i)) <- v.sv_fired.(i)
  done;
  for dst = 0 to n - 1 do
    for src = 0 to n - 1 do
      chans.((p.(dst) * n) + p.(src)) <- v.sv_chans.((dst * n) + src)
    done
  done;
  {
    v with
    sv_nodes = nodes;
    sv_chans = chans;
    sv_arrivals = arrivals;
    sv_timers = timers;
    sv_fired = fired;
  }

let movable ~n ~view_bound ~fixed =
  List.filter
    (fun i -> i >= view_bound && not (List.mem i fixed))
    (List.init n (fun i -> i))

(* All orderings of [l]; at most [|movable|!] of them, so callers keep the
   movable set small (the interesting worlds have 2-3 movable followers). *)
let rec orderings = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest) (orderings (List.filter (( <> ) x) l)))
        l

let group ~n movable =
  List.iter
    (fun i -> if i < 0 || i >= n then invalid_arg "Symmetry.group: node out of range")
    movable;
  if List.length movable <> List.length (List.sort_uniq compare movable) then
    invalid_arg "Symmetry.group: duplicate movable node";
  List.map
    (fun image ->
      let p = Array.init n (fun i -> i) in
      List.iteri (fun k src -> p.(List.nth movable k) <- src) image;
      p)
    (orderings movable)

let canonical grp v =
  match grp with
  | [] -> digest v
  | _ ->
      List.fold_left
        (fun acc p ->
          let d = digest (apply p v) in
          if Int64.unsigned_compare d acc < 0 then d else acc)
        Int64.minus_one grp
