(* Generic mutation loop for coverage-guided schedule search.  The caller
   supplies the candidate type (fault schedules, in practice), a seeded
   mutator and an evaluator (a swarm run under the candidate's compiled
   schedule); the loop keeps a corpus of the fittest candidates, breeds
   mutants from them, and stops at the first counterexample.

   Fitness = newly-seen canonical digests (novelty against everything any
   evaluation reached) + [near_weight] * liveness near-misses (commit-free
   walks under the candidate).  Novelty drives the search toward schedules
   that put the world into states no other schedule reached; near-misses
   pull it toward the stalls that precede a genuine livelock.

   Deterministic by construction: one RNG seeded by the caller drives
   parent choice and mutation, candidates are evaluated sequentially
   (each evaluation may itself fan out over domains), and corpus ties
   break by insertion order. *)

let near_weight = 48.

type outcome = {
  o_digests : int64 list;  (** canonical digests the evaluation reached *)
  o_near_misses : int;  (** liveness near-misses (commit-free walks) *)
  o_counterexample : Mc_report.counterexample option;
}

type 'a result = {
  x_rounds : int;
  x_evals : int;
  x_distinct : int;
  x_best : ('a * float) list;
  x_counterexample : ('a * Mc_report.counterexample) option;
}

let search ~seed ~rounds ~population ~mutants ~init ~mutate ~eval =
  let rng = Bft_sim.Rng.create seed in
  let corpus = Corpus.create ~cap:population in
  let evals = ref 0 in
  let cx = ref None in
  let rounds_run = ref 0 in
  let consider candidate =
    if !cx = None then begin
      incr evals;
      let o = eval candidate in
      let fresh = Corpus.note corpus o.o_digests in
      let fitness =
        float_of_int fresh +. (near_weight *. float_of_int o.o_near_misses)
      in
      Corpus.add corpus candidate fitness;
      match o.o_counterexample with
      | Some c -> cx := Some (candidate, c)
      | None -> ()
    end
  in
  List.iter consider init;
  (try
     for _ = 1 to rounds do
       if !cx <> None then raise Exit;
       let parents = Array.of_list (List.map fst (Corpus.population corpus)) in
       if Array.length parents = 0 then raise Exit;
       incr rounds_run;
       for _ = 1 to mutants do
         let parent = parents.(Bft_sim.Rng.int rng (Array.length parents)) in
         consider (mutate rng parent)
       done
     done
   with Exit -> ());
  {
    x_rounds = !rounds_run;
    x_evals = !evals;
    x_distinct = Corpus.distinct corpus;
    x_best = Corpus.population corpus;
    x_counterexample = !cx;
  }
