let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

type stats = {
  messages_sent : int;
  bytes_sent : int;
  bytes_heal : int;
  dropped : int array;
  connect_attempts : int;
  reconnects : int;
}

(* A frame waiting for its release time (enqueue time + pacing/spike
   delay).  Releases are monotone in enqueue order except across the end
   of a delay-spike window; waiting on the head frame (instead of
   reordering) keeps per-link FIFO, which is what a TCP stream would do
   anyway. *)
type item = { release : float; dst : int; frame : string }

type peer = {
  mutable fd : Unix.file_descr option;
  mutable next_try_ms : float;
  mutable backoff_ms : float;
  mutable ever_connected : bool;
}

type t = {
  id : int;
  ports : int array;
  hello : string;
  now_ms : unit -> float;
  plane : Fault_plane.t;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  queue : item Queue.t;
  qm : Mutex.t;
  qc : Condition.t;
  mutable quit : bool;
  mutable inflight : bool;
  peers : peer array;
  jitter : Bft_sim.Rng.t;
  (* Counters are plain mutable ints: the executor and the sender both
     touch [dropped], but a lost increment on a diagnostic counter is
     preferable to taking the queue lock around every socket write. *)
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable bytes_heal : int;
  dropped : int array;
  mutable connect_attempts : int;
  mutable reconnects : int;
  mutable thread : Thread.t option;
}

let dial t dst =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> None
  | fd -> (
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      try
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_loopback, t.ports.(dst)));
        Wire.write_all fd t.hello;
        Some fd
      with Unix.Unix_error _ ->
        close_quiet fd;
        None)

let write_item t { dst; frame; _ } =
  let now = t.now_ms () in
  let p = t.peers.(dst) in
  let fd_opt =
    match p.fd with
    | Some _ as s -> s
    | None ->
        if now < p.next_try_ms then None
        else begin
          t.connect_attempts <- t.connect_attempts + 1;
          match dial t dst with
          | Some fd ->
              if p.ever_connected then t.reconnects <- t.reconnects + 1;
              p.ever_connected <- true;
              p.backoff_ms <- t.backoff_base_ms;
              p.fd <- Some fd;
              Some fd
          | None ->
              (* Bounded exponential backoff with jitter: a dead peer
                 costs one failed [connect] per backoff period instead of
                 a blocking retry loop that starves every other link. *)
              let factor = 0.5 +. Bft_sim.Rng.float t.jitter 0.5 in
              p.next_try_ms <- now +. (p.backoff_ms *. factor);
              p.backoff_ms <-
                Float.min t.backoff_cap_ms (p.backoff_ms *. 2.);
              None
        end
  in
  match fd_opt with
  | None -> t.dropped.(dst) <- t.dropped.(dst) + 1
  | Some fd -> (
      try
        Wire.write_all fd frame;
        t.messages_sent <- t.messages_sent + 1;
        t.bytes_sent <- t.bytes_sent + String.length frame;
        if Fault_plane.in_heal_window t.plane ~now_ms:now then
          t.bytes_heal <- t.bytes_heal + String.length frame
      with Unix.Unix_error _ ->
        (* Peer went away mid-stream (crashed validator): tear the
           connection down and allow an immediate redial for the next
           frame; backoff only builds up across failed dials. *)
        close_quiet fd;
        p.fd <- None;
        p.next_try_ms <- now;
        p.backoff_ms <- t.backoff_base_ms;
        t.dropped.(dst) <- t.dropped.(dst) + 1)

let rec sender_loop t =
  Mutex.lock t.qm;
  while Queue.is_empty t.queue && not t.quit do
    Condition.wait t.qc t.qm
  done;
  if t.quit then begin
    (* Terminal: anything still queued is best-effort traffic to peers
       that are shutting down too. *)
    Queue.clear t.queue;
    Mutex.unlock t.qm;
    Array.iter
      (fun p ->
        Option.iter close_quiet p.fd;
        p.fd <- None)
      t.peers
  end
  else begin
    let head = Queue.peek t.queue in
    let now = t.now_ms () in
    if head.release > now +. 0.01 then begin
      Mutex.unlock t.qm;
      (* OCaml's [Condition] has no timed wait; poll in short slices so
         both release times and [quit] are honoured promptly. *)
      Thread.delay (Float.min ((head.release -. now) /. 1000.) 0.02);
      sender_loop t
    end
    else begin
      let item = Queue.pop t.queue in
      t.inflight <- true;
      Mutex.unlock t.qm;
      write_item t item;
      Mutex.lock t.qm;
      t.inflight <- false;
      Mutex.unlock t.qm;
      sender_loop t
    end
  end

let create ?(backoff_base_ms = 10.) ?(backoff_cap_ms = 500.) ~n ~id ~ports
    ~hello ~now_ms ~plane () =
  let t =
    {
      id;
      ports;
      hello;
      now_ms;
      plane;
      backoff_base_ms;
      backoff_cap_ms;
      queue = Queue.create ();
      qm = Mutex.create ();
      qc = Condition.create ();
      quit = false;
      inflight = false;
      peers =
        Array.init n (fun _ ->
            {
              fd = None;
              next_try_ms = 0.;
              backoff_ms = backoff_base_ms;
              ever_connected = false;
            });
      jitter = Bft_sim.Rng.create ((id * 2654435761) lxor 0x5ca1ab1e);
      messages_sent = 0;
      bytes_sent = 0;
      bytes_heal = 0;
      dropped = Array.make n 0;
      connect_attempts = 0;
      reconnects = 0;
      thread = None;
    }
  in
  t.thread <- Some (Thread.create sender_loop t);
  t

let send t ~dst ~src_view frame =
  let now = t.now_ms () in
  match
    Fault_plane.verdict t.plane ~src:t.id ~dst ~now_ms:now ~src_view
  with
  | `Drop -> t.dropped.(dst) <- t.dropped.(dst) + 1
  | `Pass ->
      let release = now +. Fault_plane.delay_ms t.plane ~now_ms:now in
      Mutex.lock t.qm;
      if not t.quit then begin
        Queue.push { release; dst; frame } t.queue;
        Condition.signal t.qc
      end;
      Mutex.unlock t.qm

let flush t ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    Mutex.lock t.qm;
    let drained = Queue.is_empty t.queue && not t.inflight in
    Mutex.unlock t.qm;
    if drained then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.002;
      wait ()
    end
  in
  wait ()

let stats t =
  {
    messages_sent = t.messages_sent;
    bytes_sent = t.bytes_sent;
    bytes_heal = t.bytes_heal;
    dropped = Array.copy t.dropped;
    connect_attempts = t.connect_attempts;
    reconnects = t.reconnects;
  }

let shutdown t =
  Mutex.lock t.qm;
  t.quit <- true;
  Condition.signal t.qc;
  Mutex.unlock t.qm;
  (match t.thread with
  | Some th -> ( try Thread.join th with _ -> ())
  | None -> ());
  t.thread <- None

let force_close t =
  Mutex.lock t.qm;
  t.quit <- true;
  Condition.signal t.qc;
  Mutex.unlock t.qm;
  Array.iter (fun p -> Option.iter close_quiet p.fd) t.peers
