let version = 0x01
let max_frame_len = 16 * 1024 * 1024
let max_list_len = 65536

type error =
  | Truncated
  | Bad_version of int
  | Bad_tag of int
  | Trailing of int
  | Frame_too_large of int
  | Invalid of string

let error_to_string = function
  | Truncated -> "truncated input"
  | Bad_version v -> Printf.sprintf "bad version byte 0x%02x" v
  | Bad_tag t -> Printf.sprintf "unknown message tag 0x%02x" t
  | Trailing n -> Printf.sprintf "%d trailing bytes after message" n
  | Frame_too_large n -> Printf.sprintf "frame length %d exceeds limit" n
  | Invalid reason -> reason

exception Decode of error

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 128

  let u8 t v =
    if v < 0 || v > 0xff then invalid_arg "Wire.W.u8: out of range";
    Buffer.add_char t (Char.chr v)

  let u64 t v =
    for i = 7 downto 0 do
      Buffer.add_char t
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done

  let f64 t v = u64 t (Int64.bits_of_float v)

  let uvar t v =
    if v < 0 then invalid_arg "Wire.W.uvar: negative";
    let rec go v =
      if v < 0x80 then Buffer.add_char t (Char.chr v)
      else begin
        Buffer.add_char t (Char.chr (0x80 lor (v land 0x7f)));
        go (v lsr 7)
      end
    in
    go v

  (* Zigzag: 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...  The shift in the
     mapping needs one spare bit, so magnitudes at the very top of the
     int range are refused rather than silently wrapped. *)
  let svar t v =
    if v asr 61 <> 0 && v asr 61 <> -1 then
      invalid_arg "Wire.W.svar: out of range";
    uvar t ((v lsl 1) lxor (v asr (Sys.int_size - 1)))
  let bool t v = u8 t (if v then 1 else 0)

  let bytes t s =
    uvar t (String.length s);
    Buffer.add_string t s

  let option t enc = function
    | None -> u8 t 0
    | Some v ->
        u8 t 1;
        enc t v

  let list t enc vs =
    uvar t (List.length vs);
    List.iter (enc t) vs

  let padding t n =
    if n < 0 then invalid_arg "Wire.W.padding: negative";
    for _ = 1 to n do
      Buffer.add_char t '\x00'
    done

  let contents = Buffer.contents
  let length = Buffer.length
end

module R = struct
  type t = { input : string; mutable pos : int }

  let of_string input = { input; pos = 0 }
  let fail reason = raise (Decode (Invalid reason))

  let need t n =
    if t.pos + n > String.length t.input then raise (Decode Truncated)

  let u8 t =
    need t 1;
    let v = Char.code t.input.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u64 t =
    need t 8;
    let v = ref 0L in
    for _ = 1 to 8 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Char.code t.input.[t.pos]));
      t.pos <- t.pos + 1
    done;
    !v

  let f64 t = Int64.float_of_bits (u64 t)

  let uvar t =
    let rec go acc shift =
      if shift >= 63 then fail "varint too long"
      else
        let b = u8 t in
        let low = b land 0x7f in
        if shift > 0 && (low lsl shift) lsr shift <> low then
          fail "varint overflow"
        else
          let acc = acc lor (low lsl shift) in
          if b land 0x80 = 0 then acc else go acc (shift + 7)
    in
    let v = go 0 0 in
    if v < 0 then fail "varint overflow" else v

  let svar t =
    let v = uvar t in
    (v lsr 1) lxor (- (v land 1))

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | b -> fail (Printf.sprintf "bad bool byte 0x%02x" b)

  let bytes t =
    let n = uvar t in
    need t n;
    let s = String.sub t.input t.pos n in
    t.pos <- t.pos + n;
    s

  let option t dec = match u8 t with
    | 0 -> None
    | 1 -> Some (dec t)
    | b -> fail (Printf.sprintf "bad option marker 0x%02x" b)

  let list t dec =
    let n = uvar t in
    if n > max_list_len then fail (Printf.sprintf "list of %d elements" n);
    List.init n (fun _ -> dec t)

  let padding t n =
    need t n;
    t.pos <- t.pos + n

  let remaining t = String.length t.input - t.pos

  let expect_end t =
    let left = remaining t in
    if left > 0 then raise (Decode (Trailing left))
end

let bad_tag t = raise (Decode (Bad_tag t))

let encode_body ~tag enc =
  let w = W.create () in
  W.u8 w version;
  W.u8 w tag;
  enc w;
  W.contents w

let frame body =
  let n = String.length body in
  if n < 2 || n > max_frame_len then invalid_arg "Wire.frame: bad body length";
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string body 0 b 4 n;
  Bytes.unsafe_to_string b

let run_decoder f =
  match f () with
  | v -> Ok v
  | exception Decode e -> Error e
  | exception Invalid_argument reason -> Error (Invalid reason)

let decode_body body f =
  run_decoder (fun () ->
      let r = R.of_string body in
      let v = R.u8 r in
      if v <> version then raise (Decode (Bad_version v));
      let tag = R.u8 r in
      let msg = f tag r in
      R.expect_end r;
      msg)

let write_all fd s =
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring fd s !pos (n - !pos)
  done

(* [read_exact fd buf] fills [buf], returning false on EOF before the
   first byte and raising on mid-buffer EOF (the caller distinguishes a
   clean close from a torn frame). *)
let read_exact fd buf ~mid_frame =
  let n = Bytes.length buf in
  let pos = ref 0 in
  let eof = ref false in
  while !pos < n && not !eof do
    let k = Unix.read fd buf !pos (n - !pos) in
    if k = 0 then
      if !pos = 0 && not mid_frame then eof := true
      else raise (Decode Truncated)
    else pos := !pos + k
  done;
  not !eof

let read_frame fd =
  let header = Bytes.create 4 in
  match read_exact fd header ~mid_frame:false with
  | exception Decode e -> Error (`Frame_error e)
  | false -> Error `Closed
  | true -> (
      let len =
        (Char.code (Bytes.get header 0) lsl 24)
        lor (Char.code (Bytes.get header 1) lsl 16)
        lor (Char.code (Bytes.get header 2) lsl 8)
        lor Char.code (Bytes.get header 3)
      in
      if len < 2 || len > max_frame_len then
        Error (`Frame_error (Frame_too_large len))
      else
        let body = Bytes.create len in
        match read_exact fd body ~mid_frame:true with
        | true -> Ok (Bytes.unsafe_to_string body)
        | false -> Error (`Frame_error Truncated)
        | exception Decode e -> Error (`Frame_error e))
