open Bft_types
module W = Wire.W
module R = Wire.R

let log_src = Logs.Src.create "moonshot.net" ~doc:"TCP transport backend"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Threads | Processes

type config = {
  n : int;
  delta_ms : float;
  payload_bytes : int;
  target_blocks : int;
  timeout_ms : float;
  mode : mode;
  base_port : int option;
  leader_of : int -> int;
  trace : bool;
  protocol_name : string;
}

let default ~n ~target_blocks =
  {
    n;
    delta_ms = 1000.;
    payload_bytes = 0;
    target_blocks;
    timeout_ms = 60_000.;
    mode = Threads;
    base_port = None;
    leader_of = (fun view -> view mod n);
    trace = false;
    protocol_name = "";
  }

type commit = {
  c_height : int;
  c_view : int;
  c_hash : int64;
  c_time_ms : float;
}

type proposal = { p_height : int; p_hash : int64; p_time_ms : float }

type node_result = {
  id : int;
  commits : commit list;
  proposals : proposal list;
  trace_lines : string list;
  decode_errors : int;
  messages_sent : int;
  bytes_sent : int;
}

type result = {
  nodes : node_result array;
  wall_ms : float;
  reached_target : bool;
}

let empty_node_result id =
  {
    id;
    commits = [];
    proposals = [];
    trace_lines = [];
    decode_errors = 0;
    messages_sent = 0;
    bytes_sent = 0;
  }

(* --- transport-level hello frame (tag 0x00) ------------------------------- *)

let hello_tag = 0x00

let encode_hello ~id ~n ~protocol =
  Wire.encode_body ~tag:hello_tag (fun w ->
      W.uvar w id;
      W.uvar w n;
      W.bytes w protocol)

let decode_hello body =
  Wire.decode_body body (fun tag r ->
      if tag <> hello_tag then Wire.bad_tag tag;
      let id = R.uvar r in
      let n = R.uvar r in
      let protocol = R.bytes r in
      (id, n, protocol))

(* --- result blobs (process mode, child -> coordinator pipe) --------------- *)

let encode_node_result r =
  let w = W.create () in
  W.uvar w r.id;
  W.list w
    (fun w c ->
      W.uvar w c.c_height;
      W.uvar w c.c_view;
      W.u64 w c.c_hash;
      W.f64 w c.c_time_ms)
    r.commits;
  W.list w
    (fun w p ->
      W.uvar w p.p_height;
      W.u64 w p.p_hash;
      W.f64 w p.p_time_ms)
    r.proposals;
  W.uvar w r.decode_errors;
  W.uvar w r.messages_sent;
  W.uvar w r.bytes_sent;
  W.list w W.bytes r.trace_lines;
  W.contents w

let decode_node_result body =
  Wire.run_decoder (fun () ->
      let r = R.of_string body in
      let id = R.uvar r in
      let commits =
        R.list r (fun r ->
            let c_height = R.uvar r in
            let c_view = R.uvar r in
            let c_hash = R.u64 r in
            let c_time_ms = R.f64 r in
            { c_height; c_view; c_hash; c_time_ms })
      in
      let proposals =
        R.list r (fun r ->
            let p_height = R.uvar r in
            let p_hash = R.u64 r in
            let p_time_ms = R.f64 r in
            { p_height; p_hash; p_time_ms })
      in
      let decode_errors = R.uvar r in
      let messages_sent = R.uvar r in
      let bytes_sent = R.uvar r in
      let trace_lines = R.list r R.bytes in
      R.expect_end r;
      {
        id;
        commits;
        proposals;
        trace_lines;
        decode_errors;
        messages_sent;
        bytes_sent;
      })

(* --- one validator -------------------------------------------------------- *)

let now_ms t0 = (Unix.gettimeofday () -. t0) *. 1000.
let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* The executor polls the stop flag between select rounds; this caps how
   long shutdown waits on an idle cluster without costing anything on an
   active one (inbound traffic wakes select immediately). *)
let max_select_s = 0.02

let node_main (type m) (module P : Protocol_intf.S with type msg = m)
    (cfg : config) ~id ~t0 ~listener ~(ports : int array)
    ~(stop : bool Atomic.t) ~on_done ~(ctl_fd : Unix.file_descr option) :
    node_result =
  let commits = ref [] and ncommits = ref 0 and done_sent = ref false in
  let proposals = ref [] in
  let trace_lines = ref [] in
  let decode_errors = ref 0 in
  let messages_sent = ref 0 and bytes_sent = ref 0 in
  let emit kind =
    if cfg.trace then
      trace_lines :=
        Bft_obs.Trace.event_to_json
          { Bft_obs.Trace.time = now_ms t0; node = id; kind }
        :: !trace_lines
  in
  (* Sender thread: owns the outbound connections; the executor never
     blocks on a peer's full socket buffer, so two mutually loaded nodes
     cannot write-deadlock each other. *)
  let squeue : (int * string) Queue.t = Queue.create () in
  let quit = ref false in
  let qm = Mutex.create () and qc = Condition.create () in
  let push_send dst frame =
    Mutex.lock qm;
    Queue.push (dst, frame) squeue;
    Condition.signal qc;
    Mutex.unlock qm
  in
  let hello =
    Wire.frame (encode_hello ~id ~n:cfg.n ~protocol:cfg.protocol_name)
  in
  let sender () =
    let outs = Array.make cfg.n None in
    let connect dst =
      match outs.(dst) with
      | Some fd -> Some fd
      | None -> (
          try
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            let rec attempt tries =
              try
                Unix.connect fd
                  (Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(dst)))
              with
              | Unix.Unix_error
                  ((ECONNREFUSED | ECONNABORTED | EAGAIN), _, _)
                when tries > 0 && not !quit ->
                  Thread.delay 0.02;
                  attempt (tries - 1)
            in
            attempt 50;
            Wire.write_all fd hello;
            outs.(dst) <- Some fd;
            Some fd
          with Unix.Unix_error _ -> None)
    in
    let rec loop () =
      Mutex.lock qm;
      while Queue.is_empty squeue && not !quit do
        Condition.wait qc qm
      done;
      (* Quit is terminal: anything still queued is best-effort traffic
         to peers that are shutting down too — drop it rather than burn
         the connect-retry budget against closed listeners. *)
      let item = if !quit then None else Queue.take_opt squeue in
      Mutex.unlock qm;
      match item with
      | None ->
          Array.iter (Option.iter close_quiet) outs
      | Some (dst, frame) ->
          (match connect dst with
          | None -> ()
          | Some fd -> (
              try
                Wire.write_all fd frame;
                incr messages_sent;
                bytes_sent := !bytes_sent + String.length frame
              with Unix.Unix_error _ ->
                close_quiet fd;
                outs.(dst) <- None));
          loop ()
    in
    loop ()
  in
  let sender_t = Thread.create sender () in
  (* Wall-clock timers; touched only by the executor thread. *)
  let timers : (float * bool ref * (unit -> unit)) list ref = ref [] in
  let set_timer delay f =
    let cancelled = ref false in
    timers := (now_ms t0 +. delay, cancelled, f) :: !timers;
    fun () -> cancelled := true
  in
  let fire_due () =
    let now = now_ms t0 in
    let due, rest =
      List.partition (fun (d, c, _) -> (not !c) && d <= now) !timers
    in
    timers := List.filter (fun (_, c, _) -> not !c) rest;
    List.iter
      (fun (_, _, f) -> f ())
      (List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) due)
  in
  let next_deadline () =
    List.fold_left
      (fun acc (d, c, _) -> if !c then acc else Float.min acc d)
      infinity !timers
  in
  let selfq : m Queue.t = Queue.create () in
  let validators = Validator_set.make cfg.n in
  let env =
    {
      Env.id;
      validators;
      delta = cfg.delta_ms;
      now = (fun () -> now_ms t0);
      send =
        (fun dst msg ->
          if dst = id then Queue.push msg selfq
          else push_send dst (Wire.frame (P.encode_msg msg)));
      multicast =
        (fun msg ->
          let frame = Wire.frame (P.encode_msg msg) in
          for dst = 0 to cfg.n - 1 do
            if dst = id then Queue.push msg selfq else push_send dst frame
          done);
      set_timer;
      leader_of = cfg.leader_of;
      make_payload =
        (fun ~view -> Payload.make ~id:view ~size_bytes:cfg.payload_bytes);
      on_commit =
        (fun b ->
          commits :=
            {
              c_height = b.Block.height;
              c_view = b.Block.view;
              c_hash = Hash.to_int64 b.Block.hash;
              c_time_ms = now_ms t0;
            }
            :: !commits;
          incr ncommits;
          emit
            (Bft_obs.Trace.Committed
               { view = b.Block.view; height = b.Block.height });
          if !ncommits >= cfg.target_blocks && not !done_sent then begin
            done_sent := true;
            on_done ()
          end);
      on_propose =
        (fun b ->
          proposals :=
            {
              p_height = b.Block.height;
              p_hash = Hash.to_int64 b.Block.hash;
              p_time_ms = now_ms t0;
            }
            :: !proposals);
      probe =
        (if cfg.trace then
           Some (fun ev -> emit (Bft_obs.Trace.Node_event ev))
         else None);
    }
  in
  let conns : (Unix.file_descr * int) list ref = ref [] in
  let close_conn fd =
    conns := List.filter (fun (fd', _) -> fd' <> fd) !conns;
    close_quiet fd
  in
  (try
     let node = P.create env in
     let deliver ~src ~bytes msg =
       if cfg.trace then
         emit
           (Bft_obs.Trace.Delivered
              {
                src;
                cls = P.classify msg;
                view = P.view_of msg;
                bytes;
              });
       P.handle node ~src msg
     in
     let rec drain_self () =
       match Queue.take_opt selfq with
       | None -> ()
       | Some msg ->
           let bytes =
             if cfg.trace then String.length (P.encode_msg msg) + 4 else 0
           in
           deliver ~src:id ~bytes msg;
           drain_self ()
     in
     let accept_conn () =
       match Unix.accept listener with
       | exception Unix.Unix_error _ -> ()
       | fd, _ -> (
           (try Unix.setsockopt fd Unix.TCP_NODELAY true
            with Unix.Unix_error _ -> ());
           match Wire.read_frame fd with
           | Ok body -> (
               match decode_hello body with
               | Ok (src, n', proto)
                 when src >= 0 && src < cfg.n && src <> id && n' = cfg.n
                      && String.equal proto cfg.protocol_name ->
                   conns := (fd, src) :: !conns
               | Ok _ | Error _ -> close_quiet fd)
           | Error _ | (exception Unix.Unix_error _) -> close_quiet fd)
     in
     P.start node;
     drain_self ();
     let hard_deadline = cfg.timeout_ms +. 5000. in
     while not (Atomic.get stop) do
       fire_due ();
       drain_self ();
       if now_ms t0 > hard_deadline then Atomic.set stop true
       else begin
         let timeout =
           let d = (next_deadline () -. now_ms t0) /. 1000. in
           Float.max 0. (Float.min d max_select_s)
         in
         let fds =
           (listener :: (match ctl_fd with Some f -> [ f ] | None -> []))
           @ List.map fst !conns
         in
         match Unix.select fds [] [] timeout with
         | exception Unix.Unix_error (EINTR, _, _) -> ()
         | ready, _, _ ->
             List.iter
               (fun fd ->
                 if fd = listener then accept_conn ()
                 else if ctl_fd = Some fd then Atomic.set stop true
                 else
                   match List.assoc_opt fd !conns with
                   | None -> ()
                   | Some src -> (
                       match Wire.read_frame fd with
                       | Ok body -> (
                           match P.decode_msg body with
                           | Ok msg ->
                               deliver ~src
                                 ~bytes:(String.length body + 4)
                                 msg;
                               drain_self ()
                           | Error reason ->
                               incr decode_errors;
                               Log.debug (fun m ->
                                   m "node %d: dropped frame from %d: %s"
                                     id src reason))
                       | Error `Closed -> close_conn fd
                       | Error (`Frame_error e) ->
                           incr decode_errors;
                           Log.debug (fun m ->
                               m "node %d: framing error from %d: %s" id src
                                 (Wire.error_to_string e));
                           close_conn fd
                       | exception Unix.Unix_error _ -> close_conn fd))
               ready
       end
     done
   with exn ->
     Log.err (fun m ->
         m "node %d: executor died: %s" id (Printexc.to_string exn)));
  (* Shutdown: closing the inbound side first unblocks every peer sender
     that might be mid-write to us, then our own sender is reaped. *)
  List.iter (fun (fd, _) -> close_quiet fd) !conns;
  close_quiet listener;
  Mutex.lock qm;
  quit := true;
  Condition.signal qc;
  Mutex.unlock qm;
  Thread.join sender_t;
  {
    id;
    commits = List.rev !commits;
    proposals = List.rev !proposals;
    trace_lines = List.rev !trace_lines;
    decode_errors = !decode_errors;
    messages_sent = !messages_sent;
    bytes_sent = !bytes_sent;
  }

(* --- coordination --------------------------------------------------------- *)

let make_listener ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     close_quiet fd;
     raise e);
  Unix.listen fd 64;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, actual) -> (fd, actual)
  | _ -> assert false

let validate cfg =
  if cfg.n < 1 then invalid_arg "Tcp.run: n < 1";
  if cfg.target_blocks < 1 then invalid_arg "Tcp.run: target_blocks < 1";
  if cfg.timeout_ms <= 0. then invalid_arg "Tcp.run: non-positive timeout";
  match cfg.base_port with
  | Some p when p < 1 || p + cfg.n > 65536 ->
      invalid_arg "Tcp.run: port range out of bounds"
  | _ -> ()

let run_threads (type m) (module P : Protocol_intf.S with type msg = m) cfg
    ~listeners ~ports ~t0 =
  let stop = Atomic.make false in
  let done_count = Atomic.make 0 in
  let results = Array.map (fun _ -> None) listeners in
  let threads =
    Array.mapi
      (fun i (listener, _) ->
        Thread.create
          (fun () ->
            let r =
              node_main
                (module P : Protocol_intf.S with type msg = m)
                cfg ~id:i ~t0 ~listener ~ports ~stop ~ctl_fd:None
                ~on_done:(fun () -> Atomic.incr done_count)
            in
            results.(i) <- Some r)
          ())
      listeners
  in
  let deadline = t0 +. (cfg.timeout_ms /. 1000.) in
  while Atomic.get done_count < cfg.n && Unix.gettimeofday () < deadline do
    Thread.delay 0.002
  done;
  let reached = Atomic.get done_count >= cfg.n in
  Atomic.set stop true;
  Array.iter Thread.join threads;
  {
    nodes =
      Array.mapi
        (fun i -> function Some r -> r | None -> empty_node_result i)
        results;
    wall_ms = now_ms t0;
    reached_target = reached;
  }

let run_processes (type m) (module P : Protocol_intf.S with type msg = m) cfg
    ~(listeners : (Unix.file_descr * int) array) ~ports ~t0 =
  (* result pipe child -> parent; control pipe parent -> child *)
  let pipes =
    Array.map
      (fun _ ->
        let r, w = Unix.pipe () in
        let cr, cw = Unix.pipe () in
        (r, w, cr, cw))
      listeners
  in
  let pids =
    Array.mapi
      (fun i (listener, _) ->
        match Unix.fork () with
        | 0 ->
            Array.iteri
              (fun j (l, _) -> if j <> i then close_quiet l)
              listeners;
            Array.iteri
              (fun j (r, w, cr, cw) ->
                if j <> i then begin
                  close_quiet r;
                  close_quiet w;
                  close_quiet cr;
                  close_quiet cw
                end)
              pipes;
            let r, w, cr, cw = pipes.(i) in
            close_quiet r;
            close_quiet cw;
            let stop = Atomic.make false in
            let result =
              try
                node_main
                  (module P : Protocol_intf.S with type msg = m)
                  cfg ~id:i ~t0 ~listener ~ports ~stop ~ctl_fd:(Some cr)
                  ~on_done:(fun () ->
                    try ignore (Unix.write_substring w "D" 0 1)
                    with Unix.Unix_error _ -> ())
              with _ -> empty_node_result i
            in
            (try
               ignore (Unix.write_substring w "R" 0 1);
               Wire.write_all w (Wire.frame (encode_node_result result))
             with _ -> ());
            close_quiet w;
            Unix._exit 0
        | pid -> pid)
      listeners
  in
  Array.iter (fun (l, _) -> close_quiet l) listeners;
  Array.iter
    (fun (_, w, cr, _) ->
      close_quiet w;
      close_quiet cr)
    pipes;
  (* Phase 1: wait until every child reports its target reached ('D'), a
     child dies early (EOF / stray byte), or the deadline passes. *)
  let settled = Array.map (fun _ -> false) pipes in
  let target_met = Array.map (fun _ -> false) pipes in
  let early_byte = Array.map (fun _ -> None) pipes in
  let deadline = t0 +. (cfg.timeout_ms /. 1000.) in
  let fd_index fd =
    let found = ref (-1) in
    Array.iteri (fun i (r, _, _, _) -> if r = fd then found := i) pipes;
    !found
  in
  let pending () =
    Array.exists not settled && Unix.gettimeofday () < deadline
  in
  while pending () do
    let fds =
      Array.to_list
        (Array.mapi (fun i (r, _, _, _) -> (i, r)) pipes)
      |> List.filter_map (fun (i, r) -> if settled.(i) then None else Some r)
    in
    match Unix.select fds [] [] 0.05 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            let i = fd_index fd in
            let buf = Bytes.create 1 in
            match Unix.read fd buf 0 1 with
            | 0 -> settled.(i) <- true
            | _ ->
                settled.(i) <- true;
                if Bytes.get buf 0 = 'D' then target_met.(i) <- true
                else early_byte.(i) <- Some (Bytes.get buf 0)
            | exception Unix.Unix_error _ -> settled.(i) <- true)
          ready
  done;
  let reached = Array.for_all (fun b -> b) target_met in
  (* Phase 2: tell every child to stop, then collect result blobs. *)
  Array.iter
    (fun (_, _, _, cw) ->
      (try ignore (Unix.write_substring cw "S" 0 1)
       with Unix.Unix_error _ -> ());
      close_quiet cw)
    pipes;
  let read_result i =
    let r, _, _, _ = pipes.(i) in
    let blob_deadline = Unix.gettimeofday () +. 10. in
    let rec await_marker () =
      match early_byte.(i) with
      | Some 'R' ->
          early_byte.(i) <- None;
          true
      | Some _ ->
          early_byte.(i) <- None;
          false
      | None -> (
          match Unix.select [ r ] [] [] 0.1 with
          | exception Unix.Unix_error (EINTR, _, _) -> await_marker ()
          | [], _, _ ->
              if Unix.gettimeofday () < blob_deadline then await_marker ()
              else false
          | _ -> (
              let buf = Bytes.create 1 in
              match Unix.read r buf 0 1 with
              | 0 -> false
              | _ ->
                  if Bytes.get buf 0 = 'R' then true
                  else await_marker ()
              | exception Unix.Unix_error _ -> false))
    in
    let result =
      if not (await_marker ()) then empty_node_result i
      else
        match Wire.read_frame r with
        | Ok body -> (
            match decode_node_result body with
            | Ok nr -> nr
            | Error _ -> empty_node_result i)
        | Error _ | (exception Unix.Unix_error _) -> empty_node_result i
    in
    close_quiet r;
    result
  in
  let nodes = Array.init cfg.n read_result in
  Array.iteri
    (fun i pid ->
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid)
      | _ -> ()
      | exception Unix.Unix_error _ -> ignore i)
    pids;
  { nodes; wall_ms = now_ms t0; reached_target = reached }

let run (type m) (module P : Protocol_intf.S with type msg = m) cfg =
  validate cfg;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listeners =
    Array.init cfg.n (fun i ->
        make_listener
          ~port:(match cfg.base_port with None -> 0 | Some b -> b + i))
  in
  let ports = Array.map snd listeners in
  let t0 = Unix.gettimeofday () in
  match cfg.mode with
  | Threads ->
      run_threads
        (module P : Protocol_intf.S with type msg = m)
        cfg ~listeners ~ports ~t0
  | Processes ->
      run_processes
        (module P : Protocol_intf.S with type msg = m)
        cfg ~listeners ~ports ~t0

(* --- post-hoc aggregation -------------------------------------------------- *)

(* Commits of each block across nodes, with the quorum-th commit when the
   block reached [quorum] nodes. *)
let quorum_commits result ~quorum =
  let tbl : (int64, (int * commit) list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun nr ->
      List.iter
        (fun c ->
          let prev =
            Option.value (Hashtbl.find_opt tbl c.c_hash) ~default:[]
          in
          Hashtbl.replace tbl c.c_hash ((nr.id, c) :: prev))
        nr.commits)
    result.nodes;
  Hashtbl.fold
    (fun _hash entries acc ->
      if List.length entries >= quorum then
        let sorted =
          List.sort
            (fun (_, a) (_, b) -> Float.compare a.c_time_ms b.c_time_ms)
            entries
        in
        List.nth sorted (quorum - 1) :: acc
      else acc)
    tbl []

let t_of_line line =
  try Scanf.sscanf line "{\"t\":%f" (fun t -> t) with _ -> 0.

let merged_trace result ~quorum =
  let tagged =
    Array.fold_left
      (fun acc nr ->
        List.fold_left
          (fun acc line -> (t_of_line line, nr.id, line) :: acc)
          acc nr.trace_lines)
      [] result.nodes
  in
  let qlines =
    List.map
      (fun (qnode, qc) ->
        ( qc.c_time_ms,
          qnode,
          Bft_obs.Trace.event_to_json
            {
              Bft_obs.Trace.time = qc.c_time_ms;
              node = qnode;
              kind =
                Bft_obs.Trace.Quorum_commit
                  { view = qc.c_view; height = qc.c_height };
            } ))
      (quorum_commits result ~quorum)
  in
  List.rev tagged @ qlines
  |> List.stable_sort (fun (ta, na, _) (tb, nb, _) ->
         match Float.compare ta tb with
         | 0 -> Int.compare na nb
         | c -> c)
  |> List.map (fun (_, _, line) -> line)

let quorum_latencies result ~quorum =
  let created : (int64, float) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun nr ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt created p.p_hash with
          | Some t when t <= p.p_time_ms -> ()
          | _ -> Hashtbl.replace created p.p_hash p.p_time_ms)
        nr.proposals)
    result.nodes;
  quorum_commits result ~quorum
  |> List.filter_map (fun (_, qc) ->
         Option.map
           (fun t -> (qc.c_height, qc.c_time_ms -. t))
           (Hashtbl.find_opt created qc.c_hash))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
