open Bft_types
module W = Wire.W
module R = Wire.R
module FS = Bft_faults.Fault_schedule

let log_src = Logs.Src.create "moonshot.net" ~doc:"TCP transport backend"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Threads | Processes
type outcome = Completed | Timed_out

type config = {
  n : int;
  delta_ms : float;
  payload_bytes : int;
  target_blocks : int;
  timeout_ms : float;
  mode : mode;
  base_port : int option;
  leader_of : int -> int;
  trace : bool;
  protocol_name : string;
  faults : FS.t;
  fault_clock : Fault_plane.clock;
  fault_seed : int;
  link_delay_ms : float;
  wal_dir : string option;
  clients : Bft_mempool.Spec.t option;
}

let default ~n ~target_blocks =
  {
    n;
    delta_ms = 1000.;
    payload_bytes = 0;
    target_blocks;
    timeout_ms = 60_000.;
    mode = Threads;
    base_port = None;
    leader_of = (fun view -> view mod n);
    trace = false;
    protocol_name = "";
    faults = FS.empty;
    fault_clock = Fault_plane.Wall_ms;
    fault_seed = 17;
    link_delay_ms = 0.;
    wal_dir = None;
    clients = None;
  }

type commit = {
  c_height : int;
  c_view : int;
  c_hash : int64;
  c_time_ms : float;
  c_payload_id : int;
  c_payload_bytes : int;
}

type proposal = { p_height : int; p_hash : int64; p_time_ms : float }

type node_result = {
  id : int;
  commits : commit list;
  proposals : proposal list;
  trace_lines : string list;
  decode_errors : int;
  messages_sent : int;
  bytes_sent : int;
  bytes_heal : int;
  reconnects : int;
  restarts : int;
  malformed_by_peer : int array;
  dropped_by_peer : int array;
}

type fault_event = {
  fe_time_ms : float;
  fe_node : int;
  fe_kind : Bft_obs.Trace.fault;
}

type result = {
  nodes : node_result array;
  wall_ms : float;
  reached_target : bool;
  outcome : outcome;
  fault_events : fault_event list;
}

let empty_node_result ~n id =
  {
    id;
    commits = [];
    proposals = [];
    trace_lines = [];
    decode_errors = 0;
    messages_sent = 0;
    bytes_sent = 0;
    bytes_heal = 0;
    reconnects = 0;
    restarts = 0;
    malformed_by_peer = Array.make n 0;
    dropped_by_peer = Array.make n 0;
  }

(* --- transport-level hello frame (tag 0x00) ------------------------------- *)

let hello_tag = 0x00

let encode_hello ~id ~n ~protocol =
  Wire.encode_body ~tag:hello_tag (fun w ->
      W.uvar w id;
      W.uvar w n;
      W.bytes w protocol)

let decode_hello body =
  Wire.decode_body body (fun tag r ->
      if tag <> hello_tag then Wire.bad_tag tag;
      let id = R.uvar r in
      let n = R.uvar r in
      let protocol = R.bytes r in
      (id, n, protocol))

(* --- result blobs (process mode, child -> coordinator pipe) --------------- *)

let encode_node_result r =
  let w = W.create () in
  W.uvar w r.id;
  W.list w
    (fun w c ->
      W.uvar w c.c_height;
      W.uvar w c.c_view;
      W.u64 w c.c_hash;
      W.f64 w c.c_time_ms;
      (* Zigzag: equivocation payloads have negative ids. *)
      W.svar w c.c_payload_id;
      W.uvar w c.c_payload_bytes)
    r.commits;
  W.list w
    (fun w p ->
      W.uvar w p.p_height;
      W.u64 w p.p_hash;
      W.f64 w p.p_time_ms)
    r.proposals;
  W.uvar w r.decode_errors;
  W.uvar w r.messages_sent;
  W.uvar w r.bytes_sent;
  W.uvar w r.bytes_heal;
  W.uvar w r.reconnects;
  W.uvar w r.restarts;
  W.list w W.uvar (Array.to_list r.malformed_by_peer);
  W.list w W.uvar (Array.to_list r.dropped_by_peer);
  W.list w W.bytes r.trace_lines;
  W.contents w

let decode_node_result body =
  Wire.run_decoder (fun () ->
      let r = R.of_string body in
      let id = R.uvar r in
      let commits =
        R.list r (fun r ->
            let c_height = R.uvar r in
            let c_view = R.uvar r in
            let c_hash = R.u64 r in
            let c_time_ms = R.f64 r in
            let c_payload_id = R.svar r in
            let c_payload_bytes = R.uvar r in
            { c_height; c_view; c_hash; c_time_ms; c_payload_id; c_payload_bytes })
      in
      let proposals =
        R.list r (fun r ->
            let p_height = R.uvar r in
            let p_hash = R.u64 r in
            let p_time_ms = R.f64 r in
            { p_height; p_hash; p_time_ms })
      in
      let decode_errors = R.uvar r in
      let messages_sent = R.uvar r in
      let bytes_sent = R.uvar r in
      let bytes_heal = R.uvar r in
      let reconnects = R.uvar r in
      let restarts = R.uvar r in
      let malformed_by_peer = Array.of_list (R.list r R.uvar) in
      let dropped_by_peer = Array.of_list (R.list r R.uvar) in
      let trace_lines = R.list r R.bytes in
      R.expect_end r;
      {
        id;
        commits;
        proposals;
        trace_lines;
        decode_errors;
        messages_sent;
        bytes_sent;
        bytes_heal;
        reconnects;
        restarts;
        malformed_by_peer;
        dropped_by_peer;
      })

(* --- one validator incarnation -------------------------------------------- *)

let now_ms t0 = (Unix.gettimeofday () -. t0) *. 1000.
let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* The executor polls the stop flag between select rounds; this caps how
   long shutdown waits on an idle cluster without costing anything on an
   active one (inbound traffic wakes select immediately). *)
let max_select_s = 0.02

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* How one incarnation of a validator ended: externally stopped (normal
   shutdown, deadline, executor exception) or crashed by the fault plane.
   A crash carries the final WAL snapshot so the next incarnation can be
   rebuilt from it even when no [wal_dir] is configured. *)
type exit_reason = Stopped | Crashed of string

let node_main (type m) (module P : Protocol_intf.S with type msg = m)
    (cfg : config) ~id ~incarnation ~t0 ~listener ~(ports : int array)
    ~(plane : Fault_plane.t) ~(wal_blob : string option)
    ~(wal_file : string option) ~(stop : bool Atomic.t)
    ~(crash_flag : bool Atomic.t) ~on_done ~(on_recover_order : int -> unit)
    ~(ctl_fd : Unix.file_descr option) ~register_teardown :
    node_result * exit_reason =
  let commits = ref [] and done_sent = ref false in
  let proposals = ref [] in
  let trace_lines = ref [] in
  let malformed = Array.make cfg.n 0 in
  let crashing = ref false in
  let emit kind =
    if cfg.trace then
      trace_lines :=
        Bft_obs.Trace.event_to_json
          { Bft_obs.Trace.time = now_ms t0; node = id; kind }
        :: !trace_lines
  in
  let wal =
    match wal_blob with
    | None -> P.wal_create ()
    | Some s -> (
        match P.wal_decode s with
        | Ok w -> w
        | Error reason ->
            Log.err (fun m ->
                m "node %d: corrupt WAL snapshot (%s); restarting empty" id
                  reason);
            P.wal_create ())
  in
  let hello =
    Wire.frame (encode_hello ~id ~n:cfg.n ~protocol:cfg.protocol_name)
  in
  let backoff_cap_ms =
    (* Under the logical clock the whole run is paced by [link_delay_ms];
       a recovered peer must be redialed well within its catch-up slack,
       so the backoff cap shrinks with the pacing. *)
    match Fault_plane.clock plane with
    | Fault_plane.Views -> Float.max 25. (cfg.link_delay_ms *. 2.)
    | Fault_plane.Wall_ms -> 500.
  in
  let cm =
    Conn_manager.create ~backoff_cap_ms ~n:cfg.n ~id ~ports ~hello
      ~now_ms:(fun () -> now_ms t0)
      ~plane ()
  in
  (* Wall-clock timers; touched only by the executor thread. *)
  let timers : (float * bool ref * (unit -> unit)) list ref = ref [] in
  let set_timer delay f =
    let cancelled = ref false in
    timers := (now_ms t0 +. delay, cancelled, f) :: !timers;
    fun () -> cancelled := true
  in
  let next_deadline () =
    List.fold_left
      (fun acc (d, c, _) -> if !c then acc else Float.min acc d)
      infinity !timers
  in
  let selfq : m Queue.t = Queue.create () in
  let node_ref = ref None in
  let view () =
    match !node_ref with Some nd -> P.current_view nd | None -> 0
  in
  (* Everything the fault plane anchors on protocol state happens here,
     between events: WAL snapshot persistence, the node's own logical
     crash trigger, and (on the observer) logical recovery orders. *)
  let last_wal = ref (Option.value wal_blob ~default:"") in
  let persist_wal () =
    match wal_file with
    | None -> ()
    | Some path ->
        let s = P.wal_encode wal in
        if not (String.equal s !last_wal) then begin
          last_wal := s;
          try
            let tmp = path ^ ".tmp" in
            let oc = open_out_bin tmp in
            output_string oc s;
            close_out oc;
            Sys.rename tmp path
          with Sys_error _ ->
            Log.err (fun m -> m "node %d: cannot persist WAL" id)
        end
  in
  let crash_anchor =
    if incarnation = 0 then Fault_plane.crash_anchor plane ~node:id else None
  in
  let next_order = ref 0 in
  let post_event () =
    persist_wal ();
    (match crash_anchor with
    | Some v when (not !crashing) && view () >= v -> crashing := true
    | _ -> ());
    if id = 0 && Fault_plane.active plane then
      List.iter
        (fun (idx, _node) ->
          if idx >= !next_order then begin
            next_order := idx + 1;
            on_recover_order idx
          end)
        (Fault_plane.recoveries_upto plane ~view:(view ()))
  in
  let validators = Validator_set.make cfg.n in
  (* Client-traffic ingestion: each validator rebuilds the identical seeded
     arrival stream locally, so a leader's watermark observation is the only
     nondeterminism a batch carries — and under the [Views] spec clock even
     that is a pure function of the view, making socket chains bit-identical
     to simulator chains.  Latency accounting happens post-hoc in the
     coordinator (Net_harness.client_stats), against quorum-commit times. *)
  let ingest =
    Option.map
      (fun spec ->
        Bft_mempool.Ingest.create ~spec ~n:cfg.n ~view_ms:cfg.delta_ms ())
      cfg.clients
  in
  let env =
    {
      Env.id;
      validators;
      delta = cfg.delta_ms;
      now = (fun () -> now_ms t0);
      send =
        (fun dst msg ->
          if dst = id then Queue.push msg selfq
          else
            Conn_manager.send cm ~dst ~src_view:(view ())
              (Wire.frame (P.encode_msg msg)));
      multicast =
        (fun msg ->
          let frame = Wire.frame (P.encode_msg msg) in
          let src_view = view () in
          for dst = 0 to cfg.n - 1 do
            if dst = id then Queue.push msg selfq
            else Conn_manager.send cm ~dst ~src_view frame
          done);
      set_timer;
      leader_of = cfg.leader_of;
      make_payload =
        (fun ~view ~parent ->
          match ingest with
          | Some ing ->
              Bft_mempool.Ingest.cut ing ~view ~parent ~now:(now_ms t0)
          | None -> Payload.make ~id:view ~size_bytes:cfg.payload_bytes);
      on_commit =
        (fun b ->
          commits :=
            {
              c_height = b.Block.height;
              c_view = b.Block.view;
              c_hash = Hash.to_int64 b.Block.hash;
              c_time_ms = now_ms t0;
              c_payload_id = b.Block.payload.Payload.id;
              c_payload_bytes = b.Block.payload.Payload.size_bytes;
            }
            :: !commits;
          emit
            (Bft_obs.Trace.Committed
               { view = b.Block.view; height = b.Block.height });
          (* Height-based, not count-based: a recovered incarnation
             starts from an empty commit log and reaches the target by
             syncing, whether or not every historic height is replayed
             through [on_commit]. *)
          if b.Block.height >= cfg.target_blocks && not !done_sent then begin
            done_sent := true;
            on_done ()
          end);
      on_propose =
        (fun b ->
          proposals :=
            {
              p_height = b.Block.height;
              p_hash = Hash.to_int64 b.Block.hash;
              p_time_ms = now_ms t0;
            }
            :: !proposals);
      probe =
        (if cfg.trace then Some (fun ev -> emit (Bft_obs.Trace.Node_event ev))
         else None);
    }
  in
  let conns : (Unix.file_descr * int) list ref = ref [] in
  let close_conn fd =
    conns := List.filter (fun (fd', _) -> fd' <> fd) !conns;
    close_quiet fd
  in
  register_teardown (fun () ->
      List.iter (fun (fd, _) -> close_quiet fd) !conns;
      close_quiet listener;
      Conn_manager.force_close cm);
  if incarnation > 0 then emit (Bft_obs.Trace.Fault Bft_obs.Trace.Recover);
  (try
     let node = P.create ~wal env in
     node_ref := Some node;
     let deliver ~src ~bytes msg =
       if cfg.trace then
         emit
           (Bft_obs.Trace.Delivered
              { src; cls = P.classify msg; view = P.view_of msg; bytes });
       P.handle node ~src msg;
       post_event ()
     in
     let rec drain_self () =
       if not !crashing then
         match Queue.take_opt selfq with
         | None -> ()
         | Some msg ->
             let bytes =
               if cfg.trace then String.length (P.encode_msg msg) + 4 else 0
             in
             deliver ~src:id ~bytes msg;
             drain_self ()
     in
     let fire_due () =
       let now = now_ms t0 in
       let due, rest =
         List.partition (fun (d, c, _) -> (not !c) && d <= now) !timers
       in
       timers := List.filter (fun (_, c, _) -> not !c) rest;
       List.iter
         (fun (_, _, f) ->
           if not !crashing then begin
             f ();
             post_event ()
           end)
         (List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) due)
     in
     let accept_conn () =
       match Unix.accept listener with
       | exception Unix.Unix_error _ -> ()
       | fd, _ -> (
           (try Unix.setsockopt fd Unix.TCP_NODELAY true
            with Unix.Unix_error _ -> ());
           match Wire.read_frame fd with
           | Ok body -> (
               match decode_hello body with
               | Ok (src, n', proto)
                 when src >= 0 && src < cfg.n && src <> id && n' = cfg.n
                      && String.equal proto cfg.protocol_name ->
                   conns := (fd, src) :: !conns
               | Ok _ | Error _ -> close_quiet fd)
           | Error _ | (exception Unix.Unix_error _) -> close_quiet fd)
     in
     let handle_ctl fd =
       let buf = Bytes.create 1 in
       match Unix.read fd buf 0 1 with
       | 0 -> Atomic.set stop true
       | _ -> (
           match Bytes.get buf 0 with
           | 'K' -> Atomic.set crash_flag true
           | _ -> Atomic.set stop true)
       | exception Unix.Unix_error _ -> Atomic.set stop true
     in
     P.start node;
     post_event ();
     drain_self ();
     let hard_deadline = cfg.timeout_ms +. 5000. in
     while (not (Atomic.get stop)) && not !crashing do
       (* Wall-clock crashes land at event-loop boundaries, never inside
          a handler, so the WAL file on disk is always a post-handler
          snapshot. *)
       if Atomic.get crash_flag then crashing := true
       else begin
         fire_due ();
         drain_self ();
         if not !crashing then begin
           if now_ms t0 > hard_deadline then Atomic.set stop true
           else begin
             let timeout =
               let d = (next_deadline () -. now_ms t0) /. 1000. in
               Float.max 0. (Float.min d max_select_s)
             in
             let fds =
               (listener
               :: (match ctl_fd with Some f -> [ f ] | None -> []))
               @ List.map fst !conns
             in
             match Unix.select fds [] [] timeout with
             | exception Unix.Unix_error (EINTR, _, _) -> ()
             | exception Unix.Unix_error (EBADF, _, _) ->
                 (* Watchdog force-closed our sockets under us. *)
                 Atomic.set stop true
             | ready, _, _ ->
                 List.iter
                   (fun fd ->
                     if !crashing then ()
                     else if fd = listener then accept_conn ()
                     else if ctl_fd = Some fd then handle_ctl fd
                     else
                       match List.assoc_opt fd !conns with
                       | None -> ()
                       | Some src -> (
                           match Wire.read_frame fd with
                           | Ok body -> (
                               match P.decode_msg body with
                               | Ok msg ->
                                   deliver ~src
                                     ~bytes:(String.length body + 4)
                                     msg;
                                   drain_self ()
                               | Error reason ->
                                   malformed.(src) <- malformed.(src) + 1;
                                   Log.debug (fun m ->
                                       m
                                         "node %d: dropped frame from %d: \
                                          %s"
                                         id src reason))
                           | Error `Closed -> close_conn fd
                           | Error (`Frame_error e) ->
                               malformed.(src) <- malformed.(src) + 1;
                               Log.debug (fun m ->
                                   m "node %d: framing error from %d: %s" id
                                     src (Wire.error_to_string e));
                               close_conn fd
                           | exception Unix.Unix_error _ -> close_conn fd))
                   ready
           end
         end
       end
     done
   with exn ->
     Log.err (fun m ->
         m "node %d: executor died: %s" id (Printexc.to_string exn)));
  if !crashing then begin
    emit (Bft_obs.Trace.Fault Bft_obs.Trace.Crash);
    (* The simulator treats every send a handler issued before the crash
       point as already on the wire; drain the sender queue (including
       paced frames) before dying so the socket run agrees. *)
    ignore
      (Conn_manager.flush cm
         ~timeout_s:(0.25 +. (3. *. cfg.link_delay_ms /. 1000.)));
    persist_wal ()
  end;
  (* Closing the inbound side first unblocks every peer sender that might
     be mid-write to us, then our own sender is reaped.  A crashed
     incarnation also closes its listener: frames sent while the node is
     down must be lost, not parked in an accept backlog for the next
     incarnation to read. *)
  List.iter (fun (fd, _) -> close_quiet fd) !conns;
  close_quiet listener;
  Conn_manager.shutdown cm;
  let st = Conn_manager.stats cm in
  if cfg.trace then
    Array.iteri
      (fun peer m ->
        let d = st.Conn_manager.dropped.(peer) in
        if peer <> id && (m > 0 || d > 0) then
          emit (Bft_obs.Trace.Link_report { peer; malformed = m; dropped = d }))
      malformed;
  let r =
    {
      id;
      commits = List.rev !commits;
      proposals = List.rev !proposals;
      trace_lines = List.rev !trace_lines;
      decode_errors = Array.fold_left ( + ) 0 malformed;
      messages_sent = st.Conn_manager.messages_sent;
      bytes_sent = st.Conn_manager.bytes_sent;
      bytes_heal = st.Conn_manager.bytes_heal;
      reconnects = st.Conn_manager.reconnects;
      restarts = incarnation;
      malformed_by_peer = Array.copy malformed;
      dropped_by_peer = st.Conn_manager.dropped;
    }
  in
  (r, if !crashing then Crashed (P.wal_encode wal) else Stopped)

(* --- coordination --------------------------------------------------------- *)

let make_listener ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     close_quiet fd;
     raise e);
  Unix.listen fd 64;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, actual) -> (fd, actual)
  | _ -> assert false

let validate cfg =
  if cfg.n < 1 then invalid_arg "Tcp.run: n < 1";
  if cfg.target_blocks < 1 then invalid_arg "Tcp.run: target_blocks < 1";
  if cfg.timeout_ms <= 0. then invalid_arg "Tcp.run: non-positive timeout";
  if cfg.link_delay_ms < 0. then invalid_arg "Tcp.run: negative link delay";
  (match cfg.base_port with
  | Some p when p < 1 || p + cfg.n > 65536 ->
      invalid_arg "Tcp.run: port range out of bounds"
  | _ -> ());
  if not (FS.is_empty cfg.faults) then
    FS.validate ~n:cfg.n
      ~f:((cfg.n - 1) / 3)
      ~byzantine:[] cfg.faults

let sort_fault_log log =
  List.stable_sort
    (fun a b -> Float.compare a.fe_time_ms b.fe_time_ms)
    (List.rev log)

(* --- threads mode ---------------------------------------------------------- *)

(* Per-node supervision slot: the channel between the coordinator (wall
   driver, logical recovery orders, watchdog) and the node's supervisor
   loop. *)
type slot = {
  sm : Mutex.t;
  sc : Condition.t;
  mutable recover_ordered : bool;
  crash_flag : bool Atomic.t;
  mutable teardown : unit -> unit;
}

let merge_incarnations ~n ~id rs =
  match rs with
  | [] -> empty_node_result ~n id
  | _ ->
      let sum f = List.fold_left (fun a r -> a + f r) 0 rs in
      let sum_arr f =
        let acc = Array.make n 0 in
        List.iter
          (fun r ->
            Array.iteri
              (fun j v -> if j < n then acc.(j) <- acc.(j) + v)
              (f r))
          rs;
        acc
      in
      {
        id;
        commits = List.concat_map (fun r -> r.commits) rs;
        proposals = List.concat_map (fun r -> r.proposals) rs;
        trace_lines = List.concat_map (fun r -> r.trace_lines) rs;
        decode_errors = sum (fun r -> r.decode_errors);
        messages_sent = sum (fun r -> r.messages_sent);
        bytes_sent = sum (fun r -> r.bytes_sent);
        bytes_heal = sum (fun r -> r.bytes_heal);
        reconnects = sum (fun r -> r.reconnects);
        restarts = List.length rs - 1;
        malformed_by_peer = sum_arr (fun r -> r.malformed_by_peer);
        dropped_by_peer = sum_arr (fun r -> r.dropped_by_peer);
      }

let run_threads (type m) (module P : Protocol_intf.S with type msg = m) cfg
    ~listeners ~ports ~plane ~t0 =
  let stop = Atomic.make false in
  let done_flags = Array.init cfg.n (fun _ -> Atomic.make false) in
  let slots =
    Array.init cfg.n (fun _ ->
        {
          sm = Mutex.create ();
          sc = Condition.create ();
          recover_ordered = false;
          crash_flag = Atomic.make false;
          teardown = (fun () -> ());
        })
  in
  let fault_log = ref [] in
  let flm = Mutex.create () in
  let log_fault ~node fe_kind =
    Mutex.lock flm;
    fault_log := { fe_time_ms = now_ms t0; fe_node = node; fe_kind } :: !fault_log;
    Mutex.unlock flm
  in
  let results : node_result list array = Array.make cfg.n [] in
  let order_recover idx =
    match Fault_plane.recovery_of_index plane idx with
    | None -> ()
    | Some (_, node) ->
        let s = slots.(node) in
        Mutex.lock s.sm;
        s.recover_ordered <- true;
        Condition.broadcast s.sc;
        Mutex.unlock s.sm
  in
  let supervisor i listener0 =
    let wal_file =
      Option.map
        (fun d -> Filename.concat d (Printf.sprintf "node-%d.wal" i))
        cfg.wal_dir
    in
    let rec go incarnation listener wal_blob =
      let r, reason =
        node_main
          (module P : Protocol_intf.S with type msg = m)
          cfg ~id:i ~incarnation ~t0 ~listener ~ports ~plane ~wal_blob
          ~wal_file ~stop ~crash_flag:slots.(i).crash_flag
          ~on_done:(fun () -> Atomic.set done_flags.(i) true)
          ~on_recover_order:order_recover ~ctl_fd:None
          ~register_teardown:(fun f -> slots.(i).teardown <- f)
      in
      results.(i) <- r :: results.(i);
      match reason with
      | Stopped -> ()
      | Crashed blob -> (
          log_fault ~node:i Bft_obs.Trace.Crash;
          let s = slots.(i) in
          Mutex.lock s.sm;
          while (not s.recover_ordered) && not (Atomic.get stop) do
            Condition.wait s.sc s.sm
          done;
          let ordered = s.recover_ordered in
          s.recover_ordered <- false;
          Mutex.unlock s.sm;
          if ordered && not (Atomic.get stop) then begin
            Atomic.set s.crash_flag false;
            match make_listener ~port:ports.(i) with
            | exception _ ->
                Log.err (fun m ->
                    m "node %d: cannot rebind port %d for recovery" i
                      ports.(i))
            | listener', _ ->
                log_fault ~node:i Bft_obs.Trace.Recover;
                go (incarnation + 1) listener' (Some blob)
          end)
    in
    go 0 listener0 None
  in
  let threads =
    Array.mapi
      (fun i (listener, _) -> Thread.create (fun () -> supervisor i listener) ())
      listeners
  in
  (* Wall driver: fires scheduled crashes (flag, picked up at the next
     event boundary), recoveries (supervisor wake-up) and records window
     edges for the fault-event record. *)
  let driver () =
    List.iter
      (fun (at, ev) ->
        let rec wait () =
          if not (Atomic.get stop) then begin
            let remaining = (t0 +. (at /. 1000.)) -. Unix.gettimeofday () in
            if remaining > 0. then begin
              Thread.delay (Float.min remaining max_select_s);
              wait ()
            end
          end
        in
        wait ();
        if not (Atomic.get stop) then
          match ev with
          | Fault_plane.Wall_crash node ->
              Atomic.set slots.(node).crash_flag true
          | Fault_plane.Wall_recover node ->
              let s = slots.(node) in
              Mutex.lock s.sm;
              s.recover_ordered <- true;
              Condition.broadcast s.sc;
              Mutex.unlock s.sm
          | Fault_plane.Wall_edge f -> log_fault ~node:(-1) f)
      (Fault_plane.wall_timeline plane)
  in
  let driver_t =
    if Fault_plane.wall_timeline plane = [] then None
    else Some (Thread.create driver ())
  in
  let deadline = t0 +. (cfg.timeout_ms /. 1000.) in
  let all_done () = Array.for_all Atomic.get done_flags in
  while (not (all_done ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.002
  done;
  let reached = all_done () in
  Atomic.set stop true;
  Array.iter
    (fun s ->
      Mutex.lock s.sm;
      Condition.broadcast s.sc;
      Mutex.unlock s.sm)
    slots;
  (* Watchdog: if the supervisors have not joined shortly after the stop
     flag, force-close every incarnation's sockets out from under it.
     [Timed_out] means exactly that this teardown was needed. *)
  let joined = Atomic.make false in
  let forced = Atomic.make false in
  let watchdog =
    Thread.create
      (fun () ->
        let d = Unix.gettimeofday () +. 2.0 in
        while (not (Atomic.get joined)) && Unix.gettimeofday () < d do
          Thread.delay 0.05
        done;
        if not (Atomic.get joined) then begin
          Atomic.set forced true;
          Array.iter (fun s -> try s.teardown () with _ -> ()) slots
        end)
      ()
  in
  Array.iter Thread.join threads;
  Atomic.set joined true;
  (match driver_t with Some th -> Thread.join th | None -> ());
  Thread.join watchdog;
  {
    nodes =
      Array.mapi
        (fun i rs -> merge_incarnations ~n:cfg.n ~id:i (List.rev rs))
        results;
    wall_ms = now_ms t0;
    reached_target = reached;
    outcome = (if Atomic.get forced then Timed_out else Completed);
    fault_events = sort_fault_log !fault_log;
  }

(* --- process mode ---------------------------------------------------------- *)

(* Coordinator-side view of one validator process.  The result pipe
   carries a byte protocol: 'D' = target reached, 'O' idx = the observer
   ordered logical recovery [idx], 'R' = a result blob follows; EOF = the
   process died (expected exactly when a crash was scheduled or ordered —
   a crashing child is killed with SIGKILL, no farewell). *)
type child = {
  mutable pid : int;
  mutable rfd : Unix.file_descr;
  mutable cwfd : Unix.file_descr;
  mutable alive : bool;
  mutable got_r : bool;
  mutable target_met : bool;
  mutable down : bool;
  mutable dead : bool;
  mutable restarts : int;
  mutable recover_pending : bool;
  mutable kill_sent : bool;
  mutable reaped : bool;
}

let run_processes (type m) (module P : Protocol_intf.S with type msg = m) cfg
    ~(listeners : (Unix.file_descr * int) array) ~ports ~plane ~t0 =
  let children =
    Array.init cfg.n (fun _ ->
        {
          pid = -1;
          rfd = Unix.stdin;
          cwfd = Unix.stdin;
          alive = false;
          got_r = false;
          target_met = false;
          down = false;
          dead = false;
          restarts = 0;
          recover_pending = false;
          kill_sent = false;
          reaped = false;
        })
  in
  (* Initial listeners are owned by the parent until the matching child is
     forked; after the initial round they are closed parent-side and a
     re-spawned child binds its (fixed) port itself. *)
  let listener_opts = Array.map (fun l -> Some l) listeners in
  let spawn i ~incarnation =
    let r, w = Unix.pipe () in
    let cr, cw = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        close_quiet r;
        close_quiet cw;
        Array.iteri
          (fun j c ->
            if j <> i && c.alive then begin
              close_quiet c.rfd;
              close_quiet c.cwfd
            end)
          children;
        Array.iteri
          (fun j l ->
            match l with
            | Some (fd, _) when j <> i -> close_quiet fd
            | _ -> ())
          listener_opts;
        let listener =
          match listener_opts.(i) with
          | Some (fd, _) -> fd
          | None -> fst (make_listener ~port:ports.(i))
        in
        let wal_file =
          Option.map
            (fun d -> Filename.concat d (Printf.sprintf "node-%d.wal" i))
            cfg.wal_dir
        in
        let wal_blob =
          match wal_file with
          | Some path when incarnation > 0 && Sys.file_exists path -> (
              try Some (read_file path) with Sys_error _ -> None)
          | _ -> None
        in
        let stop = Atomic.make false in
        let crash_flag = Atomic.make false in
        let result, reason =
          try
            node_main
              (module P : Protocol_intf.S with type msg = m)
              cfg ~id:i ~incarnation ~t0 ~listener ~ports ~plane ~wal_blob
              ~wal_file ~stop ~crash_flag
              ~on_done:(fun () ->
                try ignore (Unix.write_substring w "D" 0 1)
                with Unix.Unix_error _ -> ())
              ~on_recover_order:(fun idx ->
                let b = Bytes.create 2 in
                Bytes.set b 0 'O';
                Bytes.set b 1 (Char.chr (idx land 0xff));
                try ignore (Unix.write w b 0 2)
                with Unix.Unix_error _ -> ())
              ~ctl_fd:(Some cr)
              ~register_teardown:(fun _ -> ())
          with _ -> (empty_node_result ~n:cfg.n i, Stopped)
        in
        (match reason with
        | Crashed _ ->
            (* A real crash: the process is killed outright, its volatile
               state and pending result die with it.  Only the WAL file
               survives for the next incarnation. *)
            Unix.kill (Unix.getpid ()) Sys.sigkill
        | Stopped -> ());
        (try
           ignore (Unix.write_substring w "R" 0 1);
           Wire.write_all w (Wire.frame (encode_node_result result))
         with _ -> ());
        close_quiet w;
        Unix._exit 0
    | pid ->
        close_quiet w;
        close_quiet cr;
        (match listener_opts.(i) with
        | Some (fd, _) ->
            close_quiet fd;
            listener_opts.(i) <- None
        | None -> ());
        let c = children.(i) in
        c.pid <- pid;
        c.rfd <- r;
        c.cwfd <- cw;
        c.alive <- true;
        c.got_r <- false;
        c.target_met <- false;
        c.down <- false;
        c.kill_sent <- false;
        c.reaped <- false;
        c.restarts <- incarnation
  in
  for i = 0 to cfg.n - 1 do
    spawn i ~incarnation:0
  done;
  let fault_log = ref [] in
  let log_fault node fe_kind =
    fault_log := { fe_time_ms = now_ms t0; fe_node = node; fe_kind } :: !fault_log
  in
  let respawn i =
    let c = children.(i) in
    log_fault i Bft_obs.Trace.Recover;
    spawn i ~incarnation:(c.restarts + 1)
  in
  let timeline = ref (Fault_plane.wall_timeline plane) in
  let fire_due_wall () =
    let now = now_ms t0 in
    let rec go () =
      match !timeline with
      | (at, ev) :: rest when at <= now ->
          timeline := rest;
          (match ev with
          | Fault_plane.Wall_crash node ->
              let c = children.(node) in
              if c.alive && not c.kill_sent then begin
                c.kill_sent <- true;
                try ignore (Unix.write_substring c.cwfd "K" 0 1)
                with Unix.Unix_error _ -> ()
              end
          | Fault_plane.Wall_recover node ->
              let c = children.(node) in
              if c.down then respawn node
              else if not c.dead then c.recover_pending <- true
          | Fault_plane.Wall_edge f -> log_fault (-1) f);
          go ()
      | _ -> ()
    in
    go ()
  in
  let expected_crash i =
    let c = children.(i) in
    c.kill_sent
    || (c.restarts = 0 && Fault_plane.crash_anchor plane ~node:i <> None)
  in
  let handle_eof i =
    let c = children.(i) in
    c.alive <- false;
    close_quiet c.rfd;
    close_quiet c.cwfd;
    (try ignore (Unix.waitpid [] c.pid) with Unix.Unix_error _ -> ());
    c.reaped <- true;
    if expected_crash i && not c.down then begin
      c.down <- true;
      log_fault i Bft_obs.Trace.Crash;
      if c.recover_pending then begin
        c.recover_pending <- false;
        respawn i
      end
    end
    else c.dead <- true
  in
  let handle_byte i =
    let c = children.(i) in
    let buf = Bytes.create 1 in
    match Unix.read c.rfd buf 0 1 with
    | 0 -> handle_eof i
    | _ -> (
        match Bytes.get buf 0 with
        | 'D' -> c.target_met <- true
        | 'R' -> c.got_r <- true
        | 'O' -> (
            match Unix.read c.rfd buf 0 1 with
            | 0 -> handle_eof i
            | _ -> (
                let idx = Char.code (Bytes.get buf 0) in
                match Fault_plane.recovery_of_index plane idx with
                | Some (_, node) ->
                    let cn = children.(node) in
                    if cn.down then respawn node
                    else if not cn.dead then cn.recover_pending <- true
                | None -> ())
            | exception Unix.Unix_error _ -> handle_eof i)
        | _ -> ())
    | exception Unix.Unix_error _ -> handle_eof i
  in
  (* Phase 1: run until every child has either reported its target, sent
     an early result (executor error), or died for good — with crashed
     children re-spawned along the way. *)
  let settled c = c.target_met || c.got_r || c.dead in
  let deadline = t0 +. (cfg.timeout_ms /. 1000.) in
  let pending () =
    Array.exists (fun c -> (not (settled c)) || c.down) children
    && Unix.gettimeofday () < deadline
  in
  while pending () do
    fire_due_wall ();
    let fds =
      Array.to_list children
      |> List.filter_map (fun c ->
             if c.alive && not c.got_r then Some c.rfd else None)
    in
    if fds = [] then Thread.delay 0.01
    else
      match Unix.select fds [] [] max_select_s with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              let idx = ref (-1) in
              Array.iteri
                (fun i c -> if c.alive && c.rfd = fd then idx := i)
                children;
              if !idx >= 0 then handle_byte !idx)
            ready
  done;
  let reached = Array.for_all (fun c -> c.target_met) children in
  (* Phase 2: stop every live child, collect result blobs, then reap with
     TERM -> KILL escalation.  Needing SIGKILL marks the run Timed_out. *)
  Array.iter
    (fun c ->
      if c.alive then
        try ignore (Unix.write_substring c.cwfd "S" 0 1)
        with Unix.Unix_error _ -> ())
    children;
  let read_result i =
    let c = children.(i) in
    if not c.alive then { (empty_node_result ~n:cfg.n i) with restarts = c.restarts }
    else begin
      let blob_deadline = Unix.gettimeofday () +. 8. in
      let rec await_marker () =
        if c.got_r then true
        else
          match Unix.select [ c.rfd ] [] [] 0.1 with
          | exception Unix.Unix_error (EINTR, _, _) -> await_marker ()
          | [], _, _ ->
              if Unix.gettimeofday () < blob_deadline then await_marker ()
              else false
          | _ -> (
              let buf = Bytes.create 1 in
              match Unix.read c.rfd buf 0 1 with
              | 0 -> false
              | _ ->
                  if Bytes.get buf 0 = 'R' then true
                  else if Bytes.get buf 0 = 'O' then begin
                    (* late recovery order; consume its index byte *)
                    (try ignore (Unix.read c.rfd buf 0 1)
                     with Unix.Unix_error _ -> ());
                    await_marker ()
                  end
                  else await_marker ()
              | exception Unix.Unix_error _ -> false)
      in
      let result =
        if not (await_marker ()) then
          { (empty_node_result ~n:cfg.n i) with restarts = c.restarts }
        else
          match Wire.read_frame c.rfd with
          | Ok body -> (
              match decode_node_result body with
              | Ok nr -> { nr with restarts = c.restarts }
              | Error _ ->
                  { (empty_node_result ~n:cfg.n i) with restarts = c.restarts })
          | Error _ | (exception Unix.Unix_error _) ->
              { (empty_node_result ~n:cfg.n i) with restarts = c.restarts }
      in
      close_quiet c.rfd;
      close_quiet c.cwfd;
      result
    end
  in
  let nodes = Array.init cfg.n read_result in
  let forced = ref false in
  let rec reap_poll pid until =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () < until then begin
          Thread.delay 0.02;
          reap_poll pid until
        end
        else false
    | _ -> true
    | exception Unix.Unix_error _ -> true
  in
  Array.iter
    (fun c ->
      if not c.reaped then begin
        if not (reap_poll c.pid (Unix.gettimeofday () +. 0.3)) then begin
          (try Unix.kill c.pid Sys.sigterm with Unix.Unix_error _ -> ());
          if not (reap_poll c.pid (Unix.gettimeofday () +. 0.5)) then begin
            forced := true;
            (try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ());
            try ignore (Unix.waitpid [] c.pid) with Unix.Unix_error _ -> ()
          end
        end;
        c.reaped <- true
      end)
    children;
  {
    nodes;
    wall_ms = now_ms t0;
    reached_target = reached;
    outcome = (if !forced then Timed_out else Completed);
    fault_events = sort_fault_log !fault_log;
  }

(* --- entry point ----------------------------------------------------------- *)

let default_wal_dir () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "moonshot-wal-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error _ -> ());
  d

let run (type m) (module P : Protocol_intf.S with type msg = m) cfg =
  validate cfg;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let plane =
    Fault_plane.compile ~n:cfg.n ~clock:cfg.fault_clock ~seed:cfg.fault_seed
      ~link_delay_ms:cfg.link_delay_ms
      ~heal_bound_ms:(Bft_obs.Liveness.default_k *. cfg.delta_ms)
      cfg.faults
  in
  let cfg =
    (* Process-mode crash-recovery lives or dies by the WAL file: without
       one a killed child could only restart empty.  Default to a
       per-process temp directory when the schedule crashes anyone. *)
    if
      cfg.wal_dir = None && cfg.mode = Processes
      && FS.crash_count cfg.faults > 0
    then { cfg with wal_dir = Some (default_wal_dir ()) }
    else cfg
  in
  (match cfg.wal_dir with
  | None -> ()
  | Some d ->
      (try Unix.mkdir d 0o700 with Unix.Unix_error _ -> ());
      for i = 0 to cfg.n - 1 do
        let p = Filename.concat d (Printf.sprintf "node-%d.wal" i) in
        try Sys.remove p with Sys_error _ -> ()
      done);
  let listeners =
    Array.init cfg.n (fun i ->
        make_listener
          ~port:(match cfg.base_port with None -> 0 | Some b -> b + i))
  in
  let ports = Array.map snd listeners in
  let t0 = Unix.gettimeofday () in
  match cfg.mode with
  | Threads ->
      run_threads
        (module P : Protocol_intf.S with type msg = m)
        cfg ~listeners ~ports ~plane ~t0
  | Processes ->
      run_processes
        (module P : Protocol_intf.S with type msg = m)
        cfg ~listeners ~ports ~plane ~t0

(* --- post-hoc aggregation -------------------------------------------------- *)

(* Commits of each block across nodes, with the quorum-th commit when the
   block reached [quorum] nodes. *)
let quorum_commits result ~quorum =
  let tbl : (int64, (int * commit) list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun nr ->
      List.iter
        (fun c ->
          let prev =
            Option.value (Hashtbl.find_opt tbl c.c_hash) ~default:[]
          in
          (* A recovered node may re-commit a block it already committed
             before crashing; count each node at most once per block. *)
          if not (List.exists (fun (id, _) -> id = nr.id) prev) then
            Hashtbl.replace tbl c.c_hash ((nr.id, c) :: prev))
        nr.commits)
    result.nodes;
  Hashtbl.fold
    (fun _hash entries acc ->
      if List.length entries >= quorum then
        let sorted =
          List.sort
            (fun (_, a) (_, b) -> Float.compare a.c_time_ms b.c_time_ms)
            entries
        in
        List.nth sorted (quorum - 1) :: acc
      else acc)
    tbl []

let t_of_line line =
  try Scanf.sscanf line "{\"t\":%f" (fun t -> t) with _ -> 0.

let merged_trace result ~quorum =
  let tagged =
    Array.fold_left
      (fun acc nr ->
        List.fold_left
          (fun acc line -> (t_of_line line, nr.id, line) :: acc)
          acc nr.trace_lines)
      [] result.nodes
  in
  let qlines =
    List.map
      (fun (qnode, qc) ->
        ( qc.c_time_ms,
          qnode,
          Bft_obs.Trace.event_to_json
            {
              Bft_obs.Trace.time = qc.c_time_ms;
              node = qnode;
              kind =
                Bft_obs.Trace.Quorum_commit
                  { view = qc.c_view; height = qc.c_height };
            } ))
      (quorum_commits result ~quorum)
  in
  let flines =
    List.map
      (fun fe ->
        ( fe.fe_time_ms,
          fe.fe_node,
          Bft_obs.Trace.event_to_json
            {
              Bft_obs.Trace.time = fe.fe_time_ms;
              node = fe.fe_node;
              kind = Bft_obs.Trace.Fault fe.fe_kind;
            } ))
      result.fault_events
  in
  List.rev tagged @ qlines @ flines
  |> List.stable_sort (fun (ta, na, _) (tb, nb, _) ->
         match Float.compare ta tb with
         | 0 -> Int.compare na nb
         | c -> c)
  |> List.map (fun (_, _, line) -> line)

let quorum_latencies result ~quorum =
  let created : (int64, float) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun nr ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt created p.p_hash with
          | Some t when t <= p.p_time_ms -> ()
          | _ -> Hashtbl.replace created p.p_hash p.p_time_ms)
        nr.proposals)
    result.nodes;
  quorum_commits result ~quorum
  |> List.filter_map (fun (_, qc) ->
         Option.map
           (fun t -> (qc.c_height, qc.c_time_ms -. t))
           (Hashtbl.find_opt created qc.c_hash))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
