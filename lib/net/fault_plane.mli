(** Compiled network fault plane for the live TCP transport.

    Interprets a {!Bft_faults.Fault_schedule.t} below the codec layer:
    verdicts are rendered on already-encoded frames at send time, so the
    wire format (and every pinned vector in [docs/WIRE.md]) is untouched —
    a dropped frame simply never reaches [write], a delayed one sits in
    the sender queue until its release time.

    Two clocks select how event times are read:

    - {!Wall_ms}: times are wall milliseconds since cluster start — the
      simulator's clock translated 1:1 onto the wall.  Partitions and
      loss/delay windows gate on [now]; crashes and recoveries are driven
      by the cluster coordinator at the scheduled instants.  Faithful
      chaos, but no chain-equality claim (view progression is
      latency-bound, so which views a window hits differs per substrate).
    - {!Views}: times are view numbers ({!Bft_faults.Logical}) — every
      trigger is a function of protocol state, shared exactly with the
      simulator's logical interpreter, which is what makes
      [crossval-chaos] chains comparable byte for byte.

    One plane instance is shared by all of a node's send paths; loss
    draws use a per-sender RNG stream so threads-mode executors do not
    contend. *)

type clock = Wall_ms | Views

type t

(** The inactive plane: passes everything, delays nothing. *)
val none : t

(** Compile a schedule.  [link_delay_ms] is a uniform per-frame pacing
    delay applied even outside fault windows (used by logical-clock runs
    to keep view duration well above restart time); [heal_bound_ms] sizes
    the healing-traffic accounting windows after each heal/recovery.
    Raises [Invalid_argument] when [clock = Views] and the schedule is
    not a valid logical schedule. *)
val compile :
  n:int ->
  clock:clock ->
  seed:int ->
  link_delay_ms:float ->
  heal_bound_ms:float ->
  Bft_faults.Fault_schedule.t ->
  t

(** Whether any fault interposition or pacing is configured. *)
val active : t -> bool

val clock : t -> clock

(** Send-time verdict for a frame [src -> dst].  [src_view] is the
    sender's current view at enqueue time (the logical clock);
    [now_ms] the wall clock.  Never drops self-traffic. *)
val verdict :
  t -> src:int -> dst:int -> now_ms:float -> src_view:int -> [ `Pass | `Drop ]

(** Sender-side holding delay for a frame enqueued at [now_ms]: the
    uniform pacing delay plus any wall-clock delay-spike window. *)
val delay_ms : t -> now_ms:float -> float

(** Whether [now_ms] falls in a healing-accounting window
    ([heal, heal + heal_bound_ms] after each wall-clock heal point). *)
val in_heal_window : t -> now_ms:float -> bool

(** {2 Crash/recovery anchors (logical clock)} *)

(** View at which [node]'s first incarnation crashes, if scheduled. *)
val crash_anchor : t -> node:int -> int option

(** Recoveries whose observer-view anchor is [<= view], as
    (index, node) pairs — [index] is the recovery's position in
    {!Bft_faults.Logical.recoveries} order, stable across substrates and
    process boundaries. *)
val recoveries_upto : t -> view:int -> (int * int) list

(** Recovery by index, for coordinator-side dispatch of observer
    milestones. *)
val recovery_of_index : t -> int -> (int * int) option

(** {2 Wall-clock timeline (coordinator side)} *)

type wall_event =
  | Wall_crash of int
  | Wall_recover of int
  | Wall_edge of Bft_obs.Trace.fault

(** Time-ordered crash/recover instants and window edges, for the
    coordinator's fault driver and the fault-event record.  Empty under
    the {!Views} clock. *)
val wall_timeline : t -> (float * wall_event) list
