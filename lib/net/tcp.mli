(** Live-network execution substrate: the same protocol nodes the
    simulator drives, run over real TCP sockets on localhost.

    {!run} launches an [n]-validator cluster in which every node is the
    unmodified event-driven state machine behind
    {!Bft_types.Protocol_intf.S} — only its {!Bft_types.Env.t} differs:
    [send]/[multicast] encode messages with the protocol's wire codec and
    write frames to per-peer TCP connections, [set_timer] arms wall-clock
    timers, and [now] reads the wall clock (milliseconds since cluster
    start).  Two execution modes share all of this code:

    - {!Threads}: each validator is one executor thread (plus a sender
      thread) inside the calling process;
    - {!Processes}: each validator is a forked child process; results
      travel back to the coordinator over pipes as
      {!Bft_net.Wire}-encoded blobs.

    Topology: full mesh.  Node [i] listens on one TCP port; for sending,
    it opens one connection to each peer and writes frames only on it, so
    every connection carries one direction of one ordered pair and TCP
    gives per-pair FIFO delivery.  The first frame on every connection is
    a [hello] (tag [0x00]) naming the sender id, the cluster size and the
    protocol, letting the receiver attribute (and validate) all later
    frames.  Malformed frame {e bodies} are counted and skipped;
    desynchronizing framing errors (a bad length prefix, a mid-frame EOF)
    close only the offending connection — neither crashes a node.

    The cluster runs until every node has committed [target_blocks]
    blocks (each node keeps running after reaching its own target so its
    votes keep serving slower peers) or until [timeout_ms] of wall time,
    whichever is first. *)

open Bft_types

type mode = Threads | Processes

type config = {
  n : int;  (** Cluster size. *)
  delta_ms : float;  (** Delay bound handed to the nodes (timer base). *)
  payload_bytes : int;  (** Per-block payload size (padding on the wire). *)
  target_blocks : int;  (** Stop once every node committed this many. *)
  timeout_ms : float;  (** Wall-clock safety net. *)
  mode : mode;
  base_port : int option;
      (** Node [i] listens on [base + i]; [None] = kernel-assigned
          ephemeral ports (safe for parallel test runs). *)
  leader_of : int -> int;  (** Leader schedule, as in the simulator. *)
  trace : bool;  (** Record {!Bft_obs.Trace}-format JSONL events. *)
  protocol_name : string;
      (** Advertised in the [hello] frame; a receiver drops connections
          whose hello names a different protocol or cluster size. *)
}

(** [default ~n ~target_blocks] — threads mode, ephemeral ports, empty
    payload, [delta] 1 s, round-robin leaders, 60 s timeout, no trace. *)
val default : n:int -> target_blocks:int -> config

(** One block commit as observed by one node, in local commit order. *)
type commit = {
  c_height : int;
  c_view : int;
  c_hash : int64;
  c_time_ms : float;  (** Wall ms since cluster start. *)
}

(** One first-broadcast of a block by its proposer ({!Bft_types.Env.t}'s
    [on_propose]) — the creation timestamp of the latency metric. *)
type proposal = { p_height : int; p_hash : int64; p_time_ms : float }

type node_result = {
  id : int;
  commits : commit list;  (** Commit order = chain order. *)
  proposals : proposal list;
  trace_lines : string list;
      (** {!Bft_obs.Trace.event_to_json} lines in emission order;
          [[]] when untraced. *)
  decode_errors : int;  (** Malformed frame bodies skipped. *)
  messages_sent : int;  (** Frames written to peers (self excluded). *)
  bytes_sent : int;  (** Wire bytes written, length prefixes included. *)
}

type result = {
  nodes : node_result array;
  wall_ms : float;  (** Run length, cluster start to shutdown. *)
  reached_target : bool;
      (** Every node committed [target_blocks] before the timeout. *)
}

(** Run a cluster.  Raises [Invalid_argument] on a config with [n < 1],
    a non-positive target, or a fixed port range that does not fit. *)
val run : (module Protocol_intf.S with type msg = 'm) -> config -> result

(** [merged_trace result ~quorum] interleaves every node's trace lines
    into one time-sorted JSONL document and synthesizes the
    [quorum_commit] event for each block committed by at least [quorum]
    nodes — the same event families a traced simulator run emits, so
    sim and socket traces feed the same latency tooling. *)
val merged_trace : result -> quorum:int -> string list

(** Per-block quorum-commit latency samples [(height, latency_ms)]:
    time from first proposal to the [quorum]-th node's commit, for
    blocks that reached it. *)
val quorum_latencies : result -> quorum:int -> (int * float) list
