(** Live-network execution substrate: the same protocol nodes the
    simulator drives, run over real TCP sockets on localhost.

    {!run} launches an [n]-validator cluster in which every node is the
    unmodified event-driven state machine behind
    {!Bft_types.Protocol_intf.S} — only its {!Bft_types.Env.t} differs:
    [send]/[multicast] encode messages with the protocol's wire codec and
    write frames to per-peer TCP connections, [set_timer] arms wall-clock
    timers, and [now] reads the wall clock (milliseconds since cluster
    start).  Two execution modes share all of this code:

    - {!Threads}: each validator is one executor thread (plus a
      {!Conn_manager} sender thread) inside the calling process;
    - {!Processes}: each validator is a forked child process; results
      travel back to the coordinator over pipes as
      {!Bft_net.Wire}-encoded blobs.

    Topology: full mesh.  Node [i] listens on one TCP port; for sending,
    it opens one connection to each peer and writes frames only on it, so
    every connection carries one direction of one ordered pair and TCP
    gives per-pair FIFO delivery.  The first frame on every connection is
    a [hello] (tag [0x00]) naming the sender id, the cluster size and the
    protocol, letting the receiver attribute (and validate) all later
    frames.  Malformed frame {e bodies} are counted and skipped;
    desynchronizing framing errors (a bad length prefix, a mid-frame EOF)
    close only the offending connection — neither crashes a node.

    {2 Fault injection}

    A {!Bft_faults.Fault_schedule.t} in [config.faults] is compiled to a
    {!Fault_plane.t} and interposed below the codec layer (see
    [docs/WIRE.md]): partitions and loss drop frames at send time, delay
    windows and [link_delay_ms] hold them in the sender queue.  Crashes
    are real: in {!Threads} mode the incarnation tears down its sockets
    and its supervisor waits for the recovery order before rebuilding the
    node (same port, WAL snapshot threaded through); in {!Processes} mode
    the child kills itself with [SIGKILL] at an event boundary and the
    coordinator re-forks it, the new incarnation rebuilding from the WAL
    file it persisted after every event and catching up via sync.  With
    [fault_clock = Views] the schedule is interpreted logically
    ({!Bft_faults.Logical}) — identically to the simulator harness, which
    is what makes chaos chains comparable across substrates.

    The cluster runs until every node has committed [target_blocks]
    blocks (each node keeps running after reaching its own target so its
    votes keep serving slower peers) or until [timeout_ms] of wall time,
    whichever is first. *)

open Bft_types

type mode = Threads | Processes

(** How the run ended.  {!Timed_out} does not mean the deadline expired —
    it means cooperative shutdown failed and force-teardown was needed:
    the threads-mode watchdog had to close sockets out from under a
    wedged executor, or a child process survived [SIGTERM] and had to be
    [SIGKILL]ed. *)
type outcome = Completed | Timed_out

type config = {
  n : int;  (** Cluster size. *)
  delta_ms : float;  (** Delay bound handed to the nodes (timer base). *)
  payload_bytes : int;  (** Per-block payload size (padding on the wire). *)
  target_blocks : int;  (** Stop once every node committed this height. *)
  timeout_ms : float;  (** Wall-clock safety net. *)
  mode : mode;
  base_port : int option;
      (** Node [i] listens on [base + i]; [None] = kernel-assigned
          ephemeral ports (safe for parallel test runs). *)
  leader_of : int -> int;  (** Leader schedule, as in the simulator. *)
  trace : bool;  (** Record {!Bft_obs.Trace}-format JSONL events. *)
  protocol_name : string;
      (** Advertised in the [hello] frame; a receiver drops connections
          whose hello names a different protocol or cluster size. *)
  faults : Bft_faults.Fault_schedule.t;
      (** Fault schedule; validated against the [f = (n-1)/3] budget. *)
  fault_clock : Fault_plane.clock;
      (** How schedule times are read: wall milliseconds or views. *)
  fault_seed : int;  (** Seed for link-loss draws. *)
  link_delay_ms : float;
      (** Uniform sender-side pacing per frame; logical-clock runs use it
          to keep view duration well above restart-and-redial time. *)
  wal_dir : string option;
      (** Directory for per-node WAL snapshot files ([node-<i>.wal],
          stale ones removed at cluster start).  Defaults to a temp
          directory when a process-mode schedule crashes anyone. *)
  clients : Bft_mempool.Spec.t option;
      (** Client-traffic mode: leaders cut blocks from a seeded mempool
          batch stream instead of the parametric [payload_bytes] payload.
          Every validator rebuilds the same stream from the spec's seed,
          so proposals need only carry the batch reference (cursor,
          watermark, count — packed into {!Bft_types.Payload.id}).  With
          the spec's [Views] ingest clock the cut is a pure function of
          the view number, making chains bit-identical to a simulator run
          of the same spec.  Client-perceived latency is recovered
          post-hoc by the coordinator (see {!Net_harness}) from the
          payload references in the commit records. *)
}

(** [default ~n ~target_blocks] — threads mode, ephemeral ports, empty
    payload, [delta] 1 s, round-robin leaders, 60 s timeout, no trace,
    no faults. *)
val default : n:int -> target_blocks:int -> config

(** One block commit as observed by one node, in local commit order. *)
type commit = {
  c_height : int;
  c_view : int;
  c_hash : int64;
  c_time_ms : float;  (** Wall ms since cluster start. *)
  c_payload_id : int;
      (** {!Bft_types.Payload.id} of the committed block — for
          client-traffic runs this is the packed batch reference that
          lets the coordinator replay the mempool stream post-hoc. *)
  c_payload_bytes : int;  (** {!Bft_types.Payload.size_bytes}. *)
}

(** One first-broadcast of a block by its proposer ({!Bft_types.Env.t}'s
    [on_propose]) — the creation timestamp of the latency metric. *)
type proposal = { p_height : int; p_hash : int64; p_time_ms : float }

type node_result = {
  id : int;
  commits : commit list;
      (** Commit order = chain order; a node that crashed and recovered
          contributes every incarnation's commits, so a height committed
          both before the crash and during catch-up appears twice (in
          process mode the crashed incarnation's list dies with the
          process and only the final incarnation's survives). *)
  proposals : proposal list;
  trace_lines : string list;
      (** {!Bft_obs.Trace.event_to_json} lines in emission order;
          [[]] when untraced. *)
  decode_errors : int;  (** Malformed frame bodies skipped (total). *)
  messages_sent : int;  (** Frames written to peers (self excluded). *)
  bytes_sent : int;  (** Wire bytes written, length prefixes included. *)
  bytes_heal : int;
      (** Bytes written inside post-heal/recovery accounting windows —
          the traffic cost of healing. *)
  reconnects : int;  (** Outbound connections re-established. *)
  restarts : int;  (** Incarnations beyond the first. *)
  malformed_by_peer : int array;  (** Per-peer malformed frame bodies. *)
  dropped_by_peer : int array;
      (** Per-peer frames dropped at send time (fault interposition,
          dead peer, reconnect backoff). *)
}

(** A crash, recovery or fault-window edge as it actually happened on the
    wall clock ([fe_node = -1] for network-wide window edges). *)
type fault_event = {
  fe_time_ms : float;
  fe_node : int;
  fe_kind : Bft_obs.Trace.fault;
}

type result = {
  nodes : node_result array;
  wall_ms : float;  (** Run length, cluster start to shutdown. *)
  reached_target : bool;
      (** Every node committed [target_blocks] before the timeout. *)
  outcome : outcome;
  fault_events : fault_event list;  (** Time-sorted. *)
}

(** Run a cluster.  Raises [Invalid_argument] on a config with [n < 1],
    a non-positive target, a fixed port range that does not fit, a
    schedule outside the fault budget, or a [Views]-clock schedule that
    is not a valid logical schedule. *)
val run : (module Protocol_intf.S with type msg = 'm) -> config -> result

(** [merged_trace result ~quorum] interleaves every node's trace lines
    into one time-sorted JSONL document and synthesizes the
    [quorum_commit] event for each block committed by at least [quorum]
    nodes plus a [fault] event per entry of [result.fault_events] — the
    same event families a traced simulator run emits, so sim and socket
    traces feed the same latency and liveness tooling. *)
val merged_trace : result -> quorum:int -> string list

(** Per-block quorum-commit latency samples [(height, latency_ms)]:
    time from first proposal to the [quorum]-th node's commit, for
    blocks that reached it.  A node counts at most once per block even
    if it re-committed it after a recovery. *)
val quorum_latencies : result -> quorum:int -> (int * float) list
