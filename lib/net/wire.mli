(** Byte-level wire primitives and framing for the live-network transport.

    This module defines the *mechanics* of the wire format — primitive
    value encodings, the frame envelope, and typed decode errors.  The
    per-message-type encodings built from these primitives live next to
    the message types themselves ({!Moonshot.Codec},
    {!Jolteon.Jolteon_codec}); the normative specification, with worked
    hex examples, is [docs/WIRE.md].

    Every frame travelling on a socket is

    {v
    frame := length:u32be body
    body  := version:u8 tag:u8 fields
    v}

    where [length] is the byte length of [body] (at least 2, at most
    {!max_frame_len}), [version] is {!version}, and [tag] selects the
    message type.  Decoders are total: any byte string either decodes to
    a value or to an {!error} — never to an exception escaping
    {!decode_body}. *)

(** Current (and only) wire-format version byte. *)
val version : int

(** Upper bound on the body length a decoder accepts (16 MiB).  Encoded
    frames exceeding it raise [Invalid_argument] at encode time; received
    length prefixes exceeding it are rejected with {!Frame_too_large}
    before any allocation. *)
val max_frame_len : int

(** Decode failures.  [Truncated] covers every read past the end of the
    input; [Trailing] reports bytes left over after a complete parse
    (frames must be exact); [Invalid] carries a human-readable reason for
    semantic rejections (bad option marker, oversized list, failed smart
    constructor, ...). *)
type error =
  | Truncated
  | Bad_version of int
  | Bad_tag of int
  | Trailing of int
  | Frame_too_large of int
  | Invalid of string

val error_to_string : error -> string

(** {2 Writer}

    A writer is an append-only byte buffer.  Encoders never fail (other
    than [Invalid_argument] on out-of-domain arguments, which indicates a
    caller bug, not input data). *)

module W : sig
  type t

  val create : unit -> t

  (** One byte; [v] must be in [0, 255]. *)
  val u8 : t -> int -> unit

  (** Fixed 8-byte big-endian two's-complement integer (hashes). *)
  val u64 : t -> int64 -> unit

  (** IEEE-754 double, big-endian (timestamps in result blobs; never
      used in protocol messages). *)
  val f64 : t -> float -> unit

  (** Unsigned LEB128 varint; [v] must be non-negative.  Encoders emit
      the minimal form. *)
  val uvar : t -> int -> unit

  (** Zigzag-mapped LEB128 varint for possibly-negative integers (the
      genesis block's proposer is [-1]).  The zigzag shift needs one
      spare bit: magnitudes of [2^61] and above raise
      [Invalid_argument]. *)
  val svar : t -> int -> unit

  val bool : t -> bool -> unit

  (** Length-prefixed byte string: [uvar] length then the raw bytes. *)
  val bytes : t -> string -> unit

  (** [option w enc v] writes a presence byte ([0x00]/[0x01]) then, when
      present, the value. *)
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit

  (** [list w enc vs] writes a [uvar] count then the elements in order. *)
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit

  (** [padding w n] appends [n] zero bytes (synthetic payload bodies). *)
  val padding : t -> int -> unit

  val contents : t -> string
  val length : t -> int
end

(** {2 Reader}

    A reader consumes a byte string left to right.  All read functions
    raise the internal exception wrapped by {!decode_body} /
    {!run_decoder}; user code written against readers should be run
    through one of those two entry points. *)

module R : sig
  type t

  val of_string : string -> t

  (** Abort the current decode with [Invalid reason]. *)
  val fail : string -> 'a

  val u8 : t -> int
  val u64 : t -> int64
  val f64 : t -> float

  (** Unsigned LEB128; rejects encodings over 10 bytes or overflowing
      [int]. *)
  val uvar : t -> int

  val svar : t -> int

  (** Rejects any byte other than [0x00]/[0x01]. *)
  val bool : t -> bool

  val bytes : t -> string

  val option : t -> (t -> 'a) -> 'a option

  (** Rejects counts above [65536] (frames never carry more elements). *)
  val list : t -> (t -> 'a) -> 'a list

  (** [padding r n] skips [n] bytes without inspecting them. *)
  val padding : t -> int -> unit

  (** Bytes not yet consumed. *)
  val remaining : t -> int

  (** Raises unless the input is fully consumed. *)
  val expect_end : t -> unit
end

(** {2 Framing} *)

(** [encode_body ~tag enc] builds a frame body: version byte, [tag], then
    whatever [enc] writes. *)
val encode_body : tag:int -> (W.t -> unit) -> string

(** [frame body] prepends the [u32be] length prefix, yielding the exact
    byte sequence sent on a socket.  Raises [Invalid_argument] if [body]
    exceeds {!max_frame_len}. *)
val frame : string -> string

(** Abort the current decode with [Bad_tag t] — for the tag-dispatch
    [match] of a message decoder's catch-all arm. *)
val bad_tag : int -> 'a

(** [decode_body body f] checks the version byte, reads the tag, runs
    [f tag reader], and requires the input to be fully consumed.  All
    reader exceptions are converted to [Error]. *)
val decode_body : string -> (int -> R.t -> 'a) -> ('a, error) result

(** [run_decoder f] runs a reader action outside the frame envelope
    (result blobs, tests), converting exceptions to [Error] without
    checking version/tag or full consumption. *)
val run_decoder : (unit -> 'a) -> ('a, error) result

(** {2 Blocking socket helpers}

    Frame-at-a-time IO on file descriptors, used by the TCP backend.
    Both loop over partial reads/writes. *)

(** [write_all fd s] writes the whole string; raises [Unix.Unix_error]
    on failure. *)
val write_all : Unix.file_descr -> string -> unit

(** [read_frame fd] reads one length prefix and body.  [Ok body] on
    success, [Error `Closed] on EOF at a frame boundary, [Error
    (`Frame_error e)] on a bad length prefix or mid-frame EOF.  Raises
    [Unix.Unix_error] on socket errors. *)
val read_frame :
  Unix.file_descr -> (string, [ `Closed | `Frame_error of error ]) result
