(** Outbound connection manager: one per validator incarnation.

    Owns the per-peer outbound TCP connections and the sender thread, so
    the executor never blocks on a peer's full socket buffer.  Splitting
    it out of the executor ({!Tcp}) gives crash-recovery a clean seam:
    killing an incarnation is [shutdown]; a recovered incarnation simply
    creates a fresh manager and redials.

    Three responsibilities live here:

    - {b Fault interposition}: every enqueued frame gets a
      {!Fault_plane.verdict} using the sender's view at enqueue time and
      the wall clock; dropped frames are counted per destination, delayed
      frames sit in the queue until their release time.  Interposition
      happens on encoded frames, below the codec.
    - {b Reconnection}: connections are dialed on demand with {e bounded
      exponential backoff with jitter} per destination (replacing the old
      fixed 50 × 20 ms retry budget, which blocked the sender thread and
      starved other peers).  While a destination is in backoff, frames to
      it are dropped — exactly the loss a down peer implies.
    - {b Accounting}: messages/bytes sent, per-destination drops,
      connect attempts and re-establishments, and bytes sent inside
      healing windows (for the bench's recovery-cost numbers). *)

type t

type stats = {
  messages_sent : int;
  bytes_sent : int;
  bytes_heal : int;  (** Bytes sent inside {!Fault_plane.in_heal_window}. *)
  dropped : int array;  (** Per destination: frames never written. *)
  connect_attempts : int;
  reconnects : int;  (** Successful dials beyond the first, per peer. *)
}

(** [create ~n ~id ~ports ~hello ~now_ms ~plane ()] starts the sender
    thread.  [hello] is the already-framed handshake written first on
    every new connection; [now_ms] the shared run clock.
    [backoff_base_ms]/[backoff_cap_ms] bound the reconnect backoff
    (defaults 10 / 500 ms; logical-clock runs pass a small cap so a
    recovered peer is redialed well within its catch-up slack). *)
val create :
  ?backoff_base_ms:float ->
  ?backoff_cap_ms:float ->
  n:int ->
  id:int ->
  ports:int array ->
  hello:string ->
  now_ms:(unit -> float) ->
  plane:Fault_plane.t ->
  unit ->
  t

(** Enqueue a frame.  [src_view] is the sender's current view (the
    logical clock for partition verdicts).  Never blocks. *)
val send : t -> dst:int -> src_view:int -> string -> unit

(** Wait until the queue has fully drained (including frames still held
    for pacing) or [timeout_s] elapsed; returns whether it drained.
    Called on the crash path so that frames the protocol logically sent
    before the crash point reach the wire — the simulator's crash
    semantics, where scheduled deliveries from the victim survive. *)
val flush : t -> timeout_s:float -> bool

val stats : t -> stats

(** Graceful teardown: drop anything still queued, close connections,
    join the sender thread. *)
val shutdown : t -> unit

(** Watchdog path: close the sockets out from under the sender without
    joining (a subsequent {!shutdown} still joins). *)
val force_close : t -> unit
