module FS = Bft_faults.Fault_schedule

type clock = Wall_ms | Views

type wall_event =
  | Wall_crash of int
  | Wall_recover of int
  | Wall_edge of Bft_obs.Trace.fault

type t = {
  clock : clock;
  overlay : Bft_faults.Overlay.t option; (* Wall_ms link windows *)
  logical : Bft_faults.Logical.t option; (* Views interpretation *)
  rngs : Bft_sim.Rng.t array; (* per-sender loss draws *)
  link_delay_ms : float;
  heal_windows : (float * float) list;
  timeline : (float * wall_event) list;
  active : bool;
}

let none =
  {
    clock = Wall_ms;
    overlay = None;
    logical = None;
    rngs = [||];
    link_delay_ms = 0.;
    heal_windows = [];
    timeline = [];
    active = false;
  }

let compile ~n ~clock ~seed ~link_delay_ms ~heal_bound_ms sched =
  if FS.is_empty sched && link_delay_ms <= 0. then none
  else
    let sched = FS.sorted sched in
    let overlay, logical, heal_windows, timeline =
      match clock with
      | Views ->
          (None, Some (Bft_faults.Logical.of_schedule_exn ~n sched), [], [])
      | Wall_ms ->
          let heal_windows =
            List.map (fun h -> (h, h +. heal_bound_ms)) (FS.heal_times sched)
          in
          let timeline =
            List.concat_map
              (function
                | FS.Crash { node; at } -> [ (at, Wall_crash node) ]
                | FS.Recover { node; at } -> [ (at, Wall_recover node) ]
                | FS.Partition { from_; until; _ } ->
                    [
                      (from_, Wall_edge Bft_obs.Trace.Partition_start);
                      (until, Wall_edge Bft_obs.Trace.Partition_heal);
                    ]
                | FS.Link_loss { from_; until; _ } ->
                    [
                      (from_, Wall_edge Bft_obs.Trace.Loss_start);
                      (until, Wall_edge Bft_obs.Trace.Loss_end);
                    ]
                | FS.Delay_spike { from_; until; _ } ->
                    [
                      (from_, Wall_edge Bft_obs.Trace.Delay_start);
                      (until, Wall_edge Bft_obs.Trace.Delay_end);
                    ])
              sched
            |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
          in
          ( Some (Bft_faults.Overlay.compile ~n sched),
            None,
            heal_windows,
            timeline )
    in
    {
      clock;
      overlay;
      logical;
      rngs = Array.init n (fun i -> Bft_sim.Rng.create (seed lxor (i * 7919)));
      link_delay_ms;
      heal_windows;
      timeline;
      active = true;
    }

let active t = t.active
let clock t = t.clock

let verdict t ~src ~dst ~now_ms ~src_view =
  if (not t.active) || src = dst then `Pass
  else
    match (t.overlay, t.logical) with
    | Some ov, _ ->
        if Bft_faults.Overlay.cut ov ~src ~dst ~now:now_ms then `Drop
        else
          let p = Bft_faults.Overlay.loss_prob ov ~now:now_ms in
          if p > 0. && Bft_sim.Rng.float t.rngs.(src) 1. < p then `Drop
          else `Pass
    | None, Some lg ->
        if Bft_faults.Logical.cut lg ~src ~src_view ~dst then `Drop else `Pass
    | None, None -> `Pass

let delay_ms t ~now_ms =
  if not t.active then 0.
  else
    t.link_delay_ms
    +.
    match t.overlay with
    | Some ov -> Bft_faults.Overlay.extra_delay ov ~now:now_ms
    | None -> 0.

let in_heal_window t ~now_ms =
  List.exists (fun (a, b) -> now_ms >= a && now_ms <= b) t.heal_windows

let crash_anchor t ~node =
  Option.bind t.logical (fun lg -> Bft_faults.Logical.crash_anchor lg node)

let recoveries t =
  match t.logical with
  | None -> []
  | Some lg -> Bft_faults.Logical.recoveries lg

let recoveries_upto t ~view =
  List.mapi (fun i x -> (i, x)) (recoveries t)
  |> List.filter_map (fun (i, (v, node)) ->
         if v <= view then Some (i, node) else None)

let recovery_of_index t i = List.nth_opt (recoveries t) i

let wall_timeline t = t.timeline
