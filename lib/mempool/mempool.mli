(** Sharded bounded mempool with typed admission verdicts.

    [k] independent lanes (shard = client id mod [k]), each a bounded
    {!Lane} of admitted commands plus a bounded backlog of deferred ones.
    Submission returns a typed verdict:

    - [Admitted] — the command entered its lane and will be drawn into a
      batch in FIFO order;
    - [Deferred] — the lane was full; the command waits in the lane's
      bounded backlog and is promoted automatically when the lane drains
      (original submit time preserved, so deferral is charged to its
      end-to-end latency);
    - [Rejected] — lane and backlog both full; the command is dropped and
      counted.  This is the backpressure signal under sustained overload.

    Draining is round-robin across lanes (a rotor persisting across
    batches), which gives per-lane fairness: no lane is starved while
    another has pending commands.  Conservation invariant, checked by the
    qcheck suite: [submitted = rejected + committed + pending + backlogged].

    The structure is deterministic and single-threaded by design: consensus
    replicates it by replaying the arrival stream in commit order (see
    {!Ingest}), so there is no cross-replica coordination to model. *)

type t

type verdict = Admitted | Deferred | Rejected

val create : lanes:int -> lane_capacity:int -> backlog_capacity:int -> t
val lane_count : t -> int
val lane_of : t -> client:int -> int

(** [submit t ~client ~seq ~time] offers command [seq] from [client],
    submitted at [time]. *)
val submit : t -> client:int -> seq:int -> time:float -> verdict

(** Commands currently admitted across all lanes. *)
val pending : t -> int

(** Commands currently deferred across all backlogs. *)
val backlogged : t -> int

(** [drain t ~count ~f] draws up to [count] commands round-robin from lane
    fronts, calling [f ~seq ~lane ~time] for each (with the original submit
    [time]); promotes backlog entries as lanes free up.  Returns the number
    actually drawn (short when the pool runs dry). *)
val drain :
  t -> count:int -> f:(seq:int -> lane:int -> time:float -> unit) -> int

(** Commands drawn per lane since creation (a copy). *)
val committed_per_lane : t -> int array

type counters = {
  submitted : int;
  admitted : int;
  deferred : int;
  rejected : int;
  committed : int;
}

val counters : t -> counters
