(* Native-int mixer (splitmix-style, truncated constants so every literal
   fits OCaml's 63-bit int).  Arithmetic wraps in the tagged word; the final
   mask keeps results non-negative.  All draws are native ints and floats —
   no boxing, so generating millions of arrivals allocates nothing. *)
let mix z =
  let z = z + 0x2545f4914f6cdd1d in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  (z lxor (z lsr 31)) land max_int

type t = {
  clients : int;
  mean_gap_ms : float;
  per_view : int;
  clock : Spec.clock;
  seed : int;
  mutable state : int;
  mutable index : int;
  mutable time : float;
}

let gap t =
  t.state <- mix t.state;
  let u = float_of_int (t.state land ((1 lsl 53) - 1)) /. 9007199254740992. in
  -.t.mean_gap_ms *. log (if u < 1e-15 then 1e-15 else u)

let create (spec : Spec.t) =
  let t =
    {
      clients = spec.clients;
      mean_gap_ms =
        (if spec.rate_per_s > 0. then 1000. /. spec.rate_per_s else 1.);
      per_view = spec.per_view;
      clock = spec.clock;
      seed = mix (spec.seed + 0x1ced);
      state = mix (spec.seed + 0x1ced);
      index = 0;
      time = 0.;
    }
  in
  (match t.clock with
  | Spec.Wall -> t.time <- gap t
  | Spec.Views -> t.time <- 0.);
  t

let seq t = t.index

let client_of t s = mix (t.seed lxor ((s + 1) * 0x21c8864680b583eb)) mod t.clients

let next_client t = client_of t t.index
let next_time t = t.time

let advance t =
  t.index <- t.index + 1;
  match t.clock with
  | Spec.Wall -> t.time <- t.time +. gap t
  | Spec.Views ->
      (* Arrival [s] becomes visible in view slot [s / per_view] (plus one:
         the first proposing view is 1, not the genesis view 0). *)
      t.time <- float_of_int (1 + (t.index / t.per_view))

let count_until t ~now =
  while t.time <= now do
    advance t
  done;
  t.index
