let buckets = 400
let base_v = 0.05
let log_growth = log 1.07

(* Upper bound of bucket [i]; bucket 0 covers [0, base_v]. *)
let bounds =
  Array.init buckets (fun i -> base_v *. exp (float_of_int i *. log_growth))

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : float;
  mutable max_v : float;
}

let create () = { counts = Array.make buckets 0; total = 0; sum = 0.; max_v = 0. }

let clear t =
  Array.fill t.counts 0 buckets 0;
  t.total <- 0;
  t.sum <- 0.;
  t.max_v <- 0.

let index_of v =
  if v <= base_v then 0
  else
    let i = 1 + int_of_float (log (v /. base_v) /. log_growth) in
    if i >= buckets then buckets - 1 else i

let add t v =
  let v = if v < 0. then 0. else v in
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v > t.max_v then t.max_v <- v

let count t = t.total
let max_value t = t.max_v
let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total

let quantile t q =
  if t.total = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = int_of_float (ceil (q *. float_of_int t.total)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 and i = ref 0 and found = ref (buckets - 1) in
    (try
       while !i < buckets do
         acc := !acc + t.counts.(!i);
         if !acc >= rank then begin
           found := !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    (* Report the bucket's upper bound, capped by the true maximum so the
       tail quantiles cannot exceed an observed value. *)
    let b = bounds.(!found) in
    if b > t.max_v then t.max_v else b
  end

let merge ~into t =
  for i = 0 to buckets - 1 do
    into.counts.(i) <- into.counts.(i) + t.counts.(i)
  done;
  into.total <- into.total + t.total;
  into.sum <- into.sum +. t.sum;
  if t.max_v > into.max_v then into.max_v <- t.max_v
