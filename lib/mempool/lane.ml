type t = {
  seqs : int array;
  times : float array;
  cap : int;
  mutable head : int;
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lane.create: capacity must be positive";
  {
    seqs = Array.make capacity 0;
    times = Array.make capacity 0.;
    cap = capacity;
    head = 0;
    len = 0;
  }

let capacity t = t.cap
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = t.cap

let push t ~seq ~time =
  if t.len = t.cap then invalid_arg "Lane.push: full";
  let slot = t.head + t.len in
  let slot = if slot >= t.cap then slot - t.cap else slot in
  t.seqs.(slot) <- seq;
  t.times.(slot) <- time;
  t.len <- t.len + 1

let front_seq t =
  if t.len = 0 then invalid_arg "Lane.front_seq: empty";
  t.seqs.(t.head)

let front_time t =
  if t.len = 0 then invalid_arg "Lane.front_time: empty";
  t.times.(t.head)

let pop t =
  if t.len = 0 then invalid_arg "Lane.pop: empty";
  t.head <- (if t.head + 1 >= t.cap then 0 else t.head + 1);
  t.len <- t.len - 1
