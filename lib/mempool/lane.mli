(** Bounded FIFO of pending commands (one mempool shard).

    A ring over two preallocated unboxed arrays — sequence number and submit
    time per entry — so pushes and pops on the ingestion hot path allocate
    nothing.  Capacity is fixed at creation; [push] on a full lane raises
    (admission control decides before pushing). *)

type t

val create : capacity:int -> t
val capacity : t -> int
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool

(** Raises [Invalid_argument] when full. *)
val push : t -> seq:int -> time:float -> unit

val front_seq : t -> int
val front_time : t -> float

(** Raises [Invalid_argument] when empty. *)
val pop : t -> unit
