(** Fixed-memory log-bucketed latency histogram.

    400 geometric buckets (7% relative width) from 0.05 ms upward; recording
    a sample touches one array cell and three scalar fields, so tracking the
    end-to-end latency of millions of client commands allocates nothing.
    Quantiles report a bucket's upper bound (≤ 7% relative error), capped by
    the exact observed maximum. *)

type t

val create : unit -> t
val clear : t -> unit

(** Record one sample (negative values clamp to zero). *)
val add : t -> float -> unit

val count : t -> int
val mean : t -> float
val max_value : t -> float

(** [quantile t q] for [q] in [0, 1]; 0 when empty. *)
val quantile : t -> float -> float

(** Fold [t]'s samples into [into]. *)
val merge : into:t -> t -> unit
