type verdict = Admitted | Deferred | Rejected

type t = {
  lanes : Lane.t array;
  backlog : Lane.t array;
  mutable rotor : int;
  committed_per_lane : int array;
  mutable submitted : int;
  mutable admitted : int;
  mutable deferred : int;
  mutable rejected : int;
  mutable committed : int;
}

let create ~lanes ~lane_capacity ~backlog_capacity =
  if lanes <= 0 then invalid_arg "Mempool.create: lanes must be positive";
  {
    lanes = Array.init lanes (fun _ -> Lane.create ~capacity:lane_capacity);
    backlog = Array.init lanes (fun _ -> Lane.create ~capacity:backlog_capacity);
    rotor = 0;
    committed_per_lane = Array.make lanes 0;
    submitted = 0;
    admitted = 0;
    deferred = 0;
    rejected = 0;
    committed = 0;
  }

let lane_count t = Array.length t.lanes
let lane_of t ~client = client mod Array.length t.lanes

let submit t ~client ~seq ~time =
  t.submitted <- t.submitted + 1;
  let l = lane_of t ~client in
  if not (Lane.is_full t.lanes.(l)) then begin
    Lane.push t.lanes.(l) ~seq ~time;
    t.admitted <- t.admitted + 1;
    Admitted
  end
  else if not (Lane.is_full t.backlog.(l)) then begin
    (* Bounded retry: the command waits in the lane's backlog with its
       original submit time, so deferral shows up in its latency. *)
    Lane.push t.backlog.(l) ~seq ~time;
    t.deferred <- t.deferred + 1;
    Deferred
  end
  else begin
    t.rejected <- t.rejected + 1;
    Rejected
  end

let promote t l =
  if (not (Lane.is_empty t.backlog.(l))) && not (Lane.is_full t.lanes.(l)) then begin
    Lane.push t.lanes.(l) ~seq:(Lane.front_seq t.backlog.(l))
      ~time:(Lane.front_time t.backlog.(l));
    Lane.pop t.backlog.(l)
  end

let pending t = Array.fold_left (fun acc l -> acc + Lane.length l) 0 t.lanes

let backlogged t =
  Array.fold_left (fun acc l -> acc + Lane.length l) 0 t.backlog

let committed_per_lane t = Array.copy t.committed_per_lane

let drain t ~count ~f =
  let k = Array.length t.lanes in
  let drained = ref 0 in
  let empty_scan = ref 0 in
  while !drained < count && !empty_scan < k do
    let l = t.rotor in
    t.rotor <- (if t.rotor + 1 >= k then 0 else t.rotor + 1);
    if Lane.is_empty t.lanes.(l) then incr empty_scan
    else begin
      empty_scan := 0;
      let seq = Lane.front_seq t.lanes.(l) in
      let time = Lane.front_time t.lanes.(l) in
      Lane.pop t.lanes.(l);
      promote t l;
      t.committed_per_lane.(l) <- t.committed_per_lane.(l) + 1;
      t.committed <- t.committed + 1;
      f ~seq ~lane:l ~time;
      incr drained
    end
  done;
  !drained

type counters = {
  submitted : int;
  admitted : int;
  deferred : int;
  rejected : int;
  committed : int;
}

let counters (t : t) =
  {
    submitted = t.submitted;
    admitted = t.admitted;
    deferred = t.deferred;
    rejected = t.rejected;
    committed = t.committed;
  }
