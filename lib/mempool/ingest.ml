open Bft_types

type lat_summary = {
  samples : int;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

type summary = {
  submitted : int;
  admitted : int;
  deferred : int;
  rejected : int;
  committed : int;
  pending : int;
  backlogged : int;
  shortfall : int;
  batches : int;
  watermark : int;
  dissemination_bytes : int;
  lat : lat_summary;
  per_lane_committed : int array;
}

type batch_report = {
  count : int;
  pool_pending : int;
  cum_p50_ms : float;
  cum_p99_ms : float;
}

type t = {
  spec : Spec.t;
  n : int;
  view_ms : float;
  wm : Arrival.t;
  replay : Arrival.t;
  pool : Mempool.t;
  memo : (int, Payload.t) Hashtbl.t;
  hist : Hist.t;
  mutable shortfall : int;
  mutable batches : int;
  mutable dissemination_bytes : int;
  on_command :
    (seq:int -> lane:int -> submit_ms:float -> commit_ms:float -> unit) option;
}

let create ?on_command ~spec ~n ~view_ms () =
  Spec.validate spec;
  {
    spec;
    n;
    view_ms;
    wm = Arrival.create spec;
    replay = Arrival.create spec;
    pool =
      Mempool.create ~lanes:spec.Spec.lanes
        ~lane_capacity:spec.Spec.lane_capacity
        ~backlog_capacity:spec.Spec.backlog_capacity;
    memo = Hashtbl.create 64;
    hist = Hist.create ();
    shortfall = 0;
    batches = 0;
    dissemination_bytes = 0;
    on_command;
  }

let spec t = t.spec

(* Chain cursor implied by a parent block: how many mempool commands the
   parent and its ancestors consumed, and the watermark the parent advertised.
   Non-batch parents (genesis, parametric payloads) anchor the base case. *)
let parent_anchor (parent : Block.t) =
  let p = parent.Block.payload in
  if Payload.is_batch p then
    (Payload.batch_cursor p + Payload.item_count p, Payload.batch_watermark p)
  else (0, 0)

let cut t ~view ~parent ~now =
  match Hashtbl.find_opt t.memo view with
  | Some p -> p
  | None ->
      let cursor, parent_wm = parent_anchor parent in
      let observed =
        match t.spec.Spec.clock with
        | Spec.Wall -> Arrival.count_until t.wm ~now
        | Spec.Views -> t.spec.Spec.per_view * view
      in
      (* Watermarks are monotone along the chain; the clamp keeps the packed
         id inside the wire codec's range on absurdly long streams. *)
      let wm = max observed parent_wm in
      let wm = min wm Payload.batch_field_max in
      let count = max 0 (min t.spec.Spec.max_batch (wm - cursor)) in
      let p = Payload.batch ~cursor ~watermark:wm ~count in
      Hashtbl.replace t.memo view p;
      p

let on_quorum_commit t ~payload ~time =
  if not (Payload.is_batch payload) then 0
  else begin
    let wm = Payload.batch_watermark payload in
    let count = Payload.item_count payload in
    (* Replicate the mempool state machine: ingest every arrival the batch's
       watermark covers, in stream order, through admission control. *)
    while Arrival.seq t.replay < wm do
      let seq = Arrival.seq t.replay in
      let client = Arrival.next_client t.replay in
      let at = Arrival.next_time t.replay in
      Arrival.advance t.replay;
      match Mempool.submit t.pool ~client ~seq ~time:at with
      | Mempool.Admitted | Mempool.Deferred ->
          (* Client-to-validator dissemination: each accepted command reaches
             all n validators, off the ordering path. *)
          t.dissemination_bytes <-
            t.dissemination_bytes + (Payload.item_size * t.n)
      | Mempool.Rejected -> ()
    done;
    let drained =
      Mempool.drain t.pool ~count ~f:(fun ~seq ~lane ~time:at ->
          let submit_ms =
            match t.spec.Spec.clock with
            | Spec.Wall -> at
            | Spec.Views -> at *. t.view_ms
          in
          let lat = time -. submit_ms in
          let lat = if lat < 0. then 0. else lat in
          Hist.add t.hist lat;
          match t.on_command with
          | None -> ()
          | Some f -> f ~seq ~lane ~submit_ms ~commit_ms:time)
    in
    t.batches <- t.batches + 1;
    t.shortfall <- t.shortfall + (count - drained);
    drained
  end

let batch_report t ~count =
  {
    count;
    pool_pending = Mempool.pending t.pool;
    cum_p50_ms = Hist.quantile t.hist 0.50;
    cum_p99_ms = Hist.quantile t.hist 0.99;
  }

let summary t =
  let c = Mempool.counters t.pool in
  {
    submitted = c.Mempool.submitted;
    admitted = c.Mempool.admitted;
    deferred = c.Mempool.deferred;
    rejected = c.Mempool.rejected;
    committed = c.Mempool.committed;
    pending = Mempool.pending t.pool;
    backlogged = Mempool.backlogged t.pool;
    shortfall = t.shortfall;
    batches = t.batches;
    watermark = Arrival.seq t.replay;
    dissemination_bytes = t.dissemination_bytes;
    lat =
      {
        samples = Hist.count t.hist;
        mean_ms = Hist.mean t.hist;
        p50_ms = Hist.quantile t.hist 0.50;
        p90_ms = Hist.quantile t.hist 0.90;
        p99_ms = Hist.quantile t.hist 0.99;
        max_ms = Hist.max_value t.hist;
      };
    per_lane_committed = Mempool.committed_per_lane t.pool;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>submitted        : %d@,\
     admitted         : %d (deferred %d, rejected %d)@,\
     committed        : %d (pending %d, backlogged %d, shortfall %d)@,\
     batches          : %d (watermark %d)@,\
     dissemination    : %.2f MiB@,\
     client latency   : p50 %.1f ms  p90 %.1f ms  p99 %.1f ms  max %.1f ms \
     (mean %.1f, %d samples)@]"
    s.submitted s.admitted s.deferred s.rejected s.committed s.pending
    s.backlogged s.shortfall s.batches s.watermark
    (float_of_int s.dissemination_bytes /. 1048576.)
    s.lat.p50_ms s.lat.p90_ms s.lat.p99_ms s.lat.max_ms s.lat.mean_ms
    s.lat.samples
