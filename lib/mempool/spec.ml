type clock = Wall | Views

type t = {
  clients : int;
  rate_per_s : float;
  per_view : int;
  clock : clock;
  lanes : int;
  lane_capacity : int;
  backlog_capacity : int;
  max_batch : int;
  seed : int;
}

let default =
  {
    clients = 1_000_000;
    rate_per_s = 5_000.;
    per_view = 64;
    clock = Wall;
    lanes = 8;
    lane_capacity = 4_096;
    backlog_capacity = 4_096;
    max_batch = 512;
    seed = 1;
  }

let clock_of_string = function
  | "wall" -> Ok Wall
  | "views" -> Ok Views
  | s -> Error (Printf.sprintf "unknown ingest clock %S (expected wall|views)" s)

let clock_to_string = function Wall -> "wall" | Views -> "views"

let validate t =
  if t.clients <= 0 then invalid_arg "Spec.validate: clients must be positive";
  if t.lanes <= 0 then invalid_arg "Spec.validate: lanes must be positive";
  if t.lane_capacity <= 0 then
    invalid_arg "Spec.validate: lane_capacity must be positive";
  if t.backlog_capacity <= 0 then
    invalid_arg "Spec.validate: backlog_capacity must be positive";
  if t.max_batch <= 0 then invalid_arg "Spec.validate: max_batch must be positive";
  (match t.clock with
  | Wall ->
      if t.rate_per_s <= 0. then
        invalid_arg "Spec.validate: rate_per_s must be positive"
  | Views ->
      if t.per_view <= 0 then
        invalid_arg "Spec.validate: per_view must be positive")

let pp ppf t =
  Format.fprintf ppf
    "clients=%d %s lanes=%d cap=%d backlog=%d max_batch=%d seed=%d"
    t.clients
    (match t.clock with
    | Wall -> Printf.sprintf "rate=%.0f/s" t.rate_per_s
    | Views -> Printf.sprintf "per_view=%d" t.per_view)
    t.lanes t.lane_capacity t.backlog_capacity t.max_batch t.seed
