(** Configuration shared by every client-traffic ingestion site.

    One record describes the simulated client population, the arrival
    process, and the mempool's admission bounds; both the simulator harness
    and the live TCP cluster build their ingestion state from it, which is
    what makes cross-substrate runs comparable. *)

(** How arrival watermarks are read.

    [Wall] draws Poisson arrivals against the substrate's clock (simulated
    milliseconds, or real wall time over sockets) — the mode for latency
    measurements.  [Views] anchors arrivals to view numbers ([per_view]
    commands become visible per view), a pure function of the chain that is
    identical across substrates — the mode for cross-validation, mirroring
    the view-anchored fault clocks of lib/faults. *)
type clock = Wall | Views

type t = {
  clients : int;  (** simulated client population (lane = client mod lanes) *)
  rate_per_s : float;  (** aggregate offered load, commands/s ([Wall]) *)
  per_view : int;  (** arrivals visible per view ([Views]) *)
  clock : clock;
  lanes : int;  (** independent payload lanes (sharding degree) *)
  lane_capacity : int;  (** admitted commands per lane before deferral *)
  backlog_capacity : int;  (** deferred commands per lane before rejection *)
  max_batch : int;  (** commands a leader may draw into one block *)
  seed : int;  (** seeds the arrival stream (client identity + timing) *)
}

(** One million clients, 5000 commands/s, 8 lanes of 4096 (+4096 backlog),
    512-command batches, wall clock. *)
val default : t

val clock_of_string : string -> (clock, string) result
val clock_to_string : clock -> string

(** Raises [Invalid_argument] on non-positive population, lanes, bounds or
    rates. *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit
