(** Ingestion coordinator: cuts batches for leaders and replays the
    replicated mempool in commit order.

    The mempool is replicated {e through the chain itself}, in the Narwhal
    lineage: consensus orders batch {e references} — a [(cursor, watermark,
    count)] triple packed into {!Bft_types.Payload.batch} — never contents.
    A leader cutting a block for view [v] contributes exactly one decision,
    the arrival watermark it observed ([count] then follows from the
    parent's cursor and [max_batch]).  Contents are derived by every replica
    identically: replay arrivals [parent watermark, watermark) through the
    deterministic admission state machine ({!Mempool}), then draw [count]
    commands round-robin from lane fronts.  Leaders cannot diverge on
    composition because they never compute it, and a run over sockets
    reconstructs the exact chain the simulator commits from the same seeded
    stream.

    Client-perceived latency (submit → quorum commit of the containing
    block) is recorded during replay into an allocation-free histogram,
    which is how sweeps over millions of clients stay cheap. *)

type t

type lat_summary = {
  samples : int;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

type summary = {
  submitted : int;  (** arrivals ingested (covered by committed watermarks) *)
  admitted : int;  (** entered a lane directly *)
  deferred : int;  (** entered a backlog (lane full) *)
  rejected : int;  (** dropped — lane and backlog full (backpressure) *)
  committed : int;  (** drawn into a quorum-committed block *)
  pending : int;  (** still waiting in lanes *)
  backlogged : int;  (** still waiting in backlogs *)
  shortfall : int;  (** advertised batch slots that found the pool dry *)
  batches : int;  (** batch payloads quorum-committed *)
  watermark : int;  (** arrival-stream position of the replayer *)
  dissemination_bytes : int;
      (** client→validator payload bytes (count × item_size × n), the
          dissemination cost consensus no longer carries in-band *)
  lat : lat_summary;  (** client-perceived end-to-end latency *)
  per_lane_committed : int array;  (** fairness: commands drawn per lane *)
}

(** Per-commit snapshot for trace events. *)
type batch_report = {
  count : int;
  pool_pending : int;
  cum_p50_ms : float;
  cum_p99_ms : float;
}

(** [create ~spec ~n ~view_ms ()] builds an ingestion site for an [n]-node
    run.  [view_ms] converts view-slot submit times to nominal milliseconds
    under the [Views] clock (pass the view timeout Δ).  [on_command] is
    invoked for every command drawn into a committed batch, in global commit
    order — the hook tests use to check no command is lost or duplicated.
    Raises [Invalid_argument] on an invalid spec. *)
val create :
  ?on_command:(seq:int -> lane:int -> submit_ms:float -> commit_ms:float -> unit) ->
  spec:Spec.t ->
  n:int ->
  view_ms:float ->
  unit ->
  t

val spec : t -> Spec.t

(** [cut t ~view ~parent ~now] is the batch payload for a block proposed at
    [view] extending [parent].  Memoized per view, so a leader's optimistic
    and normal proposals for the same view carry the same block.  [now] is
    the substrate clock (ignored under the [Views] spec clock). *)
val cut :
  t -> view:int -> parent:Bft_types.Block.t -> now:float -> Bft_types.Payload.t

(** [on_quorum_commit t ~payload ~time] must be called for every
    quorum-committed block, in commit order.  For batch payloads it advances
    the replayer to the batch's watermark (running admission control on each
    arrival) and draws the batch's commands, recording their end-to-end
    latency against commit time [time].  Returns the number of commands
    drawn (0 for non-batch payloads). *)
val on_quorum_commit : t -> payload:Bft_types.Payload.t -> time:float -> int

(** Snapshot for a trace event after a commit that drained [count]
    commands; cumulative percentiles come from the histogram. *)
val batch_report : t -> count:int -> batch_report

val summary : t -> summary
val pp_summary : Format.formatter -> summary -> unit
