(** Allocation-free open-loop client arrival generator.

    A deterministic stream of command submissions: arrival [s] (its global
    sequence number) is issued by client [client_of s] at time [next_time] —
    Poisson interarrivals at the spec's aggregate rate under the [Wall]
    clock, or a fixed [per_view] quota anchored to view numbers under
    [Views].  The stream is a pure function of the spec's seed, so two
    instances built from the same spec produce identical streams: one serves
    leaders as the watermark observer, the other serves the commit-order
    replayer, and the live TCP cluster rebuilds the very same stream on
    every validator.

    Open loop: clients never wait for commits before submitting, which is
    what makes sustained-saturation sweeps meaningful.  The generator keeps
    three scalars of state and draws from a native-int mixer — advancing it
    through millions of arrivals allocates nothing. *)

type t

val create : Spec.t -> t

(** Sequence number of the next (not yet issued) arrival = number issued so
    far. *)
val seq : t -> int

(** Issuer of arrival [s]; pure (independent of cursor position). *)
val client_of : t -> int -> int

val next_client : t -> int

(** Arrival time of the next arrival: milliseconds ([Wall]) or the view slot
    in which it becomes visible ([Views]). *)
val next_time : t -> float

val advance : t -> unit

(** [count_until t ~now] advances past every arrival with time ≤ [now] and
    returns the resulting {!seq} — the leader-side watermark.  [now] must be
    monotone across calls. *)
val count_until : t -> now:float -> int
