(** Wire messages of the Jolteon baseline.

    Jolteon [Gelashvili et al., FC 2022] is the linear chained protocol the
    paper evaluates against.  Its steady state is leader-to-all proposals and
    all-to-next-leader votes (the designated vote aggregator that costs it
    reorg resilience); its view change is all-to-all timeouts carrying high
    QCs.  Quorum certificates reuse {!Moonshot.Cert} (rounds are views) and
    timeout certificates reuse {!Moonshot.Tc}. *)

open Bft_types

type t =
  | Propose of { block : Block.t; qc : Moonshot.Cert.t; tc : Moonshot.Tc.t option }
      (** Leader's proposal for round [block.view], justified by [qc]
          (and, after a view change, by the TC of the previous round). *)
  | Vote of { block : Block.t }
      (** Unicast to the leader of the next round, which aggregates. *)
  | Timeout of { round : int; high_qc : Moonshot.Cert.t }
      (** All-to-all view-change request carrying the sender's high QC. *)
  | Block_request of { hash : Hash.t }
      (** Synchronizer: ask a peer for a missing block (unicast). *)
  | Blocks_response of { blocks : Block.t list }
      (** Synchronizer: a chain segment, oldest first (unicast). *)

val size : t -> int

(** Receiver-side processing cost (ms).  Unlike Moonshot, a Jolteon replica
    first meets each QC inside a proposal (it never saw the votes, which
    went to the aggregator), so it verifies the full quorum of signatures
    there; symmetrically, only the aggregator pays for vote verification —
    the per-node imbalance the paper points out for aggregator-based
    protocols. *)
val cpu_cost : t -> float

(** Coarse class for Byzantine behaviours and trace statistics. *)
val classify : t -> [ `Proposal | `Vote | `Timeout | `Other ]

(** Payload bytes carried in-band (proposal block bodies, sync responses);
    0 for header-only traffic.  See
    {!Bft_types.Protocol_intf.S.payload_bytes}. *)
val payload_bytes : t -> int

(** The round a message belongs to ([None] for synchronizer traffic); used
    for per-view message/byte accounting in traces. *)
val view_of : t -> int option

(** Canonical content digest for model-checker state hashing (signer
    counts excluded, as in {!Moonshot.Message.digest}). *)
val digest : t -> Hash.t

(** [(round, 1)] for votes — a correct replica votes at most once per round
    — and [None] for everything else. *)
val vote_slot : t -> (int * int) option

val pp : Format.formatter -> t -> unit
