open Bft_types
module Wire = Bft_net.Wire
module W = Wire.W
module R = Wire.R
module C = Moonshot.Codec

let tag = function
  | Jolteon_msg.Propose _ -> 0x21
  | Jolteon_msg.Vote _ -> 0x22
  | Jolteon_msg.Timeout _ -> 0x23
  | Jolteon_msg.Block_request _ -> 0x24
  | Jolteon_msg.Blocks_response _ -> 0x25

let encode (m : Jolteon_msg.t) =
  Wire.encode_body ~tag:(tag m) (fun w ->
      match m with
      | Jolteon_msg.Propose { block; qc; tc } ->
          C.write_block_data w block;
          C.write_cert w qc;
          W.option w C.write_tc tc
      | Jolteon_msg.Vote { block } -> C.write_block w block
      | Jolteon_msg.Timeout { round; high_qc } ->
          W.uvar w round;
          C.write_cert w high_qc
      | Jolteon_msg.Block_request { hash } -> W.u64 w (Hash.to_int64 hash)
      | Jolteon_msg.Blocks_response { blocks } ->
          W.list w C.write_block_data blocks)

let decode body =
  Wire.decode_body body (fun tag r ->
      match tag with
      | 0x21 ->
          let block = C.read_block_data r in
          let qc = C.read_cert r in
          let tc = R.option r C.read_tc in
          Jolteon_msg.Propose { block; qc; tc }
      | 0x22 -> Jolteon_msg.Vote { block = C.read_block r }
      | 0x23 ->
          let round = R.uvar r in
          let high_qc = C.read_cert r in
          Jolteon_msg.Timeout { round; high_qc }
      | 0x24 -> Jolteon_msg.Block_request { hash = Hash.of_int64 (R.u64 r) }
      | 0x25 ->
          Jolteon_msg.Blocks_response { blocks = R.list r C.read_block_data }
      | t -> Wire.bad_tag t)

let encode_msg = encode
let decode_msg body = Result.map_error Wire.error_to_string (decode body)
