open Bft_types

type t =
  | Propose of { block : Block.t; qc : Moonshot.Cert.t; tc : Moonshot.Tc.t option }
  | Vote of { block : Block.t }
  | Timeout of { round : int; high_qc : Moonshot.Cert.t }
  | Block_request of { hash : Hash.t }
  | Blocks_response of { blocks : Block.t list }

(* Constant wire sizes and CPU costs precomputed at module init, mirroring
   Bft_core.Message: votes and timeouts are the O(n^2)-per-round traffic. *)
let timeout_base_size =
  Wire_size.tag + Wire_size.view + Wire_size.signature + Wire_size.node_id

let block_request_size = Wire_size.tag + Wire_size.hash + Wire_size.node_id

let size = function
  | Propose { block; qc; tc } ->
      let tc_size = match tc with None -> 0 | Some t -> Moonshot.Tc.wire_size t in
      Wire_size.tag
      + Wire_size.block ~payload_bytes:block.Block.payload.Payload.size_bytes
      + Wire_size.signature + Moonshot.Cert.wire_size qc + tc_size
  | Vote _ -> Wire_size.vote
  | Timeout { high_qc; _ } -> timeout_base_size + Moonshot.Cert.wire_size high_qc
  | Block_request _ -> block_request_size
  | Blocks_response { blocks } ->
      Wire_size.tag
      + List.fold_left
          (fun acc (b : Block.t) ->
            acc + Wire_size.block ~payload_bytes:b.Block.payload.Payload.size_bytes)
          0 blocks

let vote_cost = Bft_types.Cpu_model.verify_signatures 1
let timeout_cost = Bft_types.Cpu_model.(verify_signatures 1 +. cache_check_ms)

let cpu_cost =
  let open Bft_types.Cpu_model in
  function
  | Propose { block; qc; tc } ->
      let tc_sigs = match tc with None -> 0 | Some t -> t.Moonshot.Tc.signers in
      verify_signatures (1 + qc.Moonshot.Cert.signers + tc_sigs)
      +. hash_payload block.Block.payload.Payload.size_bytes
  | Vote _ -> vote_cost
  | Timeout _ -> timeout_cost
  | Block_request _ -> cache_check_ms
  | Blocks_response { blocks } ->
      List.fold_left
        (fun acc (b : Block.t) ->
          acc +. hash_payload b.Block.payload.Payload.size_bytes +. cache_check_ms)
        0. blocks

(* Payload bytes carried in-band; votes ship only the block header. *)
let payload_bytes = function
  | Propose { block; _ } -> block.Block.payload.Payload.size_bytes
  | Vote _ | Timeout _ | Block_request _ -> 0
  | Blocks_response { blocks } ->
      List.fold_left
        (fun acc (b : Block.t) -> acc + b.Block.payload.Payload.size_bytes)
        0 blocks

let classify = function
  | Propose _ -> `Proposal
  | Vote _ -> `Vote
  | Timeout _ -> `Timeout
  | Block_request _ | Blocks_response _ -> `Other

let view_of = function
  | Propose { block; _ } | Vote { block } -> Some block.Block.view
  | Timeout { round; _ } -> Some round
  | Block_request _ | Blocks_response _ -> None

let digest =
  let h = Hash.to_int64 in
  let bh (b : Block.t) = h b.Block.hash in
  function
  | Propose { block; qc; tc } ->
      let tc_d =
        match tc with None -> Hash.null | Some t -> Moonshot.Tc.digest t
      in
      Hash.of_fields [ 1L; bh block; h (Moonshot.Cert.digest qc); h tc_d ]
  | Vote { block } -> Hash.of_fields [ 2L; bh block ]
  | Timeout { round; high_qc } ->
      Hash.of_fields
        [ 3L; Int64.of_int round; h (Moonshot.Cert.digest high_qc) ]
  | Block_request { hash } -> Hash.of_fields [ 4L; h hash ]
  | Blocks_response { blocks } -> Hash.of_fields (5L :: List.map bh blocks)

(* One vote per round ([last_voted_round]); slot index 1 lines up with
   Moonshot's main-vote slot so checker reports read uniformly. *)
let vote_slot = function
  | Vote { block } -> Some (block.Block.view, 1)
  | Propose _ | Timeout _ | Block_request _ | Blocks_response _ -> None

let pp ppf = function
  | Propose { block; qc; tc } ->
      Format.fprintf ppf "j-propose(%a, %a, tc=%b)" Block.pp block
        Moonshot.Cert.pp qc (Option.is_some tc)
  | Vote { block } -> Format.fprintf ppf "j-vote(%a)" Block.pp block
  | Timeout { round; high_qc } ->
      Format.fprintf ppf "j-timeout(r=%d, %a)" round Moonshot.Cert.pp high_qc
  | Block_request { hash } -> Format.fprintf ppf "j-block-request(%a)" Hash.pp hash
  | Blocks_response { blocks } ->
      Format.fprintf ppf "j-blocks-response(%d blocks)" (List.length blocks)
