open Bft_types

type t =
  | Propose of { block : Block.t; qc : Moonshot.Cert.t; tc : Moonshot.Tc.t option }
  | Vote of { block : Block.t }
  | Timeout of { round : int; high_qc : Moonshot.Cert.t }
  | Block_request of { hash : Hash.t }
  | Blocks_response of { blocks : Block.t list }

let size = function
  | Propose { block; qc; tc } ->
      let tc_size = match tc with None -> 0 | Some t -> Moonshot.Tc.wire_size t in
      Wire_size.tag
      + Wire_size.block ~payload_bytes:block.Block.payload.Payload.size_bytes
      + Wire_size.signature + Moonshot.Cert.wire_size qc + tc_size
  | Vote _ -> Wire_size.vote
  | Timeout { high_qc; _ } ->
      Wire_size.tag + Wire_size.view + Wire_size.signature + Wire_size.node_id
      + Moonshot.Cert.wire_size high_qc
  | Block_request _ -> Wire_size.tag + Wire_size.hash + Wire_size.node_id
  | Blocks_response { blocks } ->
      Wire_size.tag
      + List.fold_left
          (fun acc (b : Block.t) ->
            acc + Wire_size.block ~payload_bytes:b.Block.payload.Payload.size_bytes)
          0 blocks

let cpu_cost =
  let open Bft_types.Cpu_model in
  function
  | Propose { block; qc; tc } ->
      let tc_sigs = match tc with None -> 0 | Some t -> t.Moonshot.Tc.signers in
      verify_signatures (1 + qc.Moonshot.Cert.signers + tc_sigs)
      +. hash_payload block.Block.payload.Payload.size_bytes
  | Vote _ -> verify_signatures 1
  | Timeout _ -> verify_signatures 1 +. cache_check_ms
  | Block_request _ -> cache_check_ms
  | Blocks_response { blocks } ->
      List.fold_left
        (fun acc (b : Block.t) ->
          acc +. hash_payload b.Block.payload.Payload.size_bytes +. cache_check_ms)
        0. blocks

let classify = function
  | Propose _ -> `Proposal
  | Vote _ -> `Vote
  | Timeout _ -> `Timeout
  | Block_request _ | Blocks_response _ -> `Other

let view_of = function
  | Propose { block; _ } | Vote { block } -> Some block.Block.view
  | Timeout { round; _ } -> Some round
  | Block_request _ | Blocks_response _ -> None

let pp ppf = function
  | Propose { block; qc; tc } ->
      Format.fprintf ppf "j-propose(%a, %a, tc=%b)" Block.pp block
        Moonshot.Cert.pp qc (Option.is_some tc)
  | Vote { block } -> Format.fprintf ppf "j-vote(%a)" Block.pp block
  | Timeout { round; high_qc } ->
      Format.fprintf ppf "j-timeout(r=%d, %a)" round Moonshot.Cert.pp high_qc
  | Block_request { hash } -> Format.fprintf ppf "j-block-request(%a)" Hash.pp hash
  | Blocks_response { blocks } ->
      Format.fprintf ppf "j-blocks-response(%d blocks)" (List.length blocks)
