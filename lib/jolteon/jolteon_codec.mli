(** Wire codec for the Jolteon/HotStuff message family.

    Same contract as {!Moonshot.Codec} (round-trip, totality, exactness;
    see [docs/WIRE.md]): Jolteon reuses Moonshot's block, certificate and
    timeout-certificate encodings and occupies the disjoint tag range
    [0x21]-[0x25], so a frame from one family can never decode as the
    other. *)

(** Wire tag of a message ([0x21]-[0x25]). *)
val tag : Jolteon_msg.t -> int

(** Frame body (version, tag, fields); the transport adds the length
    prefix. *)
val encode : Jolteon_msg.t -> string

(** Total inverse of {!encode} with structured errors. *)
val decode : string -> (Jolteon_msg.t, Bft_net.Wire.error) result

(** {!encode} / {!decode} under the names and error type
    {!Bft_types.Protocol_intf.S} requires. *)
val encode_msg : Jolteon_msg.t -> string

val decode_msg : string -> (Jolteon_msg.t, string) result
