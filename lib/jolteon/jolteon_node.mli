(** The Jolteon replica (baseline protocol of the paper's evaluation).

    Two-chain commit rule (a block commits when its direct child in the
    consecutive round is certified), votes unicast to the next leader who
    aggregates them into a QC and carries it in its own proposal, all-to-all
    timeouts with high QCs and a quadratic view change.  Round timers are
    4 Delta (Table I's view length). *)

open Bft_types

type t

(** [commit_depth] (default 2) selects the consecutive-view commit rule:
    2 is Jolteon's two-chain; 3 yields the chained-HotStuff baseline exposed
    by {!Hotstuff}.  With [?wal], the node records its safety-critical state
    (round, high QC, vote and timeout slots) before every binding send, and
    {!start} resumes from it when it already holds a record — crash
    recovery, see {!Moonshot.Wal}. *)
val create :
  ?equivocate:bool ->
  ?commit_depth:int ->
  ?wal:Moonshot.Wal.t ->
  Jolteon_msg.t Env.t ->
  t
val start : t -> unit
val handle : t -> src:int -> Jolteon_msg.t -> unit

(** {2 Introspection (tests, metrics)} *)

val current_round : t -> int
val high_qc : t -> Moonshot.Cert.t
val committed : t -> int
val commit_log : t -> Bft_chain.Commit_log.t
val store : t -> Bft_chain.Block_store.t

module Protocol :
  Bft_types.Protocol_intf.S with type msg = Jolteon_msg.t and type node = t
