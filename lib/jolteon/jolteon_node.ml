open Bft_types
module Cert = Moonshot.Cert
module Tc = Moonshot.Tc
module Node_core = Moonshot.Node_core
module Wal = Moonshot.Wal

type tmo_entry = {
  signers : Bft_crypto.Signer_set.t;
  mutable high : Cert.t;
  mutable amplified : bool;
  mutable tc_formed : bool;
}

type pending = P of Block.t * Cert.t * Tc.t option

type how_entered = Via_qc of Cert.t | Via_tc of Tc.t | Via_start | Via_recovery

type t = {
  core : Jolteon_msg.t Node_core.t;
  env : Jolteon_msg.t Env.t;
  mutable sync : Jolteon_msg.t Moonshot.Sync.t option;
  wal : Wal.t option;
  equivocate : bool;
  commit_depth : int;
  timeout_aggs : (int, tmo_entry) Hashtbl.t;
  tcs : (int, Tc.t) Hashtbl.t;
  pending : (int, pending list) Hashtbl.t;
  timeout_sent : (int, unit) Hashtbl.t;
  mutable cur_round : int;
  mutable last_voted_round : int;
  mutable timeout_round : int;  (* highest round a timeout was sent for *)
  mutable cancel_timer : unit -> unit;
}

let round_timer_multiplier = 4.

let create ?(equivocate = false) ?(commit_depth = 2) ?wal env =
  if commit_depth < 2 then invalid_arg "Jolteon_node.create: commit_depth < 2";
  let t =
  {
    core = Node_core.create env;
    env;
    sync = None;
    wal;
    equivocate;
    commit_depth;
    timeout_aggs = Hashtbl.create 16;
    tcs = Hashtbl.create 16;
    pending = Hashtbl.create 16;
    timeout_sent = Hashtbl.create 16;
    cur_round = 0;
    last_voted_round = 0;
    timeout_round = 0;
    cancel_timer = (fun () -> ());
  }
  in
  t.sync <-
    Some
      (Moonshot.Sync.create ~core:t.core ~env
         ~make_request:(fun hash -> Jolteon_msg.Block_request { hash })
         ~make_response:(fun blocks -> Jolteon_msg.Blocks_response { blocks }));
  t

let sync t = Option.get t.sync

(* Persist the safety-critical state before the message that makes it
   binding hits the wire.  Jolteon's slots map onto the shared WAL record:
   the lock is the high QC, [voted_main] says whether the current round's
   single vote was cast ([last_voted_round] is monotone, so equality with
   the current round captures it exactly). *)
let persist t =
  match t.wal with
  | None -> ()
  | Some wal ->
      Wal.record wal
        {
          Wal.cur_view = t.cur_round;
          lock = Node_core.high_cert t.core;
          timeout_view = t.timeout_round;
          voted_opt = None;
          voted_main = t.last_voted_round >= t.cur_round;
        }

let current_round t = t.cur_round
let high_qc t = Node_core.high_cert t.core
let committed t = Node_core.committed t.core
let commit_log t = Node_core.log t.core
let store t = Node_core.store t.core

let honest_block t ~round ~parent =
  Block.create ~parent ~view:round ~proposer:t.env.Env.id
    ~payload:(t.env.Env.make_payload ~view:round ~parent)

let conflicting_block t ~round ~parent =
  let honest = t.env.Env.make_payload ~view:round ~parent in
  let payload = Payload.make ~id:(-round) ~size_bytes:honest.Payload.size_bytes in
  Block.create ~parent ~view:round ~proposer:t.env.Env.id ~payload

let send_proposal t ~round ~qc ~tc =
  let parent = qc.Cert.block in
  let block = honest_block t ~round ~parent in
  Env.emit t.env (fun () ->
      let kind =
        if tc = None then Probe.Normal else Probe.Fallback
      in
      Probe.Proposal_sent { view = round; height = block.Block.height; kind });
  t.env.Env.on_propose block;
  if not t.equivocate then
    t.env.Env.multicast (Jolteon_msg.Propose { block; qc; tc })
  else begin
    let block' = conflicting_block t ~round ~parent in
    t.env.Env.on_propose block';
    let half = Env.n t.env / 2 in
    for dst = 0 to Env.n t.env - 1 do
      let b = if dst < half then block else block' in
      t.env.Env.send dst (Jolteon_msg.Propose { block = b; qc; tc })
    done
  end

let rec observe_qc t (qc : Cert.t) =
  if Node_core.record_cert t.core qc then begin
    List.iter (Node_core.commit t.core)
      (Node_core.chain_commits t.core ~depth:t.commit_depth qc);
    if qc.Cert.view >= t.cur_round then
      advance_to t (qc.Cert.view + 1) (Via_qc qc)
  end

and observe_tc t (tc : Tc.t) =
  (match tc.Tc.high_cert with Some c -> observe_qc t c | None -> ());
  if not (Hashtbl.mem t.tcs tc.Tc.view) then begin
    Hashtbl.replace t.tcs tc.Tc.view tc;
    if tc.Tc.view >= t.cur_round then advance_to t (tc.Tc.view + 1) (Via_tc tc)
  end

and send_timeout t round =
  if not (Hashtbl.mem t.timeout_sent round) then begin
    Hashtbl.replace t.timeout_sent round ();
    t.timeout_round <- max t.timeout_round round;
    persist t;
    Env.emit t.env (fun () -> Probe.Timeout_sent { view = round });
    t.env.Env.multicast
      (Jolteon_msg.Timeout { round; high_qc = Node_core.high_cert t.core })
  end

and arm_round_timer t =
  t.cancel_timer ();
  t.cancel_timer <-
    t.env.Env.set_timer
      (round_timer_multiplier *. t.env.Env.delta)
      (fun () -> on_round_timer t)

(* Rebroadcast while stuck, so view changes survive message loss. *)
and on_round_timer t =
  if Hashtbl.mem t.timeout_sent t.cur_round then
    t.env.Env.multicast
      (Jolteon_msg.Timeout
         { round = t.cur_round; high_qc = Node_core.high_cert t.core })
  else send_timeout t t.cur_round;
  arm_round_timer t

and advance_to t round how =
  if round > t.cur_round then begin
    Env.emit t.env (fun () ->
        let via =
          match how with
          | Via_qc _ -> `Cert
          | Via_tc _ -> `Tc
          | Via_start -> `Start
          | Via_recovery -> `Recovery
        in
        Probe.View_entered { view = round; via });
    t.cur_round <- round;
    persist t;
    arm_round_timer t;
    if Env.is_leader t.env ~view:round then begin
      match how with
      | Via_recovery ->
          (* A recovered leader may have proposed before the crash;
             proposing again would be honest-node equivocation. *)
          ()
      | Via_start -> send_proposal t ~round ~qc:Cert.genesis ~tc:None
      | Via_qc qc -> send_proposal t ~round ~qc ~tc:None
      | Via_tc tc ->
          (* high_qc >= every QC reported in the TC: its embedded high cert
             was observed above, so extending high_qc satisfies voters. *)
          send_proposal t ~round ~qc:(Node_core.high_cert t.core) ~tc:(Some tc)
    end;
    process_pending t
  end

and process_pending t =
  (match Hashtbl.find_opt t.pending t.cur_round with
  | None -> ()
  | Some items -> List.iter (try_vote t) (List.rev items));
  Hashtbl.iter
    (fun r _ -> if r < t.cur_round then Hashtbl.remove t.pending r)
    (Hashtbl.copy t.pending)

and try_vote t (P (block, qc, tc)) =
  let round = block.Block.view in
  let justified =
    qc.Cert.view = round - 1
    || match tc with
       | Some tc' ->
           tc'.Tc.view = round - 1 && qc.Cert.view >= Tc.high_cert_view tc'
       | None -> false
  in
  if
    round = t.cur_round
    && round > t.last_voted_round
    && t.timeout_round < round
    && block.Block.proposer = t.env.Env.leader_of round
    && Cert.certifies_parent_of qc block
    && justified
  then begin
    t.last_voted_round <- round;
    persist t;
    Env.emit t.env (fun () ->
        Probe.Vote_sent
          { view = round; height = block.Block.height; kind = "normal" });
    t.env.Env.send (t.env.Env.leader_of (round + 1)) (Jolteon_msg.Vote { block })
  end

let buffer t round p =
  if round >= t.cur_round then begin
    let items = Option.value ~default:[] (Hashtbl.find_opt t.pending round) in
    Hashtbl.replace t.pending round (p :: items)
  end

let on_timeout t ~src round high_qc =
  observe_qc t high_qc;
  let entry =
    match Hashtbl.find_opt t.timeout_aggs round with
    | Some e -> e
    | None ->
        let e =
          {
            signers = Bft_crypto.Signer_set.create ~n:(Env.n t.env);
            high = high_qc;
            amplified = false;
            tc_formed = false;
          }
        in
        Hashtbl.replace t.timeout_aggs round e;
        e
  in
  if Bft_crypto.Signer_set.add entry.signers src then begin
    if Cert.rank_gt high_qc entry.high then entry.high <- high_qc;
    let count = Bft_crypto.Signer_set.count entry.signers in
    if
      count >= Env.weak_quorum t.env
      && (not entry.amplified)
      && round >= t.cur_round
    then begin
      entry.amplified <- true;
      send_timeout t round
    end;
    if count >= Env.quorum t.env && not entry.tc_formed then begin
      entry.tc_formed <- true;
      Env.emit t.env (fun () ->
          Probe.Tc_formed { view = round; signers = count });
      observe_tc t (Tc.make ~view:round ~high_cert:(Some entry.high) ~signers:count)
    end
  end

let handle t ~src msg =
  match msg with
  | Jolteon_msg.Propose { block; qc; tc } ->
      Node_core.note_block t.core block;
      buffer t block.Block.view (P (block, qc, tc));
      observe_qc t qc;
      (match tc with Some tc' -> observe_tc t tc' | None -> ());
      process_pending t
  | Jolteon_msg.Vote { block } -> (
      (* Only the designated aggregator (next round's leader) receives
         votes; it turns a quorum into a QC. *)
      match
        Node_core.add_vote t.core ~signer:src ~kind:Moonshot.Vote_kind.Normal
          block
      with
      | Some qc ->
          Env.emit t.env (fun () ->
              Probe.Cert_formed
                {
                  view = qc.Cert.view;
                  height = qc.Cert.block.Block.height;
                  signers = qc.Cert.signers;
                });
          observe_qc t qc
      | None -> ())
  | Jolteon_msg.Timeout { round; high_qc } -> on_timeout t ~src round high_qc
  | Jolteon_msg.Block_request { hash } ->
      Moonshot.Sync.handle_request (sync t) ~src hash
  | Jolteon_msg.Blocks_response { blocks } ->
      Moonshot.Sync.handle_response (sync t) blocks

let handle t ~src msg =
  handle t ~src msg;
  Moonshot.Sync.poke (sync t)

let start t =
  match Option.map Wal.load t.wal with
  | Some (Some saved) ->
      (* Crash recovery: resume from the recorded round with the recorded
         high QC and vote slot; the block synchronizer refills the store. *)
      ignore (Node_core.record_cert t.core saved.Wal.lock);
      advance_to t saved.Wal.cur_view Via_recovery;
      t.timeout_round <- saved.Wal.timeout_view;
      t.last_voted_round <-
        (if saved.Wal.voted_main then saved.Wal.cur_view
         else saved.Wal.cur_view - 1);
      (* Re-persist: a second crash must still see the restored slots. *)
      persist t
  | Some None | None -> advance_to t 1 Via_start

(* --- model-checker support ----------------------------------------------- *)

(* Hashtable-keyed pieces combine per-entry digests with addition
   (iteration-order independent); everything else hashes as a sequence.
   Timer state lives in the engine and is digested by the checker. *)
let state_hash t =
  let h = Hash.to_int64 in
  let table_h tbl per_entry =
    Hashtbl.fold (fun k v acc -> Int64.add acc (per_entry k v)) tbl 0L
  in
  let aggs_h =
    table_h t.timeout_aggs (fun round (e : tmo_entry) ->
        (* Signers are inert once the TC formed — see Node_core.state_hash. *)
        h
          (Hash.of_fields
             (Int64.of_int round
             :: h (Cert.digest e.high)
             :: (if e.amplified then 1L else 0L)
             ::
             (if e.tc_formed then [ 1L ]
              else
                0L
                :: List.map Int64.of_int
                     (Bft_crypto.Signer_set.to_list e.signers)))))
  in
  let tcs_h =
    table_h t.tcs (fun round tc ->
        h (Hash.of_fields [ Int64.of_int round; h (Tc.digest tc) ]))
  in
  let pending_h =
    table_h t.pending (fun round items ->
        h
          (Hash.of_fields
             (Int64.of_int round
             :: List.map
                  (fun (P (b, qc, tc)) ->
                    h
                      (Hash.of_fields
                         [
                           h b.Block.hash;
                           h (Cert.digest qc);
                           (match tc with
                           | None -> 0L
                           | Some tc' -> h (Tc.digest tc'));
                         ]))
                  items)))
  in
  let timeout_sent_h =
    table_h t.timeout_sent (fun round () -> Int64.of_int (round + 1))
  in
  Hash.of_fields
    [
      h (Node_core.state_hash t.core);
      h (Moonshot.Sync.state_hash (sync t));
      aggs_h;
      tcs_h;
      pending_h;
      timeout_sent_h;
      Int64.of_int t.cur_round;
      Int64.of_int t.last_voted_round;
      Int64.of_int t.timeout_round;
    ]

(* The WAL's lock slot may lag the in-memory high QC: [observe_qc] records
   certificates without persisting when no round advance follows.  Recovery
   tolerates that (the synchronizer and peers re-supply newer QCs), so the
   invariant is only that memory never falls behind the log. *)
let wal_consistent t =
  match t.wal with
  | None -> true
  | Some wal -> (
      match Wal.load wal with
      | None -> t.cur_round = 0
      | Some s ->
          s.Wal.cur_view = t.cur_round
          && Cert.rank_geq (Node_core.high_cert t.core) s.Wal.lock
          && s.Wal.timeout_view = t.timeout_round
          && s.Wal.voted_main = (t.last_voted_round >= t.cur_round))

module Protocol = struct
  type msg = Jolteon_msg.t

  let msg_size = Jolteon_msg.size
  let cpu_cost = Jolteon_msg.cpu_cost
  let payload_bytes = Jolteon_msg.payload_bytes
  let classify = Jolteon_msg.classify
  let view_of = Jolteon_msg.view_of
  let encode_msg = Jolteon_codec.encode_msg
  let decode_msg = Jolteon_codec.decode_msg

  type node = t
  type wal = Wal.t

  let wal_create = Wal.create
  let wal_encode = Moonshot.Codec.encode_wal
  let wal_decode = Moonshot.Codec.decode_wal
  let create ?(equivocate = false) ?wal env = create ~equivocate ?wal env
  let start = start
  let handle = handle
  let msg_digest = Jolteon_msg.digest
  let pp_msg = Jolteon_msg.pp
  let vote_slot = Jolteon_msg.vote_slot
  let state_hash = state_hash
  let current_view = current_round
  let lock_view t = (Node_core.high_cert t.core).Cert.view
  let wal_hash = Wal.digest
  let wal_consistent = wal_consistent
end
