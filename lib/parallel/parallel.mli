(** A fixed-size domain pool for embarrassingly parallel experiment grids.

    The experiment driver's unit of work is one simulator run — seconds of
    CPU, no shared state — so the pool is deliberately simple: [jobs]
    domains pull task indices from an atomic counter and write results into
    a slot array.  Results always come back in submission order, which is
    what makes a parallel sweep print byte-identical tables to a sequential
    one; tasks must not print or touch shared mutable state themselves.

    OCaml exceptions do not cross domains on their own: a raising task
    records its exception (with backtrace), the pool drains the remaining
    work, and the exception of the {e lowest-indexed} failing task is
    re-raised on the calling domain — deterministic regardless of how the
    domains interleaved. *)

(** [map ~jobs f tasks] is [List.map f tasks] computed on [min jobs
    (length tasks)] domains (the caller's domain is one of them).
    [jobs <= 1] degrades to plain [List.map] with no domain spawned. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** Domains this machine can usefully run
    ({!Domain.recommended_domain_count}). *)
val cpu_count : unit -> int

(** Apply simulation-friendly GC settings to the calling domain: a 32 M-word
    minor heap (the simulator's churn is small short-lived blocks, so a
    large nursery keeps promotion rare) and [space_overhead = 200].  {!map}
    applies it on every worker domain it spawns; CLI and bench entry points
    call it for the main domain.  GC tuning changes wall-clock only, never
    simulation results. *)
val tune_gc : unit -> unit
