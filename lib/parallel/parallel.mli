(** A fixed-size domain pool for embarrassingly parallel experiment grids.

    The experiment driver's unit of work is one simulator run — seconds of
    CPU, no shared state — so the pool is deliberately simple: [jobs]
    domains pull task indices from an atomic counter and write results into
    a slot array.  Results always come back in submission order, which is
    what makes a parallel sweep print byte-identical tables to a sequential
    one; tasks must not print or touch shared mutable state themselves.

    OCaml exceptions do not cross domains on their own: a raising task
    records its exception (with backtrace), the pool drains the remaining
    work, and the exception of the {e lowest-indexed} failing task is
    re-raised on the calling domain — deterministic regardless of how the
    domains interleaved. *)

(** [map ~jobs f tasks] is [List.map f tasks] computed on [min jobs
    (length tasks)] domains (the caller's domain is one of them).
    [jobs <= 1] degrades to plain [List.map] with no domain spawned. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** Domains this machine can usefully run
    ({!Domain.recommended_domain_count}). *)
val cpu_count : unit -> int
