let cpu_count () = Domain.recommended_domain_count ()

(* Simulation-friendly GC settings.  The simulator's steady state allocates
   small short-lived blocks (messages that escape the engine's pools, trace
   thunks, metrics conses): a 32 M-word minor heap promotes far less of that
   churn than the 256 K-word default, and a higher space overhead defers
   major-heap sliding until a run has actually built up live state.  Each
   domain has its own minor heap, so worker domains apply this themselves
   on spawn. *)
let tune_gc () =
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 22; space_overhead = 200 }

(* Each slot is written by exactly one task and read only after every domain
   has been joined, so plain arrays suffice; the join is the happens-before
   edge that publishes the writes. *)
type 'b slot =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let map ~jobs f tasks =
  match tasks with
  | [] -> []
  | _ when jobs <= 1 -> List.map f tasks
  | _ ->
      let tasks = Array.of_list tasks in
      let n = Array.length tasks in
      let jobs = min jobs n in
      let results = Array.make n Pending in
      let next = Atomic.make 0 in
      let rec worker () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
            (try Done (f tasks.(i))
             with e -> Raised (e, Printexc.get_raw_backtrace ())));
          worker ()
        end
      in
      let spawned () =
        tune_gc ();
        worker ()
      in
      let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn spawned) in
      worker ();
      Array.iter Domain.join domains;
      Array.to_list
        (Array.map
           (function
             | Done r -> r
             | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
             | Pending -> assert false)
           results)
