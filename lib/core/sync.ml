open Bft_types

let batch_size = 32

type 'msg t = {
  core : 'msg Node_core.t;
  env : 'msg Env.t;
  make_request : Hash.t -> 'msg;
  make_response : Block.t list -> 'msg;
  mutable last_request : (int * float) option;  (* hash key, send time *)
  mutable attempt : int;
  mutable timer_alive : bool;
  mutable requests_sent : int;
}

let create ~core ~env ~make_request ~make_response =
  {
    core;
    env;
    make_request;
    make_response;
    last_request = None;
    attempt = 0;
    timer_alive = false;
    requests_sent = 0;
  }

let requests_sent t = t.requests_sent

(* Wall-clock values (the last request's send time) and the request counter
   are excluded: the model checker runs on a logical clock, and including
   real times would make behaviourally equivalent states digest apart.
   This abstracts the [recently_asked] rate limit — a documented, safe
   over-approximation (it can only make the checker explore more). *)
let state_hash t =
  Hash.of_fields
    [
      (match t.last_request with
      | None -> 0L
      | Some (k, _) ->
          Hash.to_int64 (Hash.of_fields [ 1L; Int64.of_int k ]));
      Int64.of_int t.attempt;
      (if t.timer_alive then 1L else 0L);
    ]

(* Pick a target: the hinted proposer first, then rotate through the other
   peers (excluding ourselves) on each retry. *)
let target t ~hint =
  let n = Env.n t.env in
  let rec pick candidate =
    if candidate <> t.env.Env.id then candidate
    else pick ((candidate + 1) mod n)
  in
  pick ((hint + t.attempt) mod n)

let rec poke t =
  match Node_core.first_missing t.core with
  | None ->
      t.last_request <- None;
      t.attempt <- 0
  | Some (missing, hint) ->
      let now = t.env.Env.now () in
      let key = Hash.to_int missing in
      let recently_asked =
        match t.last_request with
        | Some (k, at) -> k = key && now -. at < t.env.Env.delta
        | None -> false
      in
      if not recently_asked then begin
        (match t.last_request with
        | Some (k, _) when k = key -> t.attempt <- t.attempt + 1
        | Some _ | None -> t.attempt <- 0);
        t.last_request <- Some (key, now);
        t.requests_sent <- t.requests_sent + 1;
        Env.emit t.env (fun () -> Probe.Sync_request { attempt = t.attempt });
        t.env.Env.send (target t ~hint) (t.make_request missing)
      end;
      if not t.timer_alive then begin
        t.timer_alive <- true;
        let (_cancel : unit -> unit) =
          t.env.Env.set_timer t.env.Env.delta (fun () ->
              t.timer_alive <- false;
              poke t)
        in
        ()
      end

let handle_request t ~src hash =
  match Node_core.chain_segment t.core hash ~max:batch_size with
  | [] -> ()
  | blocks -> t.env.Env.send src (t.make_response blocks)

let handle_response t blocks =
  List.iter (Node_core.note_block t.core) blocks;
  poke t
