(** Block certificates.

    A block certificate [C_v(B_k)] is a quorum of distinct signed votes of a
    single kind for [B_k] in view [v].  Certificates are ranked by view:
    [C_v <= C_v'] iff [v <= v'] (Section II-B).  The certified block header
    travels with the certificate so ranking, extension checks and commits
    never need a separate block fetch. *)

open Bft_types

type t = private {
  kind : Vote_kind.t;
  view : int;
  block : Block.t;
  signers : int;  (** Number of aggregated signatures (for wire size). *)
}

(** [make ~kind ~view ~block ~signers] — raises [Invalid_argument] unless
    [view = block.view] and [signers >= 1]. *)
val make : kind:Vote_kind.t -> view:int -> block:Block.t -> signers:int -> t

(** The well-known certificate for the genesis block (view 0), locked by
    every node at protocol start. *)
val genesis : t

(** Rank comparison: by view only; the kind never matters for ranking. *)
val rank_compare : t -> t -> int

val rank_geq : t -> t -> bool
val rank_gt : t -> t -> bool

(** Identity: same view, kind and certified block. *)
val equal_id : t -> t -> bool

(** Canonical digest for model-checker state hashing.  Consistent with
    {!equal_id}: the signer count does not participate, so two certificates
    the protocol deduplicates as identical digest identically. *)
val digest : t -> Bft_types.Hash.t

(** [certifies_parent_of t b] is true when [b] directly extends the block
    certified by [t]. *)
val certifies_parent_of : t -> Block.t -> bool

val wire_size : t -> int
val pp : Format.formatter -> t -> unit
