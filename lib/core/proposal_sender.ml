open Bft_types

let honest_block env ~view ~parent =
  Block.create ~parent ~view ~proposer:env.Env.id
    ~payload:(env.Env.make_payload ~view ~parent)

let conflicting_block env ~view ~parent =
  let honest = env.Env.make_payload ~view ~parent in
  let payload = Payload.make ~id:(-view) ~size_bytes:honest.Payload.size_bytes in
  Block.create ~parent ~view ~proposer:env.Env.id ~payload

let send env ~equivocate ~view ~parent wrap =
  let block = honest_block env ~view ~parent in
  Env.emit env (fun () ->
      let kind =
        match wrap block with
        | Message.Opt_propose _ -> Probe.Optimistic
        | Message.Fb_propose _ -> Probe.Fallback
        | _ -> Probe.Normal
      in
      Probe.Proposal_sent { view; height = block.Block.height; kind });
  env.Env.on_propose block;
  if not equivocate then env.Env.multicast (wrap block)
  else begin
    let block' = conflicting_block env ~view ~parent in
    env.Env.on_propose block';
    let half = Env.n env / 2 in
    for dst = 0 to Env.n env - 1 do
      env.Env.send dst (wrap (if dst < half then block else block'))
    done
  end
