(** Write-ahead log for crash recovery.

    A BFT replica that forgets its voting state can be made to vote twice in
    a view after a restart, breaking quorum intersection and with it safety.
    Production deployments persist the safety-critical slice of state to
    disk before any vote hits the wire; this module is the in-memory
    stand-in the simulation uses (a real deployment would back {!record}
    with an fsync'd file).

    The node records {!state} {e before} sending the message that makes it
    binding; on restart, {!Pipelined_node.create} with the same log resumes
    from the recorded view with its vote slots and lock intact, and the
    block {!Sync} refills everything else. *)

open Bft_types

type t

(** The safety-critical state: current view, lock, highest timeout view and
    the vote slots for the current view. *)
type state = {
  cur_view : int;
  lock : Cert.t;
  timeout_view : int;
  voted_opt : Block.t option;
  voted_main : bool;
}

val create : unit -> t

(** Durably replace the latest state (a production WAL would append and
    compact; the latest entry is all recovery needs). *)
val record : t -> state -> unit

val load : t -> state option

(** Number of records written (introspection for tests). *)
val writes : t -> int

(** Canonical digest of a recorded state. *)
val state_digest : state -> Hash.t

(** Digest of the latest record ({!Hash.null} when empty).  The write
    counter is excluded: recovery reads only the latest record, so logs
    with equal latest records are behaviourally equivalent. *)
val digest : t -> Hash.t
