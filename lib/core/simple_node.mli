(** Simple Moonshot (Figure 1).

    The first Moonshot protocol: one untyped vote per view, locks updated
    only on view transitions, status messages reporting locks to the next
    leader, a 2-Delta proposal wait after entering a view without the
    previous view's certificate, and a 5-Delta view timer.  Optimistically
    responsive only under consecutive honest leaders. *)

open Bft_types

type t

(** With [?wal], the node records its safety-critical state (view, lock,
    vote slot, timeout flag) before every binding action, and {!start}
    resumes from it when it already holds a record — crash recovery, see
    {!Wal}. *)
val create : ?equivocate:bool -> ?wal:Wal.t -> Message.t Env.t -> t
val start : t -> unit
val handle : t -> src:int -> Message.t -> unit

(** {2 Introspection (tests, metrics)} *)

val current_view : t -> int
val lock : t -> Cert.t
val committed : t -> int
val commit_log : t -> Bft_chain.Commit_log.t
val store : t -> Bft_chain.Block_store.t

module Protocol : Bft_types.Protocol_intf.S with type msg = Message.t and type node = t
