open Bft_types
open Bft_chain

type 'msg t = {
  env : 'msg Env.t;
  store : Block_store.t;
  log : Commit_log.t;
  votes : (int * int * int) Bft_crypto.Accumulator.t;
  certs_by_view : (int, Cert.t list) Hashtbl.t;
  mutable high_cert : Cert.t;
  mutable deferred_commits : Block.t list;
}

let create env =
  let t =
    {
      env;
      store = Block_store.create ();
      log = Commit_log.create ~on_commit:env.Env.on_commit ();
      votes =
        Bft_crypto.Accumulator.create ~n:(Env.n env)
          ~threshold:(Env.quorum env);
      certs_by_view = Hashtbl.create 64;
      high_cert = Cert.genesis;
      deferred_commits = [];
    }
  in
  (* The genesis certificate is common knowledge at protocol start. *)
  Hashtbl.replace t.certs_by_view 0 [ Cert.genesis ];
  t

let env t = t.env
let store t = t.store
let log t = t.log
let high_cert t = t.high_cert

let try_deferred t =
  match t.deferred_commits with
  | [] -> ()
  | pending ->
      let still_deferred =
        List.filter
          (fun b ->
            match Block_store.chain_to t.store b with
            | Some _ ->
                ignore (Commit_log.commit t.log t.store b);
                false
            | None -> true)
          pending
      in
      t.deferred_commits <- still_deferred

let note_block t b =
  if Block_store.insert t.store b then try_deferred t

let vote_key ~kind (b : Block.t) =
  (b.Block.view, Vote_kind.to_tag kind, Hash.to_int b.Block.hash)

let add_vote t ~signer ~kind block =
  note_block t block;
  match Bft_crypto.Accumulator.add t.votes (vote_key ~kind block) ~signer with
  | Threshold_reached signers ->
      Some
        (Cert.make ~kind ~view:block.Block.view ~block
           ~signers:(Bft_crypto.Signer_set.count signers))
  | Added _ | Duplicate | Already_complete -> None

let certs_at t view =
  Option.value ~default:[] (Hashtbl.find_opt t.certs_by_view view)

let record_cert t (c : Cert.t) =
  note_block t c.Cert.block;
  let existing = certs_at t c.Cert.view in
  if List.exists (Cert.equal_id c) existing then false
  else begin
    Hashtbl.replace t.certs_by_view c.Cert.view (c :: existing);
    if Cert.rank_gt c t.high_cert then t.high_cert <- c;
    true
  end

let chain_commits t ~depth (c : Cert.t) =
  if depth < 2 then invalid_arg "Node_core.chain_commits: depth < 2";
  (* For every window of [depth] consecutive views containing c's view, walk
     parent links down from the window's top certificates; a fully certified
     chain commits the block at the window's base view. *)
  let found = ref [] in
  for base = Stdlib.max 0 (c.Cert.view - depth + 1) to c.Cert.view do
    let top_view = base + depth - 1 in
    List.iter
      (fun (top : Cert.t) ->
        let rec walk (child : Block.t) v =
          if v < base then Some child
          else
            match
              List.find_opt
                (fun (link : Cert.t) -> Cert.certifies_parent_of link child)
                (certs_at t v)
            with
            | Some link -> walk link.Cert.block (v - 1)
            | None -> None
        in
        match walk top.Cert.block (top_view - 1) with
        | Some bottom
          when not
                 (List.exists
                    (fun (b : Block.t) -> Block.equal b bottom)
                    !found) ->
            found := bottom :: !found
        | Some _ | None -> ())
      (certs_at t top_view)
  done;
  !found

let two_chain_commits t c = chain_commits t ~depth:2 c

let commit t b =
  match Block_store.chain_to t.store b with
  | Some _ -> ignore (Commit_log.commit t.log t.store b)
  | None ->
      if
        not
          (List.exists
             (fun (d : Block.t) -> Hash.equal d.Block.hash b.Block.hash)
             t.deferred_commits)
      then t.deferred_commits <- b :: t.deferred_commits

let committed t = Commit_log.length t.log

let has_deferred t = t.deferred_commits <> []

let first_missing t =
  let rec probe (child : Block.t) =
    if Block.is_genesis child then None
    else
      match Block_store.find t.store child.Block.parent with
      | Some parent -> probe parent
      | None -> Some (child.Block.parent, child.Block.proposer)
  in
  List.find_map probe t.deferred_commits

(* Hashtable-backed pieces (store, vote accumulator, cert table) combine
   per-entry digests with addition so the result is independent of
   iteration order; ordered pieces (commit log, per-view cert lists,
   deferred list) hash as sequences. *)
let state_hash t =
  let h = Hash.to_int64 in
  let bh (b : Block.t) = h b.Block.hash in
  let store_h =
    Block_store.fold (fun b acc -> Int64.add acc (bh b)) t.store 0L
  in
  let log_h = Hash.of_fields (List.map bh (Commit_log.to_list t.log)) in
  let votes_h =
    Bft_crypto.Accumulator.fold
      (fun (view, tag, bkey) ~signers ~complete acc ->
        (* Once complete, extra signers are behaviorally inert (the
           certificate is already out; late votes only feed dedup), so they
           are excluded — post-quorum vote-arrival orders collapse. *)
        Int64.add acc
          (h
             (Hash.of_fields
                (Int64.of_int view :: Int64.of_int tag :: Int64.of_int bkey
                ::
                (if complete then [ 1L ]
                 else
                   0L
                   :: List.map Int64.of_int
                        (Bft_crypto.Signer_set.to_list signers))))))
      t.votes 0L
  in
  let certs_h =
    Hashtbl.fold
      (fun view certs acc ->
        Int64.add acc
          (h
             (Hash.of_fields
                (Int64.of_int view
                :: List.map (fun c -> h (Cert.digest c)) certs))))
      t.certs_by_view 0L
  in
  let deferred_h = Hash.of_fields (List.map bh t.deferred_commits) in
  Hash.of_fields
    [
      store_h;
      h log_h;
      votes_h;
      certs_h;
      h deferred_h;
      h (Cert.digest t.high_cert);
    ]

let chain_segment t hash ~max =
  match Block_store.find t.store hash with
  | None -> []
  | Some b ->
      let rec gather acc count (b : Block.t) =
        let acc = b :: acc in
        if count + 1 >= max || Block.is_genesis b then acc
        else
          match Block_store.find t.store b.Block.parent with
          | Some parent -> gather acc (count + 1) parent
          | None -> acc
      in
      gather [] 0 b
