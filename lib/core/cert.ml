open Bft_types

type t = { kind : Vote_kind.t; view : int; block : Block.t; signers : int }

let make ~kind ~view ~block ~signers =
  if view <> block.Block.view then
    invalid_arg "Cert.make: view must match the certified block's view";
  if signers < 1 then invalid_arg "Cert.make: empty certificate";
  { kind; view; block; signers }

let genesis =
  { kind = Vote_kind.Normal; view = 0; block = Block.genesis; signers = 1 }

let rank_compare a b = Int.compare a.view b.view
let rank_geq a b = a.view >= b.view
let rank_gt a b = a.view > b.view

let equal_id a b =
  a.view = b.view
  && Vote_kind.equal a.kind b.kind
  && Block.equal a.block b.block

(* Signers are deliberately excluded: digest equality must coincide with
   {!equal_id}, the relation every dedup site uses, or the model checker
   would distinguish states that the protocol itself cannot tell apart. *)
let digest t =
  Hash.of_fields
    [
      0x43L;
      Int64.of_int (Vote_kind.to_tag t.kind);
      Int64.of_int t.view;
      Hash.to_int64 t.block.Block.hash;
    ]

let certifies_parent_of t b = Block.extends_hash b ~parent_hash:t.block.Block.hash
let wire_size t = Wire_size.certificate ~signers:t.signers

let pp ppf t =
  Format.fprintf ppf "C_%d^%a(%a)" t.view Vote_kind.pp t.kind Block.pp t.block
