(** Block synchronizer: fetches missing ancestors so deferred commits can
    complete.

    A node that was partitioned (or started late) can receive certificates
    for the chain's tip while lacking the blocks in between; its commits
    defer inside {!Node_core} until the ancestors arrive.  This module
    drives the catch-up: it requests the first missing ancestor from the
    proposer of its known child (who certainly held it when extending it),
    rotates to other peers on retry (the hinted proposer may be Byzantine),
    and answers peers' requests with chain segments from the local store.

    Generic over the protocol's message type: each protocol supplies its
    request/response constructors, so Moonshot and Jolteon share the
    implementation. *)

open Bft_types

type 'msg t

(** How many blocks a single response may carry. *)
val batch_size : int

val create :
  core:'msg Node_core.t ->
  env:'msg Env.t ->
  make_request:(Hash.t -> 'msg) ->
  make_response:(Block.t list -> 'msg) ->
  'msg t

(** Call whenever local state changed (any message handled): requests the
    first missing ancestor if a commit is deferred, at most once per Delta
    per target, and keeps a retry timer alive until nothing is missing. *)
val poke : 'msg t -> unit

(** Serve a peer's request for [hash] from the local store (no-op when the
    block is unknown). *)
val handle_request : 'msg t -> src:int -> Hash.t -> unit

(** Ingest a response batch; completes deferred commits and re-{!poke}s. *)
val handle_response : 'msg t -> Block.t list -> unit

(** Number of sync requests sent (introspection for tests). *)
val requests_sent : 'msg t -> int

(** Canonical digest of the synchronizer's control state for model-checker
    state matching.  The last request's send time and the request counter
    are excluded (wall-clock values and statistics; see the implementation
    note on the [recently_asked] abstraction). *)
val state_hash : 'msg t -> Hash.t
