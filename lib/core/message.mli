(** Wire messages of the Moonshot protocols.

    One message type serves all three protocols; each protocol simply never
    emits the constructors it does not use (e.g. Simple Moonshot never sends
    [Fb_propose] or [Commit_vote], Pipelined Moonshot never sends [Status]).
    Sender authentication is provided by the simulator's authenticated
    channels, so a [Vote] from source [i] is [i]'s signed vote. *)

open Bft_types

type t =
  | Opt_propose of { block : Block.t }
      (** Optimistic proposal for [block.view]; carries no certificate. *)
  | Propose of { block : Block.t; cert : Cert.t }
      (** Normal proposal: [block] extends the block certified by [cert]. *)
  | Fb_propose of { block : Block.t; cert : Cert.t; tc : Tc.t }
      (** Fallback proposal justified by a timeout certificate
          (Pipelined/Commit Moonshot only). *)
  | Vote of { kind : Vote_kind.t; block : Block.t }
      (** Multicast vote for [block] in view [block.view]. *)
  | Timeout of { view : int; lock : Cert.t option }
      (** View-change request.  [lock] present in Pipelined/Commit. *)
  | Cert_gossip of Cert.t  (** Certificate multicast on view entry. *)
  | Tc_gossip of Tc.t
      (** TC relay: multicast in Simple, unicast-to-leader in Pipelined. *)
  | Status of { view : int; lock : Cert.t }
      (** Simple Moonshot: lock report unicast to the new leader. *)
  | Commit_vote of { view : int; block : Block.t }
      (** Commit Moonshot's explicit pre-commit vote. *)
  | Block_request of { hash : Hash.t }
      (** Synchronizer: ask a peer for a missing block (unicast). *)
  | Blocks_response of { blocks : Block.t list }
      (** Synchronizer: a chain segment, oldest first (unicast). *)

val size : t -> int

(** Receiver-side processing cost (ms): fresh signatures are verified,
    already-known certificates only cost a cache lookup (a node that
    assembled a certificate from multicast votes verified each vote as it
    arrived, so gossiped copies are duplicates).  See {!Bft_types.Cpu_model}. *)
val cpu_cost : t -> float

(** Coarse class for Byzantine behaviours and trace statistics. *)
val classify : t -> [ `Proposal | `Vote | `Timeout | `Other ]

(** Payload bytes carried in-band (proposal block bodies, sync responses);
    0 for header-only traffic.  See
    {!Bft_types.Protocol_intf.S.payload_bytes}. *)
val payload_bytes : t -> int

(** The view a message belongs to ([None] for synchronizer traffic); used
    for per-view message/byte accounting in traces. *)
val view_of : t -> int option

(** Canonical content digest for model-checker state hashing and in-flight
    message deduplication.  Two messages digest equally iff the protocol
    treats them identically (certificate signer counts excluded, matching
    {!Cert.equal_id}). *)
val digest : t -> Hash.t

(** The uniqueness slot a message occupies, if any: [(view, 0)] for
    optimistic votes, [(view, 1)] for normal/fallback votes (a correct node
    fills each slot at most once per view — {!Safety_rules}).  [None] for
    everything else. *)
val vote_slot : t -> (int * int) option

val pp : Format.formatter -> t -> unit
