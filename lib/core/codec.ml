open Bft_types
module Wire = Bft_net.Wire
module W = Wire.W
module R = Wire.R

let write_payload w (p : Payload.t) =
  W.uvar w p.Payload.id;
  W.uvar w p.Payload.size_bytes

let read_payload r =
  let id = R.uvar r in
  let size_bytes = R.uvar r in
  Payload.make ~id ~size_bytes

let write_block w (b : Block.t) =
  W.u64 w (Hash.to_int64 b.Block.parent);
  W.uvar w b.Block.view;
  W.uvar w b.Block.height;
  W.svar w b.Block.proposer;
  write_payload w b.Block.payload

let read_block r =
  let parent = Hash.of_int64 (R.u64 r) in
  let view = R.uvar r in
  let height = R.uvar r in
  let proposer = R.svar r in
  let payload = read_payload r in
  Block.of_wire ~parent ~view ~height ~proposer ~payload

let write_block_data w (b : Block.t) =
  write_block w b;
  W.padding w b.Block.payload.Payload.size_bytes

let read_block_data r =
  let b = read_block r in
  R.padding r b.Block.payload.Payload.size_bytes;
  b

let write_vote_kind w k = W.u8 w (Vote_kind.to_tag k)

let read_vote_kind r =
  match R.u8 r with
  | 0 -> Vote_kind.Opt
  | 1 -> Vote_kind.Normal
  | 2 -> Vote_kind.Fallback
  | t -> R.fail (Printf.sprintf "bad vote kind 0x%02x" t)

let write_cert w (c : Cert.t) =
  write_vote_kind w c.Cert.kind;
  W.uvar w c.Cert.view;
  write_block w c.Cert.block;
  W.uvar w c.Cert.signers

(* Cert.make re-validates view = block.view and signers >= 1; an
   Invalid_argument surfaces as a decode error, not an exception. *)
let read_cert r =
  let kind = read_vote_kind r in
  let view = R.uvar r in
  let block = read_block r in
  let signers = R.uvar r in
  Cert.make ~kind ~view ~block ~signers

let write_tc w (tc : Tc.t) =
  W.uvar w tc.Tc.view;
  W.option w write_cert tc.Tc.high_cert;
  W.uvar w tc.Tc.signers

let read_tc r =
  let view = R.uvar r in
  let high_cert = R.option r read_cert in
  let signers = R.uvar r in
  Tc.make ~view ~high_cert ~signers

let tag = function
  | Message.Opt_propose _ -> 0x01
  | Message.Propose _ -> 0x02
  | Message.Fb_propose _ -> 0x03
  | Message.Vote _ -> 0x04
  | Message.Timeout _ -> 0x05
  | Message.Cert_gossip _ -> 0x06
  | Message.Tc_gossip _ -> 0x07
  | Message.Status _ -> 0x08
  | Message.Commit_vote _ -> 0x09
  | Message.Block_request _ -> 0x0a
  | Message.Blocks_response _ -> 0x0b

let encode (m : Message.t) =
  Wire.encode_body ~tag:(tag m) (fun w ->
      match m with
      | Message.Opt_propose { block } -> write_block_data w block
      | Message.Propose { block; cert } ->
          write_block_data w block;
          write_cert w cert
      | Message.Fb_propose { block; cert; tc } ->
          write_block_data w block;
          write_cert w cert;
          write_tc w tc
      | Message.Vote { kind; block } ->
          write_vote_kind w kind;
          write_block w block
      | Message.Timeout { view; lock } ->
          W.uvar w view;
          W.option w write_cert lock
      | Message.Cert_gossip c -> write_cert w c
      | Message.Tc_gossip tc -> write_tc w tc
      | Message.Status { view; lock } ->
          W.uvar w view;
          write_cert w lock
      | Message.Commit_vote { view; block } ->
          W.uvar w view;
          write_block w block
      | Message.Block_request { hash } -> W.u64 w (Hash.to_int64 hash)
      | Message.Blocks_response { blocks } -> W.list w write_block_data blocks)

let decode body =
  Wire.decode_body body (fun tag r ->
      match tag with
      | 0x01 -> Message.Opt_propose { block = read_block_data r }
      | 0x02 ->
          let block = read_block_data r in
          let cert = read_cert r in
          Message.Propose { block; cert }
      | 0x03 ->
          let block = read_block_data r in
          let cert = read_cert r in
          let tc = read_tc r in
          Message.Fb_propose { block; cert; tc }
      | 0x04 ->
          let kind = read_vote_kind r in
          let block = read_block r in
          Message.Vote { kind; block }
      | 0x05 ->
          let view = R.uvar r in
          let lock = R.option r read_cert in
          Message.Timeout { view; lock }
      | 0x06 -> Message.Cert_gossip (read_cert r)
      | 0x07 -> Message.Tc_gossip (read_tc r)
      | 0x08 ->
          let view = R.uvar r in
          let lock = read_cert r in
          Message.Status { view; lock }
      | 0x09 ->
          let view = R.uvar r in
          let block = read_block r in
          Message.Commit_vote { view; block }
      | 0x0a -> Message.Block_request { hash = Hash.of_int64 (R.u64 r) }
      | 0x0b -> Message.Blocks_response { blocks = R.list r read_block_data }
      | t -> Wire.bad_tag t)

let encode_msg = encode
let decode_msg body = Result.map_error Wire.error_to_string (decode body)

(* WAL snapshots, for durable (file-backed) write-ahead logs on the live
   transport.  Not a wire frame: no version/tag envelope — the blob lives
   in a file the same node wrote.  All five protocol variants share
   [Wal.t], so this one codec serves them all. *)

let encode_wal (wal : Wal.t) =
  let w = W.create () in
  (match Wal.load wal with
  | None -> W.u8 w 0
  | Some s ->
      W.u8 w 1;
      W.uvar w s.Wal.cur_view;
      write_cert w s.Wal.lock;
      W.uvar w s.Wal.timeout_view;
      W.option w write_block s.Wal.voted_opt;
      W.bool w s.Wal.voted_main);
  W.contents w

let decode_wal body =
  Wire.run_decoder (fun () ->
      let r = R.of_string body in
      let wal = Wal.create () in
      (match R.u8 r with
      | 0 -> ()
      | 1 ->
          let cur_view = R.uvar r in
          let lock = read_cert r in
          let timeout_view = R.uvar r in
          let voted_opt = R.option r read_block in
          let voted_main = R.bool r in
          Wal.record wal
            { Wal.cur_view; lock; timeout_view; voted_opt; voted_main }
      | t -> Wire.bad_tag t);
      R.expect_end r;
      wal)
  |> Result.map_error Wire.error_to_string
