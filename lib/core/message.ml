open Bft_types

type t =
  | Opt_propose of { block : Block.t }
  | Propose of { block : Block.t; cert : Cert.t }
  | Fb_propose of { block : Block.t; cert : Cert.t; tc : Tc.t }
  | Vote of { kind : Vote_kind.t; block : Block.t }
  | Timeout of { view : int; lock : Cert.t option }
  | Cert_gossip of Cert.t
  | Tc_gossip of Tc.t
  | Status of { view : int; lock : Cert.t }
  | Commit_vote of { view : int; block : Block.t }
  | Block_request of { hash : Hash.t }
  | Blocks_response of { blocks : Block.t list }

let proposal_base (b : Block.t) =
  Wire_size.tag
  + Wire_size.block ~payload_bytes:b.Block.payload.Payload.size_bytes
  + Wire_size.signature

(* Constant wire sizes, computed once at module init: votes, timeouts,
   commit votes and gossip headers dominate the O(n^2)-per-view traffic, and
   their sizes never depend on the payload. *)
let timeout_base_size =
  Wire_size.tag + Wire_size.view + Wire_size.signature + Wire_size.node_id

let commit_vote_size =
  Wire_size.tag + Wire_size.view + Wire_size.block_header + Wire_size.signature
  + Wire_size.node_id

let block_request_size = Wire_size.tag + Wire_size.hash + Wire_size.node_id

let size = function
  | Opt_propose { block } -> proposal_base block
  | Propose { block; cert } -> proposal_base block + Cert.wire_size cert
  | Fb_propose { block; cert; tc } ->
      proposal_base block + Cert.wire_size cert + Tc.wire_size tc
  | Vote _ -> Wire_size.vote
  | Timeout { lock; _ } ->
      let lock_size = match lock with None -> 0 | Some c -> Cert.wire_size c in
      timeout_base_size + lock_size
  | Cert_gossip c -> Wire_size.tag + Cert.wire_size c
  | Tc_gossip tc -> Wire_size.tag + Tc.wire_size tc
  | Status { lock; _ } -> timeout_base_size + Cert.wire_size lock
  | Commit_vote _ -> commit_vote_size
  | Block_request _ -> block_request_size
  | Blocks_response { blocks } ->
      Wire_size.tag
      + List.fold_left
          (fun acc (b : Block.t) ->
            acc + Wire_size.block ~payload_bytes:b.Block.payload.Payload.size_bytes)
          0 blocks

(* Constant CPU costs likewise precomputed — one cross-module call at init
   instead of one (with a boxed-float return) per send/receive. *)
let vote_cost = Cpu_model.verify_signatures 1
let timeout_cost = Cpu_model.(verify_signatures 1 +. cache_check_ms)
let gossip_cost = Cpu_model.cache_check_ms

let cpu_cost =
  let open Cpu_model in
  function
  | Opt_propose { block } ->
      vote_cost +. hash_payload block.Block.payload.Payload.size_bytes
  | Propose { block; cert = _ } ->
      (* The embedded certificate was almost always assembled locally from
         verified votes already; charge the cache check. *)
      timeout_cost +. hash_payload block.Block.payload.Payload.size_bytes
  | Fb_propose { block; cert; tc } ->
      (* Fallback proposals are rare and their TC is fresh: verify it. *)
      verify_signatures (1 + cert.Cert.signers + tc.Tc.signers)
      +. hash_payload block.Block.payload.Payload.size_bytes
  | Vote _ -> vote_cost
  | Timeout _ -> timeout_cost
  | Cert_gossip _ -> gossip_cost
  | Tc_gossip tc -> verify_signatures tc.Tc.signers
  | Status _ -> timeout_cost
  | Commit_vote _ -> vote_cost
  | Block_request _ -> gossip_cost
  | Blocks_response { blocks } ->
      List.fold_left
        (fun acc (b : Block.t) ->
          acc +. hash_payload b.Block.payload.Payload.size_bytes +. cache_check_ms)
        0. blocks

(* Payload bytes carried in-band: the block body of a proposal or sync
   response.  Votes embed a block in memory but only its header travels
   (Wire_size.vote), so they carry none. *)
let payload_bytes = function
  | Opt_propose { block } | Propose { block; _ } | Fb_propose { block; _ } ->
      block.Block.payload.Payload.size_bytes
  | Vote _ | Timeout _ | Cert_gossip _ | Tc_gossip _ | Status _ | Commit_vote _
  | Block_request _ ->
      0
  | Blocks_response { blocks } ->
      List.fold_left
        (fun acc (b : Block.t) -> acc + b.Block.payload.Payload.size_bytes)
        0 blocks

let classify = function
  | Opt_propose _ | Propose _ | Fb_propose _ -> `Proposal
  | Vote _ | Commit_vote _ -> `Vote
  | Timeout _ -> `Timeout
  | Cert_gossip _ | Tc_gossip _ | Status _ | Block_request _ | Blocks_response _
    -> `Other

let view_of = function
  | Opt_propose { block } | Propose { block; _ } | Fb_propose { block; _ } ->
      Some block.Block.view
  | Vote { block; _ } -> Some block.Block.view
  | Timeout { view; _ } | Status { view; _ } | Commit_vote { view; _ } ->
      Some view
  | Cert_gossip c -> Some c.Cert.view
  | Tc_gossip tc -> Some tc.Tc.view
  | Block_request _ | Blocks_response _ -> None

let digest =
  let h = Hash.to_int64 in
  let bh (b : Block.t) = h b.Block.hash in
  function
  | Opt_propose { block } -> Hash.of_fields [ 1L; bh block ]
  | Propose { block; cert } ->
      Hash.of_fields [ 2L; bh block; h (Cert.digest cert) ]
  | Fb_propose { block; cert; tc } ->
      Hash.of_fields [ 3L; bh block; h (Cert.digest cert); h (Tc.digest tc) ]
  | Vote { kind; block } ->
      Hash.of_fields [ 4L; Int64.of_int (Vote_kind.to_tag kind); bh block ]
  | Timeout { view; lock } ->
      let l = match lock with None -> Hash.null | Some c -> Cert.digest c in
      Hash.of_fields [ 5L; Int64.of_int view; h l ]
  | Cert_gossip c -> Hash.of_fields [ 6L; h (Cert.digest c) ]
  | Tc_gossip tc -> Hash.of_fields [ 7L; h (Tc.digest tc) ]
  | Status { view; lock } ->
      Hash.of_fields [ 8L; Int64.of_int view; h (Cert.digest lock) ]
  | Commit_vote { view; block } ->
      Hash.of_fields [ 9L; Int64.of_int view; bh block ]
  | Block_request { hash } -> Hash.of_fields [ 10L; h hash ]
  | Blocks_response { blocks } -> Hash.of_fields (11L :: List.map bh blocks)

(* A correct node fills the opt slot at most once per view and the main
   slot (normal and fallback votes share it) at most once per view; the
   model checker flags two differently-digested messages in the same slot
   as a double vote.  Commit votes are excluded: a node may legitimately
   commit-vote distinct certified blocks of one view (opt + fallback). *)
let vote_slot = function
  | Vote { kind = Vote_kind.Opt; block } -> Some (block.Block.view, 0)
  | Vote { kind = Vote_kind.Normal | Vote_kind.Fallback; block } ->
      Some (block.Block.view, 1)
  | Opt_propose _ | Propose _ | Fb_propose _ | Timeout _ | Cert_gossip _
  | Tc_gossip _ | Status _ | Commit_vote _ | Block_request _
  | Blocks_response _ ->
      None

let pp ppf = function
  | Opt_propose { block } -> Format.fprintf ppf "opt-propose(%a)" Block.pp block
  | Propose { block; cert } ->
      Format.fprintf ppf "propose(%a, %a)" Block.pp block Cert.pp cert
  | Fb_propose { block; cert; tc } ->
      Format.fprintf ppf "fb-propose(%a, %a, %a)" Block.pp block Cert.pp cert
        Tc.pp tc
  | Vote { kind; block } ->
      Format.fprintf ppf "%a-vote(%a)" Vote_kind.pp kind Block.pp block
  | Timeout { view; lock } ->
      Format.fprintf ppf "timeout(v=%d, lock=%a)" view
        (Format.pp_print_option Cert.pp)
        lock
  | Cert_gossip c -> Format.fprintf ppf "cert-gossip(%a)" Cert.pp c
  | Tc_gossip tc -> Format.fprintf ppf "tc-gossip(%a)" Tc.pp tc
  | Status { view; lock } ->
      Format.fprintf ppf "status(v=%d, %a)" view Cert.pp lock
  | Commit_vote { view; block } ->
      Format.fprintf ppf "commit-vote(v=%d, %a)" view Block.pp block
  | Block_request { hash } -> Format.fprintf ppf "block-request(%a)" Hash.pp hash
  | Blocks_response { blocks } ->
      Format.fprintf ppf "blocks-response(%d blocks)" (List.length blocks)
