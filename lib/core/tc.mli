(** Timeout certificates.

    A view-[v] timeout certificate [TC_v] aggregates a quorum of distinct
    signed timeout messages for [v].  In Pipelined/Commit Moonshot each
    timeout carries its sender's lock, and the TC proves the highest ranked
    block certificate among them ([high_cert]); a fallback proposal justified
    by the TC must extend a certificate ranking at least as high.  Simple
    Moonshot's timeouts carry no lock ([high_cert = None]).

    Wire size follows the array-of-signatures implementation the paper
    evaluates: the TC carries one signed rank claim per timeout plus the one
    full highest certificate — linear in [n], as the paper notes. *)

type t = private {
  view : int;
  high_cert : Cert.t option;
  signers : int;
}

(** Raises [Invalid_argument] if [signers < 1] or [view <= 0]. *)
val make : view:int -> high_cert:Cert.t option -> signers:int -> t

(** Rank of the highest embedded certificate; [-1] when none. *)
val high_cert_view : t -> int

(** Canonical digest for model-checker state hashing (view and the embedded
    certificate's {!Cert.digest}; signers excluded). *)
val digest : t -> Bft_types.Hash.t

val wire_size : t -> int
val pp : Format.formatter -> t -> unit
