(** State and machinery shared by all Moonshot node implementations: the
    local block store, the commit log, vote aggregation into certificates,
    the per-view certificate table and the two-chain commit rule. *)

open Bft_types

type 'msg t

val create : 'msg Env.t -> 'msg t
val env : 'msg t -> 'msg Env.t
val store : 'msg t -> Bft_chain.Block_store.t
val log : 'msg t -> Bft_chain.Commit_log.t

(** Record a block header seen in any message; retries deferred commits. *)
val note_block : 'msg t -> Block.t -> unit

(** [add_vote t ~signer ~kind block] accumulates a vote.  Returns the
    freshly completed certificate when this vote was the one that reached a
    quorum (at most once per (view, kind, block)). *)
val add_vote : 'msg t -> signer:int -> kind:Vote_kind.t -> Block.t -> Cert.t option

(** [record_cert t c] files a certificate in the per-view table.  Returns
    [false] when an identical certificate was already recorded.  Does not
    run the commit rule — callers do that via {!two_chain_commits} so they
    control ordering relative to their other rules. *)
val record_cert : 'msg t -> Cert.t -> bool

(** Certificates recorded for a view. *)
val certs_at : 'msg t -> int -> Cert.t list

(** Highest-ranked certificate recorded so far (genesis initially). *)
val high_cert : 'msg t -> Cert.t

(** Direct-commit candidates unlocked by a newly recorded certificate
    [c = C_v(B_k)]: [B_k]'s parent when some recorded [C_{v-1}] certifies it,
    and [B_k] itself when some recorded [C_{v+1}] certifies a child of [B_k]
    (Figure 1's Direct Commit, run from both sides). *)
val two_chain_commits : 'msg t -> Cert.t -> Block.t list

(** Generalized [depth]-chain commit rule: a window of [depth] consecutive
    views whose recorded certificates form a parent chain commits the block
    certified at the window's base.  [depth = 2] is the Moonshot/Jolteon
    rule; [depth = 3] is chained HotStuff's.  Returns the committable blocks
    unlocked by recording [c].  Raises [Invalid_argument] if [depth < 2]. *)
val chain_commits : 'msg t -> depth:int -> Cert.t -> Block.t list

(** Commit a block (and its ancestors).  If an ancestor header has not
    arrived yet the commit is deferred and retried on the next
    {!note_block}. *)
val commit : 'msg t -> Block.t -> unit

(** Number of blocks this node has committed (genesis excluded). *)
val committed : 'msg t -> int

(** {2 Hooks for the block synchronizer ({!Sync})} *)

(** Whether any commit is deferred on missing ancestors. *)
val has_deferred : 'msg t -> bool

(** The first missing ancestor blocking a deferred commit, with the
    proposer of its (known) child as a hint for who certainly had it. *)
val first_missing : 'msg t -> (Hash.t * int) option

(** [chain_segment t hash ~max] is the block with [hash] plus up to
    [max - 1] of its ancestors present in the store, oldest first; [[]]
    when the block itself is unknown. *)
val chain_segment : 'msg t -> Hash.t -> max:int -> Block.t list

(** Canonical digest of the shared state (store, commit log, vote
    accumulator, certificate table, high certificate, deferred commits)
    for model-checker state matching.  Independent of hashtable iteration
    order. *)
val state_hash : 'msg t -> Hash.t
