(** Wire codecs for the Moonshot message family and the shared consensus
    data types (blocks, certificates, timeout certificates).

    The encodings are specified normatively in [docs/WIRE.md]; this module
    implements them on top of {!Bft_net.Wire}'s primitives.  Three
    properties the transport relies on:

    - {e round-trip}: [decode (encode m) = Ok m] for every message;
    - {e totality}: [decode] never raises — malformed input yields an
      [Error], so a garbage frame cannot crash a node;
    - {e exactness}: a message body is consumed in full; trailing bytes
      are rejected, and any strict prefix of a valid body is rejected as
      truncated.

    Block hashes are never transmitted: {!Bft_types.Block.of_wire}
    recomputes them from the header fields on decode.  Signatures are
    abstract in this reproduction (see {!Bft_types.Wire_size}), so
    certificates carry their signer {e count} rather than signature
    bytes.  Proposal-carried payloads are synthetic: the wire carries
    [size_bytes] of padding so that socket-level byte counts reflect the
    configured payload size. *)

open Bft_types

(** {2 Shared data-type codecs}

    Reader functions raise {!Bft_net.Wire}'s internal decode exception
    and must run under {!Bft_net.Wire.decode_body} /
    {!Bft_net.Wire.run_decoder}; they are exported for the Jolteon codec
    and for tests. *)

val write_payload : Bft_net.Wire.W.t -> Payload.t -> unit
val read_payload : Bft_net.Wire.R.t -> Payload.t

(** Block header only — what votes, certificates and commit votes carry;
    no payload padding. *)
val write_block : Bft_net.Wire.W.t -> Block.t -> unit

val read_block : Bft_net.Wire.R.t -> Block.t

(** Block header followed by [payload.size_bytes] bytes of padding —
    what proposals and block-sync responses carry. *)
val write_block_data : Bft_net.Wire.W.t -> Block.t -> unit

val read_block_data : Bft_net.Wire.R.t -> Block.t
val write_cert : Bft_net.Wire.W.t -> Cert.t -> unit
val read_cert : Bft_net.Wire.R.t -> Cert.t
val write_tc : Bft_net.Wire.W.t -> Tc.t -> unit
val read_tc : Bft_net.Wire.R.t -> Tc.t

(** {2 Message codec} *)

(** Wire tag of a message ([0x01]-[0x0b]; see [docs/WIRE.md]). *)
val tag : Message.t -> int

(** Frame body (version, tag, fields) for a message; the transport adds
    the length prefix ({!Bft_net.Wire.frame}). *)
val encode : Message.t -> string

(** Total inverse of {!encode} with structured errors. *)
val decode : string -> (Message.t, Bft_net.Wire.error) result

(** {!encode} / {!decode} under the names and error type
    {!Bft_types.Protocol_intf.S} requires. *)
val encode_msg : Message.t -> string

val decode_msg : string -> (Message.t, string) result

(** {2 WAL snapshots}

    Byte codec for {!Wal.t} latest-record snapshots, backing the durable
    file-based WALs the live transport's crash-recovery uses
    ({!Bft_net.Tcp}).  Not a wire frame (no version/tag envelope): the
    blob is read back only by the node that wrote it.  All five protocol
    variants share {!Wal.t}, so this codec serves every
    [Protocol_intf.S.wal_encode]/[wal_decode]. *)

val encode_wal : Wal.t -> string

(** Total inverse of {!encode_wal}: a fresh WAL holding the decoded
    latest record (empty when the snapshot was of an empty log). *)
val decode_wal : string -> (Wal.t, string) result
