open Bft_types

type state = {
  cur_view : int;
  lock : Cert.t;
  timeout_view : int;
  voted_opt : Block.t option;
  voted_main : bool;
}

type t = { mutable latest : state option; mutable writes : int }

let create () = { latest = None; writes = 0 }

let record t state =
  t.latest <- Some state;
  t.writes <- t.writes + 1

let load t = t.latest
let writes t = t.writes

let state_digest (s : state) =
  Hash.of_fields
    [
      Int64.of_int s.cur_view;
      Hash.to_int64 (Cert.digest s.lock);
      Int64.of_int s.timeout_view;
      Hash.to_int64
        (match s.voted_opt with None -> Hash.null | Some b -> b.Block.hash);
      (if s.voted_main then 1L else 0L);
    ]

(* The write counter is a statistic, not state: recovery only reads the
   latest record, so two logs with equal latest records are equivalent. *)
let digest t =
  match t.latest with None -> Hash.null | Some s -> state_digest s
