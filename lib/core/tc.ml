open Bft_types

type t = { view : int; high_cert : Cert.t option; signers : int }

let make ~view ~high_cert ~signers =
  if signers < 1 then invalid_arg "Tc.make: empty timeout certificate";
  if view <= 0 then invalid_arg "Tc.make: view must be positive";
  { view; high_cert; signers }

let high_cert_view t =
  match t.high_cert with None -> -1 | Some c -> c.Cert.view

(* Signers excluded for the same reason as {!Cert.digest}: nodes keep at
   most one TC per view, so the signer multiset never influences behaviour. *)
let digest t =
  let high =
    match t.high_cert with None -> Hash.null | Some c -> Cert.digest c
  in
  Hash.of_fields [ 0x54L; Int64.of_int t.view; Hash.to_int64 high ]

(* Per aggregated timeout: signature + node id + view + claimed lock rank
   (view + block hash). *)
let per_timeout =
  Wire_size.signature + Wire_size.node_id + Wire_size.view + Wire_size.view
  + Wire_size.hash

let wire_size t =
  let cert = match t.high_cert with None -> 0 | Some c -> Cert.wire_size c in
  Wire_size.view + (t.signers * per_timeout) + cert

let pp ppf t =
  Format.fprintf ppf "TC_%d(high=%a)" t.view
    (Format.pp_print_option Cert.pp)
    t.high_cert
