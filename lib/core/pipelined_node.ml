open Bft_types

(* A view's timeout-message aggregation: distinct senders plus the highest
   lock they reported (the provable high certificate of any TC formed). *)
type tmo_entry = {
  signers : Bft_crypto.Signer_set.t;
  mutable high : Cert.t option;
  mutable amplified : bool;
  mutable tc_formed : bool;
}

type pending =
  | P_opt of Block.t
  | P_normal of Block.t * Cert.t
  | P_fallback of Block.t * Cert.t * Tc.t

type how_entered = Via_cert of Cert.t | Via_tc of Tc.t | Via_start | Via_recovery

type t = {
  core : Message.t Node_core.t;
  env : Message.t Env.t;
  mutable sync : Message.t Sync.t option;
  wal : Wal.t option;
  precommit : bool;
  equivocate : bool;
  lso : bool;
  mutable opt_proposed_view : int;  (* highest view we opt-proposed for *)
  timeout_aggs : (int, tmo_entry) Hashtbl.t;
  commit_votes : (int * int) Bft_crypto.Accumulator.t;
  tcs : (int, Tc.t) Hashtbl.t;
  pending : (int, pending list) Hashtbl.t;
  timeout_sent : (int, unit) Hashtbl.t;
  commit_voted : (int, Block.t) Hashtbl.t;  (* Hash.to_int -> block *)
  mutable cur_view : int;
  mutable lock : Cert.t;
  mutable timeout_view : int;  (* highest view a timeout was sent for; 0 = none *)
  mutable voted_opt : Block.t option;  (* in cur_view *)
  mutable voted_main : bool;  (* in cur_view *)
  mutable cancel_timer : unit -> unit;
}

let view_timer_multiplier = 3.

let create ?(precommit = false) ?(equivocate = false) ?(lso = false) ?wal env =
  let t =
  {
    core = Node_core.create env;
    env;
    sync = None;
    wal;
    precommit;
    equivocate;
    lso;
    opt_proposed_view = 0;
    timeout_aggs = Hashtbl.create 16;
    commit_votes =
      Bft_crypto.Accumulator.create ~n:(Env.n env) ~threshold:(Env.quorum env);
    tcs = Hashtbl.create 16;
    pending = Hashtbl.create 16;
    timeout_sent = Hashtbl.create 16;
    commit_voted = Hashtbl.create 64;
    cur_view = 0;
    lock = Cert.genesis;
    timeout_view = 0;
    voted_opt = None;
    voted_main = false;
    cancel_timer = (fun () -> ());
  }
  in
  t.sync <-
    Some
      (Sync.create ~core:t.core ~env
         ~make_request:(fun hash -> Message.Block_request { hash })
         ~make_response:(fun blocks -> Message.Blocks_response { blocks }));
  t

let sync t = Option.get t.sync

(* Persist the safety-critical state; called BEFORE the message that makes
   it binding is sent, as a durable WAL would be. *)
let persist t =
  match t.wal with
  | None -> ()
  | Some wal ->
      Wal.record wal
        {
          Wal.cur_view = t.cur_view;
          lock = t.lock;
          timeout_view = t.timeout_view;
          voted_opt = t.voted_opt;
          voted_main = t.voted_main;
        }

let current_view t = t.cur_view
let lock t = t.lock
let timeout_view t = t.timeout_view
let committed t = Node_core.committed t.core
let commit_log t = Node_core.log t.core
let store t = Node_core.store t.core

let send_proposal t ~view ~parent wrap =
  Proposal_sender.send t.env ~equivocate:t.equivocate ~view ~parent wrap

(* --- forward declarations via mutual recursion -------------------------- *)

let rec observe_cert t (c : Cert.t) =
  if Node_core.record_cert t.core c then begin
    (* Lock rule: adopt any higher-ranked certificate, at any time. *)
    if Cert.rank_gt c t.lock then begin
      t.lock <- c;
      persist t
    end;
    (* Two-chain commit rule, run from both sides of the new certificate. *)
    List.iter (Node_core.commit t.core) (Node_core.two_chain_commits t.core c);
    if t.precommit then maybe_commit_vote t c;
    if c.Cert.view >= t.cur_view then
      advance_to t (c.Cert.view + 1) (Via_cert c)
    else process_pending t
  end

and observe_tc t (tc : Tc.t) =
  (match tc.Tc.high_cert with Some c -> observe_cert t c | None -> ());
  if not (Hashtbl.mem t.tcs tc.Tc.view) then begin
    Hashtbl.replace t.tcs tc.Tc.view tc;
    (* Timeout rule: join a view change evidenced by a TC. *)
    if tc.Tc.view >= t.cur_view then send_timeout t tc.Tc.view;
    if tc.Tc.view >= t.cur_view then advance_to t (tc.Tc.view + 1) (Via_tc tc)
  end

and send_timeout t view =
  if not (Hashtbl.mem t.timeout_sent view) then begin
    Hashtbl.replace t.timeout_sent view ();
    t.timeout_view <- max t.timeout_view view;
    persist t;
    Env.emit t.env (fun () -> Probe.Timeout_sent { view });
    t.env.Env.multicast (Message.Timeout { view; lock = Some t.lock })
  end

and advance_to t view how =
  if view > t.cur_view then begin
    (* Advance View: relay the evidence before entering. *)
    (match how with
    | Via_cert c -> t.env.Env.multicast (Message.Cert_gossip c)
    | Via_tc tc -> t.env.Env.send (t.env.Env.leader_of view) (Message.Tc_gossip tc)
    | Via_start | Via_recovery -> ());
    Env.emit t.env (fun () ->
        let via =
          match how with
          | Via_cert _ -> `Cert
          | Via_tc _ -> `Tc
          | Via_start -> `Start
          | Via_recovery -> `Recovery
        in
        Probe.View_entered { view; via });
    t.cur_view <- view;
    t.voted_opt <- None;
    t.voted_main <- false;
    persist t;
    arm_view_timer t;
    if Env.is_leader t.env ~view then propose t view how;
    process_pending t
  end

and arm_view_timer t =
  t.cancel_timer ();
  t.cancel_timer <-
    t.env.Env.set_timer
      (view_timer_multiplier *. t.env.Env.delta)
      (fun () -> on_view_timer t)

(* On expiry, send — or, when stuck in the view, re-multicast — the timeout
   and re-arm, so view changes survive message loss (a pacemaker-style
   rebroadcast; receivers deduplicate by signer). *)
and on_view_timer t =
  if Hashtbl.mem t.timeout_sent t.cur_view then
    t.env.Env.multicast
      (Message.Timeout { view = t.cur_view; lock = Some t.lock })
  else send_timeout t t.cur_view;
  arm_view_timer t

and propose t view how =
  (* The leader-speaks-once variant never proposes twice for a view: having
     already optimistically proposed, it stays silent — which is exactly
     what costs it reorg resilience (Section III-B: the adversary can make
     optimistic proposals fail even after GST, and an LSO leader cannot
     correct itself). *)
  if t.lso && t.opt_proposed_view >= view then ()
  else
  match how with
  | Via_recovery ->
      (* A recovered leader already proposed before the crash (or its view
         will time out); re-proposing against a stale justification would
         just be ignored by honest voters. *)
      ()
  | Via_start ->
      send_proposal t ~view ~parent:Block.genesis (fun block ->
          Message.Propose { block; cert = Cert.genesis })
  | Via_cert c ->
      send_proposal t ~view ~parent:c.Cert.block (fun block ->
          Message.Propose { block; cert = c })
  | Via_tc tc ->
      (* The Lock rule ran on the TC's embedded certificate before entering,
         so lock >= tc.high_cert as the fallback vote rule requires. *)
      send_proposal t ~view ~parent:t.lock.Cert.block (fun block ->
          Message.Fb_propose { block; cert = t.lock; tc })

and process_pending t =
  match Hashtbl.find_opt t.pending t.cur_view with
  | None -> ()
  | Some items -> List.iter (try_pending t) (List.rev items)

and try_pending t = function
  | P_opt block -> try_opt_vote t block
  | P_normal (block, cert) -> try_normal_vote t block cert
  | P_fallback (block, cert, tc) -> try_fallback_vote t block cert tc

and try_opt_vote t block =
  if
    Safety_rules.valid_proposal_block ~leader_of:t.env.Env.leader_of
      ~view:t.cur_view block
    && Safety_rules.pipelined_opt_vote ~lock:t.lock ~view:t.cur_view
         ~timeout_view:t.timeout_view ~voted_opt:t.voted_opt
         ~voted_main:t.voted_main ~block
  then begin
    t.voted_opt <- Some block;
    persist t;
    cast_vote t Vote_kind.Opt block
  end

and try_normal_vote t block cert =
  if
    Safety_rules.valid_proposal_block ~leader_of:t.env.Env.leader_of
      ~view:t.cur_view block
    && Safety_rules.pipelined_normal_vote ~view:t.cur_view
         ~timeout_view:t.timeout_view ~voted_opt:t.voted_opt
         ~voted_main:t.voted_main ~block ~cert
  then begin
    t.voted_main <- true;
    persist t;
    cast_vote t Vote_kind.Normal block
  end

and try_fallback_vote t block cert tc =
  if
    Safety_rules.valid_proposal_block ~leader_of:t.env.Env.leader_of
      ~view:t.cur_view block
    && Safety_rules.pipelined_fb_vote ~view:t.cur_view
         ~timeout_view:t.timeout_view ~voted_main:t.voted_main ~block ~cert ~tc
  then begin
    t.voted_main <- true;
    persist t;
    cast_vote t Vote_kind.Fallback block
  end

and cast_vote t kind (block : Block.t) =
  Env.emit t.env (fun () ->
      Probe.Vote_sent
        {
          view = block.Block.view;
          height = block.Block.height;
          kind = Format.asprintf "%a" Vote_kind.pp kind;
        });
  t.env.Env.multicast (Message.Vote { kind; block });
  (* Optimistic Propose: the next leader extends the block it just voted
     for, without waiting to observe its certification. *)
  let next = block.Block.view + 1 in
  if Env.is_leader t.env ~view:next then begin
    t.opt_proposed_view <- max t.opt_proposed_view next;
    send_proposal t ~view:next ~parent:block (fun b ->
        Message.Opt_propose { block = b })
  end

(* --- Commit Moonshot's pre-commit phase --------------------------------- *)

and maybe_commit_vote t (c : Cert.t) =
  let block = c.Cert.block in
  let already = Hashtbl.mem t.commit_voted (Hash.to_int block.Block.hash) in
  if not already then begin
    let direct =
      Safety_rules.direct_precommit ~view:t.cur_view
        ~timeout_view:t.timeout_view ~cert_view:c.Cert.view
    in
    let indirect () =
      Safety_rules.indirect_precommit ~timeout_view:t.timeout_view
        ~cert_view:c.Cert.view ~voted_descendant:(has_commit_voted_descendant t block)
    in
    if direct || indirect () then begin
      prune_commit_voted t;
      Hashtbl.replace t.commit_voted (Hash.to_int block.Block.hash) block;
      Env.emit t.env (fun () ->
          Probe.Vote_sent
            {
              view = c.Cert.view;
              height = block.Block.height;
              kind = "commit";
            });
      t.env.Env.multicast (Message.Commit_vote { view = c.Cert.view; block })
    end
  end

and has_commit_voted_descendant t (block : Block.t) =
  let store = Node_core.store t.core in
  Hashtbl.fold
    (fun _ (voted : Block.t) acc ->
      acc
      ||
      match Bft_chain.Block_store.is_ancestor store ~ancestor:block ~of_:voted with
      | `Yes -> true
      | `No | `Unknown -> false)
    t.commit_voted false

and prune_commit_voted t =
  (* Blocks at or below the committed frontier can never need an indirect
     pre-commit again; drop them to keep descendant checks cheap. *)
  if Hashtbl.length t.commit_voted > 64 then begin
    let frontier =
      (Bft_chain.Commit_log.last (Node_core.log t.core)).Block.height
    in
    let stale =
      Hashtbl.fold
        (fun k (b : Block.t) acc ->
          if b.Block.height <= frontier then k :: acc else acc)
        t.commit_voted []
    in
    List.iter (Hashtbl.remove t.commit_voted) stale
  end

(* --- message handlers ---------------------------------------------------- *)

let buffer t view p =
  if view >= t.cur_view then begin
    let items = Option.value ~default:[] (Hashtbl.find_opt t.pending view) in
    Hashtbl.replace t.pending view (p :: items);
    (* Garbage-collect buffers for views we have left behind. *)
    Hashtbl.iter
      (fun v _ -> if v < t.cur_view then Hashtbl.remove t.pending v)
      (Hashtbl.copy t.pending)
  end

let on_timeout t ~src view lock =
  (match lock with Some c -> observe_cert t c | None -> ());
  let entry =
    match Hashtbl.find_opt t.timeout_aggs view with
    | Some e -> e
    | None ->
        let e =
          {
            signers = Bft_crypto.Signer_set.create ~n:(Env.n t.env);
            high = None;
            amplified = false;
            tc_formed = false;
          }
        in
        Hashtbl.replace t.timeout_aggs view e;
        e
  in
  if Bft_crypto.Signer_set.add entry.signers src then begin
    (match (lock, entry.high) with
    | Some c, Some h when Cert.rank_gt c h -> entry.high <- Some c
    | Some c, None -> entry.high <- Some c
    | _ -> ());
    let count = Bft_crypto.Signer_set.count entry.signers in
    if
      count >= Env.weak_quorum t.env
      && (not entry.amplified)
      && view >= t.cur_view
    then begin
      entry.amplified <- true;
      send_timeout t view
    end;
    if count >= Env.quorum t.env && not entry.tc_formed then begin
      entry.tc_formed <- true;
      Env.emit t.env (fun () -> Probe.Tc_formed { view; signers = count });
      observe_tc t (Tc.make ~view ~high_cert:entry.high ~signers:count)
    end
  end

let on_commit_vote t ~src view (block : Block.t) =
  Node_core.note_block t.core block;
  match
    Bft_crypto.Accumulator.add t.commit_votes
      (view, Hash.to_int block.Block.hash)
      ~signer:src
  with
  | Threshold_reached _ -> Node_core.commit t.core block
  | Added _ | Duplicate | Already_complete -> ()

let handle t ~src msg =
  match msg with
  | Message.Opt_propose { block } ->
      Node_core.note_block t.core block;
      buffer t block.Block.view (P_opt block);
      process_pending t
  | Message.Propose { block; cert } ->
      Node_core.note_block t.core block;
      buffer t block.Block.view (P_normal (block, cert));
      observe_cert t cert;
      process_pending t
  | Message.Fb_propose { block; cert; tc } ->
      Node_core.note_block t.core block;
      buffer t block.Block.view (P_fallback (block, cert, tc));
      observe_cert t cert;
      observe_tc t tc;
      process_pending t
  | Message.Vote { kind; block } -> (
      match Node_core.add_vote t.core ~signer:src ~kind block with
      | Some cert ->
          Env.emit t.env (fun () ->
              Probe.Cert_formed
                {
                  view = cert.Cert.view;
                  height = cert.Cert.block.Block.height;
                  signers = cert.Cert.signers;
                });
          observe_cert t cert
      | None -> ())
  | Message.Timeout { view; lock } -> on_timeout t ~src view lock
  | Message.Cert_gossip c -> observe_cert t c
  | Message.Tc_gossip tc -> observe_tc t tc
  | Message.Status _ -> ()  (* Simple Moonshot only. *)
  | Message.Commit_vote { view; block } ->
      if t.precommit then on_commit_vote t ~src view block
  | Message.Block_request { hash } -> Sync.handle_request (sync t) ~src hash
  | Message.Blocks_response { blocks } -> Sync.handle_response (sync t) blocks

(* Run the message, then let the synchronizer chase any commit that is now
   deferred on missing ancestors. *)
let handle t ~src msg =
  handle t ~src msg;
  Sync.poke (sync t)

let start t =
  match Option.map Wal.load t.wal with
  | Some (Some saved) ->
      (* Crash recovery: resume from the recorded view with the recorded
         lock and vote slots; the block synchronizer refills the store. *)
      ignore (Node_core.record_cert t.core saved.Wal.lock);
      t.lock <- saved.Wal.lock;
      t.timeout_view <- saved.Wal.timeout_view;
      advance_to t saved.Wal.cur_view Via_recovery;
      t.voted_opt <- saved.Wal.voted_opt;
      t.voted_main <- saved.Wal.voted_main;
      (* Re-persist: a second crash must still see the restored vote slots
         (advance_to recorded the cleared ones). *)
      persist t
  | Some None | None -> advance_to t 1 Via_start

(* --- model-checker support ----------------------------------------------- *)

let pending_digest =
  let h = Hash.to_int64 in
  function
  | P_opt b -> h (Hash.of_fields [ 1L; h b.Block.hash ])
  | P_normal (b, c) ->
      h (Hash.of_fields [ 2L; h b.Block.hash; h (Cert.digest c) ])
  | P_fallback (b, c, tc) ->
      h
        (Hash.of_fields
           [ 3L; h b.Block.hash; h (Cert.digest c); h (Tc.digest tc) ])

(* Hashtable-keyed pieces combine per-entry digests with addition
   (iteration-order independent); everything else hashes as a sequence.
   Timer state lives in the engine and is digested by the checker. *)
let state_hash t =
  let h = Hash.to_int64 in
  let table_h tbl per_entry =
    Hashtbl.fold (fun k v acc -> Int64.add acc (per_entry k v)) tbl 0L
  in
  let aggs_h =
    table_h t.timeout_aggs (fun view (e : tmo_entry) ->
        (* Signers are inert once the TC formed — see Node_core.state_hash. *)
        h
          (Hash.of_fields
             (Int64.of_int view
             :: (match e.high with
                | None -> 0L
                | Some c -> h (Cert.digest c))
             :: (if e.amplified then 1L else 0L)
             ::
             (if e.tc_formed then [ 1L ]
              else
                0L
                :: List.map Int64.of_int
                     (Bft_crypto.Signer_set.to_list e.signers)))))
  in
  let commit_votes_h =
    Bft_crypto.Accumulator.fold
      (fun (view, bkey) ~signers ~complete acc ->
        Int64.add acc
          (h
             (Hash.of_fields
                (Int64.of_int view :: Int64.of_int bkey
                ::
                (if complete then [ 1L ]
                 else
                   0L
                   :: List.map Int64.of_int
                        (Bft_crypto.Signer_set.to_list signers))))))
      t.commit_votes 0L
  in
  let tcs_h =
    table_h t.tcs (fun view tc ->
        h (Hash.of_fields [ Int64.of_int view; h (Tc.digest tc) ]))
  in
  let pending_h =
    table_h t.pending (fun view items ->
        h (Hash.of_fields (Int64.of_int view :: List.map pending_digest items)))
  in
  let timeout_sent_h =
    table_h t.timeout_sent (fun view () -> Int64.of_int (view + 1))
  in
  let commit_voted_h =
    table_h t.commit_voted (fun _ (b : Block.t) -> h b.Block.hash)
  in
  Hash.of_fields
    [
      h (Node_core.state_hash t.core);
      h (Sync.state_hash (sync t));
      Int64.of_int t.opt_proposed_view;
      aggs_h;
      commit_votes_h;
      tcs_h;
      pending_h;
      timeout_sent_h;
      commit_voted_h;
      Int64.of_int t.cur_view;
      h (Cert.digest t.lock);
      Int64.of_int t.timeout_view;
      (match t.voted_opt with None -> 0L | Some b -> h b.Block.hash);
      (if t.voted_main then 1L else 0L);
    ]

(* Every mutation of a safety slot persists in the same synchronous step,
   so between handler runs the WAL's latest record must mirror memory. *)
let wal_consistent t =
  match t.wal with
  | None -> true
  | Some wal -> (
      match Wal.load wal with
      | None -> t.cur_view = 0
      | Some s ->
          s.Wal.cur_view = t.cur_view
          && Cert.equal_id s.Wal.lock t.lock
          && s.Wal.timeout_view = t.timeout_view
          && Option.equal Block.equal s.Wal.voted_opt t.voted_opt
          && s.Wal.voted_main = t.voted_main)

module Mc = struct
  let encode_msg = Codec.encode_msg
  let wal_encode = Codec.encode_wal
  let wal_decode = Codec.decode_wal
  let decode_msg = Codec.decode_msg
  let msg_digest = Message.digest
  let pp_msg = Message.pp
  let vote_slot = Message.vote_slot
  let state_hash = state_hash
  let current_view = current_view
  let lock_view t = t.lock.Cert.view
  let wal_hash = Wal.digest
  let wal_consistent = wal_consistent
end

module Protocol = struct
  type msg = Message.t

  let msg_size = Message.size
  let cpu_cost = Message.cpu_cost
  let payload_bytes = Message.payload_bytes
  let classify = Message.classify
  let view_of = Message.view_of

  type node = t
  type wal = Wal.t

  let wal_create = Wal.create

  let create ?(equivocate = false) ?wal env =
    create ~precommit:false ~equivocate ?wal env

  let start = start
  let handle = handle

  include Mc
end

module Commit_protocol = struct
  type msg = Message.t

  let msg_size = Message.size
  let cpu_cost = Message.cpu_cost
  let payload_bytes = Message.payload_bytes
  let classify = Message.classify
  let view_of = Message.view_of

  type node = t
  type wal = Wal.t

  let wal_create = Wal.create

  let create ?(equivocate = false) ?wal env =
    create ~precommit:true ~equivocate ?wal env

  let start = start
  let handle = handle

  include Mc
end

module Lso_protocol = struct
  type msg = Message.t

  let msg_size = Message.size
  let cpu_cost = Message.cpu_cost
  let payload_bytes = Message.payload_bytes
  let classify = Message.classify
  let view_of = Message.view_of

  type node = t
  type wal = Wal.t

  let wal_create = Wal.create

  let create ?(equivocate = false) ?wal env = create ~lso:true ~equivocate ?wal env
  let start = start
  let handle = handle

  include Mc
end
