open Bft_types

type tmo_entry = {
  signers : Bft_crypto.Signer_set.t;
  mutable tc_formed : bool;
}

type pending = P_opt of Block.t | P_normal of Block.t * Cert.t

type how_entered = Via_cert of Cert.t | Via_tc of Tc.t | Via_start | Via_recovery

type t = {
  core : Message.t Node_core.t;
  env : Message.t Env.t;
  mutable sync : Message.t Sync.t option;
  wal : Wal.t option;
  equivocate : bool;
  timeout_aggs : (int, tmo_entry) Hashtbl.t;
  tcs : (int, Tc.t) Hashtbl.t;
  pending : (int, pending list) Hashtbl.t;
  mutable cur_view : int;
  mutable entered_via : how_entered;
  mutable lock : Cert.t;
  mutable voted : bool;  (* in cur_view *)
  mutable timed_out : bool;  (* of cur_view: stop voting *)
  mutable proposed : bool;  (* as leader of cur_view *)
  mutable cancel_view_timer : unit -> unit;
  mutable cancel_propose_timer : unit -> unit;
}

let view_timer_multiplier = 5.
let propose_wait_multiplier = 2.

let create ?(equivocate = false) ?wal env =
  let t =
  {
    core = Node_core.create env;
    env;
    sync = None;
    wal;
    equivocate;
    timeout_aggs = Hashtbl.create 16;
    tcs = Hashtbl.create 16;
    pending = Hashtbl.create 16;
    cur_view = 0;
    entered_via = Via_start;
    lock = Cert.genesis;
    voted = false;
    timed_out = false;
    proposed = false;
    cancel_view_timer = (fun () -> ());
    cancel_propose_timer = (fun () -> ());
  }
  in
  t.sync <-
    Some
      (Sync.create ~core:t.core ~env
         ~make_request:(fun hash -> Message.Block_request { hash })
         ~make_response:(fun blocks -> Message.Blocks_response { blocks }));
  t

let sync t = Option.get t.sync

(* Persist the safety-critical state; called BEFORE the message that makes
   it binding is sent, as a durable WAL would be.  Simple Moonshot has a
   single vote slot per view and a boolean timeout flag, mapped onto the
   shared WAL state record. *)
let persist t =
  match t.wal with
  | None -> ()
  | Some wal ->
      Wal.record wal
        {
          Wal.cur_view = t.cur_view;
          lock = t.lock;
          timeout_view = (if t.timed_out then t.cur_view else 0);
          voted_opt = None;
          voted_main = t.voted;
        }

let current_view t = t.cur_view
let lock t = t.lock
let committed t = Node_core.committed t.core
let commit_log t = Node_core.log t.core
let store t = Node_core.store t.core

let send_proposal t ~view ~parent wrap =
  Proposal_sender.send t.env ~equivocate:t.equivocate ~view ~parent wrap

(* --- core flows, mutually recursive -------------------------------------- *)

let rec observe_cert t (c : Cert.t) =
  if Node_core.record_cert t.core c then begin
    List.iter (Node_core.commit t.core) (Node_core.two_chain_commits t.core c);
    if c.Cert.view >= t.cur_view then advance_to t (c.Cert.view + 1) (Via_cert c)
    else if
      (* Propose rule (i): the leader proposes upon receiving the previous
         view's certificate within 2 Delta of entering. *)
      c.Cert.view = t.cur_view - 1
      && Env.is_leader t.env ~view:t.cur_view
      && not t.proposed
    then propose_with_cert t c
  end

and observe_tc t (tc : Tc.t) =
  if not (Hashtbl.mem t.tcs tc.Tc.view) then begin
    Hashtbl.replace t.tcs tc.Tc.view tc;
    if tc.Tc.view >= t.cur_view then advance_to t (tc.Tc.view + 1) (Via_tc tc)
  end

and advance_to t view how =
  if view > t.cur_view then begin
    (* Advance View rule: multicast the justifying certificate, adopt the
       highest block certificate received so far as the lock, and report it
       to the new leader when it is stale. *)
    (match how with
    | Via_cert c -> t.env.Env.multicast (Message.Cert_gossip c)
    | Via_tc tc -> t.env.Env.multicast (Message.Tc_gossip tc)
    | Via_start | Via_recovery -> ());
    Env.emit t.env (fun () ->
        let via =
          match how with
          | Via_cert _ -> `Cert
          | Via_tc _ -> `Tc
          | Via_start -> `Start
          | Via_recovery -> `Recovery
        in
        Probe.View_entered { view; via });
    t.lock <- Node_core.high_cert t.core;
    if t.lock.Cert.view < view - 1 then
      t.env.Env.send (t.env.Env.leader_of view)
        (Message.Status { view; lock = t.lock });
    t.cur_view <- view;
    t.entered_via <- how;
    t.voted <- false;
    t.timed_out <- false;
    t.proposed <- false;
    persist t;
    t.cancel_propose_timer ();
    arm_view_timer t;
    (* A recovered leader may have proposed before the crash; proposing
       again would be honest-node equivocation, so it stays silent and the
       view either proceeds on the earlier proposal or times out. *)
    if Env.is_leader t.env ~view && how <> Via_recovery then begin
      let high = Node_core.high_cert t.core in
      if high.Cert.view = view - 1 then propose_with_cert t high
      else
        t.cancel_propose_timer <-
          t.env.Env.set_timer
            (propose_wait_multiplier *. t.env.Env.delta)
            (fun () -> propose_fallback t)
    end;
    process_pending t
  end

and propose_with_cert t (c : Cert.t) =
  t.proposed <- true;
  t.cancel_propose_timer ();
  send_proposal t ~view:t.cur_view ~parent:c.Cert.block (fun block ->
      Message.Propose { block; cert = c })

and propose_fallback t =
  (* Propose rule (ii): 2 Delta elapsed; extend the highest certificate
     known, which by then includes every honest lock (status messages). *)
  if not t.proposed then propose_with_cert t (Node_core.high_cert t.core)

and arm_view_timer t =
  t.cancel_view_timer ();
  t.cancel_view_timer <-
    t.env.Env.set_timer
      (view_timer_multiplier *. t.env.Env.delta)
      (fun () -> on_view_timer_expiry t)

(* Rebroadcast while stuck, so view changes survive message loss.  The
   repeat broadcast re-multicasts the evidence that justified entering the
   current view: after a partition in which no side had a quorum, one side
   may have advanced on an in-flight certificate or TC the other never saw,
   and without re-gossip the two sides would rebroadcast timeouts for
   different views at each other forever — neither view ever gathering a
   quorum. *)
and on_view_timer_expiry t =
  if t.timed_out then begin
    t.env.Env.multicast
      (Message.Timeout { view = t.cur_view; lock = Some t.lock });
    match t.entered_via with
    | Via_cert c -> t.env.Env.multicast (Message.Cert_gossip c)
    | Via_tc tc -> t.env.Env.multicast (Message.Tc_gossip tc)
    | Via_start | Via_recovery -> ()
  end
  else local_timeout t;
  arm_view_timer t

and local_timeout t =
  if not t.timed_out then begin
    t.timed_out <- true;
    persist t;
    Env.emit t.env (fun () -> Probe.Timeout_sent { view = t.cur_view });
    (* The timeout carries the sender's lock so that lagging nodes learn
       the certificate that let the rest of the network advance. *)
    t.env.Env.multicast
      (Message.Timeout { view = t.cur_view; lock = Some t.lock })
  end

and process_pending t =
  (match Hashtbl.find_opt t.pending t.cur_view with
  | None -> ()
  | Some items -> List.iter (try_pending t) (List.rev items));
  Hashtbl.iter
    (fun v _ -> if v < t.cur_view then Hashtbl.remove t.pending v)
    (Hashtbl.copy t.pending)

and try_pending t = function
  | P_opt block -> try_opt_vote t block
  | P_normal (block, cert) -> try_normal_vote t block cert

and try_opt_vote t block =
  if
    Safety_rules.valid_proposal_block ~leader_of:t.env.Env.leader_of
      ~view:t.cur_view block
    && Safety_rules.simple_opt_vote ~lock:t.lock ~view:t.cur_view
         ~voted:t.voted ~timed_out:t.timed_out ~block
  then cast_vote t block

and try_normal_vote t block cert =
  if
    Safety_rules.valid_proposal_block ~leader_of:t.env.Env.leader_of
      ~view:t.cur_view block
    && Safety_rules.simple_normal_vote ~lock:t.lock ~view:t.cur_view
         ~voted:t.voted ~timed_out:t.timed_out ~block ~cert
  then cast_vote t block

and cast_vote t (block : Block.t) =
  t.voted <- true;
  persist t;
  Env.emit t.env (fun () ->
      Probe.Vote_sent
        {
          view = block.Block.view;
          height = block.Block.height;
          kind = "normal";
        });
  t.env.Env.multicast (Message.Vote { kind = Vote_kind.Normal; block });
  let next = block.Block.view + 1 in
  if Env.is_leader t.env ~view:next then
    send_proposal t ~view:next ~parent:block (fun b ->
        Message.Opt_propose { block = b })

(* --- message handlers ----------------------------------------------------- *)

let buffer t view p =
  if view >= t.cur_view then begin
    let items = Option.value ~default:[] (Hashtbl.find_opt t.pending view) in
    Hashtbl.replace t.pending view (p :: items)
  end

let on_timeout t ~src view =
  let entry =
    match Hashtbl.find_opt t.timeout_aggs view with
    | Some e -> e
    | None ->
        let e =
          {
            signers = Bft_crypto.Signer_set.create ~n:(Env.n t.env);
            tc_formed = false;
          }
        in
        Hashtbl.replace t.timeout_aggs view e;
        e
  in
  if Bft_crypto.Signer_set.add entry.signers src then begin
    let count = Bft_crypto.Signer_set.count entry.signers in
    (* Timeout rule: join a view change once a weak quorum (and hence at
       least one honest node) requests it for the current view. *)
    if count >= Env.weak_quorum t.env && view = t.cur_view then local_timeout t;
    if count >= Env.quorum t.env && not entry.tc_formed then begin
      entry.tc_formed <- true;
      Env.emit t.env (fun () -> Probe.Tc_formed { view; signers = count });
      observe_tc t (Tc.make ~view ~high_cert:None ~signers:count)
    end
  end

let handle t ~src msg =
  match msg with
  | Message.Opt_propose { block } ->
      Node_core.note_block t.core block;
      buffer t block.Block.view (P_opt block);
      process_pending t
  | Message.Propose { block; cert } ->
      Node_core.note_block t.core block;
      buffer t block.Block.view (P_normal (block, cert));
      observe_cert t cert;
      process_pending t
  | Message.Vote { kind = _; block } -> (
      match
        Node_core.add_vote t.core ~signer:src ~kind:Vote_kind.Normal block
      with
      | Some cert ->
          Env.emit t.env (fun () ->
              Probe.Cert_formed
                {
                  view = cert.Cert.view;
                  height = cert.Cert.block.Block.height;
                  signers = cert.Cert.signers;
                });
          observe_cert t cert
      | None -> ())
  | Message.Timeout { view; lock } ->
      (match lock with Some c -> observe_cert t c | None -> ());
      on_timeout t ~src view
  | Message.Cert_gossip c -> observe_cert t c
  | Message.Tc_gossip tc -> observe_tc t tc
  | Message.Status { lock; _ } -> observe_cert t lock
  | Message.Fb_propose _ | Message.Commit_vote _ ->
      ()  (* Not part of Simple Moonshot. *)
  | Message.Block_request { hash } -> Sync.handle_request (sync t) ~src hash
  | Message.Blocks_response { blocks } -> Sync.handle_response (sync t) blocks

let handle t ~src msg =
  handle t ~src msg;
  Sync.poke (sync t)

let start t =
  match Option.map Wal.load t.wal with
  | Some (Some saved) ->
      (* Crash recovery: resume from the recorded view with the recorded
         lock and vote slot; the block synchronizer refills the store. *)
      ignore (Node_core.record_cert t.core saved.Wal.lock);
      advance_to t saved.Wal.cur_view Via_recovery;
      t.lock <- saved.Wal.lock;
      t.voted <- saved.Wal.voted_main;
      t.timed_out <- saved.Wal.timeout_view >= saved.Wal.cur_view;
      (* Re-persist: a second crash must still see the restored vote slot
         (advance_to recorded the cleared one). *)
      persist t
  | Some None | None -> advance_to t 1 Via_start

(* --- model-checker support ----------------------------------------------- *)

let pending_digest = function
  | P_opt b -> Hash.to_int64 (Hash.of_fields [ 1L; Hash.to_int64 b.Block.hash ])
  | P_normal (b, c) ->
      Hash.to_int64
        (Hash.of_fields
           [ 2L; Hash.to_int64 b.Block.hash; Hash.to_int64 (Cert.digest c) ])

let via_digest = function
  | Via_cert c -> Hash.to_int64 (Hash.of_fields [ 1L; Hash.to_int64 (Cert.digest c) ])
  | Via_tc tc -> Hash.to_int64 (Hash.of_fields [ 2L; Hash.to_int64 (Tc.digest tc) ])
  | Via_start -> 3L
  | Via_recovery -> 4L

(* Hashtable-keyed pieces combine per-entry digests with addition
   (iteration-order independent); everything else hashes as a sequence.
   Timer state lives in the engine and is digested by the checker. *)
let state_hash t =
  let h = Hash.to_int64 in
  let aggs_h =
    Hashtbl.fold
      (fun view (e : tmo_entry) acc ->
        (* Signers are inert once the TC formed (late timeouts only feed
           dedup) — excluding them collapses post-quorum arrival orders. *)
        Int64.add acc
          (h
             (Hash.of_fields
                (Int64.of_int view
                ::
                (if e.tc_formed then [ 1L ]
                 else
                   0L
                   :: List.map Int64.of_int
                        (Bft_crypto.Signer_set.to_list e.signers))))))
      t.timeout_aggs 0L
  in
  let tcs_h =
    Hashtbl.fold
      (fun view tc acc ->
        Int64.add acc
          (h (Hash.of_fields [ Int64.of_int view; h (Tc.digest tc) ])))
      t.tcs 0L
  in
  let pending_h =
    Hashtbl.fold
      (fun view items acc ->
        Int64.add acc
          (h (Hash.of_fields (Int64.of_int view :: List.map pending_digest items))))
      t.pending 0L
  in
  Hash.of_fields
    [
      h (Node_core.state_hash t.core);
      h (Sync.state_hash (sync t));
      aggs_h;
      tcs_h;
      pending_h;
      Int64.of_int t.cur_view;
      via_digest t.entered_via;
      h (Cert.digest t.lock);
      (if t.voted then 1L else 0L);
      (if t.timed_out then 1L else 0L);
      (if t.proposed then 1L else 0L);
    ]

(* Every mutation of a safety slot persists in the same synchronous step,
   so between handler runs the WAL's latest record must mirror memory. *)
let wal_consistent t =
  match t.wal with
  | None -> true
  | Some wal -> (
      match Wal.load wal with
      | None -> t.cur_view = 0
      | Some s ->
          s.Wal.cur_view = t.cur_view
          && Cert.equal_id s.Wal.lock t.lock
          && s.Wal.timeout_view = (if t.timed_out then t.cur_view else 0)
          && s.Wal.voted_opt = None
          && s.Wal.voted_main = t.voted)

module Protocol = struct
  type msg = Message.t

  let msg_size = Message.size
  let cpu_cost = Message.cpu_cost
  let payload_bytes = Message.payload_bytes
  let classify = Message.classify
  let view_of = Message.view_of
  let encode_msg = Codec.encode_msg
  let decode_msg = Codec.decode_msg

  type node = t
  type wal = Wal.t

  let wal_create = Wal.create
  let wal_encode = Codec.encode_wal
  let wal_decode = Codec.decode_wal
  let create ?(equivocate = false) ?wal env = create ~equivocate ?wal env
  let start = start
  let handle = handle
  let msg_digest = Message.digest
  let pp_msg = Message.pp
  let vote_slot = Message.vote_slot
  let state_hash = state_hash
  let current_view = current_view
  let lock_view t = t.lock.Cert.view
  let wal_hash = Wal.digest
  let wal_consistent = wal_consistent
end
