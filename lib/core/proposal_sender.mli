(** Block creation and proposal dissemination, shared by all Moonshot node
    implementations.

    Honest leaders build the deterministic block for a view (fixed payload
    [b_v], so an optimistic and a normal proposal with the same parent carry
    the same block) and multicast it.  With [equivocate:true] the sender
    behaves Byzantine: it crafts a conflicting block and serves each half of
    the network a different one — the attack the safety tests exercise. *)

open Bft_types

(** [honest_block env ~view ~parent] is the unique block an honest [env.id]
    proposes for [view] on top of [parent]. *)
val honest_block : Message.t Env.t -> view:int -> parent:Block.t -> Block.t

(** [send env ~equivocate ~view ~parent wrap] builds the block(s), reports
    them via [env.on_propose] (and, in traced runs, a
    {!Bft_types.Probe.Proposal_sent} event) and disseminates [wrap block]. *)
val send :
  Message.t Env.t ->
  equivocate:bool ->
  view:int ->
  parent:Block.t ->
  (Block.t -> Message.t) ->
  unit
