(** Declarative, deterministic fault schedules.

    A schedule is a list of timed events interpreted by the runtime harness
    against the simulator: node crashes and recoveries, time-windowed
    network partitions, probabilistic link loss and extra-delay spikes.
    Times are absolute simulated milliseconds.

    Schedules are plain data: they can be written as OCaml literals, parsed
    from a compact textual syntax ({!of_string}), or generated at random
    within the threat model ({!random}).  {!validate} enforces that a
    schedule stays inside the [f] fault budget at every instant, counting
    Byzantine nodes against the same budget. *)

type event =
  | Crash of { node : int; at : float }
      (** Node loses all volatile state at [at]; only its WAL survives. *)
  | Recover of { node : int; at : float }
      (** Node restarts from its WAL at [at] and catches up via sync. *)
  | Partition of { groups : int list list; from_ : float; until : float }
      (** Messages between different groups are dropped during
          [[from_, until)].  Nodes not listed in any group form an implicit
          extra group.  Intra-group traffic is unaffected. *)
  | Link_loss of { prob : float; from_ : float; until : float }
      (** Every non-self message is independently lost with probability
          [prob] during [[from_, until)]. *)
  | Delay_spike of { extra_ms : float; from_ : float; until : float }
      (** Every non-self message sent during [[from_, until)] takes
          [extra_ms] longer — a temporary asynchrony burst that may exceed
          [Delta]. *)

type t = event list

(** The fault-free schedule. *)
val empty : t

(** Whether the schedule has no events. *)
val is_empty : t -> bool

(** Start time of an event (the [at] / [from_] field). *)
val time_of : event -> float

(** Events sorted by start time (stable). *)
val sorted : t -> t

(** Times at which a disruption ends: each [Recover], and the [until] of
    each window.  The liveness bound restarts from the latest of these. *)
val heal_times : t -> float list

(** Largest number of simultaneously-crashed nodes over the whole
    timeline. *)
val max_concurrent_crashed : t -> int

(** Number of [Crash] events in the schedule. *)
val crash_count : t -> int

(** [validate ~n ~f ~byzantine t] checks the schedule against an [n]-node
    cluster: nodes in range, sane times and probabilities, crash/recover
    alternation per node, no crash of a Byzantine node, and at every
    instant [crashed + |byzantine| <= f].  Raises [Invalid_argument]. *)
val validate : n:int -> f:int -> byzantine:int list -> t -> unit

(** [random ~rng ~n ~f ~duration ~delta] draws a schedule inside the fault
    budget: up to [f] crash/recover cycles plus optional partition, loss and
    delay windows, all disruptions healed by [0.6 * duration] so a liveness
    bound of a dozen [delta] still fits in the run. *)
val random :
  rng:Bft_sim.Rng.t -> n:int -> f:int -> duration:float -> delta:float -> t

(** [checkpoints ~gst ~horizon ~bound t] — the disruption-free points of
    the schedule (GST plus every heal/recovery) at which a liveness bound
    of [bound] ms is enforceable: points whose [[d, d + bound]] window
    runs past [horizon], contains a later disruption-free point, or
    overlaps a disruption window (open partition/loss/delay windows and
    crash→recover spans, unrecovered crashes spanning to infinity) are
    superseded and dropped.  Shared by the simulator harness and the
    net-trace liveness replay so both enforce identical semantics. *)
val checkpoints : gst:float -> horizon:float -> bound:float -> t -> float list

(** The acceptance-demo timeline: crash [leader] at [crash_at], partition
    the survivors into two halves during [[partition_at, heal_at)], recover
    the crashed node at [recover_at]. *)
val demo :
  n:int ->
  leader:int ->
  crash_at:float ->
  partition_at:float ->
  heal_at:float ->
  recover_at:float ->
  t

(** Compact textual syntax, [;]-separated events:

    {v
    crash@500:2            crash node 2 at t=500
    recover@2000:2         recover node 2 at t=2000
    partition@800-1500:0,1/2,3   groups {0,1} and {2,3} split
    loss@500-1500:0.3      30% link loss in the window
    delay@1000-2000:250    +250 ms per message in the window
    v} *)
val to_string : t -> string

(** Parse the {!to_string} syntax; [Error] names the offending clause. *)
val of_string : string -> (t, string) result

(** Pretty-print in the {!to_string} syntax. *)
val pp : Format.formatter -> t -> unit
