(* Each partition window is compiled to a per-node group index, with -1 for
   nodes in no listed group: those form an implicit extra group (all of them
   on the same side, matching the "rest of the cluster" reading). *)
type partition = { from_ : float; until : float; group_of : int array }
type loss = { from_ : float; until : float; prob : float }
type delay = { from_ : float; until : float; extra_ms : float }

type t = {
  partitions : partition array;
  losses : loss array;
  delays : delay array;
}

let compile ~n (schedule : Fault_schedule.t) =
  let partitions = ref [] and losses = ref [] and delays = ref [] in
  List.iter
    (function
      | Fault_schedule.Crash _ | Fault_schedule.Recover _ -> ()
      | Fault_schedule.Partition { groups; from_; until } ->
          let group_of = Array.make n (-1) in
          List.iteri
            (fun gi members ->
              List.iter (fun node -> group_of.(node) <- gi) members)
            groups;
          partitions := { from_; until; group_of } :: !partitions
      | Fault_schedule.Link_loss { prob; from_; until } ->
          losses := { from_; until; prob } :: !losses
      | Fault_schedule.Delay_spike { extra_ms; from_; until } ->
          delays := { from_; until; extra_ms } :: !delays)
    schedule;
  {
    partitions = Array.of_list (List.rev !partitions);
    losses = Array.of_list (List.rev !losses);
    delays = Array.of_list (List.rev !delays);
  }

let has_link_effects t =
  Array.length t.partitions > 0
  || Array.length t.losses > 0
  || Array.length t.delays > 0

let cut t ~src ~dst ~now =
  let cut_by (p : partition) =
    now >= p.from_ && now < p.until && p.group_of.(src) <> p.group_of.(dst)
  in
  Array.exists cut_by t.partitions

let loss_prob t ~now =
  let keep =
    Array.fold_left
      (fun acc (l : loss) ->
        if now >= l.from_ && now < l.until then acc *. (1. -. l.prob) else acc)
      1. t.losses
  in
  1. -. keep

let extra_delay t ~now =
  Array.fold_left
    (fun acc (d : delay) ->
      if now >= d.from_ && now < d.until then acc +. d.extra_ms else acc)
    0. t.delays
