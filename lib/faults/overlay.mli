(** Compiled link-level view of a fault schedule.

    {!compile} turns the partition / loss / delay events of a schedule into
    flat window arrays the engine's per-message hooks can query in O(#windows)
    with no allocation; crash and recover events are not link-level and are
    ignored here (the harness interprets those directly). *)

type t

val compile : n:int -> Fault_schedule.t -> t

(** Whether the schedule has any partition, loss or delay window at all —
    when false the engine hooks need not be installed and the run's message
    path stays byte-identical to an unfaulted run. *)
val has_link_effects : t -> bool

(** [cut t ~src ~dst ~now] is true when some active partition window places
    [src] and [dst] in different groups (nodes absent from every listed
    group form an implicit extra group). *)
val cut : t -> src:int -> dst:int -> now:float -> bool

(** Combined loss probability of all active loss windows at [now]
    (independent losses: [1 - prod (1 - p_i)]); 0 when none is active. *)
val loss_prob : t -> now:float -> float

(** Sum of the extra delays of all active delay windows at [now]. *)
val extra_delay : t -> now:float -> float
