(** Seeded mutations over fault schedules, the search space of the model
    checker's coverage-guided exploration ({!Bft_mc} — the dependency
    points the other way, so this module only knows schedules).

    All candidates stay inside the checker-compilable fragment:
    crash/recover pairs (one per node, strictly ordered) and pairwise
    disjoint partition windows whose groups may include singletons — the
    fully-async splits where view-divergence bugs live.  Every returned
    schedule passes {!Fault_schedule.validate} under the given fault
    budget [f]; an operator that cannot produce a valid candidate after a
    few draws returns the parent unchanged.

    Times live on a coarse grid purely to order events and keep the
    textual syntax round-trippable — the checker linearizes by order and
    ignores magnitudes. *)

(** [mutate ~n ~f rng sched] applies one randomly drawn operator: add,
    drop, retime or regroup a partition window; split a group (weighted
    double — splits reach the singleton topologies) or merge two; add,
    drop, retime or re-victim a crash/recover pair.  Deterministic in
    [rng]'s state. *)
val mutate :
  n:int -> f:int -> Bft_sim.Rng.t -> Fault_schedule.t -> Fault_schedule.t

(** Initial population for a search over [n]-node worlds: the empty
    schedule, a halves partition, an all-singletons partition, and one
    crash/recover pair — the standing chaos idioms, none of them a bug by
    itself. *)
val seeds : n:int -> Fault_schedule.t list
