module FS = Fault_schedule

type window = { from_v : int; until_v : int; group_of : int array }

type t = {
  n : int;
  crash_of : int option array; (* node -> crash view *)
  recover_of : int option array; (* node -> observer recover view *)
  windows : window list;
}

let observer _ = 0

(* Anchors are written as float times in the schedule; a logical reading
   takes the nearest integer view.  Generated schedules use exact
   integers; hand-written ones survive decimal noise. *)
let view_of_time at = int_of_float (Float.round at)

let of_schedule ~n (sched : FS.t) =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let crash_of = Array.make n None in
  let recover_of = Array.make n None in
  let windows = ref [] in
  let rec go = function
    | [] -> Ok ()
    | ev :: rest -> (
        match ev with
        | FS.Link_loss _ | FS.Delay_spike _ ->
            err "logical schedules cannot contain loss/delay windows"
        | FS.Crash { node; at } ->
            if node = 0 then err "logical schedules cannot crash the observer"
            else if node < 0 || node >= n then
              err "crash targets node %d (n = %d)" node n
            else if crash_of.(node) <> None then
              err "node %d crashes twice; one cycle per node" node
            else begin
              crash_of.(node) <- Some (view_of_time at);
              go rest
            end
        | FS.Recover { node; at } ->
            if node < 0 || node >= n then
              err "recover targets node %d (n = %d)" node n
            else if crash_of.(node) = None then
              err "node %d recovers without a crash" node
            else if recover_of.(node) <> None then
              err "node %d recovers twice" node
            else begin
              recover_of.(node) <- Some (view_of_time at);
              go rest
            end
        | FS.Partition { groups; from_; until } ->
            let group_of = Array.make n (-1) in
            List.iteri
              (fun g members ->
                List.iter
                  (fun m -> if m >= 0 && m < n then group_of.(m) <- g)
                  members)
              groups;
            windows :=
              {
                from_v = view_of_time from_;
                until_v = view_of_time until;
                group_of;
              }
              :: !windows;
            go rest)
  in
  match go (FS.sorted sched) with
  | Error _ as e -> e
  | Ok () ->
      (* A recover anchored at or before the crash can fire before the
         victim is even down; insist on strict ordering. *)
      let bad =
        List.find_opt
          (fun i ->
            match (crash_of.(i), recover_of.(i)) with
            | Some c, Some r -> r <= c
            | _ -> false)
          (List.init n (fun i -> i))
      in
      (match bad with
      | Some i ->
          err "node %d: recover anchor must be strictly after the crash" i
      | None -> Ok { n; crash_of; recover_of; windows = List.rev !windows })

let of_schedule_exn ~n sched =
  match of_schedule ~n sched with
  | Ok t -> t
  | Error e -> invalid_arg ("Logical.of_schedule: " ^ e)

let crash_anchor t node = t.crash_of.(node)
let recover_anchor t node = t.recover_of.(node)

let recoveries t =
  List.filter_map
    (fun i -> Option.map (fun v -> (v, i)) t.recover_of.(i))
    (List.init t.n (fun i -> i))
  |> List.sort compare

let cut t ~src ~src_view ~dst =
  src <> dst
  && List.exists
       (fun w ->
         src_view >= w.from_v && src_view < w.until_v
         && w.group_of.(src) <> w.group_of.(dst))
       t.windows

let cut_any t ~src ~src_view =
  List.exists
    (fun w ->
      src_view >= w.from_v && src_view < w.until_v
      && Array.exists (fun g -> g <> w.group_of.(src)) w.group_of)
    t.windows

let last_anchor t =
  let m = ref 0 in
  let bump = function Some v -> if v > !m then m := v | None -> () in
  Array.iter bump t.crash_of;
  Array.iter bump t.recover_of;
  List.iter (fun w -> if w.until_v > !m then m := w.until_v) t.windows;
  !m

(* [bump_anchor v ~victim ~n] — smallest [v' >= v] leaving the round-robin
   victim (who leads the views [w] with [w = victim + 1 (mod n)], per
   {!Bft_workload.Schedules.leader_of}) at least two views before its next
   leader slot.  Applied to every anchor that touches the victim:

   - the {e crash} anchor, because the event in which the victim's view
     reaches the anchor is its last — were the victim leader of the next
     view, that event may or may not contain the optimistic proposal for
     it depending on how deliveries batched, and the chain would hinge on
     event granularity rather than on the protocol;
   - the {e recover} anchor and the {e window end}, so the victim has two
     clean views to catch up via Sync before it must propose.

   Terminates within [n] steps. *)
let bump_anchor v ~victim ~n =
  let rec go v =
    if (((victim + 1 - v) mod n) + n) mod n >= 2 then v else go (v + 1)
  in
  go v

let random ~rng ~n =
  if n < 4 then invalid_arg "Logical.random: n < 4";
  let pick_victim () = 1 + Bft_sim.Rng.int rng (n - 1) in
  let vc = pick_victim () and vp = pick_victim () in
  (* Crash/recover cycle first, partition window after a slack gap. *)
  let crash_v = bump_anchor (3 + Bft_sim.Rng.int rng n) ~victim:vc ~n in
  let recover_v =
    bump_anchor (crash_v + 2 + Bft_sim.Rng.int rng n) ~victim:vc ~n
  in
  let part_from = recover_v + 3 + Bft_sim.Rng.int rng 3 in
  let part_until =
    bump_anchor (part_from + 1 + Bft_sim.Rng.int rng n) ~victim:vp ~n
  in
  let rest = List.filter (fun i -> i <> vp) (List.init n (fun i -> i)) in
  FS.sorted
    [
      FS.Crash { node = vc; at = float_of_int crash_v };
      FS.Recover { node = vc; at = float_of_int recover_v };
      FS.Partition
        {
          groups = [ [ vp ]; rest ];
          from_ = float_of_int part_from;
          until = float_of_int part_until;
        };
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>observer 0";
  Array.iteri
    (fun i c ->
      match c with
      | None -> ()
      | Some v ->
          Format.fprintf ppf "@,node %d: crash at view %d%a" i v
            (fun ppf -> function
              | Some r -> Format.fprintf ppf ", recover at observer view %d" r
              | None -> Format.fprintf ppf ", never recovers")
            t.recover_of.(i))
    t.crash_of;
  List.iter
    (fun w ->
      Format.fprintf ppf "@,partition views [%d, %d)" w.from_v w.until_v)
    t.windows;
  Format.fprintf ppf "@]"
