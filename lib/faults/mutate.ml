(* Seeded mutations over fault schedules, for the model checker's
   coverage-guided search.  Every operator stays inside the fragment the
   checker can compile — crash/recover pairs and non-overlapping partition
   windows (loss and delay have no untimed meaning) — and every candidate
   is validated before being returned, so the search never wastes an
   evaluation on a rejected schedule.

   Times live on a coarse grid: the checker ignores magnitudes (it
   linearizes by order), so the grid only has to make window-overlap
   checks exact and keep the textual syntax round-trippable. *)

module FS = Fault_schedule
module Rng = Bft_sim.Rng

let grid = 10.
let horizon_slots = 100

let slot rng = grid *. float_of_int (Rng.int rng horizon_slots)

(* A window [a, b) on the grid, nonempty, within the horizon. *)
let window rng =
  let a = slot rng in
  let len = grid *. float_of_int (1 + Rng.int rng 40) in
  let b = Float.min (a +. len) (grid *. float_of_int horizon_slots) in
  if b <= a then (a, a +. grid) else (a, b)

(* Color every node, keep the nonempty groups; at least two groups so the
   partition actually cuts something.  Singleton groups are deliberately
   reachable — fully-async splits are where view-divergence bugs live. *)
let random_groups rng n =
  let k = 2 + Rng.int rng (max 1 (n - 1)) in
  let color = Array.init n (fun _ -> Rng.int rng k) in
  (* Force at least two distinct colors. *)
  if Array.for_all (fun c -> c = color.(0)) color then
    color.(n - 1) <- (color.(0) + 1) mod k;
  let groups =
    List.filter_map
      (fun c ->
        match List.filter (fun i -> color.(i) = c) (List.init n (fun i -> i)) with
        | [] -> None
        | g -> Some g)
      (List.init k (fun c -> c))
  in
  groups

let partitions sched =
  List.filter_map
    (function FS.Partition _ as p -> Some p | _ -> None)
    sched

let crash_nodes sched =
  List.filter_map (function FS.Crash { node; _ } -> Some node | _ -> None) sched

(* The checker supports one open partition at a time: windows must be
   pairwise disjoint.  [FS.validate] does not enforce this (the harness
   handles overlap), so the mutator checks it itself. *)
let windows_disjoint sched =
  let ws =
    List.filter_map
      (function
        | FS.Partition { from_; until; _ } -> Some (from_, until) | _ -> None)
      sched
  in
  let rec ok = function
    | [] -> true
    | (a, b) :: rest ->
        List.for_all (fun (a', b') -> b <= a' || b' <= a) rest && ok rest
  in
  ok ws

let valid ~n ~f sched =
  windows_disjoint sched
  &&
  try
    FS.validate ~n ~f ~byzantine:[] sched;
    true
  with Invalid_argument _ -> false

(* {2 Operators}.  Each returns [None] when it does not apply (nothing to
   drop, no free node to crash) — the driver then draws another. *)

let pick rng = function
  | [] -> None
  | l -> Some (List.nth l (Rng.int rng (List.length l)))

let replace sched old by =
  by @ List.filter (fun ev -> ev != old) sched

let add_partition rng ~n sched =
  let from_, until = window rng in
  Some (FS.Partition { groups = random_groups rng n; from_; until } :: sched)

let drop_partition rng ~n:_ sched =
  Option.map (fun p -> replace sched p []) (pick rng (partitions sched))

let retime_partition rng ~n:_ sched =
  Option.map
    (fun p ->
      match p with
      | FS.Partition { groups; _ } ->
          let from_, until = window rng in
          replace sched p [ FS.Partition { groups; from_; until } ]
      | _ -> sched)
    (pick rng (partitions sched))

let regroup_partition rng ~n sched =
  Option.map
    (fun p ->
      match p with
      | FS.Partition { from_; until; _ } ->
          replace sched p
            [ FS.Partition { groups = random_groups rng n; from_; until } ]
      | _ -> sched)
    (pick rng (partitions sched))

let split_group rng ~n:_ sched =
  Option.bind (pick rng (partitions sched)) (fun p ->
      match p with
      | FS.Partition { groups; from_; until } -> (
          match
            pick rng (List.filter (fun g -> List.length g >= 2) groups)
          with
          | None -> None
          | Some g ->
              let cut = 1 + Rng.int rng (List.length g - 1) in
              let a = List.filteri (fun i _ -> i < cut) g in
              let b = List.filteri (fun i _ -> i >= cut) g in
              let groups =
                a :: b :: List.filter (fun g' -> g' != g) groups
              in
              Some (replace sched p [ FS.Partition { groups; from_; until } ]))
      | _ -> None)

let merge_groups rng ~n:_ sched =
  Option.bind (pick rng (partitions sched)) (fun p ->
      match p with
      | FS.Partition { groups; from_; until } when List.length groups >= 3 ->
          let i = Rng.int rng (List.length groups) in
          let j = Rng.int rng (List.length groups) in
          if i = j then None
          else
            let gi = List.nth groups i and gj = List.nth groups j in
            let groups =
              (gi @ gj)
              :: List.filter (fun g -> g != gi && g != gj) groups
            in
            Some (replace sched p [ FS.Partition { groups; from_; until } ])
      | _ -> None)

let add_crash rng ~n sched =
  let free =
    List.filter
      (fun i -> not (List.mem i (crash_nodes sched)))
      (List.init n (fun i -> i))
  in
  Option.map
    (fun node ->
      let at, back = window rng in
      FS.Crash { node; at } :: FS.Recover { node; at = back } :: sched)
    (pick rng free)

let crash_pair sched node =
  List.filter
    (function
      | FS.Crash { node = i; _ } | FS.Recover { node = i; _ } -> i = node
      | _ -> false)
    sched

let drop_crash rng ~n:_ sched =
  Option.map
    (fun node ->
      List.filter
        (fun ev -> not (List.memq ev (crash_pair sched node)))
        sched)
    (pick rng (crash_nodes sched))

let retime_crash rng ~n:_ sched =
  Option.map
    (fun node ->
      let at, back = window rng in
      FS.Crash { node; at }
      :: FS.Recover { node; at = back }
      :: List.filter (fun ev -> not (List.memq ev (crash_pair sched node))) sched)
    (pick rng (crash_nodes sched))

let revictim_crash rng ~n sched =
  Option.bind (pick rng (crash_nodes sched)) (fun old ->
      let free =
        List.filter
          (fun i -> not (List.mem i (crash_nodes sched)))
          (List.init n (fun i -> i))
      in
      Option.map
        (fun node ->
          List.map
            (function
              | FS.Crash { node = i; at } when i = old -> FS.Crash { node; at }
              | FS.Recover { node = i; at } when i = old ->
                  FS.Recover { node; at }
              | ev -> ev)
            sched)
        (pick rng free))

let operators =
  [|
    add_partition;
    drop_partition;
    retime_partition;
    regroup_partition;
    split_group;
    split_group;  (* double weight: splits reach the singleton groups *)
    merge_groups;
    add_crash;
    drop_crash;
    retime_crash;
    revictim_crash;
  |]

let mutate ~n ~f rng sched =
  let rec attempt k =
    if k = 0 then sched
    else
      let op = operators.(Rng.int rng (Array.length operators)) in
      match op rng ~n sched with
      | Some cand when valid ~n ~f (FS.sorted cand) -> FS.sorted cand
      | _ -> attempt (k - 1)
  in
  attempt 8

let seeds ~n =
  let all = List.init n (fun i -> i) in
  let halves =
    [
      List.filter (fun i -> i < n / 2) all; List.filter (fun i -> i >= n / 2) all;
    ]
  in
  [
    [];
    [ FS.Partition { groups = halves; from_ = 100.; until = 500. } ];
    [ FS.Partition { groups = List.map (fun i -> [ i ]) all; from_ = 100.; until = 500. } ];
    [ FS.Crash { node = n - 1; at = 200. }; FS.Recover { node = n - 1; at = 600. } ];
  ]
