type event =
  | Crash of { node : int; at : float }
  | Recover of { node : int; at : float }
  | Partition of { groups : int list list; from_ : float; until : float }
  | Link_loss of { prob : float; from_ : float; until : float }
  | Delay_spike of { extra_ms : float; from_ : float; until : float }

type t = event list

let empty = []
let is_empty t = t = []

let time_of = function
  | Crash { at; _ } | Recover { at; _ } -> at
  | Partition { from_; _ } | Link_loss { from_; _ } | Delay_spike { from_; _ }
    ->
      from_

let sorted t =
  List.stable_sort (fun a b -> Float.compare (time_of a) (time_of b)) t

let heal_times t =
  List.filter_map
    (function
      | Crash _ -> None
      | Recover { at; _ } -> Some at
      | Partition { until; _ }
      | Link_loss { until; _ }
      | Delay_spike { until; _ } ->
          Some until)
    t

(* Sweep the crash/recover timeline.  [validate] has already checked the
   per-node alternation, so a plain +1/-1 walk over the sorted events is
   exact; recoveries sort before crashes at equal times to keep the count
   conservative-but-tight (validate forbids equal-time pairs per node). *)
let max_concurrent_crashed t =
  let deltas =
    List.filter_map
      (function
        | Crash { at; _ } -> Some (at, 1)
        | Recover { at; _ } -> Some (at, -1)
        | _ -> None)
      t
  in
  let deltas =
    List.stable_sort
      (fun (ta, da) (tb, db) ->
        match Float.compare ta tb with 0 -> compare da db | c -> c)
      deltas
  in
  let _, peak =
    List.fold_left
      (fun (cur, peak) (_, d) ->
        let cur = cur + d in
        (cur, max peak cur))
      (0, 0) deltas
  in
  peak

let crash_count t =
  List.length (List.filter (function Crash _ -> true | _ -> false) t)

let fail fmt = Format.kasprintf invalid_arg ("Fault_schedule.validate: " ^^ fmt)

let check_window ~what ~from_ ~until =
  if from_ < 0. then fail "%s window starts before t=0" what;
  if until <= from_ then fail "%s window is empty or reversed" what

let validate ~n ~f ~byzantine t =
  let check_node what node =
    if node < 0 || node >= n then fail "%s targets node %d (n = %d)" what node n
  in
  List.iter
    (fun ev ->
      match ev with
      | Crash { node; at } ->
          check_node "crash" node;
          if at < 0. then fail "crash of node %d at negative time" node;
          if List.mem node byzantine then
            fail "node %d is Byzantine; it cannot also crash" node
      | Recover { node; at } ->
          check_node "recover" node;
          if at < 0. then fail "recover of node %d at negative time" node
      | Partition { groups; from_; until } ->
          check_window ~what:"partition" ~from_ ~until;
          let members = List.concat groups in
          List.iter (check_node "partition") members;
          if
            List.length members
            <> List.length (List.sort_uniq compare members)
          then fail "partition groups overlap"
      | Link_loss { prob; from_; until } ->
          check_window ~what:"loss" ~from_ ~until;
          if prob < 0. || prob > 1. then fail "loss probability outside [0, 1]"
      | Delay_spike { extra_ms; from_; until } ->
          check_window ~what:"delay" ~from_ ~until;
          if extra_ms < 0. then fail "negative delay spike")
    t;
  (* Per-node crash/recover alternation: strictly interleaved, crash first,
     strictly increasing times. *)
  for node = 0 to n - 1 do
    let mine =
      List.filter_map
        (function
          | Crash { node = i; at } when i = node -> Some (at, `Crash)
          | Recover { node = i; at } when i = node -> Some (at, `Recover)
          | _ -> None)
        (sorted t)
    in
    ignore
      (List.fold_left
         (fun (prev_time, expect) (at, kind) ->
           if at <= prev_time then
             fail "node %d: crash/recover times must strictly increase" node;
           (match (expect, kind) with
           | `Crash, `Recover ->
               fail "node %d recovers without a preceding crash" node
           | `Recover, `Crash -> fail "node %d crashes while already down" node
           | _ -> ());
           (at, match kind with `Crash -> `Recover | `Recover -> `Crash))
         (neg_infinity, `Crash) mine)
  done;
  let concurrent = max_concurrent_crashed t + List.length byzantine in
  if concurrent > f then
    fail "%d simultaneous crashed+Byzantine nodes exceeds f = %d" concurrent f

(* Random schedules for the chaos grid.  All disruptions are healed by
   [0.6 * duration], leaving a 0.4-duration tail for the liveness bound to
   be checked in. *)
let random ~rng ~n ~f ~duration ~delta =
  let horizon = 0.6 *. duration in
  let events = ref [] in
  let add e = events := e :: !events in
  (* Crash/recover cycles: distinct victims, each down for a random slice
     of the first half of the run. *)
  let crashes = if f <= 0 then 0 else Bft_sim.Rng.int rng (f + 1) in
  let victims = ref [] in
  let rec pick_victim () =
    let v = Bft_sim.Rng.int rng n in
    if List.mem v !victims then pick_victim ()
    else begin
      victims := v :: !victims;
      v
    end
  in
  for _ = 1 to crashes do
    let node = pick_victim () in
    let at = (0.05 +. Bft_sim.Rng.float rng 0.3) *. duration in
    let back = at +. ((0.05 +. Bft_sim.Rng.float rng 0.2) *. duration) in
    add (Crash { node; at });
    add (Recover { node; at = Float.min back (horizon -. 1.) })
  done;
  let window () =
    let from_ = (0.1 +. Bft_sim.Rng.float rng 0.25) *. duration in
    let until = from_ +. ((0.05 +. Bft_sim.Rng.float rng 0.2) *. duration) in
    (from_, Float.min until horizon)
  in
  if Bft_sim.Rng.int rng 2 = 0 then begin
    (* A two-way split drawn by coin flip per node. *)
    let side = Array.init n (fun _ -> Bft_sim.Rng.int rng 2) in
    let group k =
      List.filter (fun i -> side.(i) = k) (List.init n (fun i -> i))
    in
    let from_, until = window () in
    add (Partition { groups = [ group 0; group 1 ]; from_; until })
  end;
  if Bft_sim.Rng.int rng 2 = 0 then begin
    let from_, until = window () in
    add (Link_loss { prob = 0.05 +. Bft_sim.Rng.float rng 0.25; from_; until })
  end;
  if Bft_sim.Rng.int rng 2 = 0 then begin
    let from_, until = window () in
    add
      (Delay_spike
         { extra_ms = (0.5 +. Bft_sim.Rng.float rng 1.5) *. delta; from_; until })
  end;
  sorted !events

(* One liveness checkpoint per disruption-free point: GST and every
   heal/recovery.  A checkpoint whose [bound]-long window contains a later
   disruption (an open partition/loss/delay window, a crash→recover span —
   unrecovered crashes span to infinity — or the run's horizon) measures
   the network mid-fault, so the later point carries the bound instead. *)
let checkpoints ~gst ~horizon ~bound t =
  let heals = heal_times t in
  let points = List.sort_uniq Float.compare (gst :: heals) in
  let crash_spans =
    List.filter_map
      (function
        | Crash { node; at } ->
            let recovery =
              List.filter_map
                (function
                  | Recover { node = n'; at = r } when n' = node && r > at ->
                      Some r
                  | _ -> None)
                t
            in
            Some
              ( at,
                match recovery with
                | [] -> infinity
                | rs -> List.fold_left Float.min (List.hd rs) rs )
        | _ -> None)
      t
  in
  let windows =
    crash_spans
    @ List.filter_map
        (function
          | Partition { from_; until; _ }
          | Link_loss { from_; until; _ }
          | Delay_spike { from_; until; _ } ->
              Some (from_, until)
          | Crash _ | Recover _ -> None)
        t
  in
  List.filter
    (fun d ->
      let deadline = d +. bound in
      not
        (deadline > horizon
        || List.exists (fun d' -> d' > d && d' <= deadline) points
        || List.exists (fun (a, b) -> a < deadline && b > d) windows))
    points

let demo ~n ~leader ~crash_at ~partition_at ~heal_at ~recover_at =
  let survivors = List.filter (fun i -> i <> leader) (List.init n (fun i -> i)) in
  let rec split k = function
    | [] -> ([], [])
    | x :: rest ->
        let a, b = split (k - 1) rest in
        if k > 0 then (x :: a, b) else (a, x :: b)
  in
  let g0, g1 = split (List.length survivors / 2) survivors in
  [
    Crash { node = leader; at = crash_at };
    Partition { groups = [ g0; g1 ]; from_ = partition_at; until = heal_at };
    Recover { node = leader; at = recover_at };
  ]

(* Textual syntax.  [%g] round-trips every time we generate ourselves and
   keeps schedules greppable in configs and logs. *)

let string_of_event = function
  | Crash { node; at } -> Printf.sprintf "crash@%g:%d" at node
  | Recover { node; at } -> Printf.sprintf "recover@%g:%d" at node
  | Partition { groups; from_; until } ->
      let group g = String.concat "," (List.map string_of_int g) in
      Printf.sprintf "partition@%g-%g:%s" from_ until
        (String.concat "/" (List.map group groups))
  | Link_loss { prob; from_; until } ->
      Printf.sprintf "loss@%g-%g:%g" from_ until prob
  | Delay_spike { extra_ms; from_; until } ->
      Printf.sprintf "delay@%g-%g:%g" from_ until extra_ms

let to_string t = String.concat ";" (List.map string_of_event t)

let parse_event s =
  let invalid () = Error (Printf.sprintf "bad fault event %S" s) in
  match String.index_opt s '@' with
  | None -> invalid ()
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.index_opt rest ':' with
      | None -> invalid ()
      | Some j -> (
          let times = String.sub rest 0 j in
          let arg = String.sub rest (j + 1) (String.length rest - j - 1) in
          let parse_window () =
            match String.index_opt times '-' with
            | None -> None
            | Some k ->
                let a = String.sub times 0 k in
                let b = String.sub times (k + 1) (String.length times - k - 1) in
                Option.bind (float_of_string_opt a) (fun from_ ->
                    Option.bind (float_of_string_opt b) (fun until ->
                        if until <= from_ then None else Some (from_, until)))
          in
          match kind with
          | "crash" | "recover" -> (
              match (float_of_string_opt times, int_of_string_opt arg) with
              | Some at, Some node ->
                  if kind = "crash" then Ok (Crash { node; at })
                  else Ok (Recover { node; at })
              | _ -> invalid ())
          | "partition" -> (
              match parse_window () with
              | None -> invalid ()
              | Some (from_, until) -> (
                  let parse_group g =
                    let members =
                      List.filter (fun m -> m <> "")
                        (String.split_on_char ',' g)
                    in
                    let ids = List.filter_map int_of_string_opt members in
                    if List.length ids = List.length members then Some ids
                    else None
                  in
                  let groups =
                    List.filter_map parse_group (String.split_on_char '/' arg)
                  in
                  match groups with
                  | _ :: _ :: _
                    when List.length groups
                         = List.length (String.split_on_char '/' arg) ->
                      Ok (Partition { groups; from_; until })
                  | _ -> invalid ()))
          | "loss" | "delay" -> (
              match (parse_window (), float_of_string_opt arg) with
              | Some (from_, until), Some v ->
                  if kind = "loss" then
                    if v < 0. || v > 1. then
                      Error
                        (Printf.sprintf
                           "fault event %S: loss probability outside [0, 1]" s)
                    else Ok (Link_loss { prob = v; from_; until })
                  else Ok (Delay_spike { extra_ms = v; from_; until })
              | _ -> invalid ())
          | _ -> invalid ()))

let of_string s =
  let parts =
    List.filter (fun p -> String.trim p <> "") (String.split_on_char ';' s)
  in
  List.fold_left
    (fun acc part ->
      Result.bind acc (fun evs ->
          Result.map (fun ev -> ev :: evs) (parse_event (String.trim part))))
    (Ok []) parts
  |> Result.map List.rev

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Fmt.string)
    (List.map string_of_event t)
