(** View-anchored ("logical clock") interpretation of fault schedules.

    A {!Fault_schedule.t} is written against a clock.  The simulator
    interprets event times as simulated milliseconds and the TCP backend
    can interpret them as wall milliseconds — but a time-based schedule
    can never produce the {e same committed chain} on both substrates:
    view progression is latency-bound, so the set of views falling inside
    a given time window differs between a discrete-event run and a real
    socket run, and with it the set of views that time out.

    This module fixes that by reading the same schedule against the only
    clock both substrates share: the protocol's own view counter.  Event
    times are interpreted as {e view numbers}:

    - [crash@5:2] — node 2 goes dark when {e its own} current view first
      reaches 5 (checked between handler runs: the handler that enters
      the view completes, including its sends, and then the node dies);
    - [recover@9:2] — node 2 restarts from its WAL when the {e observer}
      (node 0, which a logical schedule must never crash) reaches view 9;
    - [partition@7-9:1/0,2,3] — a frame from [src] to a node in another
      group is dropped iff [src]'s current view at send time is in
      [[7, 9)].

    Every trigger is a deterministic function of protocol state, not of
    elapsed time, so a schedule drawn by {!random} yields the same
    committed (height, view, hash) chain on the simulator and on real
    sockets — the property `crossval-chaos` checks.  Loss and delay
    windows are inherently probabilistic/temporal and are rejected.

    Chain equality additionally needs the schedule to keep view
    progression timing-independent; {!random} enforces the sufficient
    conditions (see its doc). *)

type t

(** Compile a schedule under the view-clock reading.  Errors when the
    schedule contains loss or delay windows, crashes the observer
    (node 0), crashes any node more than once, or recovers a node that
    never crashed. *)
val of_schedule : n:int -> Fault_schedule.t -> (t, string) result

(** Like {!of_schedule} but raises [Invalid_argument]. *)
val of_schedule_exn : n:int -> Fault_schedule.t -> t

(** The node whose view anchors recoveries: always 0.  A logical
    schedule never crashes or isolates it. *)
val observer : t -> int

(** [crash_anchor t node] — the view at which [node] crashes (applies to
    its first incarnation only), if the schedule crashes it. *)
val crash_anchor : t -> int -> int option

(** [recover_anchor t node] — the observer view at which [node] is
    restarted, if scheduled. *)
val recover_anchor : t -> int -> int option

(** All (recover_view, node) pairs, sorted by view. *)
val recoveries : t -> (int * int) list

(** [cut t ~src ~src_view ~dst] — drop a frame from [src] to [dst] sent
    while [src]'s current view is [src_view]?  Self-delivery is never
    cut.  Nodes in no listed group share one implicit group, as in
    {!Overlay}. *)
val cut : t -> src:int -> src_view:int -> dst:int -> bool

(** Whether any destination could be cut for [src] at [src_view] — a
    cheap pre-test that lets a multicast stay a multicast outside
    partition windows. *)
val cut_any : t -> src:int -> src_view:int -> bool

(** The largest view mentioned by any anchor — runs should target enough
    blocks to progress well past it. *)
val last_anchor : t -> int

(** [random ~rng ~n] draws a schedule with exactly one crash/recover
    cycle and one single-victim partition window, shaped so the chain is
    a pure function of the protocol on both substrates:

    - victims are drawn from [1 .. n-1]; node 0 stays clean (it anchors
      recoveries and always sits in the majority group);
    - at any view at most one node is affected (windows are disjoint
      with slack between them), so the remaining [n - 1 >= n - f]
      correct nodes form a quorum and keep advancing regardless of
      timing;
    - partition groups are [{victim}] versus the rest, so the majority
      side retains a quorum and the minority side freezes (it cannot
      form a timeout certificate alone) until the window passes it by;
    - every anchor touching a victim — the crash anchor, the recover
      anchor and the window end — lands at least two views before that
      victim's next round-robin leader slot.  For recoveries and heals
      this leaves slack to catch up via Sync before proposing; for the
      crash it keeps the victim's dying event away from the view where
      it would send its optimistic proposal, whose presence would
      otherwise depend on how deliveries happened to batch.

    Requires [n >= 4].  The result is an ordinary {!Fault_schedule.t}
    (printable, parseable) whose times are view numbers. *)
val random : rng:Bft_sim.Rng.t -> n:int -> Fault_schedule.t

val pp : Format.formatter -> t -> unit
