(** The replicated key-value state machine.

    Deterministic: two stores that applied the same command sequence have
    equal {!digest}s, which is how tests and examples verify the SMR
    consistency guarantee end to end. *)

type t

(** An empty store. *)
val create : unit -> t

(** Execute one command against the store. *)
val apply : t -> Command.t -> unit

(** Current value bound to a key, if any. *)
val find : t -> string -> int option
val size : t -> int  (** Number of live keys. *)

val applied : t -> int  (** Total commands applied. *)

(** Order-independent digest of the current bindings plus the applied-command
    count (so replicas that applied different prefixes differ). *)
val digest : t -> Bft_types.Hash.t

(** Bindings sorted by key (tests, inspection). *)
val bindings : t -> (string * int) list
