(** End-to-end (client-side) transaction latency analysis.

    A transaction's end-to-end latency is queueing delay (waiting for the
    next block to be cut) plus the block's commit latency.  Under a steady
    arrival stream, transactions arriving between consecutive block
    creations wait half the block period on average — which is why a block
    period of delta (Moonshot) beats 2 delta (Jolteon) on end-to-end latency
    even when block commit latencies were equal.  This module computes that
    from a run's per-block timeline. *)

(** [(created_ms, quorum_commit_ms option)] per block, any order. *)
type block_timeline = (float * float option) list

type stats = {
  committed_blocks : int;
  avg_block_period_ms : float;  (** Mean gap between block creations. *)
  avg_commit_latency_ms : float;  (** Creation to quorum commit. *)
  avg_queueing_ms : float;  (** Mean wait for the next cut block. *)
  avg_end_to_end_ms : float;  (** Queueing plus commit. *)
  lost_blocks : int;  (** Created but never quorum-committed. *)
}

(** Raises [Invalid_argument] when fewer than two blocks committed. *)
val analyze : block_timeline -> stats

(** Multi-line human-readable rendering of the stats. *)
val pp : Format.formatter -> stats -> unit
