(** Client commands executed by the replicated state machine.

    The consensus layer carries parametric payloads (as in the paper's
    evaluation); the application layer expands each payload into the
    commands it stands for.  Expansion is a pure function of the payload
    descriptor, so every replica derives the same command sequence — exactly
    the property SMR needs, without materializing megabytes of bytes inside
    the simulator. *)

type t =
  | Set of { key : string; value : int }
  | Incr of { key : string; by : int }
  | Del of { key : string }

(** Wire footprint of one command: one 180-byte payload item. *)
val encoded_size : int

(** [of_payload p] expands a payload into its [Payload.item_count p]
    commands, deterministically from [p.id]. *)
val of_payload : Bft_types.Payload.t -> t list

(** Structural equality. *)
val equal : t -> t -> bool

(** Human-readable rendering, e.g. [set k3=17]. *)
val pp : Format.formatter -> t -> unit
