(** A replica's application ledger: consumes the consensus layer's commit
    stream (blocks, in chain order) and drives the {!Kv_store} state
    machine.

    The commit order delivered by any Moonshot/Jolteon node is a prefix of
    the same global chain, so any two ledgers agree on their common prefix —
    checked by comparing {!digest}s at equal heights. *)

type t

(** A fresh ledger at height 0 over an empty store. *)
val create : unit -> t

(** [apply_block t b] executes [b]'s commands.  Blocks must arrive in chain
    order (height [height t + 1]); raises [Invalid_argument] otherwise —
    catching integration bugs loudly. *)
val apply_block : t -> Bft_types.Block.t -> unit

val height : t -> int  (** Height of the last applied block (0 initially). *)

(** The underlying state machine (live view, not a copy). *)
val store : t -> Kv_store.t

(** Digest of the current state, [Kv_store.digest (store t)]. *)
val digest : t -> Bft_types.Hash.t

(** State digest as it was right after applying the block at [height];
    [None] if that height has not been applied.  Lets replicas that are at
    different heights be compared on their common prefix. *)
val digest_at : t -> int -> Bft_types.Hash.t option

(** Total commands executed across all applied blocks. *)
val commands_applied : t -> int
