(** A node's local store of block headers, indexed by hash with a
    parent-to-children index for descendant queries.

    The store always contains the genesis block.  Blocks arrive out of order
    (a vote can beat the proposal that carries the block), so ancestry
    queries tolerate missing intermediate blocks by reporting [`Unknown]. *)

open Bft_types

type t

val create : unit -> t

(** [insert t b] records [b]; idempotent.  Returns [true] when new. *)
val insert : t -> Block.t -> bool

val find : t -> Hash.t -> Block.t option
val mem : t -> Hash.t -> bool
val parent : t -> Block.t -> Block.t option
val children : t -> Hash.t -> Block.t list
val size : t -> int

(** [is_ancestor t ~ancestor ~of_] walks parent links from [of_].  A block is
    an ancestor of itself.  [`Unknown] when a parent link leaves the store
    before reaching [ancestor]'s height. *)
val is_ancestor : t -> ancestor:Block.t -> of_:Block.t -> [ `Yes | `No | `Unknown ]

(** Blocks in the store that descend from the block with hash [h]
    (excluding the block itself). *)
val descendants : t -> Hash.t -> Block.t list

(** The chain from genesis to [b] inclusive, oldest first.  [None] when an
    ancestor is missing. *)
val chain_to : t -> Block.t -> Block.t list option

(** Fold over every stored block (genesis included) in {e unspecified}
    order; digest builders must combine per-block terms commutatively. *)
val fold : (Block.t -> 'acc -> 'acc) -> t -> 'acc -> 'acc
