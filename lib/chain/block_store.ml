open Bft_types

type t = {
  blocks : (int, Block.t) Hashtbl.t;  (* keyed by Hash.to_int *)
  by_parent : (int, Block.t list) Hashtbl.t;
}

let key h = Hash.to_int h

let create () =
  let t = { blocks = Hashtbl.create 256; by_parent = Hashtbl.create 256 } in
  Hashtbl.replace t.blocks (key Block.genesis.Block.hash) Block.genesis;
  t

let mem t h = Hashtbl.mem t.blocks (key h)
let find t h = Hashtbl.find_opt t.blocks (key h)

let insert t (b : Block.t) =
  if mem t b.Block.hash then false
  else begin
    Hashtbl.replace t.blocks (key b.Block.hash) b;
    let siblings =
      Option.value ~default:[] (Hashtbl.find_opt t.by_parent (key b.Block.parent))
    in
    Hashtbl.replace t.by_parent (key b.Block.parent) (b :: siblings);
    true
  end

let parent t (b : Block.t) =
  if Block.is_genesis b then None else find t b.Block.parent

let children t h =
  Option.value ~default:[] (Hashtbl.find_opt t.by_parent (key h))

let size t = Hashtbl.length t.blocks

let is_ancestor t ~ancestor ~of_ =
  let open Block in
  let rec walk b =
    if b.height < ancestor.height then `No
    else if b.height = ancestor.height then
      if Hash.equal b.hash ancestor.hash then `Yes else `No
    else
      match find t b.parent with None -> `Unknown | Some p -> walk p
  in
  walk of_

let descendants t h =
  let rec gather acc hash =
    List.fold_left
      (fun acc (c : Block.t) -> gather (c :: acc) c.Block.hash)
      acc (children t hash)
  in
  gather [] h

let fold f t init = Hashtbl.fold (fun _ b acc -> f b acc) t.blocks init

let chain_to t (b : Block.t) =
  let rec walk acc (b : Block.t) =
    if Block.is_genesis b then Some (b :: acc)
    else
      match find t b.Block.parent with
      | None -> None
      | Some p -> walk (b :: acc) p
  in
  walk [] b
