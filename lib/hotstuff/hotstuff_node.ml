open Bft_types

type t = Jolteon.Jolteon_node.t

let create ?equivocate ?wal (env : Jolteon.Jolteon_msg.t Env.t) =
  Jolteon.Jolteon_node.create ?equivocate ~commit_depth:3 ?wal env

let start = Jolteon.Jolteon_node.start
let handle = Jolteon.Jolteon_node.handle
let committed = Jolteon.Jolteon_node.committed

module Protocol = struct
  type msg = Jolteon.Jolteon_msg.t

  let msg_size = Jolteon.Jolteon_msg.size
  let cpu_cost = Jolteon.Jolteon_msg.cpu_cost
  let payload_bytes = Jolteon.Jolteon_msg.payload_bytes
  let classify = Jolteon.Jolteon_msg.classify
  let view_of = Jolteon.Jolteon_msg.view_of
  let encode_msg = Jolteon.Jolteon_codec.encode_msg
  let decode_msg = Jolteon.Jolteon_codec.decode_msg

  type node = t
  type wal = Moonshot.Wal.t

  let wal_create = Moonshot.Wal.create
  let wal_encode = Moonshot.Codec.encode_wal
  let wal_decode = Moonshot.Codec.decode_wal
  let create ?(equivocate = false) ?wal env = create ~equivocate ?wal env
  let start = start
  let handle = handle
  let msg_digest = Jolteon.Jolteon_msg.digest
  let pp_msg = Jolteon.Jolteon_msg.pp
  let vote_slot = Jolteon.Jolteon_msg.vote_slot
  let state_hash = Jolteon.Jolteon_node.Protocol.state_hash
  let current_view = Jolteon.Jolteon_node.Protocol.current_view
  let lock_view = Jolteon.Jolteon_node.Protocol.lock_view
  let wal_hash = Moonshot.Wal.digest
  let wal_consistent = Jolteon.Jolteon_node.Protocol.wal_consistent
end
