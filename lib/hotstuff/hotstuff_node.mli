(** Chained HotStuff baseline (Yin et al., PODC 2019), the three-chain
    ancestor of Jolteon.

    Structurally identical to {!Jolteon.Jolteon_node} (leader proposes,
    replicas vote to the next leader, QCs ride in proposals) but a block
    only commits at the head of a {e three}-chain of consecutive views —
    adding one full round-trip, which is the 7-delta minimum commit latency
    of Table I (footnote 2: with next-leader vote aggregation).  Used by the
    Table I empirical-latency bench. *)

open Bft_types

type t = Jolteon.Jolteon_node.t

val create :
  ?equivocate:bool -> ?wal:Moonshot.Wal.t -> Jolteon.Jolteon_msg.t Env.t -> t
val start : t -> unit
val handle : t -> src:int -> Jolteon.Jolteon_msg.t -> unit
val committed : t -> int

module Protocol :
  Bft_types.Protocol_intf.S
    with type msg = Jolteon.Jolteon_msg.t
     and type node = t
