(** Collision-resistant digests for the simulation.

    Real deployments would use SHA-256 or BLAKE3; for a deterministic
    simulation a 64-bit FNV-1a digest over the hashed structure is enough to
    make distinct blocks distinguishable while remaining cheap and
    reproducible.  The wire size accounted for digests is nevertheless that of
    a 32-byte production hash (see {!Bft_types.Wire_size}). *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int

(** [of_fields fields] digests a list of 64-bit field values. *)
val of_fields : int64 list -> t

(** [of_string s] digests the bytes of [s]. *)
val of_string : string -> t

(** Digest used for "no hash" slots, e.g. the parent of the genesis block. *)
val null : t

val to_hex : t -> string
val pp : Format.formatter -> t -> unit

(** Stable value usable as a hash-table key. *)
val to_int : t -> int

(** The digest's 64-bit value, for folding one digest into another via
    {!of_fields} (how composite state digests are built). *)
val to_int64 : t -> int64

(** Inverse of {!to_int64}; reconstructs a digest received off the wire
    (block-request hashes travel as their raw 64-bit value). *)
val of_int64 : int64 -> t
