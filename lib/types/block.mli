(** Blocks of the replicated chain.

    A block [B_k := (b_v, H(B_{k-1}))] references its unique parent by hash
    and carries a fixed payload for the view it was proposed in (Section II-B
    of the paper).  Payload bytes are abstracted by {!Payload.t}; everything
    the protocols inspect travels in this header, so votes and certificates
    can carry it at small-message cost while the payload itself only affects
    the wire size of proposals. *)

type t = private {
  hash : Hash.t;
  parent : Hash.t;  (** [Hash.null] for the genesis block. *)
  view : int;  (** View the block was proposed for; 0 for genesis. *)
  height : int;  (** Number of ancestors; 0 for genesis. *)
  proposer : int;  (** Node id of the proposer; -1 for genesis. *)
  payload : Payload.t;
}

(** The genesis block [B_0], known to all nodes at protocol start. *)
val genesis : t

(** [create ~parent ~view ~proposer ~payload] builds the child of [parent]
    proposed for [view].  The hash commits to every header field, so blocks
    proposed for the same view with the same parent and payload are equal,
    while any difference (an equivocation) yields a distinct hash.
    Raises [Invalid_argument] if [view <= parent.view]. *)
val create : parent:t -> view:int -> proposer:int -> payload:Payload.t -> t

(** [of_wire ~parent ~view ~height ~proposer ~payload] reconstructs a block
    received off the wire.  The block's own hash is never transmitted: it is
    a pure function of the header fields, so the receiver recomputes it —
    a peer cannot make two different headers carry the same hash, nor claim
    a hash its fields do not produce.  Unlike {!create}, only the parent's
    hash is known here, so the [view > parent.view] relation cannot be
    checked locally; quorum formation enforces it.  Raises
    [Invalid_argument] on negative [view]/[height] or [proposer < -1]. *)
val of_wire :
  parent:Hash.t -> view:int -> height:int -> proposer:int -> payload:Payload.t -> t

(** [extends_hash b ~parent_hash] is true when [b] directly extends the block
    with hash [parent_hash]. *)
val extends_hash : t -> parent_hash:Hash.t -> bool

(** Two blocks proposed for the same view equivocate one another if they do
    not both have the same parent and payload. *)
val equivocates : t -> t -> bool

val is_genesis : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
