(** Block payloads.

    As in the paper's evaluation, leaders synthesize a parametrically sized
    payload during block creation instead of pulling transactions from a
    mempool.  Payload bytes are never materialised; a payload is described by
    its identifier and size, which is all the network model and the metrics
    need.  Individual payload items are 180 bytes, matching the paper. *)

type t = { id : int; size_bytes : int }

(** Size in bytes of one payload item (a transaction digest record). *)
val item_size : int

(** [make ~id ~size_bytes] describes a payload of [size_bytes] bytes.
    Raises [Invalid_argument] if [size_bytes < 0]. *)
val make : id:int -> size_bytes:int -> t

val empty : id:int -> t

(** Number of 180-byte items the payload holds (rounded down). *)
val item_count : t -> int

(** {2 Mempool batch references}

    When a run ingests client traffic (lib/mempool), leaders cut blocks from
    the replicated mempool instead of synthesizing parametric payloads.  A
    batch payload carries no contents — only two scalars packed into [id]:

    - [cursor]: how many mempool commands the block's {e ancestors} consumed;
    - [watermark]: how many client arrivals the leader had observed when it
      cut the batch (monotone along the chain).

    [size_bytes = count * item_size] advertises the number of commands drawn.
    Contents are derived deterministically by commit-order replay, so every
    replica (and both substrates) reconstructs the same commands without the
    leader ever choosing the composition.  Both fields must fit in 30 bits;
    the tagged id stays below the wire codec's 2^61 LEB128 guard. *)

(** [batch ~cursor ~watermark ~count] builds a batch reference.
    Raises [Invalid_argument] if a field is negative or exceeds 30 bits. *)
val batch : cursor:int -> watermark:int -> count:int -> t

(** Largest value a batch cursor or watermark can carry (2{^30} − 1). *)
val batch_field_max : int

(** [is_batch t] is true iff [t] was built by {!batch}.  Parametric payloads
    (small non-negative view ids) and equivocation payloads (negative ids)
    never parse as batches. *)
val is_batch : t -> bool

(** Chain cursor of a batch payload (commands consumed by ancestors). *)
val batch_cursor : t -> int

(** Arrival watermark of a batch payload. *)
val batch_watermark : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
