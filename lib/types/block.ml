type t = {
  hash : Hash.t;
  parent : Hash.t;
  view : int;
  height : int;
  proposer : int;
  payload : Payload.t;
}

let hash_fields ~parent ~view ~height ~proposer ~(payload : Payload.t) =
  Hash.of_fields
    [
      Int64.of_int (Hash.to_int parent);
      Int64.of_int view;
      Int64.of_int height;
      Int64.of_int proposer;
      Int64.of_int payload.Payload.id;
      Int64.of_int payload.Payload.size_bytes;
    ]

let genesis =
  let payload = Payload.empty ~id:0 in
  {
    hash = hash_fields ~parent:Hash.null ~view:0 ~height:0 ~proposer:(-1) ~payload;
    parent = Hash.null;
    view = 0;
    height = 0;
    proposer = -1;
    payload;
  }

let create ~parent ~view ~proposer ~payload =
  if view <= parent.view then
    invalid_arg "Block.create: view must exceed the parent's view";
  let height = parent.height + 1 in
  {
    hash = hash_fields ~parent:parent.hash ~view ~height ~proposer ~payload;
    parent = parent.hash;
    view;
    height;
    proposer;
    payload;
  }

let of_wire ~parent ~view ~height ~proposer ~payload =
  if view < 0 then invalid_arg "Block.of_wire: negative view";
  if height < 0 then invalid_arg "Block.of_wire: negative height";
  if proposer < -1 then invalid_arg "Block.of_wire: bad proposer";
  { hash = hash_fields ~parent ~view ~height ~proposer ~payload;
    parent; view; height; proposer; payload }

let extends_hash t ~parent_hash = Hash.equal t.parent parent_hash

let equivocates a b =
  a.view = b.view
  && not (Hash.equal a.parent b.parent && Payload.equal a.payload b.payload)

let is_genesis t = t.height = 0 && Hash.equal t.parent Hash.null
let equal a b = Hash.equal a.hash b.hash

let pp ppf t =
  Format.fprintf ppf "block(%a, v=%d, h=%d, by=%d)" Hash.pp t.hash t.view
    t.height t.proposer
