type proposal_kind = Optimistic | Normal | Fallback

type event =
  | View_entered of { view : int; via : [ `Cert | `Tc | `Start | `Recovery ] }
  | Proposal_sent of { view : int; height : int; kind : proposal_kind }
  | Vote_sent of { view : int; height : int; kind : string }
  | Cert_formed of { view : int; height : int; signers : int }
  | Tc_formed of { view : int; signers : int }
  | Timeout_sent of { view : int }
  | Sync_request of { attempt : int }

let proposal_kind_name = function
  | Optimistic -> "optimistic"
  | Normal -> "normal"
  | Fallback -> "fallback"

let via_name = function
  | `Cert -> "cert"
  | `Tc -> "tc"
  | `Start -> "start"
  | `Recovery -> "recovery"

let name = function
  | View_entered _ -> "view_entered"
  | Proposal_sent _ -> "propose"
  | Vote_sent _ -> "vote_send"
  | Cert_formed _ -> "cert_form"
  | Tc_formed _ -> "tc_form"
  | Timeout_sent _ -> "timeout"
  | Sync_request _ -> "sync"

let view_of = function
  | View_entered { view; _ }
  | Proposal_sent { view; _ }
  | Vote_sent { view; _ }
  | Cert_formed { view; _ }
  | Tc_formed { view; _ }
  | Timeout_sent { view } ->
      Some view
  | Sync_request _ -> None

let pp ppf = function
  | View_entered { view; via } ->
      Format.fprintf ppf "enter view %d (via %s)" view (via_name via)
  | Proposal_sent { view; height; kind } ->
      Format.fprintf ppf "%s-propose v=%d h=%d" (proposal_kind_name kind) view
        height
  | Vote_sent { view; height; kind } ->
      Format.fprintf ppf "%s-vote v=%d h=%d" kind view height
  | Cert_formed { view; height; signers } ->
      Format.fprintf ppf "cert formed v=%d h=%d (%d signers)" view height
        signers
  | Tc_formed { view; signers } ->
      Format.fprintf ppf "tc formed v=%d (%d signers)" view signers
  | Timeout_sent { view } -> Format.fprintf ppf "timeout v=%d" view
  | Sync_request { attempt } ->
      Format.fprintf ppf "sync request (attempt %d)" attempt
