(** Environment handed to a protocol node.

    A consensus node is a pure event-driven state machine; everything it can
    do to the outside world goes through this record.  The experiment harness
    wires it to the discrete-event simulator, while unit tests can supply a
    mock environment and drive a node directly. *)

type 'msg t = {
  id : int;  (** This node's identifier, [0 <= id < n]. *)
  validators : Validator_set.t;
  delta : float;  (** The known message-delay bound Delta, in milliseconds. *)
  now : unit -> float;  (** Current time in milliseconds. *)
  send : int -> 'msg -> unit;  (** Unicast to a node (including self). *)
  multicast : 'msg -> unit;
      (** Send to every node, self included (self-delivery is immediate). *)
  set_timer : float -> (unit -> unit) -> unit -> unit;
      (** [set_timer delay callback] schedules [callback] after [delay]
          milliseconds and returns a cancel thunk.  Cancelling after the
          timer fired is a no-op. *)
  leader_of : int -> int;  (** Leader election function [L(view)]. *)
  make_payload : view:int -> parent:Block.t -> Payload.t;
      (** The fixed payload [b_v] for a block proposed at [view] extending
          [parent]; deterministic per view so that the optimistic and normal
          proposals of an honest leader carry the same block.  Parametric
          runs ignore [parent]; client-traffic runs read the parent's batch
          cursor to cut the next mempool batch (lib/mempool). *)
  on_commit : Block.t -> unit;
      (** Invoked exactly once per block, in chain order, when this node
          commits it. *)
  on_propose : Block.t -> unit;
      (** Invoked when this node first broadcasts a given block (used by the
          metrics collector to timestamp block creation). *)
  probe : (Probe.event -> unit) option;
      (** Observability hook: node-internal protocol events (vote sends,
          certificate assembly, timeouts — see {!Probe}).  [None] outside
          traced runs; instrumented code must not build events when unset
          (use {!emit}). *)
}

(** [emit env ev] calls the probe with [ev ()] when one is installed; when
    [probe = None] the thunk is never forced, so a disabled probe costs one
    comparison (plus the thunk closure) and allocates no event. *)
val emit : 'msg t -> (unit -> Probe.event) -> unit

(** {2 Byzantine-behaviour wrappers}

    These derive a misbehaving environment from an honest one by
    intercepting the outgoing side; the node logic stays untouched. *)

(** [with_outgoing_filter ~keep env] silently drops any sent or multicast
    message for which [keep] is false (e.g. a vote withholder). *)
val with_outgoing_filter : keep:('msg -> bool) -> 'msg t -> 'msg t

(** [with_outgoing_delay ~delay env] holds every outgoing message for
    [delay] ms before handing it to the network. *)
val with_outgoing_delay : delay:float -> 'msg t -> 'msg t

(** Quorum size shortcut. *)
val quorum : 'msg t -> int

val weak_quorum : 'msg t -> int
val n : 'msg t -> int
val is_leader : 'msg t -> view:int -> bool
