type 'msg t = {
  id : int;
  validators : Validator_set.t;
  delta : float;
  now : unit -> float;
  send : int -> 'msg -> unit;
  multicast : 'msg -> unit;
  set_timer : float -> (unit -> unit) -> unit -> unit;
  leader_of : int -> int;
  make_payload : view:int -> parent:Block.t -> Payload.t;
  on_commit : Block.t -> unit;
  on_propose : Block.t -> unit;
  probe : (Probe.event -> unit) option;
}

let emit t ev =
  match t.probe with None -> () | Some f -> f (ev ())

let quorum t = Validator_set.quorum t.validators
let weak_quorum t = Validator_set.weak_quorum t.validators
let n t = t.validators.Validator_set.n
let is_leader t ~view = t.leader_of view = t.id

let with_outgoing_filter ~keep t =
  {
    t with
    send = (fun dst msg -> if keep msg then t.send dst msg);
    multicast = (fun msg -> if keep msg then t.multicast msg);
  }

let with_outgoing_delay ~delay t =
  let hold act =
    let (_cancel : unit -> unit) = t.set_timer delay act in
    ()
  in
  {
    t with
    send = (fun dst msg -> hold (fun () -> t.send dst msg));
    multicast = (fun msg -> hold (fun () -> t.multicast msg));
  }
