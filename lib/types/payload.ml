type t = { id : int; size_bytes : int }

let item_size = 180

let make ~id ~size_bytes =
  if size_bytes < 0 then invalid_arg "Payload.make: negative size";
  { id; size_bytes }

let empty ~id = { id; size_bytes = 0 }
let item_count t = t.size_bytes / item_size

(* Batch payloads: references into the replicated mempool stream.  The id
   packs a tag bit, the chain cursor (commands consumed by ancestors) and the
   arrival watermark observed at cut time into one non-negative integer, so a
   batch survives the wire codec's LEB128 id (< 2^61) and participates in
   block hashing unchanged.  Contents are never stored: every replica derives
   them by replaying arrivals [parent's watermark, watermark) through the
   deterministic lane state machine and drawing [item_count] commands. *)

let batch_field_bits = 30
let batch_field_max = (1 lsl batch_field_bits) - 1
let batch_tag = 1 lsl (2 * batch_field_bits)

let batch ~cursor ~watermark ~count =
  if cursor < 0 || cursor > batch_field_max then
    invalid_arg "Payload.batch: cursor out of range";
  if watermark < 0 || watermark > batch_field_max then
    invalid_arg "Payload.batch: watermark out of range";
  if count < 0 then invalid_arg "Payload.batch: negative count";
  { id = batch_tag lor (cursor lsl batch_field_bits) lor watermark;
    size_bytes = count * item_size }

let is_batch t = t.id > 0 && t.id land batch_tag <> 0
let batch_cursor t = (t.id lsr batch_field_bits) land batch_field_max
let batch_watermark t = t.id land batch_field_max
let equal a b = a.id = b.id && a.size_bytes = b.size_bytes
let pp ppf t = Format.fprintf ppf "payload(id=%d, %dB)" t.id t.size_bytes
