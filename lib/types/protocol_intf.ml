(** Interface every consensus protocol implementation exposes to the
    experiment harness.

    A protocol is a message type with a wire-size model plus an event-driven
    node.  The harness instantiates one node per honest participant, wires
    its {!Env.t} to the simulator and feeds it incoming messages. *)

module type S = sig
  type msg

  (** Wire size in bytes; drives the serialization-delay component of the
      network model. *)
  val msg_size : msg -> int

  (** Receiver-side processing cost in milliseconds (signature verification,
      payload hashing — see {!Cpu_model}), used when the experiment enables
      CPU modelling.  Costs are amortized assuming certificate caching. *)
  val cpu_cost : msg -> float

  (** Coarse message class, used by Byzantine behaviours (e.g. vote
      withholding) and trace statistics. *)
  val classify : msg -> [ `Proposal | `Vote | `Timeout | `Other ]

  (** Payload bytes the message carries in-band (the block body of a
      proposal or sync response; 0 for votes, timeouts and other
      header-only traffic).  Client-traffic runs use it to price
      dissemination separately from ordering: the harness subtracts a
      proposal's payload bytes from its wire size (batch contents travel on
      the client→validator dissemination path, Narwhal-style) while sync
      retransmissions keep theirs.  Always ≤ {!msg_size} of the same
      message. *)
  val payload_bytes : msg -> int

  (** The view (round) a message belongs to, when it has one — used by the
      observability layer to attribute delivered messages and bytes to
      per-view complexity counters.  [None] for view-less traffic such as
      block-synchronizer requests. *)
  val view_of : msg -> int option

  (** {2 Wire codec}

      The live-network transport ({!Bft_net.Tcp}) moves real bytes instead
      of size-annotated in-memory values; every protocol supplies a frame
      codec for its message type (format: [docs/WIRE.md]). *)

  (** Serialize to a wire-frame body (version byte, message tag, fields);
      the transport prepends the length prefix. *)
  val encode_msg : msg -> string

  (** Total inverse of {!encode_msg}: any byte string either decodes or
      yields a human-readable error — it never raises, so a malformed
      frame cannot crash a node. *)
  val decode_msg : string -> (msg, string) result

  type node

  (** Durable per-node write-ahead log, abstract at this level (each
      protocol records its own safety-critical slots).  A WAL outlives node
      incarnations: the harness creates one per participant and threads it
      back into {!create} when restarting a crashed node, which is what
      prevents post-recovery double votes. *)
  type wal

  (** A fresh, empty WAL. *)
  val wal_create : unit -> wal

  (** Snapshot of a WAL's latest record as bytes — the durable form the
      live transport persists to a file after every handler run, so a
      killed validator process can be re-spawned and rebuilt from disk.
      Not a wire frame: the blob is only ever read back by the node that
      wrote it. *)
  val wal_encode : wal -> string

  (** Total inverse of {!wal_encode}; [Error] on a torn or corrupt
      snapshot (the caller falls back to an empty WAL or refuses to
      restart, never crashes). *)
  val wal_decode : string -> (wal, string) result

  (** [create env] builds a node.  [equivocate] (default false) makes the
      node a Byzantine proposer that sends conflicting blocks to different
      halves of the network whenever it leads a view — used by safety tests;
      implementations without an equivocation attack may ignore it.  [wal],
      when given, is recorded to before every binding action and replayed on
      {!start} when non-empty (crash recovery). *)
  val create : ?equivocate:bool -> ?wal:wal -> msg Env.t -> node

  (** Start protocol execution (enter the first view, start timers, propose
      if leader). *)
  val start : node -> unit

  (** Deliver a message from [src]. *)
  val handle : node -> src:int -> msg -> unit

  (** {2 Model-checker support}

      The bounded model checker ({!Bft_mc.Checker}) identifies explored
      world states by digest; every protocol exposes a canonical digest of
      its volatile node state, its durable WAL state and its in-flight
      messages, plus the introspection the checker's invariants need. *)

  (** Canonical content digest: equal iff the node treats the messages
      identically (e.g. certificate signer counts are excluded when the
      protocol deduplicates certificates without them). *)
  val msg_digest : msg -> Hash.t

  val pp_msg : Format.formatter -> msg -> unit

  (** The at-most-once vote slot a message occupies, as [(view, slot)], or
      [None] for messages a correct node may send repeatedly.  Two
      differently-digested messages from one honest sender in the same slot
      constitute a double vote. *)
  val vote_slot : msg -> (int * int) option

  (** Canonical digest of the node's volatile state (the WAL is digested
      separately via {!wal_hash} — it outlives the node).  Two nodes with
      equal digests behave identically on any future input; wall-clock
      values and pure statistics are excluded. *)
  val state_hash : node -> Hash.t

  (** The view (round) the node is currently in. *)
  val current_view : node -> int

  (** Rank of the node's lock (high certificate); never decreases within
      one incarnation. *)
  val lock_view : node -> int

  (** Canonical digest of a WAL's recovery-relevant content. *)
  val wal_hash : wal -> Hash.t

  (** Whether the node's in-memory safety slots agree with its WAL's latest
      record (the WAL may lag only where recovery tolerates it, e.g.
      Jolteon's high QC).  Trivially true for WAL-less nodes; checked by the
      model checker after every handler run. *)
  val wal_consistent : node -> bool
end
