(** Interface every consensus protocol implementation exposes to the
    experiment harness.

    A protocol is a message type with a wire-size model plus an event-driven
    node.  The harness instantiates one node per honest participant, wires
    its {!Env.t} to the simulator and feeds it incoming messages. *)

module type S = sig
  type msg

  (** Wire size in bytes; drives the serialization-delay component of the
      network model. *)
  val msg_size : msg -> int

  (** Receiver-side processing cost in milliseconds (signature verification,
      payload hashing — see {!Cpu_model}), used when the experiment enables
      CPU modelling.  Costs are amortized assuming certificate caching. *)
  val cpu_cost : msg -> float

  (** Coarse message class, used by Byzantine behaviours (e.g. vote
      withholding) and trace statistics. *)
  val classify : msg -> [ `Proposal | `Vote | `Timeout | `Other ]

  (** The view (round) a message belongs to, when it has one — used by the
      observability layer to attribute delivered messages and bytes to
      per-view complexity counters.  [None] for view-less traffic such as
      block-synchronizer requests. *)
  val view_of : msg -> int option

  type node

  (** Durable per-node write-ahead log, abstract at this level (each
      protocol records its own safety-critical slots).  A WAL outlives node
      incarnations: the harness creates one per participant and threads it
      back into {!create} when restarting a crashed node, which is what
      prevents post-recovery double votes. *)
  type wal

  (** A fresh, empty WAL. *)
  val wal_create : unit -> wal

  (** [create env] builds a node.  [equivocate] (default false) makes the
      node a Byzantine proposer that sends conflicting blocks to different
      halves of the network whenever it leads a view — used by safety tests;
      implementations without an equivocation attack may ignore it.  [wal],
      when given, is recorded to before every binding action and replayed on
      {!start} when non-empty (crash recovery). *)
  val create : ?equivocate:bool -> ?wal:wal -> msg Env.t -> node

  (** Start protocol execution (enter the first view, start timers, propose
      if leader). *)
  val start : node -> unit

  (** Deliver a message from [src]. *)
  val handle : node -> src:int -> msg -> unit
end
