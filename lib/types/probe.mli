(** Node-internal protocol events for the observability layer.

    A protocol node reports the handful of moments that define a view's
    latency shape — proposal broadcast, vote multicast, local certificate
    assembly, timeouts — through the optional probe callback in its
    {!Env.t}.  The callback is [None] in ordinary runs, so instrumented code
    pays a single word comparison and never allocates an event; the
    experiment harness installs a real callback only when tracing is
    requested (see [Bft_obs.Trace]).

    Events carry only small scalars (views, heights, signer counts): they
    are emitted on hot paths and must stay cheap to build. *)

type proposal_kind =
  | Optimistic  (** Sent on voting, without a certificate (Moonshot). *)
  | Normal  (** Justified by the previous view's certificate. *)
  | Fallback  (** Justified by a timeout certificate. *)

type event =
  | View_entered of { view : int; via : [ `Cert | `Tc | `Start | `Recovery ] }
      (** The node advanced to [view]; [via] is the evidence that triggered
          the transition. *)
  | Proposal_sent of { view : int; height : int; kind : proposal_kind }
      (** The node broadcast a proposal for [view]. *)
  | Vote_sent of { view : int; height : int; kind : string }
      (** The node voted for a block of [view]; [kind] is the protocol's
          vote-kind label (["opt"], ["normal"], ["fallback"], ["commit"]). *)
  | Cert_formed of { view : int; height : int; signers : int }
      (** The node's vote accumulator completed a certificate locally. *)
  | Tc_formed of { view : int; signers : int }
      (** The node assembled a timeout certificate for [view]. *)
  | Timeout_sent of { view : int }
      (** The node multicast a timeout message for [view]. *)
  | Sync_request of { attempt : int }
      (** The block synchronizer asked a peer for a missing ancestor. *)

(** Stable snake_case tag for serialization (["propose"], ["vote_send"],
    ["cert_form"], ...). *)
val name : event -> string

val proposal_kind_name : proposal_kind -> string

val via_name : [ `Cert | `Tc | `Start | `Recovery ] -> string

(** The view an event belongs to; [None] for view-less events (sync). *)
val view_of : event -> int option

val pp : Format.formatter -> event -> unit
