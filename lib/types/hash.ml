type t = int64

let equal = Int64.equal
let compare = Int64.compare

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix_byte acc b =
  Int64.mul (Int64.logxor acc (Int64.of_int (b land 0xff))) fnv_prime

let mix_int64 acc v =
  let rec go acc i =
    if i = 8 then acc
    else
      let b = Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff in
      go (mix_byte acc b) (i + 1)
  in
  go acc 0

let of_fields fields = List.fold_left mix_int64 fnv_offset fields

let of_string s =
  let acc = ref fnv_offset in
  String.iter (fun c -> acc := mix_byte !acc (Char.code c)) s;
  !acc

let null = 0L
let to_hex t = Printf.sprintf "%016Lx" t
let pp ppf t = Format.fprintf ppf "#%s" (String.sub (to_hex t) 0 8)
let to_int = Int64.to_int
let to_int64 t = t
let of_int64 v = v
