(* Compare all four protocols on the paper's five-region WAN, across payload
   sizes, failure-free.  This is a miniature of the paper's Figure 6 that
   runs in a few seconds:

     dune exec examples/wan_comparison.exe
*)

open Bft_runtime

let n = 20
let duration_ms = 10_000.

let run protocol payload =
  let cfg =
    {
      (Config.default protocol ~n) with
      Config.payload_bytes = payload;
      duration_ms;
    }
  in
  let r = Harness.run cfg in
  r.Harness.metrics

let () =
  Format.printf
    "Four protocols, %d nodes across us-east-1 / us-west-1 / eu-north-1 /@." n;
  Format.printf "ap-northeast-1 / ap-southeast-2, %.0f s simulated per run.@.@."
    (duration_ms /. 1000.);
  let table =
    Bft_stats.Table.create
      [ "payload"; "protocol"; "blocks"; "blk/s"; "latency ms"; "MB/s" ]
  in
  List.iter
    (fun payload ->
      List.iter
        (fun protocol ->
          let m = run protocol payload in
          Bft_stats.Table.add_row table
            [
              Bft_workload.Payload_profile.label payload;
              Protocol_kind.short_name protocol;
              string_of_int m.Metrics.committed_blocks;
              Printf.sprintf "%.2f" m.Metrics.blocks_per_sec;
              Printf.sprintf "%.0f" m.Metrics.avg_latency_ms;
              Printf.sprintf "%.2f" (m.Metrics.transfer_rate_bps /. 1e6);
            ])
        Protocol_kind.all)
    [ 0; 18_000; 1_800_000 ];
  Bft_stats.Table.print Format.std_formatter table;
  Format.printf
    "@.Things to notice (the paper's Section VI-A in miniature):@.";
  Format.printf " - the Moonshots commit ~1.5-2x the blocks of Jolteon (omega: d vs 2d);@.";
  Format.printf " - their latency is 55-70%% of Jolteon's (lambda: 3d vs 5d);@.";
  Format.printf
    " - Commit Moonshot pulls ahead on latency as payloads grow (beta >> rho).@."
