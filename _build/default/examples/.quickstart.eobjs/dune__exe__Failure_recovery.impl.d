examples/failure_recovery.ml: Bft_runtime Bft_stats Bft_workload Config Format Harness List Metrics Printf Protocol_kind
