examples/wan_comparison.mli:
