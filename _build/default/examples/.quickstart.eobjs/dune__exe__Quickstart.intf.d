examples/quickstart.mli:
