examples/byzantine_equivocation.mli:
