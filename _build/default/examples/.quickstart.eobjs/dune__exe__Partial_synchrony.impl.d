examples/partial_synchrony.ml: Bft_runtime Config Format Harness Metrics Protocol_kind String
