examples/transaction_latency.mli:
