examples/replicated_kv.ml: Array Bft_app Bft_runtime Bft_types Config Format Harness List Metrics Protocol_kind String
