examples/transaction_latency.ml: Bft_app Bft_runtime Bft_stats Config Format Harness List Metrics Printf Protocol_kind
