examples/quickstart.ml: Bft_runtime Config Format Harness Metrics Protocol_kind
