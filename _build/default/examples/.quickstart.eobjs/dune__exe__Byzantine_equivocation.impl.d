examples/byzantine_equivocation.ml: Bft_chain Bft_runtime Config Format Harness Metrics Protocol_kind
