examples/wan_comparison.ml: Bft_runtime Bft_stats Bft_workload Config Format Harness List Metrics Printf Protocol_kind
