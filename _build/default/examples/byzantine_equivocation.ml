(* A Byzantine proposer that equivocates: whenever node 0 leads a view it
   crafts two conflicting blocks and serves a different one to each half of
   the network.  The run demonstrates that

   - safety holds: the harness cross-checks every commit of every node and
     would raise [Safety_violation] on conflicting commits at a height;
   - liveness holds: split votes mean neither conflicting block gathers a
     quorum, the view times out, and honest leaders keep extending the
     chain.

     dune exec examples/byzantine_equivocation.exe
*)

open Bft_runtime

let () =
  let cfg =
    {
      (Config.default Protocol_kind.Pipelined_moonshot ~n:8) with
      Config.equivocators = [ 0 ];
      duration_ms = 30_000.;
      delta_ms = 500.;
    }
  in
  Format.printf
    "8-node WAN; node 0 equivocates in every view it leads (1 of every 8).@.@.";
  let outcome =
    try
      let r = Harness.run cfg in
      `Safe r
    with Bft_chain.Commit_log.Safety_violation msg -> `Violated msg
  in
  match outcome with
  | `Violated msg ->
      Format.printf "SAFETY VIOLATION (this must never print): %s@." msg;
      exit 1
  | `Safe r ->
      let m = r.Harness.metrics in
      Format.printf "safety          : OK (no conflicting commits at any height)@.";
      Format.printf "blocks committed: %d in %.0f s@." m.Metrics.committed_blocks
        (cfg.Config.duration_ms /. 1000.);
      Format.printf "avg latency     : %.0f ms@." m.Metrics.avg_latency_ms;
      Format.printf "blocks proposed : %d (includes the equivocator's doubles)@."
        m.Metrics.proposed_blocks;
      Format.printf
        "@.The equivocator's views stall (votes split 4/4, no quorum), cost one@.";
      Format.printf
        "view timer each, and the protocol recovers through its fallback path.@."
