(* Reorg resilience under hostile leader schedules.

   Runs Pipelined Moonshot, Commit Moonshot and Jolteon through the paper's
   worst-case schedules (Section VI-B) on a small WAN with a third of the
   nodes silenced, and shows what each protocol salvages:

     dune exec examples/failure_recovery.exe
*)

open Bft_runtime
module Schedules = Bft_workload.Schedules

let n = 16
let f' = 5

let run protocol schedule =
  let cfg =
    {
      (Config.default protocol ~n) with
      Config.f_actual = f';
      schedule;
      duration_ms = 90_000.;
      delta_ms = 500.;
    }
  in
  let r = Harness.run cfg in
  r.Harness.metrics

let () =
  Format.printf
    "%d nodes, %d of them silent Byzantine, Delta = 500 ms, 90 s simulated.@."
    n f';
  Format.printf
    "Schedules: B (honest first), WM (worst for Moonshot), WJ (worst for Jolteon).@.@.";
  let table =
    Bft_stats.Table.create
      [ "schedule"; "protocol"; "blocks committed"; "avg latency" ]
  in
  List.iter
    (fun schedule ->
      List.iter
        (fun protocol ->
          let m = run protocol schedule in
          Bft_stats.Table.add_row table
            [
              Schedules.name schedule;
              Protocol_kind.short_name protocol;
              string_of_int m.Metrics.committed_blocks;
              (if m.Metrics.committed_blocks = 0 then "-"
               else Printf.sprintf "%.1f s" (m.Metrics.avg_latency_ms /. 1000.));
            ])
        [
          Protocol_kind.Pipelined_moonshot;
          Protocol_kind.Commit_moonshot;
          Protocol_kind.Jolteon;
        ])
    [ Schedules.Best_case; Schedules.Worst_moonshot; Schedules.Worst_jolteon ];
  Bft_stats.Table.print Format.std_formatter table;
  Format.printf
    "@.Why: Jolteon routes all votes for a block to the NEXT leader.  When@.";
  Format.printf
    "that leader is Byzantine it simply never aggregates them, and the honest@.";
  Format.printf
    "block is reorged away (WJ makes this happen for every honest block).@.";
  Format.printf
    "Moonshot nodes multicast votes, so every node assembles the certificate@.";
  Format.printf
    "itself -- a Byzantine successor cannot censor it.  Commit Moonshot's@.";
  Format.printf
    "explicit commit votes additionally keep commit LATENCY flat, because a@.";
  Format.printf
    "Byzantine successor cannot even delay the commit of a certified block.@."
