(* End-to-end transaction latency: why the block period omega matters.

   A client's transaction waits for the next block to be cut (on average
   half a block period) and then for that block to commit.  Moonshot's
   omega = delta halves the queueing delay relative to Jolteon's
   omega = 2*delta, so end-to-end latency improves by more than the commit
   latency gap alone:

     dune exec examples/transaction_latency.exe
*)

open Bft_runtime

let run protocol =
  let cfg =
    {
      (Config.default protocol ~n:10) with
      Config.payload_bytes = 18_000;
      duration_ms = 20_000.;
    }
  in
  let r = Harness.run cfg in
  let timeline =
    List.map
      (fun (rec_ : Metrics.record) ->
        (rec_.Metrics.created_ms, rec_.Metrics.quorum_commit_ms))
      r.Harness.metrics.Metrics.records
  in
  Bft_app.Client.analyze timeline

let () =
  Format.printf
    "Client-perceived latency = queueing (half a block period) + commit.@.@.";
  let table =
    Bft_stats.Table.create
      [ "protocol"; "period ms"; "queue ms"; "commit ms"; "end-to-end ms" ]
  in
  List.iter
    (fun protocol ->
      let s = run protocol in
      Bft_stats.Table.add_row table
        [
          Protocol_kind.short_name protocol;
          Printf.sprintf "%.0f" s.Bft_app.Client.avg_block_period_ms;
          Printf.sprintf "%.0f" s.Bft_app.Client.avg_queueing_ms;
          Printf.sprintf "%.0f" s.Bft_app.Client.avg_commit_latency_ms;
          Printf.sprintf "%.0f" s.Bft_app.Client.avg_end_to_end_ms;
        ])
    Protocol_kind.all;
  Bft_stats.Table.print Format.std_formatter table;
  Format.printf
    "@.The Moonshots win twice: ~half the queueing delay (omega = d vs 2d)@.";
  Format.printf "AND ~60%% of the commit latency (lambda = 3d vs 5d / 7d).@."
