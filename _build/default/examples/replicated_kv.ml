(* State machine replication end to end: a key-value store replicated over
   Commit Moonshot.

   Every committed block's payload expands into deterministic KV commands;
   each node feeds its own commit stream into its own store.  Replicas may
   be at different heights when the run stops, but on their common prefix
   their state digests must be identical — the SMR consistency guarantee.
   The run also computes end-to-end (client-perceived) transaction latency:
   queueing for the next block plus commit latency.

     dune exec examples/replicated_kv.exe
*)

open Bft_runtime

let n = 10

let () =
  let cfg =
    {
      (Config.default Protocol_kind.Commit_moonshot ~n) with
      Config.payload_bytes = 18_000 (* 100 commands per block *);
      duration_ms = 20_000.;
    }
  in
  let ledgers = Array.init n (fun _ -> Bft_app.Ledger.create ()) in
  let r =
    Harness.run cfg ~on_commit:(fun ~node block ->
        Bft_app.Ledger.apply_block ledgers.(node) block)
  in
  let m = r.Harness.metrics in
  Format.printf "replicas        : %d, 100 commands per block@." n;
  Format.printf "blocks committed: %d@." m.Metrics.committed_blocks;

  (* Pairwise prefix consistency: at the common height of any two replicas,
     their state digests must match. *)
  let consistent = ref true in
  Array.iteri
    (fun i li ->
      Array.iteri
        (fun j lj ->
          if i < j then begin
            let h = min (Bft_app.Ledger.height li) (Bft_app.Ledger.height lj) in
            match (Bft_app.Ledger.digest_at li h, Bft_app.Ledger.digest_at lj h) with
            | Some a, Some b when Bft_types.Hash.equal a b -> ()
            | _ -> consistent := false
          end)
        ledgers)
    ledgers;
  let heights =
    Array.to_list (Array.map Bft_app.Ledger.height ledgers)
    |> List.map string_of_int |> String.concat " "
  in
  Format.printf "replica heights : %s@." heights;
  Format.printf "state agreement : %s@."
    (if !consistent then "OK (all pairs agree on common prefixes)"
     else "VIOLATED");
  if not !consistent then exit 1;
  Format.printf "commands applied: %d at node 0@."
    (Bft_app.Ledger.commands_applied ledgers.(0));
  Format.printf "sample state    : k000 = %s@."
    (match Bft_app.Kv_store.find (Bft_app.Ledger.store ledgers.(0)) "k000" with
    | Some v -> string_of_int v
    | None -> "(unset)");

  (* Client-perceived latency. *)
  let timeline =
    List.map
      (fun (rec_ : Metrics.record) ->
        (rec_.Metrics.created_ms, rec_.Metrics.quorum_commit_ms))
      m.Metrics.records
  in
  let stats = Bft_app.Client.analyze timeline in
  Format.printf "end-to-end      : %a@." Bft_app.Client.pp stats
