(* Life before and after GST.

   For the first 20 simulated seconds the adversary may hold every message
   for up to 10 extra seconds (delivery is still bounded by GST + Delta, per
   Dwork et al.).  After GST the network obeys Delta = 500 ms.  The example
   prints per-5s-window commit counts, showing consensus stalling through
   the asynchronous period and snapping back after GST:

     dune exec examples/partial_synchrony.exe
*)

open Bft_runtime

let gst_ms = 20_000.
let duration_ms = 40_000.
let window_ms = 5_000.

let () =
  let cfg =
    {
      (Config.default Protocol_kind.Commit_moonshot ~n:10) with
      Config.gst_ms;
      pre_gst_extra_ms = 10_000.;
      duration_ms;
      delta_ms = 500.;
    }
  in
  (* Count quorum commits per window by running with a custom metric pass:
     the public metrics expose per-block latencies, so instead we run twice
     with increasing horizons and difference the counts. *)
  let committed_by horizon =
    let r = Harness.run { cfg with Config.duration_ms = horizon } in
    r.Harness.metrics.Metrics.committed_blocks
  in
  Format.printf "GST at %.0f s; adversary delays messages up to 10 s before it.@.@."
    (gst_ms /. 1000.);
  Format.printf "%-12s %s@." "window" "blocks committed (cumulative)";
  let rec windows t prev =
    if t > duration_ms then ()
    else begin
      let c = committed_by t in
      Format.printf "up to %4.0f s  %4d  %s@." (t /. 1000.) c
        (String.make (max 0 (c - prev)) '#');
      windows (t +. window_ms) c
    end
  in
  windows window_ms 0;
  Format.printf
    "@.Before GST the adversary scrambles delivery and views mostly time out;@.";
  Format.printf
    "after GST (%.0f s) the chain grows at network speed.  Safety held@."
    (gst_ms /. 1000.);
  Format.printf "throughout (the harness checks every commit).@."
